#include "src/autograd/ops.hpp"

#include <cmath>

#include "src/profiling/flops.hpp"
#include "src/profiling/timer.hpp"

namespace sptx::autograd {

namespace {
constexpr float kNormEps = 1e-12f;

Matrix& parent_grad(Node& n, std::size_t i) {
  return n.parents()[i]->grad();
}
const Matrix& parent_value(Node& n, std::size_t i) {
  return n.parents()[i]->value();
}
bool parent_needs_grad(Node& n, std::size_t i) {
  return n.parents()[i]->requires_grad();
}
}  // namespace

// ---------------------------------------------------------------- add / sub

Variable add(const Variable& a, const Variable& b) {
  profiling::ScopedHotspot hotspot("sptx::add");
  Matrix out = sptx::add(a.value(), b.value());
  return Variable::op(
      std::move(out), {a, b},
      [](Node& n) {
        if (parent_needs_grad(n, 0)) parent_grad(n, 0).add_(n.grad());
        if (parent_needs_grad(n, 1)) parent_grad(n, 1).add_(n.grad());
      },
      "sptx::add_backward");
}

Variable sub(const Variable& a, const Variable& b) {
  profiling::ScopedHotspot hotspot("sptx::sub");
  Matrix out = sptx::sub(a.value(), b.value());
  return Variable::op(
      std::move(out), {a, b},
      [](Node& n) {
        if (parent_needs_grad(n, 0)) parent_grad(n, 0).add_(n.grad());
        if (parent_needs_grad(n, 1)) parent_grad(n, 1).sub_(n.grad());
      },
      "sptx::sub_backward");
}

Variable mul(const Variable& a, const Variable& b) {
  profiling::ScopedHotspot hotspot("sptx::mul");
  Matrix out = hadamard(a.value(), b.value());
  return Variable::op(
      std::move(out), {a, b},
      [](Node& n) {
        if (parent_needs_grad(n, 0)) {
          Matrix da = hadamard(n.grad(), parent_value(n, 1));
          parent_grad(n, 0).add_(da);
        }
        if (parent_needs_grad(n, 1)) {
          Matrix db = hadamard(n.grad(), parent_value(n, 0));
          parent_grad(n, 1).add_(db);
        }
      },
      "sptx::mul_backward");
}

Variable scale(const Variable& a, float s) {
  Matrix out = scaled(a.value(), s);
  return Variable::op(
      std::move(out), {a},
      [s](Node& n) {
        if (parent_needs_grad(n, 0)) parent_grad(n, 0).axpy_(s, n.grad());
      },
      "sptx::scale_backward");
}

// ------------------------------------------------------------------- spmm

Variable spmm(std::shared_ptr<const Csr> a, const Variable& x,
              SpmmKernel kernel) {
  SPTX_CHECK(a != nullptr, "spmm: null sparse matrix");
  Matrix out = spmm_csr(*a, x.value(), kernel);
  return Variable::op(
      std::move(out), {x},
      [a](Node& n) {
        if (parent_needs_grad(n, 0)) {
          // Appendix G: dX = Aᵀ · dC — one coarse transposed SpMM.
          spmm_csr_transposed_accumulate(*a, n.grad(), parent_grad(n, 0));
        }
      },
      "sptx::spmm_backward");
}

// ------------------------------------------------------------------ gather

Variable gather(const Variable& x,
                std::shared_ptr<const std::vector<index_t>> idx) {
  SPTX_CHECK(idx != nullptr, "gather: null index vector");
  profiling::ScopedHotspot hotspot("baseline::embedding_gather");
  const index_t m = static_cast<index_t>(idx->size());
  const index_t d = x.cols();
  Matrix out(m, d);
  for (index_t i = 0; i < m; ++i) {
    const index_t src = (*idx)[static_cast<std::size_t>(i)];
    SPTX_CHECK(src >= 0 && src < x.rows(), "gather index " << src);
    const float* srow = x.value().row(src);
    float* drow = out.row(i);
    for (index_t j = 0; j < d; ++j) drow[j] = srow[j];
  }
  return Variable::op(
      std::move(out), {x},
      [idx](Node& n) {
        if (!parent_needs_grad(n, 0)) return;
        // The EmbeddingBackward pattern of Figures 1(b)/2: PyTorch
        // materialises a zero matrix of the FULL table size, scatter-adds
        // the batch gradients into it row by row, then accumulates it into
        // the parameter gradient. The full-table temporary is what makes
        // this step both slow and memory-hungry in dense frameworks.
        Matrix& dx = parent_grad(n, 0);
        const Matrix& g = n.grad();
        const index_t gd = g.cols();
        Matrix scatter_buffer(dx.rows(), dx.cols());  // the zero matrix
        profiling::count_flops(g.size() + dx.size());
        for (index_t i = 0; i < g.rows(); ++i) {
          float* drow =
              scatter_buffer.row((*idx)[static_cast<std::size_t>(i)]);
          const float* grow = g.row(i);
          for (index_t j = 0; j < gd; ++j) drow[j] += grow[j];
        }
        dx.add_(scatter_buffer);
      },
      "baseline::embedding_backward_scatter");
}

// ----------------------------------------------------------------- norms

Variable row_l2(const Variable& x) {
  profiling::ScopedHotspot hotspot("sptx::row_l2");
  Matrix out = row_l2_norm(x.value());
  // Keep norms by value for the backward rule (cheap: M floats).
  auto norms = std::make_shared<Matrix>(out);
  return Variable::op(
      std::move(out), {x},
      [norms](Node& n) {
        if (!parent_needs_grad(n, 0)) return;
        Matrix& dx = parent_grad(n, 0);
        const Matrix& xv = parent_value(n, 0);
        const Matrix& g = n.grad();
        profiling::count_flops(2 * xv.size());
        for (index_t i = 0; i < xv.rows(); ++i) {
          const float denom = std::max(norms->at(i, 0), kNormEps);
          const float s = g.at(i, 0) / denom;
          const float* xrow = xv.row(i);
          float* drow = dx.row(i);
          for (index_t j = 0; j < xv.cols(); ++j) drow[j] += s * xrow[j];
        }
      },
      "sptx::row_l2_backward (LinalgVectorNormBackward)");
}

Variable row_l1(const Variable& x) {
  profiling::ScopedHotspot hotspot("sptx::row_l1");
  Matrix out = row_l1_norm(x.value());
  return Variable::op(
      std::move(out), {x},
      [](Node& n) {
        if (!parent_needs_grad(n, 0)) return;
        Matrix& dx = parent_grad(n, 0);
        const Matrix& xv = parent_value(n, 0);
        const Matrix& g = n.grad();
        profiling::count_flops(xv.size());
        for (index_t i = 0; i < xv.rows(); ++i) {
          const float gi = g.at(i, 0);
          const float* xrow = xv.row(i);
          float* drow = dx.row(i);
          for (index_t j = 0; j < xv.cols(); ++j) {
            drow[j] += gi * (xrow[j] > 0.0f   ? 1.0f
                             : xrow[j] < 0.0f ? -1.0f
                                              : 0.0f);
          }
        }
      },
      "sptx::row_l1_backward");
}

Variable row_squared_l2(const Variable& x) {
  profiling::ScopedHotspot hotspot("sptx::row_squared_l2");
  Matrix out = sptx::row_squared_l2(x.value());
  return Variable::op(
      std::move(out), {x},
      [](Node& n) {
        if (!parent_needs_grad(n, 0)) return;
        Matrix& dx = parent_grad(n, 0);
        const Matrix& xv = parent_value(n, 0);
        const Matrix& g = n.grad();
        profiling::count_flops(2 * xv.size());
        for (index_t i = 0; i < xv.rows(); ++i) {
          const float s = 2.0f * g.at(i, 0);
          const float* xrow = xv.row(i);
          float* drow = dx.row(i);
          for (index_t j = 0; j < xv.cols(); ++j) drow[j] += s * xrow[j];
        }
      },
      "sptx::row_squared_l2_backward");
}

namespace {
// Wraparound component distance on the unit torus: x ↦ (frac, m) with
// m = min(frac, 1 − frac). dm/dx = +1 on [0, ½), −1 on (½, 1).
inline void torus_component(float x, float& m, float& dsign) {
  float f = x - std::floor(x);  // frac(x) ∈ [0, 1)
  if (f < 0.5f) {
    m = f;
    dsign = 1.0f;
  } else {
    m = 1.0f - f;
    dsign = -1.0f;
  }
}
}  // namespace

Variable row_squared_l2_torus(const Variable& x) {
  profiling::ScopedHotspot hotspot("sptx::l2_torus_dissimilarity");
  const Matrix& xv = x.value();
  Matrix out(xv.rows(), 1);
  profiling::count_flops(4 * xv.size());
  for (index_t i = 0; i < xv.rows(); ++i) {
    const float* xrow = xv.row(i);
    float acc = 0.0f;
    for (index_t j = 0; j < xv.cols(); ++j) {
      float m, s;
      torus_component(xrow[j], m, s);
      acc += m * m;
    }
    out.at(i, 0) = acc;
  }
  return Variable::op(
      std::move(out), {x},
      [](Node& n) {
        if (!parent_needs_grad(n, 0)) return;
        Matrix& dx = parent_grad(n, 0);
        const Matrix& xb = parent_value(n, 0);
        const Matrix& g = n.grad();
        profiling::count_flops(4 * xb.size());
        for (index_t i = 0; i < xb.rows(); ++i) {
          const float gi = g.at(i, 0);
          const float* xrow = xb.row(i);
          float* drow = dx.row(i);
          for (index_t j = 0; j < xb.cols(); ++j) {
            float m, s;
            torus_component(xrow[j], m, s);
            drow[j] += gi * 2.0f * m * s;
          }
        }
      },
      "sptx::l2_torus_backward");
}

Variable row_l1_torus(const Variable& x) {
  profiling::ScopedHotspot hotspot("sptx::l1_torus_dissimilarity");
  const Matrix& xv = x.value();
  Matrix out(xv.rows(), 1);
  profiling::count_flops(3 * xv.size());
  for (index_t i = 0; i < xv.rows(); ++i) {
    const float* xrow = xv.row(i);
    float acc = 0.0f;
    for (index_t j = 0; j < xv.cols(); ++j) {
      float m, s;
      torus_component(xrow[j], m, s);
      acc += m;
    }
    out.at(i, 0) = acc;
  }
  return Variable::op(
      std::move(out), {x},
      [](Node& n) {
        if (!parent_needs_grad(n, 0)) return;
        Matrix& dx = parent_grad(n, 0);
        const Matrix& xb = parent_value(n, 0);
        const Matrix& g = n.grad();
        for (index_t i = 0; i < xb.rows(); ++i) {
          const float gi = g.at(i, 0);
          const float* xrow = xb.row(i);
          float* drow = dx.row(i);
          for (index_t j = 0; j < xb.cols(); ++j) {
            float m, s;
            torus_component(xrow[j], m, s);
            drow[j] += gi * s;
          }
        }
      },
      "sptx::l1_torus_backward");
}

Variable row_dot(const Variable& a, const Variable& b) {
  profiling::ScopedHotspot hotspot("sptx::row_dot");
  Matrix out = sptx::row_dot(a.value(), b.value());
  return Variable::op(
      std::move(out), {a, b},
      [](Node& n) {
        const Matrix& g = n.grad();
        const Matrix& av = parent_value(n, 0);
        const Matrix& bv = parent_value(n, 1);
        profiling::count_flops(4 * av.size());
        if (parent_needs_grad(n, 0)) {
          Matrix& da = parent_grad(n, 0);
          for (index_t i = 0; i < av.rows(); ++i) {
            const float gi = g.at(i, 0);
            const float* brow = bv.row(i);
            float* drow = da.row(i);
            for (index_t j = 0; j < av.cols(); ++j) drow[j] += gi * brow[j];
          }
        }
        if (parent_needs_grad(n, 1)) {
          Matrix& db = parent_grad(n, 1);
          for (index_t i = 0; i < av.rows(); ++i) {
            const float gi = g.at(i, 0);
            const float* arow = av.row(i);
            float* drow = db.row(i);
            for (index_t j = 0; j < av.cols(); ++j) drow[j] += gi * arow[j];
          }
        }
      },
      "sptx::row_dot_backward");
}

Variable scale_rows(const Variable& col, const Variable& x) {
  SPTX_CHECK(col.cols() == 1 && col.rows() == x.rows(),
             "scale_rows: col must be " << x.rows() << "x1");
  profiling::ScopedHotspot hotspot("sptx::scale_rows");
  Matrix out(x.value());
  out.scale_rows_(col.value());
  return Variable::op(
      std::move(out), {col, x},
      [](Node& n) {
        const Matrix& g = n.grad();
        const Matrix& colv = parent_value(n, 0);
        const Matrix& xv = parent_value(n, 1);
        profiling::count_flops(4 * xv.size());
        if (parent_needs_grad(n, 0)) {
          Matrix& dcol = parent_grad(n, 0);
          for (index_t i = 0; i < xv.rows(); ++i) {
            const float* grow = g.row(i);
            const float* xrow = xv.row(i);
            float acc = 0.0f;
            for (index_t j = 0; j < xv.cols(); ++j) acc += grow[j] * xrow[j];
            dcol.at(i, 0) += acc;
          }
        }
        if (parent_needs_grad(n, 1)) {
          Matrix& dx = parent_grad(n, 1);
          for (index_t i = 0; i < xv.rows(); ++i) {
            const float s = colv.at(i, 0);
            const float* grow = g.row(i);
            float* drow = dx.row(i);
            for (index_t j = 0; j < xv.cols(); ++j) drow[j] += s * grow[j];
          }
        }
      },
      "sptx::scale_rows_backward");
}

Variable relation_project(const Variable& proj, const Variable& x,
                          std::shared_ptr<const std::vector<index_t>> rel,
                          index_t proj_rows) {
  SPTX_CHECK(rel != nullptr, "relation_project: null relation indices");
  SPTX_CHECK(static_cast<index_t>(rel->size()) == x.rows(),
             "relation_project: " << rel->size() << " relations for "
                                  << x.rows() << " rows");
  SPTX_CHECK(proj.value().rows() % proj_rows == 0,
             "relation_project: proj stack not a multiple of dr");
  profiling::ScopedHotspot hotspot("sptx::relation_project");
  const index_t de = x.cols();
  const index_t dr = proj_rows;
  const Matrix& mv = proj.value();
  Matrix out(x.rows(), dr);
  profiling::count_flops(2 * x.rows() * dr * de);
  for (index_t i = 0; i < x.rows(); ++i) {
    const index_t r = (*rel)[static_cast<std::size_t>(i)];
    const float* xrow = x.value().row(i);
    float* orow = out.row(i);
    for (index_t p = 0; p < dr; ++p) {
      const float* mrow = mv.row(r * dr + p);
      float acc = 0.0f;
      for (index_t q = 0; q < de; ++q) acc += mrow[q] * xrow[q];
      orow[p] = acc;
    }
  }
  return Variable::op(
      std::move(out), {proj, x},
      [rel, dr](Node& n) {
        const Matrix& g = n.grad();
        const Matrix& mb = parent_value(n, 0);
        const Matrix& xv = parent_value(n, 1);
        const index_t db = xv.cols();
        profiling::count_flops(4 * g.rows() * dr * db);
        if (parent_needs_grad(n, 0)) {
          Matrix& dm = parent_grad(n, 0);
          // dM_{rel_i} += g_i · x_iᵀ (outer product per triplet).
          for (index_t i = 0; i < g.rows(); ++i) {
            const index_t r = (*rel)[static_cast<std::size_t>(i)];
            const float* grow = g.row(i);
            const float* xrow = xv.row(i);
            for (index_t p = 0; p < dr; ++p) {
              float* mrow = dm.row(r * dr + p);
              const float gp = grow[p];
              for (index_t q = 0; q < db; ++q) mrow[q] += gp * xrow[q];
            }
          }
        }
        if (parent_needs_grad(n, 1)) {
          Matrix& dx = parent_grad(n, 1);
          // dx_i += M_{rel_i}ᵀ · g_i.
          for (index_t i = 0; i < g.rows(); ++i) {
            const index_t r = (*rel)[static_cast<std::size_t>(i)];
            const float* grow = g.row(i);
            float* drow = dx.row(i);
            for (index_t p = 0; p < dr; ++p) {
              const float* mrow = mb.row(r * dr + p);
              const float gp = grow[p];
              for (index_t q = 0; q < db; ++q) drow[q] += gp * mrow[q];
            }
          }
        }
      },
      "sptx::relation_project_backward");
}

// ------------------------------------------------------------------- loss

Variable margin_ranking_loss(const Variable& pos, const Variable& neg,
                             float margin) {
  SPTX_CHECK(pos.value().same_shape(neg.value()),
             "margin loss: " << pos.value().shape_str() << " vs "
                             << neg.value().shape_str());
  SPTX_CHECK(pos.cols() == 1, "margin loss expects score columns");
  profiling::ScopedHotspot hotspot("sptx::margin_ranking_loss");
  const index_t m = pos.rows();
  const Matrix& pv = pos.value();
  const Matrix& nv = neg.value();
  double acc = 0.0;
  for (index_t i = 0; i < m; ++i) {
    const float v = margin + pv.at(i, 0) - nv.at(i, 0);
    if (v > 0.0f) acc += v;
  }
  profiling::count_flops(3 * m);
  Matrix out(1, 1);
  out.at(0, 0) = static_cast<float>(acc / static_cast<double>(m));
  return Variable::op(
      std::move(out), {pos, neg},
      [margin, m](Node& n) {
        const float g = n.grad().at(0, 0) / static_cast<float>(m);
        const Matrix& pb = parent_value(n, 0);
        const Matrix& nb = parent_value(n, 1);
        for (index_t i = 0; i < m; ++i) {
          const float v = margin + pb.at(i, 0) - nb.at(i, 0);
          if (v <= 0.0f) continue;
          if (parent_needs_grad(n, 0)) parent_grad(n, 0).at(i, 0) += g;
          if (parent_needs_grad(n, 1)) parent_grad(n, 1).at(i, 0) -= g;
        }
      },
      "sptx::margin_ranking_loss_backward");
}

Variable logistic_ranking_loss(const Variable& pos, const Variable& neg,
                               float margin) {
  SPTX_CHECK(pos.value().same_shape(neg.value()),
             "logistic loss: " << pos.value().shape_str() << " vs "
                               << neg.value().shape_str());
  SPTX_CHECK(pos.cols() == 1, "logistic loss expects score columns");
  profiling::ScopedHotspot hotspot("sptx::logistic_ranking_loss");
  const index_t m = pos.rows();
  const Matrix& pv = pos.value();
  const Matrix& nv = neg.value();
  // Numerically stable softplus: log1p(exp(−|z|)) + max(z, 0).
  auto softplus = [](float z) {
    return std::log1p(std::exp(-std::fabs(z))) + (z > 0.0f ? z : 0.0f);
  };
  double acc = 0.0;
  for (index_t i = 0; i < m; ++i) {
    acc += softplus(margin + pv.at(i, 0) - nv.at(i, 0));
  }
  profiling::count_flops(6 * m);
  Matrix out(1, 1);
  out.at(0, 0) = static_cast<float>(acc / static_cast<double>(m));
  return Variable::op(
      std::move(out), {pos, neg},
      [margin, m](Node& n) {
        const float g = n.grad().at(0, 0) / static_cast<float>(m);
        const Matrix& pb = parent_value(n, 0);
        const Matrix& nb = parent_value(n, 1);
        for (index_t i = 0; i < m; ++i) {
          const float z = margin + pb.at(i, 0) - nb.at(i, 0);
          const float sig = 1.0f / (1.0f + std::exp(-z));
          if (parent_needs_grad(n, 0)) parent_grad(n, 0).at(i, 0) += g * sig;
          if (parent_needs_grad(n, 1)) parent_grad(n, 1).at(i, 0) -= g * sig;
        }
      },
      "sptx::logistic_ranking_loss_backward");
}

Variable sum_all(const Variable& x) {
  Matrix out(1, 1);
  out.at(0, 0) = x.value().sum();
  return Variable::op(
      std::move(out), {x},
      [](Node& n) {
        if (!parent_needs_grad(n, 0)) return;
        const float g = n.grad().at(0, 0);
        Matrix& dx = parent_grad(n, 0);
        for (index_t i = 0; i < dx.size(); ++i) dx.data()[i] += g;
      },
      "sptx::sum_backward");
}

Variable mean_all(const Variable& x) {
  const float inv = 1.0f / static_cast<float>(x.value().size());
  Matrix out(1, 1);
  out.at(0, 0) = x.value().sum() * inv;
  return Variable::op(
      std::move(out), {x},
      [inv](Node& n) {
        if (!parent_needs_grad(n, 0)) return;
        const float g = n.grad().at(0, 0) * inv;
        Matrix& dx = parent_grad(n, 0);
        for (index_t i = 0; i < dx.size(); ++i) dx.data()[i] += g;
      },
      "sptx::mean_backward");
}

// ------------------------------------------- semiring models (Appendix D)

Variable distmult_score(const Variable& ent_rel,
                        std::shared_ptr<const std::vector<Triplet>> batch,
                        index_t num_entities) {
  SPTX_CHECK(batch != nullptr, "distmult_score: null batch");
  profiling::ScopedHotspot hotspot("sptx::distmult_semiring_spmm");
  const Matrix& e = ent_rel.value();
  const index_t d = e.cols();
  const index_t m = static_cast<index_t>(batch->size());
  Matrix out(m, 1);
  profiling::count_flops(3 * m * d);
  for (index_t i = 0; i < m; ++i) {
    const Triplet& t = (*batch)[static_cast<std::size_t>(i)];
    const float* h = e.row(t.head);
    const float* r = e.row(num_entities + t.relation);
    const float* tl = e.row(t.tail);
    float acc = 0.0f;
    for (index_t j = 0; j < d; ++j) acc += h[j] * r[j] * tl[j];
    out.at(i, 0) = acc;
  }
  return Variable::op(
      std::move(out), {ent_rel},
      [batch, num_entities](Node& n) {
        if (!parent_needs_grad(n, 0)) return;
        const Matrix& ev = parent_value(n, 0);
        Matrix& de = parent_grad(n, 0);
        const Matrix& g = n.grad();
        const index_t gd = ev.cols();
        profiling::count_flops(9 * g.rows() * gd);
        for (index_t i = 0; i < g.rows(); ++i) {
          const Triplet& t = (*batch)[static_cast<std::size_t>(i)];
          const float gi = g.at(i, 0);
          const float* h = ev.row(t.head);
          const float* r = ev.row(num_entities + t.relation);
          const float* tl = ev.row(t.tail);
          float* dh = de.row(t.head);
          float* dr = de.row(num_entities + t.relation);
          float* dt = de.row(t.tail);
          for (index_t j = 0; j < gd; ++j) {
            dh[j] += gi * r[j] * tl[j];
            dr[j] += gi * h[j] * tl[j];
            dt[j] += gi * h[j] * r[j];
          }
        }
      },
      "sptx::distmult_backward");
}

Variable complex_score(const Variable& ent_rel,
                       std::shared_ptr<const std::vector<Triplet>> batch,
                       index_t num_entities) {
  SPTX_CHECK(batch != nullptr, "complex_score: null batch");
  SPTX_CHECK(ent_rel.cols() % 2 == 0, "complex_score: odd embedding dim");
  profiling::ScopedHotspot hotspot("sptx::complex_semiring_spmm");
  const Matrix& e = ent_rel.value();
  const index_t dc = e.cols() / 2;
  const index_t m = static_cast<index_t>(batch->size());
  Matrix out(m, 1);
  profiling::count_flops(14 * m * dc);
  // Re(h·r·conj(t)) per complex component, summed. Expanded:
  //   Re((hr)·conj(t)) = (hr)_re·t_re + (hr)_im·t_im.
  for (index_t i = 0; i < m; ++i) {
    const Triplet& t = (*batch)[static_cast<std::size_t>(i)];
    const float* h = e.row(t.head);
    const float* r = e.row(num_entities + t.relation);
    const float* tl = e.row(t.tail);
    float acc = 0.0f;
    for (index_t j = 0; j < dc; ++j) {
      const float hr_re = h[2 * j] * r[2 * j] - h[2 * j + 1] * r[2 * j + 1];
      const float hr_im = h[2 * j] * r[2 * j + 1] + h[2 * j + 1] * r[2 * j];
      acc += hr_re * tl[2 * j] + hr_im * tl[2 * j + 1];
    }
    out.at(i, 0) = acc;
  }
  return Variable::op(
      std::move(out), {ent_rel},
      [batch, num_entities](Node& n) {
        if (!parent_needs_grad(n, 0)) return;
        const Matrix& ev = parent_value(n, 0);
        Matrix& de = parent_grad(n, 0);
        const Matrix& g = n.grad();
        const index_t gdc = ev.cols() / 2;
        profiling::count_flops(30 * g.rows() * gdc);
        for (index_t i = 0; i < g.rows(); ++i) {
          const Triplet& t = (*batch)[static_cast<std::size_t>(i)];
          const float gi = g.at(i, 0);
          const float* h = ev.row(t.head);
          const float* r = ev.row(num_entities + t.relation);
          const float* tl = ev.row(t.tail);
          float* dh = de.row(t.head);
          float* dr = de.row(num_entities + t.relation);
          float* dt = de.row(t.tail);
          for (index_t j = 0; j < gdc; ++j) {
            const float hre = h[2 * j], him = h[2 * j + 1];
            const float rre = r[2 * j], rim = r[2 * j + 1];
            const float tre = tl[2 * j], tim = tl[2 * j + 1];
            // score_j = (hre·rre − him·rim)·tre + (hre·rim + him·rre)·tim
            dh[2 * j] += gi * (rre * tre + rim * tim);
            dh[2 * j + 1] += gi * (-rim * tre + rre * tim);
            dr[2 * j] += gi * (hre * tre + him * tim);
            dr[2 * j + 1] += gi * (-him * tre + hre * tim);
            dt[2 * j] += gi * (hre * rre - him * rim);
            dt[2 * j + 1] += gi * (hre * rim + him * rre);
          }
        }
      },
      "sptx::complex_backward");
}

Variable rotate_score(const Variable& ent_rel,
                      std::shared_ptr<const std::vector<Triplet>> batch,
                      index_t num_entities) {
  SPTX_CHECK(batch != nullptr, "rotate_score: null batch");
  SPTX_CHECK(ent_rel.cols() % 2 == 0, "rotate_score: odd embedding dim");
  profiling::ScopedHotspot hotspot("sptx::rotate_semiring_spmm");
  const Matrix& e = ent_rel.value();
  const index_t dc = e.cols() / 2;
  const index_t m = static_cast<index_t>(batch->size());
  Matrix out(m, 1);
  // RotatE treats each relation component as a unit rotation; instead of a
  // hard projection we normalise the relation factor on the fly:
  // rot = r / |r| componentwise (|r| clamped away from 0).
  auto diffs = std::make_shared<Matrix>(m, 2 * dc);  // h∘rot − t (cached)
  profiling::count_flops(16 * m * dc);
  for (index_t i = 0; i < m; ++i) {
    const Triplet& t = (*batch)[static_cast<std::size_t>(i)];
    const float* h = e.row(t.head);
    const float* r = e.row(num_entities + t.relation);
    const float* tl = e.row(t.tail);
    float* diff = diffs->row(i);
    float acc = 0.0f;
    for (index_t j = 0; j < dc; ++j) {
      const float mag = std::max(
          std::sqrt(r[2 * j] * r[2 * j] + r[2 * j + 1] * r[2 * j + 1]),
          kNormEps);
      const float rre = r[2 * j] / mag, rim = r[2 * j + 1] / mag;
      const float dre = h[2 * j] * rre - h[2 * j + 1] * rim - tl[2 * j];
      const float dim = h[2 * j] * rim + h[2 * j + 1] * rre - tl[2 * j + 1];
      diff[2 * j] = dre;
      diff[2 * j + 1] = dim;
      acc += dre * dre + dim * dim;
    }
    out.at(i, 0) = std::sqrt(std::max(acc, kNormEps));
  }
  auto scores = std::make_shared<Matrix>(out);
  return Variable::op(
      std::move(out), {ent_rel},
      [batch, num_entities, diffs, scores](Node& n) {
        if (!parent_needs_grad(n, 0)) return;
        const Matrix& ev = parent_value(n, 0);
        Matrix& de = parent_grad(n, 0);
        const Matrix& g = n.grad();
        const index_t gdc = ev.cols() / 2;
        profiling::count_flops(24 * g.rows() * gdc);
        // d||v||/dv = v/||v||; then chain through the rotation. The
        // relation gradient is taken through the normalised factor
        // treating |r| as constant (projected-gradient approximation used
        // by unit-modulus RotatE implementations).
        for (index_t i = 0; i < g.rows(); ++i) {
          const Triplet& t = (*batch)[static_cast<std::size_t>(i)];
          const float gi = g.at(i, 0) / std::max(scores->at(i, 0), kNormEps);
          const float* h = ev.row(t.head);
          const float* r = ev.row(num_entities + t.relation);
          const float* diff = diffs->row(i);
          float* dh = de.row(t.head);
          float* dr = de.row(num_entities + t.relation);
          float* dt = de.row(t.tail);
          for (index_t j = 0; j < gdc; ++j) {
            const float mag = std::max(
                std::sqrt(r[2 * j] * r[2 * j] + r[2 * j + 1] * r[2 * j + 1]),
                kNormEps);
            const float rre = r[2 * j] / mag, rim = r[2 * j + 1] / mag;
            const float gre = gi * diff[2 * j];
            const float gim = gi * diff[2 * j + 1];
            // d diff / dh = rotation matrix [rre −rim; rim rre].
            dh[2 * j] += gre * rre + gim * rim;
            dh[2 * j + 1] += -gre * rim + gim * rre;
            // d diff / d rot, scaled back by 1/mag.
            dr[2 * j] += (gre * h[2 * j] + gim * h[2 * j + 1]) / mag;
            dr[2 * j + 1] += (-gre * h[2 * j + 1] + gim * h[2 * j]) / mag;
            dt[2 * j] -= gre;
            dt[2 * j + 1] -= gim;
          }
        }
      },
      "sptx::rotate_backward");
}

}  // namespace sptx::autograd
