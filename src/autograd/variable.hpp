// Tape-based reverse-mode automatic differentiation.
//
// Fills the role PyTorch's autograd plays in the paper's framework: models
// compose differentiable ops into a graph, `backward()` walks it in reverse
// topological order, and each op's backward rule accumulates into its
// parents' gradients. The op set is deliberately the one KGE training needs
// (Figure 2's hot functions: embedding gather/scatter, SpMM, norms, the
// torus dissimilarity, margin loss) so the fwd/bwd/step breakdown of
// Table 1 / Figure 8 can be measured like-for-like against the paper.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/tensor/matrix.hpp"

namespace sptx::autograd {

class Node;
using NodePtr = std::shared_ptr<Node>;

/// A node in the autograd graph: a value, an optional gradient, and the
/// backward rule that pushes this node's gradient into its parents.
class Node {
 public:
  Node(Matrix value, bool requires_grad, const char* op_name)
      : value_(std::move(value)),
        requires_grad_(requires_grad),
        op_name_(op_name) {}

  const Matrix& value() const { return value_; }
  Matrix& mutable_value() { return value_; }

  bool requires_grad() const { return requires_grad_; }
  const char* op_name() const { return op_name_; }

  /// Gradient matrix, allocated zeroed on first access.
  Matrix& grad() {
    if (grad_.empty() && value_.size() > 0) {
      grad_ = Matrix(value_.rows(), value_.cols());
    }
    return grad_;
  }
  bool has_grad() const { return !grad_.empty(); }
  void zero_grad() {
    if (!grad_.empty()) grad_.zero();
  }

  const std::vector<NodePtr>& parents() const { return parents_; }

 private:
  friend class Variable;
  Matrix value_;
  Matrix grad_;
  bool requires_grad_;
  const char* op_name_;
  std::vector<NodePtr> parents_;
  std::function<void(Node&)> backward_fn_;
};

/// Value-semantics handle to a graph node. Copies share the node.
class Variable {
 public:
  Variable() = default;

  /// A leaf (parameter or constant). Parameters set requires_grad.
  static Variable leaf(Matrix value, bool requires_grad = false,
                       const char* name = "leaf") {
    Variable v;
    v.node_ = std::make_shared<Node>(std::move(value), requires_grad, name);
    return v;
  }

  /// An op result with recorded parents and backward rule.
  static Variable op(Matrix value, std::vector<Variable> parents,
                     std::function<void(Node&)> backward_fn,
                     const char* name) {
    bool any_grad = false;
    std::vector<NodePtr> parent_nodes;
    parent_nodes.reserve(parents.size());
    for (const Variable& p : parents) {
      any_grad = any_grad || p.requires_grad();
      parent_nodes.push_back(p.node_);
    }
    Variable v;
    v.node_ = std::make_shared<Node>(std::move(value), any_grad, name);
    if (any_grad) {
      v.node_->parents_ = std::move(parent_nodes);
      v.node_->backward_fn_ = std::move(backward_fn);
    }
    return v;
  }

  bool defined() const { return node_ != nullptr; }
  const Matrix& value() const { return node_->value(); }
  Matrix& mutable_value() { return node_->mutable_value(); }
  Matrix& grad() { return node_->grad(); }
  bool has_grad() const { return node_ && node_->has_grad(); }
  bool requires_grad() const { return node_ && node_->requires_grad(); }
  void zero_grad() {
    if (node_) node_->zero_grad();
  }
  index_t rows() const { return value().rows(); }
  index_t cols() const { return value().cols(); }

  Node* node() const { return node_.get(); }
  const NodePtr& node_ptr() const { return node_; }

  /// Run reverse-mode autodiff from this (scalar or any-shaped) variable.
  /// Seeds d(this)/d(this) = 1 and accumulates into every reachable
  /// requires-grad node's grad(). Existing gradients are accumulated into,
  /// not overwritten (call zero_grad on parameters between steps).
  void backward() const;

 private:
  NodePtr node_;
};

}  // namespace sptx::autograd
