// Differentiable operations.
//
// Two families:
//  * Coarse-grained sparse ops (spmm) — the paper's contribution: forward is
//    one SpMM over the incidence matrix, backward is one transposed SpMM
//    (Appendix G).
//  * Fine-grained dense ops (gather + elementwise) — the TorchKGE-style
//    baseline path: forward gathers one embedding row per triplet per role,
//    backward scatter-adds per row ("EmbeddingBackward" in Figure 2).
// Plus the shared tail of every score function: norms, the torus
// dissimilarity, row dots, per-relation projections, and the margin ranking
// loss.
//
// Backward-rule notation in the comments: g is the incoming gradient
// (dL/d out); each rule states what is accumulated into each parent.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "src/autograd/variable.hpp"
#include "src/kg/triplet.hpp"
#include "src/sparse/sparse_matrix.hpp"
#include "src/sparse/spmm.hpp"

namespace sptx::autograd {

// ---- Elementwise / linear ---------------------------------------------
/// c = a + b.                Backward: da += g; db += g.
Variable add(const Variable& a, const Variable& b);
/// c = a − b.                Backward: da += g; db −= g.
Variable sub(const Variable& a, const Variable& b);
/// c = a ⊙ b.                Backward: da += g⊙b; db += g⊙a.
Variable mul(const Variable& a, const Variable& b);
/// c = s·a.                  Backward: da += s·g.
Variable scale(const Variable& a, float s);

// ---- Sparse path (SpTransX) --------------------------------------------
/// c = A · x, A a CSR incidence matrix held by shared_ptr so the graph can
/// outlive the caller's batch scope. Backward: dx += Aᵀ·g — a second SpMM
/// (Appendix G), not M row-scatters.
Variable spmm(std::shared_ptr<const Csr> a, const Variable& x,
              SpmmKernel kernel = SpmmKernel::kAuto);

// ---- Dense baseline path (TorchKGE-style) --------------------------------
/// c_i = x[idx_i, :]: per-row embedding lookup. Backward scatter-adds g's
/// rows into dx one index at a time — the fine-grained
/// EmbeddingBackward pattern the paper identifies as the bottleneck.
Variable gather(const Variable& x, std::shared_ptr<const std::vector<index_t>> idx);

// ---- Score-function tails -------------------------------------------------
/// out_i = ||x_i||₂ (M×1).   Backward: dx_i += g_i · x_i / max(||x_i||, ε).
Variable row_l2(const Variable& x);
/// out_i = ||x_i||₁.          Backward: dx_i += g_i · sign(x_i).
Variable row_l1(const Variable& x);
/// out_i = ||x_i||₂².         Backward: dx_i += 2 g_i x_i.
Variable row_squared_l2(const Variable& x);
/// TorusE L2 torus dissimilarity (squared): per component the wraparound
/// distance m = min(frac(x), 1−frac(x)); out_i = Σ_j m_ij².
/// Backward: d m²/dx = 2m where frac < 1/2, −2m otherwise.
Variable row_squared_l2_torus(const Variable& x);
/// TorusE L1 torus dissimilarity: out_i = Σ_j m_ij.
Variable row_l1_torus(const Variable& x);
/// out_i = ⟨a_i, b_i⟩ (M×1). Backward: da_i += g_i b_i; db_i += g_i a_i.
Variable row_dot(const Variable& a, const Variable& b);
/// out_i = col_i · x_i (row scaling by an M×1 column).
/// Backward: dcol_i += ⟨g_i, x_i⟩; dx_i += col_i · g_i.
Variable scale_rows(const Variable& col, const Variable& x);

/// Per-relation linear projection (TransR): proj stores R stacked (dr×de)
/// blocks as an (R·dr × de) matrix; out_i = M_{rel_i} · x_i.
/// Backward: dx_i += M_{rel_i}ᵀ g_i; dM_{rel_i} += g_i x_iᵀ.
Variable relation_project(const Variable& proj, const Variable& x,
                          std::shared_ptr<const std::vector<index_t>> rel,
                          index_t proj_rows);

// ---- Losses / reductions ---------------------------------------------
/// Margin ranking loss over distance scores (lower is better):
/// L = mean_i max(0, margin + pos_i − neg_i)  (1×1 scalar).
/// Backward: where active, dpos_i += g/M, dneg_i −= g/M.
Variable margin_ranking_loss(const Variable& pos, const Variable& neg,
                             float margin);
/// Smooth (logistic) ranking loss: L = mean_i softplus(margin + pos_i −
/// neg_i). Backward: dpos_i += σ(z_i)·g/M, dneg_i −= σ(z_i)·g/M.
Variable logistic_ranking_loss(const Variable& pos, const Variable& neg,
                               float margin);
/// Scalar sum of all elements. Backward: dx += g (broadcast).
Variable sum_all(const Variable& x);
/// Scalar mean of all elements.
Variable mean_all(const Variable& x);

// ---- Semiring extension ops (Appendix D) ----------------------------------
/// DistMult score: out_i = Σ_j (h ⊙ r ⊙ t)_ij with all three rows read from
/// the stacked [E; R] matrix via the index triple. Higher is better.
Variable distmult_score(const Variable& ent_rel,
                        std::shared_ptr<const std::vector<Triplet>> batch,
                        index_t num_entities);
/// ComplEx score: out_i = Σ_j Re(h ⊙ r ⊙ conj(t))_ij (interleaved complex).
Variable complex_score(const Variable& ent_rel,
                       std::shared_ptr<const std::vector<Triplet>> batch,
                       index_t num_entities);
/// RotatE distance: out_i = ||h ⊙ r − t||₂ with |r_j| = 1 enforced by
/// normalising the relation factors inside the kernel. Lower is better.
Variable rotate_score(const Variable& ent_rel,
                      std::shared_ptr<const std::vector<Triplet>> batch,
                      index_t num_entities);

}  // namespace sptx::autograd
