#include "src/autograd/variable.hpp"

#include <unordered_set>

#include "src/common/error.hpp"
#include "src/profiling/timer.hpp"

namespace sptx::autograd {

namespace {

// Iterative post-order DFS: children (parents in graph terms) before the
// node itself, so reversing yields a valid topological order for backprop.
void topo_sort(Node* root, std::vector<Node*>& order) {
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, std::size_t>> stack;
  stack.emplace_back(root, 0);
  visited.insert(root);
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    const auto& parents = node->parents();
    if (next_child < parents.size()) {
      Node* child = parents[next_child++].get();
      if (child->requires_grad() && visited.insert(child).second) {
        stack.emplace_back(child, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Variable::backward() const {
  SPTX_CHECK(defined(), "backward() on undefined Variable");
  SPTX_CHECK(node_->requires_grad(),
             "backward() on a graph with no differentiable leaves");

  std::vector<Node*> order;
  topo_sort(node_.get(), order);

  // Interior (op-result) gradients are scratch space for this traversal;
  // only leaf gradients accumulate across backward calls (PyTorch
  // semantics: non-leaf grads are not retained).
  for (Node* n : order) {
    if (!n->parents().empty()) n->zero_grad();
  }

  // Seed: dL/dL = 1 for every element of the root (scalar in practice).
  node_->grad().fill(1.0f);

  // Reverse topological order: every node's grad is complete before its
  // backward rule fires.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* n = *it;
    if (n->backward_fn_ && n->has_grad()) {
      profiling::ScopedHotspot hotspot(n->op_name());
      n->backward_fn_(*n);
    }
  }
}

}  // namespace sptx::autograd
