// Dense row-major float32 matrix — the library's only dense tensor type.
//
// The paper's framework stores entity/relation embeddings as dense matrices
// E ∈ R^{(N+R)×d} and all intermediate batch tensors as M×d matrices; a 2-D
// row-major float matrix is therefore the complete dense substrate needed.
// Buffers are 64-byte aligned (cache line / AVX-512 friendly) and registered
// with the MemoryTracker so training-loop footprints can be measured the way
// the paper measures CUDA allocations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"

namespace sptx {

using index_t = std::int64_t;

class Matrix {
 public:
  Matrix() = default;
  /// Allocates rows×cols floats, zero-initialised.
  Matrix(index_t rows, index_t cols);
  /// Build a small matrix from nested initializer lists (tests/examples).
  Matrix(std::initializer_list<std::initializer_list<float>> init);

  Matrix(const Matrix& other);
  Matrix& operator=(const Matrix& other);
  Matrix(Matrix&& other) noexcept;
  Matrix& operator=(Matrix&& other) noexcept;
  ~Matrix();

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }
  std::size_t bytes() const {
    return static_cast<std::size_t>(size()) * sizeof(float);
  }

  float* data() { return data_; }
  const float* data() const { return data_; }
  float* row(index_t i) { return data_ + i * cols_; }
  const float* row(index_t i) const { return data_ + i * cols_; }
  std::span<float> row_span(index_t i) {
    return {row(i), static_cast<std::size_t>(cols_)};
  }
  std::span<const float> row_span(index_t i) const {
    return {row(i), static_cast<std::size_t>(cols_)};
  }

  float& at(index_t i, index_t j) {
    SPTX_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_, "index");
    return data_[i * cols_ + j];
  }
  float at(index_t i, index_t j) const {
    SPTX_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_, "index");
    return data_[i * cols_ + j];
  }
  float& operator()(index_t i, index_t j) { return at(i, j); }
  float operator()(index_t i, index_t j) const { return at(i, j); }

  bool same_shape(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

  // ---- In-place fillers -------------------------------------------------
  void fill(float v);
  void zero() { fill(0.0f); }
  /// Uniform in [lo, hi).
  void fill_uniform(Rng& rng, float lo, float hi);
  /// Standard normal scaled by `stddev`.
  void fill_normal(Rng& rng, float stddev = 1.0f);
  /// Xavier/Glorot uniform for an (fan_in=cols) embedding row layout; the
  /// TransE paper's init: U(-6/sqrt(d), 6/sqrt(d)).
  void fill_xavier(Rng& rng);

  // ---- In-place arithmetic ----------------------------------------------
  void add_(const Matrix& o);                  // this += o
  void sub_(const Matrix& o);                  // this -= o
  void mul_(const Matrix& o);                  // this *= o (elementwise)
  void scale_(float s);                        // this *= s
  void axpy_(float alpha, const Matrix& o);    // this += alpha * o
  /// this[i,:] *= col[i] for a (rows×1) column vector.
  void scale_rows_(const Matrix& col);
  /// L2-normalize every row in place (no-op on zero rows). TransE re-
  /// normalizes entity embeddings each batch; exposed here for that.
  void normalize_rows_l2_();

  // ---- Reductions --------------------------------------------------------
  float sum() const;
  float max_abs() const;
  /// Frobenius-squared norm.
  float squared_norm() const;

  /// String rendering for error messages / small examples.
  std::string shape_str() const;

 private:
  void allocate(index_t rows, index_t cols);
  void release();

  float* data_ = nullptr;
  index_t rows_ = 0;
  index_t cols_ = 0;
  // Bytes this buffer reported to the MemoryTracker at acquisition. Usually
  // bytes(), but a buffer recycled through the Workspace pool keeps the
  // count of its original allocation (its padded capacity covers both), so
  // alloc/free accounting stays exactly paired.
  std::size_t tracked_bytes_ = 0;
};

// ---- Out-of-place helpers (allocate the result) --------------------------
Matrix add(const Matrix& a, const Matrix& b);
Matrix sub(const Matrix& a, const Matrix& b);
Matrix hadamard(const Matrix& a, const Matrix& b);
Matrix scaled(const Matrix& a, float s);

/// C = A · B (naive register-blocked GEMM; used by TransR projections in
/// the baseline path and by tests — embedding training itself never needs a
/// large dense GEMM, which is the paper's point).
Matrix matmul(const Matrix& a, const Matrix& b);
/// C = Aᵀ · B.
Matrix matmul_tn(const Matrix& a, const Matrix& b);
/// C = A · Bᵀ.
Matrix matmul_nt(const Matrix& a, const Matrix& b);

/// Row-wise reductions; results are (rows×1) column vectors.
Matrix row_l1_norm(const Matrix& x);
Matrix row_l2_norm(const Matrix& x);
Matrix row_squared_l2(const Matrix& x);
/// Row-wise dot product of equal-shaped matrices → (rows×1).
Matrix row_dot(const Matrix& a, const Matrix& b);

/// Max elementwise absolute difference (test helper).
float max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace sptx
