#include "src/tensor/workspace.hpp"

#include <cstdlib>

#include "src/tensor/memory_tracker.hpp"

namespace sptx {

Workspace& Workspace::instance() {
  static Workspace ws;
  return ws;
}

void Workspace::enable() {
  std::lock_guard<std::mutex> lock(mu_);
  ++depth_;
}

void Workspace::disable() {
  bool drain = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (depth_ > 0 && --depth_ == 0) drain = true;
  }
  if (drain) trim();
}

std::optional<Workspace::Buffer> Workspace::acquire(std::size_t padded_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (depth_ == 0) return std::nullopt;
  auto it = pool_.find(padded_bytes);
  if (it == pool_.end() || it->second.empty()) {
    ++misses_;
    return std::nullopt;
  }
  Buffer b = it->second.back();
  it->second.pop_back();
  ++hits_;
  --cached_count_;
  cached_bytes_ -= static_cast<std::int64_t>(b.tracked_bytes);
  return b;
}

bool Workspace::release(Buffer buffer, std::size_t padded_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (depth_ == 0) return false;
  pool_[padded_bytes].push_back(buffer);
  ++cached_count_;
  cached_bytes_ += static_cast<std::int64_t>(buffer.tracked_bytes);
  return true;
}

void Workspace::trim() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [size, buffers] : pool_) {
    for (Buffer& b : buffers) {
      MemoryTracker::instance().on_free(b.tracked_bytes);
      std::free(b.data);
    }
  }
  pool_.clear();
  cached_bytes_ = 0;
  cached_count_ = 0;
}

Workspace::Stats Workspace::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.cached_buffers = cached_count_;
  s.cached_bytes = cached_bytes_;
  return s;
}

}  // namespace sptx
