#include "src/tensor/workspace.hpp"

#include <cstdint>
#include <cstdlib>

#include "src/common/error.hpp"
#include "src/tensor/memory_tracker.hpp"

namespace sptx {

namespace {
// Every pooled buffer must keep the 64-byte (cache-line / AVX) alignment
// Matrix::allocate established — the fused kernels and the SpMM engine rely
// on aligned base pointers for their vector loads. Checked at the pool
// boundary so a foreign buffer can never poison the recycle path.
constexpr std::size_t kPoolAlignment = 64;

bool aligned(const float* p) {
  return reinterpret_cast<std::uintptr_t>(p) % kPoolAlignment == 0;
}
}  // namespace

Workspace& Workspace::instance() {
  static Workspace ws;
  return ws;
}

void Workspace::enable() {
  MutexLock lock(mu_);
  depth_.fetch_add(1, std::memory_order_release);
}

void Workspace::disable() {
  bool drain = false;
  {
    MutexLock lock(mu_);
    if (depth_.load(std::memory_order_relaxed) > 0 &&
        depth_.fetch_sub(1, std::memory_order_acq_rel) == 1)
      drain = true;
  }
  if (drain) trim();
}

std::optional<Workspace::Buffer> Workspace::acquire(std::size_t padded_bytes) {
  MutexLock lock(mu_);
  if (depth_.load(std::memory_order_relaxed) == 0) return std::nullopt;
  auto it = pool_.find(padded_bytes);
  if (it == pool_.end() || it->second.empty()) {
    ++misses_;
    return std::nullopt;
  }
  Buffer b = it->second.back();
  it->second.pop_back();
  ++hits_;
  --cached_count_;
  cached_bytes_ -= static_cast<std::int64_t>(b.tracked_bytes);
  return b;
}

bool Workspace::release(Buffer buffer, std::size_t padded_bytes) {
  SPTX_CHECK(aligned(buffer.data),
             "Workspace::release: buffer not 64-byte aligned");
  MutexLock lock(mu_);
  if (depth_.load(std::memory_order_relaxed) == 0) return false;
  pool_[padded_bytes].push_back(buffer);
  ++cached_count_;
  cached_bytes_ += static_cast<std::int64_t>(buffer.tracked_bytes);
  return true;
}

void Workspace::trim() {
  MutexLock lock(mu_);
  for (auto& [size, buffers] : pool_) {
    for (Buffer& b : buffers) {
      MemoryTracker::instance().on_free(b.tracked_bytes);
      std::free(b.data);
    }
  }
  pool_.clear();
  cached_bytes_ = 0;
  cached_count_ = 0;
}

Workspace::Stats Workspace::stats() const {
  MutexLock lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.cached_buffers = cached_count_;
  s.cached_bytes = cached_bytes_;
  return s;
}

}  // namespace sptx
