#include "src/tensor/serialize.hpp"

#include <cstdint>
#include <fstream>

#include "src/common/error.hpp"

namespace sptx {

namespace {
constexpr std::uint64_t kMatrixMagic = 0x5350545826'4d41ULL;  // "SPTX&MA"
}

void write_matrix(std::ostream& os, const Matrix& m) {
  const std::uint64_t magic = kMatrixMagic;
  const std::int64_t rows = m.rows(), cols = m.cols();
  os.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  os.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  os.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  os.write(reinterpret_cast<const char*>(m.data()),
           static_cast<std::streamsize>(m.bytes()));
  SPTX_CHECK(os.good(), "matrix write failed");
}

Matrix read_matrix(std::istream& is) {
  std::uint64_t magic = 0;
  std::int64_t rows = 0, cols = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  SPTX_CHECK(is.good() && magic == kMatrixMagic,
             "stream does not hold an sptx matrix");
  is.read(reinterpret_cast<char*>(&rows), sizeof(rows));
  is.read(reinterpret_cast<char*>(&cols), sizeof(cols));
  SPTX_CHECK(is.good() && rows >= 0 && cols >= 0, "bad matrix header");
  Matrix m(rows, cols);
  is.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(m.bytes()));
  SPTX_CHECK(is.good() || m.size() == 0, "truncated matrix payload");
  return m;
}

void save_matrix(const std::string& path, const Matrix& m) {
  std::ofstream os(path, std::ios::binary);
  SPTX_CHECK(os.good(), "cannot write " << path);
  write_matrix(os, m);
}

Matrix load_matrix(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  SPTX_CHECK(is.good(), "cannot read " << path);
  return read_matrix(is);
}

}  // namespace sptx
