// Reusable buffer arena for the training hot path.
//
// Steady-state training allocates the same tensor shapes every batch
// (incidence SpMM outputs, norm columns, autograd scratch gradients); paying
// the allocator — and the MemoryTracker — for each of them is pure overhead
// and makes Table 5-style footprint measurements noisy. The Workspace is a
// caching allocator in the spirit of torch's CUDA caching allocator: while a
// ScopedWorkspace is active, Matrix buffers released by destructors are
// parked in per-size free lists and handed back to the next allocation of
// the same (64-byte padded) capacity. After a one-batch warmup the training
// loop performs zero heap allocations: MemoryTracker::total_allocs() stays
// flat across batches (asserted by tests/test_workspace.cpp).
//
// Accounting: the tracker sees on_alloc exactly when a buffer is malloc'd
// and on_free exactly when it is returned to the OS (pool drain, or any
// release outside a scope). Pooled buffers therefore count as live — the
// same "reserved" semantics torch.cuda reports — and peak() is unaffected.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/thread_annotations.hpp"

namespace sptx {

class Workspace {
 public:
  struct Buffer {
    float* data = nullptr;
    std::size_t tracked_bytes = 0;  // bytes this buffer reported on_alloc
  };

  struct Stats {
    std::int64_t hits = 0;            // allocations served from the pool
    std::int64_t misses = 0;          // allocations that fell through to malloc
    std::int64_t cached_buffers = 0;  // buffers parked right now
    std::int64_t cached_bytes = 0;    // tracked bytes parked right now
  };

  static Workspace& instance();

  /// Advisory lock-free snapshot of "is any scope active". depth_ is
  /// atomic — the historical plain-int read raced with enable()/disable()
  /// from other threads (flagged by the thread-safety annotation pass).
  bool enabled() const { return depth_.load(std::memory_order_acquire) > 0; }

  /// Nested enable/disable (ScopedWorkspace drives this); the pool drains —
  /// returns every parked buffer to the OS — when the last scope exits.
  void enable() SPTX_EXCLUDES(mu_);
  void disable() SPTX_EXCLUDES(mu_);

  /// A parked buffer of exactly `padded_bytes` capacity, or nullopt when the
  /// pool is disabled or empty for that size (caller mallocs and reports
  /// on_alloc itself).
  std::optional<Buffer> acquire(std::size_t padded_bytes) SPTX_EXCLUDES(mu_);

  /// Park `buffer` for reuse. Returns false when the pool is disabled — the
  /// caller then frees and reports on_free itself.
  bool release(Buffer buffer, std::size_t padded_bytes) SPTX_EXCLUDES(mu_);

  /// Free every parked buffer (reporting on_free for each).
  void trim() SPTX_EXCLUDES(mu_);

  Stats stats() const SPTX_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  /// Active-scope count. Writes happen under mu_ (they must be serialized
  /// with pool mutation and the drain decision); reads may be lock-free
  /// (enabled()).
  std::atomic<int> depth_{0};
  std::unordered_map<std::size_t, std::vector<Buffer>> pool_
      SPTX_GUARDED_BY(mu_);
  std::int64_t hits_ SPTX_GUARDED_BY(mu_) = 0;
  std::int64_t misses_ SPTX_GUARDED_BY(mu_) = 0;
  std::int64_t cached_bytes_ SPTX_GUARDED_BY(mu_) = 0;
  std::int64_t cached_count_ SPTX_GUARDED_BY(mu_) = 0;
};

/// RAII hot-path scope: Matrix buffers recycle for the scope's lifetime.
/// The trainer wraps its epoch loop in one; nesting is fine.
class ScopedWorkspace {
 public:
  ScopedWorkspace() { Workspace::instance().enable(); }
  ~ScopedWorkspace() { Workspace::instance().disable(); }
  ScopedWorkspace(const ScopedWorkspace&) = delete;
  ScopedWorkspace& operator=(const ScopedWorkspace&) = delete;
};

}  // namespace sptx
