// Instrumented allocation tracking.
//
// The paper reports peak CUDA memory allocation (Table 5, Figure 6) via
// torch.cuda.max_memory_allocated. We reproduce the measurement with a
// process-wide tracker that every Matrix buffer registers with: `current()`
// is live training-tensor bytes, `peak()` the high-water mark since the
// last reset_peak(). Relative footprints between the sparse formulation and
// the dense gather/scatter baseline are what the paper's tables compare.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace sptx {

class MemoryTracker {
 public:
  static MemoryTracker& instance();

  void on_alloc(std::size_t bytes) {
    const std::int64_t cur =
        current_.fetch_add(static_cast<std::int64_t>(bytes),
                           std::memory_order_relaxed) +
        static_cast<std::int64_t>(bytes);
    // Lock-free peak update.
    std::int64_t prev = peak_.load(std::memory_order_relaxed);
    while (cur > prev &&
           !peak_.compare_exchange_weak(prev, cur, std::memory_order_relaxed)) {
    }
    total_allocs_.fetch_add(1, std::memory_order_relaxed);
  }

  void on_free(std::size_t bytes) {
    current_.fetch_sub(static_cast<std::int64_t>(bytes),
                       std::memory_order_relaxed);
  }

  /// Live tracked bytes right now.
  std::int64_t current() const {
    return current_.load(std::memory_order_relaxed);
  }
  /// High-water mark since the last reset_peak().
  std::int64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  /// Number of tracked allocations since process start.
  std::int64_t total_allocs() const {
    return total_allocs_.load(std::memory_order_relaxed);
  }

  /// Start a new measurement window: the peak restarts from current().
  void reset_peak() { peak_.store(current(), std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> current_{0};
  std::atomic<std::int64_t> peak_{0};
  std::atomic<std::int64_t> total_allocs_{0};
};

/// RAII measurement window: peak_bytes() after the scope ran gives the
/// high-water mark of allocations made inside it (plus pre-existing live
/// bytes, as torch.cuda.max_memory_allocated also would).
class ScopedPeakWindow {
 public:
  ScopedPeakWindow() { MemoryTracker::instance().reset_peak(); }
  std::int64_t peak_bytes() const { return MemoryTracker::instance().peak(); }
};

}  // namespace sptx
