// Binary Matrix serialisation — substrate for model checkpoints.
#pragma once

#include <iosfwd>
#include <string>

#include "src/tensor/matrix.hpp"

namespace sptx {

/// Append a matrix (shape header + row-major float payload) to a stream.
void write_matrix(std::ostream& os, const Matrix& m);

/// Read the next matrix from a stream written by write_matrix.
Matrix read_matrix(std::istream& is);

/// Whole-file convenience wrappers.
void save_matrix(const std::string& path, const Matrix& m);
Matrix load_matrix(const std::string& path);

}  // namespace sptx
