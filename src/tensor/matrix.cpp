#include "src/tensor/matrix.hpp"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "src/common/simd.hpp"
#include "src/profiling/flops.hpp"
#include "src/tensor/memory_tracker.hpp"
#include "src/tensor/workspace.hpp"

namespace sptx {

namespace {
constexpr std::size_t kAlignment = 64;  // cache line / AVX-512 vector width

std::size_t padded_capacity(std::size_t raw) {
  return (raw + kAlignment - 1) / kAlignment * kAlignment;
}
}  // namespace

void Matrix::allocate(index_t rows, index_t cols) {
  SPTX_CHECK(rows >= 0 && cols >= 0, "negative shape");
  rows_ = rows;
  cols_ = cols;
  if (size() == 0) {
    data_ = nullptr;
    tracked_bytes_ = 0;
    return;
  }
  const std::size_t raw = bytes();
  const std::size_t padded = padded_capacity(raw);
  // Inside a ScopedWorkspace, same-capacity buffers recycle without touching
  // the allocator or the tracker — the training loop's zero-allocation path.
  if (auto pooled = Workspace::instance().acquire(padded)) {
    data_ = pooled->data;
    tracked_bytes_ = pooled->tracked_bytes;
    return;
  }
  data_ = static_cast<float*>(std::aligned_alloc(kAlignment, padded));
  SPTX_CHECK(data_ != nullptr, "allocation of " << padded << " bytes failed");
  tracked_bytes_ = raw;
  MemoryTracker::instance().on_alloc(raw);
}

void Matrix::release() {
  if (data_ != nullptr) {
    const std::size_t padded = padded_capacity(bytes());
    if (!Workspace::instance().release({data_, tracked_bytes_}, padded)) {
      MemoryTracker::instance().on_free(tracked_bytes_);
      std::free(data_);
    }
    data_ = nullptr;
    tracked_bytes_ = 0;
  }
  rows_ = cols_ = 0;
}

Matrix::Matrix(index_t rows, index_t cols) {
  allocate(rows, cols);
  zero();
}

Matrix::Matrix(std::initializer_list<std::initializer_list<float>> init) {
  const index_t r = static_cast<index_t>(init.size());
  const index_t c =
      r == 0 ? 0 : static_cast<index_t>(init.begin()->size());
  // Validate before allocate(): a throw from a half-built object skips the
  // destructor, so allocating first would leak the buffer.
  for (const auto& row_init : init) {
    SPTX_CHECK(static_cast<index_t>(row_init.size()) == c,
               "ragged initializer");
  }
  allocate(r, c);
  index_t i = 0;
  for (const auto& row_init : init) {
    index_t j = 0;
    for (float v : row_init) at(i, j++) = v;
    ++i;
  }
}

Matrix::Matrix(const Matrix& other) {
  allocate(other.rows_, other.cols_);
  if (size() > 0) std::memcpy(data_, other.data_, bytes());
}

Matrix& Matrix::operator=(const Matrix& other) {
  if (this == &other) return *this;
  if (!same_shape(other)) {
    release();
    allocate(other.rows_, other.cols_);
  }
  if (size() > 0) std::memcpy(data_, other.data_, bytes());
  return *this;
}

Matrix::Matrix(Matrix&& other) noexcept
    : data_(other.data_),
      rows_(other.rows_),
      cols_(other.cols_),
      tracked_bytes_(other.tracked_bytes_) {
  other.data_ = nullptr;
  other.rows_ = other.cols_ = 0;
  other.tracked_bytes_ = 0;
}

Matrix& Matrix::operator=(Matrix&& other) noexcept {
  if (this == &other) return *this;
  release();
  data_ = other.data_;
  rows_ = other.rows_;
  cols_ = other.cols_;
  tracked_bytes_ = other.tracked_bytes_;
  other.data_ = nullptr;
  other.rows_ = other.cols_ = 0;
  other.tracked_bytes_ = 0;
  return *this;
}

Matrix::~Matrix() { release(); }

void Matrix::fill(float v) {
  for (index_t i = 0; i < size(); ++i) data_[i] = v;
}

void Matrix::fill_uniform(Rng& rng, float lo, float hi) {
  for (index_t i = 0; i < size(); ++i) data_[i] = rng.uniform(lo, hi);
}

void Matrix::fill_normal(Rng& rng, float stddev) {
  for (index_t i = 0; i < size(); ++i) data_[i] = stddev * rng.normal();
}

void Matrix::fill_xavier(Rng& rng) {
  const float bound =
      cols_ > 0 ? 6.0f / std::sqrt(static_cast<float>(cols_)) : 0.0f;
  fill_uniform(rng, -bound, bound);
}

void Matrix::add_(const Matrix& o) {
  SPTX_CHECK(same_shape(o), "add_: " << shape_str() << " vs " << o.shape_str());
  profiling::count_flops(size());
  simd::add(data_, o.data_, size());
}

void Matrix::sub_(const Matrix& o) {
  SPTX_CHECK(same_shape(o), "sub_: " << shape_str() << " vs " << o.shape_str());
  profiling::count_flops(size());
  simd::sub(data_, o.data_, size());
}

void Matrix::mul_(const Matrix& o) {
  SPTX_CHECK(same_shape(o), "mul_: " << shape_str() << " vs " << o.shape_str());
  profiling::count_flops(size());
  simd::mul(data_, o.data_, size());
}

void Matrix::scale_(float s) {
  profiling::count_flops(size());
  simd::scale(data_, size(), s);
}

void Matrix::axpy_(float alpha, const Matrix& o) {
  SPTX_CHECK(same_shape(o),
             "axpy_: " << shape_str() << " vs " << o.shape_str());
  profiling::count_flops(2 * size());
  simd::axpy(data_, o.data_, alpha, size());
}

void Matrix::scale_rows_(const Matrix& col) {
  SPTX_CHECK(col.rows() == rows_ && col.cols() == 1,
             "scale_rows_: need " << rows_ << "x1, got " << col.shape_str());
  profiling::count_flops(size());
  for (index_t i = 0; i < rows_; ++i) {
    const float s = col.at(i, 0);
    float* r = row(i);
    for (index_t j = 0; j < cols_; ++j) r[j] *= s;
  }
}

void Matrix::normalize_rows_l2_() {
  profiling::count_flops(3 * size());
  for (index_t i = 0; i < rows_; ++i) {
    float* r = row(i);
    const float sq = simd::squared_norm(r, cols_);
    if (sq <= 0.0f) continue;
    simd::scale(r, cols_, 1.0f / std::sqrt(sq));
  }
}

float Matrix::sum() const {
  double acc = 0.0;
  for (index_t i = 0; i < size(); ++i) acc += data_[i];
  return static_cast<float>(acc);
}

float Matrix::max_abs() const {
  float m = 0.0f;
  for (index_t i = 0; i < size(); ++i) m = std::max(m, std::fabs(data_[i]));
  return m;
}

float Matrix::squared_norm() const {
  double acc = 0.0;
  for (index_t i = 0; i < size(); ++i)
    acc += static_cast<double>(data_[i]) * data_[i];
  return static_cast<float>(acc);
}

std::string Matrix::shape_str() const {
  std::ostringstream os;
  os << "[" << rows_ << "x" << cols_ << "]";
  return os.str();
}

// ---- Out-of-place helpers -------------------------------------------------

Matrix add(const Matrix& a, const Matrix& b) {
  Matrix c(a);
  c.add_(b);
  return c;
}

Matrix sub(const Matrix& a, const Matrix& b) {
  Matrix c(a);
  c.sub_(b);
  return c;
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
  Matrix c(a);
  c.mul_(b);
  return c;
}

Matrix scaled(const Matrix& a, float s) {
  Matrix c(a);
  c.scale_(s);
  return c;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  SPTX_CHECK(a.cols() == b.rows(),
             "matmul: " << a.shape_str() << " x " << b.shape_str());
  Matrix c(a.rows(), b.cols());
  profiling::count_flops(2 * a.rows() * a.cols() * b.cols());
  // i-k-j loop order: streams over B's and C's rows; the k-loop hoists a[i,k]
  // so the inner loop vectorizes.
  for (index_t i = 0; i < a.rows(); ++i) {
    float* crow = c.row(i);
    for (index_t k = 0; k < a.cols(); ++k) {
      const float aik = a.at(i, k);
      if (aik == 0.0f) continue;
      const float* brow = b.row(k);
      for (index_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  SPTX_CHECK(a.rows() == b.rows(),
             "matmul_tn: " << a.shape_str() << "^T x " << b.shape_str());
  Matrix c(a.cols(), b.cols());
  profiling::count_flops(2 * a.rows() * a.cols() * b.cols());
  for (index_t k = 0; k < a.rows(); ++k) {
    const float* arow = a.row(k);
    const float* brow = b.row(k);
    for (index_t i = 0; i < a.cols(); ++i) {
      const float aki = arow[i];
      if (aki == 0.0f) continue;
      float* crow = c.row(i);
      for (index_t j = 0; j < b.cols(); ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  SPTX_CHECK(a.cols() == b.cols(),
             "matmul_nt: " << a.shape_str() << " x " << b.shape_str() << "^T");
  Matrix c(a.rows(), b.rows());
  profiling::count_flops(2 * a.rows() * a.cols() * b.rows());
  for (index_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.row(i);
    float* crow = c.row(i);
    for (index_t j = 0; j < b.rows(); ++j) {
      const float* brow = b.row(j);
      float acc = 0.0f;
      for (index_t k = 0; k < a.cols(); ++k) acc += arow[k] * brow[k];
      crow[j] = acc;
    }
  }
  return c;
}

Matrix row_l1_norm(const Matrix& x) {
  Matrix out(x.rows(), 1);
  profiling::count_flops(2 * x.size());
  for (index_t i = 0; i < x.rows(); ++i) {
    const float* r = x.row(i);
    float acc = 0.0f;
    for (index_t j = 0; j < x.cols(); ++j) acc += std::fabs(r[j]);
    out.at(i, 0) = acc;
  }
  return out;
}

Matrix row_l2_norm(const Matrix& x) {
  Matrix out = row_squared_l2(x);
  for (index_t i = 0; i < out.rows(); ++i)
    out.at(i, 0) = std::sqrt(out.at(i, 0));
  return out;
}

Matrix row_squared_l2(const Matrix& x) {
  Matrix out(x.rows(), 1);
  profiling::count_flops(2 * x.size());
  for (index_t i = 0; i < x.rows(); ++i) {
    const float* r = x.row(i);
    float acc = 0.0f;
    for (index_t j = 0; j < x.cols(); ++j) acc += r[j] * r[j];
    out.at(i, 0) = acc;
  }
  return out;
}

Matrix row_dot(const Matrix& a, const Matrix& b) {
  SPTX_CHECK(a.same_shape(b),
             "row_dot: " << a.shape_str() << " vs " << b.shape_str());
  Matrix out(a.rows(), 1);
  profiling::count_flops(2 * a.size());
  for (index_t i = 0; i < a.rows(); ++i) {
    const float* ra = a.row(i);
    const float* rb = b.row(i);
    float acc = 0.0f;
    for (index_t j = 0; j < a.cols(); ++j) acc += ra[j] * rb[j];
    out.at(i, 0) = acc;
  }
  return out;
}

float max_abs_diff(const Matrix& a, const Matrix& b) {
  SPTX_CHECK(a.same_shape(b),
             "max_abs_diff: " << a.shape_str() << " vs " << b.shape_str());
  float m = 0.0f;
  for (index_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::fabs(a.data()[i] - b.data()[i]));
  return m;
}

}  // namespace sptx
