#include "src/tensor/memory_tracker.hpp"

namespace sptx {

MemoryTracker& MemoryTracker::instance() {
  static MemoryTracker tracker;
  return tracker;
}

}  // namespace sptx
