// Structural-event counters for the plan-compilation pipeline.
//
// flops.hpp counts arithmetic; this header counts *events*: incidence-matrix
// builds, batch-plan compilations, plan-cache hits and invalidations. The
// counters let tests and benches assert cache behaviour directly — e.g. that
// a shuffle-free training run performs zero incidence rebuilds after the
// first epoch — instead of inferring it from timings. Same design as the
// FLOP counter: one relaxed atomic add per event, negligible next to the
// work being counted.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace sptx::profiling {

enum class Counter : int {
  kIncidenceBuilds = 0,   // incidence/selection CSR builder invocations
  kPlanCompiles,          // CompiledBatch compilations
  kPlanCacheHits,         // plans served from a PlanCache
  kPlanInvalidations,     // PlanCache::invalidate calls that dropped entries
  kDdpShards,             // worker shard gradient computations (distributed)
  kDdpAllReduceRows,      // embedding rows moved through the sparse all-reduce
  kDdpDenseReduces,       // parameters that fell back to a dense all-reduce
  kFusedBatches,          // forwards served by the fused kernel layer
  kAnnIndexBuilds,        // IVF clustered-index constructions (serve/ann)
  kAnnTopkQueries,        // top-k queries answered through the ANN index
  kAnnBruteTopkQueries,   // top-k queries answered by the brute-force scan
  kAnnCandidates,         // exact-re-rank candidates scored by ANN queries
  kRuntimeTasksSubmitted,   // tasks + region tickets queued on the TaskPool
  kRuntimeTasksExecuted,    // tasks + tickets consumed by a pool lane
  kRuntimeTasksStolen,      // tasks taken from another worker's deque
  kRuntimeChunksExecuted,   // parallel-region chunks run (any lane)
  kRuntimeParallelRegions,  // parallel_for regions that engaged the pool
  kRuntimeInlineLoops,      // parallel_for calls run inline (n <= grain)
  kDdpProcSpawns,           // worker processes fork/exec'd by the supervisor
  kDdpProcRespawns,         // lost workers respawned from a checkpoint
  kDdpProcWorkersLost,      // worker processes declared dead (exit/heartbeat)
  kDdpProcHeartbeats,       // heartbeat frames received by the supervisor
  kDdpTransportFrames,      // frames moved over the UDS/shm transport
  kDdpTransportBytes,       // payload bytes moved over the transport
  kDdpTransportRetries,     // frame sends retried after a (injected) drop
  kNumCounters,
};

/// Stable human-readable names, index-aligned with the Counter enum. Every
/// enumerator (except the kNumCounters sentinel) MUST have an entry here —
/// tools/sptx_lint.py cross-checks the two lists, and the health surface
/// prints counters by these names.
inline constexpr const char* kCounterNames[] = {
    "incidence_builds",        // kIncidenceBuilds
    "plan_compiles",           // kPlanCompiles
    "plan_cache_hits",         // kPlanCacheHits
    "plan_invalidations",      // kPlanInvalidations
    "ddp_shards",              // kDdpShards
    "ddp_allreduce_rows",      // kDdpAllReduceRows
    "ddp_dense_reduces",       // kDdpDenseReduces
    "fused_batches",           // kFusedBatches
    "ann_index_builds",        // kAnnIndexBuilds
    "ann_topk_queries",        // kAnnTopkQueries
    "ann_brute_topk_queries",  // kAnnBruteTopkQueries
    "ann_candidates",          // kAnnCandidates
    "runtime_tasks_submitted",   // kRuntimeTasksSubmitted
    "runtime_tasks_executed",    // kRuntimeTasksExecuted
    "runtime_tasks_stolen",      // kRuntimeTasksStolen
    "runtime_chunks_executed",   // kRuntimeChunksExecuted
    "runtime_parallel_regions",  // kRuntimeParallelRegions
    "runtime_inline_loops",      // kRuntimeInlineLoops
    "ddp_proc_spawns",           // kDdpProcSpawns
    "ddp_proc_respawns",         // kDdpProcRespawns
    "ddp_proc_workers_lost",     // kDdpProcWorkersLost
    "ddp_proc_heartbeats",       // kDdpProcHeartbeats
    "ddp_transport_frames",      // kDdpTransportFrames
    "ddp_transport_bytes",       // kDdpTransportBytes
    "ddp_transport_retries",     // kDdpTransportRetries
};
static_assert(sizeof(kCounterNames) / sizeof(kCounterNames[0]) ==
                  static_cast<std::size_t>(Counter::kNumCounters),
              "kCounterNames must stay index-aligned with the Counter enum: "
              "add the name in the same position as the new enumerator");

/// The stable name of `c` ("plan_cache_hits", ...).
inline const char* counter_name(Counter c) {
  return kCounterNames[static_cast<std::size_t>(c)];
}

namespace detail {
inline std::atomic<std::int64_t>& counter_cell(Counter c) {
  static std::array<std::atomic<std::int64_t>,
                    static_cast<std::size_t>(Counter::kNumCounters)>
      cells{};
  return cells[static_cast<std::size_t>(c)];
}
}  // namespace detail

/// Record `n` occurrences of event `c`.
inline void count_event(Counter c, std::int64_t n = 1) {
  detail::counter_cell(c).fetch_add(n, std::memory_order_relaxed);
}

/// Total events recorded since process start / last reset.
inline std::int64_t counter_value(Counter c) {
  return detail::counter_cell(c).load(std::memory_order_relaxed);
}

inline void reset_counter(Counter c) {
  detail::counter_cell(c).store(0, std::memory_order_relaxed);
}

/// RAII window: counter_value(c) relative to construction (like FlopWindow).
class CounterWindow {
 public:
  explicit CounterWindow(Counter c) : counter_(c), start_(counter_value(c)) {}
  std::int64_t elapsed() const { return counter_value(counter_) - start_; }

 private:
  Counter counter_;
  std::int64_t start_;
};

}  // namespace sptx::profiling
