#include "src/profiling/timer.hpp"

#include <algorithm>

namespace sptx::profiling {

HotspotRegistry& HotspotRegistry::instance() {
  static HotspotRegistry registry;
  return registry;
}

std::vector<std::pair<std::string, double>> HotspotRegistry::ranked() const {
  MutexLock lock(mu_);
  std::vector<std::pair<std::string, double>> out(accum_.begin(),
                                                  accum_.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

double HotspotRegistry::total() const {
  MutexLock lock(mu_);
  double t = 0.0;
  for (const auto& [name, s] : accum_) t += s;
  return t;
}

}  // namespace sptx::profiling
