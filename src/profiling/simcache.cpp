#include "src/profiling/simcache.hpp"

#include "src/common/error.hpp"

namespace sptx::profiling {

CacheSim::CacheSim(const CacheConfig& config)
    : line_bytes_(config.line_bytes), assoc_(config.associativity) {
  SPTX_CHECK(config.line_bytes > 0 && config.associativity > 0 &&
                 config.size_bytes >= config.line_bytes * config.associativity,
             "bad cache config");
  num_sets_ = config.size_bytes / (config.line_bytes * config.associativity);
  SPTX_CHECK(num_sets_ > 0, "cache has no sets");
  tags_.assign(num_sets_ * assoc_, 0);
  stamps_.assign(num_sets_ * assoc_, 0);
}

void CacheSim::touch_line(std::uint64_t line_addr) {
  // Tag 0 marks an empty way, so bias stored tags by +1.
  const std::uint64_t tag = line_addr + 1;
  const std::size_t set =
      static_cast<std::size_t>(line_addr % num_sets_) * assoc_;
  ++stats_.accesses;
  ++tick_;
  std::size_t lru_way = 0;
  std::uint64_t lru_stamp = UINT64_MAX;
  for (std::size_t w = 0; w < assoc_; ++w) {
    if (tags_[set + w] == tag) {
      stamps_[set + w] = tick_;
      return;  // hit
    }
    if (stamps_[set + w] < lru_stamp) {
      lru_stamp = stamps_[set + w];
      lru_way = w;
    }
  }
  ++stats_.misses;
  tags_[set + lru_way] = tag;
  stamps_[set + lru_way] = tick_;
}

void CacheSim::access(std::uint64_t addr, std::uint64_t bytes) {
  const std::uint64_t first = addr / line_bytes_;
  const std::uint64_t last = (addr + (bytes == 0 ? 0 : bytes - 1)) /
                             line_bytes_;
  for (std::uint64_t line = first; line <= last; ++line) touch_line(line);
}

namespace {

// Region bases far enough apart that regions never alias.
constexpr std::uint64_t kEmbeddingBase = 0;
constexpr std::uint64_t kIntermediateBase = 1ULL << 40;
constexpr std::uint64_t kGradBase = 1ULL << 41;

struct Addresser {
  const TraceLayout& layout;
  std::uint64_t row_bytes() const {
    return static_cast<std::uint64_t>(layout.dim) * sizeof(float);
  }
  std::uint64_t entity_row(std::int64_t e) const {
    return kEmbeddingBase + static_cast<std::uint64_t>(e) * row_bytes();
  }
  std::uint64_t relation_row(std::int64_t r) const {
    return entity_row(layout.num_entities + r);
  }
  // Per-batch intermediate buffers, identified by slot index.
  std::uint64_t intermediate_row(int slot, std::int64_t i) const {
    return kIntermediateBase + static_cast<std::uint64_t>(slot) * (1ULL << 34) +
           static_cast<std::uint64_t>(i) * row_bytes();
  }
  std::uint64_t grad_row(std::int64_t e) const {
    return kGradBase + static_cast<std::uint64_t>(e) * row_bytes();
  }
};

}  // namespace

CacheStats trace_gather_scatter(std::span<const Triplet> batch,
                                const TraceLayout& layout,
                                const CacheConfig& config) {
  CacheSim cache(config);
  const Addresser a{layout};
  const std::uint64_t rb = a.row_bytes();
  const auto m = static_cast<std::int64_t>(batch.size());

  // Forward: three separate gather passes (h, t, r), each writing its own
  // M×d buffer — the framework evaluates one embedding() call at a time.
  for (std::int64_t i = 0; i < m; ++i) {  // gather h
    cache.access(a.entity_row(batch[static_cast<std::size_t>(i)].head), rb);
    cache.access(a.intermediate_row(0, i), rb);
  }
  for (std::int64_t i = 0; i < m; ++i) {  // gather t
    cache.access(a.entity_row(batch[static_cast<std::size_t>(i)].tail), rb);
    cache.access(a.intermediate_row(1, i), rb);
  }
  for (std::int64_t i = 0; i < m; ++i) {  // gather r
    cache.access(a.relation_row(batch[static_cast<std::size_t>(i)].relation),
                 rb);
    cache.access(a.intermediate_row(2, i), rb);
  }
  // h + r pass, then (h+r) − t pass: two more full sweeps with new outputs.
  for (std::int64_t i = 0; i < m; ++i) {
    cache.access(a.intermediate_row(0, i), rb);
    cache.access(a.intermediate_row(2, i), rb);
    cache.access(a.intermediate_row(3, i), rb);
  }
  for (std::int64_t i = 0; i < m; ++i) {
    cache.access(a.intermediate_row(3, i), rb);
    cache.access(a.intermediate_row(1, i), rb);
    cache.access(a.intermediate_row(4, i), rb);
  }
  // Backward: three fine-grained scatter passes into the gradient table.
  for (int slot = 0; slot < 3; ++slot) {
    for (std::int64_t i = 0; i < m; ++i) {
      const Triplet& t = batch[static_cast<std::size_t>(i)];
      cache.access(a.intermediate_row(4, i), rb);  // upstream grad row
      const std::int64_t target = slot == 0   ? t.head
                                  : slot == 1 ? t.tail
                                              : layout.num_entities +
                                                    t.relation;
      cache.access(a.grad_row(target), rb);  // read-modify-write
      cache.access(a.grad_row(target), rb);
    }
  }
  return cache.stats();
}

CacheStats trace_spmm(std::span<const Triplet> batch,
                      const TraceLayout& layout, const CacheConfig& config) {
  CacheSim cache(config);
  const Addresser a{layout};
  const std::uint64_t rb = a.row_bytes();
  const auto m = static_cast<std::int64_t>(batch.size());

  // Forward SpMM: one pass; per row, read the 3 embedding rows the
  // incidence row selects and stream one output row. The incidence arrays
  // themselves (3 int64 + 3 float per row) are tiny next to the rows.
  for (std::int64_t i = 0; i < m; ++i) {
    const Triplet& t = batch[static_cast<std::size_t>(i)];
    cache.access(a.entity_row(t.head), rb);
    cache.access(a.entity_row(t.tail), rb);
    cache.access(a.relation_row(t.relation), rb);
    cache.access(a.intermediate_row(0, i), rb);
  }
  // Backward transposed SpMM: one pass; per row, read the upstream grad row
  // once and update the 3 gradient rows.
  for (std::int64_t i = 0; i < m; ++i) {
    const Triplet& t = batch[static_cast<std::size_t>(i)];
    cache.access(a.intermediate_row(0, i), rb);
    cache.access(a.grad_row(t.head), rb);
    cache.access(a.grad_row(t.head), rb);
    cache.access(a.grad_row(t.tail), rb);
    cache.access(a.grad_row(t.tail), rb);
    cache.access(a.grad_row(layout.num_entities + t.relation), rb);
    cache.access(a.grad_row(layout.num_entities + t.relation), rb);
  }
  return cache.stats();
}

}  // namespace sptx::profiling
