// Explicit FLOP accounting.
//
// The paper reports average FLOPs per framework (Table 6) measured with
// Linux perf. perf is not available here, so every kernel in this library
// reports the floating-point operations it performs to a process-wide
// counter; the relative counts between the sparse formulation and the dense
// baseline reproduce the table. Counting is a single relaxed atomic add per
// kernel call — negligible against the kernels themselves.
#pragma once

#include <atomic>
#include <cstdint>

namespace sptx::profiling {

namespace detail {
inline std::atomic<std::int64_t>& flop_counter() {
  static std::atomic<std::int64_t> counter{0};
  return counter;
}
inline std::atomic<bool>& flops_enabled() {
  static std::atomic<bool> enabled{true};
  return enabled;
}
}  // namespace detail

/// Record `n` floating point operations.
inline void count_flops(std::int64_t n) {
  detail::flop_counter().fetch_add(n, std::memory_order_relaxed);
}

/// Total FLOPs recorded since process start / last reset.
inline std::int64_t flops() {
  return detail::flop_counter().load(std::memory_order_relaxed);
}

inline void reset_flops() {
  detail::flop_counter().store(0, std::memory_order_relaxed);
}

/// RAII window: flops() relative to construction.
class FlopWindow {
 public:
  FlopWindow() : start_(flops()) {}
  std::int64_t elapsed() const { return flops() - start_; }

 private:
  std::int64_t start_;
};

}  // namespace sptx::profiling
