// Trace-driven set-associative cache simulator.
//
// Substitute for the `perf`-measured cache miss rates of Table 7 (perf
// hardware counters are unavailable in this environment). Kernel trace
// generators replay the exact memory-access streams of the two competing
// formulations — fine-grained gather/scatter over embedding rows vs one
// CSR SpMM — through an LRU set-associative cache, reproducing the paper's
// observation that the SpMM formulation's streaming accesses miss less
// than the baseline's scattered ones.
#pragma once

#include <cstdint>
#include <vector>

#include "src/kg/triplet.hpp"

namespace sptx::profiling {

struct CacheConfig {
  std::size_t size_bytes = 32 * 1024 * 1024;  // L3-ish default
  std::size_t line_bytes = 64;
  std::size_t associativity = 16;
};

struct CacheStats {
  std::int64_t accesses = 0;
  std::int64_t misses = 0;
  double miss_rate() const {
    return accesses > 0 ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
  }
};

/// LRU set-associative cache over abstract byte addresses.
class CacheSim {
 public:
  explicit CacheSim(const CacheConfig& config);

  /// Touch `bytes` bytes starting at `addr` (split across lines).
  void access(std::uint64_t addr, std::uint64_t bytes);
  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  void touch_line(std::uint64_t line_addr);

  std::size_t line_bytes_;
  std::size_t num_sets_;
  std::size_t assoc_;
  // ways_[set * assoc + way] = line tag (0 = empty); LRU order per set via
  // timestamps.
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint64_t> stamps_;
  std::uint64_t tick_ = 0;
  CacheStats stats_;
};

/// Address-space layout used by the trace generators: the embedding table
/// starts at a fixed base; batch intermediates live in separate regions.
struct TraceLayout {
  std::int64_t num_entities = 0;
  std::int64_t num_relations = 0;
  std::int64_t dim = 128;
};

/// Replay the dense baseline's gather + elementwise + scatter pattern for
/// one TransE-style batch: 3 row gathers, 2 elementwise passes over M×d
/// intermediates, 3 row scatter-adds.
CacheStats trace_gather_scatter(std::span<const Triplet> batch,
                                const TraceLayout& layout,
                                const CacheConfig& config);

/// Replay the SpMM formulation's pattern for the same batch: one streaming
/// pass over the incidence structure with embedding-row reads and a
/// streaming output write, forward and transposed-backward.
CacheStats trace_spmm(std::span<const Triplet> batch,
                      const TraceLayout& layout, const CacheConfig& config);

}  // namespace sptx::profiling
