// Phase timers and a hotspot registry.
//
// Reproduces the paper's two time measurements:
//  * PhaseTimer — forward / backward / step accumulation per epoch
//    (Table 1, Figure 8), the way the paper times with Python's time module.
//  * HotspotRegistry — named per-function time attribution (Figure 2's
//    "top CPU-intensive functions"); autograd ops and kernels report their
//    runtime under a stable name, and the registry can rank them.
#pragma once

#include <chrono>
#include <map>
#include <string>
#include <vector>

#include "src/common/thread_annotations.hpp"

namespace sptx::profiling {

using clock = std::chrono::steady_clock;

inline double seconds_since(clock::time_point t0) {
  return std::chrono::duration<double>(clock::now() - t0).count();
}

/// Accumulates wall time of the three training phases.
struct PhaseTimer {
  double forward_s = 0.0;
  double backward_s = 0.0;
  double step_s = 0.0;

  double total() const { return forward_s + backward_s + step_s; }
  void reset() { forward_s = backward_s = step_s = 0.0; }
  PhaseTimer& operator+=(const PhaseTimer& o) {
    forward_s += o.forward_s;
    backward_s += o.backward_s;
    step_s += o.step_s;
    return *this;
  }
};

/// RAII timer adding its lifetime to an accumulator.
class ScopedAccum {
 public:
  explicit ScopedAccum(double& slot) : slot_(slot), t0_(clock::now()) {}
  ~ScopedAccum() { slot_ += seconds_since(t0_); }
  ScopedAccum(const ScopedAccum&) = delete;
  ScopedAccum& operator=(const ScopedAccum&) = delete;

 private:
  double& slot_;
  clock::time_point t0_;
};

/// Named time attribution for Figure 2 style hotspot ranking. The fused
/// kernels and autograd ops report from DDP workers and pool tasks, so
/// accumulation is mutex-guarded; samples are per-batch (not per-row), so
/// the lock is uncontended noise next to the work being attributed.
class HotspotRegistry {
 public:
  static HotspotRegistry& instance();

  void add(const std::string& name, double seconds) SPTX_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    accum_[name] += seconds;
  }
  void reset() SPTX_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    accum_.clear();
  }

  /// (name, seconds) sorted descending by time.
  std::vector<std::pair<std::string, double>> ranked() const
      SPTX_EXCLUDES(mu_);
  double total() const SPTX_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::map<std::string, double> accum_ SPTX_GUARDED_BY(mu_);
};

/// RAII hotspot sample: attributes its lifetime to `name`.
class ScopedHotspot {
 public:
  explicit ScopedHotspot(const char* name) : name_(name), t0_(clock::now()) {}
  ~ScopedHotspot() {
    HotspotRegistry::instance().add(name_, seconds_since(t0_));
  }
  ScopedHotspot(const ScopedHotspot&) = delete;
  ScopedHotspot& operator=(const ScopedHotspot&) = delete;

 private:
  const char* name_;
  clock::time_point t0_;
};

}  // namespace sptx::profiling
