// Shared-memory parallelism helpers.
//
// The paper's SpMM kernels use dynamic load balancing across threads (§4.1);
// we expose the same via parallel_for, implemented on OpenMP when available
// and degrading to a serial loop otherwise. Grain-size control keeps the
// scheduling overhead negligible for the small batches used in tests.
#pragma once

#include <cstdint>
#include <thread>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace sptx {

/// Number of worker threads the parallel loops will use.
inline int num_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
#endif
}

/// Parallel loop over [begin, end) with dynamic scheduling.
/// `body` is invoked as body(i) for every index exactly once. `grain` is
/// both the serial cutoff (n <= grain stays on the calling thread) and the
/// dynamic-scheduling chunk size, so callers tune task granularity with one
/// knob instead of fighting a hard-coded chunk.
template <typename Body>
void parallel_for(std::int64_t begin, std::int64_t end, const Body& body,
                  std::int64_t grain = 64) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  if (grain < 1) grain = 1;
#ifdef _OPENMP
  if (n > grain && omp_get_max_threads() > 1 && !omp_in_parallel()) {
    const int chunk = static_cast<int>(grain > 1 << 20 ? 1 << 20 : grain);
#pragma omp parallel for schedule(dynamic, chunk)
    for (std::int64_t i = begin; i < end; ++i) body(i);
    return;
  }
#endif
  for (std::int64_t i = begin; i < end; ++i) body(i);
}

}  // namespace sptx
