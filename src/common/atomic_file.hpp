// Crash-safe file replacement: write to a temp file in the target
// directory, fsync, rename over the destination, fsync the directory.
//
// Every checkpoint writer in the tree goes through this class so that a
// crash (power loss, SIGKILL, injected fault) at ANY point leaves either
// the previous complete file or the new complete file — never a truncated
// hybrid. The historical `ofstream(path)` save truncated the good
// checkpoint first and filled it back in, which is exactly the window the
// kill-and-resume test slams.
//
// The writer owns a raw descriptor behind a buffering streambuf: open and
// every write retry EINTR the same way StreamingTripletStore::open does —
// signal-heavy hosts (profilers, timers, checkpoint alarms, the DDP
// supervisor's child reaper) interrupt slow I/O on networked filesystems,
// and an ofstream surfaces that as a failed checkpoint. A short write or
// error is latched in the buffer and reported as a typed Error{kIo} at
// commit() with the original errno.
//
// Usage:
//   AtomicFileWriter w(path);
//   w.stream() << payload;   // buffered writes to <path>.tmp.<pid>
//   w.commit();              // flush + fsync + rename + fsync(dir)
//
// If commit() is never reached (exception, early return), the destructor
// unlinks the temp file and the destination is untouched.
#pragma once

#include <cstddef>
#include <ostream>
#include <streambuf>
#include <string>
#include <vector>

namespace sptx {

/// Buffering streambuf over a raw fd whose flushes retry EINTR and honor
/// the "file_write" fault site. Errors latch (saved errno) instead of
/// throwing — std::ostream swallows streambuf exceptions into rdstate(),
/// so AtomicFileWriter::commit() re-raises them typed.
class FdStreamBuf : public std::streambuf {
 public:
  FdStreamBuf();
  void attach(int fd);
  /// Flush everything buffered; false on a latched or fresh write error.
  bool flush_buffer();
  int saved_errno() const { return saved_errno_; }
  bool failed() const { return saved_errno_ != 0; }

 protected:
  int_type overflow(int_type ch) override;
  std::streamsize xsputn(const char* s, std::streamsize n) override;
  int sync() override;

 private:
  bool write_all(const char* data, std::size_t len);
  int fd_ = -1;
  int saved_errno_ = 0;
  std::vector<char> buf_;
};

class AtomicFileWriter {
 public:
  /// Opens `<path>.tmp.<pid>` for writing (O_CLOEXEC — checkpoint temp fds
  /// must not leak into fork+exec'd DDP workers). Throws Error{kIo} on
  /// failure.
  explicit AtomicFileWriter(std::string path);

  /// Abandons the write: closes and unlinks the temp file unless commit()
  /// already ran.
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// The buffered output stream for the payload.
  std::ostream& stream() { return out_; }

  /// Flush + fsync the temp file, rename it over the destination, fsync the
  /// containing directory so the rename itself is durable. Throws
  /// Error{kIo} on any failure (the temp file is cleaned up, the
  /// destination keeps its previous content). Honors the
  /// "checkpoint_write" fault-injection site before the rename.
  void commit();

 private:
  void close_fd();

  std::string path_;
  std::string tmp_path_;
  int fd_ = -1;
  FdStreamBuf buf_;
  std::ostream out_;
  bool committed_ = false;
};

}  // namespace sptx
