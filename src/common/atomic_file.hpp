// Crash-safe file replacement: write to a temp file in the target
// directory, fsync, rename over the destination, fsync the directory.
//
// Every checkpoint writer in the tree goes through this class so that a
// crash (power loss, SIGKILL, injected fault) at ANY point leaves either
// the previous complete file or the new complete file — never a truncated
// hybrid. The historical `ofstream(path)` save truncated the good
// checkpoint first and filled it back in, which is exactly the window the
// kill-and-resume test slams.
//
// Usage:
//   AtomicFileWriter w(path);
//   w.stream() << payload;   // buffered writes to <path>.tmp.<pid>
//   w.commit();              // flush + fsync + rename + fsync(dir)
//
// If commit() is never reached (exception, early return), the destructor
// unlinks the temp file and the destination is untouched.
#pragma once

#include <fstream>
#include <string>

namespace sptx {

class AtomicFileWriter {
 public:
  /// Opens `<path>.tmp.<pid>` for writing. Throws Error{kIo} on failure.
  explicit AtomicFileWriter(std::string path);

  /// Abandons the write: closes and unlinks the temp file unless commit()
  /// already ran.
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// The buffered output stream for the payload.
  std::ofstream& stream() { return out_; }

  /// Flush + fsync the temp file, rename it over the destination, fsync the
  /// containing directory so the rename itself is durable. Throws
  /// Error{kIo} on any failure (the temp file is cleaned up, the
  /// destination keeps its previous content). Honors the
  /// "checkpoint_write" fault-injection site before the rename.
  void commit();

 private:
  std::string path_;
  std::string tmp_path_;
  std::ofstream out_;
  bool committed_ = false;
};

}  // namespace sptx
