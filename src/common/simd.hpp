// Vectorized row primitives — the axpy core shared by the dense layer.
//
// Each primitive has an AVX2/FMA implementation (compiled via a per-function
// target attribute, so it exists even in portable builds) and a scalar
// fallback; the public wrappers dispatch once per call on the cached cpuid
// probe in cpu_features.hpp. The SpMM engine keeps its own fused kernels in
// spmm.cpp (they need whole-row register blocking); these helpers serve the
// elementwise hot paths: optimizer axpy, Matrix arithmetic, and row
// normalization.
#pragma once

#include <cmath>
#include <cstdint>

#include "src/common/cpu_features.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
#define SPTX_SIMD_X86 1
#include <immintrin.h>
#define SPTX_TARGET_AVX2 __attribute__((target("avx2,fma")))
#else
#define SPTX_TARGET_AVX2
#endif

namespace sptx::simd {

namespace detail {

inline float sqnorm_scalar(const float* x, std::int64_t d) {
  float acc = 0.0f;
  for (std::int64_t j = 0; j < d; ++j) acc += x[j] * x[j];
  return acc;
}

inline void scale_scalar(float* x, std::int64_t d, float s) {
  for (std::int64_t j = 0; j < d; ++j) x[j] *= s;
}

inline void axpy_scalar(float* __restrict y, const float* __restrict x,
                        float a, std::int64_t d) {
  for (std::int64_t j = 0; j < d; ++j) y[j] += a * x[j];
}

inline void add_scalar(float* __restrict y, const float* __restrict x,
                       std::int64_t d) {
  for (std::int64_t j = 0; j < d; ++j) y[j] += x[j];
}

inline void sub_scalar(float* __restrict y, const float* __restrict x,
                       std::int64_t d) {
  for (std::int64_t j = 0; j < d; ++j) y[j] -= x[j];
}

inline void mul_scalar(float* __restrict y, const float* __restrict x,
                       std::int64_t d) {
  for (std::int64_t j = 0; j < d; ++j) y[j] *= x[j];
}

inline float dot_scalar(const float* a, const float* b, std::int64_t d) {
  float acc = 0.0f;
  for (std::int64_t j = 0; j < d; ++j) acc += a[j] * b[j];
  return acc;
}

#ifdef SPTX_SIMD_X86

SPTX_TARGET_AVX2 inline float hsum(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

SPTX_TARGET_AVX2 inline float sqnorm_avx2(const float* x, std::int64_t d) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::int64_t j = 0;
  for (; j + 16 <= d; j += 16) {
    const __m256 a = _mm256_loadu_ps(x + j);
    const __m256 b = _mm256_loadu_ps(x + j + 8);
    acc0 = _mm256_fmadd_ps(a, a, acc0);
    acc1 = _mm256_fmadd_ps(b, b, acc1);
  }
  for (; j + 8 <= d; j += 8) {
    const __m256 a = _mm256_loadu_ps(x + j);
    acc0 = _mm256_fmadd_ps(a, a, acc0);
  }
  float acc = hsum(_mm256_add_ps(acc0, acc1));
  for (; j < d; ++j) acc += x[j] * x[j];
  return acc;
}

SPTX_TARGET_AVX2 inline void scale_avx2(float* x, std::int64_t d, float s) {
  const __m256 vs = _mm256_set1_ps(s);
  std::int64_t j = 0;
  for (; j + 8 <= d; j += 8) {
    _mm256_storeu_ps(x + j, _mm256_mul_ps(_mm256_loadu_ps(x + j), vs));
  }
  for (; j < d; ++j) x[j] *= s;
}

SPTX_TARGET_AVX2 inline void axpy_avx2(float* __restrict y,
                                       const float* __restrict x, float a,
                                       std::int64_t d) {
  const __m256 va = _mm256_set1_ps(a);
  std::int64_t j = 0;
  for (; j + 8 <= d; j += 8) {
    const __m256 vy =
        _mm256_fmadd_ps(_mm256_loadu_ps(x + j), va, _mm256_loadu_ps(y + j));
    _mm256_storeu_ps(y + j, vy);
  }
  for (; j < d; ++j) y[j] += a * x[j];
}

SPTX_TARGET_AVX2 inline void add_avx2(float* __restrict y,
                                      const float* __restrict x,
                                      std::int64_t d) {
  std::int64_t j = 0;
  for (; j + 8 <= d; j += 8) {
    _mm256_storeu_ps(
        y + j, _mm256_add_ps(_mm256_loadu_ps(y + j), _mm256_loadu_ps(x + j)));
  }
  for (; j < d; ++j) y[j] += x[j];
}

SPTX_TARGET_AVX2 inline void sub_avx2(float* __restrict y,
                                      const float* __restrict x,
                                      std::int64_t d) {
  std::int64_t j = 0;
  for (; j + 8 <= d; j += 8) {
    _mm256_storeu_ps(
        y + j, _mm256_sub_ps(_mm256_loadu_ps(y + j), _mm256_loadu_ps(x + j)));
  }
  for (; j < d; ++j) y[j] -= x[j];
}

SPTX_TARGET_AVX2 inline void mul_avx2(float* __restrict y,
                                      const float* __restrict x,
                                      std::int64_t d) {
  std::int64_t j = 0;
  for (; j + 8 <= d; j += 8) {
    _mm256_storeu_ps(
        y + j, _mm256_mul_ps(_mm256_loadu_ps(y + j), _mm256_loadu_ps(x + j)));
  }
  for (; j < d; ++j) y[j] *= x[j];
}

SPTX_TARGET_AVX2 inline float dot_avx2(const float* a, const float* b,
                                       std::int64_t d) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::int64_t j = 0;
  for (; j + 16 <= d; j += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + j), _mm256_loadu_ps(b + j),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + j + 8),
                           _mm256_loadu_ps(b + j + 8), acc1);
  }
  for (; j + 8 <= d; j += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + j), _mm256_loadu_ps(b + j),
                           acc0);
  }
  float acc = hsum(_mm256_add_ps(acc0, acc1));
  for (; j < d; ++j) acc += a[j] * b[j];
  return acc;
}

#endif  // SPTX_SIMD_X86

}  // namespace detail

/// Σ x[j]² over d contiguous floats.
inline float squared_norm(const float* x, std::int64_t d) {
#ifdef SPTX_SIMD_X86
  if (simd_enabled()) return detail::sqnorm_avx2(x, d);
#endif
  return detail::sqnorm_scalar(x, d);
}

/// x *= s elementwise.
inline void scale(float* x, std::int64_t d, float s) {
#ifdef SPTX_SIMD_X86
  if (simd_enabled()) return detail::scale_avx2(x, d, s);
#endif
  detail::scale_scalar(x, d, s);
}

/// y += a · x (the axpy core).
inline void axpy(float* y, const float* x, float a, std::int64_t d) {
#ifdef SPTX_SIMD_X86
  if (simd_enabled()) return detail::axpy_avx2(y, x, a, d);
#endif
  detail::axpy_scalar(y, x, a, d);
}

/// y += x.
inline void add(float* y, const float* x, std::int64_t d) {
#ifdef SPTX_SIMD_X86
  if (simd_enabled()) return detail::add_avx2(y, x, d);
#endif
  detail::add_scalar(y, x, d);
}

/// y -= x.
inline void sub(float* y, const float* x, std::int64_t d) {
#ifdef SPTX_SIMD_X86
  if (simd_enabled()) return detail::sub_avx2(y, x, d);
#endif
  detail::sub_scalar(y, x, d);
}

/// y *= x elementwise.
inline void mul(float* y, const float* x, std::int64_t d) {
#ifdef SPTX_SIMD_X86
  if (simd_enabled()) return detail::mul_avx2(y, x, d);
#endif
  detail::mul_scalar(y, x, d);
}

/// Σ a[j]·b[j].
inline float dot(const float* a, const float* b, std::int64_t d) {
#ifdef SPTX_SIMD_X86
  if (simd_enabled()) return detail::dot_avx2(a, b, d);
#endif
  return detail::dot_scalar(a, b, d);
}

}  // namespace sptx::simd
