#include "src/common/runtime_config.hpp"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <sstream>

#include "src/common/error.hpp"
#include "src/common/thread_annotations.hpp"

namespace sptx {

namespace {

// The registry. One row per knob; the CLI and README render this table, the
// library reads it, and nothing else in the tree calls getenv for SPTX_*.
constexpr ConfigSpec kSpecs[] = {
    {"SPTX_NO_SIMD", ConfigType::kFlag, "0",
     "Force the scalar SpMM kernels even when cpuid reports AVX2+FMA "
     "(kernel-equivalence testing, perf triage)."},
    {"SPTX_SPMM_KERNEL", ConfigType::kEnum, "auto",
     "Force a forward SpMM kernel instead of the per-call auto heuristic.",
     "auto|naive|unrolled|tiled|parallel|simd|tiled_parallel"},
    {"SPTX_SPMM_BACKWARD", ConfigType::kEnum, "auto",
     "Force the backward SpMM strategy: sequential scatter vs "
     "cached-transpose parallel gather.",
     "auto|scatter|transpose"},
    {"SPTX_FUSED", ConfigType::kEnum, "auto",
     "Fused forward+backward scoring kernels (src/kernels): auto/on use the "
     "single-pass fused path for every family that provides it, off keeps "
     "the legacy autograd graph (bit-identical to the historical path).",
     "auto|on|off"},
    {"SPTX_PLAN_CACHE", ConfigType::kFlag, "",
     "Override TrainConfig::plan_cache: compile batch plans once and reuse "
     "them across epochs (off = legacy per-batch rebuild loop)."},
    {"SPTX_PREFETCH", ConfigType::kFlag, "",
     "Override TrainConfig::prefetch: compile epoch e+1's plans on a "
     "background thread while epoch e executes."},
    {"SPTX_DDP_WORKERS", ConfigType::kInt, "",
     "Override DdpConfig::workers: thread-backed data-parallel worker "
     "count."},
    {"SPTX_DDP_SHARD", ConfigType::kInt, "",
     "Override DdpConfig::shard_size: gradient-shard granularity (0 derives "
     "ceil(batch/workers))."},
    {"SPTX_DDP_PLAN_CACHE", ConfigType::kFlag, "",
     "Override DdpConfig::plan_cache: per-worker compiled-plan caching "
     "across epochs."},
    {"SPTX_EVAL_PLAN_CACHE", ConfigType::kFlag, "0",
     "Engine::evaluate only: reuse staged candidate batches across repeated "
     "evaluations of the same dataset (memory: 2*|test|*N triplets)."},
    {"SPTX_SCALE", ConfigType::kDouble, "0.01",
     "Bench harness: dataset scale factor for the paper-profile benches "
     "(0 < s <= 1)."},
    {"SPTX_EPOCHS", ConfigType::kInt, "",
     "Bench harness: epoch-count override for the figure/table benches."},
    {"SPTX_SERVE_MICROBATCH", ConfigType::kFlag, "",
     "Override SessionOptions::micro_batch: coalesce concurrent small "
     "score queries into one SpMM-sized batch."},
    {"SPTX_SERVE_MAX_BATCH", ConfigType::kInt, "",
     "Override SessionOptions::max_batch: micro-batch coalescing cap in "
     "triplets."},
    {"SPTX_SERVE_WINDOW_US", ConfigType::kInt, "",
     "Override SessionOptions::window_us: how long a micro-batch leader "
     "waits for followers before executing."},
    {"SPTX_SERVE_PLAN_CACHE", ConfigType::kFlag, "",
     "Override SessionOptions::plan_cache: cache staged top-k/rank "
     "candidate batches per (side, anchor, relation)."},
    {"SPTX_SERVE_MAX_PLANS", ConfigType::kInt, "",
     "Override SessionOptions::max_cached_plans: resident-plan cap for the "
     "per-session candidate cache (each plan stages num_entities "
     "triplets)."},
    {"SPTX_SERVE_QUEUE_LIMIT", ConfigType::kInt, "",
     "Override SessionOptions::queue_limit: bounded micro-batch queue depth "
     "in triplets; arrivals beyond it are rejected with kQueueFull "
     "(0 = unbounded, the historical behavior)."},
    {"SPTX_SERVE_CONCURRENCY", ConfigType::kInt, "",
     "Override SessionOptions::max_concurrency: cap on simultaneous "
     "underlying score() executions behind the micro-batch queue "
     "(0 = unbounded)."},
    {"SPTX_SERVE_DEADLINE_US", ConfigType::kInt, "",
     "Override SessionOptions::deadline_us: default per-request deadline; "
     "requests that cannot start scoring in time are shed with kDeadline "
     "(0 = no deadline)."},
    {"SPTX_ANN", ConfigType::kEnum, "",
     "Override SessionOptions::ann: clustered ANN acceleration for top-k "
     "serving. auto builds+uses the IVF index when the model family has a "
     "probe transform and the vocabulary has at least SPTX_ANN_MIN_ENTITIES "
     "entities, on forces it for any size, off always brute-forces. "
     "Returned scores are exact either way (candidates re-rank through the "
     "model's score path).",
     "auto|on|off"},
    {"SPTX_ANN_NPROBE", ConfigType::kInt, "",
     "Override SessionOptions::ann_nprobe: centroid lists scanned per ANN "
     "top-k query — the recall/latency dial (0 = auto: max(4, "
     "k_lists/10))."},
    {"SPTX_ANN_MIN_ENTITIES", ConfigType::kInt, "",
     "Override SessionOptions::ann_min_entities: below this entity count "
     "SPTX_ANN=auto stays brute-force (the index build + probe overhead "
     "beats the scan it saves on small vocabularies)."},
    {"SPTX_CHECKPOINT_EVERY", ConfigType::kInt, "",
     "Override TrainConfig/DdpConfig::checkpoint_every: write a crash-safe "
     "training checkpoint every N epochs (0 = off)."},
    {"SPTX_CHECKPOINT_KEEP", ConfigType::kInt, "",
     "Override TrainConfig/DdpConfig::checkpoint_keep: retain the last N "
     "rotated checkpoints (0 = keep all)."},
    {"SPTX_DDP_RETRIES", ConfigType::kInt, "",
     "Override DdpConfig::max_worker_retries: how many times a batch "
     "re-runs a failed worker's shards before aborting with a checkpoint "
     "flush."},
    {"SPTX_DDP_MODE", ConfigType::kEnum, "",
     "Override DdpConfig::mode: 'threads' runs DDP workers as threads in "
     "this process (the historical path), 'procs' fork/execs supervised "
     "worker processes over the sockets/shm transport — bit-identical "
     "results, process-level fault isolation.",
     "threads|procs"},
    {"SPTX_DDP_HEARTBEAT_MS", ConfigType::kInt, "",
     "Override DdpConfig::heartbeat_ms: procs-mode liveness deadline — a "
     "worker process that sends no frame for this long is declared lost "
     "and its shards re-run on the supervisor."},
    {"SPTX_DDP_POLICY", ConfigType::kEnum, "",
     "Override DdpConfig::policy: what procs mode does when the respawn "
     "budget (SPTX_DDP_RETRIES) is exhausted — 'strict' flushes a "
     "<checkpoint>.abort and throws kWorkerLost, 'degrade' continues on "
     "the surviving workers (down to the supervisor alone).",
     "strict|degrade"},
    {"SPTX_DDP_SHM_BYTES", ConfigType::kInt, "",
     "Override DdpConfig::shm_bytes: per-worker shared-memory ring size "
     "for gradient payloads in procs mode (0 = sockets only; payloads "
     "that outgrow the ring fall back to the socket inline path)."},
    {"SPTX_FAULT_SPEC", ConfigType::kString, "",
     "Deterministic fault-injection spec, comma-separated site:mode[@args] "
     "rules (see src/common/fault.hpp), e.g. "
     "'checkpoint_write:fail_once@3,ddp_worker:die@2:1,mmap_read:eio@0.01'."},
    {"SPTX_FAULT_SEED", ConfigType::kInt, "",
     "Seed for probabilistic (eio) fault-injection rules; the same spec + "
     "seed faults the same hits in every run."},
    {"SPTX_RUNTIME", ConfigType::kEnum, "pool",
     "Threading backend: 'pool' schedules every parallel site (SpMM "
     "kernels, epoch prefetch, DDP workers, serving, ANN builds) on the "
     "shared work-stealing runtime::TaskPool; 'legacy' keeps the historical "
     "per-site threads as a bit-identical escape hatch.",
     "pool|legacy"},
    {"SPTX_RUNTIME_THREADS", ConfigType::kInt, "",
     "Width of the shared task pool, including the calling lane (N means "
     "N-1 background workers). Default: hardware concurrency. Latched when "
     "the pool first runs; tests/benches re-shape via TaskPool::resize."},
};

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  }
  return true;
}

/// Does `text` parse as the spec's type? Enum checks the choices list.
bool validates(const ConfigSpec& spec, std::string_view text) {
  switch (spec.type) {
    case ConfigType::kFlag:
      return !text.empty();  // any non-empty text is a valid flag
    case ConfigType::kInt: {
      const std::string s(text);
      char* end = nullptr;
      std::strtol(s.c_str(), &end, 10);
      return end != s.c_str();
    }
    case ConfigType::kDouble: {
      const std::string s(text);
      char* end = nullptr;
      std::strtod(s.c_str(), &end);
      return end != s.c_str();
    }
    case ConfigType::kEnum: {
      std::string_view choices = spec.choices;
      while (!choices.empty()) {
        const std::size_t bar = choices.find('|');
        const std::string_view choice = choices.substr(0, bar);
        if (iequals(choice, text)) return true;
        if (bar == std::string_view::npos) break;
        choices.remove_prefix(bar + 1);
      }
      return false;
    }
    case ConfigType::kString:
      return true;  // free-form; the consumer validates (fault::install)
  }
  return false;
}

std::int64_t parse_int(std::string_view text, std::int64_t fallback) {
  if (text.empty()) return fallback;
  const std::string s(text);
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  return end == s.c_str() ? fallback : static_cast<std::int64_t>(v);
}

double parse_double(std::string_view text, double fallback) {
  if (text.empty()) return fallback;
  const std::string s(text);
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  return end == s.c_str() ? fallback : v;
}

}  // namespace

const char* to_string(ConfigOrigin origin) {
  switch (origin) {
    case ConfigOrigin::kDefault:
      return "default";
    case ConfigOrigin::kEnvironment:
      return "env";
    case ConfigOrigin::kOverride:
      return "override";
  }
  return "?";
}

bool parse_flag(std::string_view text, bool fallback) {
  if (text.empty()) return fallback;
  const std::string lower = to_lower(text);
  return !(lower == "0" || lower == "off" || lower == "false" ||
           lower == "no");
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::span<const ConfigSpec> RuntimeConfig::specs() { return kSpecs; }

const ConfigSpec* RuntimeConfig::find_spec(std::string_view name) {
  for (const ConfigSpec& spec : kSpecs)
    if (spec.name == name) return &spec;
  return nullptr;
}

RuntimeConfig::RuntimeConfig() : entries_(std::size(kSpecs)) { refresh_hot(); }

RuntimeConfig RuntimeConfig::from_env() {
  RuntimeConfig rc;
  for (std::size_t i = 0; i < std::size(kSpecs); ++i) {
    const std::string name(kSpecs[i].name);
    const char* v = std::getenv(name.c_str());
    if (v == nullptr || *v == '\0') continue;
    // A malformed environment value is ignored, not fatal — the historical
    // helpers fell back to defaults, and a run must not die over a typo'd
    // variable it may not even consume.
    if (!validates(kSpecs[i], v)) continue;
    rc.entries_[i] = {std::string(v), ConfigOrigin::kEnvironment};
  }
  rc.refresh_hot();
  return rc;
}

void RuntimeConfig::refresh_hot() {
  hot_.no_simd = flag_or("SPTX_NO_SIMD", false);
  hot_.spmm_kernel = to_lower(value_or("SPTX_SPMM_KERNEL", "auto"));
  hot_.spmm_backward = to_lower(value_or("SPTX_SPMM_BACKWARD", "auto"));
  hot_.fused_off = to_lower(value_or("SPTX_FUSED", "auto")) == "off";
  hot_.runtime_pool = to_lower(value_or("SPTX_RUNTIME", "pool")) != "legacy";
}

std::size_t RuntimeConfig::index_of(std::string_view name) {
  for (std::size_t i = 0; i < std::size(kSpecs); ++i)
    if (kSpecs[i].name == name) return i;
  throw Error("unknown runtime-config knob: " + std::string(name));
}

const RuntimeConfig::Entry& RuntimeConfig::entry(std::string_view name) const {
  return entries_[index_of(name)];
}

bool RuntimeConfig::flag_or(std::string_view name, bool fallback) const {
  const std::size_t i = index_of(name);
  SPTX_CHECK(kSpecs[i].type == ConfigType::kFlag,
             name << " is not a flag knob");
  const Entry& e = entries_[i];
  const std::string_view text =
      e.value ? std::string_view(*e.value) : kSpecs[i].default_value;
  return parse_flag(text, fallback);
}

std::int64_t RuntimeConfig::int_or(std::string_view name,
                                   std::int64_t fallback) const {
  const std::size_t i = index_of(name);
  SPTX_CHECK(kSpecs[i].type == ConfigType::kInt,
             name << " is not an int knob");
  const Entry& e = entries_[i];
  const std::string_view text =
      e.value ? std::string_view(*e.value) : kSpecs[i].default_value;
  return parse_int(text, fallback);
}

double RuntimeConfig::double_or(std::string_view name, double fallback) const {
  const std::size_t i = index_of(name);
  SPTX_CHECK(kSpecs[i].type == ConfigType::kDouble,
             name << " is not a double knob");
  const Entry& e = entries_[i];
  const std::string_view text =
      e.value ? std::string_view(*e.value) : kSpecs[i].default_value;
  return parse_double(text, fallback);
}

std::string RuntimeConfig::value_or(std::string_view name,
                                    std::string_view fallback) const {
  const std::size_t i = index_of(name);
  const Entry& e = entries_[i];
  if (e.value) return *e.value;
  if (!kSpecs[i].default_value.empty())
    return std::string(kSpecs[i].default_value);
  return std::string(fallback);
}

bool RuntimeConfig::is_set(std::string_view name) const {
  return entry(name).value.has_value();
}

ConfigOrigin RuntimeConfig::origin(std::string_view name) const {
  return entry(name).origin;
}

void RuntimeConfig::set(std::string_view name, std::string_view value) {
  const std::size_t i = index_of(name);
  SPTX_CHECK(validates(kSpecs[i], value),
             "invalid value '" << value << "' for " << name
                               << (kSpecs[i].type == ConfigType::kEnum
                                       ? std::string(" (choices: ") +
                                             std::string(kSpecs[i].choices) +
                                             ")"
                                       : std::string()));
  entries_[i] = {std::string(value), ConfigOrigin::kOverride};
  refresh_hot();
}

void RuntimeConfig::clear(std::string_view name) {
  entries_[index_of(name)] = Entry{};
  refresh_hot();
}

std::string RuntimeConfig::to_json() const {
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < std::size(kSpecs); ++i) {
    const ConfigSpec& spec = kSpecs[i];
    if (i > 0) os << ",";
    os << "\n  \"" << spec.name << "\": {\"value\": ";
    const Entry& e = entries_[i];
    const std::string_view text =
        e.value ? std::string_view(*e.value) : spec.default_value;
    if (text.empty()) {
      os << "null";
    } else {
      switch (spec.type) {
        case ConfigType::kFlag:
          os << (parse_flag(text, false) ? "true" : "false");
          break;
        case ConfigType::kInt:
          os << parse_int(text, 0);
          break;
        case ConfigType::kDouble:
          os << parse_double(text, 0.0);
          break;
        case ConfigType::kEnum:
          os << "\"" << to_lower(text) << "\"";
          break;
        case ConfigType::kString: {
          os << "\"";
          for (char c : text)
            if (c == '"' || c == '\\')
              os << '\\' << c;
            else
              os << c;
          os << "\"";
          break;
        }
      }
    }
    os << ", \"origin\": \"" << to_string(e.origin) << "\"}";
  }
  os << "\n}";
  return os.str();
}

namespace config {

namespace {
// The SpMM dispatch consults current() on every call from every worker and
// serving thread, so the fast path must not serialize threads: each thread
// caches the snapshot in a thread_local, validated against a relaxed
// version counter that install() bumps. Steady state is one atomic load —
// no mutex, no atomic<shared_ptr> spin-lock, no refcount ping-pong. The
// mutex guards only the (rare) install / first-use slow path.
Mutex g_mu;
std::shared_ptr<const RuntimeConfig> g_snapshot SPTX_GUARDED_BY(g_mu);
std::atomic<std::uint64_t> g_version{0};          // 0 = not yet initialised

struct TlsCache {
  std::uint64_t version = 0;
  std::shared_ptr<const RuntimeConfig> snap;
};
}  // namespace

std::shared_ptr<const RuntimeConfig> current() {
  thread_local TlsCache cache;
  const std::uint64_t v = g_version.load(std::memory_order_acquire);
  if (cache.snap && cache.version == v) return cache.snap;
  MutexLock lock(g_mu);
  if (!g_snapshot) {
    g_snapshot =
        std::make_shared<const RuntimeConfig>(RuntimeConfig::from_env());
    g_version.store(1, std::memory_order_release);
  }
  cache.snap = g_snapshot;
  cache.version = g_version.load(std::memory_order_relaxed);
  return cache.snap;
}

void install(RuntimeConfig snapshot) {
  MutexLock lock(g_mu);
  g_snapshot = std::make_shared<const RuntimeConfig>(std::move(snapshot));
  // Monotonic: a TLS cache can never see a (version, different-snapshot)
  // pair collide, because versions are handed out once.
  g_version.fetch_add(1, std::memory_order_release);
}

ScopedOverride::ScopedOverride(std::string_view name, std::string_view value)
    : previous_(current()) {
  RuntimeConfig overridden = *previous_;
  overridden.set(name, value);
  install(std::move(overridden));
}

ScopedOverride::~ScopedOverride() { install(*previous_); }

}  // namespace config

}  // namespace sptx
