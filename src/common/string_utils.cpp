#include "src/common/string_utils.hpp"

#include <cstdlib>

namespace sptx {

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double d = std::strtod(v, &end);
  return end == v ? fallback : d;
}

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long d = std::strtol(v, &end, 10);
  return end == v ? fallback : static_cast<int>(d);
}

}  // namespace sptx
