// Typed runtime-configuration registry — every SPTX_* knob in one table.
//
// The library grew ~15 environment knobs (kernel overrides, plan-cache
// switches, DDP sharding, serving micro-batch tuning) that used to be read
// by ad-hoc getenv calls deep inside spmm.cpp / trainer.cpp / ddp.cpp, each
// with its own parsing helper. This header replaces all of that with one
// declarative table (name, type, default, doc string) and an immutable
// snapshot type:
//
//  * RuntimeConfig::specs()    — the table itself, the single source of
//    truth the CLI's `sptx config` command and the README env table render.
//  * RuntimeConfig::from_env() — defaults overlaid with the current
//    environment, captured at the moment of the call. Engine construction
//    takes one snapshot; nothing re-reads the environment afterwards.
//  * set()/clear()             — programmatic overrides, validated against
//    the spec's type (a bad value throws instead of being silently dropped
//    the way a typo'd environment variable used to be).
//  * to_json()                 — the effective configuration as JSON, for
//    logging what a run actually used.
//
// Knobs that default to "keep the config-struct field" (SPTX_PLAN_CACHE,
// SPTX_DDP_WORKERS, …) are tri-state: is_set() distinguishes "absent" from
// an explicit value, and the *_or accessors fall back to the caller's value.
// All flag parsing is case-insensitive: "0" / "off" / "false" / "no"
// disable, any other non-empty value enables.
//
// Process-wide consumption: hot-path dispatch sites that have no Engine in
// scope (the SpMM kernel chooser, the SIMD kill switch) consult
// config::current(), a shared snapshot initialised lazily from the
// environment and replaceable via config::install() — which is what
// Engine construction does, so programmatic overrides reach the kernel
// dispatch too.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sptx {

enum class ConfigType {
  kFlag,    // boolean; "0"/"off"/"false"/"no" (any case) = false
  kInt,     // integer (leading numeric prefix accepted, like strtol)
  kDouble,  // floating point
  kEnum,    // one of the spec's pipe-separated choices, case-insensitive
  kString,  // free-form text (fault specs, paths); any value validates
};

/// One registered knob. The table is pure data — adding a knob means adding
/// a row here and reading it where it applies.
struct ConfigSpec {
  std::string_view name;           // "SPTX_PLAN_CACHE"
  ConfigType type = ConfigType::kFlag;
  /// Canonical default in text form. Empty = tri-state "keep the caller's
  /// config-struct field" (the *_or accessors' fallback applies).
  std::string_view default_value = {};
  std::string_view doc = {};
  /// kEnum only: pipe-separated valid values, e.g. "auto|scatter|transpose".
  std::string_view choices = {};
};

/// Where a knob's effective value came from.
enum class ConfigOrigin { kDefault, kEnvironment, kOverride };

const char* to_string(ConfigOrigin origin);

/// An immutable-by-convention snapshot of every registered knob. Copyable;
/// Engine keeps one per instance, config::current() holds the process-wide
/// one. Reads are lock-free after construction; mutation (set/clear) is for
/// the construction phase and tests.
class RuntimeConfig {
 public:
  /// The declarative table of every SPTX_* knob.
  static std::span<const ConfigSpec> specs();

  /// Spec row for `name`, or nullptr. Name match is exact (names are
  /// uppercase by convention).
  static const ConfigSpec* find_spec(std::string_view name);

  /// Defaults only — no environment read at all.
  RuntimeConfig();

  /// Defaults overlaid with the environment as it is right now. Unparsable
  /// environment values are ignored (the historical getenv helpers fell
  /// back to defaults rather than failing a run over a typo).
  static RuntimeConfig from_env();

  // ---- typed reads --------------------------------------------------------
  /// Effective value with tri-state fallback: when the knob is unset (no
  /// default, no env, no override) the caller's `fallback` wins. Throws
  /// Error for an unknown name or a type mismatch.
  bool flag_or(std::string_view name, bool fallback) const;
  std::int64_t int_or(std::string_view name, std::int64_t fallback) const;
  double double_or(std::string_view name, double fallback) const;
  /// Raw text form (enum/any type); empty when unset.
  std::string value_or(std::string_view name, std::string_view fallback) const;

  bool is_set(std::string_view name) const;
  ConfigOrigin origin(std::string_view name) const;

  // ---- mutation -----------------------------------------------------------
  /// Programmatic override. Validates the name against the table and the
  /// value against the spec's type/choices; throws Error on either.
  void set(std::string_view name, std::string_view value);

  /// Drop an override / env value back to the spec default.
  void clear(std::string_view name);

  /// The effective configuration as a JSON object:
  /// {"SPTX_X": {"value": ..., "origin": "default|env|override"}, ...}.
  /// Unset tri-state knobs render as null.
  std::string to_json() const;

  /// Pre-resolved values of the knobs consulted on the SpMM dispatch path,
  /// recomputed on every mutation so the per-SpMM read is a plain field
  /// access — no name lookup, no string allocation, no parsing.
  struct HotKnobs {
    bool no_simd = false;
    bool fused_off = false;              // SPTX_FUSED == "off"
    bool runtime_pool = true;            // SPTX_RUNTIME != "legacy"
    std::string spmm_kernel = "auto";    // lowercased
    std::string spmm_backward = "auto";  // lowercased
  };
  const HotKnobs& hot() const { return hot_; }

 private:
  struct Entry {
    std::optional<std::string> value;  // nullopt = spec default applies
    ConfigOrigin origin = ConfigOrigin::kDefault;
  };
  const Entry& entry(std::string_view name) const;
  /// Entry index for `name` (aligned with specs()); throws on unknown name.
  static std::size_t index_of(std::string_view name);
  void refresh_hot();

  std::vector<Entry> entries_;  // aligned with specs()
  HotKnobs hot_;
};

// ---- flag/number parsing (shared with call sites that read raw text) ------

/// Case-insensitive flag parse: "0"/"off"/"false"/"no" → false, any other
/// non-empty text → true, empty → fallback.
bool parse_flag(std::string_view text, bool fallback);

/// Lowercase copy (ASCII) — enum values and flags compare case-insensitively.
std::string to_lower(std::string_view s);

namespace config {

/// The process-wide snapshot consulted by call sites with no Engine in
/// scope (kernel dispatch, the legacy free functions). Initialised from the
/// environment on first use.
std::shared_ptr<const RuntimeConfig> current();

/// Replace the process-wide snapshot (Engine construction, tests). The old
/// snapshot stays valid for readers that already hold it.
void install(RuntimeConfig snapshot);

/// RAII: install a copy of the current process snapshot with one knob
/// overridden, restoring the previous snapshot on destruction. The bench /
/// test replacement for the setenv() toggling that a latched snapshot no
/// longer observes.
class ScopedOverride {
 public:
  ScopedOverride(std::string_view name, std::string_view value);
  ~ScopedOverride();
  ScopedOverride(const ScopedOverride&) = delete;
  ScopedOverride& operator=(const ScopedOverride&) = delete;

 private:
  std::shared_ptr<const RuntimeConfig> previous_;
};

}  // namespace config

}  // namespace sptx
