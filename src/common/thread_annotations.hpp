// Clang Thread Safety Analysis across the whole locking surface.
//
// The concurrency contract of this codebase — which mutex guards which
// state, which functions must (or must not) hold which lock — used to live
// in comments and in whatever interleavings TSan happened to exercise at
// runtime. This header moves that contract into the type system: every
// mutex-guarded subsystem (serve::MicroBatcher, serve::InferenceSession,
// sparse::PlanCache, Workspace, the fault harness, the runtime-config
// process snapshot, Engine's session registry) declares its discipline with
// the SPTX_* attribute macros below, and a clang build with
// `-Wthread-safety -Werror=thread-safety` (CMake: SPTX_THREAD_SAFETY,
// auto-on for clang) rejects any access that violates it — at compile time,
// on every build, on every path, not just the schedules a test hits.
//
// Under GCC (which has no thread-safety analysis) every macro expands to
// nothing, so annotated code builds identically everywhere.
//
// The sptx::Mutex / sptx::MutexLock / sptx::CondVar wrappers exist because
// libstdc++'s std::mutex carries no capability attributes: the analysis can
// only track lock state through types that declare it. They are exact-cost
// shims — Mutex is a std::mutex, MutexLock is a lock_guard that can also
// drop/retake the lock mid-scope (the micro-batcher's execute-outside-the-
// lock pattern), and CondVar waits on the wrapped mutex directly via
// std::condition_variable_any.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SPTX_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SPTX_THREAD_ANNOTATION
#define SPTX_THREAD_ANNOTATION(x)  // not clang: annotations compile away
#endif

/// A type that is a lockable capability ("mutex" names the kind in
/// diagnostics).
#define SPTX_CAPABILITY(x) SPTX_THREAD_ANNOTATION(capability(x))

/// RAII type that acquires a capability in its constructor and releases it
/// in its destructor.
#define SPTX_SCOPED_CAPABILITY SPTX_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while `x` is held.
#define SPTX_GUARDED_BY(x) SPTX_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose pointee is guarded by `x` (the pointer itself may
/// be read freely).
#define SPTX_PT_GUARDED_BY(x) SPTX_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function precondition: caller holds the capability (exclusively).
#define SPTX_REQUIRES(...) \
  SPTX_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SPTX_REQUIRES_SHARED(...) \
  SPTX_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires/releases the capability (not held on entry / held on
/// exit, and vice versa).
#define SPTX_ACQUIRE(...) \
  SPTX_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SPTX_RELEASE(...) \
  SPTX_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function may acquire the capability; returns `result` on success.
#define SPTX_TRY_ACQUIRE(...) \
  SPTX_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (deadlock guard for
/// self-locking public APIs).
#define SPTX_EXCLUDES(...) SPTX_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (trusted by the analysis).
#define SPTX_ASSERT_CAPABILITY(x) \
  SPTX_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the named capability.
#define SPTX_RETURN_CAPABILITY(x) SPTX_THREAD_ANNOTATION(lock_returned(x))

/// Lock-order declaration: this mutex is acquired before/after `...`.
#define SPTX_ACQUIRED_BEFORE(...) \
  SPTX_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define SPTX_ACQUIRED_AFTER(...) \
  SPTX_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Escape hatch — disables the analysis for one function. Every use must
/// carry a comment justifying why the contract holds anyway.
#define SPTX_NO_THREAD_SAFETY_ANALYSIS \
  SPTX_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace sptx {

/// std::mutex with the capability attribute the analysis tracks. Satisfies
/// BasicLockable, so std::lock_guard / std::unique_lock still compile
/// against it — but only sptx::MutexLock and the annotated lock()/unlock()
/// methods inform the analysis, so annotated code should use those.
class SPTX_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SPTX_ACQUIRE() { mu_.lock(); }
  void unlock() SPTX_RELEASE() { mu_.unlock(); }
  bool try_lock() SPTX_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Scoped lock over sptx::Mutex. Beyond lock_guard, it supports the
/// drop-and-retake pattern (unlock() mid-scope, lock() to re-enter) that
/// the micro-batcher uses to run the scoring callback outside the lock —
/// with the analysis tracking the held/released state across both.
class SPTX_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SPTX_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() SPTX_RELEASE() {
    if (held_) mu_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Drop the lock before a blocking/expensive region.
  void unlock() SPTX_RELEASE() {
    mu_.unlock();
    held_ = false;
  }

  /// Retake the lock after unlock().
  void lock() SPTX_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  friend class CondVar;
  Mutex& mu_;
  bool held_ = true;
};

/// Condition variable bound to sptx::Mutex. Waits take the Mutex itself so
/// the analysis can check the caller actually holds it; internally the wait
/// runs on the wrapped std::mutex (condition_variable_any), so the
/// unlock/relock inside libstdc++ never confuses the analysis.
class CondVar {
 public:
  void wait(Mutex& mu) SPTX_REQUIRES(mu) { cv_.wait(mu.mu_); }

  template <class Clock, class Duration>
  std::cv_status wait_until(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      SPTX_REQUIRES(mu) {
    return cv_.wait_until(mu.mu_, deadline);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace sptx
