// Error handling primitives for the SparseTransX library.
//
// We use exceptions for contract violations (mis-shaped matrices, bad
// indices) so that library users get actionable messages instead of UB.
// SPTX_CHECK is always on (the conditions it guards are O(1)); the
// hot inner kernels use SPTX_DCHECK which compiles away in release builds.
//
// Every Error carries an ErrorCode — a small taxonomy the fault-tolerance
// layer dispatches on (is this a corrupt checkpoint? an injected fault? a
// dead DDP worker?) where matching on what() substrings would be brittle.
// SPTX_CHECK throws kPrecondition; I/O and recovery paths throw typed codes
// via throw_error()/SPTX_CHECK_CODE.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace sptx {

/// The library's error taxonomy. Codes are stable identifiers callers may
/// dispatch on; the message is for humans.
enum class ErrorCode {
  kPrecondition,       // violated API contract (the SPTX_CHECK default)
  kIo,                 // filesystem / mmap / fd failure
  kCorruptCheckpoint,  // bad magic, truncation, CRC mismatch, version skew
  kDataFormat,         // malformed dataset / streaming-store file
  kDeadlineExceeded,   // request missed its serving deadline
  kQueueFull,          // bounded serving queue rejected the request
  kWorkerFailed,       // a DDP worker died and recovery was exhausted
  kWorkerLost,         // a DDP worker *process* died / missed its heartbeat
  kTransportError,     // socket/shm framing failure between DDP processes
  kFaultInjected,      // raised by the deterministic fault harness
};

const char* to_string(ErrorCode code);

/// Exception thrown on any violated precondition inside the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what,
                 ErrorCode code = ErrorCode::kPrecondition)
      : std::runtime_error(format_what(what, code)), code_(code) {}

  ErrorCode code() const { return code_; }

 private:
  // Appends instead of an operator+ chain: GCC 12's -Wrestrict misfires on
  // the inlined char_traits copy of `"[" + s + "] " + what` at -O3
  // (upstream PR105651), and the build is -Werror.
  static std::string format_what(const std::string& what, ErrorCode code) {
    std::string s;
    s.reserve(what.size() + 24);
    s += '[';
    s += to_string(code);
    s += "] ";
    s += what;
    return s;
  }

  ErrorCode code_;
};

inline const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kPrecondition:
      return "precondition";
    case ErrorCode::kIo:
      return "io";
    case ErrorCode::kCorruptCheckpoint:
      return "corrupt_checkpoint";
    case ErrorCode::kDataFormat:
      return "data_format";
    case ErrorCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case ErrorCode::kQueueFull:
      return "queue_full";
    case ErrorCode::kWorkerFailed:
      return "worker_failed";
    case ErrorCode::kWorkerLost:
      return "worker_lost";
    case ErrorCode::kTransportError:
      return "transport_error";
    case ErrorCode::kFaultInjected:
      return "fault_injected";
  }
  return "?";
}

[[noreturn]] inline void throw_error(ErrorCode code, const std::string& msg) {
  throw Error(msg, code);
}

namespace detail {
[[noreturn]] inline void fail(const char* cond, const char* file, int line,
                              const std::string& msg,
                              ErrorCode code = ErrorCode::kPrecondition) {
  std::ostringstream os;
  os << "sptx check failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str(), code);
}
}  // namespace detail

}  // namespace sptx

#define SPTX_CHECK(cond, msg)                                       \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::sptx::detail::fail(#cond, __FILE__, __LINE__,               \
                           (std::ostringstream{} << msg).str());    \
    }                                                               \
  } while (0)

/// SPTX_CHECK with a typed ErrorCode (I/O validation, checkpoint parsing).
#define SPTX_CHECK_CODE(cond, code, msg)                            \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::sptx::detail::fail(#cond, __FILE__, __LINE__,               \
                           (std::ostringstream{} << msg).str(),     \
                           (code));                                 \
    }                                                               \
  } while (0)

#ifdef NDEBUG
#define SPTX_DCHECK(cond, msg) ((void)0)
#else
#define SPTX_DCHECK(cond, msg) SPTX_CHECK(cond, msg)
#endif
