// Error handling primitives for the SparseTransX library.
//
// We use exceptions for contract violations (mis-shaped matrices, bad
// indices) so that library users get actionable messages instead of UB.
// SPTX_CHECK is always on (the conditions it guards are O(1)); the
// hot inner kernels use SPTX_DCHECK which compiles away in release builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace sptx {

/// Exception thrown on any violated precondition inside the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* cond, const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << "sptx check failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace sptx

#define SPTX_CHECK(cond, msg)                                       \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::sptx::detail::fail(#cond, __FILE__, __LINE__,               \
                           (std::ostringstream{} << msg).str());    \
    }                                                               \
  } while (0)

#ifdef NDEBUG
#define SPTX_DCHECK(cond, msg) ((void)0)
#else
#define SPTX_DCHECK(cond, msg) SPTX_CHECK(cond, msg)
#endif
