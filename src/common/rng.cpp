#include "src/common/rng.hpp"

#include <cmath>

namespace sptx {

float Rng::sqrt_neg2log(float u) { return std::sqrt(-2.0f * std::log(u)); }
float Rng::cosf_(float x) { return std::cos(x); }

}  // namespace sptx
