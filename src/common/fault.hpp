// Deterministic fault injection — every failure mode the fault-tolerance
// layer claims to survive is exercised by ctest, not hoped-for.
//
// A fault spec is a comma-separated list of `site:mode[@args]` rules bound
// to named call sites threaded through the tree:
//
//   checkpoint_write   AtomicFileWriter::commit, before the rename
//   file_write         AtomicFileWriter buffer flush, per write(2) attempt
//                      (latches EIO into the stream instead of throwing)
//   mmap_read          StreamingTripletStore open + slice
//   ddp_worker         per-shard inside train_ddp workers (ctx = epoch, worker)
//   ddp_proc_kill      procs-mode worker, before its first owned shard of an
//                      epoch (ctx = epoch, rank) — fires _Exit(137), a real
//                      SIGKILL-equivalent for the supervisor to survive
//   transport_drop     Conn::send in the DDP socket transport, per frame —
//                      send retries then raises kTransportError after 3 hits
//   heartbeat_stall    procs-mode worker heartbeat thread, per beacon
//                      (ctx = rank) — suppresses the beacon so the
//                      supervisor's liveness deadline trips
//   serve_queue        MicroBatcher enqueue
//
// Modes:
//   fail_once@N   throw Error{kFaultInjected} on the N-th hit of the site
//                 (1-based), exactly once
//   fail@N        throw on every hit from the N-th on
//   eio@P         throw with probability P per hit — deterministic: the
//                 decision is a hash of (seed, site, hit index), so the same
//                 spec + seed faults the same hits in every run
//   kill@N        `_Exit(137)` on the N-th hit: a simulated SIGKILL for
//                 crash-safety tests (no destructors, no atexit, no flush)
//   die@A[:B]     throw when the caller-supplied context matches (A matches
//                 ctx_a, B — when present — matches ctx_b); used as
//                 `ddp_worker:die@<epoch>:<worker>`
//
// Example: SPTX_FAULT_SPEC="checkpoint_write:fail_once@3,ddp_worker:die@2:1,
// mmap_read:eio@0.01" SPTX_FAULT_SEED=42.
//
// The harness is process-global (installed programmatically via install()
// or lazily from the SPTX_FAULT_SPEC / SPTX_FAULT_SEED registry knobs) and
// thread-safe; hit counters are atomic. When no spec is installed the cost
// of a site is one relaxed atomic load.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace sptx::fault {

/// Parse and install a fault spec. An empty spec clears the harness.
/// Throws Error{kPrecondition} on a malformed spec. Resets all hit
/// counters.
void install(std::string_view spec, std::uint64_t seed = 0);

/// Remove all rules and counters.
void clear();

/// True when any rule is installed (one relaxed atomic load).
bool active();

/// The installed spec text ("" when inactive) — surfaced by health/stats.
std::string spec();

/// Count a hit of `site` and report whether an installed rule fires.
/// `kill` rules _Exit(137) directly and do not return. `ctx_a`/`ctx_b` are
/// matched by `die` rules (pass the epoch / worker index, batch ordinal,
/// etc. — -1 means "no context", which `die` never matches).
bool should_fail(std::string_view site, std::int64_t ctx_a = -1,
                 std::int64_t ctx_b = -1);

/// should_fail + throw Error{kFaultInjected} naming the site.
void maybe_fail(std::string_view site, std::int64_t ctx_a = -1,
                std::int64_t ctx_b = -1);

/// Lazily install from the process RuntimeConfig (SPTX_FAULT_SPEC /
/// SPTX_FAULT_SEED) if install() has never been called. Called by the
/// subsystems that host sites (Engine, trainer, streaming store) at entry
/// so plain env-driven runs pick the spec up without code changes.
void init_from_config();

}  // namespace sptx::fault
