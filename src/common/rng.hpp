// Deterministic, fast random number generation.
//
// All stochastic components (initializers, negative samplers, synthetic
// dataset generators) take an explicit Rng so experiments are reproducible
// from a single seed, matching the paper's fixed-seed accuracy runs
// (Appendix E averages 9 seeds).
#pragma once

#include <array>
#include <cstdint>

namespace sptx {

/// xoshiro256** — small-state, high-quality, splittable-enough PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      si = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n). Unbiased enough for sampling (n << 2^64).
  std::uint64_t next_below(std::uint64_t n) { return next_u64() % n; }

  /// Uniform float in [0, 1).
  float next_float() {
    return static_cast<float>(next_u64() >> 40) * (1.0f / 16777216.0f);
  }

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) { return lo + (hi - lo) * next_float(); }

  /// Standard normal via Box–Muller (one value per call; simple and fine
  /// for initialization workloads).
  float normal() {
    float u1 = next_float();
    float u2 = next_float();
    if (u1 < 1e-12f) u1 = 1e-12f;
    return sqrt_neg2log(u1) * cosf_(6.28318530717958647692f * u2);
  }

  /// Derive an independent stream (e.g. one per worker thread).
  Rng split() { return Rng(next_u64() ^ 0xA5A5A5A5DEADBEEFULL); }

  /// Snapshot / restore the full generator state — what a training
  /// checkpoint persists so a resumed run continues the exact stream.
  std::array<std::uint64_t, 4> state() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    for (int i = 0; i < 4; ++i) s_[i] = s[i];
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  static float sqrt_neg2log(float u);
  static float cosf_(float x);

  std::uint64_t s_[4];
};

}  // namespace sptx
