#include "src/common/fault.hpp"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/runtime_config.hpp"
#include "src/common/thread_annotations.hpp"

namespace sptx::fault {

namespace {

enum class Mode { kFailOnce, kFail, kEio, kKill, kDie };

struct Rule {
  std::string site;
  Mode mode = Mode::kFailOnce;
  std::int64_t n = 1;          // fail_once/fail/kill: the trigger hit (1-based)
  double p = 0.0;              // eio: per-hit probability
  std::int64_t ctx_a = -1;     // die: required ctx_a
  std::int64_t ctx_b = -1;     // die: required ctx_b (-1 = any)
  bool has_ctx_b = false;
  std::atomic<std::int64_t> hits{0};
  std::atomic<bool> fired{false};  // fail_once: already consumed
};

struct Harness {
  std::string spec_text;
  std::uint64_t seed = 0;
  std::vector<std::unique_ptr<Rule>> rules;
};

Mutex g_mu;
std::shared_ptr<Harness> g_harness SPTX_GUARDED_BY(g_mu);
std::atomic<bool> g_active{false};           // fast-path gate
std::atomic<bool> g_config_checked{false};   // init_from_config ran once

std::shared_ptr<Harness> snapshot() SPTX_EXCLUDES(g_mu) {
  MutexLock lock(g_mu);
  return g_harness;
}

/// SplitMix64 — mixes (seed, site hash, hit index) into the eio decision so
/// the same spec + seed faults exactly the same hits in every run.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : s) h = (h ^ static_cast<unsigned char>(c)) * 0x100000001B3ULL;
  return h;
}

std::int64_t parse_i64(std::string_view text, std::string_view spec) {
  const std::string s(text);
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  SPTX_CHECK(end == s.c_str() + s.size() && !s.empty(),
             "bad integer '" << text << "' in fault spec '" << spec << "'");
  return static_cast<std::int64_t>(v);
}

std::unique_ptr<Rule> parse_rule(std::string_view text,
                                 std::string_view full_spec) {
  auto rule = std::make_unique<Rule>();
  const std::size_t colon = text.find(':');
  SPTX_CHECK(colon != std::string_view::npos && colon > 0,
             "fault rule '" << text << "' is not site:mode[@args]");
  rule->site = std::string(text.substr(0, colon));
  std::string_view rest = text.substr(colon + 1);
  const std::size_t at = rest.find('@');
  const std::string_view mode = rest.substr(0, at);
  std::string_view args =
      at == std::string_view::npos ? std::string_view{} : rest.substr(at + 1);
  if (mode == "fail_once" || mode == "fail" || mode == "kill") {
    rule->mode = mode == "fail_once" ? Mode::kFailOnce
                 : mode == "fail"    ? Mode::kFail
                                     : Mode::kKill;
    rule->n = args.empty() ? 1 : parse_i64(args, full_spec);
    SPTX_CHECK(rule->n >= 1, "fault rule '" << text << "': hit index must "
                                            << "be >= 1");
  } else if (mode == "eio") {
    rule->mode = Mode::kEio;
    SPTX_CHECK(!args.empty(), "fault rule '" << text << "': eio needs @P");
    const std::string s(args);
    char* end = nullptr;
    rule->p = std::strtod(s.c_str(), &end);
    SPTX_CHECK(end == s.c_str() + s.size() && rule->p >= 0.0 && rule->p <= 1.0,
               "fault rule '" << text << "': eio probability must be in "
                              << "[0, 1]");
  } else if (mode == "die") {
    rule->mode = Mode::kDie;
    SPTX_CHECK(!args.empty(), "fault rule '" << text << "': die needs @A[:B]");
    const std::size_t sep = args.find(':');
    rule->ctx_a = parse_i64(args.substr(0, sep), full_spec);
    if (sep != std::string_view::npos) {
      rule->ctx_b = parse_i64(args.substr(sep + 1), full_spec);
      rule->has_ctx_b = true;
    }
  } else {
    SPTX_CHECK(false, "fault rule '" << text << "': unknown mode '" << mode
                                     << "' (fail_once|fail|eio|kill|die)");
  }
  return rule;
}

bool rule_fires(Rule& rule, std::uint64_t seed, std::int64_t ctx_a,
                std::int64_t ctx_b) {
  const std::int64_t hit = rule.hits.fetch_add(1, std::memory_order_relaxed) + 1;
  switch (rule.mode) {
    case Mode::kFailOnce: {
      if (hit != rule.n) return false;
      bool expected = false;
      return rule.fired.compare_exchange_strong(expected, true);
    }
    case Mode::kFail:
      return hit >= rule.n;
    case Mode::kEio: {
      const std::uint64_t h =
          mix(seed ^ fnv1a(rule.site) ^ static_cast<std::uint64_t>(hit));
      return (static_cast<double>(h >> 11) * 0x1.0p-53) < rule.p;
    }
    case Mode::kKill:
      if (hit != rule.n) return false;
      // A simulated SIGKILL: no destructors, no stream flush, no atexit.
      // 137 = 128 + SIGKILL, what a shell reports for a real kill -9.
      std::_Exit(137);
    case Mode::kDie:
      return ctx_a == rule.ctx_a && (!rule.has_ctx_b || ctx_b == rule.ctx_b);
  }
  return false;
}

}  // namespace

void install(std::string_view spec, std::uint64_t seed) {
  auto harness = std::make_shared<Harness>();
  harness->spec_text = std::string(spec);
  harness->seed = seed;
  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view rule = rest.substr(0, comma);
    if (!rule.empty()) harness->rules.push_back(parse_rule(rule, spec));
    if (comma == std::string_view::npos) break;
    rest.remove_prefix(comma + 1);
  }
  MutexLock lock(g_mu);
  g_harness = harness->rules.empty() ? nullptr : std::move(harness);
  g_active.store(g_harness != nullptr, std::memory_order_release);
  g_config_checked.store(true, std::memory_order_release);
}

void clear() { install("", 0); }

bool active() { return g_active.load(std::memory_order_acquire); }

std::string spec() {
  if (!active()) return {};
  const auto h = snapshot();
  return h ? h->spec_text : std::string{};
}

bool should_fail(std::string_view site, std::int64_t ctx_a,
                 std::int64_t ctx_b) {
  if (!active()) return false;
  const auto h = snapshot();
  if (!h) return false;
  bool fires = false;
  for (const auto& rule : h->rules)
    if (rule->site == site)
      fires = rule_fires(*rule, h->seed, ctx_a, ctx_b) || fires;
  return fires;
}

void maybe_fail(std::string_view site, std::int64_t ctx_a,
                std::int64_t ctx_b) {
  if (should_fail(site, ctx_a, ctx_b))
    throw_error(ErrorCode::kFaultInjected,
                "injected fault at site '" + std::string(site) + "'");
}

void init_from_config() {
  if (g_config_checked.load(std::memory_order_acquire)) return;
  const auto rc = config::current();
  const std::string spec = rc->value_or("SPTX_FAULT_SPEC", "");
  const auto seed =
      static_cast<std::uint64_t>(rc->int_or("SPTX_FAULT_SEED", 0));
  // install() sets g_config_checked; harmless if two threads race here —
  // both install the same spec.
  install(spec, seed);
}

}  // namespace sptx::fault
