// Small string helpers used by the dataset loaders.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sptx {

/// Split `line` on `delim`, keeping empty fields.
inline std::vector<std::string_view> split(std::string_view line, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = line.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(line.substr(start));
      return out;
    }
    out.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
}

/// Strip leading/trailing whitespace (space, tab, CR, LF).
inline std::string_view trim(std::string_view s) {
  const char* ws = " \t\r\n";
  const std::size_t b = s.find_first_not_of(ws);
  if (b == std::string_view::npos) return {};
  const std::size_t e = s.find_last_not_of(ws);
  return s.substr(b, e - b + 1);
}

}  // namespace sptx
