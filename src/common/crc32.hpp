// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum the
// checkpoint format embeds so a truncated or bit-flipped file is rejected
// instead of silently loading garbage parameters.
//
// Header-only, table-driven, one byte per step: checkpoint payloads are a
// few MB written once per epoch at most, so throughput is irrelevant next
// to the fsync that follows. The table is built at compile time.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sptx {

namespace detail {
constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    table[i] = c;
  }
  return table;
}
inline constexpr auto kCrc32Table = make_crc32_table();
}  // namespace detail

/// Incremental CRC-32: pass the previous return value as `crc` to extend a
/// running checksum over multiple buffers. Start from the default 0.
inline std::uint32_t crc32(const void* data, std::size_t len,
                           std::uint32_t crc = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i)
    c = detail::kCrc32Table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

inline std::uint32_t crc32(std::string_view s, std::uint32_t crc = 0) {
  return crc32(s.data(), s.size(), crc);
}

}  // namespace sptx
