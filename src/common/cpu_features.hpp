// Runtime CPU feature detection for the SIMD kernel dispatch.
//
// The SpMM engine compiles AVX2/FMA kernels unconditionally (via per-function
// target attributes) and selects them at runtime from cpuid, so a portable
// -DSPTX_NATIVE=OFF binary still runs the vector kernels on capable hardware
// and falls back to scalar code everywhere else. SPTX_NO_SIMD=1 forces the
// scalar path (used by the kernel-equivalence tests to cover both sides of
// the dispatch on one machine).
#pragma once

#include <cstdlib>

namespace sptx {

struct CpuFeatures {
  bool avx2 = false;
  bool fma = false;
  bool avx512f = false;
};

/// cpuid-derived feature set, probed once per process.
inline const CpuFeatures& cpu_features() {
  static const CpuFeatures features = [] {
    CpuFeatures f;
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
    __builtin_cpu_init();
    f.avx2 = __builtin_cpu_supports("avx2") != 0;
    f.fma = __builtin_cpu_supports("fma") != 0;
    f.avx512f = __builtin_cpu_supports("avx512f") != 0;
#endif
    return f;
  }();
  return features;
}

/// True when the AVX2+FMA kernels may run: hardware support present and the
/// SPTX_NO_SIMD kill-switch is unset (or "0").
inline bool simd_enabled() {
  static const bool enabled = [] {
    const char* kill = std::getenv("SPTX_NO_SIMD");
    if (kill != nullptr && kill[0] != '\0' && kill[0] != '0') return false;
    return cpu_features().avx2 && cpu_features().fma;
  }();
  return enabled;
}

}  // namespace sptx
