// Runtime CPU feature detection for the SIMD kernel dispatch.
//
// The SpMM engine compiles AVX2/FMA kernels unconditionally (via per-function
// target attributes) and selects them at runtime from cpuid, so a portable
// -DSPTX_NATIVE=OFF binary still runs the vector kernels on capable hardware
// and falls back to scalar code everywhere else. The SPTX_NO_SIMD registry
// knob forces the scalar path (used by the kernel-equivalence tests to cover
// both sides of the dispatch on one machine).
#pragma once

#include "src/common/runtime_config.hpp"

namespace sptx {

struct CpuFeatures {
  bool avx2 = false;
  bool fma = false;
  bool avx512f = false;
};

/// cpuid-derived feature set, probed once per process.
inline const CpuFeatures& cpu_features() {
  static const CpuFeatures features = [] {
    CpuFeatures f;
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
    __builtin_cpu_init();
    f.avx2 = __builtin_cpu_supports("avx2") != 0;
    f.fma = __builtin_cpu_supports("fma") != 0;
    f.avx512f = __builtin_cpu_supports("avx512f") != 0;
#endif
    return f;
  }();
  return features;
}

/// True when the AVX2+FMA kernels may run: hardware support present and the
/// SPTX_NO_SIMD kill-switch unset in the current runtime-config snapshot.
/// Re-evaluated per call — one lock-free atomic shared_ptr load and a
/// pre-resolved field read (RuntimeConfig::hot()), so a programmatically
/// installed snapshot takes effect without a process restart and the SpMM
/// dispatch path never touches a mutex or allocates.
inline bool simd_enabled() {
  if (config::current()->hot().no_simd) return false;
  return cpu_features().avx2 && cpu_features().fma;
}

}  // namespace sptx
