// Command-line argument parsing for the sptx CLI — header-only so the
// parser is unit-testable (tests/test_cli_args.cpp) apart from main().
//
// Grammar: sptx <command> [--option value ...]. Parsing is strict where the
// old CLI was silently lossy: a token that is not an --option, or an option
// with no following value, is an error with a message naming the offender —
// not a half-parsed run that trains with defaults the user did not ask for.
#pragma once

#include <cstdlib>
#include <map>
#include <span>
#include <string>
#include <string_view>

#include "src/common/error.hpp"

namespace sptx::cli {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  bool has(const std::string& key) const { return options.count(key) > 0; }

  std::string get(const std::string& key, const std::string& fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }

  double num(const std::string& key, double fallback) const {
    auto it = options.find(key);
    if (it == options.end()) return fallback;
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    SPTX_CHECK(end != it->second.c_str() && *end == '\0',
               "option --" << key << " expects a number, got '" << it->second
                           << "'");
    return v;
  }
};

/// Parse argv into (command, options). Throws Error on a token that is not
/// an --option flag or on an option flag with no value following it.
inline Args parse_args(int argc, const char* const* argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string_view token = argv[i];
    SPTX_CHECK(token.size() > 2 && token.substr(0, 2) == "--",
               "expected an --option, got '" << token << "'");
    SPTX_CHECK(i + 1 < argc,
               "option " << token << " is missing its value");
    args.options[std::string(token.substr(2))] = argv[++i];
  }
  return args;
}

/// True when `command` is one of `known` — main() rejects the rest with a
/// message listing the valid commands.
inline bool known_command(std::string_view command,
                          std::span<const std::string_view> known) {
  for (std::string_view k : known)
    if (command == k) return true;
  return false;
}

}  // namespace sptx::cli
