#include "src/common/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "src/common/error.hpp"
#include "src/common/fault.hpp"

namespace sptx {

namespace {

constexpr std::size_t kBufBytes = 64 * 1024;

/// open(2) with EINTR retry — the same idiom as StreamingTripletStore::open:
/// signal-heavy hosts (profilers, timers, checkpoint alarms) interrupt slow
/// opens on networked filesystems.
int open_retry(const char* path, int flags, mode_t mode) {
  int fd = -1;
  do {
    fd = ::open(path, flags, mode);
  } while (fd < 0 && errno == EINTR);
  return fd;
}

/// fsync an already-open descriptor, retrying on EINTR.
int fsync_retry(int fd) {
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  return rc;
}

/// Open + fsync + close a path (the parent directory after rename). When
/// `required` is false an unopenable path is silently skipped — some
/// filesystems refuse O_RDONLY on directories, and a non-durable rename
/// beats a failed checkpoint there.
void fsync_path(const std::string& path, int open_flags,
                bool required = true) {
  const int fd = open_retry(path.c_str(), open_flags, 0);
  if (fd < 0 && !required) return;
  SPTX_CHECK_CODE(fd >= 0, ErrorCode::kIo,
                  "open for fsync failed: " << path << " ("
                                            << std::strerror(errno) << ")");
  const int rc = fsync_retry(fd);
  const int saved = errno;
  ::close(fd);
  SPTX_CHECK_CODE(rc == 0, ErrorCode::kIo,
                  "fsync failed: " << path << " (" << std::strerror(saved)
                                   << ")");
}

}  // namespace

// ---- FdStreamBuf -----------------------------------------------------------

FdStreamBuf::FdStreamBuf() : buf_(kBufBytes) {
  setp(buf_.data(), buf_.data() + buf_.size());
}

void FdStreamBuf::attach(int fd) {
  fd_ = fd;
  saved_errno_ = 0;
  setp(buf_.data(), buf_.data() + buf_.size());
}

bool FdStreamBuf::write_all(const char* data, std::size_t len) {
  if (saved_errno_ != 0) return false;  // latched: fail fast, keep errno
  std::size_t done = 0;
  while (done < len) {
    // Injected write failure: `file_write:eio@P` / fail_once@N — exercises
    // the partial-checkpoint abort path without a real full disk.
    if (fault::should_fail("file_write")) {
      saved_errno_ = EIO;
      return false;
    }
    const ssize_t n = ::write(fd_, data + done, len - done);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;  // the whole point of this class
    saved_errno_ = n < 0 ? errno : EIO;  // n == 0: no progress, no errno
    return false;
  }
  return true;
}

bool FdStreamBuf::flush_buffer() {
  const std::size_t pending = static_cast<std::size_t>(pptr() - pbase());
  if (pending > 0 && !write_all(pbase(), pending)) return false;
  setp(buf_.data(), buf_.data() + buf_.size());
  return saved_errno_ == 0;
}

FdStreamBuf::int_type FdStreamBuf::overflow(int_type ch) {
  if (!flush_buffer()) return traits_type::eof();
  if (!traits_type::eq_int_type(ch, traits_type::eof())) {
    *pptr() = traits_type::to_char_type(ch);
    pbump(1);
  }
  return traits_type::not_eof(ch);
}

std::streamsize FdStreamBuf::xsputn(const char* s, std::streamsize n) {
  const std::size_t len = static_cast<std::size_t>(n);
  // Large writes bypass the buffer (after draining it) — checkpoint blobs
  // are written in matrix-row chunks that would otherwise double-copy.
  if (len >= buf_.size()) {
    if (!flush_buffer() || !write_all(s, len)) return 0;
    return n;
  }
  if (static_cast<std::size_t>(epptr() - pptr()) < len && !flush_buffer())
    return 0;
  std::memcpy(pptr(), s, len);
  pbump(static_cast<int>(len));
  return n;
}

int FdStreamBuf::sync() { return flush_buffer() ? 0 : -1; }

// ---- AtomicFileWriter ------------------------------------------------------

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)),
      tmp_path_(path_ + ".tmp." + std::to_string(::getpid())),
      out_(&buf_) {
  fd_ = open_retry(tmp_path_.c_str(),
                   O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  SPTX_CHECK_CODE(fd_ >= 0, ErrorCode::kIo,
                  "cannot open temp file for atomic write: "
                      << tmp_path_ << " (" << std::strerror(errno) << ")");
  buf_.attach(fd_);
}

void AtomicFileWriter::close_fd() {
  if (fd_ < 0) return;
  // POSIX leaves the fd state unspecified on EINTR from close(); on Linux
  // the fd is always released, so retrying would race a concurrent open.
  // One call, result ignored — matches StreamingTripletStore's teardown.
  ::close(fd_);
  fd_ = -1;
}

AtomicFileWriter::~AtomicFileWriter() {
  close_fd();
  if (!committed_) std::remove(tmp_path_.c_str());
}

void AtomicFileWriter::commit() {
  SPTX_CHECK(!committed_, "AtomicFileWriter::commit called twice");
  const bool flushed = buf_.flush_buffer();
  SPTX_CHECK_CODE(flushed && !out_.fail(), ErrorCode::kIo,
                  "write to temp file failed: "
                      << tmp_path_ << " ("
                      << std::strerror(buf_.saved_errno()) << ")");

  // The payload is fully on its way to disk but the destination is still
  // the previous complete file: this is the injection point a mid-write
  // crash or I/O error exercises. A kill here must leave the old
  // checkpoint loadable; a thrown fault must leave it untouched (the
  // destructor unlinks the temp).
  fault::maybe_fail("checkpoint_write");

  SPTX_CHECK_CODE(fsync_retry(fd_) == 0, ErrorCode::kIo,
                  "fsync failed: " << tmp_path_ << " ("
                                   << std::strerror(errno) << ")");
  close_fd();
  SPTX_CHECK_CODE(std::rename(tmp_path_.c_str(), path_.c_str()) == 0,
                  ErrorCode::kIo,
                  "rename " << tmp_path_ << " -> " << path_ << " failed ("
                            << std::strerror(errno) << ")");
  committed_ = true;

  // Make the rename itself durable. A directory that cannot be opened
  // read-only (exotic filesystems) degrades to a non-durable rename rather
  // than a failed checkpoint, so only real fsync errors propagate.
  const std::string dir =
      std::filesystem::path(path_).parent_path().string();
  fsync_path(dir.empty() ? "." : dir, O_RDONLY, /*required=*/false);
}

}  // namespace sptx
