#include "src/common/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "src/common/error.hpp"
#include "src/common/fault.hpp"

namespace sptx {

namespace {

/// fsync an already-open descriptor, retrying on EINTR.
int fsync_retry(int fd) {
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  return rc;
}

/// Open + fsync + close a path (used for both the temp file after the
/// buffered stream is closed, and the parent directory after rename).
/// When `required` is false an unopenable path is silently skipped — some
/// filesystems refuse O_RDONLY on directories, and a non-durable rename
/// beats a failed checkpoint there.
void fsync_path(const std::string& path, int open_flags,
                bool required = true) {
  int fd;
  do {
    fd = ::open(path.c_str(), open_flags);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0 && !required) return;
  SPTX_CHECK_CODE(fd >= 0, ErrorCode::kIo,
                  "open for fsync failed: " << path << " ("
                                            << std::strerror(errno) << ")");
  const int rc = fsync_retry(fd);
  const int saved = errno;
  ::close(fd);
  SPTX_CHECK_CODE(rc == 0, ErrorCode::kIo,
                  "fsync failed: " << path << " (" << std::strerror(saved)
                                   << ")");
}

}  // namespace

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)),
      tmp_path_(path_ + ".tmp." + std::to_string(::getpid())),
      out_(tmp_path_, std::ios::binary | std::ios::trunc) {
  SPTX_CHECK_CODE(out_.good(), ErrorCode::kIo,
                  "cannot open temp file for atomic write: " << tmp_path_);
}

AtomicFileWriter::~AtomicFileWriter() {
  if (!committed_) {
    out_.close();
    std::remove(tmp_path_.c_str());
  }
}

void AtomicFileWriter::commit() {
  SPTX_CHECK(!committed_, "AtomicFileWriter::commit called twice");
  out_.flush();
  SPTX_CHECK_CODE(out_.good(), ErrorCode::kIo,
                  "write to temp file failed: " << tmp_path_);
  out_.close();
  SPTX_CHECK_CODE(!out_.fail(), ErrorCode::kIo,
                  "close of temp file failed: " << tmp_path_);

  // The payload is fully on its way to disk but the destination is still
  // the previous complete file: this is the injection point a mid-write
  // crash or I/O error exercises. A kill here must leave the old
  // checkpoint loadable; a thrown fault must leave it untouched (the
  // destructor unlinks the temp).
  fault::maybe_fail("checkpoint_write");

  fsync_path(tmp_path_, O_WRONLY);
  SPTX_CHECK_CODE(std::rename(tmp_path_.c_str(), path_.c_str()) == 0,
                  ErrorCode::kIo,
                  "rename " << tmp_path_ << " -> " << path_ << " failed ("
                            << std::strerror(errno) << ")");
  committed_ = true;

  // Make the rename itself durable. A directory that cannot be opened
  // read-only (exotic filesystems) degrades to a non-durable rename rather
  // than a failed checkpoint, so only real fsync errors propagate.
  const std::string dir =
      std::filesystem::path(path_).parent_path().string();
  fsync_path(dir.empty() ? "." : dir, O_RDONLY, /*required=*/false);
}

}  // namespace sptx
