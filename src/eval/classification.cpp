#include "src/eval/classification.hpp"

#include "src/common/error.hpp"

namespace sptx::eval {

void CentroidClassifier::fit(const Matrix& embeddings,
                             std::span<const index_t> entities,
                             std::span<const index_t> labels,
                             index_t num_classes) {
  SPTX_CHECK(entities.size() == labels.size(), "entities/labels mismatch");
  SPTX_CHECK(num_classes > 0, "need at least one class");
  centroids_ = Matrix(num_classes, embeddings.cols());
  std::vector<index_t> counts(static_cast<std::size_t>(num_classes), 0);
  for (std::size_t i = 0; i < entities.size(); ++i) {
    const index_t e = entities[i];
    const index_t c = labels[i];
    SPTX_CHECK(e >= 0 && e < embeddings.rows(), "entity out of range");
    SPTX_CHECK(c >= 0 && c < num_classes, "label out of range");
    const float* row = embeddings.row(e);
    float* centroid = centroids_.row(c);
    for (index_t j = 0; j < embeddings.cols(); ++j) centroid[j] += row[j];
    counts[static_cast<std::size_t>(c)]++;
  }
  for (index_t c = 0; c < num_classes; ++c) {
    const index_t n = counts[static_cast<std::size_t>(c)];
    if (n == 0) continue;
    float* centroid = centroids_.row(c);
    const float inv = 1.0f / static_cast<float>(n);
    for (index_t j = 0; j < centroids_.cols(); ++j) centroid[j] *= inv;
  }
}

index_t CentroidClassifier::predict(const Matrix& embeddings,
                                    index_t entity) const {
  SPTX_CHECK(!centroids_.empty(), "classifier not fitted");
  SPTX_CHECK(entity >= 0 && entity < embeddings.rows(),
             "entity out of range");
  SPTX_CHECK(embeddings.cols() == centroids_.cols(),
             "embedding dim changed since fit");
  const float* row = embeddings.row(entity);
  index_t best = 0;
  float best_dist = 0.0f;
  for (index_t c = 0; c < centroids_.rows(); ++c) {
    const float* centroid = centroids_.row(c);
    float dist = 0.0f;
    for (index_t j = 0; j < centroids_.cols(); ++j) {
      const float v = row[j] - centroid[j];
      dist += v * v;
    }
    if (c == 0 || dist < best_dist) {
      best = c;
      best_dist = dist;
    }
  }
  return best;
}

double CentroidClassifier::accuracy(const Matrix& embeddings,
                                    std::span<const index_t> entities,
                                    std::span<const index_t> labels) const {
  SPTX_CHECK(entities.size() == labels.size(), "entities/labels mismatch");
  if (entities.empty()) return 0.0;
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < entities.size(); ++i) {
    if (predict(embeddings, entities[i]) == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(entities.size());
}

}  // namespace sptx::eval
