#include "src/eval/link_prediction.hpp"

#include <algorithm>
#include <functional>
#include <map>

namespace sptx::eval {

namespace {

std::uint64_t key_of(std::int64_t h, std::int64_t r, std::int64_t t) {
  return (static_cast<std::uint64_t>(h) << 42) ^
         (static_cast<std::uint64_t>(r) << 21) ^ static_cast<std::uint64_t>(t);
}

void insert_all(std::unordered_set<std::uint64_t>& keys,
                const TripletStore& store) {
  for (const Triplet& t : store.triplets())
    keys.insert(key_of(t.head, t.relation, t.tail));
}

struct RankAccumulator {
  double rr_sum = 0.0;
  double rank_sum = 0.0;
  std::int64_t h1 = 0, h3 = 0, h10 = 0;
  std::int64_t queries = 0;

  void add(double rank) {
    rr_sum += 1.0 / rank;
    rank_sum += rank;
    if (rank <= 1.0) ++h1;
    if (rank <= 3.0) ++h3;
    if (rank <= 10.0) ++h10;
    ++queries;
  }

  RankingMetrics finish() const {
    RankingMetrics m;
    m.queries = queries;
    if (queries > 0) {
      const auto q = static_cast<double>(queries);
      m.mrr = rr_sum / q;
      m.mean_rank = rank_sum / q;
      m.hits_at_1 = static_cast<double>(h1) / q;
      m.hits_at_3 = static_cast<double>(h3) / q;
      m.hits_at_10 = static_cast<double>(h10) / q;
    }
    return m;
  }
};

// Shared ranking walk: for every evaluated (test triplet, side) pair,
// computes the filtered optimistic-average rank and hands it to `sink`
// together with the triplet (so callers can bucket by relation).
void rank_all(const models::KgeModel& model, const kg::Dataset& dataset,
              const EvalConfig& config,
              const std::function<void(const Triplet&, bool /*tail_side*/,
                                       double /*rank*/)>& sink) {
  const index_t n = dataset.num_entities();
  std::unordered_set<std::uint64_t> known;
  if (config.filtered) {
    known.reserve(static_cast<std::size_t>(dataset.train.size() +
                                           dataset.valid.size() +
                                           dataset.test.size()) *
                  2);
    insert_all(known, dataset.train);
    insert_all(known, dataset.valid);
    insert_all(known, dataset.test);
  }
  const bool higher_better = model.higher_is_better();

  std::int64_t query_budget =
      config.max_queries > 0 ? config.max_queries : dataset.test.size();
  std::vector<Triplet> local_candidates(static_cast<std::size_t>(n));

  for (std::int64_t qi = 0; qi < dataset.test.size() && query_budget > 0;
       ++qi) {
    const Triplet& truth = dataset.test[qi];
    auto rank_side = [&](bool corrupt_tail) {
      // The candidate batch for a (query, side) pair is identical across
      // evaluations; a caller-supplied plan cache compiles it once and
      // serves every later pass from the plan.
      std::span<const Triplet> candidates;
      std::shared_ptr<const sparse::CompiledBatch> plan;
      auto fill = [&](std::vector<Triplet>& out) {
        for (index_t e = 0; e < n; ++e) {
          Triplet c = truth;
          (corrupt_tail ? c.tail : c.head) = e;
          out[static_cast<std::size_t>(e)] = c;
        }
      };
      if (config.plan_cache) {
        const sparse::PlanCache::Key key =
            (static_cast<sparse::PlanCache::Key>(qi) << 1) |
            (corrupt_tail ? 1u : 0u);
        plan = config.plan_cache->find(key);
        if (!plan) {
          std::vector<Triplet> staged(static_cast<std::size_t>(n));
          fill(staged);
          plan = sparse::CompiledBatch::compile_owned(
              std::move(staged), sparse::ScoringRecipe{},
              dataset.num_entities(), dataset.train.num_relations());
          config.plan_cache->put(key, plan);
        }
        candidates = plan->triplets();
      } else {
        fill(local_candidates);
        candidates = local_candidates;
      }
      const std::vector<float> scores = model.score(candidates);
      const float truth_score = scores[static_cast<std::size_t>(
          corrupt_tail ? truth.tail : truth.head)];
      // Optimistic-average tie handling: rank = 1 + #strictly better +
      // #ties/2 (excluding the truth itself).
      std::int64_t better = 0, ties = 0;
      for (index_t e = 0; e < n; ++e) {
        if (e == (corrupt_tail ? truth.tail : truth.head)) continue;
        if (config.filtered) {
          const Triplet& c = candidates[static_cast<std::size_t>(e)];
          if (known.count(key_of(c.head, c.relation, c.tail))) continue;
        }
        const float s = scores[static_cast<std::size_t>(e)];
        const bool is_better =
            higher_better ? s > truth_score : s < truth_score;
        if (is_better) {
          ++better;
        } else if (s == truth_score) {
          ++ties;
        }
      }
      const double rank = 1.0 + static_cast<double>(better) +
                          static_cast<double>(ties) / 2.0;
      sink(truth, corrupt_tail, rank);
    };
    if (config.corrupt_tails) rank_side(true);
    if (config.corrupt_heads) rank_side(false);
    --query_budget;
  }
}

}  // namespace

RankingMetrics evaluate(const models::KgeModel& model,
                        const kg::Dataset& dataset, const EvalConfig& config) {
  RankAccumulator acc;
  rank_all(model, dataset, config,
           [&](const Triplet&, bool, double rank) { acc.add(rank); });
  return acc.finish();
}

const char* to_string(RelationCategory category) {
  switch (category) {
    case RelationCategory::kOneToOne:
      return "1-1";
    case RelationCategory::kOneToMany:
      return "1-N";
    case RelationCategory::kManyToOne:
      return "N-1";
    case RelationCategory::kManyToMany:
      return "N-N";
  }
  return "?";
}

std::vector<RelationCategory> classify_relations(const TripletStore& train) {
  // Average tails-per-(head,relation) and heads-per-(tail,relation);
  // thresholds at 1.5 per the TransE evaluation protocol.
  std::map<std::pair<std::int64_t, std::int64_t>, std::int64_t> hr, tr;
  for (const Triplet& t : train.triplets()) {
    hr[{t.head, t.relation}]++;
    tr[{t.tail, t.relation}]++;
  }
  const auto r = static_cast<std::size_t>(train.num_relations());
  std::vector<double> tph_sum(r), tph_cnt(r), hpt_sum(r), hpt_cnt(r);
  for (const auto& [key, cnt] : hr) {
    tph_sum[static_cast<std::size_t>(key.second)] += cnt;
    tph_cnt[static_cast<std::size_t>(key.second)] += 1;
  }
  for (const auto& [key, cnt] : tr) {
    hpt_sum[static_cast<std::size_t>(key.second)] += cnt;
    hpt_cnt[static_cast<std::size_t>(key.second)] += 1;
  }
  std::vector<RelationCategory> out(r, RelationCategory::kOneToOne);
  for (std::size_t i = 0; i < r; ++i) {
    const double tph = tph_cnt[i] > 0 ? tph_sum[i] / tph_cnt[i] : 0.0;
    const double hpt = hpt_cnt[i] > 0 ? hpt_sum[i] / hpt_cnt[i] : 0.0;
    const bool many_tails = tph >= 1.5;
    const bool many_heads = hpt >= 1.5;
    out[i] = many_tails ? (many_heads ? RelationCategory::kManyToMany
                                      : RelationCategory::kOneToMany)
                        : (many_heads ? RelationCategory::kManyToOne
                                      : RelationCategory::kOneToOne);
  }
  return out;
}

CategoryMetrics evaluate_by_category(const models::KgeModel& model,
                                     const kg::Dataset& dataset,
                                     const EvalConfig& config) {
  const std::vector<RelationCategory> categories =
      classify_relations(dataset.train);
  RankAccumulator acc[4];
  rank_all(model, dataset, config,
           [&](const Triplet& truth, bool, double rank) {
             const auto c = static_cast<std::size_t>(
                 categories[static_cast<std::size_t>(truth.relation)]);
             acc[c].add(rank);
           });
  CategoryMetrics out;
  for (int c = 0; c < 4; ++c) out.by_category[c] = acc[c].finish();
  return out;
}

}  // namespace sptx::eval
