// Link-prediction evaluation: Hits@K, MRR, mean rank (raw and filtered).
//
// For every test triplet the evaluator replaces the tail (and optionally
// the head) with every entity, scores all candidates with the model's fast
// scoring path, and ranks the true entity. "Filtered" ranking (the Hits@10
// the paper reports, Fig 5 / Tab 8) ignores candidates that are known
// positives in train/valid/test. Ties rank optimistically-average
// (candidates with strictly better score count, equal scores count half),
// which avoids both the optimistic and pessimistic tie biases.
#pragma once

#include <unordered_set>

#include "src/kg/dataset.hpp"
#include "src/models/model.hpp"
#include "src/sparse/plan_cache.hpp"

namespace sptx::eval {

struct RankingMetrics {
  double mrr = 0.0;
  double mean_rank = 0.0;
  double hits_at_1 = 0.0;
  double hits_at_3 = 0.0;
  double hits_at_10 = 0.0;
  std::int64_t queries = 0;
};

struct EvalConfig {
  bool filtered = true;
  bool corrupt_heads = true;  // evaluate both sides (standard protocol)
  bool corrupt_tails = true;
  /// Cap on evaluated test triplets (0 = all); keeps scaled runs fast.
  std::int64_t max_queries = 0;
  /// Optional candidate-plan cache, keyed by (query index, corruption
  /// side). Each (test triplet, side) pair scores the same N-candidate
  /// batch on every evaluation, so callers that evaluate repeatedly
  /// (convergence tracking, per-category passes over one test set) share a
  /// sparse::PlanCache here and reuse the staged candidate batches after
  /// the first pass. What is reused is the candidate *staging* (the plans
  /// carry no incidence — score() is the dense fast path), so the win is
  /// bounded by the O(N) fill per query, not the O(N·d) scoring. Memory:
  /// 2·|test|·N staged triplets stay resident. Opt in only for small test
  /// splits that are evaluated many times; the cache is bound to one
  /// dataset — invalidate() (or a fresh cache) when the split changes.
  sparse::PlanCache* plan_cache = nullptr;
};

/// Evaluate `model` on `dataset.test` against all entities.
RankingMetrics evaluate(const models::KgeModel& model,
                        const kg::Dataset& dataset, const EvalConfig& config);

/// Mapping-property class of a relation (the TransE/TransH literature's
/// 1-1 / 1-N / N-1 / N-N split, thresholding average tails-per-head and
/// heads-per-tail at 1.5).
enum class RelationCategory { kOneToOne, kOneToMany, kManyToOne, kManyToMany };

const char* to_string(RelationCategory category);

/// Classify every relation from the training split's statistics.
std::vector<RelationCategory> classify_relations(const TripletStore& train);

/// Per-category metrics, indexed by RelationCategory (4 entries). Useful to
/// confirm the known model behaviours (e.g. plain TransE degrading on 1-N
/// tails, the failure TransH was designed to fix).
struct CategoryMetrics {
  RankingMetrics by_category[4];
};

CategoryMetrics evaluate_by_category(const models::KgeModel& model,
                                     const kg::Dataset& dataset,
                                     const EvalConfig& config);

}  // namespace sptx::eval
