// Entity classification on trained embeddings — §4.7.1 lists "classifying
// entities" among the framework's model functionalities (and the intro
// cites entity classification as a standard KGE downstream task).
//
// A nearest-centroid classifier: fit computes the mean embedding of each
// class over labelled training entities; predict assigns the class of the
// closest centroid. Simple, deterministic, and exactly what "are the
// learned embeddings linearly organised by type?" needs for evaluation.
#pragma once

#include <vector>

#include "src/tensor/matrix.hpp"

namespace sptx::eval {

class CentroidClassifier {
 public:
  /// Fit centroids. `labels[i]` is the class of `entities[i]`, classes are
  /// dense ints in [0, num_classes); `embeddings` is the full entity table.
  void fit(const Matrix& embeddings, std::span<const index_t> entities,
           std::span<const index_t> labels, index_t num_classes);

  /// Predicted class for one entity row.
  index_t predict(const Matrix& embeddings, index_t entity) const;

  /// Fraction of (entity, label) pairs predicted correctly.
  double accuracy(const Matrix& embeddings,
                  std::span<const index_t> entities,
                  std::span<const index_t> labels) const;

  index_t num_classes() const { return centroids_.rows(); }
  const Matrix& centroids() const { return centroids_; }

 private:
  Matrix centroids_;  // num_classes × d
};

}  // namespace sptx::eval
