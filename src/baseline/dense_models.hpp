// Dense gather/scatter baselines — the cost structure of TorchKGE/PyG.
//
// These implement the SAME four score functions as the SpTransX models but
// the way established KGE frameworks compute them (§1's bottleneck list):
//  * forward: one embedding gather per role (head, tail, relation, plus
//    normals/transfer vectors), each materialising an M×d intermediate;
//  * score expression built from separate elementwise ops (h+r, then −t,
//    …), each allocating another intermediate;
//  * backward: per-row scatter-add for every gather — the fine-grained
//    "EmbeddingBackward" pattern Figure 2 shows dominating training time;
//  * TransR projects h and t separately (two per-relation GEMMs instead of
//    the rearranged single projection of (h−t));
//  * TransH computes h⊥ and t⊥ independently (two dots/scalings/subs).
//
// The comparison between these and the SpTransX models is the paper's
// headline experiment (Figure 7/8, Tables 1/5/6/7). Both run on the same
// autograd engine and kernels library, so the measured difference is the
// formulation, not incidental implementation quality.
#pragma once

#include "src/models/model.hpp"
#include "src/nn/embedding.hpp"

namespace sptx::baseline {

using models::Dissimilarity;
using models::KgeModel;
using models::ModelConfig;

class DenseTransE final : public KgeModel {
 public:
  DenseTransE(index_t num_entities, index_t num_relations,
              const ModelConfig& config, Rng& rng);
  std::string name() const override { return "DenseTransE"; }
  autograd::Variable loss(std::span<const Triplet> pos,
                          std::span<const Triplet> neg) override;
  std::vector<float> score(std::span<const Triplet> batch) const override;
  std::vector<autograd::Variable> params() override;
  void post_step() override;

  autograd::Variable distance(std::span<const Triplet> batch);

 private:
  nn::EmbeddingTable entities_;   // separate tables, TorchKGE-style
  nn::EmbeddingTable relations_;
};

class DenseTransR final : public KgeModel {
 public:
  DenseTransR(index_t num_entities, index_t num_relations,
              const ModelConfig& config, Rng& rng);
  std::string name() const override { return "DenseTransR"; }
  autograd::Variable loss(std::span<const Triplet> pos,
                          std::span<const Triplet> neg) override;
  std::vector<float> score(std::span<const Triplet> batch) const override;
  std::vector<autograd::Variable> params() override;
  void post_step() override;

  autograd::Variable distance(std::span<const Triplet> batch);

 private:
  nn::EmbeddingTable entities_;
  nn::EmbeddingTable relations_;
  nn::EmbeddingTable projections_;
};

class DenseTransH final : public KgeModel {
 public:
  DenseTransH(index_t num_entities, index_t num_relations,
              const ModelConfig& config, Rng& rng);
  std::string name() const override { return "DenseTransH"; }
  autograd::Variable loss(std::span<const Triplet> pos,
                          std::span<const Triplet> neg) override;
  std::vector<float> score(std::span<const Triplet> batch) const override;
  std::vector<autograd::Variable> params() override;
  void post_step() override;

  autograd::Variable distance(std::span<const Triplet> batch);

 private:
  nn::EmbeddingTable entities_;
  nn::EmbeddingTable normals_;
  nn::EmbeddingTable transfers_;
};

/// Dense TransD (Figure 2 profiles it on TorchKGE): six gathers and two
/// fully separate hyper-projection chains for h⊥ and t⊥.
class DenseTransD final : public KgeModel {
 public:
  DenseTransD(index_t num_entities, index_t num_relations,
              const ModelConfig& config, Rng& rng);
  std::string name() const override { return "DenseTransD"; }
  autograd::Variable loss(std::span<const Triplet> pos,
                          std::span<const Triplet> neg) override;
  std::vector<float> score(std::span<const Triplet> batch) const override;
  std::vector<autograd::Variable> params() override;
  void post_step() override;

  autograd::Variable distance(std::span<const Triplet> batch);

 private:
  nn::EmbeddingTable entities_;
  nn::EmbeddingTable entity_proj_;
  nn::EmbeddingTable relations_;
  nn::EmbeddingTable relation_proj_;
};

class DenseTorusE final : public KgeModel {
 public:
  DenseTorusE(index_t num_entities, index_t num_relations,
              const ModelConfig& config, Rng& rng);
  std::string name() const override { return "DenseTorusE"; }
  autograd::Variable loss(std::span<const Triplet> pos,
                          std::span<const Triplet> neg) override;
  std::vector<float> score(std::span<const Triplet> batch) const override;
  std::vector<autograd::Variable> params() override;

  autograd::Variable distance(std::span<const Triplet> batch);

 private:
  nn::EmbeddingTable entities_;
  nn::EmbeddingTable relations_;
};

}  // namespace sptx::baseline
