#include "src/baseline/dense_models.hpp"

#include <cmath>

namespace sptx::baseline {

namespace {

using autograd::Variable;

struct BatchIndices {
  std::shared_ptr<std::vector<index_t>> heads;
  std::shared_ptr<std::vector<index_t>> tails;
  std::shared_ptr<std::vector<index_t>> rels;
};

BatchIndices split_indices(std::span<const Triplet> batch) {
  BatchIndices idx{std::make_shared<std::vector<index_t>>(),
                   std::make_shared<std::vector<index_t>>(),
                   std::make_shared<std::vector<index_t>>()};
  idx.heads->reserve(batch.size());
  idx.tails->reserve(batch.size());
  idx.rels->reserve(batch.size());
  for (const Triplet& t : batch) {
    idx.heads->push_back(t.head);
    idx.tails->push_back(t.tail);
    idx.rels->push_back(t.relation);
  }
  return idx;
}

Variable norm_of(const Variable& x, Dissimilarity d) {
  return d == Dissimilarity::kL2 ? autograd::row_l2(x) : autograd::row_l1(x);
}

}  // namespace

// ------------------------------------------------------------ DenseTransE

DenseTransE::DenseTransE(index_t num_entities, index_t num_relations,
                         const ModelConfig& config, Rng& rng)
    : KgeModel(num_entities, num_relations, config),
      entities_(num_entities, config.dim, rng),
      relations_(num_relations, config.dim, rng) {}

Variable DenseTransE::distance(std::span<const Triplet> batch) {
  const BatchIndices idx = split_indices(batch);
  // Three fine-grained gathers, then two elementwise passes — each step a
  // fresh M×d intermediate, as TorchKGE's h + r − t evaluates.
  Variable h = autograd::gather(entities_.var(), idx.heads);
  Variable t = autograd::gather(entities_.var(), idx.tails);
  Variable r = autograd::gather(relations_.var(), idx.rels);
  Variable hr = autograd::add(h, r);
  Variable hrt = autograd::sub(hr, t);
  return norm_of(hrt, config_.dissimilarity);
}

Variable DenseTransE::loss(std::span<const Triplet> pos,
                           std::span<const Triplet> neg) {
  return ranking_loss(distance(pos), distance(neg), config_);
}

std::vector<float> DenseTransE::score(std::span<const Triplet> batch) const {
  const Matrix& e = entities_.weights();
  const Matrix& r = relations_.weights();
  const index_t d = e.cols();
  std::vector<float> out(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Triplet& t = batch[i];
    const float* h = e.row(t.head);
    const float* rv = r.row(t.relation);
    const float* tl = e.row(t.tail);
    float acc = 0.0f;
    if (config_.dissimilarity == Dissimilarity::kL2) {
      for (index_t j = 0; j < d; ++j) {
        const float v = h[j] + rv[j] - tl[j];
        acc += v * v;
      }
      out[i] = std::sqrt(acc);
    } else {
      for (index_t j = 0; j < d; ++j) acc += std::fabs(h[j] + rv[j] - tl[j]);
      out[i] = acc;
    }
  }
  return out;
}

std::vector<autograd::Variable> DenseTransE::params() {
  return {entities_.var(), relations_.var()};
}

void DenseTransE::post_step() {
  if (config_.normalize_entities) entities_.normalize_rows();
}

// ------------------------------------------------------------ DenseTransR

DenseTransR::DenseTransR(index_t num_entities, index_t num_relations,
                         const ModelConfig& config, Rng& rng)
    : KgeModel(num_entities, num_relations, config),
      entities_(num_entities, config.dim, rng),
      relations_(num_relations, config.rel_dim, rng),
      projections_(num_relations * config.rel_dim, config.dim, rng) {}

Variable DenseTransR::distance(std::span<const Triplet> batch) {
  const BatchIndices idx = split_indices(batch);
  Variable h = autograd::gather(entities_.var(), idx.heads);
  Variable t = autograd::gather(entities_.var(), idx.tails);
  Variable r = autograd::gather(relations_.var(), idx.rels);
  // TorchKGE projects head and tail separately: two per-relation GEMMs
  // where the sparse rearrangement needs one.
  Variable ph = autograd::relation_project(projections_.var(), h, idx.rels,
                                           config_.rel_dim);
  Variable pt = autograd::relation_project(projections_.var(), t, idx.rels,
                                           config_.rel_dim);
  Variable phr = autograd::add(ph, r);
  Variable expr = autograd::sub(phr, pt);
  return norm_of(expr, config_.dissimilarity);
}

Variable DenseTransR::loss(std::span<const Triplet> pos,
                           std::span<const Triplet> neg) {
  return ranking_loss(distance(pos), distance(neg), config_);
}

std::vector<float> DenseTransR::score(std::span<const Triplet> batch) const {
  const Matrix& e = entities_.weights();
  const Matrix& r = relations_.weights();
  const Matrix& m = projections_.weights();
  const index_t de = config_.dim;
  const index_t dr = config_.rel_dim;
  std::vector<float> out(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Triplet& t = batch[i];
    const float* h = e.row(t.head);
    const float* tl = e.row(t.tail);
    const float* rv = r.row(t.relation);
    float acc = 0.0f;
    for (index_t p = 0; p < dr; ++p) {
      const float* mrow = m.row(t.relation * dr + p);
      float ph = 0.0f, pt = 0.0f;
      for (index_t q = 0; q < de; ++q) {
        ph += mrow[q] * h[q];
        pt += mrow[q] * tl[q];
      }
      const float v = ph + rv[p] - pt;
      acc += config_.dissimilarity == Dissimilarity::kL2 ? v * v
                                                         : std::fabs(v);
    }
    out[i] =
        config_.dissimilarity == Dissimilarity::kL2 ? std::sqrt(acc) : acc;
  }
  return out;
}

std::vector<autograd::Variable> DenseTransR::params() {
  return {entities_.var(), relations_.var(), projections_.var()};
}

void DenseTransR::post_step() {
  if (config_.normalize_entities) entities_.normalize_rows();
}

// ------------------------------------------------------------ DenseTransH

DenseTransH::DenseTransH(index_t num_entities, index_t num_relations,
                         const ModelConfig& config, Rng& rng)
    : KgeModel(num_entities, num_relations, config),
      entities_(num_entities, config.dim, rng),
      normals_(num_relations, config.dim, rng),
      transfers_(num_relations, config.dim, rng) {
  normals_.normalize_rows();
}

Variable DenseTransH::distance(std::span<const Triplet> batch) {
  const BatchIndices idx = split_indices(batch);
  Variable h = autograd::gather(entities_.var(), idx.heads);
  Variable t = autograd::gather(entities_.var(), idx.tails);
  Variable w = autograd::gather(normals_.var(), idx.rels);
  Variable d = autograd::gather(transfers_.var(), idx.rels);
  // h⊥ and t⊥ computed independently — the larger computational graph the
  // paper notes for dense TransH (§6.2.1).
  Variable wh = autograd::row_dot(w, h);
  Variable h_proj = autograd::sub(h, autograd::scale_rows(wh, w));
  Variable wt = autograd::row_dot(w, t);
  Variable t_proj = autograd::sub(t, autograd::scale_rows(wt, w));
  Variable expr = autograd::sub(autograd::add(h_proj, d), t_proj);
  return norm_of(expr, config_.dissimilarity);
}

Variable DenseTransH::loss(std::span<const Triplet> pos,
                           std::span<const Triplet> neg) {
  return ranking_loss(distance(pos), distance(neg), config_);
}

std::vector<float> DenseTransH::score(std::span<const Triplet> batch) const {
  const Matrix& e = entities_.weights();
  const Matrix& wn = normals_.weights();
  const Matrix& dt = transfers_.weights();
  const index_t d = config_.dim;
  std::vector<float> out(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Triplet& t = batch[i];
    const float* h = e.row(t.head);
    const float* tl = e.row(t.tail);
    const float* w = wn.row(t.relation);
    const float* dr = dt.row(t.relation);
    float wh = 0.0f, wt = 0.0f;
    for (index_t j = 0; j < d; ++j) {
      wh += w[j] * h[j];
      wt += w[j] * tl[j];
    }
    float acc = 0.0f;
    for (index_t j = 0; j < d; ++j) {
      const float v =
          (h[j] - wh * w[j]) + dr[j] - (tl[j] - wt * w[j]);
      acc += config_.dissimilarity == Dissimilarity::kL2 ? v * v
                                                         : std::fabs(v);
    }
    out[i] =
        config_.dissimilarity == Dissimilarity::kL2 ? std::sqrt(acc) : acc;
  }
  return out;
}

std::vector<autograd::Variable> DenseTransH::params() {
  return {entities_.var(), normals_.var(), transfers_.var()};
}

void DenseTransH::post_step() {
  normals_.normalize_rows();
  if (config_.normalize_entities) entities_.normalize_rows();
}

// ------------------------------------------------------------ DenseTransD

DenseTransD::DenseTransD(index_t num_entities, index_t num_relations,
                         const ModelConfig& config, Rng& rng)
    : KgeModel(num_entities, num_relations, config),
      entities_(num_entities, config.dim, rng),
      entity_proj_(num_entities, config.dim, rng),
      relations_(num_relations, config.dim, rng),
      relation_proj_(num_relations, config.dim, rng) {
  entity_proj_.mutable_weights().scale_(0.1f);
  relation_proj_.mutable_weights().scale_(0.1f);
}

Variable DenseTransD::distance(std::span<const Triplet> batch) {
  const BatchIndices idx = split_indices(batch);
  // Six fine-grained gathers (h, t, h_p, t_p, r, r_p)...
  Variable h = autograd::gather(entities_.var(), idx.heads);
  Variable t = autograd::gather(entities_.var(), idx.tails);
  Variable hp = autograd::gather(entity_proj_.var(), idx.heads);
  Variable tp = autograd::gather(entity_proj_.var(), idx.tails);
  Variable r = autograd::gather(relations_.var(), idx.rels);
  Variable rp = autograd::gather(relation_proj_.var(), idx.rels);
  // ...then h⊥ and t⊥ computed independently, as TorchKGE evaluates the
  // dynamic mapping (the sparse rearrangement shares one scaling of r_p).
  Variable h_perp =
      autograd::add(h, autograd::scale_rows(autograd::row_dot(hp, h), rp));
  Variable t_perp =
      autograd::add(t, autograd::scale_rows(autograd::row_dot(tp, t), rp));
  Variable expr = autograd::sub(autograd::add(h_perp, r), t_perp);
  return norm_of(expr, config_.dissimilarity);
}

Variable DenseTransD::loss(std::span<const Triplet> pos,
                           std::span<const Triplet> neg) {
  return ranking_loss(distance(pos), distance(neg), config_);
}

std::vector<float> DenseTransD::score(std::span<const Triplet> batch) const {
  const Matrix& e = entities_.weights();
  const Matrix& ep = entity_proj_.weights();
  const Matrix& r = relations_.weights();
  const Matrix& rp = relation_proj_.weights();
  const index_t d = config_.dim;
  std::vector<float> out(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Triplet& t = batch[i];
    const float* h = e.row(t.head);
    const float* tl = e.row(t.tail);
    const float* hp = ep.row(t.head);
    const float* tp = ep.row(t.tail);
    const float* rv = r.row(t.relation);
    const float* rpv = rp.row(t.relation);
    float hdot = 0.0f, tdot = 0.0f;
    for (index_t j = 0; j < d; ++j) {
      hdot += hp[j] * h[j];
      tdot += tp[j] * tl[j];
    }
    float acc = 0.0f;
    for (index_t j = 0; j < d; ++j) {
      const float v = (h[j] + hdot * rpv[j]) + rv[j] -
                      (tl[j] + tdot * rpv[j]);
      acc += config_.dissimilarity == Dissimilarity::kL2 ? v * v
                                                         : std::fabs(v);
    }
    out[i] =
        config_.dissimilarity == Dissimilarity::kL2 ? std::sqrt(acc) : acc;
  }
  return out;
}

std::vector<autograd::Variable> DenseTransD::params() {
  return {entities_.var(), entity_proj_.var(), relations_.var(),
          relation_proj_.var()};
}

void DenseTransD::post_step() {
  if (config_.normalize_entities) entities_.normalize_rows();
}

// ------------------------------------------------------------ DenseTorusE

DenseTorusE::DenseTorusE(index_t num_entities, index_t num_relations,
                         const ModelConfig& config, Rng& rng)
    : KgeModel(num_entities, num_relations, config),
      entities_(num_entities, config.dim, rng),
      relations_(num_relations, config.dim, rng) {
  auto to_torus = [](Matrix& w) {
    for (index_t i = 0; i < w.size(); ++i)
      w.data()[i] = w.data()[i] - std::floor(w.data()[i]);
  };
  to_torus(entities_.mutable_weights());
  to_torus(relations_.mutable_weights());
}

Variable DenseTorusE::distance(std::span<const Triplet> batch) {
  const BatchIndices idx = split_indices(batch);
  Variable h = autograd::gather(entities_.var(), idx.heads);
  Variable t = autograd::gather(entities_.var(), idx.tails);
  Variable r = autograd::gather(relations_.var(), idx.rels);
  Variable hr = autograd::add(h, r);
  Variable hrt = autograd::sub(hr, t);
  return config_.dissimilarity == Dissimilarity::kL2
             ? autograd::row_squared_l2_torus(hrt)
             : autograd::row_l1_torus(hrt);
}

Variable DenseTorusE::loss(std::span<const Triplet> pos,
                           std::span<const Triplet> neg) {
  return ranking_loss(distance(pos), distance(neg), config_);
}

std::vector<float> DenseTorusE::score(std::span<const Triplet> batch) const {
  const Matrix& e = entities_.weights();
  const Matrix& r = relations_.weights();
  const index_t d = e.cols();
  std::vector<float> out(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Triplet& t = batch[i];
    const float* h = e.row(t.head);
    const float* rv = r.row(t.relation);
    const float* tl = e.row(t.tail);
    float acc = 0.0f;
    for (index_t j = 0; j < d; ++j) {
      const float x = h[j] + rv[j] - tl[j];
      const float f = x - std::floor(x);
      const float m = f < 0.5f ? f : 1.0f - f;
      acc += config_.dissimilarity == Dissimilarity::kL2 ? m * m : m;
    }
    out[i] = acc;
  }
  return out;
}

std::vector<autograd::Variable> DenseTorusE::params() {
  return {entities_.var(), relations_.var()};
}

}  // namespace sptx::baseline
