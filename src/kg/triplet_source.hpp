// Uniform zero-copy view over a training-triplet container.
//
// The sharded trainer (distributed/ddp) and the batch-plan compiler consume
// triplets exclusively through contiguous slices, which both the in-memory
// TripletStore and the mmap-backed StreamingTripletStore (§4.7.2) provide.
// TripletSource erases the difference behind one non-owning handle: slicing
// an in-memory store returns a span over its vector, slicing a streaming
// store returns a span over the mapping — in neither case is anything
// copied, so an epoch over a multi-billion-triplet file touches only the
// pages the current batch needs. The view must not outlive the store it
// wraps.
#pragma once

#include "src/kg/streaming_store.hpp"
#include "src/kg/triplet.hpp"

namespace sptx::kg {

class TripletSource {
 public:
  TripletSource() = default;
  /*implicit*/ TripletSource(const TripletStore& store) : mem_(&store) {}
  /*implicit*/ TripletSource(const StreamingTripletStore& store)
      : stream_(&store) {}

  bool valid() const { return mem_ != nullptr || stream_ != nullptr; }
  bool streaming() const { return stream_ != nullptr; }

  std::int64_t size() const {
    return mem_ != nullptr ? mem_->size() : stream_->size();
  }
  bool empty() const { return size() == 0; }
  std::int64_t num_entities() const {
    return mem_ != nullptr ? mem_->num_entities() : stream_->num_entities();
  }
  std::int64_t num_relations() const {
    return mem_ != nullptr ? mem_->num_relations() : stream_->num_relations();
  }

  /// Zero-copy contiguous view [begin, begin+count). Valid while the
  /// underlying store lives.
  std::span<const Triplet> slice(std::int64_t begin, std::int64_t count) const {
    return mem_ != nullptr ? mem_->slice(begin, count)
                           : stream_->slice(begin, count);
  }

  const Triplet& operator[](std::int64_t i) const {
    return mem_ != nullptr ? (*mem_)[i] : stream_->slice(i, 1)[0];
  }

 private:
  const TripletStore* mem_ = nullptr;
  const StreamingTripletStore* stream_ = nullptr;
};

}  // namespace sptx::kg
