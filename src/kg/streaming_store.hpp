// Disk-backed triplet streaming — §4.7.2's "streaming dataset module for
// datasets that are too large to fit in memory".
//
// StreamingTripletStore memory-maps a flat binary file of (h, r, t) int64
// records; batches are read as zero-copy spans over the mapping, so a
// training epoch over a multi-billion-triplet file touches only the pages
// the current batch needs. `write_file` converts an in-memory TripletStore
// (or any triplet range) to the on-disk format; the header carries the
// vocabulary sizes so a store opens self-describing.
#pragma once

#include <string>

#include "src/kg/triplet.hpp"

namespace sptx::kg {

class StreamingTripletStore {
 public:
  /// Serialise triplets (with vocab sizes) into the streaming format.
  static void write_file(const std::string& path,
                         std::span<const Triplet> triplets,
                         std::int64_t num_entities,
                         std::int64_t num_relations);

  /// Map an existing file read-only.
  static StreamingTripletStore open(const std::string& path);

  ~StreamingTripletStore();
  StreamingTripletStore(StreamingTripletStore&&) noexcept;
  /// Unmaps/closes the overwritten mapping, then adopts `o`'s — required so
  /// stores can live in resizable containers (per-worker shard views).
  StreamingTripletStore& operator=(StreamingTripletStore&&) noexcept;
  StreamingTripletStore(const StreamingTripletStore&) = delete;
  StreamingTripletStore& operator=(const StreamingTripletStore&) = delete;

  std::int64_t size() const { return count_; }
  std::int64_t num_entities() const { return num_entities_; }
  std::int64_t num_relations() const { return num_relations_; }

  /// Zero-copy batch view over the mapping. Valid while the store lives.
  std::span<const Triplet> slice(std::int64_t begin, std::int64_t count) const;

  /// Copy everything into RAM (small files / tests).
  TripletStore to_memory() const;

 private:
  StreamingTripletStore(int fd, const Triplet* data, std::int64_t count,
                        std::int64_t num_entities, std::int64_t num_relations,
                        std::size_t mapped_bytes);

  /// munmap + close this store's resources (idempotent).
  void release() noexcept;

  int fd_ = -1;
  const Triplet* data_ = nullptr;
  std::int64_t count_ = 0;
  std::int64_t num_entities_ = 0;
  std::int64_t num_relations_ = 0;
  std::size_t mapped_bytes_ = 0;
};

}  // namespace sptx::kg
