#include "src/kg/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"

namespace sptx::kg {

const std::vector<DatasetProfile>& paper_profiles() {
  static const std::vector<DatasetProfile> profiles = {
      // Table 3 of the paper.
      {"FB15K", 14951, 1345, 483142},
      {"FB15K237", 14541, 237, 272115},
      {"WN18", 40943, 18, 141442},
      {"WN18RR", 40943, 11, 86835},
      {"FB13", 67399, 15342, 316232},
      {"YAGO3-10", 123182, 37, 1079040},
      {"BIOKG", 93773, 51, 4762678},
      // Table 9 (Appendix F) scaling dataset.
      {"COVID19", 60820, 62, 1032939},
  };
  return profiles;
}

DatasetProfile profile_by_name(const std::string& name) {
  for (const auto& p : paper_profiles()) {
    if (p.name == name) return p;
  }
  throw Error("unknown dataset profile: " + name);
}

DatasetProfile scaled(DatasetProfile p, double scale) {
  SPTX_CHECK(scale > 0.0 && scale <= 1.0, "scale must be in (0,1]");
  auto apply = [scale](std::int64_t v, std::int64_t floor_at) {
    return std::max(floor_at,
                    static_cast<std::int64_t>(std::llround(v * scale)));
  };
  p.entities = apply(p.entities, 64);
  p.relations = apply(p.relations, 4);
  p.triplets = apply(p.triplets, 256);
  return p;
}

Dataset generate(const DatasetProfile& profile, Rng& rng, double valid_frac,
                 double test_frac, std::int64_t clusters) {
  const std::int64_t n = profile.entities;
  const std::int64_t r = profile.relations;
  const std::int64_t m = profile.triplets;
  SPTX_CHECK(n >= 2 && r >= 1 && m >= 1, "degenerate profile");
  const std::int64_t c = std::min(clusters, n);

  // Planted translation structure: each relation is a cyclic shift of the
  // entity index space, tail = (head + shift_r) mod N — exactly the
  // geometry translation models embed (h + r ≈ t), so link prediction on
  // the generated graph is learnable and Hits@10 responds to training the
  // way Figure 5 shows. The number of distinct shifts is capped at
  // `clusters` (structure complexity knob); 5% of edges are uniform noise.
  // Head sampling is Zipf-skewed so a few entities become hubs, giving the
  // heavy-tailed degree distribution (and gather-baseline cache behaviour)
  // of real KGs.
  std::vector<std::int64_t> shift(static_cast<std::size_t>(r));
  for (std::size_t i = 0; i < shift.size(); ++i) {
    const std::uint64_t buckets = static_cast<std::uint64_t>(c);
    // Spread the c distinct shifts across [1, n): bucket k maps to shift
    // 1 + k·(n−1)/c so different relations translate differently.
    const std::uint64_t bucket = rng.next_below(buckets);
    shift[i] = 1 + static_cast<std::int64_t>(bucket) * (n - 1) /
                       static_cast<std::int64_t>(c);
  }

  auto sample_head = [&]() {
    // Skewed pick: squaring a uniform pushes mass toward low indices.
    const float u = rng.next_float();
    return std::min(static_cast<std::int64_t>(u * u * n), n - 1);
  };

  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<std::size_t>(m));
  for (std::int64_t i = 0; i < m; ++i) {
    Triplet t;
    t.relation = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(r)));
    t.head = sample_head();
    if (rng.next_float() < 0.05f) {
      t.tail = static_cast<std::int64_t>(
          rng.next_below(static_cast<std::uint64_t>(n)));
    } else {
      t.tail = (t.head + shift[static_cast<std::size_t>(t.relation)]) % n;
    }
    triplets.push_back(t);
  }

  Dataset all;
  all.name = profile.name;
  all.train = TripletStore(n, r, std::move(triplets));
  all.valid = TripletStore(n, r, {});
  all.test = TripletStore(n, r, {});
  return split(std::move(all), valid_frac, test_frac, rng);
}

}  // namespace sptx::kg
