// Knowledge-graph dataset handling.
//
// Covers §4.7.2's dataloader roles:
//  * load_tsv/load_csv — parse (head, relation, tail) text files, building
//    the entity/relation string↔index vocabulary on the fly.
//  * save_index / Dataset::save / Dataset::load — a compact on-disk binary
//    representation of the indexed KG (the role SQLite plays in the Python
//    framework: persist the entity-index mapping plus triplets so repeated
//    runs skip re-indexing).
//  * train/valid/test splitting for link-prediction evaluation.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/rng.hpp"
#include "src/kg/triplet.hpp"

namespace sptx::kg {

/// A fully indexed dataset: triplet splits plus the vocabulary.
struct Dataset {
  std::string name;
  TripletStore train;
  TripletStore valid;
  TripletStore test;
  std::vector<std::string> entity_names;    // may be empty for synthetic
  std::vector<std::string> relation_names;  // may be empty for synthetic

  std::int64_t num_entities() const { return train.num_entities(); }
  std::int64_t num_relations() const { return train.num_relations(); }

  /// Persist to / restore from a compact binary file.
  void save(const std::string& path) const;
  static Dataset load_binary(const std::string& path);
};

/// Parse a delimiter-separated triplet file (one `head<d>relation<d>tail`
/// per line, '#'-prefixed comment lines skipped). Strings are interned into
/// a fresh vocabulary; all triplets land in `train`.
Dataset load_triplet_file(const std::string& path, char delim,
                          const std::string& name);
inline Dataset load_tsv(const std::string& path,
                        const std::string& name = "tsv") {
  return load_triplet_file(path, '\t', name);
}
inline Dataset load_csv(const std::string& path,
                        const std::string& name = "csv") {
  return load_triplet_file(path, ',', name);
}

/// Shuffle `all` and split into train/valid/test by fraction (in place over
/// a copy; vocabulary is shared).
Dataset split(Dataset all, double valid_frac, double test_frac, Rng& rng);

/// Write a dataset's training triplets back to TSV (round-trip tests,
/// interop with the Python framework's file formats).
void write_tsv(const Dataset& ds, const std::string& path);

}  // namespace sptx::kg
