// Triplet and triplet-store types.
//
// A knowledge graph edge (h, r, t): head and tail are entity indices,
// relation a relation index. TripletStore owns the training split plus the
// entity/relation counts every downstream component (incidence builders,
// samplers, evaluators) needs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/error.hpp"

namespace sptx {

struct Triplet {
  std::int64_t head = 0;
  std::int64_t relation = 0;
  std::int64_t tail = 0;

  friend bool operator==(const Triplet&, const Triplet&) = default;
};

/// Hash functor over the full (h, r, t) so hashed containers stay exact at
/// any id scale — membership is decided by operator== on the triplet itself,
/// never by a packed key that could collide (the filtered sampler's old
/// 21-bit packing silently corrupted beyond 2^21 entities).
struct TripletHash {
  std::size_t operator()(const Triplet& t) const {
    // splitmix64 finalizer per field, chained.
    const auto mix = [](std::uint64_t x) {
      x ^= x >> 30;
      x *= 0xBF58476D1CE4E5B9ULL;
      x ^= x >> 27;
      x *= 0x94D049BB133111EBULL;
      x ^= x >> 31;
      return x;
    };
    std::uint64_t h =
        mix(static_cast<std::uint64_t>(t.head) + 0x9E3779B97F4A7C15ULL);
    h = mix(h ^ static_cast<std::uint64_t>(t.relation));
    h = mix(h ^ static_cast<std::uint64_t>(t.tail));
    return static_cast<std::size_t>(h);
  }
};

/// Owning container for a dataset split with its vocabulary sizes.
class TripletStore {
 public:
  TripletStore() = default;
  TripletStore(std::int64_t num_entities, std::int64_t num_relations,
               std::vector<Triplet> triplets)
      : num_entities_(num_entities),
        num_relations_(num_relations),
        triplets_(std::move(triplets)) {
    validate();
  }

  std::int64_t num_entities() const { return num_entities_; }
  std::int64_t num_relations() const { return num_relations_; }
  std::int64_t size() const {
    return static_cast<std::int64_t>(triplets_.size());
  }
  bool empty() const { return triplets_.empty(); }

  std::span<const Triplet> triplets() const { return triplets_; }
  const Triplet& operator[](std::int64_t i) const {
    return triplets_[static_cast<std::size_t>(i)];
  }

  void add(Triplet t) {
    triplets_.push_back(t);
    SPTX_CHECK(t.head < num_entities_ && t.tail < num_entities_ &&
                   t.relation < num_relations_ && t.head >= 0 && t.tail >= 0 &&
                   t.relation >= 0,
               "triplet out of range");
  }

  /// Contiguous sub-span [begin, begin+count) for minibatching.
  std::span<const Triplet> slice(std::int64_t begin, std::int64_t count) const {
    SPTX_CHECK(begin >= 0 && begin + count <= size(), "slice out of range");
    return std::span<const Triplet>(triplets_).subspan(
        static_cast<std::size_t>(begin), static_cast<std::size_t>(count));
  }

 private:
  void validate() const {
    for (const Triplet& t : triplets_) {
      SPTX_CHECK(t.head >= 0 && t.head < num_entities_ && t.tail >= 0 &&
                     t.tail < num_entities_ && t.relation >= 0 &&
                     t.relation < num_relations_,
                 "triplet out of range: h=" << t.head << " r=" << t.relation
                                            << " t=" << t.tail);
    }
  }

  std::int64_t num_entities_ = 0;
  std::int64_t num_relations_ = 0;
  std::vector<Triplet> triplets_;
};

}  // namespace sptx
