// Triplet and triplet-store types.
//
// A knowledge graph edge (h, r, t): head and tail are entity indices,
// relation a relation index. TripletStore owns the training split plus the
// entity/relation counts every downstream component (incidence builders,
// samplers, evaluators) needs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/error.hpp"

namespace sptx {

struct Triplet {
  std::int64_t head = 0;
  std::int64_t relation = 0;
  std::int64_t tail = 0;

  friend bool operator==(const Triplet&, const Triplet&) = default;
};

/// Owning container for a dataset split with its vocabulary sizes.
class TripletStore {
 public:
  TripletStore() = default;
  TripletStore(std::int64_t num_entities, std::int64_t num_relations,
               std::vector<Triplet> triplets)
      : num_entities_(num_entities),
        num_relations_(num_relations),
        triplets_(std::move(triplets)) {
    validate();
  }

  std::int64_t num_entities() const { return num_entities_; }
  std::int64_t num_relations() const { return num_relations_; }
  std::int64_t size() const {
    return static_cast<std::int64_t>(triplets_.size());
  }
  bool empty() const { return triplets_.empty(); }

  std::span<const Triplet> triplets() const { return triplets_; }
  const Triplet& operator[](std::int64_t i) const {
    return triplets_[static_cast<std::size_t>(i)];
  }

  void add(Triplet t) {
    triplets_.push_back(t);
    SPTX_CHECK(t.head < num_entities_ && t.tail < num_entities_ &&
                   t.relation < num_relations_ && t.head >= 0 && t.tail >= 0 &&
                   t.relation >= 0,
               "triplet out of range");
  }

  /// Contiguous sub-span [begin, begin+count) for minibatching.
  std::span<const Triplet> slice(std::int64_t begin, std::int64_t count) const {
    SPTX_CHECK(begin >= 0 && begin + count <= size(), "slice out of range");
    return std::span<const Triplet>(triplets_).subspan(
        static_cast<std::size_t>(begin), static_cast<std::size_t>(count));
  }

 private:
  void validate() const {
    for (const Triplet& t : triplets_) {
      SPTX_CHECK(t.head >= 0 && t.head < num_entities_ && t.tail >= 0 &&
                     t.tail < num_entities_ && t.relation >= 0 &&
                     t.relation < num_relations_,
                 "triplet out of range: h=" << t.head << " r=" << t.relation
                                            << " t=" << t.tail);
    }
  }

  std::int64_t num_entities_ = 0;
  std::int64_t num_relations_ = 0;
  std::vector<Triplet> triplets_;
};

}  // namespace sptx
