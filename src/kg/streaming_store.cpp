#include "src/kg/streaming_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <fstream>

#include "src/common/error.hpp"

namespace sptx::kg {

namespace {

struct FileHeader {
  std::uint64_t magic = 0x53505458'53545231ULL;  // "SPTXSTR1"
  std::int64_t count = 0;
  std::int64_t num_entities = 0;
  std::int64_t num_relations = 0;
};

static_assert(sizeof(Triplet) == 24, "streaming format assumes packed h,r,t");

}  // namespace

void StreamingTripletStore::write_file(const std::string& path,
                                       std::span<const Triplet> triplets,
                                       std::int64_t num_entities,
                                       std::int64_t num_relations) {
  std::ofstream os(path, std::ios::binary);
  SPTX_CHECK(os.good(), "cannot create " << path);
  FileHeader header;
  header.count = static_cast<std::int64_t>(triplets.size());
  header.num_entities = num_entities;
  header.num_relations = num_relations;
  os.write(reinterpret_cast<const char*>(&header), sizeof(header));
  os.write(reinterpret_cast<const char*>(triplets.data()),
           static_cast<std::streamsize>(triplets.size_bytes()));
  SPTX_CHECK(os.good(), "write to " << path << " failed");
}

StreamingTripletStore StreamingTripletStore::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  SPTX_CHECK(fd >= 0, "cannot open " << path);
  struct stat st {};
  SPTX_CHECK(::fstat(fd, &st) == 0, "fstat failed for " << path);
  SPTX_CHECK(static_cast<std::size_t>(st.st_size) >= sizeof(FileHeader),
             path << " too small for a streaming store");
  void* mem = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                     PROT_READ, MAP_PRIVATE, fd, 0);
  SPTX_CHECK(mem != MAP_FAILED, "mmap failed for " << path);
  const auto* header = static_cast<const FileHeader*>(mem);
  FileHeader expected;
  if (header->magic != expected.magic) {
    ::munmap(mem, static_cast<std::size_t>(st.st_size));
    ::close(fd);
    throw Error(path + " is not an sptx streaming triplet file");
  }
  const std::size_t payload =
      static_cast<std::size_t>(st.st_size) - sizeof(FileHeader);
  SPTX_CHECK(payload >=
                 static_cast<std::size_t>(header->count) * sizeof(Triplet),
             path << " truncated: header claims " << header->count
                  << " triplets");
  const auto* data = reinterpret_cast<const Triplet*>(
      static_cast<const char*>(mem) + sizeof(FileHeader));
  return StreamingTripletStore(fd, data, header->count, header->num_entities,
                               header->num_relations,
                               static_cast<std::size_t>(st.st_size));
}

StreamingTripletStore::StreamingTripletStore(int fd, const Triplet* data,
                                             std::int64_t count,
                                             std::int64_t num_entities,
                                             std::int64_t num_relations,
                                             std::size_t mapped_bytes)
    : fd_(fd),
      data_(data),
      count_(count),
      num_entities_(num_entities),
      num_relations_(num_relations),
      mapped_bytes_(mapped_bytes) {}

StreamingTripletStore::StreamingTripletStore(
    StreamingTripletStore&& o) noexcept
    : fd_(o.fd_),
      data_(o.data_),
      count_(o.count_),
      num_entities_(o.num_entities_),
      num_relations_(o.num_relations_),
      mapped_bytes_(o.mapped_bytes_) {
  o.fd_ = -1;
  o.data_ = nullptr;
  o.count_ = 0;
  o.mapped_bytes_ = 0;
}

StreamingTripletStore& StreamingTripletStore::operator=(
    StreamingTripletStore&& o) noexcept {
  if (this != &o) {
    release();  // the overwritten mapping must not leak its pages or fd
    fd_ = o.fd_;
    data_ = o.data_;
    count_ = o.count_;
    num_entities_ = o.num_entities_;
    num_relations_ = o.num_relations_;
    mapped_bytes_ = o.mapped_bytes_;
    o.fd_ = -1;
    o.data_ = nullptr;
    o.count_ = 0;
    o.mapped_bytes_ = 0;
  }
  return *this;
}

void StreamingTripletStore::release() noexcept {
  if (data_ != nullptr) {
    ::munmap(const_cast<void*>(static_cast<const void*>(
                 reinterpret_cast<const char*>(data_) - sizeof(FileHeader))),
             mapped_bytes_);
    data_ = nullptr;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StreamingTripletStore::~StreamingTripletStore() { release(); }

std::span<const Triplet> StreamingTripletStore::slice(
    std::int64_t begin, std::int64_t count) const {
  SPTX_CHECK(begin >= 0 && count >= 0 && begin + count <= count_,
             "streaming slice out of range");
  return {data_ + begin, static_cast<std::size_t>(count)};
}

TripletStore StreamingTripletStore::to_memory() const {
  return TripletStore(num_entities_, num_relations_,
                      std::vector<Triplet>(data_, data_ + count_));
}

}  // namespace sptx::kg
