#include "src/kg/streaming_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>

#include "src/common/error.hpp"
#include "src/common/fault.hpp"

namespace sptx::kg {

namespace {

struct FileHeader {
  std::uint64_t magic = 0x53505458'53545231ULL;  // "SPTXSTR1"
  std::int64_t count = 0;
  std::int64_t num_entities = 0;
  std::int64_t num_relations = 0;
};

static_assert(sizeof(Triplet) == 24, "streaming format assumes packed h,r,t");

/// open(2) with EINTR retry — signal-heavy hosts (profilers, timers,
/// checkpoint alarms) interrupt slow opens on networked filesystems.
int open_retry(const char* path, int flags) {
  int fd = -1;
  do {
    fd = ::open(path, flags);
  } while (fd < 0 && errno == EINTR);
  return fd;
}

/// Scoped unmap+close so every validation failure path below releases the
/// mapping — a rejected file must not leak pages or descriptors.
struct MapGuard {
  void* mem = MAP_FAILED;
  std::size_t bytes = 0;
  int fd = -1;
  ~MapGuard() {
    if (mem != MAP_FAILED) ::munmap(mem, bytes);
    if (fd >= 0) ::close(fd);
  }
  void disarm() {
    mem = MAP_FAILED;
    fd = -1;
  }
};

}  // namespace

void StreamingTripletStore::write_file(const std::string& path,
                                       std::span<const Triplet> triplets,
                                       std::int64_t num_entities,
                                       std::int64_t num_relations) {
  std::ofstream os(path, std::ios::binary);
  SPTX_CHECK_CODE(os.good(), ErrorCode::kIo, "cannot create " << path);
  FileHeader header;
  header.count = static_cast<std::int64_t>(triplets.size());
  header.num_entities = num_entities;
  header.num_relations = num_relations;
  os.write(reinterpret_cast<const char*>(&header), sizeof(header));
  os.write(reinterpret_cast<const char*>(triplets.data()),
           static_cast<std::streamsize>(triplets.size_bytes()));
  SPTX_CHECK_CODE(os.good(), ErrorCode::kIo, "write to " << path << " failed");
}

StreamingTripletStore StreamingTripletStore::open(const std::string& path) {
  fault::init_from_config();
  fault::maybe_fail("mmap_read");
  MapGuard guard;
  guard.fd = open_retry(path.c_str(), O_RDONLY);
  SPTX_CHECK_CODE(guard.fd >= 0, ErrorCode::kIo, "cannot open " << path);
  struct stat st {};
  SPTX_CHECK_CODE(::fstat(guard.fd, &st) == 0, ErrorCode::kIo,
                  "fstat failed for " << path);
  // Structural validation BEFORE touching any mapped byte: a zero-length,
  // header-less, or ragged file is rejected with a typed error instead of
  // reading past the mapping (SIGBUS territory).
  SPTX_CHECK_CODE(st.st_size > 0, ErrorCode::kDataFormat,
                  path << " is empty — not a streaming triplet file");
  SPTX_CHECK_CODE(static_cast<std::size_t>(st.st_size) >= sizeof(FileHeader),
                  ErrorCode::kDataFormat,
                  path << " too small for a streaming store ("
                       << st.st_size << " bytes)");
  guard.bytes = static_cast<std::size_t>(st.st_size);
  guard.mem =
      ::mmap(nullptr, guard.bytes, PROT_READ, MAP_PRIVATE, guard.fd, 0);
  SPTX_CHECK_CODE(guard.mem != MAP_FAILED, ErrorCode::kIo,
                  "mmap failed for " << path);
  // Epochs sweep the file front to back; tell the kernel so readahead
  // stays aggressive even under memory pressure. Advisory only.
  (void)::madvise(guard.mem, guard.bytes, MADV_SEQUENTIAL);
  const auto* header = static_cast<const FileHeader*>(guard.mem);
  FileHeader expected;
  SPTX_CHECK_CODE(header->magic == expected.magic, ErrorCode::kDataFormat,
                  path << " is not an sptx streaming triplet file");
  SPTX_CHECK_CODE(header->count >= 0 && header->num_entities >= 0 &&
                      header->num_relations >= 0,
                  ErrorCode::kDataFormat,
                  path << " header is corrupt (negative counts)");
  const std::size_t payload = guard.bytes - sizeof(FileHeader);
  const std::size_t expected_payload =
      static_cast<std::size_t>(header->count) * sizeof(Triplet);
  SPTX_CHECK_CODE(payload >= expected_payload, ErrorCode::kDataFormat,
                  path << " truncated: header claims " << header->count
                       << " triplets (" << expected_payload
                       << " bytes) but the payload is " << payload);
  SPTX_CHECK_CODE(payload == expected_payload, ErrorCode::kDataFormat,
                  path << " is ragged: " << (payload - expected_payload)
                       << " trailing bytes beyond " << header->count
                       << " whole records");
  const auto* data = reinterpret_cast<const Triplet*>(
      static_cast<const char*>(guard.mem) + sizeof(FileHeader));
  StreamingTripletStore store(guard.fd, data, header->count,
                              header->num_entities, header->num_relations,
                              guard.bytes);
  guard.disarm();  // ownership transferred to the store
  return store;
}

StreamingTripletStore::StreamingTripletStore(int fd, const Triplet* data,
                                             std::int64_t count,
                                             std::int64_t num_entities,
                                             std::int64_t num_relations,
                                             std::size_t mapped_bytes)
    : fd_(fd),
      data_(data),
      count_(count),
      num_entities_(num_entities),
      num_relations_(num_relations),
      mapped_bytes_(mapped_bytes) {}

StreamingTripletStore::StreamingTripletStore(
    StreamingTripletStore&& o) noexcept
    : fd_(o.fd_),
      data_(o.data_),
      count_(o.count_),
      num_entities_(o.num_entities_),
      num_relations_(o.num_relations_),
      mapped_bytes_(o.mapped_bytes_) {
  o.fd_ = -1;
  o.data_ = nullptr;
  o.count_ = 0;
  o.mapped_bytes_ = 0;
}

StreamingTripletStore& StreamingTripletStore::operator=(
    StreamingTripletStore&& o) noexcept {
  if (this != &o) {
    release();  // the overwritten mapping must not leak its pages or fd
    fd_ = o.fd_;
    data_ = o.data_;
    count_ = o.count_;
    num_entities_ = o.num_entities_;
    num_relations_ = o.num_relations_;
    mapped_bytes_ = o.mapped_bytes_;
    o.fd_ = -1;
    o.data_ = nullptr;
    o.count_ = 0;
    o.mapped_bytes_ = 0;
  }
  return *this;
}

void StreamingTripletStore::release() noexcept {
  if (data_ != nullptr) {
    ::munmap(const_cast<void*>(static_cast<const void*>(
                 reinterpret_cast<const char*>(data_) - sizeof(FileHeader))),
             mapped_bytes_);
    data_ = nullptr;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StreamingTripletStore::~StreamingTripletStore() { release(); }

std::span<const Triplet> StreamingTripletStore::slice(
    std::int64_t begin, std::int64_t count) const {
  SPTX_CHECK(begin >= 0 && count >= 0 && begin + count <= count_,
             "streaming slice out of range");
  // Injected read faults (mmap_read:eio@P) model media errors surfacing as
  // SIGBUS-grade failures on page touch; one relaxed load when inactive.
  fault::maybe_fail("mmap_read");
  return {data_ + begin, static_cast<std::size_t>(count)};
}

TripletStore StreamingTripletStore::to_memory() const {
  return TripletStore(num_entities_, num_relations_,
                      std::vector<Triplet>(data_, data_ + count_));
}

}  // namespace sptx::kg
