#include "src/kg/negative_sampler.hpp"

#include <map>

#include "src/common/error.hpp"

namespace sptx::kg {

NegativeSampler::NegativeSampler(std::int64_t num_entities,
                                 std::int64_t num_relations,
                                 CorruptionScheme scheme)
    : num_entities_(num_entities),
      scheme_(scheme),
      filtered_(false),
      num_relations_(num_relations) {
  SPTX_CHECK(num_entities_ >= 2, "need at least two entities to corrupt");
  SPTX_CHECK(scheme_ == CorruptionScheme::kUniform,
             "store-free sampler supports only unfiltered uniform corruption "
             "(Bernoulli statistics need the positives)");
}

NegativeSampler::NegativeSampler(const TripletStore& positives,
                                 CorruptionScheme scheme, bool filtered)
    : num_entities_(positives.num_entities()),
      scheme_(scheme),
      filtered_(filtered),
      num_relations_(positives.num_relations()) {
  SPTX_CHECK(num_entities_ >= 2, "need at least two entities to corrupt");
  if (filtered_) {
    positive_keys_.reserve(static_cast<std::size_t>(positives.size()) * 2);
    for (const Triplet& t : positives.triplets()) {
      SPTX_CHECK(t.head >= 0 && t.relation >= 0 && t.tail >= 0,
                 "filtered sampler requires non-negative ids, got h="
                     << t.head << " r=" << t.relation << " t=" << t.tail);
      positive_keys_.insert(t);
    }
  }
  if (scheme_ == CorruptionScheme::kBernoulli) {
    // tph: average tails per (head, relation); hpt: heads per (tail,
    // relation). P(corrupt head) = tph / (tph + hpt), per the TransH paper.
    std::map<std::pair<std::int64_t, std::int64_t>, std::int64_t> hr_count;
    std::map<std::pair<std::int64_t, std::int64_t>, std::int64_t> tr_count;
    for (const Triplet& t : positives.triplets()) {
      hr_count[{t.head, t.relation}]++;
      tr_count[{t.tail, t.relation}]++;
    }
    std::vector<double> tph_sum(static_cast<std::size_t>(num_relations_));
    std::vector<double> tph_cnt(static_cast<std::size_t>(num_relations_));
    std::vector<double> hpt_sum(static_cast<std::size_t>(num_relations_));
    std::vector<double> hpt_cnt(static_cast<std::size_t>(num_relations_));
    for (const auto& [hr, cnt] : hr_count) {
      tph_sum[static_cast<std::size_t>(hr.second)] += cnt;
      tph_cnt[static_cast<std::size_t>(hr.second)] += 1;
    }
    for (const auto& [tr, cnt] : tr_count) {
      hpt_sum[static_cast<std::size_t>(tr.second)] += cnt;
      hpt_cnt[static_cast<std::size_t>(tr.second)] += 1;
    }
    bernoulli_head_prob_.resize(static_cast<std::size_t>(num_relations_),
                                0.5f);
    for (std::int64_t r = 0; r < num_relations_; ++r) {
      const auto ri = static_cast<std::size_t>(r);
      const double tph = tph_cnt[ri] > 0 ? tph_sum[ri] / tph_cnt[ri] : 1.0;
      const double hpt = hpt_cnt[ri] > 0 ? hpt_sum[ri] / hpt_cnt[ri] : 1.0;
      bernoulli_head_prob_[ri] = static_cast<float>(tph / (tph + hpt));
    }
  }
}

bool NegativeSampler::is_positive(const Triplet& t) const {
  return positive_keys_.count(t) > 0;
}

float NegativeSampler::head_corruption_prob(std::int64_t relation) const {
  if (scheme_ == CorruptionScheme::kUniform) return 0.5f;
  return bernoulli_head_prob_[static_cast<std::size_t>(relation)];
}

Triplet NegativeSampler::corrupt(const Triplet& positive, Rng& rng) const {
  constexpr int kMaxRetries = 16;
  Triplet neg = positive;
  for (int attempt = 0; attempt < kMaxRetries; ++attempt) {
    neg = positive;
    const bool corrupt_head =
        rng.next_float() < head_corruption_prob(positive.relation);
    const auto e = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(num_entities_)));
    if (corrupt_head) {
      neg.head = e;
    } else {
      neg.tail = e;
    }
    if (neg == positive) continue;           // no-op corruption, retry
    if (filtered_ && is_positive(neg)) continue;  // false negative, retry
    return neg;
  }
  return neg;
}

std::vector<Triplet> NegativeSampler::pregenerate(
    std::span<const Triplet> positives, Rng& rng) const {
  std::vector<Triplet> negatives;
  negatives.reserve(positives.size());
  for (const Triplet& p : positives) negatives.push_back(corrupt(p, rng));
  return negatives;
}

std::vector<Triplet> NegativeSampler::pregenerate_k(
    std::span<const Triplet> positives, int k, Rng& rng) const {
  SPTX_CHECK(k >= 1, "need at least one negative per positive");
  std::vector<Triplet> negatives;
  negatives.reserve(positives.size() * static_cast<std::size_t>(k));
  for (int rep = 0; rep < k; ++rep) {
    for (const Triplet& p : positives) negatives.push_back(corrupt(p, rng));
  }
  return negatives;
}

}  // namespace sptx::kg
