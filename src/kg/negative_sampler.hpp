// Negative sampling.
//
// §5.3: "negative samples are generated once per positive sample and are
// pre-generated outside the training loop" — pregenerate() implements that
// protocol. Two corruption strategies:
//  * Uniform — corrupt head or tail with a uniformly random entity (the
//    TransE original).
//  * Bernoulli — corrupt head with probability tph/(tph+hpt) per relation
//    (the TransH paper's sampler, reduces false negatives for 1-to-N /
//    N-to-1 relations).
// An optional filter rejects corruptions that collide with known positives.
#pragma once

#include <unordered_set>
#include <vector>

#include "src/common/rng.hpp"
#include "src/kg/triplet.hpp"

namespace sptx::kg {

enum class CorruptionScheme { kUniform, kBernoulli };

class NegativeSampler {
 public:
  /// `filtered` rejects sampled negatives present in `positives`
  /// (bounded retries; falls back to the last candidate).
  NegativeSampler(const TripletStore& positives, CorruptionScheme scheme,
                  bool filtered = false);

  /// Store-free sampler for streaming sources whose triplets never live in
  /// RAM: only the vocabulary sizes are needed. Bernoulli statistics and
  /// positive-filtering both require scanning the positives, so this
  /// constructor supports only the unfiltered kUniform scheme.
  NegativeSampler(std::int64_t num_entities, std::int64_t num_relations,
                  CorruptionScheme scheme);

  /// One corrupted counterpart for `positive`.
  Triplet corrupt(const Triplet& positive, Rng& rng) const;

  /// Exact membership test against the positive set (filtered mode only;
  /// always false otherwise). Keyed by the full triplet, so it is correct
  /// for entity/relation ids of any magnitude.
  bool is_positive(const Triplet& t) const;

  /// One negative per positive, aligned by index — the paper's
  /// pre-generation protocol.
  std::vector<Triplet> pregenerate(std::span<const Triplet> positives,
                                   Rng& rng) const;

  /// k negatives per positive, laid out repetition-major: entry
  /// rep·|positives| + i corrupts positives[i]. Pairs with a positive batch
  /// tiled k times (DGL-KE-style negative_sample_size > 1).
  std::vector<Triplet> pregenerate_k(std::span<const Triplet> positives,
                                     int k, Rng& rng) const;

 private:
  float head_corruption_prob(std::int64_t relation) const;

  std::int64_t num_entities_;
  CorruptionScheme scheme_;
  bool filtered_;
  std::vector<float> bernoulli_head_prob_;  // per relation
  /// Full triplets, not packed keys: equality is exact at any id scale.
  std::unordered_set<Triplet, TripletHash> positive_keys_;
  std::int64_t num_relations_;
};

}  // namespace sptx::kg
