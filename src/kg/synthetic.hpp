// Synthetic knowledge-graph generation.
//
// The paper evaluates on seven public datasets (Table 3) plus COVID-19
// (Table 9). Those files are not available offline, so we generate graphs
// with the same (entities, relations, triplets) statistics and a planted
// relational structure that makes link prediction learnable:
//
//   * entities are partitioned into C latent clusters;
//   * each relation r maps cluster c → cluster (c + shift_r) mod C;
//   * a triplet samples h from a Zipf-skewed entity distribution within a
//     cluster and t from the mapped cluster.
//
// Timing/memory results depend only on (M, N, R, d, batch) — Appendix C
// shows complexity is independent of graph structure — so the synthetic
// profiles reproduce the performance experiments faithfully, while the
// planted structure gives Hits@10 curves the right qualitative shape for
// the accuracy experiments (Fig 5, Tab 8).
#pragma once

#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/kg/dataset.hpp"

namespace sptx::kg {

/// Size statistics of one dataset (Table 3 row).
struct DatasetProfile {
  std::string name;
  std::int64_t entities = 0;
  std::int64_t relations = 0;
  std::int64_t triplets = 0;  // training triplets
};

/// The seven Table 3 datasets plus COVID-19 (Table 9), at paper scale.
const std::vector<DatasetProfile>& paper_profiles();

/// Look up a profile by name (FB15K, FB15K237, WN18, WN18RR, FB13,
/// YAGO3-10, BIOKG, COVID19). Throws on unknown name.
DatasetProfile profile_by_name(const std::string& name);

/// Scale a profile's sizes by `scale` ∈ (0, 1] (floors at small minimums so
/// tiny scales stay valid graphs).
DatasetProfile scaled(DatasetProfile p, double scale);

/// Generate a synthetic dataset matching `profile`, with train/valid/test
/// split (90/5/5 by default).
Dataset generate(const DatasetProfile& profile, Rng& rng,
                 double valid_frac = 0.05, double test_frac = 0.05,
                 std::int64_t clusters = 32);

}  // namespace sptx::kg
