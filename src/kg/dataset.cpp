#include "src/kg/dataset.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>

#include "src/common/error.hpp"
#include "src/common/string_utils.hpp"

namespace sptx::kg {

namespace {

constexpr std::uint64_t kMagic = 0x5350545831ULL;  // "SPTX1"

void write_u64(std::ofstream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::ifstream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

void write_string(std::ofstream& os, const std::string& s) {
  write_u64(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::ifstream& is) {
  const std::uint64_t n = read_u64(is);
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  return s;
}

void write_store(std::ofstream& os, const TripletStore& store) {
  write_u64(os, static_cast<std::uint64_t>(store.size()));
  for (const Triplet& t : store.triplets()) {
    write_u64(os, static_cast<std::uint64_t>(t.head));
    write_u64(os, static_cast<std::uint64_t>(t.relation));
    write_u64(os, static_cast<std::uint64_t>(t.tail));
  }
}

TripletStore read_store(std::ifstream& is, std::int64_t n_ent,
                        std::int64_t n_rel) {
  const std::uint64_t m = read_u64(is);
  std::vector<Triplet> triplets;
  triplets.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    Triplet t;
    t.head = static_cast<std::int64_t>(read_u64(is));
    t.relation = static_cast<std::int64_t>(read_u64(is));
    t.tail = static_cast<std::int64_t>(read_u64(is));
    triplets.push_back(t);
  }
  return TripletStore(n_ent, n_rel, std::move(triplets));
}

}  // namespace

void Dataset::save(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  SPTX_CHECK(os.good(), "cannot write " << path);
  write_u64(os, kMagic);
  write_string(os, name);
  write_u64(os, static_cast<std::uint64_t>(num_entities()));
  write_u64(os, static_cast<std::uint64_t>(num_relations()));
  write_store(os, train);
  write_store(os, valid);
  write_store(os, test);
  write_u64(os, entity_names.size());
  for (const auto& s : entity_names) write_string(os, s);
  write_u64(os, relation_names.size());
  for (const auto& s : relation_names) write_string(os, s);
  SPTX_CHECK(os.good(), "write to " << path << " failed");
}

Dataset Dataset::load_binary(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  SPTX_CHECK(is.good(), "cannot read " << path);
  SPTX_CHECK(read_u64(is) == kMagic, path << " is not an sptx dataset file");
  Dataset ds;
  ds.name = read_string(is);
  const auto n_ent = static_cast<std::int64_t>(read_u64(is));
  const auto n_rel = static_cast<std::int64_t>(read_u64(is));
  ds.train = read_store(is, n_ent, n_rel);
  ds.valid = read_store(is, n_ent, n_rel);
  ds.test = read_store(is, n_ent, n_rel);
  const std::uint64_t ne = read_u64(is);
  ds.entity_names.reserve(ne);
  for (std::uint64_t i = 0; i < ne; ++i)
    ds.entity_names.push_back(read_string(is));
  const std::uint64_t nr = read_u64(is);
  ds.relation_names.reserve(nr);
  for (std::uint64_t i = 0; i < nr; ++i)
    ds.relation_names.push_back(read_string(is));
  SPTX_CHECK(is.good(), "truncated dataset file " << path);
  return ds;
}

Dataset load_triplet_file(const std::string& path, char delim,
                          const std::string& name) {
  std::ifstream is(path);
  SPTX_CHECK(is.good(), "cannot open " << path);
  std::unordered_map<std::string, std::int64_t> ent_ids;
  std::unordered_map<std::string, std::int64_t> rel_ids;
  Dataset ds;
  ds.name = name;
  std::vector<Triplet> triplets;

  auto intern = [](std::unordered_map<std::string, std::int64_t>& map,
                   std::vector<std::string>& names,
                   std::string_view token) -> std::int64_t {
    auto it = map.find(std::string(token));
    if (it != map.end()) return it->second;
    const auto id = static_cast<std::int64_t>(names.size());
    names.emplace_back(token);
    map.emplace(names.back(), id);
    return id;
  };

  std::string line;
  std::int64_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const std::string_view sv = trim(line);
    if (sv.empty() || sv.front() == '#') continue;
    const auto fields = sptx::split(sv, delim);
    SPTX_CHECK(fields.size() >= 3,
               path << ":" << lineno << ": expected 3 fields, got "
                    << fields.size());
    Triplet t;
    t.head = intern(ent_ids, ds.entity_names, trim(fields[0]));
    t.relation = intern(rel_ids, ds.relation_names, trim(fields[1]));
    t.tail = intern(ent_ids, ds.entity_names, trim(fields[2]));
    triplets.push_back(t);
  }
  const auto n_ent = static_cast<std::int64_t>(ds.entity_names.size());
  const auto n_rel = static_cast<std::int64_t>(ds.relation_names.size());
  ds.train = TripletStore(n_ent, n_rel, std::move(triplets));
  ds.valid = TripletStore(n_ent, n_rel, {});
  ds.test = TripletStore(n_ent, n_rel, {});
  return ds;
}

Dataset split(Dataset all, double valid_frac, double test_frac, Rng& rng) {
  SPTX_CHECK(valid_frac >= 0 && test_frac >= 0 &&
                 valid_frac + test_frac < 1.0,
             "bad split fractions");
  std::vector<Triplet> triplets(all.train.triplets().begin(),
                                all.train.triplets().end());
  // Fisher–Yates with our RNG for reproducibility.
  for (std::size_t i = triplets.size(); i > 1; --i) {
    const std::size_t j = rng.next_below(i);
    std::swap(triplets[i - 1], triplets[j]);
  }
  const auto n = static_cast<std::int64_t>(triplets.size());
  const auto n_valid = static_cast<std::int64_t>(valid_frac * n);
  const auto n_test = static_cast<std::int64_t>(test_frac * n);
  const auto n_train = n - n_valid - n_test;

  const auto n_ent = all.num_entities();
  const auto n_rel = all.num_relations();
  auto make_store = [&](std::int64_t begin, std::int64_t count) {
    return TripletStore(
        n_ent, n_rel,
        std::vector<Triplet>(triplets.begin() + begin,
                             triplets.begin() + begin + count));
  };
  all.train = make_store(0, n_train);
  all.valid = make_store(n_train, n_valid);
  all.test = make_store(n_train + n_valid, n_test);
  return all;
}

void write_tsv(const Dataset& ds, const std::string& path) {
  std::ofstream os(path);
  SPTX_CHECK(os.good(), "cannot write " << path);
  // Synthetic labels build by insert rather than `"e" + to_string(...)` —
  // GCC 12's -Wrestrict misfires on that inlined operator+ chain at -O3
  // (upstream PR105651), and the build is -Werror.
  auto label_ent = [&](std::int64_t e) {
    if (!ds.entity_names.empty())
      return ds.entity_names[static_cast<std::size_t>(e)];
    std::string label = std::to_string(e);
    label.insert(label.begin(), 'e');
    return label;
  };
  auto label_rel = [&](std::int64_t r) {
    if (!ds.relation_names.empty())
      return ds.relation_names[static_cast<std::size_t>(r)];
    std::string label = std::to_string(r);
    label.insert(label.begin(), 'r');
    return label;
  };
  for (const Triplet& t : ds.train.triplets()) {
    os << label_ent(t.head) << '\t' << label_rel(t.relation) << '\t'
       << label_ent(t.tail) << '\n';
  }
}

}  // namespace sptx::kg
