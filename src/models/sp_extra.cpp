#include "src/models/sp_extra.hpp"

#include <cmath>

#include "src/kernels/fused.hpp"
#include "src/models/sp_transr.hpp"  // build_relation_selection_csr
#include "src/profiling/timer.hpp"
#include "src/sparse/incidence.hpp"

namespace sptx::models {

namespace {

autograd::Variable norm_for(const autograd::Variable& x, Dissimilarity d) {
  return d == Dissimilarity::kL2 ? autograd::row_l2(x) : autograd::row_l1(x);
}

void clamp_nonnegative(Matrix& m, float floor_at = 1e-4f) {
  for (index_t i = 0; i < m.size(); ++i) {
    if (m.data()[i] < floor_at) m.data()[i] = floor_at;
  }
}

/// Shared hrt-family probe query over a stacked [entities; relations]
/// table: tails look for t near h + r, heads for h near t − r.
void stacked_translation_query(const Matrix& table, index_t num_entities,
                               bool corrupt_tail, std::int64_t anchor,
                               std::int64_t relation, float* q) {
  const float* a = table.row(anchor);
  const float* r = table.row(num_entities + relation);
  const index_t d = table.cols();
  if (corrupt_tail) {
    for (index_t j = 0; j < d; ++j) q[j] = a[j] + r[j];
  } else {
    for (index_t j = 0; j < d; ++j) q[j] = a[j] - r[j];
  }
}

}  // namespace

// --------------------------------------------------------------- SpTransD

SpTransD::SpTransD(index_t num_entities, index_t num_relations,
                   const ModelConfig& config, Rng& rng)
    : ScoringCoreModel(num_entities, num_relations, config),
      entities_(num_entities, config.dim, rng),
      entity_proj_(num_entities, config.dim, rng),
      relations_(num_relations, config.dim, rng),
      relation_proj_(num_relations, config.dim, rng) {
  // Projection vectors start small so the model begins near plain TransE.
  entity_proj_.mutable_weights().scale_(0.1f);
  relation_proj_.mutable_weights().scale_(0.1f);
}

sparse::ScoringRecipe SpTransD::recipe() const {
  sparse::ScoringRecipe r;
  r.ht = true;
  r.head_selection = true;
  r.tail_selection = true;
  r.relation_selection = true;
  r.dim = config_.dim;
  return r;
}

autograd::Variable SpTransD::forward(const sparse::CompiledBatch& batch) {
  // Rearranged TransD: (h − t) + r + ((h_pᵀh) − (t_pᵀt)) r_p.
  autograd::Variable ht =
      autograd::spmm(batch.ht(), entities_.var(), config_.kernel);
  autograd::Variable h =
      autograd::spmm(batch.head_selection(), entities_.var(), config_.kernel);
  autograd::Variable hp = autograd::spmm(batch.head_selection(),
                                         entity_proj_.var(), config_.kernel);
  autograd::Variable t =
      autograd::spmm(batch.tail_selection(), entities_.var(), config_.kernel);
  autograd::Variable tp = autograd::spmm(batch.tail_selection(),
                                         entity_proj_.var(), config_.kernel);
  autograd::Variable r = autograd::spmm(batch.relation_selection(),
                                        relations_.var(), config_.kernel);
  autograd::Variable rp = autograd::spmm(batch.relation_selection(),
                                         relation_proj_.var(), config_.kernel);

  autograd::Variable proj_scale =
      autograd::sub(autograd::row_dot(hp, h), autograd::row_dot(tp, t));
  autograd::Variable expr = autograd::add(
      autograd::add(ht, r), autograd::scale_rows(proj_scale, rp));
  return norm_for(expr, config_.dissimilarity);
}

autograd::Variable SpTransD::fused_forward(const sparse::CompiledBatch& batch) {
  profiling::ScopedHotspot hotspot("kernels::fused_transd");
  const auto triplets = batch.triplets();
  const kernels::Norm norm = fused_norm(config_.dissimilarity);
  Matrix out(batch.size(), 1);
  kernels::transd_forward(triplets, entities_.weights(),
                          entity_proj_.weights(), relations_.weights(),
                          relation_proj_.weights(), norm, out.data());
  return autograd::Variable::op(
      std::move(out),
      {entities_.var(), entity_proj_.var(), relations_.var(),
       relation_proj_.var()},
      [triplets, norm, keep = batch.owned_triplets()](autograd::Node& node) {
        if (!fused_backward_needed(node)) return;
        kernels::transd_backward(
            triplets, node.parents()[0]->value(), node.parents()[1]->value(),
            node.parents()[2]->value(), node.parents()[3]->value(), norm,
            node.value().data(), node.grad().data(),
            node.parents()[0]->grad(), node.parents()[1]->grad(),
            node.parents()[2]->grad(), node.parents()[3]->grad());
      },
      "kernels::fused_transd_backward");
}

std::vector<float> SpTransD::score(std::span<const Triplet> batch) const {
  std::vector<float> out(batch.size());
  if (kernels::fused_enabled()) {
    kernels::transd_forward(batch, entities_.weights(),
                            entity_proj_.weights(), relations_.weights(),
                            relation_proj_.weights(),
                            fused_norm(config_.dissimilarity), out.data());
    return out;
  }
  const Matrix& e = entities_.weights();
  const Matrix& ep = entity_proj_.weights();
  const Matrix& r = relations_.weights();
  const Matrix& rp = relation_proj_.weights();
  const index_t d = config_.dim;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Triplet& t = batch[i];
    const float* h = e.row(t.head);
    const float* tl = e.row(t.tail);
    const float* hp = ep.row(t.head);
    const float* tp = ep.row(t.tail);
    const float* rv = r.row(t.relation);
    const float* rpv = rp.row(t.relation);
    float hdot = 0.0f, tdot = 0.0f;
    for (index_t j = 0; j < d; ++j) {
      hdot += hp[j] * h[j];
      tdot += tp[j] * tl[j];
    }
    const float s = hdot - tdot;
    float acc = 0.0f;
    for (index_t j = 0; j < d; ++j) {
      const float v = (h[j] - tl[j]) + rv[j] + s * rpv[j];
      acc += config_.dissimilarity == Dissimilarity::kL2 ? v * v
                                                         : std::fabs(v);
    }
    out[i] =
        config_.dissimilarity == Dissimilarity::kL2 ? std::sqrt(acc) : acc;
  }
  return out;
}

std::vector<autograd::Variable> SpTransD::params() {
  return {entities_.var(), entity_proj_.var(), relations_.var(),
          relation_proj_.var()};
}

void SpTransD::post_step() {
  if (config_.normalize_entities) entities_.normalize_rows();
}

// --------------------------------------------------------------- SpTransA

SpTransA::SpTransA(index_t num_entities, index_t num_relations,
                   const ModelConfig& config, Rng& rng)
    : ScoringCoreModel(num_entities, num_relations, config),
      ent_rel_(num_entities + num_relations, config.dim, rng),
      metric_(num_relations, config.dim, rng) {
  metric_.mutable_weights().fill(1.0f);  // start at the Euclidean metric
}

sparse::ScoringRecipe SpTransA::recipe() const {
  sparse::ScoringRecipe r;
  r.hrt = true;
  r.relation_selection = true;
  r.dim = config_.dim;
  return r;
}

autograd::Variable SpTransA::forward(const sparse::CompiledBatch& batch) {
  autograd::Variable hrt =
      autograd::spmm(batch.hrt(), ent_rel_.var(), config_.kernel);
  autograd::Variable w = autograd::spmm(batch.relation_selection(),
                                        metric_.var(), config_.kernel);
  // Diagonal adaptive metric: Σ_j w_rj · hrt_j².
  return autograd::row_dot(w, autograd::mul(hrt, hrt));
}

autograd::Variable SpTransA::fused_forward(const sparse::CompiledBatch& batch) {
  profiling::ScopedHotspot hotspot("kernels::fused_transa");
  const auto triplets = batch.triplets();
  const index_t n = num_entities_;
  Matrix out(batch.size(), 1);
  kernels::transa_forward(triplets, ent_rel_.weights(), metric_.weights(), n,
                          out.data());
  return autograd::Variable::op(
      std::move(out), {ent_rel_.var(), metric_.var()},
      [triplets, n, keep = batch.owned_triplets()](autograd::Node& node) {
        if (!fused_backward_needed(node)) return;
        kernels::transa_backward(triplets, node.parents()[0]->value(),
                                 node.parents()[1]->value(), n,
                                 node.grad().data(),
                                 node.parents()[0]->grad(),
                                 node.parents()[1]->grad());
      },
      "kernels::fused_transa_backward");
}

std::vector<float> SpTransA::score(std::span<const Triplet> batch) const {
  std::vector<float> out(batch.size());
  if (kernels::fused_enabled()) {
    kernels::transa_forward(batch, ent_rel_.weights(), metric_.weights(),
                            num_entities_, out.data());
    return out;
  }
  const Matrix& e = ent_rel_.weights();
  const Matrix& w = metric_.weights();
  const index_t d = e.cols();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Triplet& t = batch[i];
    const float* h = e.row(t.head);
    const float* r = e.row(num_entities_ + t.relation);
    const float* tl = e.row(t.tail);
    const float* wr = w.row(t.relation);
    float acc = 0.0f;
    for (index_t j = 0; j < d; ++j) {
      const float v = h[j] + r[j] - tl[j];
      acc += wr[j] * v * v;
    }
    out[i] = acc;
  }
  return out;
}

std::optional<AnnSupport> SpTransA::ann_support() const {
  return AnnSupport{&ent_rel_.weights(), kernels::Norm::kL2,
                    /*inner_product=*/false, &metric_.weights()};
}

void SpTransA::ann_query(bool corrupt_tail, std::int64_t anchor,
                         std::int64_t relation, float* q) const {
  stacked_translation_query(ent_rel_.weights(), num_entities_, corrupt_tail,
                            anchor, relation, q);
}

std::vector<autograd::Variable> SpTransA::params() {
  return {ent_rel_.var(), metric_.var()};
}

void SpTransA::post_step() {
  // W_r must stay PSD; for a diagonal metric that is elementwise ≥ 0.
  clamp_nonnegative(metric_.mutable_weights());
  if (config_.normalize_entities) {
    ent_rel_.normalize_rows_prefix(num_entities_);
  }
}

// --------------------------------------------------------------- SpTransC

SpTransC::SpTransC(index_t num_entities, index_t num_relations,
                   const ModelConfig& config, Rng& rng)
    : ScoringCoreModel(num_entities, num_relations, config),
      ent_rel_(num_entities + num_relations, config.dim, rng) {}

sparse::ScoringRecipe SpTransC::recipe() const {
  sparse::ScoringRecipe r;
  r.hrt = true;
  r.dim = config_.dim;
  return r;
}

autograd::Variable SpTransC::forward(const sparse::CompiledBatch& batch) {
  autograd::Variable hrt =
      autograd::spmm(batch.hrt(), ent_rel_.var(), config_.kernel);
  return autograd::row_squared_l2(hrt);  // Table 2: ||h + r − t||₂²
}

autograd::Variable SpTransC::fused_forward(const sparse::CompiledBatch& batch) {
  profiling::ScopedHotspot hotspot("kernels::fused_transc");
  const auto triplets = batch.triplets();
  const index_t n = num_entities_;
  Matrix out(batch.size(), 1);
  kernels::transc_forward(triplets, ent_rel_.weights(), n, out.data());
  return autograd::Variable::op(
      std::move(out), {ent_rel_.var()},
      [triplets, n, keep = batch.owned_triplets()](autograd::Node& node) {
        if (!fused_backward_needed(node)) return;
        kernels::transc_backward(triplets, node.parents()[0]->value(), n,
                                 node.grad().data(),
                                 node.parents()[0]->grad());
      },
      "kernels::fused_transc_backward");
}

std::vector<float> SpTransC::score(std::span<const Triplet> batch) const {
  std::vector<float> out(batch.size());
  if (kernels::fused_enabled()) {
    kernels::transc_forward(batch, ent_rel_.weights(), num_entities_,
                            out.data());
    return out;
  }
  const Matrix& e = ent_rel_.weights();
  const index_t d = e.cols();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Triplet& t = batch[i];
    const float* h = e.row(t.head);
    const float* r = e.row(num_entities_ + t.relation);
    const float* tl = e.row(t.tail);
    float acc = 0.0f;
    for (index_t j = 0; j < d; ++j) {
      const float v = h[j] + r[j] - tl[j];
      acc += v * v;
    }
    out[i] = acc;
  }
  return out;
}

std::optional<AnnSupport> SpTransC::ann_support() const {
  return AnnSupport{&ent_rel_.weights(), kernels::Norm::kL2,
                    /*inner_product=*/false, /*probe_weights=*/nullptr};
}

void SpTransC::ann_query(bool corrupt_tail, std::int64_t anchor,
                         std::int64_t relation, float* q) const {
  stacked_translation_query(ent_rel_.weights(), num_entities_, corrupt_tail,
                            anchor, relation, q);
}

std::vector<autograd::Variable> SpTransC::params() {
  return {ent_rel_.var()};
}

void SpTransC::post_step() {
  if (!config_.normalize_entities) return;
  ent_rel_.normalize_rows_prefix(num_entities_);
}

// --------------------------------------------------------------- SpTransM

SpTransM::SpTransM(index_t num_entities, index_t num_relations,
                   const ModelConfig& config, Rng& rng)
    : ScoringCoreModel(num_entities, num_relations, config),
      ent_rel_(num_entities + num_relations, config.dim, rng),
      rel_weight_(num_relations, 1, rng) {
  rel_weight_.mutable_weights().fill(1.0f);
}

sparse::ScoringRecipe SpTransM::recipe() const {
  sparse::ScoringRecipe r;
  r.hrt = true;
  r.relation_selection = true;
  r.dim = config_.dim;
  r.relation_dim = 1;  // w_r is one scalar per relation
  return r;
}

autograd::Variable SpTransM::forward(const sparse::CompiledBatch& batch) {
  autograd::Variable hrt =
      autograd::spmm(batch.hrt(), ent_rel_.var(), config_.kernel);
  autograd::Variable w = autograd::spmm(batch.relation_selection(),
                                        rel_weight_.var(), config_.kernel);
  return autograd::mul(w, norm_for(hrt, config_.dissimilarity));
}

autograd::Variable SpTransM::fused_forward(const sparse::CompiledBatch& batch) {
  profiling::ScopedHotspot hotspot("kernels::fused_transm");
  const auto triplets = batch.triplets();
  const kernels::Norm norm = fused_norm(config_.dissimilarity);
  const index_t n = num_entities_;
  Matrix out(batch.size(), 1);
  kernels::transm_forward(triplets, ent_rel_.weights(), rel_weight_.weights(),
                          n, norm, out.data());
  return autograd::Variable::op(
      std::move(out), {ent_rel_.var(), rel_weight_.var()},
      [triplets, norm, n, keep = batch.owned_triplets()](autograd::Node& node) {
        if (!fused_backward_needed(node)) return;
        kernels::transm_backward(triplets, node.parents()[0]->value(),
                                 node.parents()[1]->value(), n, norm,
                                 node.grad().data(),
                                 node.parents()[0]->grad(),
                                 node.parents()[1]->grad());
      },
      "kernels::fused_transm_backward");
}

std::vector<float> SpTransM::score(std::span<const Triplet> batch) const {
  std::vector<float> out(batch.size());
  if (kernels::fused_enabled()) {
    kernels::transm_forward(batch, ent_rel_.weights(), rel_weight_.weights(),
                            num_entities_, fused_norm(config_.dissimilarity),
                            out.data());
    return out;
  }
  const Matrix& e = ent_rel_.weights();
  const Matrix& w = rel_weight_.weights();
  const index_t d = e.cols();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Triplet& t = batch[i];
    const float* h = e.row(t.head);
    const float* r = e.row(num_entities_ + t.relation);
    const float* tl = e.row(t.tail);
    float acc = 0.0f;
    if (config_.dissimilarity == Dissimilarity::kL2) {
      for (index_t j = 0; j < d; ++j) {
        const float v = h[j] + r[j] - tl[j];
        acc += v * v;
      }
      acc = std::sqrt(acc);
    } else {
      for (index_t j = 0; j < d; ++j) acc += std::fabs(h[j] + r[j] - tl[j]);
    }
    out[i] = w.at(t.relation, 0) * acc;
  }
  return out;
}

std::optional<AnnSupport> SpTransM::ann_support() const {
  return AnnSupport{&ent_rel_.weights(), fused_norm(config_.dissimilarity),
                    /*inner_product=*/false, /*probe_weights=*/nullptr};
}

void SpTransM::ann_query(bool corrupt_tail, std::int64_t anchor,
                         std::int64_t relation, float* q) const {
  stacked_translation_query(ent_rel_.weights(), num_entities_, corrupt_tail,
                            anchor, relation, q);
}

std::vector<autograd::Variable> SpTransM::params() {
  return {ent_rel_.var(), rel_weight_.var()};
}

void SpTransM::post_step() {
  clamp_nonnegative(rel_weight_.mutable_weights());
  if (!config_.normalize_entities) return;
  ent_rel_.normalize_rows_prefix(num_entities_);
}

}  // namespace sptx::models
