// SpTransH — sparse TransH (§4.5).
//
// TransH projects onto relation hyperplanes: score
// ||h⊥ + d_r − t⊥|| with x⊥ = x − (w_rᵀx)w_r. The paper's algebraic
// rearrangement collapses the two projections into ONE shared ht
// expression:
//     (h − t) + d_r − (w_rᵀ(h − t)) w_r,
// so the batch needs one ht SpMM, two relation-selection SpMMs (w_r, d_r),
// one row-dot and one row-scaling — reusing the (h − t) tensor three times.
// Dense implementations compute h⊥ and t⊥ separately, roughly doubling the
// elementwise work and intermediate memory (the source of the 11× memory
// gap the paper reports on TransH).
#pragma once

#include "src/models/model.hpp"
#include "src/nn/embedding.hpp"

namespace sptx::models {

class SpTransH final : public ScoringCoreModel {
 public:
  SpTransH(index_t num_entities, index_t num_relations,
           const ModelConfig& config, Rng& rng);

  std::string name() const override { return "SpTransH"; }
  sparse::ScoringRecipe recipe() const override;
  autograd::Variable forward(const sparse::CompiledBatch& batch) override;
  autograd::Variable fused_forward(const sparse::CompiledBatch& batch) override;
  std::vector<float> score(std::span<const Triplet> batch) const override;
  std::vector<autograd::Variable> params() override;
  void post_step() override;

 private:
  nn::EmbeddingTable entities_;   // N × d
  nn::EmbeddingTable normals_;    // R × d   (w_r, unit-normalised)
  nn::EmbeddingTable transfers_;  // R × d   (d_r)
};

}  // namespace sptx::models
