// Model interface shared by the sparse (SpTransX) and dense (baseline)
// implementations.
//
// A model owns its parameter tables and exposes:
//  * loss(pos, neg)  — build the differentiable margin-ranking loss for a
//    batch of positives and index-aligned negatives (the training op);
//  * score(batch)    — fast non-autograd scoring for evaluation;
//  * params()        — leaf Variables for the optimizer;
//  * post_step()     — per-batch constraints (entity renormalisation for
//    TransE-family, unit normals for TransH).
// Scores are distances for translational models (lower = more plausible)
// and similarities for the semiring models (higher = better);
// higher_is_better() tells the evaluator which way to rank.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/autograd/ops.hpp"
#include "src/autograd/variable.hpp"
#include "src/common/rng.hpp"
#include "src/kernels/fused.hpp"
#include "src/kg/triplet.hpp"
#include "src/sparse/plan_cache.hpp"

namespace sptx::models {

enum class Dissimilarity { kL1, kL2 };

/// The fused kernels' norm tag for a dissimilarity (one conversion, shared
/// by every family's fused_forward and score).
inline kernels::Norm fused_norm(Dissimilarity d) {
  return d == Dissimilarity::kL2 ? kernels::Norm::kL2 : kernels::Norm::kL1;
}

/// Whether a fused node's backward must run: the fused scatter writes every
/// parent table in one pass, so it runs when ANY parent is trainable (a
/// frozen table then receives gradient rows nothing consumes — harmless,
/// and the trainable parents stay correct, unlike gating on parent 0).
inline bool fused_backward_needed(const autograd::Node& n) {
  for (const auto& p : n.parents()) {
    if (p->requires_grad()) return true;
  }
  return false;
}

/// Training objective built inside each model's loss().
enum class LossType {
  kMarginRanking,  // §5.3's MarginRankingLoss (hinge)
  kLogistic,       // smooth softplus ranking loss
};

/// Hyperparameters shared across models (Table 4 defaults are set per
/// experiment in the bench harness; these are the library defaults).
struct ModelConfig {
  index_t dim = 128;       // entity embedding size
  index_t rel_dim = 128;   // relation space size (TransR / TransH d_r)
  float margin = 0.5f;     // §5.3 margin
  Dissimilarity dissimilarity = Dissimilarity::kL2;
  LossType loss = LossType::kMarginRanking;
  SpmmKernel kernel = SpmmKernel::kAuto;  // SpMM variant (§5.5)
  bool normalize_entities = true;
};

/// Ranking loss dispatch shared by every model.
inline autograd::Variable ranking_loss(const autograd::Variable& pos,
                                       const autograd::Variable& neg,
                                       const ModelConfig& config) {
  return config.loss == LossType::kMarginRanking
             ? autograd::margin_ranking_loss(pos, neg, config.margin)
             : autograd::logistic_ranking_loss(pos, neg, config.margin);
}

/// How a parameter matrix's rows are indexed. Drives the distributed
/// trainer's sparse all-reduce: for entity/relation-indexed tables only the
/// rows a batch's incidence structure touches carry gradient, so only those
/// rows need to travel. kDense disables the sparse path for a parameter —
/// always safe, never wrong, just slower.
enum class ParamIndexSpace {
  kEntity,                  // rows indexed by entity id (N rows)
  kRelation,                // rows indexed by relation id (R rows)
  kEntityRelationStacked,   // [entities; relations] stacking (N + R rows)
  /// R stacked fixed-height blocks, block r belonging to relation r
  /// (TransR's (R·d_r) × d projection stack). Never inferred from shape —
  /// only a model override can claim it, because a coincidentally divisible
  /// dense matrix would silently drop gradient.
  kRelationBlocks,
  kDense,                   // anything else: all-reduce the whole matrix
};

/// Probe geometry for ANN-accelerated top-k serving (serve/ann_index.hpp):
/// which matrix holds the entity points (rows [0, num_entities) are the
/// candidates) and how a composed query row ranks against them. The
/// contract is *rank-preserving*, not score-preserving — ordering entities
/// by the probe metric against ann_query()'s row must equal ordering them
/// by score() for the same (anchor, relation) — because returned scores
/// always come from an exact re-rank through score(); the probe only
/// selects candidates.
struct AnnSupport {
  /// Entity point table. Rows [0, num_entities) are the candidate points;
  /// families with stacked [entities; relations] tables expose the whole
  /// stack and the index builder reads only the entity prefix.
  const Matrix* table = nullptr;
  /// Distance families: candidates rank by ||q − x|| under this norm
  /// (lower = better).
  kernels::Norm norm = kernels::Norm::kL2;
  /// Similarity families rank by ⟨q, x⟩ (higher = better) instead.
  bool inner_product = false;
  /// Optional R×d per-relation diagonal metric (TransA): the probe distance
  /// is Σ_j w_rj (q_j − x_j)². Null for unweighted families.
  const Matrix* probe_weights = nullptr;
};

class KgeModel {
 public:
  virtual ~KgeModel() = default;

  virtual std::string name() const = 0;

  /// Margin-ranking loss over a batch; `neg` is index-aligned with `pos`
  /// (one pre-generated negative per positive, §5.3).
  virtual autograd::Variable loss(std::span<const Triplet> pos,
                                  std::span<const Triplet> neg) = 0;

  /// Non-autograd scores for evaluation/link prediction.
  virtual std::vector<float> score(std::span<const Triplet> batch) const = 0;

  virtual bool higher_is_better() const { return false; }

  virtual std::vector<autograd::Variable> params() = 0;

  /// Index space of each params() entry, aligned by position. The default
  /// infers from row counts — N rows → entity-indexed, R rows →
  /// relation-indexed, N+R rows → the stacked [entities; relations] layout —
  /// which is exact for every model family in this library. Ambiguous counts
  /// (a dataset where N == R) and unrecognised shapes classify as kDense,
  /// which is always safe. Models with exotic layouts should override.
  virtual std::vector<ParamIndexSpace> param_index_spaces();

  /// Apply model constraints after an optimizer step.
  virtual void post_step() {}

  /// Probe geometry for the ANN serving path, or nullopt when no
  /// rank-preserving single-table transform exists for the family (TorusE's
  /// wraparound metric, the relation-dependent candidate projections of
  /// TransH/TransR/TransD, the dense baselines) — serving then brute-forces
  /// the candidate scan, which is always correct.
  virtual std::optional<AnnSupport> ann_support() const { return std::nullopt; }

  /// Compose the probe query row for (anchor, relation) into `q`
  /// (ann_support()->table->cols() floats): the point whose probe-metric
  /// neighborhood holds the best-scoring candidates for (anchor, relation, ?)
  /// when `corrupt_tail`, (?, relation, anchor) otherwise. Only meaningful —
  /// and only called — when ann_support() is engaged.
  virtual void ann_query(bool corrupt_tail, std::int64_t anchor,
                         std::int64_t relation, float* q) const;

  index_t num_entities() const { return num_entities_; }
  index_t num_relations() const { return num_relations_; }

 protected:
  KgeModel(index_t num_entities, index_t num_relations, ModelConfig config)
      : num_entities_(num_entities),
        num_relations_(num_relations),
        config_(config) {}

  index_t num_entities_;
  index_t num_relations_;
  ModelConfig config_;
};

/// Base for the sparse model families: the forward pass is a ScoringRecipe
/// (which incidence builders the batch needs — pure data, compiled by
/// sparse::CompiledBatch possibly on a prefetch thread) plus a scoring core
/// (the model-specific SpMMs and reduction over the pre-built structures).
/// distance() and loss() dedupe here: subclasses keep only recipe(),
/// forward(), the non-autograd score() and post_step().
///
/// forward() returns a ranking-ready (M×1) column — distance-like, lower =
/// more plausible; similarity models negate inside their core so one
/// margin-ranking loss drives every family. score() keeps each model's
/// natural sign for evaluation (see higher_is_better).
class ScoringCoreModel : public KgeModel {
 public:
  /// Which incidence structures forward() consumes. Drives plan
  /// compilation; needs no model state beyond the config.
  virtual sparse::ScoringRecipe recipe() const = 0;

  /// The scoring core over a compiled batch.
  virtual autograd::Variable forward(const sparse::CompiledBatch& batch) = 0;

  /// Fused single-node forward (src/kernels): the same score column as
  /// forward(), but as ONE autograd node whose backward scatters gradients
  /// straight into the parameter tables — no add/sub/norm/spmm backward
  /// chain, no intermediate M×d matrices. Families without fused kernels
  /// (the semiring models, whose score op is already one fused node) return
  /// an undefined Variable. The storage backing the batch's triplets must
  /// outlive backward(); implementations capture the plan's owned triplets
  /// so cached/staged plans satisfy this automatically.
  virtual autograd::Variable fused_forward(const sparse::CompiledBatch&) {
    return {};
  }

  /// The dispatch every consumer goes through: fused_forward() when the
  /// SPTX_FUSED registry knob allows it (auto/on, the default) and the
  /// family provides kernels, the autograd-graph forward() otherwise
  /// (SPTX_FUSED=off keeps the historical path bit-identical).
  autograd::Variable run_forward(const sparse::CompiledBatch& batch);

  /// Span path: compiles an ephemeral plan, then runs the core — the
  /// legacy per-batch rebuild behaviour, kept for external callers and as
  /// the reference path the plan cache is tested against.
  autograd::Variable distance(std::span<const Triplet> batch);

  /// Ranking loss over two compiled batches — the staged trainer's path.
  autograd::Variable loss(const sparse::CompiledBatch& pos,
                          const sparse::CompiledBatch& neg);

  autograd::Variable loss(std::span<const Triplet> pos,
                          std::span<const Triplet> neg) final;

 protected:
  using KgeModel::KgeModel;
};

/// Factory over {"TransE","TransR","TransH","TorusE"} sparse variants plus
/// {"DistMult","ComplEx","RotatE"} semiring extensions.
std::unique_ptr<KgeModel> make_sparse_model(const std::string& name,
                                            index_t num_entities,
                                            index_t num_relations,
                                            const ModelConfig& config,
                                            Rng& rng);

/// Factory over the dense gather/scatter baselines (TorchKGE-style):
/// {"TransE","TransR","TransH","TorusE"}.
std::unique_ptr<KgeModel> make_dense_model(const std::string& name,
                                           index_t num_entities,
                                           index_t num_relations,
                                           const ModelConfig& config,
                                           Rng& rng);

}  // namespace sptx::models
