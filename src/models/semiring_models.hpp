// Semiring-SpMM extension models — Appendix D.
//
// The incidence-matrix formulation extends beyond translations by changing
// the semiring of the SpMM:
//  * SpDistMult — score Σ h⊙r⊙t, (×,×) semiring over reals (similarity:
//    higher is better);
//  * SpComplEx — score Σ Re(h⊙r⊙conj(t)) over interleaved complex pairs;
//  * SpRotatE  — distance ||h⊙r − t|| with unit-modulus relation rotations.
// All three share the stacked [entities; relations] table layout of
// SpTransE. Similarity models train with the same margin-ranking loss on
// negated scores so one trainer drives every model.
#pragma once

#include "src/models/model.hpp"
#include "src/nn/embedding.hpp"

namespace sptx::models {

class SpDistMult final : public ScoringCoreModel {
 public:
  SpDistMult(index_t num_entities, index_t num_relations,
             const ModelConfig& config, Rng& rng);
  std::string name() const override { return "SpDistMult"; }
  sparse::ScoringRecipe recipe() const override;
  autograd::Variable forward(const sparse::CompiledBatch& batch) override;
  std::vector<float> score(std::span<const Triplet> batch) const override;
  bool higher_is_better() const override { return true; }
  std::vector<autograd::Variable> params() override;

 private:
  nn::EmbeddingTable ent_rel_;
};

class SpComplEx final : public ScoringCoreModel {
 public:
  SpComplEx(index_t num_entities, index_t num_relations,
            const ModelConfig& config, Rng& rng);
  std::string name() const override { return "SpComplEx"; }
  sparse::ScoringRecipe recipe() const override;
  autograd::Variable forward(const sparse::CompiledBatch& batch) override;
  std::vector<float> score(std::span<const Triplet> batch) const override;
  bool higher_is_better() const override { return true; }
  std::vector<autograd::Variable> params() override;

 private:
  nn::EmbeddingTable ent_rel_;  // interleaved (re, im): cols = 2·(dim/2)
};

class SpRotatE final : public ScoringCoreModel {
 public:
  SpRotatE(index_t num_entities, index_t num_relations,
           const ModelConfig& config, Rng& rng);
  std::string name() const override { return "SpRotatE"; }
  sparse::ScoringRecipe recipe() const override;
  autograd::Variable forward(const sparse::CompiledBatch& batch) override;
  std::vector<float> score(std::span<const Triplet> batch) const override;
  std::vector<autograd::Variable> params() override;

 private:
  nn::EmbeddingTable ent_rel_;
};

}  // namespace sptx::models
