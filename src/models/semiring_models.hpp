// Semiring-SpMM extension models — Appendix D.
//
// The incidence-matrix formulation extends beyond translations by changing
// the semiring of the SpMM:
//  * SpDistMult — score Σ h⊙r⊙t, (×,×) semiring over reals (similarity:
//    higher is better);
//  * SpComplEx — score Σ Re(h⊙r⊙conj(t)) over interleaved complex pairs;
//  * SpRotatE  — distance ||h⊙r − t|| with unit-modulus relation rotations.
// All three share the stacked [entities; relations] table layout of
// SpTransE. Similarity models train with the same margin-ranking loss on
// negated scores so one trainer drives every model.
#pragma once

#include "src/models/model.hpp"
#include "src/nn/embedding.hpp"

namespace sptx::models {

class SpDistMult final : public ScoringCoreModel {
 public:
  SpDistMult(index_t num_entities, index_t num_relations,
             const ModelConfig& config, Rng& rng);
  std::string name() const override { return "SpDistMult"; }
  sparse::ScoringRecipe recipe() const override;
  autograd::Variable forward(const sparse::CompiledBatch& batch) override;
  std::vector<float> score(std::span<const Triplet> batch) const override;
  bool higher_is_better() const override { return true; }
  std::vector<autograd::Variable> params() override;

  /// Score is bilinear: tails rank by ⟨h⊙r, t⟩, heads by ⟨r⊙t, h⟩ — an
  /// exact inner-product probe either side.
  std::optional<AnnSupport> ann_support() const override;
  void ann_query(bool corrupt_tail, std::int64_t anchor, std::int64_t relation,
                 float* q) const override;

 private:
  nn::EmbeddingTable ent_rel_;
};

class SpComplEx final : public ScoringCoreModel {
 public:
  SpComplEx(index_t num_entities, index_t num_relations,
            const ModelConfig& config, Rng& rng);
  std::string name() const override { return "SpComplEx"; }
  sparse::ScoringRecipe recipe() const override;
  autograd::Variable forward(const sparse::CompiledBatch& batch) override;
  std::vector<float> score(std::span<const Triplet> batch) const override;
  bool higher_is_better() const override { return true; }
  std::vector<autograd::Variable> params() override;

  /// Re⟨h⊙r, conj(t)⟩ is bilinear over the interleaved real layout: tails
  /// rank by ⟨h⊛r, t⟩, heads by ⟨conj(r)⊛t, h⟩ (real 2k-vectors) — exact
  /// inner-product probes.
  std::optional<AnnSupport> ann_support() const override;
  void ann_query(bool corrupt_tail, std::int64_t anchor, std::int64_t relation,
                 float* q) const override;

 private:
  nn::EmbeddingTable ent_rel_;  // interleaved (re, im): cols = 2·(dim/2)
};

class SpRotatE final : public ScoringCoreModel {
 public:
  SpRotatE(index_t num_entities, index_t num_relations,
           const ModelConfig& config, Rng& rng);
  std::string name() const override { return "SpRotatE"; }
  sparse::ScoringRecipe recipe() const override;
  autograd::Variable forward(const sparse::CompiledBatch& batch) override;
  std::vector<float> score(std::span<const Triplet> batch) const override;
  std::vector<autograd::Variable> params() override;

  /// Per-pair rotation by the unit-normalized relation is an L2 isometry:
  /// tails rank by ||h⊛r̂ − t||, heads equivalently by ||conj(r̂)⊛t − h||.
  std::optional<AnnSupport> ann_support() const override;
  void ann_query(bool corrupt_tail, std::int64_t anchor, std::int64_t relation,
                 float* q) const override;

 private:
  nn::EmbeddingTable ent_rel_;
};

}  // namespace sptx::models
