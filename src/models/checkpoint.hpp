// Model checkpointing: persist and restore all parameter tables.
//
// A checkpoint records the model name, vocabulary sizes, and every
// parameter matrix in params() order. Restoring validates that the target
// model has the same architecture (name, sizes, per-parameter shapes), so
// a TransR checkpoint cannot be silently loaded into a TransE model.
#pragma once

#include <string>

#include "src/models/model.hpp"

namespace sptx::models {

/// Write `model`'s parameters to `path`.
void save_checkpoint(KgeModel& model, const std::string& path);

/// Load parameters from `path` into `model`. Throws on any mismatch
/// (model name, entity/relation counts, parameter shapes).
void load_checkpoint(KgeModel& model, const std::string& path);

}  // namespace sptx::models
