// Crash-safe model & training-state checkpointing.
//
// Format v2 ("SPTXCKP2"): a fixed header {magic, format version, kind,
// payload byte count, payload CRC-32} followed by the payload. Writes are
// atomic (temp file + fsync + rename via AtomicFileWriter) so a crash at
// any instant leaves either the previous complete checkpoint or the new
// one; loads verify the CRC and reject truncated or bit-flipped files with
// Error{kCorruptCheckpoint} instead of reading garbage. Legacy v1 model
// checkpoints (no CRC) are still readable.
//
// Two payload kinds:
//  * model — the v1 body: model name, vocabulary sizes, every parameter
//    matrix in params() order. Restoring validates the target architecture.
//  * train — the model payload plus everything the trainer needs to resume
//    bit-identically: epoch cursor, RNG state, optimizer slot state,
//    the in-flight negative/permutation buffers, and the early-stop
//    bookkeeping. See train::TrainConfig::checkpoint_every.
//
// Rotation: periodic checkpoints are written to `<base>.ep<epoch>`;
// latest_checkpoint() finds the newest one to resume from and
// prune_checkpoints() keeps the last N.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "src/kg/triplet.hpp"
#include "src/models/model.hpp"

namespace sptx::models {

/// Write `model`'s parameters to `path` atomically (never truncates an
/// existing good checkpoint on failure).
void save_checkpoint(KgeModel& model, const std::string& path);

/// Load parameters from `path` into `model`. Throws Error on any mismatch
/// (model name, entity/relation counts, parameter shapes) and
/// Error{kCorruptCheckpoint} on truncation / CRC mismatch / bad magic.
void load_checkpoint(KgeModel& model, const std::string& path);

/// Everything beyond the parameters that a resumed training run needs to
/// continue the exact trajectory of the uninterrupted run.
struct TrainCheckpointState {
  /// First epoch the resumed run executes (the checkpoint was taken after
  /// epoch next_epoch - 1 finished).
  int next_epoch = 0;
  /// The trainer RNG, captured after all derivations for next_epoch.
  std::array<std::uint64_t, 4> rng_state{};
  /// Early-stop bookkeeping.
  float best_loss = std::numeric_limits<float>::infinity();
  int epochs_without_improvement = 0;
  /// Optimizer kind ("sgd", "adagrad"; empty = DDP's raw SGD, no slots)
  /// and its exported slot state.
  std::string optimizer;
  std::vector<Matrix> optimizer_state;
  /// In-flight sampling buffers: the negatives and shuffled positions the
  /// next epoch will consume (empty for paths that re-derive them).
  std::vector<Triplet> negatives;
  std::vector<index_t> positions;
  /// Loss curve of completed epochs, for continuity of TrainResult.
  std::vector<float> epoch_loss;
};

/// Write model parameters + training state to `path` atomically.
void save_train_checkpoint(KgeModel& model, const TrainCheckpointState& state,
                           const std::string& path);

/// Restore parameters into `model` and return the training state. Same
/// validation and corruption handling as load_checkpoint.
TrainCheckpointState load_train_checkpoint(KgeModel& model,
                                           const std::string& path);

// ---- rotation -------------------------------------------------------------

/// The rotated path for one epoch's checkpoint: `<base>.ep<epoch>`.
std::string checkpoint_path_for_epoch(const std::string& base, int epoch);

struct FoundCheckpoint {
  std::string path;
  int epoch = -1;  // the suffix N of .ep<N>
};

/// The highest-epoch `<base>.ep<N>` on disk, or nullopt when none exists.
std::optional<FoundCheckpoint> latest_checkpoint(const std::string& base);

/// Delete all but the newest `keep` rotated checkpoints (keep <= 0 keeps
/// everything). Best-effort: unlink failures are ignored. A strict-abort
/// flush (`<base>.abort`) is never rotation-eligible: it is neither counted
/// against `keep` nor deleted — it holds the only copy of an aborted run's
/// parameters and only the operator may remove it.
void prune_checkpoints(const std::string& base, int keep);

/// When `<base>.abort` exists, a short diagnostic sentence describing it
/// (for resume-failure messages: the stale flush is often the reason an
/// operator expected a resumable rotation to exist). Empty otherwise.
std::string describe_abort_sibling(const std::string& base);

}  // namespace sptx::models
