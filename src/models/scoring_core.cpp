// Shared scoring-core execution: the plan/execute split at the model layer.
//
// Every sparse family used to interleave incidence building with its SpMM
// algebra inside distance(); now the building lives in
// sparse::CompiledBatch::compile (driven by the model's recipe) and the
// algebra lives in forward(). These two shims connect the worlds: the span
// path compiles an ephemeral plan per call (exactly the old per-batch
// behaviour), and the compiled path is what the staged trainer feeds with
// cached / prefetched plans.
#include "src/models/model.hpp"

namespace sptx::models {

autograd::Variable ScoringCoreModel::distance(std::span<const Triplet> batch) {
  const auto plan = sparse::CompiledBatch::compile(
      batch, recipe(), num_entities_, num_relations_, /*copy_triplets=*/false);
  return forward(*plan);
}

autograd::Variable ScoringCoreModel::loss(const sparse::CompiledBatch& pos,
                                          const sparse::CompiledBatch& neg) {
  return ranking_loss(forward(pos), forward(neg), config_);
}

autograd::Variable ScoringCoreModel::loss(std::span<const Triplet> pos,
                                          std::span<const Triplet> neg) {
  return ranking_loss(distance(pos), distance(neg), config_);
}

}  // namespace sptx::models
