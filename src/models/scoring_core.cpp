// Shared scoring-core execution: the plan/execute split at the model layer.
//
// Every sparse family used to interleave incidence building with its SpMM
// algebra inside distance(); now the building lives in
// sparse::CompiledBatch::compile (driven by the model's recipe) and the
// algebra lives in forward(). These two shims connect the worlds: the span
// path compiles an ephemeral plan per call (exactly the old per-batch
// behaviour), and the compiled path is what the staged trainer feeds with
// cached / prefetched plans.
#include "src/kernels/fused.hpp"
#include "src/models/model.hpp"
#include "src/profiling/counters.hpp"

namespace sptx::models {

std::vector<ParamIndexSpace> KgeModel::param_index_spaces() {
  const index_t n = num_entities_;
  const index_t r = num_relations_;
  std::vector<ParamIndexSpace> spaces;
  for (autograd::Variable& p : params()) {
    const index_t rows = p.rows();
    if (n == r) {
      // Entity- and relation-sized tables are indistinguishable by shape;
      // the stacked layout (rows == 2n) could equally be either doubled.
      // Dense is the only classification that cannot drop gradient.
      spaces.push_back(ParamIndexSpace::kDense);
    } else if (rows == n) {
      spaces.push_back(ParamIndexSpace::kEntity);
    } else if (rows == r) {
      spaces.push_back(ParamIndexSpace::kRelation);
    } else if (rows == n + r) {
      spaces.push_back(ParamIndexSpace::kEntityRelationStacked);
    } else {
      spaces.push_back(ParamIndexSpace::kDense);
    }
  }
  return spaces;
}

void KgeModel::ann_query(bool, std::int64_t, std::int64_t, float*) const {
  throw Error(name() + " advertises no ann_support(); the serving layer must "
                       "not route its top-k queries through the ANN index");
}

autograd::Variable ScoringCoreModel::run_forward(
    const sparse::CompiledBatch& batch) {
  if (kernels::fused_enabled()) {
    if (autograd::Variable fused = fused_forward(batch); fused.defined()) {
      profiling::count_event(profiling::Counter::kFusedBatches);
      return fused;
    }
  }
  return forward(batch);
}

autograd::Variable ScoringCoreModel::distance(std::span<const Triplet> batch) {
  const auto plan = sparse::CompiledBatch::compile(
      batch, recipe(), num_entities_, num_relations_, /*copy_triplets=*/false);
  return run_forward(*plan);
}

autograd::Variable ScoringCoreModel::loss(const sparse::CompiledBatch& pos,
                                          const sparse::CompiledBatch& neg) {
  return ranking_loss(run_forward(pos), run_forward(neg), config_);
}

autograd::Variable ScoringCoreModel::loss(std::span<const Triplet> pos,
                                          std::span<const Triplet> neg) {
  return ranking_loss(distance(pos), distance(neg), config_);
}

}  // namespace sptx::models
