#include "src/baseline/dense_models.hpp"
#include "src/models/model.hpp"
#include "src/models/semiring_models.hpp"
#include "src/models/sp_extra.hpp"
#include "src/models/sp_toruse.hpp"
#include "src/models/sp_transe.hpp"
#include "src/models/sp_transh.hpp"
#include "src/models/sp_transr.hpp"

namespace sptx::models {

std::unique_ptr<KgeModel> make_sparse_model(const std::string& name,
                                            index_t num_entities,
                                            index_t num_relations,
                                            const ModelConfig& config,
                                            Rng& rng) {
  if (name == "TransE")
    return std::make_unique<SpTransE>(num_entities, num_relations, config,
                                      rng);
  if (name == "TransR")
    return std::make_unique<SpTransR>(num_entities, num_relations, config,
                                      rng);
  if (name == "TransH")
    return std::make_unique<SpTransH>(num_entities, num_relations, config,
                                      rng);
  if (name == "TorusE")
    return std::make_unique<SpTorusE>(num_entities, num_relations, config,
                                      rng);
  if (name == "TransD")
    return std::make_unique<SpTransD>(num_entities, num_relations, config,
                                      rng);
  if (name == "TransA")
    return std::make_unique<SpTransA>(num_entities, num_relations, config,
                                      rng);
  if (name == "TransC")
    return std::make_unique<SpTransC>(num_entities, num_relations, config,
                                      rng);
  if (name == "TransM")
    return std::make_unique<SpTransM>(num_entities, num_relations, config,
                                      rng);
  if (name == "DistMult")
    return std::make_unique<SpDistMult>(num_entities, num_relations, config,
                                        rng);
  if (name == "ComplEx")
    return std::make_unique<SpComplEx>(num_entities, num_relations, config,
                                       rng);
  if (name == "RotatE")
    return std::make_unique<SpRotatE>(num_entities, num_relations, config,
                                      rng);
  throw Error("unknown sparse model: " + name);
}

std::unique_ptr<KgeModel> make_dense_model(const std::string& name,
                                           index_t num_entities,
                                           index_t num_relations,
                                           const ModelConfig& config,
                                           Rng& rng) {
  if (name == "TransE")
    return std::make_unique<baseline::DenseTransE>(num_entities,
                                                   num_relations, config, rng);
  if (name == "TransR")
    return std::make_unique<baseline::DenseTransR>(num_entities,
                                                   num_relations, config, rng);
  if (name == "TransH")
    return std::make_unique<baseline::DenseTransH>(num_entities,
                                                   num_relations, config, rng);
  if (name == "TorusE")
    return std::make_unique<baseline::DenseTorusE>(num_entities,
                                                   num_relations, config, rng);
  if (name == "TransD")
    return std::make_unique<baseline::DenseTransD>(num_entities,
                                                   num_relations, config, rng);
  throw Error("unknown dense model: " + name);
}

}  // namespace sptx::models
