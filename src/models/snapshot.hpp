// Model snapshot / freeze API — the bridge from training to serving.
//
// A trained KgeModel is mutable (the optimizer steps it, post_step()
// renormalises it), so handing it directly to a multi-threaded serving
// layer would race with further training. freeze() produces an immutable
// replica instead: a fresh instance built from the model's ModelSpec with
// the current parameter values copied in, returned as shared_ptr<const>.
// The replica shares nothing with the source — training can continue (or
// the source can be destroyed) while any number of serving sessions score
// against the snapshot concurrently; score() is const and element-pure for
// every model family in the library.
//
// ModelSpec is also the registry-friendly description the Engine facade
// keeps per model: family + framework + hyperparameters + init seed, i.e.
// everything needed to rebuild the architecture for checkpoint restore.
#pragma once

#include <memory>
#include <string>

#include "src/models/model.hpp"

namespace sptx::models {

/// Everything needed to (re)build a model architecture: which family
/// ("TransE" … "RotatE"), which implementation ("sparse" SpMM engine or the
/// "dense" gather/scatter baseline), the hyperparameters, and the seed the
/// initial weights are drawn from.
struct ModelSpec {
  std::string family = "TransE";
  std::string framework = "sparse";  // "sparse" | "dense"
  ModelConfig config;
  std::uint64_t seed = 43;
};

/// Instantiate the spec for a vocabulary. Throws on an unknown family or
/// framework.
std::unique_ptr<KgeModel> make_model(const ModelSpec& spec,
                                     index_t num_entities,
                                     index_t num_relations);

/// Copy every parameter table of `src` into `dst`. Both models must expose
/// identical params() shapes (same family + spec); throws otherwise.
void copy_parameters(KgeModel& src, KgeModel& dst);

/// Immutable snapshot of `src`: a fresh replica built from `spec` carrying
/// src's current parameter values. The result is safe to score from many
/// threads and is unaffected by further training of `src`.
std::shared_ptr<const KgeModel> freeze(KgeModel& src, const ModelSpec& spec);

/// Process-wide monotonic snapshot version, starting at 1. Every serving
/// snapshot (Engine::open_session, Engine::publish, a direct
/// serve::make_serving_snapshot) stamps the next value, so "which version
/// answered this query" is unambiguous across engines and sessions.
std::uint64_t next_snapshot_version();

/// A frozen replica tagged with its version — the publishable unit the
/// serving layer wraps into a serve::ServingSnapshot.
struct VersionedModel {
  std::uint64_t version = 0;
  std::shared_ptr<const KgeModel> model;
};

/// freeze() + next_snapshot_version() in one step.
VersionedModel freeze_versioned(KgeModel& src, const ModelSpec& spec);

}  // namespace sptx::models
