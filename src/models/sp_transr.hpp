// SpTransR — sparse TransR (§4.4).
//
// TransR scores ||M_r·h + r − M_r·t||. The paper's rearrangement
// M_r(h − t) + r means the batch needs only the ht expression (one SpMM
// with the 2-nnz-per-row incidence matrix, §4.2.1), ONE per-relation
// projection of the difference — instead of two separate projections of
// h and t as dense implementations do — and a relation gather, which we
// also express as an SpMM with a one-hot relation-selection incidence
// matrix so every embedding movement stays a sparse matrix product.
#pragma once

#include "src/models/model.hpp"
#include "src/nn/embedding.hpp"
#include "src/sparse/incidence.hpp"

namespace sptx::models {

/// The relation-selection incidence builder moved to sparse/incidence.hpp
/// (where the other builders live); this alias keeps existing callers of
/// models::build_relation_selection_csr compiling.
using sptx::build_relation_selection_csr;

class SpTransR final : public ScoringCoreModel {
 public:
  SpTransR(index_t num_entities, index_t num_relations,
           const ModelConfig& config, Rng& rng);

  std::string name() const override { return "SpTransR"; }
  sparse::ScoringRecipe recipe() const override;
  autograd::Variable forward(const sparse::CompiledBatch& batch) override;
  autograd::Variable fused_forward(const sparse::CompiledBatch& batch) override;
  std::vector<float> score(std::span<const Triplet> batch) const override;
  std::vector<autograd::Variable> params() override;
  std::vector<ParamIndexSpace> param_index_spaces() override;
  void post_step() override;

 private:
  nn::EmbeddingTable entities_;     // N × d
  nn::EmbeddingTable relations_;    // R × d_r
  nn::EmbeddingTable projections_;  // (R·d_r) × d, R stacked d_r×d blocks
};

}  // namespace sptx::models
