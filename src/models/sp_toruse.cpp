#include "src/models/sp_toruse.hpp"

#include <cmath>

#include "src/sparse/incidence.hpp"

namespace sptx::models {

SpTorusE::SpTorusE(index_t num_entities, index_t num_relations,
                   const ModelConfig& config, Rng& rng)
    : KgeModel(num_entities, num_relations, config),
      ent_rel_(num_entities + num_relations, config.dim, rng) {
  // TorusE lives on [0,1)^d: map the Xavier init onto the torus.
  Matrix& w = ent_rel_.mutable_weights();
  for (index_t i = 0; i < w.size(); ++i)
    w.data()[i] = w.data()[i] - std::floor(w.data()[i]);
}

autograd::Variable SpTorusE::distance(std::span<const Triplet> batch) {
  auto a = std::make_shared<Csr>(
      build_hrt_incidence_csr(batch, num_entities_, num_relations_));
  autograd::Variable hrt =
      autograd::spmm(std::move(a), ent_rel_.var(), config_.kernel);
  return config_.dissimilarity == Dissimilarity::kL2
             ? autograd::row_squared_l2_torus(hrt)
             : autograd::row_l1_torus(hrt);
}

autograd::Variable SpTorusE::loss(std::span<const Triplet> pos,
                                  std::span<const Triplet> neg) {
  return ranking_loss(distance(pos), distance(neg), config_);
}

std::vector<float> SpTorusE::score(std::span<const Triplet> batch) const {
  const Matrix& e = ent_rel_.weights();
  const index_t d = e.cols();
  std::vector<float> out(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Triplet& t = batch[i];
    const float* h = e.row(t.head);
    const float* r = e.row(num_entities_ + t.relation);
    const float* tl = e.row(t.tail);
    float acc = 0.0f;
    for (index_t j = 0; j < d; ++j) {
      const float x = h[j] + r[j] - tl[j];
      const float f = x - std::floor(x);
      const float m = f < 0.5f ? f : 1.0f - f;
      acc += config_.dissimilarity == Dissimilarity::kL2 ? m * m : m;
    }
    out[i] = acc;
  }
  return out;
}

std::vector<autograd::Variable> SpTorusE::params() {
  return {ent_rel_.var()};
}

}  // namespace sptx::models
