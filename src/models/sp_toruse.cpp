#include "src/models/sp_toruse.hpp"

#include <cmath>

#include "src/kernels/fused.hpp"
#include "src/profiling/timer.hpp"
#include "src/sparse/incidence.hpp"

namespace sptx::models {

SpTorusE::SpTorusE(index_t num_entities, index_t num_relations,
                   const ModelConfig& config, Rng& rng)
    : ScoringCoreModel(num_entities, num_relations, config),
      ent_rel_(num_entities + num_relations, config.dim, rng) {
  // TorusE lives on [0,1)^d: map the Xavier init onto the torus.
  Matrix& w = ent_rel_.mutable_weights();
  for (index_t i = 0; i < w.size(); ++i)
    w.data()[i] = w.data()[i] - std::floor(w.data()[i]);
}

sparse::ScoringRecipe SpTorusE::recipe() const {
  sparse::ScoringRecipe r;
  r.hrt = true;
  r.dim = config_.dim;
  return r;
}

autograd::Variable SpTorusE::forward(const sparse::CompiledBatch& batch) {
  autograd::Variable hrt =
      autograd::spmm(batch.hrt(), ent_rel_.var(), config_.kernel);
  return config_.dissimilarity == Dissimilarity::kL2
             ? autograd::row_squared_l2_torus(hrt)
             : autograd::row_l1_torus(hrt);
}

autograd::Variable SpTorusE::fused_forward(const sparse::CompiledBatch& batch) {
  profiling::ScopedHotspot hotspot("kernels::fused_toruse");
  const auto triplets = batch.triplets();
  const kernels::Norm norm = fused_norm(config_.dissimilarity);
  const index_t n = num_entities_;
  Matrix out(batch.size(), 1);
  kernels::toruse_forward(triplets, ent_rel_.weights(), n, norm, out.data());
  return autograd::Variable::op(
      std::move(out), {ent_rel_.var()},
      [triplets, norm, n, keep = batch.owned_triplets()](autograd::Node& node) {
        if (!fused_backward_needed(node)) return;
        kernels::toruse_backward(triplets, node.parents()[0]->value(), n, norm,
                                 node.grad().data(),
                                 node.parents()[0]->grad());
      },
      "kernels::fused_toruse_backward");
}

std::vector<float> SpTorusE::score(std::span<const Triplet> batch) const {
  std::vector<float> out(batch.size());
  if (kernels::fused_enabled()) {
    kernels::toruse_forward(batch, ent_rel_.weights(), num_entities_,
                            fused_norm(config_.dissimilarity),
                            out.data());
    return out;
  }
  const Matrix& e = ent_rel_.weights();
  const index_t d = e.cols();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Triplet& t = batch[i];
    const float* h = e.row(t.head);
    const float* r = e.row(num_entities_ + t.relation);
    const float* tl = e.row(t.tail);
    float acc = 0.0f;
    for (index_t j = 0; j < d; ++j) {
      const float x = h[j] + r[j] - tl[j];
      const float f = x - std::floor(x);
      const float m = f < 0.5f ? f : 1.0f - f;
      acc += config_.dissimilarity == Dissimilarity::kL2 ? m * m : m;
    }
    out[i] = acc;
  }
  return out;
}

std::vector<autograd::Variable> SpTorusE::params() {
  return {ent_rel_.var()};
}

}  // namespace sptx::models
