#include "src/models/sp_transr.hpp"

#include <cmath>

#include "src/sparse/incidence.hpp"

namespace sptx::models {

Csr build_relation_selection_csr(std::span<const Triplet> batch,
                                 index_t num_relations) {
  Csr a;
  a.rows = static_cast<index_t>(batch.size());
  a.cols = num_relations;
  a.row_ptr.resize(batch.size() + 1);
  a.col_idx.resize(batch.size());
  a.values.assign(batch.size(), 1.0f);
  for (std::size_t m = 0; m < batch.size(); ++m) {
    SPTX_CHECK(batch[m].relation >= 0 && batch[m].relation < num_relations,
               "relation out of range");
    a.row_ptr[m] = static_cast<index_t>(m);
    a.col_idx[m] = batch[m].relation;
  }
  a.row_ptr[batch.size()] = static_cast<index_t>(batch.size());
  return a;
}

SpTransR::SpTransR(index_t num_entities, index_t num_relations,
                   const ModelConfig& config, Rng& rng)
    : KgeModel(num_entities, num_relations, config),
      entities_(num_entities, config.dim, rng),
      relations_(num_relations, config.rel_dim, rng),
      projections_(num_relations * config.rel_dim, config.dim, rng) {
  // Start projections near identity-like scale so early training is stable:
  // Xavier already scales by 1/√d; nothing further needed, but we keep the
  // relation vectors unit-ish via post_step().
}

autograd::Variable SpTransR::distance(std::span<const Triplet> batch) {
  auto ht_inc =
      std::make_shared<Csr>(build_ht_incidence_csr(batch, num_entities_));
  auto rel_inc = std::make_shared<Csr>(
      build_relation_selection_csr(batch, num_relations_));
  auto rel_idx = std::make_shared<std::vector<index_t>>();
  rel_idx->reserve(batch.size());
  for (const Triplet& t : batch) rel_idx->push_back(t.relation);

  // ht = h − t via one SpMM; project once; add the gathered relations.
  autograd::Variable ht =
      autograd::spmm(std::move(ht_inc), entities_.var(), config_.kernel);
  autograd::Variable projected = autograd::relation_project(
      projections_.var(), ht, std::move(rel_idx), config_.rel_dim);
  autograd::Variable r =
      autograd::spmm(std::move(rel_inc), relations_.var(), config_.kernel);
  autograd::Variable translated = autograd::add(projected, r);
  return config_.dissimilarity == Dissimilarity::kL2
             ? autograd::row_l2(translated)
             : autograd::row_l1(translated);
}

autograd::Variable SpTransR::loss(std::span<const Triplet> pos,
                                  std::span<const Triplet> neg) {
  return ranking_loss(distance(pos), distance(neg), config_);
}

std::vector<float> SpTransR::score(std::span<const Triplet> batch) const {
  const Matrix& e = entities_.weights();
  const Matrix& r = relations_.weights();
  const Matrix& m = projections_.weights();
  const index_t de = config_.dim;
  const index_t dr = config_.rel_dim;
  std::vector<float> out(batch.size());
  std::vector<float> diff(static_cast<std::size_t>(de));
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Triplet& t = batch[i];
    const float* h = e.row(t.head);
    const float* tl = e.row(t.tail);
    for (index_t j = 0; j < de; ++j)
      diff[static_cast<std::size_t>(j)] = h[j] - tl[j];
    const float* rv = r.row(t.relation);
    float acc = 0.0f;
    for (index_t p = 0; p < dr; ++p) {
      const float* mrow = m.row(t.relation * dr + p);
      float proj = 0.0f;
      for (index_t q = 0; q < de; ++q)
        proj += mrow[q] * diff[static_cast<std::size_t>(q)];
      const float v = proj + rv[p];
      acc += config_.dissimilarity == Dissimilarity::kL2 ? v * v
                                                         : std::fabs(v);
    }
    out[i] =
        config_.dissimilarity == Dissimilarity::kL2 ? std::sqrt(acc) : acc;
  }
  return out;
}

std::vector<autograd::Variable> SpTransR::params() {
  return {entities_.var(), relations_.var(), projections_.var()};
}

void SpTransR::post_step() {
  if (!config_.normalize_entities) return;
  entities_.normalize_rows();
}

}  // namespace sptx::models
