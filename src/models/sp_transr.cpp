#include "src/models/sp_transr.hpp"

#include <cmath>
#include <memory>

#include "src/kernels/fused.hpp"
#include "src/profiling/timer.hpp"
#include "src/sparse/incidence.hpp"

namespace sptx::models {

SpTransR::SpTransR(index_t num_entities, index_t num_relations,
                   const ModelConfig& config, Rng& rng)
    : ScoringCoreModel(num_entities, num_relations, config),
      entities_(num_entities, config.dim, rng),
      relations_(num_relations, config.rel_dim, rng),
      projections_(num_relations * config.rel_dim, config.dim, rng) {
  // Start projections near identity-like scale so early training is stable:
  // Xavier already scales by 1/√d; nothing further needed, but we keep the
  // relation vectors unit-ish via post_step().
}

sparse::ScoringRecipe SpTransR::recipe() const {
  sparse::ScoringRecipe r;
  r.ht = true;
  r.relation_selection = true;
  r.relation_indices = true;
  // The fused kernel's relation-blocked GEMM order. Only requested when the
  // fused layer is active so the SPTX_FUSED=off baseline keeps its exact
  // historical compile cost (a plan compiled under off and then run under
  // on fails loudly in the fused kernel's groups check, never silently).
  r.relation_groups = kernels::fused_enabled();
  r.dim = config_.dim;
  r.relation_dim = config_.rel_dim;  // relations live in the d_r space
  return r;
}

autograd::Variable SpTransR::forward(const sparse::CompiledBatch& batch) {
  // ht = h − t via one SpMM; project once; add the gathered relations.
  autograd::Variable ht =
      autograd::spmm(batch.ht(), entities_.var(), config_.kernel);
  autograd::Variable projected = autograd::relation_project(
      projections_.var(), ht, batch.relation_indices(), config_.rel_dim);
  autograd::Variable r = autograd::spmm(batch.relation_selection(),
                                        relations_.var(), config_.kernel);
  autograd::Variable translated = autograd::add(projected, r);
  return config_.dissimilarity == Dissimilarity::kL2
             ? autograd::row_l2(translated)
             : autograd::row_l1(translated);
}

autograd::Variable SpTransR::fused_forward(const sparse::CompiledBatch& batch) {
  profiling::ScopedHotspot hotspot("kernels::fused_transr");
  const auto triplets = batch.triplets();
  const kernels::Norm norm = fused_norm(config_.dissimilarity);
  const index_t dr = config_.rel_dim;
  const auto groups = batch.relation_groups();
  // Pre-norm expression rows, kept for the backward so it never re-runs the
  // forward GEMM. Workspace-pooled: zero steady-state allocations.
  auto stash = std::make_shared<Matrix>(batch.size(), dr);
  Matrix out(batch.size(), 1);
  kernels::transr_forward(groups.get(), triplets, entities_.weights(),
                          relations_.weights(), projections_.weights(), dr,
                          norm, out.data(), stash.get());
  return autograd::Variable::op(
      std::move(out),
      {entities_.var(), relations_.var(), projections_.var()},
      [triplets, norm, dr, groups, stash,
       keep = batch.owned_triplets()](autograd::Node& node) {
        if (!fused_backward_needed(node)) return;
        kernels::transr_backward(
            groups.get(), triplets, node.parents()[0]->value(),
            node.parents()[1]->value(), node.parents()[2]->value(), dr, norm,
            *stash, node.value().data(), node.grad().data(),
            node.parents()[0]->grad(), node.parents()[1]->grad(),
            node.parents()[2]->grad());
      },
      "kernels::fused_transr_backward");
}

std::vector<float> SpTransR::score(std::span<const Triplet> batch) const {
  std::vector<float> out(batch.size());
  if (kernels::fused_enabled()) {
    kernels::transr_forward(nullptr, batch, entities_.weights(),
                            relations_.weights(), projections_.weights(),
                            config_.rel_dim,
                            fused_norm(config_.dissimilarity),
                            out.data(), nullptr);
    return out;
  }
  const Matrix& e = entities_.weights();
  const Matrix& r = relations_.weights();
  const Matrix& m = projections_.weights();
  const index_t de = config_.dim;
  const index_t dr = config_.rel_dim;
  std::vector<float> diff(static_cast<std::size_t>(de));
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Triplet& t = batch[i];
    const float* h = e.row(t.head);
    const float* tl = e.row(t.tail);
    for (index_t j = 0; j < de; ++j)
      diff[static_cast<std::size_t>(j)] = h[j] - tl[j];
    const float* rv = r.row(t.relation);
    float acc = 0.0f;
    for (index_t p = 0; p < dr; ++p) {
      const float* mrow = m.row(t.relation * dr + p);
      float proj = 0.0f;
      for (index_t q = 0; q < de; ++q)
        proj += mrow[q] * diff[static_cast<std::size_t>(q)];
      const float v = proj + rv[p];
      acc += config_.dissimilarity == Dissimilarity::kL2 ? v * v
                                                         : std::fabs(v);
    }
    out[i] =
        config_.dissimilarity == Dissimilarity::kL2 ? std::sqrt(acc) : acc;
  }
  return out;
}

std::vector<autograd::Variable> SpTransR::params() {
  return {entities_.var(), relations_.var(), projections_.var()};
}

std::vector<ParamIndexSpace> SpTransR::param_index_spaces() {
  // The projection stack is (R·d_r) × d with block r owned by relation r —
  // block-sparse by relation, which shape inference must not guess at.
  return {ParamIndexSpace::kEntity, ParamIndexSpace::kRelation,
          ParamIndexSpace::kRelationBlocks};
}

void SpTransR::post_step() {
  if (!config_.normalize_entities) return;
  entities_.normalize_rows();
}

}  // namespace sptx::models
