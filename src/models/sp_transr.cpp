#include "src/models/sp_transr.hpp"

#include <cmath>

#include "src/sparse/incidence.hpp"

namespace sptx::models {

SpTransR::SpTransR(index_t num_entities, index_t num_relations,
                   const ModelConfig& config, Rng& rng)
    : ScoringCoreModel(num_entities, num_relations, config),
      entities_(num_entities, config.dim, rng),
      relations_(num_relations, config.rel_dim, rng),
      projections_(num_relations * config.rel_dim, config.dim, rng) {
  // Start projections near identity-like scale so early training is stable:
  // Xavier already scales by 1/√d; nothing further needed, but we keep the
  // relation vectors unit-ish via post_step().
}

sparse::ScoringRecipe SpTransR::recipe() const {
  sparse::ScoringRecipe r;
  r.ht = true;
  r.relation_selection = true;
  r.relation_indices = true;
  r.dim = config_.dim;
  r.relation_dim = config_.rel_dim;  // relations live in the d_r space
  return r;
}

autograd::Variable SpTransR::forward(const sparse::CompiledBatch& batch) {
  // ht = h − t via one SpMM; project once; add the gathered relations.
  autograd::Variable ht =
      autograd::spmm(batch.ht(), entities_.var(), config_.kernel);
  autograd::Variable projected = autograd::relation_project(
      projections_.var(), ht, batch.relation_indices(), config_.rel_dim);
  autograd::Variable r = autograd::spmm(batch.relation_selection(),
                                        relations_.var(), config_.kernel);
  autograd::Variable translated = autograd::add(projected, r);
  return config_.dissimilarity == Dissimilarity::kL2
             ? autograd::row_l2(translated)
             : autograd::row_l1(translated);
}

std::vector<float> SpTransR::score(std::span<const Triplet> batch) const {
  const Matrix& e = entities_.weights();
  const Matrix& r = relations_.weights();
  const Matrix& m = projections_.weights();
  const index_t de = config_.dim;
  const index_t dr = config_.rel_dim;
  std::vector<float> out(batch.size());
  std::vector<float> diff(static_cast<std::size_t>(de));
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Triplet& t = batch[i];
    const float* h = e.row(t.head);
    const float* tl = e.row(t.tail);
    for (index_t j = 0; j < de; ++j)
      diff[static_cast<std::size_t>(j)] = h[j] - tl[j];
    const float* rv = r.row(t.relation);
    float acc = 0.0f;
    for (index_t p = 0; p < dr; ++p) {
      const float* mrow = m.row(t.relation * dr + p);
      float proj = 0.0f;
      for (index_t q = 0; q < de; ++q)
        proj += mrow[q] * diff[static_cast<std::size_t>(q)];
      const float v = proj + rv[p];
      acc += config_.dissimilarity == Dissimilarity::kL2 ? v * v
                                                         : std::fabs(v);
    }
    out[i] =
        config_.dissimilarity == Dissimilarity::kL2 ? std::sqrt(acc) : acc;
  }
  return out;
}

std::vector<autograd::Variable> SpTransR::params() {
  return {entities_.var(), relations_.var(), projections_.var()};
}

std::vector<ParamIndexSpace> SpTransR::param_index_spaces() {
  // The projection stack is (R·d_r) × d with block r owned by relation r —
  // block-sparse by relation, which shape inference must not guess at.
  return {ParamIndexSpace::kEntity, ParamIndexSpace::kRelation,
          ParamIndexSpace::kRelationBlocks};
}

void SpTransR::post_step() {
  if (!config_.normalize_entities) return;
  entities_.normalize_rows();
}

}  // namespace sptx::models
