// Additional translational models in the sparse formulation.
//
// §1 and the conclusion state the approach "can be extended to accelerate
// other translation-based models (such as TransC, TransM, etc.)", Table 2
// lists their score functions, and Figure 2 profiles TransD. These four
// close that set:
//
//  * SpTransD (Ji et al., 2015) — dynamic mapping via projection vectors:
//      h⊥ = h + (h_pᵀh) r_p,  t⊥ = t + (t_pᵀt) r_p,
//      score ||h⊥ + r − t⊥||.
//    Rearranged: (h − t) + r + ((h_pᵀh) − (t_pᵀt)) r_p — one fused ht SpMM
//    plus per-side selection SpMMs for the projection dots.
//  * SpTransA (Xiao et al., 2015) — adaptive metric |hrt|ᵀ W_r |hrt|. We
//    implement the standard diagonal-W_r variant: score Σ_j w_rj·hrt_j²
//    with w_r ≥ 0 enforced after each step (DESIGN.md notes the
//    full-matrix → diagonal substitution).
//  * SpTransC (Lv et al., 2018) — score ||h + r − t||₂² (Table 2's
//    expression; the concept-sphere constraints of the full paper are out
//    of scope here).
//  * SpTransM (Fan et al., 2014) — score w_r·||h + r − t|| with one
//    learnable scalar weight per relation.
//
// All hrt-shaped models reuse SpTransE's stacked [entities; relations]
// table and its single fused SpMM.
#pragma once

#include "src/models/model.hpp"
#include "src/nn/embedding.hpp"

namespace sptx::models {

class SpTransD final : public ScoringCoreModel {
 public:
  SpTransD(index_t num_entities, index_t num_relations,
           const ModelConfig& config, Rng& rng);
  std::string name() const override { return "SpTransD"; }
  sparse::ScoringRecipe recipe() const override;
  autograd::Variable forward(const sparse::CompiledBatch& batch) override;
  autograd::Variable fused_forward(const sparse::CompiledBatch& batch) override;
  std::vector<float> score(std::span<const Triplet> batch) const override;
  std::vector<autograd::Variable> params() override;
  void post_step() override;

 private:
  nn::EmbeddingTable entities_;       // N × d
  nn::EmbeddingTable entity_proj_;    // N × d  (h_p / t_p)
  nn::EmbeddingTable relations_;      // R × d
  nn::EmbeddingTable relation_proj_;  // R × d  (r_p)
};

class SpTransA final : public ScoringCoreModel {
 public:
  SpTransA(index_t num_entities, index_t num_relations,
           const ModelConfig& config, Rng& rng);
  std::string name() const override { return "SpTransA"; }
  sparse::ScoringRecipe recipe() const override;
  autograd::Variable forward(const sparse::CompiledBatch& batch) override;
  autograd::Variable fused_forward(const sparse::CompiledBatch& batch) override;
  std::vector<float> score(std::span<const Triplet> batch) const override;
  std::vector<autograd::Variable> params() override;
  void post_step() override;

  /// Candidates rank by the score itself: Σ_j w_rj (q − x)_j² with the
  /// per-relation diagonal metric as probe weights (w ≥ 0 via post_step).
  std::optional<AnnSupport> ann_support() const override;
  void ann_query(bool corrupt_tail, std::int64_t anchor, std::int64_t relation,
                 float* q) const override;

 private:
  nn::EmbeddingTable ent_rel_;  // stacked [entities; relations]
  nn::EmbeddingTable metric_;   // R × d diagonal metric weights (≥ 0)
};

class SpTransC final : public ScoringCoreModel {
 public:
  SpTransC(index_t num_entities, index_t num_relations,
           const ModelConfig& config, Rng& rng);
  std::string name() const override { return "SpTransC"; }
  sparse::ScoringRecipe recipe() const override;
  autograd::Variable forward(const sparse::CompiledBatch& batch) override;
  autograd::Variable fused_forward(const sparse::CompiledBatch& batch) override;
  std::vector<float> score(std::span<const Triplet> batch) const override;
  std::vector<autograd::Variable> params() override;
  void post_step() override;

  /// Score is ||q − x||₂² — monotone in L2, so an L2 probe is exact.
  std::optional<AnnSupport> ann_support() const override;
  void ann_query(bool corrupt_tail, std::int64_t anchor, std::int64_t relation,
                 float* q) const override;

 private:
  nn::EmbeddingTable ent_rel_;
};

class SpTransM final : public ScoringCoreModel {
 public:
  SpTransM(index_t num_entities, index_t num_relations,
           const ModelConfig& config, Rng& rng);
  std::string name() const override { return "SpTransM"; }
  sparse::ScoringRecipe recipe() const override;
  autograd::Variable forward(const sparse::CompiledBatch& batch) override;
  autograd::Variable fused_forward(const sparse::CompiledBatch& batch) override;
  std::vector<float> score(std::span<const Triplet> batch) const override;
  std::vector<autograd::Variable> params() override;
  void post_step() override;

  /// Score is w_r·||q − x|| with w_r ≥ 0 constant across one query's
  /// candidates — rank-preserved by the unweighted config-norm probe.
  std::optional<AnnSupport> ann_support() const override;
  void ann_query(bool corrupt_tail, std::int64_t anchor, std::int64_t relation,
                 float* q) const override;

 private:
  nn::EmbeddingTable ent_rel_;
  nn::EmbeddingTable rel_weight_;  // R × 1 scalar weights (≥ 0)
};

}  // namespace sptx::models
