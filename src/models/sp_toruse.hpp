// SpTorusE — sparse TorusE (§4.6).
//
// Identical incidence structure to SpTransE (one hrt SpMM per batch); the
// score swaps the Euclidean norm for the torus dissimilarity, which works
// on the fractional part of each embedding component with wraparound
// distance min(frac, 1 − frac). The paper notes this dissimilarity — not
// the embedding gather — dominates TorusE's profile (Figure 2), which is
// why TorusE shows the smallest SpMM speedup (~1.9×).
#pragma once

#include "src/models/model.hpp"
#include "src/nn/embedding.hpp"

namespace sptx::models {

class SpTorusE final : public ScoringCoreModel {
 public:
  SpTorusE(index_t num_entities, index_t num_relations,
           const ModelConfig& config, Rng& rng);

  std::string name() const override { return "SpTorusE"; }
  sparse::ScoringRecipe recipe() const override;
  autograd::Variable forward(const sparse::CompiledBatch& batch) override;
  autograd::Variable fused_forward(const sparse::CompiledBatch& batch) override;
  std::vector<float> score(std::span<const Triplet> batch) const override;
  std::vector<autograd::Variable> params() override;

 private:
  nn::EmbeddingTable ent_rel_;  // stacked [entities; relations]
};

}  // namespace sptx::models
