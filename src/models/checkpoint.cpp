#include "src/models/checkpoint.hpp"

#include <cstdint>
#include <fstream>

#include "src/tensor/serialize.hpp"

namespace sptx::models {

namespace {

constexpr std::uint64_t kCheckpointMagic = 0x53505458434b5031ULL;  // SPTXCKP1

void write_string(std::ofstream& os, const std::string& s) {
  const std::uint64_t n = s.size();
  os.write(reinterpret_cast<const char*>(&n), sizeof(n));
  os.write(s.data(), static_cast<std::streamsize>(n));
}

std::string read_string(std::ifstream& is) {
  std::uint64_t n = 0;
  is.read(reinterpret_cast<char*>(&n), sizeof(n));
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  return s;
}

}  // namespace

void save_checkpoint(KgeModel& model, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  SPTX_CHECK(os.good(), "cannot write checkpoint " << path);
  const std::uint64_t magic = kCheckpointMagic;
  os.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  write_string(os, model.name());
  const std::int64_t n = model.num_entities(), r = model.num_relations();
  os.write(reinterpret_cast<const char*>(&n), sizeof(n));
  os.write(reinterpret_cast<const char*>(&r), sizeof(r));
  auto params = model.params();
  const std::uint64_t count = params.size();
  os.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (auto& p : params) write_matrix(os, p.value());
  SPTX_CHECK(os.good(), "checkpoint write failed: " << path);
}

void load_checkpoint(KgeModel& model, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  SPTX_CHECK(is.good(), "cannot read checkpoint " << path);
  std::uint64_t magic = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  SPTX_CHECK(is.good() && magic == kCheckpointMagic,
             path << " is not an sptx checkpoint");
  const std::string name = read_string(is);
  SPTX_CHECK(name == model.name(), "checkpoint holds " << name
                                                       << ", target model is "
                                                       << model.name());
  std::int64_t n = 0, r = 0;
  is.read(reinterpret_cast<char*>(&n), sizeof(n));
  is.read(reinterpret_cast<char*>(&r), sizeof(r));
  SPTX_CHECK(n == model.num_entities() && r == model.num_relations(),
             "checkpoint vocab " << n << "/" << r << " vs model "
                                 << model.num_entities() << "/"
                                 << model.num_relations());
  std::uint64_t count = 0;
  is.read(reinterpret_cast<char*>(&count), sizeof(count));
  auto params = model.params();
  SPTX_CHECK(count == params.size(), "checkpoint has " << count
                                                       << " tensors, model "
                                                       << params.size());
  for (auto& p : params) {
    Matrix loaded = read_matrix(is);
    SPTX_CHECK(loaded.same_shape(p.value()),
               "parameter shape " << loaded.shape_str() << " vs "
                                  << p.value().shape_str());
    p.mutable_value() = std::move(loaded);
  }
}

}  // namespace sptx::models
