#include "src/models/checkpoint.hpp"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/common/atomic_file.hpp"
#include "src/common/crc32.hpp"
#include "src/tensor/serialize.hpp"

namespace sptx::models {

namespace {

constexpr std::uint64_t kMagicV1 = 0x53505458434b5031ULL;  // "SPTXCKP1"
constexpr std::uint64_t kMagicV2 = 0x53505458434b5032ULL;  // "SPTXCKP2"
constexpr std::uint32_t kFormatVersion = 2;
constexpr std::uint32_t kKindModel = 0;
constexpr std::uint32_t kKindTrain = 1;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  SPTX_CHECK_CODE(is.good(), ErrorCode::kCorruptCheckpoint,
                  "checkpoint ends mid-record");
  return v;
}

void write_string(std::ostream& os, const std::string& s) {
  write_pod<std::uint64_t>(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is) {
  const auto n = read_pod<std::uint64_t>(is);
  SPTX_CHECK_CODE(n < (1u << 20), ErrorCode::kCorruptCheckpoint,
                  "implausible string length " << n << " in checkpoint");
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  SPTX_CHECK_CODE(is.good(), ErrorCode::kCorruptCheckpoint,
                  "checkpoint ends mid-string");
  return s;
}

// ---- payloads -------------------------------------------------------------

void write_model_payload(std::ostream& os, KgeModel& model) {
  write_string(os, model.name());
  write_pod<std::int64_t>(os, model.num_entities());
  write_pod<std::int64_t>(os, model.num_relations());
  auto params = model.params();
  write_pod<std::uint64_t>(os, params.size());
  for (auto& p : params) write_matrix(os, p.value());
}

void read_model_payload(std::istream& is, KgeModel& model) {
  const std::string name = read_string(is);
  SPTX_CHECK(name == model.name(), "checkpoint holds " << name
                                                       << ", target model is "
                                                       << model.name());
  const auto n = read_pod<std::int64_t>(is);
  const auto r = read_pod<std::int64_t>(is);
  SPTX_CHECK(n == model.num_entities() && r == model.num_relations(),
             "checkpoint vocab " << n << "/" << r << " vs model "
                                 << model.num_entities() << "/"
                                 << model.num_relations());
  const auto count = read_pod<std::uint64_t>(is);
  auto params = model.params();
  SPTX_CHECK(count == params.size(), "checkpoint has " << count
                                                       << " tensors, model "
                                                       << params.size());
  for (auto& p : params) {
    Matrix loaded = read_matrix(is);
    SPTX_CHECK(loaded.same_shape(p.value()),
               "parameter shape " << loaded.shape_str() << " vs "
                                  << p.value().shape_str());
    p.mutable_value() = std::move(loaded);
  }
}

void write_train_payload(std::ostream& os, KgeModel& model,
                         const TrainCheckpointState& st) {
  write_model_payload(os, model);
  write_pod<std::int32_t>(os, st.next_epoch);
  for (std::uint64_t word : st.rng_state) write_pod(os, word);
  write_pod(os, st.best_loss);
  write_pod<std::int32_t>(os, st.epochs_without_improvement);
  write_string(os, st.optimizer);
  write_pod<std::uint64_t>(os, st.optimizer_state.size());
  for (const Matrix& m : st.optimizer_state) write_matrix(os, m);
  write_pod<std::uint64_t>(os, st.negatives.size());
  os.write(reinterpret_cast<const char*>(st.negatives.data()),
           static_cast<std::streamsize>(st.negatives.size() *
                                        sizeof(Triplet)));
  write_pod<std::uint64_t>(os, st.positions.size());
  os.write(reinterpret_cast<const char*>(st.positions.data()),
           static_cast<std::streamsize>(st.positions.size() *
                                        sizeof(index_t)));
  write_pod<std::uint64_t>(os, st.epoch_loss.size());
  os.write(reinterpret_cast<const char*>(st.epoch_loss.data()),
           static_cast<std::streamsize>(st.epoch_loss.size() * sizeof(float)));
}

template <typename T>
std::vector<T> read_pod_vector(std::istream& is) {
  const auto n = read_pod<std::uint64_t>(is);
  SPTX_CHECK_CODE(n < (1ull << 32), ErrorCode::kCorruptCheckpoint,
                  "implausible vector length " << n << " in checkpoint");
  std::vector<T> v(n);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  SPTX_CHECK_CODE(is.good() || n == 0, ErrorCode::kCorruptCheckpoint,
                  "checkpoint ends mid-vector");
  return v;
}

TrainCheckpointState read_train_payload(std::istream& is, KgeModel& model) {
  read_model_payload(is, model);
  TrainCheckpointState st;
  st.next_epoch = read_pod<std::int32_t>(is);
  for (std::uint64_t& word : st.rng_state) word = read_pod<std::uint64_t>(is);
  st.best_loss = read_pod<float>(is);
  st.epochs_without_improvement = read_pod<std::int32_t>(is);
  st.optimizer = read_string(is);
  const auto slots = read_pod<std::uint64_t>(is);
  SPTX_CHECK_CODE(slots < (1u << 16), ErrorCode::kCorruptCheckpoint,
                  "implausible optimizer-slot count " << slots);
  st.optimizer_state.reserve(slots);
  for (std::uint64_t i = 0; i < slots; ++i)
    st.optimizer_state.push_back(read_matrix(is));
  st.negatives = read_pod_vector<Triplet>(is);
  st.positions = read_pod_vector<index_t>(is);
  st.epoch_loss = read_pod_vector<float>(is);
  return st;
}

// ---- file framing ---------------------------------------------------------

void write_file(const std::string& path, std::uint32_t kind,
                const std::string& payload) {
  AtomicFileWriter writer(path);
  std::ostream& os = writer.stream();
  write_pod(os, kMagicV2);
  write_pod(os, kFormatVersion);
  write_pod(os, kind);
  write_pod<std::uint64_t>(os, payload.size());
  write_pod(os, crc32(payload));
  write_pod<std::uint32_t>(os, 0);  // reserved
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  writer.commit();
}

/// Opens `path`, validates the v2 frame (magic, version, kind, length,
/// CRC), and returns the verified payload. A v1 file returns the remainder
/// of the stream un-checksummed (legacy model checkpoints predate the CRC).
std::string read_file(const std::string& path, std::uint32_t expected_kind) {
  std::ifstream is(path, std::ios::binary);
  SPTX_CHECK_CODE(is.good(), ErrorCode::kIo,
                  "cannot read checkpoint " << path);
  std::uint64_t magic = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  SPTX_CHECK_CODE(is.good() && (magic == kMagicV1 || magic == kMagicV2),
                  ErrorCode::kCorruptCheckpoint,
                  path << " is not an sptx checkpoint");
  if (magic == kMagicV1) {
    SPTX_CHECK_CODE(expected_kind == kKindModel,
                    ErrorCode::kCorruptCheckpoint,
                    path << " is a legacy v1 model checkpoint, not a "
                            "training checkpoint");
    std::ostringstream rest;
    rest << is.rdbuf();
    return rest.str();
  }
  const auto version = read_pod<std::uint32_t>(is);
  SPTX_CHECK_CODE(version == kFormatVersion, ErrorCode::kCorruptCheckpoint,
                  path << " has unsupported checkpoint format version "
                       << version);
  const auto kind = read_pod<std::uint32_t>(is);
  SPTX_CHECK_CODE(kind == expected_kind, ErrorCode::kCorruptCheckpoint,
                  path << " holds kind " << kind << ", expected "
                       << expected_kind
                       << " (0 = model, 1 = training state)");
  const auto payload_bytes = read_pod<std::uint64_t>(is);
  const auto expected_crc = read_pod<std::uint32_t>(is);
  read_pod<std::uint32_t>(is);  // reserved
  std::string payload(payload_bytes, '\0');
  is.read(payload.data(), static_cast<std::streamsize>(payload_bytes));
  SPTX_CHECK_CODE(static_cast<std::uint64_t>(is.gcount()) == payload_bytes,
                  ErrorCode::kCorruptCheckpoint,
                  path << " is truncated: header promises " << payload_bytes
                       << " payload bytes, file holds " << is.gcount());
  SPTX_CHECK_CODE(crc32(payload) == expected_crc,
                  ErrorCode::kCorruptCheckpoint,
                  path << " failed its CRC-32 check — the file is corrupt");
  return payload;
}

}  // namespace

void save_checkpoint(KgeModel& model, const std::string& path) {
  std::ostringstream payload;
  write_model_payload(payload, model);
  SPTX_CHECK_CODE(payload.good(), ErrorCode::kIo,
                  "checkpoint serialisation failed for " << path);
  write_file(path, kKindModel, payload.str());
}

void load_checkpoint(KgeModel& model, const std::string& path) {
  std::istringstream payload(read_file(path, kKindModel));
  read_model_payload(payload, model);
}

void save_train_checkpoint(KgeModel& model, const TrainCheckpointState& state,
                           const std::string& path) {
  std::ostringstream payload;
  write_train_payload(payload, model, state);
  SPTX_CHECK_CODE(payload.good(), ErrorCode::kIo,
                  "checkpoint serialisation failed for " << path);
  write_file(path, kKindTrain, payload.str());
}

TrainCheckpointState load_train_checkpoint(KgeModel& model,
                                           const std::string& path) {
  std::istringstream payload(read_file(path, kKindTrain));
  return read_train_payload(payload, model);
}

// ---- rotation -------------------------------------------------------------

std::string checkpoint_path_for_epoch(const std::string& base, int epoch) {
  return base + ".ep" + std::to_string(epoch);
}

namespace {

/// All `<base>.ep<N>` files, unsorted.
std::vector<FoundCheckpoint> rotated_checkpoints(const std::string& base) {
  namespace fs = std::filesystem;
  const fs::path base_path(base);
  const std::string prefix = base_path.filename().string() + ".ep";
  fs::path dir = base_path.parent_path();
  if (dir.empty()) dir = ".";
  std::vector<FoundCheckpoint> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    // A strict-abort flush (`<base>.abort`, or any `.abort`-suffixed
    // sibling) is never a rotation: it must not be resumed from (it has no
    // epoch cursor) and must never be pruned as clutter — it can be the
    // only surviving copy of an aborted run's parameters. Skip explicitly
    // rather than relying on the digit check below.
    if (name.ends_with(".abort")) continue;
    if (!name.starts_with(prefix)) continue;
    const std::string suffix = name.substr(prefix.size());
    if (suffix.empty() ||
        suffix.find_first_not_of("0123456789") != std::string::npos)
      continue;
    found.push_back({entry.path().string(), std::stoi(suffix)});
  }
  return found;
}

}  // namespace

std::optional<FoundCheckpoint> latest_checkpoint(const std::string& base) {
  auto found = rotated_checkpoints(base);
  if (found.empty()) return std::nullopt;
  return *std::max_element(found.begin(), found.end(),
                           [](const FoundCheckpoint& a,
                              const FoundCheckpoint& b) {
                             return a.epoch < b.epoch;
                           });
}

void prune_checkpoints(const std::string& base, int keep) {
  if (keep <= 0) return;
  auto found = rotated_checkpoints(base);
  if (found.size() <= static_cast<std::size_t>(keep)) return;
  std::sort(found.begin(), found.end(),
            [](const FoundCheckpoint& a, const FoundCheckpoint& b) {
              return a.epoch > b.epoch;  // newest first
            });
  for (std::size_t i = keep; i < found.size(); ++i) {
    std::error_code ec;
    std::filesystem::remove(found[i].path, ec);  // best-effort
  }
}

std::string describe_abort_sibling(const std::string& base) {
  const std::string abort_path = base + ".abort";
  std::error_code ec;
  if (!std::filesystem::exists(abort_path, ec)) return std::string();
  return "; note: a strict-abort parameter flush exists at '" + abort_path +
         "' — it is not a resumable rotation (no epoch cursor); inspect it "
         "with load_checkpoint, or delete it after recovery";
}

}  // namespace sptx::models
