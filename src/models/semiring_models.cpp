#include "src/models/semiring_models.hpp"

#include <cmath>

namespace sptx::models {

namespace {
/// Even embedding size for the complex-pair models.
index_t even_dim(index_t d) { return d % 2 == 0 ? d : d + 1; }

/// The semiring kernels consume the batch itself (by shared_ptr, so the
/// autograd graph can outlive the caller) rather than an incidence matrix;
/// the recipe just asks the plan for owned triplets.
sparse::ScoringRecipe triplets_recipe() {
  sparse::ScoringRecipe r;
  r.shared_triplets = true;
  return r;
}
}  // namespace

// ------------------------------------------------------------- SpDistMult

SpDistMult::SpDistMult(index_t num_entities, index_t num_relations,
                       const ModelConfig& config, Rng& rng)
    : ScoringCoreModel(num_entities, num_relations, config),
      ent_rel_(num_entities + num_relations, config.dim, rng) {}

sparse::ScoringRecipe SpDistMult::recipe() const { return triplets_recipe(); }

autograd::Variable SpDistMult::forward(const sparse::CompiledBatch& batch) {
  // Similarity score: the margin loss wants distances, so negate.
  return autograd::scale(
      autograd::distmult_score(ent_rel_.var(), batch.shared_triplets(),
                               num_entities_),
      -1.0f);
}

std::vector<float> SpDistMult::score(std::span<const Triplet> batch) const {
  const Matrix& e = ent_rel_.weights();
  const index_t d = e.cols();
  std::vector<float> out(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Triplet& t = batch[i];
    const float* h = e.row(t.head);
    const float* r = e.row(num_entities_ + t.relation);
    const float* tl = e.row(t.tail);
    float acc = 0.0f;
    for (index_t j = 0; j < d; ++j) acc += h[j] * r[j] * tl[j];
    out[i] = acc;
  }
  return out;
}

std::optional<AnnSupport> SpDistMult::ann_support() const {
  return AnnSupport{&ent_rel_.weights(), kernels::Norm::kL2,
                    /*inner_product=*/true, /*probe_weights=*/nullptr};
}

void SpDistMult::ann_query(bool corrupt_tail, std::int64_t anchor,
                           std::int64_t relation, float* q) const {
  const Matrix& e = ent_rel_.weights();
  const float* a = e.row(anchor);
  const float* r = e.row(num_entities_ + relation);
  const index_t d = e.cols();
  // ⊙ commutes, so both sides compose the same way: q = anchor ⊙ r.
  (void)corrupt_tail;
  for (index_t j = 0; j < d; ++j) q[j] = a[j] * r[j];
}

std::vector<autograd::Variable> SpDistMult::params() {
  return {ent_rel_.var()};
}

// -------------------------------------------------------------- SpComplEx

SpComplEx::SpComplEx(index_t num_entities, index_t num_relations,
                     const ModelConfig& config, Rng& rng)
    : ScoringCoreModel(num_entities, num_relations, config),
      ent_rel_(num_entities + num_relations, even_dim(config.dim), rng) {}

sparse::ScoringRecipe SpComplEx::recipe() const { return triplets_recipe(); }

autograd::Variable SpComplEx::forward(const sparse::CompiledBatch& batch) {
  return autograd::scale(
      autograd::complex_score(ent_rel_.var(), batch.shared_triplets(),
                              num_entities_),
      -1.0f);
}

std::vector<float> SpComplEx::score(std::span<const Triplet> batch) const {
  const Matrix& e = ent_rel_.weights();
  const index_t dc = e.cols() / 2;
  std::vector<float> out(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Triplet& t = batch[i];
    const float* h = e.row(t.head);
    const float* r = e.row(num_entities_ + t.relation);
    const float* tl = e.row(t.tail);
    float acc = 0.0f;
    for (index_t j = 0; j < dc; ++j) {
      const float hr_re = h[2 * j] * r[2 * j] - h[2 * j + 1] * r[2 * j + 1];
      const float hr_im = h[2 * j] * r[2 * j + 1] + h[2 * j + 1] * r[2 * j];
      acc += hr_re * tl[2 * j] + hr_im * tl[2 * j + 1];
    }
    out[i] = acc;
  }
  return out;
}

std::optional<AnnSupport> SpComplEx::ann_support() const {
  return AnnSupport{&ent_rel_.weights(), kernels::Norm::kL2,
                    /*inner_product=*/true, /*probe_weights=*/nullptr};
}

void SpComplEx::ann_query(bool corrupt_tail, std::int64_t anchor,
                          std::int64_t relation, float* q) const {
  const Matrix& e = ent_rel_.weights();
  const float* a = e.row(anchor);
  const float* r = e.row(num_entities_ + relation);
  const index_t dc = e.cols() / 2;
  for (index_t j = 0; j < dc; ++j) {
    const float are = a[2 * j], aim = a[2 * j + 1];
    const float rre = r[2 * j], rim = r[2 * j + 1];
    if (corrupt_tail) {
      // score(t) = ⟨h⊛r, t⟩ over real 2k-vectors.
      q[2 * j] = are * rre - aim * rim;
      q[2 * j + 1] = are * rim + aim * rre;
    } else {
      // score(h) = ⟨conj(r)⊛t, h⟩: collect h's coefficients from the
      // expanded Re(h·r·conj(t)) sum.
      q[2 * j] = rre * are + rim * aim;
      q[2 * j + 1] = rre * aim - rim * are;
    }
  }
}

std::vector<autograd::Variable> SpComplEx::params() {
  return {ent_rel_.var()};
}

// --------------------------------------------------------------- SpRotatE

SpRotatE::SpRotatE(index_t num_entities, index_t num_relations,
                   const ModelConfig& config, Rng& rng)
    : ScoringCoreModel(num_entities, num_relations, config),
      ent_rel_(num_entities + num_relations, even_dim(config.dim), rng) {}

sparse::ScoringRecipe SpRotatE::recipe() const { return triplets_recipe(); }

autograd::Variable SpRotatE::forward(const sparse::CompiledBatch& batch) {
  // Already a distance (lower = better); no negation needed.
  return autograd::rotate_score(ent_rel_.var(), batch.shared_triplets(),
                                num_entities_);
}

std::vector<float> SpRotatE::score(std::span<const Triplet> batch) const {
  const Matrix& e = ent_rel_.weights();
  const index_t dc = e.cols() / 2;
  std::vector<float> out(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Triplet& t = batch[i];
    const float* h = e.row(t.head);
    const float* r = e.row(num_entities_ + t.relation);
    const float* tl = e.row(t.tail);
    float acc = 0.0f;
    for (index_t j = 0; j < dc; ++j) {
      const float mag =
          std::max(std::sqrt(r[2 * j] * r[2 * j] +
                             r[2 * j + 1] * r[2 * j + 1]),
                   1e-12f);
      const float rre = r[2 * j] / mag, rim = r[2 * j + 1] / mag;
      const float dre = h[2 * j] * rre - h[2 * j + 1] * rim - tl[2 * j];
      const float dim = h[2 * j] * rim + h[2 * j + 1] * rre - tl[2 * j + 1];
      acc += dre * dre + dim * dim;
    }
    out[i] = std::sqrt(acc);
  }
  return out;
}

std::optional<AnnSupport> SpRotatE::ann_support() const {
  return AnnSupport{&ent_rel_.weights(), kernels::Norm::kL2,
                    /*inner_product=*/false, /*probe_weights=*/nullptr};
}

void SpRotatE::ann_query(bool corrupt_tail, std::int64_t anchor,
                         std::int64_t relation, float* q) const {
  const Matrix& e = ent_rel_.weights();
  const float* a = e.row(anchor);
  const float* r = e.row(num_entities_ + relation);
  const index_t dc = e.cols() / 2;
  for (index_t j = 0; j < dc; ++j) {
    // Same normalization (and 1e-12 clamp) as score().
    const float mag = std::max(
        std::sqrt(r[2 * j] * r[2 * j] + r[2 * j + 1] * r[2 * j + 1]), 1e-12f);
    const float rre = r[2 * j] / mag, rim = r[2 * j + 1] / mag;
    const float are = a[2 * j], aim = a[2 * j + 1];
    if (corrupt_tail) {
      // Tails sit near h⊛r̂.
      q[2 * j] = are * rre - aim * rim;
      q[2 * j + 1] = are * rim + aim * rre;
    } else {
      // |h⊛r̂ − t| = |h − conj(r̂)⊛t| for unit r̂: heads sit near conj(r̂)⊛t.
      q[2 * j] = rre * are + rim * aim;
      q[2 * j + 1] = rre * aim - rim * are;
    }
  }
}

std::vector<autograd::Variable> SpRotatE::params() {
  return {ent_rel_.var()};
}

}  // namespace sptx::models
