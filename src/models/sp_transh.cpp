#include "src/models/sp_transh.hpp"

#include <cmath>

#include "src/kernels/fused.hpp"
#include "src/models/sp_transr.hpp"  // build_relation_selection_csr
#include "src/profiling/timer.hpp"
#include "src/sparse/incidence.hpp"

namespace sptx::models {

SpTransH::SpTransH(index_t num_entities, index_t num_relations,
                   const ModelConfig& config, Rng& rng)
    : ScoringCoreModel(num_entities, num_relations, config),
      entities_(num_entities, config.dim, rng),
      normals_(num_relations, config.dim, rng),
      transfers_(num_relations, config.dim, rng) {
  normals_.normalize_rows();  // hyperplane normals start unit-length
}

sparse::ScoringRecipe SpTransH::recipe() const {
  sparse::ScoringRecipe r;
  r.ht = true;
  r.relation_selection = true;
  r.dim = config_.dim;
  return r;
}

autograd::Variable SpTransH::forward(const sparse::CompiledBatch& batch) {
  // One shared (h − t); w and d gathered through the same selection matrix.
  autograd::Variable ht =
      autograd::spmm(batch.ht(), entities_.var(), config_.kernel);
  autograd::Variable w = autograd::spmm(batch.relation_selection(),
                                        normals_.var(), config_.kernel);
  autograd::Variable d = autograd::spmm(batch.relation_selection(),
                                        transfers_.var(), config_.kernel);

  // (h − t) + d_r − (w_rᵀ(h − t)) w_r
  autograd::Variable wdot = autograd::row_dot(w, ht);
  autograd::Variable proj = autograd::scale_rows(wdot, w);
  autograd::Variable expr =
      autograd::sub(autograd::add(ht, d), proj);
  return config_.dissimilarity == Dissimilarity::kL2 ? autograd::row_l2(expr)
                                                     : autograd::row_l1(expr);
}

autograd::Variable SpTransH::fused_forward(const sparse::CompiledBatch& batch) {
  profiling::ScopedHotspot hotspot("kernels::fused_transh");
  const auto triplets = batch.triplets();
  const kernels::Norm norm = fused_norm(config_.dissimilarity);
  Matrix out(batch.size(), 1);
  kernels::transh_forward(triplets, entities_.weights(), normals_.weights(),
                          transfers_.weights(), norm, out.data());
  return autograd::Variable::op(
      std::move(out),
      {entities_.var(), normals_.var(), transfers_.var()},
      [triplets, norm, keep = batch.owned_triplets()](autograd::Node& node) {
        if (!fused_backward_needed(node)) return;
        kernels::transh_backward(
            triplets, node.parents()[0]->value(), node.parents()[1]->value(),
            node.parents()[2]->value(), norm, node.value().data(),
            node.grad().data(), node.parents()[0]->grad(),
            node.parents()[1]->grad(), node.parents()[2]->grad());
      },
      "kernels::fused_transh_backward");
}

std::vector<float> SpTransH::score(std::span<const Triplet> batch) const {
  std::vector<float> out(batch.size());
  if (kernels::fused_enabled()) {
    kernels::transh_forward(batch, entities_.weights(), normals_.weights(),
                            transfers_.weights(),
                            fused_norm(config_.dissimilarity),
                            out.data());
    return out;
  }
  const Matrix& e = entities_.weights();
  const Matrix& wn = normals_.weights();
  const Matrix& dt = transfers_.weights();
  const index_t d = config_.dim;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Triplet& t = batch[i];
    const float* h = e.row(t.head);
    const float* tl = e.row(t.tail);
    const float* w = wn.row(t.relation);
    const float* dr = dt.row(t.relation);
    float wdot = 0.0f;
    for (index_t j = 0; j < d; ++j) wdot += w[j] * (h[j] - tl[j]);
    float acc = 0.0f;
    for (index_t j = 0; j < d; ++j) {
      const float v = (h[j] - tl[j]) + dr[j] - wdot * w[j];
      acc += config_.dissimilarity == Dissimilarity::kL2 ? v * v
                                                         : std::fabs(v);
    }
    out[i] =
        config_.dissimilarity == Dissimilarity::kL2 ? std::sqrt(acc) : acc;
  }
  return out;
}

std::vector<autograd::Variable> SpTransH::params() {
  return {entities_.var(), normals_.var(), transfers_.var()};
}

void SpTransH::post_step() {
  // TransH constraints: unit hyperplane normals always; entity norm cap.
  normals_.normalize_rows();
  if (config_.normalize_entities) entities_.normalize_rows();
}

}  // namespace sptx::models
