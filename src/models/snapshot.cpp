#include "src/models/snapshot.hpp"

#include <atomic>
#include <utility>

namespace sptx::models {

std::unique_ptr<KgeModel> make_model(const ModelSpec& spec,
                                     index_t num_entities,
                                     index_t num_relations) {
  Rng rng(spec.seed);
  if (spec.framework == "sparse")
    return make_sparse_model(spec.family, num_entities, num_relations,
                             spec.config, rng);
  if (spec.framework == "dense")
    return make_dense_model(spec.family, num_entities, num_relations,
                            spec.config, rng);
  throw Error("unknown model framework: " + spec.framework +
              " (expected \"sparse\" or \"dense\")");
}

void copy_parameters(KgeModel& src, KgeModel& dst) {
  auto src_params = src.params();
  auto dst_params = dst.params();
  SPTX_CHECK(src_params.size() == dst_params.size(),
             "parameter count mismatch: " << src_params.size() << " vs "
                                          << dst_params.size());
  for (std::size_t i = 0; i < src_params.size(); ++i) {
    SPTX_CHECK(src_params[i].value().same_shape(dst_params[i].value()),
               "parameter " << i << " shape "
                            << src_params[i].value().shape_str() << " vs "
                            << dst_params[i].value().shape_str());
    dst_params[i].mutable_value() = src_params[i].value();
  }
}

std::uint64_t next_snapshot_version() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

VersionedModel freeze_versioned(KgeModel& src, const ModelSpec& spec) {
  return {next_snapshot_version(), freeze(src, spec)};
}

std::shared_ptr<const KgeModel> freeze(KgeModel& src, const ModelSpec& spec) {
  std::unique_ptr<KgeModel> replica =
      make_model(spec, src.num_entities(), src.num_relations());
  SPTX_CHECK(replica->name() == src.name(),
             "spec builds " << replica->name() << " but the source model is "
                            << src.name() << " — wrong ModelSpec");
  copy_parameters(src, *replica);
  return std::shared_ptr<const KgeModel>(std::move(replica));
}

}  // namespace sptx::models
