// SpTransE — sparse TransE (§4.3).
//
// Entities and relations live in ONE stacked embedding matrix
// E ∈ R^{(N+R)×d} (entities first). A batch's score expression
// h + r − t is a single SpMM with the hrt incidence matrix (§4.2.2);
// the backward pass is one transposed SpMM (Appendix G). The dense
// baseline needs three gathers, two elementwise passes and three
// scatter-adds for the same computation.
#pragma once

#include "src/models/model.hpp"
#include "src/nn/embedding.hpp"

namespace sptx::models {

class SpTransE final : public ScoringCoreModel {
 public:
  SpTransE(index_t num_entities, index_t num_relations,
           const ModelConfig& config, Rng& rng);

  std::string name() const override { return "SpTransE"; }
  sparse::ScoringRecipe recipe() const override;
  autograd::Variable forward(const sparse::CompiledBatch& batch) override;
  autograd::Variable fused_forward(const sparse::CompiledBatch& batch) override;
  std::vector<float> score(std::span<const Triplet> batch) const override;
  std::vector<autograd::Variable> params() override;
  void post_step() override;

  /// Tails rank by ||(h + r) − t||, heads by ||(t − r) − h|| — the exact
  /// score under the config norm — so the probe metric IS the score.
  std::optional<AnnSupport> ann_support() const override;
  void ann_query(bool corrupt_tail, std::int64_t anchor, std::int64_t relation,
                 float* q) const override;

 private:
  nn::EmbeddingTable ent_rel_;  // stacked [entities; relations]
};

}  // namespace sptx::models
