#include "src/models/sp_transe.hpp"

#include <cmath>

#include "src/kernels/fused.hpp"
#include "src/profiling/timer.hpp"
#include "src/sparse/incidence.hpp"

namespace sptx::models {

SpTransE::SpTransE(index_t num_entities, index_t num_relations,
                   const ModelConfig& config, Rng& rng)
    : ScoringCoreModel(num_entities, num_relations, config),
      ent_rel_(num_entities + num_relations, config.dim, rng) {}

sparse::ScoringRecipe SpTransE::recipe() const {
  sparse::ScoringRecipe r;
  r.hrt = true;
  r.dim = config_.dim;
  return r;
}

autograd::Variable SpTransE::forward(const sparse::CompiledBatch& batch) {
  autograd::Variable hrt =
      autograd::spmm(batch.hrt(), ent_rel_.var(), config_.kernel);
  return config_.dissimilarity == Dissimilarity::kL2 ? autograd::row_l2(hrt)
                                                     : autograd::row_l1(hrt);
}

autograd::Variable SpTransE::fused_forward(const sparse::CompiledBatch& batch) {
  profiling::ScopedHotspot hotspot("kernels::fused_transe");
  const auto triplets = batch.triplets();
  const kernels::Norm norm = fused_norm(config_.dissimilarity);
  const index_t n = num_entities_;
  Matrix out(batch.size(), 1);
  kernels::transe_forward(triplets, ent_rel_.weights(), n, norm, out.data());
  return autograd::Variable::op(
      std::move(out), {ent_rel_.var()},
      [triplets, norm, n, keep = batch.owned_triplets()](autograd::Node& node) {
        if (!fused_backward_needed(node)) return;
        kernels::transe_backward(triplets, node.parents()[0]->value(), n, norm,
                                 node.value().data(), node.grad().data(),
                                 node.parents()[0]->grad());
      },
      "kernels::fused_transe_backward");
}

std::vector<float> SpTransE::score(std::span<const Triplet> batch) const {
  std::vector<float> out(batch.size());
  if (kernels::fused_enabled()) {
    kernels::transe_forward(batch, ent_rel_.weights(), num_entities_,
                            fused_norm(config_.dissimilarity), out.data());
    return out;
  }
  const Matrix& e = ent_rel_.weights();
  const index_t d = e.cols();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Triplet& t = batch[i];
    const float* h = e.row(t.head);
    const float* r = e.row(num_entities_ + t.relation);
    const float* tl = e.row(t.tail);
    float acc = 0.0f;
    if (config_.dissimilarity == Dissimilarity::kL2) {
      for (index_t j = 0; j < d; ++j) {
        const float v = h[j] + r[j] - tl[j];
        acc += v * v;
      }
      out[i] = std::sqrt(acc);
    } else {
      for (index_t j = 0; j < d; ++j) acc += std::fabs(h[j] + r[j] - tl[j]);
      out[i] = acc;
    }
  }
  return out;
}

std::optional<AnnSupport> SpTransE::ann_support() const {
  return AnnSupport{&ent_rel_.weights(), fused_norm(config_.dissimilarity),
                    /*inner_product=*/false, /*probe_weights=*/nullptr};
}

void SpTransE::ann_query(bool corrupt_tail, std::int64_t anchor,
                         std::int64_t relation, float* q) const {
  const Matrix& e = ent_rel_.weights();
  const float* a = e.row(anchor);
  const float* r = e.row(num_entities_ + relation);
  const index_t d = e.cols();
  if (corrupt_tail) {
    for (index_t j = 0; j < d; ++j) q[j] = a[j] + r[j];
  } else {
    for (index_t j = 0; j < d; ++j) q[j] = a[j] - r[j];
  }
}

std::vector<autograd::Variable> SpTransE::params() {
  return {ent_rel_.var()};
}

void SpTransE::post_step() {
  if (!config_.normalize_entities) return;
  // Normalise only the entity block; relation translations stay free
  // (the TransE training protocol).
  ent_rel_.normalize_rows_prefix(num_entities_);
}

}  // namespace sptx::models
