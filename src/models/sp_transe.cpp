#include "src/models/sp_transe.hpp"

#include <cmath>

#include "src/sparse/incidence.hpp"

namespace sptx::models {

SpTransE::SpTransE(index_t num_entities, index_t num_relations,
                   const ModelConfig& config, Rng& rng)
    : ScoringCoreModel(num_entities, num_relations, config),
      ent_rel_(num_entities + num_relations, config.dim, rng) {}

sparse::ScoringRecipe SpTransE::recipe() const {
  sparse::ScoringRecipe r;
  r.hrt = true;
  r.dim = config_.dim;
  return r;
}

autograd::Variable SpTransE::forward(const sparse::CompiledBatch& batch) {
  autograd::Variable hrt =
      autograd::spmm(batch.hrt(), ent_rel_.var(), config_.kernel);
  return config_.dissimilarity == Dissimilarity::kL2 ? autograd::row_l2(hrt)
                                                     : autograd::row_l1(hrt);
}

std::vector<float> SpTransE::score(std::span<const Triplet> batch) const {
  const Matrix& e = ent_rel_.weights();
  const index_t d = e.cols();
  std::vector<float> out(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Triplet& t = batch[i];
    const float* h = e.row(t.head);
    const float* r = e.row(num_entities_ + t.relation);
    const float* tl = e.row(t.tail);
    float acc = 0.0f;
    if (config_.dissimilarity == Dissimilarity::kL2) {
      for (index_t j = 0; j < d; ++j) {
        const float v = h[j] + r[j] - tl[j];
        acc += v * v;
      }
      out[i] = std::sqrt(acc);
    } else {
      for (index_t j = 0; j < d; ++j) acc += std::fabs(h[j] + r[j] - tl[j]);
      out[i] = acc;
    }
  }
  return out;
}

std::vector<autograd::Variable> SpTransE::params() {
  return {ent_rel_.var()};
}

void SpTransE::post_step() {
  if (!config_.normalize_entities) return;
  // Normalise only the entity block; relation translations stay free
  // (the TransE training protocol).
  ent_rel_.normalize_rows_prefix(num_entities_);
}

}  // namespace sptx::models
