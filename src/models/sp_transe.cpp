#include "src/models/sp_transe.hpp"

#include <cmath>

#include "src/sparse/incidence.hpp"

namespace sptx::models {

SpTransE::SpTransE(index_t num_entities, index_t num_relations,
                   const ModelConfig& config, Rng& rng)
    : KgeModel(num_entities, num_relations, config),
      ent_rel_(num_entities + num_relations, config.dim, rng) {}

autograd::Variable SpTransE::distance(std::span<const Triplet> batch) {
  auto a = std::make_shared<Csr>(
      build_hrt_incidence_csr(batch, num_entities_, num_relations_));
  autograd::Variable hrt =
      autograd::spmm(std::move(a), ent_rel_.var(), config_.kernel);
  return config_.dissimilarity == Dissimilarity::kL2 ? autograd::row_l2(hrt)
                                                     : autograd::row_l1(hrt);
}

autograd::Variable SpTransE::loss(std::span<const Triplet> pos,
                                  std::span<const Triplet> neg) {
  return ranking_loss(distance(pos), distance(neg), config_);
}

std::vector<float> SpTransE::score(std::span<const Triplet> batch) const {
  const Matrix& e = ent_rel_.weights();
  const index_t d = e.cols();
  std::vector<float> out(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Triplet& t = batch[i];
    const float* h = e.row(t.head);
    const float* r = e.row(num_entities_ + t.relation);
    const float* tl = e.row(t.tail);
    float acc = 0.0f;
    if (config_.dissimilarity == Dissimilarity::kL2) {
      for (index_t j = 0; j < d; ++j) {
        const float v = h[j] + r[j] - tl[j];
        acc += v * v;
      }
      out[i] = std::sqrt(acc);
    } else {
      for (index_t j = 0; j < d; ++j) acc += std::fabs(h[j] + r[j] - tl[j]);
      out[i] = acc;
    }
  }
  return out;
}

std::vector<autograd::Variable> SpTransE::params() {
  return {ent_rel_.var()};
}

void SpTransE::post_step() {
  if (!config_.normalize_entities) return;
  // Normalise only the entity block; relation translations stay free
  // (the TransE training protocol).
  ent_rel_.normalize_rows_prefix(num_entities_);
}

}  // namespace sptx::models
