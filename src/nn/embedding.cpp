#include "src/nn/embedding.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cmath>
#include <cstring>

#include "src/common/error.hpp"
#include "src/runtime/parallel.hpp"
#include "src/common/simd.hpp"

namespace sptx::nn {

EmbeddingTable::EmbeddingTable(index_t rows, index_t dim, Rng& rng) {
  Matrix w(rows, dim);
  w.fill_xavier(rng);
  var_ = autograd::Variable::leaf(std::move(w), /*requires_grad=*/true,
                                  "embedding");
}

EmbeddingTable::EmbeddingTable(Matrix init) {
  var_ = autograd::Variable::leaf(std::move(init), /*requires_grad=*/true,
                                  "embedding");
}

void EmbeddingTable::normalize_rows_prefix(index_t count) {
  SPTX_CHECK(count >= 0 && count <= rows(), "normalize prefix out of range");
  // Runs after every optimizer step over the whole entity block, so it is a
  // per-batch O(N·d) pass: vectorized per row, rows split across threads
  // (each row is touched by exactly one task — no synchronization needed).
  Matrix& w = var_.mutable_value();
  const index_t d = w.cols();
  runtime::parallel_for(
      0, count,
      [&](index_t i) {
        float* row = w.row(i);
        const float sq = simd::squared_norm(row, d);
        if (sq <= 0.0f) return;
        simd::scale(row, d, 1.0f / std::sqrt(sq));
      },
      /*grain=*/1024);
}

// ---- StreamingEmbedding ---------------------------------------------------

StreamingEmbedding::StreamingEmbedding(int fd, float* mapped, index_t rows,
                                       index_t dim)
    : fd_(fd), mapped_(mapped), rows_(rows), dim_(dim) {}

StreamingEmbedding::StreamingEmbedding(StreamingEmbedding&& o) noexcept
    : fd_(o.fd_), mapped_(o.mapped_), rows_(o.rows_), dim_(o.dim_) {
  o.fd_ = -1;
  o.mapped_ = nullptr;
}

StreamingEmbedding StreamingEmbedding::create(const std::string& path,
                                              index_t rows, index_t dim,
                                              Rng& rng) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  SPTX_CHECK(fd >= 0, "cannot create " << path);
  const std::size_t bytes =
      static_cast<std::size_t>(rows) * static_cast<std::size_t>(dim) *
      sizeof(float);
  SPTX_CHECK(::ftruncate(fd, static_cast<off_t>(bytes)) == 0,
             "ftruncate failed for " << path);
  void* mem = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  SPTX_CHECK(mem != MAP_FAILED, "mmap failed for " << path);
  auto* data = static_cast<float*>(mem);
  const float bound = 6.0f / std::sqrt(static_cast<float>(dim));
  for (std::size_t i = 0; i < static_cast<std::size_t>(rows) *
                                  static_cast<std::size_t>(dim);
       ++i) {
    data[i] = rng.uniform(-bound, bound);
  }
  return StreamingEmbedding(fd, data, rows, dim);
}

StreamingEmbedding StreamingEmbedding::open(const std::string& path,
                                            index_t rows, index_t dim) {
  const int fd = ::open(path.c_str(), O_RDWR);
  SPTX_CHECK(fd >= 0, "cannot open " << path);
  const std::size_t bytes =
      static_cast<std::size_t>(rows) * static_cast<std::size_t>(dim) *
      sizeof(float);
  struct stat st {};
  SPTX_CHECK(::fstat(fd, &st) == 0 &&
                 static_cast<std::size_t>(st.st_size) >= bytes,
             "embedding file " << path << " smaller than " << bytes
                               << " bytes");
  void* mem = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  SPTX_CHECK(mem != MAP_FAILED, "mmap failed for " << path);
  return StreamingEmbedding(fd, static_cast<float*>(mem), rows, dim);
}

StreamingEmbedding::~StreamingEmbedding() {
  if (mapped_ != nullptr) {
    ::munmap(mapped_, static_cast<std::size_t>(rows_) *
                          static_cast<std::size_t>(dim_) * sizeof(float));
  }
  if (fd_ >= 0) ::close(fd_);
}

Matrix StreamingEmbedding::load_rows(index_t begin, index_t count) const {
  SPTX_CHECK(begin >= 0 && begin + count <= rows_, "load_rows out of range");
  Matrix out(count, dim_);
  std::memcpy(out.data(), mapped_ + begin * dim_,
              static_cast<std::size_t>(count) *
                  static_cast<std::size_t>(dim_) * sizeof(float));
  return out;
}

void StreamingEmbedding::store_rows(index_t begin, const Matrix& values) {
  SPTX_CHECK(values.cols() == dim_, "store_rows: dim mismatch");
  SPTX_CHECK(begin >= 0 && begin + values.rows() <= rows_,
             "store_rows out of range");
  std::memcpy(mapped_ + begin * dim_, values.data(), values.bytes());
}

void StreamingEmbedding::sync() {
  ::msync(mapped_, static_cast<std::size_t>(rows_) *
                       static_cast<std::size_t>(dim_) * sizeof(float),
          MS_SYNC);
}

}  // namespace sptx::nn
