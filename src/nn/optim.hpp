// Optimizers and learning-rate schedulers.
//
// The paper trains with a fixed learning rate (0.0004, §5.3) and, for the
// accuracy study of Appendix E, a learning-rate scheduler. SGD covers the
// timing experiments; Adagrad is provided because per-coordinate scaling is
// the standard choice for sparse-gradient embedding training, and a
// StepLR / CosineLR pair covers the scheduler runs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/autograd/variable.hpp"

namespace sptx::nn {

/// Interface over a set of parameters (autograd leaf Variables).
class Optimizer {
 public:
  explicit Optimizer(std::vector<autograd::Variable> params, float lr)
      : params_(std::move(params)), lr_(lr) {}
  virtual ~Optimizer() = default;

  /// Apply one update from the accumulated gradients.
  virtual void step() = 0;

  /// Stable identifier for checkpointing ("sgd", "adagrad").
  virtual std::string kind() const = 0;

  /// Per-parameter slot state (momentum velocity, Adagrad accumulators) for
  /// checkpointing. May be empty when slots are lazily allocated and no
  /// step has run yet.
  virtual std::vector<Matrix> export_state() const { return {}; }

  /// Restore slot state captured by export_state on an identically
  /// configured optimizer. Throws Error{kCorruptCheckpoint} on a
  /// shape/count mismatch.
  virtual void import_state(std::vector<Matrix> state) = 0;

  /// Clear gradients (call between batches).
  void zero_grad() {
    for (auto& p : params_) p.zero_grad();
  }

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }
  /// Decoupled L2 weight decay applied before the gradient step
  /// (w ← (1 − lr·λ)·w), 0 disables.
  void set_weight_decay(float lambda) { weight_decay_ = lambda; }
  /// Global gradient-norm clip across all parameters, 0 disables.
  void set_grad_clip_norm(float max_norm) { grad_clip_norm_ = max_norm; }
  const std::vector<autograd::Variable>& params() const { return params_; }

 protected:
  /// Weight decay + clipping, called by concrete steps before the update.
  void apply_constraints();

  std::vector<autograd::Variable> params_;
  float lr_;
  float weight_decay_ = 0.0f;
  float grad_clip_norm_ = 0.0f;
};

/// Plain SGD: w ← w − lr · g (optional classical momentum).
class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<autograd::Variable> params, float lr, float momentum = 0.0f);
  void step() override;
  std::string kind() const override { return "sgd"; }
  std::vector<Matrix> export_state() const override { return velocity_; }
  void import_state(std::vector<Matrix> state) override;

 private:
  float momentum_;
  std::vector<Matrix> velocity_;  // allocated lazily when momentum > 0
};

/// Adagrad: w ← w − lr · g / (√G + ε), G accumulating squared gradients.
class Adagrad final : public Optimizer {
 public:
  Adagrad(std::vector<autograd::Variable> params, float lr,
          float eps = 1e-10f);
  void step() override;
  std::string kind() const override { return "adagrad"; }
  std::vector<Matrix> export_state() const override { return accum_; }
  void import_state(std::vector<Matrix> state) override;

 private:
  float eps_;
  std::vector<Matrix> accum_;
};

/// Multiplies the optimizer lr by `gamma` every `step_size` epochs.
class StepLr {
 public:
  StepLr(Optimizer& opt, int step_size, float gamma)
      : opt_(opt), base_lr_(opt.lr()), step_size_(step_size), gamma_(gamma) {}
  void on_epoch(int epoch);

 private:
  Optimizer& opt_;
  float base_lr_;
  int step_size_;
  float gamma_;
};

/// Cosine annealing from the base lr to `min_lr` over `total_epochs`.
class CosineLr {
 public:
  CosineLr(Optimizer& opt, int total_epochs, float min_lr = 0.0f)
      : opt_(opt),
        base_lr_(opt.lr()),
        total_epochs_(total_epochs),
        min_lr_(min_lr) {}
  void on_epoch(int epoch);

 private:
  Optimizer& opt_;
  float base_lr_;
  int total_epochs_;
  float min_lr_;
};

}  // namespace sptx::nn
