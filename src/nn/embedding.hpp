// Embedding tables.
//
// EmbeddingTable is the learnable parameter store: a Variable over an
// (rows × dim) matrix with Xavier init (TransE's published initialisation).
// StreamingEmbedding reproduces §4.7.1's memory-mapped tensor support:
// embeddings that do not fit in RAM live in a disk file and are mapped
// read/write, so training touches only the pages a batch needs. Both expose
// the same Variable so models are agnostic to the storage.
#pragma once

#include <string>

#include "src/autograd/variable.hpp"
#include "src/common/rng.hpp"

namespace sptx::nn {

class EmbeddingTable {
 public:
  EmbeddingTable(index_t rows, index_t dim, Rng& rng);
  /// Initialise with explicit values (e.g. pre-trained LLM embeddings).
  EmbeddingTable(Matrix init);

  autograd::Variable& var() { return var_; }
  const autograd::Variable& var() const { return var_; }
  const Matrix& weights() const { return var_.value(); }
  Matrix& mutable_weights() { return var_.mutable_value(); }
  index_t rows() const { return var_.rows(); }
  index_t dim() const { return var_.cols(); }

  /// L2-normalise every row in place (TransE normalises entities per batch).
  void normalize_rows() { var_.mutable_value().normalize_rows_l2_(); }

  /// L2-normalise only the first `count` rows — for the stacked
  /// [entities; relations] layout where relation translations stay free.
  void normalize_rows_prefix(index_t count);

 private:
  autograd::Variable var_;
};

/// Disk-backed embedding matrix accessed through mmap. Creating with
/// `create` builds (and Xavier-initialises) the backing file; `open` maps an
/// existing one. The mapped region is wrapped in a non-owning Matrix view
/// surfaced as a Variable, so gradients stay in RAM while weights stream
/// from disk — the paper's large-LLM-embedding training mode.
class StreamingEmbedding {
 public:
  static StreamingEmbedding create(const std::string& path, index_t rows,
                                   index_t dim, Rng& rng);
  static StreamingEmbedding open(const std::string& path, index_t rows,
                                 index_t dim);
  ~StreamingEmbedding();

  StreamingEmbedding(StreamingEmbedding&&) noexcept;
  StreamingEmbedding& operator=(StreamingEmbedding&&) = delete;
  StreamingEmbedding(const StreamingEmbedding&) = delete;
  StreamingEmbedding& operator=(const StreamingEmbedding&) = delete;

  index_t rows() const { return rows_; }
  index_t dim() const { return dim_; }
  float* data() { return mapped_; }

  /// Copy a row range into a dense in-RAM matrix (batch staging).
  Matrix load_rows(index_t begin, index_t count) const;
  /// Write a dense matrix back to a row range (after an optimizer step).
  void store_rows(index_t begin, const Matrix& values);
  /// Flush dirty pages to disk.
  void sync();

 private:
  StreamingEmbedding(int fd, float* mapped, index_t rows, index_t dim);

  int fd_ = -1;
  float* mapped_ = nullptr;
  index_t rows_ = 0;
  index_t dim_ = 0;
};

}  // namespace sptx::nn
