#include "src/nn/optim.hpp"

#include <cmath>

#include "src/common/error.hpp"
#include "src/profiling/flops.hpp"

namespace sptx::nn {

namespace {

/// Shared import validation: state must be empty (no slots yet) or one
/// matrix per parameter with matching shapes.
void check_slot_state(const std::vector<autograd::Variable>& params,
                      const std::vector<Matrix>& state, const char* kind) {
  if (state.empty()) return;
  SPTX_CHECK_CODE(state.size() == params.size(), ErrorCode::kCorruptCheckpoint,
                  kind << " state has " << state.size() << " slots, model has "
                       << params.size() << " parameters");
  for (std::size_t i = 0; i < params.size(); ++i)
    SPTX_CHECK_CODE(state[i].same_shape(params[i].value()),
                    ErrorCode::kCorruptCheckpoint,
                    kind << " slot " << i << " shape " << state[i].shape_str()
                         << " vs parameter " << params[i].value().shape_str());
}

}  // namespace

void Optimizer::apply_constraints() {
  if (grad_clip_norm_ > 0.0f) {
    double sq = 0.0;
    for (auto& p : params_) {
      if (p.has_grad()) sq += static_cast<double>(p.grad().squared_norm());
    }
    const double norm = std::sqrt(sq);
    if (norm > grad_clip_norm_) {
      const float scale = grad_clip_norm_ / static_cast<float>(norm);
      for (auto& p : params_) {
        if (p.has_grad()) p.grad().scale_(scale);
      }
    }
  }
  if (weight_decay_ > 0.0f) {
    const float shrink = 1.0f - lr_ * weight_decay_;
    for (auto& p : params_) p.mutable_value().scale_(shrink);
  }
}

Sgd::Sgd(std::vector<autograd::Variable> params, float lr, float momentum)
    : Optimizer(std::move(params), lr), momentum_(momentum) {}

void Sgd::step() {
  apply_constraints();
  if (momentum_ > 0.0f && velocity_.empty()) {
    velocity_.reserve(params_.size());
    for (auto& p : params_)
      velocity_.emplace_back(p.value().rows(), p.value().cols());
  }
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.has_grad()) continue;
    if (momentum_ > 0.0f) {
      Matrix& v = velocity_[i];
      v.scale_(momentum_);
      v.axpy_(1.0f, p.grad());
      p.mutable_value().axpy_(-lr_, v);
    } else {
      p.mutable_value().axpy_(-lr_, p.grad());
    }
  }
}

void Sgd::import_state(std::vector<Matrix> state) {
  check_slot_state(params_, state, "sgd");
  velocity_ = std::move(state);
}

Adagrad::Adagrad(std::vector<autograd::Variable> params, float lr, float eps)
    : Optimizer(std::move(params), lr), eps_(eps) {
  accum_.reserve(params_.size());
  for (auto& p : params_)
    accum_.emplace_back(p.value().rows(), p.value().cols());
}

void Adagrad::step() {
  apply_constraints();
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.has_grad()) continue;
    const Matrix& g = p.grad();
    Matrix& acc = accum_[i];
    Matrix& w = p.mutable_value();
    profiling::count_flops(5 * g.size());
    for (index_t k = 0; k < g.size(); ++k) {
      const float gk = g.data()[k];
      acc.data()[k] += gk * gk;
      w.data()[k] -= lr_ * gk / (std::sqrt(acc.data()[k]) + eps_);
    }
  }
}

void Adagrad::import_state(std::vector<Matrix> state) {
  check_slot_state(params_, state, "adagrad");
  // Adagrad allocates its accumulators eagerly, so empty state (a
  // checkpoint taken before any step) keeps the zero-initialised slots.
  if (!state.empty()) accum_ = std::move(state);
}

void StepLr::on_epoch(int epoch) {
  const int decays = step_size_ > 0 ? epoch / step_size_ : 0;
  opt_.set_lr(base_lr_ * std::pow(gamma_, static_cast<float>(decays)));
}

void CosineLr::on_epoch(int epoch) {
  if (total_epochs_ <= 1) return;
  const float t = static_cast<float>(epoch) /
                  static_cast<float>(total_epochs_ - 1);
  const float cos_term = 0.5f * (1.0f + std::cos(3.14159265358979f * t));
  opt_.set_lr(min_lr_ + (base_lr_ - min_lr_) * cos_term);
}

}  // namespace sptx::nn
