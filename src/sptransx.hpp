// Umbrella header: the SparseTransX public API in one include.
//
//   #include "src/sptransx.hpp"
//
// Pulls in the dataset tooling, model factories, trainer, evaluators,
// checkpointing, and the profiling utilities most programs want. The
// sub-headers remain individually includable for finer control.
#pragma once

#include "src/api/engine.hpp"
#include "src/common/rng.hpp"
#include "src/common/runtime_config.hpp"
#include "src/eval/classification.hpp"
#include "src/eval/link_prediction.hpp"
#include "src/kg/dataset.hpp"
#include "src/kg/negative_sampler.hpp"
#include "src/kg/streaming_store.hpp"
#include "src/kg/synthetic.hpp"
#include "src/models/checkpoint.hpp"
#include "src/models/model.hpp"
#include "src/models/snapshot.hpp"
#include "src/serve/session.hpp"
#include "src/nn/embedding.hpp"
#include "src/nn/optim.hpp"
#include "src/profiling/flops.hpp"
#include "src/profiling/timer.hpp"
#include "src/tensor/memory_tracker.hpp"
#include "src/tensor/serialize.hpp"
#include "src/tensor/workspace.hpp"
#include "src/train/trainer.hpp"
