// Fused forward+backward scoring kernels — the autograd-bypass layer.
//
// The Figure-2 hotspot profile shows that after the SpMM engine, the
// dominant CPU cost in every translation family is the chain of small
// unfused autograd ops (add/sub backward, relation_project, the torus
// dissimilarity): each node materialises an M×d intermediate and performs
// its own gradient pass. These kernels collapse the whole score expression
// of one family into a single pass — gather h, r, t rows straight from the
// embedding tables, translate/project in registers, reduce to the L1/L2 (or
// torus) score — and a matching single-pass backward that scatters
// gradients directly into the parameter tables (no add_backward /
// sub_backward / embedding_backward_scatter nodes, no intermediate Matrix
// allocations; the only scratch is a Workspace-pooled row buffer).
//
// Everything is AVX2/FMA with a scalar fallback, dispatched at runtime per
// batch via the same cpuid probe as the SpMM engine (cpu_features.hpp;
// SPTX_NO_SIMD forces scalar). The models layer wires these in behind the
// SPTX_FUSED registry knob: `off` keeps the legacy autograd graph (bit
// identical to the historical path), `auto`/`on` use the fused kernels for
// every family that provides them.
//
// Numerical contract: identical formulas and epsilons as the autograd ops
// they replace (row_l2's 1e-12 denominator clamp, the sign(0) = 0
// convention of row_l1, the torus wraparound derivative). SIMD accumulation
// reorders additions, so fused-vs-autograd agreement is within FP tolerance
// (asserted by tests/test_fused_kernels.cpp), not bit-exact.
//
// Lifetime contract: backward passes re-read the triplets, so the storage
// backing the `batch` span must outlive backward(). Every library caller
// satisfies this (compiled plans are held across the backward; the
// trainer's staged buffers live for the batch), and the models layer
// additionally keeps plan-owned triplet vectors alive by capturing their
// shared_ptr in the autograd node.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "src/common/runtime_config.hpp"
#include "src/kg/triplet.hpp"
#include "src/sparse/plan_cache.hpp"
#include "src/tensor/matrix.hpp"

namespace sptx::kernels {

/// Dissimilarity tail of the score expression. Mirrors
/// models::Dissimilarity without depending on the models layer.
enum class Norm { kL1, kL2 };

/// SPTX_FUSED resolution against the process-wide snapshot (one
/// pre-resolved field read, RuntimeConfig::hot()): `off` disables the fused
/// layer, `auto`/`on` enable it wherever a family provides kernels (the
/// semiring families are already single fused autograd ops, so they are
/// unaffected either way).
bool fused_enabled();

// ---- ANN candidate re-rank -------------------------------------------------

/// Exact scorer for one cache-resident block of staged candidate triplets:
/// writes block.size() scores into the output pointer. Typically a
/// KgeModel::score wrapper (the kernels layer cannot depend on models).
using ScoreBlockFn = std::function<void(std::span<const Triplet>, float*)>;

/// Batched exact re-rank of an ANN candidate set: stages the candidate
/// triplets — (anchor, relation, candidates[i]) when `corrupt_tail`,
/// (candidates[i], relation, anchor) otherwise — in fixed-size stack blocks
/// and streams them through `score_block`, writing scores[i] for
/// candidates[i]. Because every family's score() is element-pure per row,
/// the result is bit-identical to scoring the full N-entity candidate batch
/// and gathering the same rows, without ever materializing it.
void rerank_candidates(bool corrupt_tail, std::int64_t anchor,
                       std::int64_t relation,
                       std::span<const index_t> candidates,
                       const ScoreBlockFn& score_block, float* scores);

// ---- Stacked-table families ------------------------------------------------
// table is the [entities; relations] stack ((N+R) × d, relations offset by
// `num_entities`). scores/gscores are M-length contiguous columns. Backward
// accumulates (+=) into the gradient tables, exactly like the autograd path.

/// TransE: scores[i] = ||h + r − t||₁ or ₂.
void transe_forward(std::span<const Triplet> batch, const Matrix& table,
                    index_t num_entities, Norm norm, float* scores);
void transe_backward(std::span<const Triplet> batch, const Matrix& table,
                     index_t num_entities, Norm norm, const float* scores,
                     const float* gscores, Matrix& dtable);

/// TransC: scores[i] = ||h + r − t||₂² (no square root).
void transc_forward(std::span<const Triplet> batch, const Matrix& table,
                    index_t num_entities, float* scores);
void transc_backward(std::span<const Triplet> batch, const Matrix& table,
                     index_t num_entities, const float* gscores,
                     Matrix& dtable);

/// TorusE: scores[i] = Σ_j m_ij (L1) or Σ_j m_ij² (L2) with the wraparound
/// component distance m = min(frac(v), 1 − frac(v)).
void toruse_forward(std::span<const Triplet> batch, const Matrix& table,
                    index_t num_entities, Norm norm, float* scores);
void toruse_backward(std::span<const Triplet> batch, const Matrix& table,
                     index_t num_entities, Norm norm, const float* gscores,
                     Matrix& dtable);

/// TransA (diagonal metric): scores[i] = Σ_j w_rj · (h + r − t)_j².
void transa_forward(std::span<const Triplet> batch, const Matrix& table,
                    const Matrix& metric, index_t num_entities, float* scores);
void transa_backward(std::span<const Triplet> batch, const Matrix& table,
                     const Matrix& metric, index_t num_entities,
                     const float* gscores, Matrix& dtable, Matrix& dmetric);

/// TransM: scores[i] = w_r · ||h + r − t||.
void transm_forward(std::span<const Triplet> batch, const Matrix& table,
                    const Matrix& rel_weight, index_t num_entities, Norm norm,
                    float* scores);
void transm_backward(std::span<const Triplet> batch, const Matrix& table,
                     const Matrix& rel_weight, index_t num_entities, Norm norm,
                     const float* gscores, Matrix& dtable, Matrix& dweight);

// ---- Separate-table families ----------------------------------------------

/// TransH: scores[i] = ||(h − t) + d_r − (w_rᵀ(h − t)) w_r||.
void transh_forward(std::span<const Triplet> batch, const Matrix& entities,
                    const Matrix& normals, const Matrix& transfers, Norm norm,
                    float* scores);
void transh_backward(std::span<const Triplet> batch, const Matrix& entities,
                     const Matrix& normals, const Matrix& transfers, Norm norm,
                     const float* scores, const float* gscores,
                     Matrix& dentities, Matrix& dnormals, Matrix& dtransfers);

/// TransD: scores[i] = ||(h − t) + r + (h_pᵀh − t_pᵀt) r_p||.
void transd_forward(std::span<const Triplet> batch, const Matrix& entities,
                    const Matrix& entity_proj, const Matrix& relations,
                    const Matrix& relation_proj, Norm norm, float* scores);
void transd_backward(std::span<const Triplet> batch, const Matrix& entities,
                     const Matrix& entity_proj, const Matrix& relations,
                     const Matrix& relation_proj, Norm norm,
                     const float* scores, const float* gscores,
                     Matrix& dentities, Matrix& dentity_proj,
                     Matrix& drelations, Matrix& drelation_proj);

// ---- TransR: relation-grouped blocked batched-GEMM -------------------------
// projections stacks R (d_r × d) blocks; scores[i] = ||M_r (h − t) + r||.
// When `groups` (built once per CompiledBatch, cached with the plan) is
// non-null the rows are processed relation-by-relation so each M_r panel
// stays cache-resident, with rows packed four at a time into a diff panel
// that the GEMM micro-kernel consumes (4× reuse of every M_r / dM_r cache
// line). Null groups fall back to batch order (the span-only score path).
//
// `expr_stash` (M × d_r) stores the pre-norm expression for the backward
// pass; pass nullptr on score-only calls to skip the store.
void transr_forward(const sparse::RelationGroups* groups,
                    std::span<const Triplet> batch, const Matrix& entities,
                    const Matrix& relations, const Matrix& projections,
                    index_t rel_dim, Norm norm, float* scores,
                    Matrix* expr_stash);
void transr_backward(const sparse::RelationGroups* groups,
                     std::span<const Triplet> batch, const Matrix& entities,
                     const Matrix& relations, const Matrix& projections,
                     index_t rel_dim, Norm norm, const Matrix& expr_stash,
                     const float* scores, const float* gscores,
                     Matrix& dentities, Matrix& drelations,
                     Matrix& dprojections);

}  // namespace sptx::kernels
