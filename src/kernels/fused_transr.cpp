// Fused TransR: relation-grouped blocked batched-GEMM.
//
// TransR's score ||M_r (h − t) + r|| is the one translation family whose
// hot loop is compute-bound (Figure 2: relation_project + its backward are
// 95% of the profile): every batch row multiplies a (d_r × d) projection
// panel. The autograd path walks rows in batch order, so with randomly
// ordered relations every row faults a different ~16–64 KB M_r panel
// through the cache, and the backward repeats the walk twice (dM outer
// products, dx back-projection).
//
// This kernel executes the batch relation-by-relation (the RelationGroups
// ordering built once per CompiledBatch and cached with the plan), packs
// the (h − t) difference vectors of up to four rows into a contiguous
// panel, and runs a 4-row GEMM micro-kernel against the B-panel M_r: every
// M_r (and, in backward, dM_r) cache line is loaded once per four rows
// instead of once per row, and the rank-4 dM update performs four FMAs per
// load/store pair. The pre-norm expression rows are stashed (Workspace-
// pooled M × d_r matrix) so the backward never re-runs the forward GEMM.
#include <algorithm>
#include <cmath>

#include "src/common/cpu_features.hpp"
#include "src/common/simd.hpp"
#include "src/kernels/fused.hpp"
#include "src/profiling/flops.hpp"

namespace sptx::kernels {

namespace {

constexpr float kNormEps = 1e-12f;
constexpr index_t kPanelRows = 4;  // GEMM micro-kernel height

// ---- scalar micro-kernels -------------------------------------------------

/// out[p] = Σ_q M[p,q] · x[q] for one row.
inline void matvec_s(const float* m, const float* x, float* out, index_t dr,
                     index_t de) {
  for (index_t p = 0; p < dr; ++p) {
    const float* mrow = m + p * de;
    float acc = 0.0f;
    for (index_t q = 0; q < de; ++q) acc += mrow[q] * x[q];
    out[p] = acc;
  }
}

/// Four rows against one B-panel: e_b[p] = Σ_q M[p,q] · x_b[q].
inline void panel4_matvec_s(const float* m, const float* const x[kPanelRows],
                            float* const e[kPanelRows], index_t dr,
                            index_t de) {
  for (index_t p = 0; p < dr; ++p) {
    const float* mrow = m + p * de;
    float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
    for (index_t q = 0; q < de; ++q) {
      const float mv = mrow[q];
      acc0 += mv * x[0][q];
      acc1 += mv * x[1][q];
      acc2 += mv * x[2][q];
      acc3 += mv * x[3][q];
    }
    e[0][p] = acc0;
    e[1][p] = acc1;
    e[2][p] = acc2;
    e[3][p] = acc3;
  }
}

/// Rank-4 update of one dM row: y += Σ_b c_b · x_b.
inline void rank4_axpy_s(float* y, const float* const x[kPanelRows],
                         const float c[kPanelRows], index_t de) {
  for (index_t q = 0; q < de; ++q) {
    y[q] += c[0] * x[0][q] + c[1] * x[1][q] + c[2] * x[2][q] + c[3] * x[3][q];
  }
}

/// Back-projection of one M row into four dx rows: dx_b += c_b · m.
inline void dx4_accum_s(float* const dx[kPanelRows], const float* m,
                        const float c[kPanelRows], index_t de) {
  for (index_t q = 0; q < de; ++q) {
    const float mv = m[q];
    dx[0][q] += c[0] * mv;
    dx[1][q] += c[1] * mv;
    dx[2][q] += c[2] * mv;
    dx[3][q] += c[3] * mv;
  }
}

inline void diff_into_s(const float* h, const float* t, float* x, index_t d) {
  for (index_t j = 0; j < d; ++j) x[j] = h[j] - t[j];
}

// ---- AVX2/FMA micro-kernels -----------------------------------------------

#ifdef SPTX_SIMD_X86

SPTX_TARGET_AVX2 inline void matvec_v(const float* m, const float* x,
                                      float* out, index_t dr, index_t de) {
  for (index_t p = 0; p < dr; ++p) {
    const float* mrow = m + p * de;
    __m256 acc = _mm256_setzero_ps();
    index_t q = 0;
    for (; q + 8 <= de; q += 8) {
      acc = _mm256_fmadd_ps(_mm256_loadu_ps(mrow + q),
                            _mm256_loadu_ps(x + q), acc);
    }
    float v = simd::detail::hsum(acc);
    for (; q < de; ++q) v += mrow[q] * x[q];
    out[p] = v;
  }
}

SPTX_TARGET_AVX2 inline void panel4_matvec_v(const float* m,
                                             const float* const x[kPanelRows],
                                             float* const e[kPanelRows],
                                             index_t dr, index_t de) {
  for (index_t p = 0; p < dr; ++p) {
    const float* mrow = m + p * de;
    __m256 a0 = _mm256_setzero_ps();
    __m256 a1 = _mm256_setzero_ps();
    __m256 a2 = _mm256_setzero_ps();
    __m256 a3 = _mm256_setzero_ps();
    index_t q = 0;
    for (; q + 8 <= de; q += 8) {
      const __m256 mv = _mm256_loadu_ps(mrow + q);
      a0 = _mm256_fmadd_ps(mv, _mm256_loadu_ps(x[0] + q), a0);
      a1 = _mm256_fmadd_ps(mv, _mm256_loadu_ps(x[1] + q), a1);
      a2 = _mm256_fmadd_ps(mv, _mm256_loadu_ps(x[2] + q), a2);
      a3 = _mm256_fmadd_ps(mv, _mm256_loadu_ps(x[3] + q), a3);
    }
    float v0 = simd::detail::hsum(a0);
    float v1 = simd::detail::hsum(a1);
    float v2 = simd::detail::hsum(a2);
    float v3 = simd::detail::hsum(a3);
    for (; q < de; ++q) {
      const float mv = mrow[q];
      v0 += mv * x[0][q];
      v1 += mv * x[1][q];
      v2 += mv * x[2][q];
      v3 += mv * x[3][q];
    }
    e[0][p] = v0;
    e[1][p] = v1;
    e[2][p] = v2;
    e[3][p] = v3;
  }
}

SPTX_TARGET_AVX2 inline void rank4_axpy_v(float* y,
                                          const float* const x[kPanelRows],
                                          const float c[kPanelRows],
                                          index_t de) {
  const __m256 c0 = _mm256_set1_ps(c[0]);
  const __m256 c1 = _mm256_set1_ps(c[1]);
  const __m256 c2 = _mm256_set1_ps(c[2]);
  const __m256 c3 = _mm256_set1_ps(c[3]);
  index_t q = 0;
  for (; q + 8 <= de; q += 8) {
    __m256 acc = _mm256_loadu_ps(y + q);
    acc = _mm256_fmadd_ps(c0, _mm256_loadu_ps(x[0] + q), acc);
    acc = _mm256_fmadd_ps(c1, _mm256_loadu_ps(x[1] + q), acc);
    acc = _mm256_fmadd_ps(c2, _mm256_loadu_ps(x[2] + q), acc);
    acc = _mm256_fmadd_ps(c3, _mm256_loadu_ps(x[3] + q), acc);
    _mm256_storeu_ps(y + q, acc);
  }
  for (; q < de; ++q) {
    y[q] += c[0] * x[0][q] + c[1] * x[1][q] + c[2] * x[2][q] + c[3] * x[3][q];
  }
}

SPTX_TARGET_AVX2 inline void dx4_accum_v(float* const dx[kPanelRows],
                                         const float* m,
                                         const float c[kPanelRows],
                                         index_t de) {
  const __m256 c0 = _mm256_set1_ps(c[0]);
  const __m256 c1 = _mm256_set1_ps(c[1]);
  const __m256 c2 = _mm256_set1_ps(c[2]);
  const __m256 c3 = _mm256_set1_ps(c[3]);
  index_t q = 0;
  for (; q + 8 <= de; q += 8) {
    const __m256 mv = _mm256_loadu_ps(m + q);
    _mm256_storeu_ps(dx[0] + q,
                     _mm256_fmadd_ps(c0, mv, _mm256_loadu_ps(dx[0] + q)));
    _mm256_storeu_ps(dx[1] + q,
                     _mm256_fmadd_ps(c1, mv, _mm256_loadu_ps(dx[1] + q)));
    _mm256_storeu_ps(dx[2] + q,
                     _mm256_fmadd_ps(c2, mv, _mm256_loadu_ps(dx[2] + q)));
    _mm256_storeu_ps(dx[3] + q,
                     _mm256_fmadd_ps(c3, mv, _mm256_loadu_ps(dx[3] + q)));
  }
  for (; q < de; ++q) {
    const float mv = m[q];
    dx[0][q] += c[0] * mv;
    dx[1][q] += c[1] * mv;
    dx[2][q] += c[2] * mv;
    dx[3][q] += c[3] * mv;
  }
}

SPTX_TARGET_AVX2 inline void diff_into_v(const float* h, const float* t,
                                         float* x, index_t d) {
  index_t j = 0;
  for (; j + 8 <= d; j += 8) {
    _mm256_storeu_ps(
        x + j, _mm256_sub_ps(_mm256_loadu_ps(h + j), _mm256_loadu_ps(t + j)));
  }
  for (; j < d; ++j) x[j] = h[j] - t[j];
}

#endif  // SPTX_SIMD_X86

// ---- dispatch wrappers ----------------------------------------------------

inline void matvec(const float* m, const float* x, float* out, index_t dr,
                   index_t de, bool simd) {
#ifdef SPTX_SIMD_X86
  if (simd) return matvec_v(m, x, out, dr, de);
#else
  (void)simd;
#endif
  matvec_s(m, x, out, dr, de);
}

inline void panel4_matvec(const float* m, const float* const x[kPanelRows],
                          float* const e[kPanelRows], index_t dr, index_t de,
                          bool simd) {
#ifdef SPTX_SIMD_X86
  if (simd) return panel4_matvec_v(m, x, e, dr, de);
#else
  (void)simd;
#endif
  panel4_matvec_s(m, x, e, dr, de);
}

inline void rank4_axpy(float* y, const float* const x[kPanelRows],
                       const float c[kPanelRows], index_t de, bool simd) {
#ifdef SPTX_SIMD_X86
  if (simd) return rank4_axpy_v(y, x, c, de);
#else
  (void)simd;
#endif
  rank4_axpy_s(y, x, c, de);
}

inline void dx4_accum(float* const dx[kPanelRows], const float* m,
                      const float c[kPanelRows], index_t de, bool simd) {
#ifdef SPTX_SIMD_X86
  if (simd) return dx4_accum_v(dx, m, c, de);
#else
  (void)simd;
#endif
  dx4_accum_s(dx, m, c, de);
}

inline void diff_into(const float* h, const float* t, float* x, index_t d,
                      bool simd) {
#ifdef SPTX_SIMD_X86
  if (simd) return diff_into_v(h, t, x, d);
#else
  (void)simd;
#endif
  diff_into_s(h, t, x, d);
}

inline float norm_of(const float* e, index_t d, Norm norm, bool simd) {
  if (norm == Norm::kL2) {
#ifdef SPTX_SIMD_X86
    if (simd) return std::sqrt(simd::detail::sqnorm_avx2(e, d));
#endif
    return std::sqrt(simd::detail::sqnorm_scalar(e, d));
  }
  float acc = 0.0f;
#ifdef SPTX_SIMD_X86
  if (simd) {
    // Reuse the scalar loop for the short d_r tail; L1 TransR is rare.
    for (index_t j = 0; j < d; ++j) acc += std::fabs(e[j]);
    return acc;
  }
#endif
  for (index_t j = 0; j < d; ++j) acc += std::fabs(e[j]);
  return acc;
}

/// du_b[p] from the stashed expression row (L2: s·e, L1: g·sign(e)).
inline void du_from_expr(const float* e, float* du, index_t dr, Norm norm,
                         float score, float g) {
  if (norm == Norm::kL2) {
    const float s = g / std::max(score, kNormEps);
    for (index_t p = 0; p < dr; ++p) du[p] = s * e[p];
  } else {
    for (index_t p = 0; p < dr; ++p)
      du[p] = e[p] > 0.0f ? g : e[p] < 0.0f ? -g : 0.0f;
  }
}

}  // namespace

void transr_forward(const sparse::RelationGroups* groups,
                    std::span<const Triplet> batch, const Matrix& entities,
                    const Matrix& relations, const Matrix& projections,
                    index_t rel_dim, Norm norm, float* scores,
                    Matrix* expr_stash) {
  const index_t de = entities.cols();
  const index_t dr = rel_dim;
  const bool simd = simd_enabled();
  Matrix xpanel(kPanelRows, de);  // packed (h − t) diffs, Workspace-pooled
  Matrix epanel(kPanelRows, dr);  // expression rows when there is no stash

  const auto run_block = [&](const index_t* rows, index_t count,
                             index_t rel) {
    const float* mr = projections.row(rel * dr);
    const float* rrow = relations.row(rel);
    const float* x[kPanelRows];
    float* e[kPanelRows];
    for (index_t b = 0; b < count; ++b) {
      const index_t i = rows[b];
      const Triplet& t = batch[static_cast<std::size_t>(i)];
      float* xb = xpanel.row(b);
      diff_into(entities.row(t.head), entities.row(t.tail), xb, de, simd);
      x[b] = xb;
      e[b] = expr_stash ? expr_stash->row(i) : epanel.row(b);
    }
    if (count == kPanelRows) {
      panel4_matvec(mr, x, e, dr, de, simd);
    } else {
      for (index_t b = 0; b < count; ++b) matvec(mr, x[b], e[b], dr, de, simd);
    }
    for (index_t b = 0; b < count; ++b) {
      simd::add(e[b], rrow, dr);  // + r
      scores[rows[b]] = norm_of(e[b], dr, norm, simd);
    }
  };

  if (groups != nullptr) {
    for (std::size_t k = 0; k < groups->rels.size(); ++k) {
      const index_t begin = groups->offsets[k];
      const index_t end = groups->offsets[k + 1];
      const index_t rel = groups->rels[k];
      for (index_t at = begin; at < end; at += kPanelRows) {
        run_block(groups->order.data() + at,
                  std::min<index_t>(kPanelRows, end - at), rel);
      }
    }
  } else {
    // Span-only path (serving score): batch order, one row at a time.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const index_t row = static_cast<index_t>(i);
      run_block(&row, 1, batch[i].relation);
    }
  }
  profiling::count_flops((2 * dr * de + 3 * de + 3 * dr) *
                         static_cast<std::int64_t>(batch.size()));
}

void transr_backward(const sparse::RelationGroups* groups,
                     std::span<const Triplet> batch, const Matrix& entities,
                     const Matrix& relations, const Matrix& projections,
                     index_t rel_dim, Norm norm, const Matrix& expr_stash,
                     const float* scores, const float* gscores,
                     Matrix& dentities, Matrix& drelations,
                     Matrix& dprojections) {
  SPTX_CHECK(groups != nullptr,
             "fused TransR backward needs the plan's relation groups");
  (void)relations;
  const index_t de = entities.cols();
  const index_t dr = rel_dim;
  const bool simd = simd_enabled();
  Matrix xpanel(kPanelRows, de);   // packed diffs
  Matrix dupanel(kPanelRows, dr);  // per-row dL/d expr
  Matrix dxpanel(kPanelRows, de);  // back-projected entity gradients

  for (std::size_t k = 0; k < groups->rels.size(); ++k) {
    const index_t begin = groups->offsets[k];
    const index_t end = groups->offsets[k + 1];
    const index_t rel = groups->rels[k];
    const float* mr = projections.row(rel * dr);
    float* dmr = dprojections.row(rel * dr);
    float* drel = drelations.row(rel);

    for (index_t at = begin; at < end; at += kPanelRows) {
      const index_t count = std::min<index_t>(kPanelRows, end - at);
      const index_t* rows = groups->order.data() + at;
      const float* x[kPanelRows];
      float* du[kPanelRows];
      float* dx[kPanelRows];
      for (index_t b = 0; b < count; ++b) {
        const index_t i = rows[b];
        const Triplet& t = batch[static_cast<std::size_t>(i)];
        float* xb = xpanel.row(b);
        diff_into(entities.row(t.head), entities.row(t.tail), xb, de, simd);
        x[b] = xb;
        du[b] = dupanel.row(b);
        du_from_expr(expr_stash.row(i), du[b], dr, norm, scores[i],
                     gscores[i]);
        simd::add(drel, du[b], dr);  // dr_rel += du
        dx[b] = dxpanel.row(b);
        std::fill(dx[b], dx[b] + de, 0.0f);
      }
      if (count == kPanelRows) {
        // Rank-4 dM update + shared back-projection: every M_r / dM_r line
        // moves once per four rows.
        float c[kPanelRows];
        for (index_t p = 0; p < dr; ++p) {
          for (index_t b = 0; b < kPanelRows; ++b) c[b] = du[b][p];
          rank4_axpy(dmr + p * de, x, c, de, simd);
          dx4_accum(dx, mr + p * de, c, de, simd);
        }
      } else {
        for (index_t b = 0; b < count; ++b) {
          for (index_t p = 0; p < dr; ++p) {
            const float c = du[b][p];
            simd::axpy(dmr + p * de, x[b], c, de);
            simd::axpy(dx[b], mr + p * de, c, de);
          }
        }
      }
      for (index_t b = 0; b < count; ++b) {
        const Triplet& t = batch[static_cast<std::size_t>(rows[b])];
        simd::add(dentities.row(t.head), dx[b], de);
        simd::sub(dentities.row(t.tail), dx[b], de);
      }
    }
  }
  profiling::count_flops((4 * dr * de + 6 * de + 2 * dr) *
                         static_cast<std::int64_t>(batch.size()));
}

}  // namespace sptx::kernels
