// Fused forward+backward kernels for the translation families (TransR lives
// in fused_transr.cpp — it needs the relation-grouped GEMM micro-kernels).
//
// Layout of this file: per-row primitives first (each with an AVX2/FMA
// implementation compiled via target attribute plus a scalar fallback,
// selected once per batch), then the public per-family entry points that
// loop the batch and count FLOPs. The math and epsilons mirror the autograd
// ops these kernels replace (see ops.cpp): row_l2's 1e-12 clamp, row_l1's
// sign(0) = 0, the torus wraparound derivative.
#include "src/kernels/fused.hpp"

#include <cmath>

#include "src/common/cpu_features.hpp"
#include "src/common/simd.hpp"
#include "src/profiling/flops.hpp"

namespace sptx::kernels {

namespace {

constexpr float kNormEps = 1e-12f;  // ops.cpp's norm-backward clamp

// ---- scalar per-row primitives --------------------------------------------

inline float hrt_fwd_l2_s(const float* h, const float* r, const float* t,
                          index_t d) {
  float acc = 0.0f;
  for (index_t j = 0; j < d; ++j) {
    const float v = h[j] + r[j] - t[j];
    acc += v * v;
  }
  return acc;
}

inline float hrt_fwd_l1_s(const float* h, const float* r, const float* t,
                          index_t d) {
  float acc = 0.0f;
  for (index_t j = 0; j < d; ++j) acc += std::fabs(h[j] + r[j] - t[j]);
  return acc;
}

/// dh += s·v, dr += s·v, dt −= s·v with v = h + r − t recomputed in
/// registers — the fused scatter that replaces spmm_backward + add/sub
/// backward + the norm backward's intermediate.
inline void hrt_bwd_scaled_s(const float* h, const float* r, const float* t,
                             float* dh, float* dr, float* dt, float s,
                             index_t d) {
  for (index_t j = 0; j < d; ++j) {
    const float c = s * (h[j] + r[j] - t[j]);
    dh[j] += c;
    dr[j] += c;
    dt[j] -= c;
  }
}

/// L1 variant: the coefficient is s·sign(v), sign(0) = 0.
inline void hrt_bwd_sign_s(const float* h, const float* r, const float* t,
                           float* dh, float* dr, float* dt, float s,
                           index_t d) {
  for (index_t j = 0; j < d; ++j) {
    const float v = h[j] + r[j] - t[j];
    const float c = v > 0.0f ? s : v < 0.0f ? -s : 0.0f;
    dh[j] += c;
    dr[j] += c;
    dt[j] -= c;
  }
}

// Wraparound component distance on the unit torus (ops.cpp):
// m = min(frac, 1 − frac), dm/dx = +1 on [0, ½), −1 after.
inline void torus_comp_s(float x, float& m, float& sgn) {
  const float f = x - std::floor(x);
  if (f < 0.5f) {
    m = f;
    sgn = 1.0f;
  } else {
    m = 1.0f - f;
    sgn = -1.0f;
  }
}

inline float torus_fwd_s(const float* h, const float* r, const float* t,
                         index_t d, bool l2) {
  float acc = 0.0f;
  for (index_t j = 0; j < d; ++j) {
    float m, sgn;
    torus_comp_s(h[j] + r[j] - t[j], m, sgn);
    acc += l2 ? m * m : m;
  }
  return acc;
}

inline void torus_bwd_s(const float* h, const float* r, const float* t,
                        float* dh, float* dr, float* dt, float g, index_t d,
                        bool l2) {
  for (index_t j = 0; j < d; ++j) {
    float m, sgn;
    torus_comp_s(h[j] + r[j] - t[j], m, sgn);
    const float c = l2 ? g * 2.0f * m * sgn : g * sgn;
    dh[j] += c;
    dr[j] += c;
    dt[j] -= c;
  }
}

inline float transa_fwd_s(const float* h, const float* r, const float* t,
                          const float* w, index_t d) {
  float acc = 0.0f;
  for (index_t j = 0; j < d; ++j) {
    const float v = h[j] + r[j] - t[j];
    acc += w[j] * v * v;
  }
  return acc;
}

inline void transa_bwd_s(const float* h, const float* r, const float* t,
                         const float* w, float* dh, float* dr, float* dt,
                         float* dw, float g, index_t d) {
  for (index_t j = 0; j < d; ++j) {
    const float v = h[j] + r[j] - t[j];
    const float c = 2.0f * g * w[j] * v;
    dh[j] += c;
    dr[j] += c;
    dt[j] -= c;
    dw[j] += g * v * v;
  }
}

inline float diff_dot_s(const float* w, const float* h, const float* t,
                        index_t d) {
  float acc = 0.0f;
  for (index_t j = 0; j < d; ++j) acc += w[j] * (h[j] - t[j]);
  return acc;
}

inline void diff_axpy_s(float* y, const float* h, const float* t, float c,
                        index_t d) {
  for (index_t j = 0; j < d; ++j) y[j] += c * (h[j] - t[j]);
}

/// u = (h − t) + dr − wdot·w (the TransH hyperplane expression).
inline void transh_u_s(const float* h, const float* t, const float* dr,
                       const float* w, float wdot, float* u, index_t d) {
  for (index_t j = 0; j < d; ++j)
    u[j] = (h[j] - t[j]) + dr[j] - wdot * w[j];
}

/// u = (h − t) + r + s·rp (the TransD dynamic-mapping expression).
inline void transd_u_s(const float* h, const float* t, const float* r,
                       const float* rp, float s, float* u, index_t d) {
  for (index_t j = 0; j < d; ++j) u[j] = (h[j] - t[j]) + r[j] + s * rp[j];
}

/// x ← s·sign(x), sign(0) = 0 (turns a stored expression row into its L1
/// gradient in place).
inline void sign_scale_s(float* x, float s, index_t d) {
  for (index_t j = 0; j < d; ++j)
    x[j] = x[j] > 0.0f ? s : x[j] < 0.0f ? -s : 0.0f;
}

inline float l1_norm_s(const float* x, index_t d) {
  float acc = 0.0f;
  for (index_t j = 0; j < d; ++j) acc += std::fabs(x[j]);
  return acc;
}

// ---- AVX2/FMA per-row primitives ------------------------------------------

#ifdef SPTX_SIMD_X86

SPTX_TARGET_AVX2 inline __m256 abs256(__m256 v) {
  return _mm256_andnot_ps(_mm256_set1_ps(-0.0f), v);
}

/// s·sign(v) per lane, sign(0) = 0.
SPTX_TARGET_AVX2 inline __m256 sign_mul256(__m256 v, __m256 s) {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 pos = _mm256_and_ps(_mm256_cmp_ps(v, zero, _CMP_GT_OQ), s);
  const __m256 neg = _mm256_and_ps(_mm256_cmp_ps(v, zero, _CMP_LT_OQ), s);
  return _mm256_sub_ps(pos, neg);
}

SPTX_TARGET_AVX2 inline float hrt_fwd_l2_v(const float* h, const float* r,
                                           const float* t, index_t d) {
  __m256 acc = _mm256_setzero_ps();
  index_t j = 0;
  for (; j + 8 <= d; j += 8) {
    const __m256 v = _mm256_sub_ps(
        _mm256_add_ps(_mm256_loadu_ps(h + j), _mm256_loadu_ps(r + j)),
        _mm256_loadu_ps(t + j));
    acc = _mm256_fmadd_ps(v, v, acc);
  }
  float out = simd::detail::hsum(acc);
  for (; j < d; ++j) {
    const float v = h[j] + r[j] - t[j];
    out += v * v;
  }
  return out;
}

SPTX_TARGET_AVX2 inline float hrt_fwd_l1_v(const float* h, const float* r,
                                           const float* t, index_t d) {
  __m256 acc = _mm256_setzero_ps();
  index_t j = 0;
  for (; j + 8 <= d; j += 8) {
    const __m256 v = _mm256_sub_ps(
        _mm256_add_ps(_mm256_loadu_ps(h + j), _mm256_loadu_ps(r + j)),
        _mm256_loadu_ps(t + j));
    acc = _mm256_add_ps(acc, abs256(v));
  }
  float out = simd::detail::hsum(acc);
  for (; j < d; ++j) out += std::fabs(h[j] + r[j] - t[j]);
  return out;
}

SPTX_TARGET_AVX2 inline void hrt_bwd_scaled_v(const float* h, const float* r,
                                              const float* t, float* dh,
                                              float* dr, float* dt, float s,
                                              index_t d) {
  const __m256 vs = _mm256_set1_ps(s);
  index_t j = 0;
  for (; j + 8 <= d; j += 8) {
    const __m256 v = _mm256_sub_ps(
        _mm256_add_ps(_mm256_loadu_ps(h + j), _mm256_loadu_ps(r + j)),
        _mm256_loadu_ps(t + j));
    const __m256 c = _mm256_mul_ps(vs, v);
    _mm256_storeu_ps(dh + j, _mm256_add_ps(_mm256_loadu_ps(dh + j), c));
    _mm256_storeu_ps(dr + j, _mm256_add_ps(_mm256_loadu_ps(dr + j), c));
    _mm256_storeu_ps(dt + j, _mm256_sub_ps(_mm256_loadu_ps(dt + j), c));
  }
  for (; j < d; ++j) {
    const float c = s * (h[j] + r[j] - t[j]);
    dh[j] += c;
    dr[j] += c;
    dt[j] -= c;
  }
}

SPTX_TARGET_AVX2 inline void hrt_bwd_sign_v(const float* h, const float* r,
                                            const float* t, float* dh,
                                            float* dr, float* dt, float s,
                                            index_t d) {
  const __m256 vs = _mm256_set1_ps(s);
  index_t j = 0;
  for (; j + 8 <= d; j += 8) {
    const __m256 v = _mm256_sub_ps(
        _mm256_add_ps(_mm256_loadu_ps(h + j), _mm256_loadu_ps(r + j)),
        _mm256_loadu_ps(t + j));
    const __m256 c = sign_mul256(v, vs);
    _mm256_storeu_ps(dh + j, _mm256_add_ps(_mm256_loadu_ps(dh + j), c));
    _mm256_storeu_ps(dr + j, _mm256_add_ps(_mm256_loadu_ps(dr + j), c));
    _mm256_storeu_ps(dt + j, _mm256_sub_ps(_mm256_loadu_ps(dt + j), c));
  }
  for (; j < d; ++j) {
    const float v = h[j] + r[j] - t[j];
    const float c = v > 0.0f ? s : v < 0.0f ? -s : 0.0f;
    dh[j] += c;
    dr[j] += c;
    dt[j] -= c;
  }
}

/// (m, sgn) per lane: m = min(frac, 1−frac), sgn = ±1 on the frac < ½ split.
SPTX_TARGET_AVX2 inline void torus_comp_v(__m256 v, __m256& m, __m256& sgn) {
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 f = _mm256_sub_ps(v, _mm256_floor_ps(v));
  const __m256 below = _mm256_cmp_ps(f, _mm256_set1_ps(0.5f), _CMP_LT_OQ);
  m = _mm256_blendv_ps(_mm256_sub_ps(one, f), f, below);
  sgn = _mm256_blendv_ps(_mm256_set1_ps(-1.0f), one, below);
}

SPTX_TARGET_AVX2 inline float torus_fwd_v(const float* h, const float* r,
                                          const float* t, index_t d, bool l2) {
  __m256 acc = _mm256_setzero_ps();
  index_t j = 0;
  for (; j + 8 <= d; j += 8) {
    const __m256 v = _mm256_sub_ps(
        _mm256_add_ps(_mm256_loadu_ps(h + j), _mm256_loadu_ps(r + j)),
        _mm256_loadu_ps(t + j));
    __m256 m, sgn;
    torus_comp_v(v, m, sgn);
    acc = l2 ? _mm256_fmadd_ps(m, m, acc) : _mm256_add_ps(acc, m);
  }
  float out = simd::detail::hsum(acc);
  for (; j < d; ++j) {
    float m, sgn;
    torus_comp_s(h[j] + r[j] - t[j], m, sgn);
    out += l2 ? m * m : m;
  }
  return out;
}

SPTX_TARGET_AVX2 inline void torus_bwd_v(const float* h, const float* r,
                                         const float* t, float* dh, float* dr,
                                         float* dt, float g, index_t d,
                                         bool l2) {
  const __m256 vg = _mm256_set1_ps(l2 ? 2.0f * g : g);
  index_t j = 0;
  for (; j + 8 <= d; j += 8) {
    const __m256 v = _mm256_sub_ps(
        _mm256_add_ps(_mm256_loadu_ps(h + j), _mm256_loadu_ps(r + j)),
        _mm256_loadu_ps(t + j));
    __m256 m, sgn;
    torus_comp_v(v, m, sgn);
    __m256 c = _mm256_mul_ps(vg, sgn);
    if (l2) c = _mm256_mul_ps(c, m);
    _mm256_storeu_ps(dh + j, _mm256_add_ps(_mm256_loadu_ps(dh + j), c));
    _mm256_storeu_ps(dr + j, _mm256_add_ps(_mm256_loadu_ps(dr + j), c));
    _mm256_storeu_ps(dt + j, _mm256_sub_ps(_mm256_loadu_ps(dt + j), c));
  }
  for (; j < d; ++j) {
    float m, sgn;
    torus_comp_s(h[j] + r[j] - t[j], m, sgn);
    const float c = l2 ? g * 2.0f * m * sgn : g * sgn;
    dh[j] += c;
    dr[j] += c;
    dt[j] -= c;
  }
}

SPTX_TARGET_AVX2 inline float transa_fwd_v(const float* h, const float* r,
                                           const float* t, const float* w,
                                           index_t d) {
  __m256 acc = _mm256_setzero_ps();
  index_t j = 0;
  for (; j + 8 <= d; j += 8) {
    const __m256 v = _mm256_sub_ps(
        _mm256_add_ps(_mm256_loadu_ps(h + j), _mm256_loadu_ps(r + j)),
        _mm256_loadu_ps(t + j));
    acc = _mm256_fmadd_ps(_mm256_mul_ps(_mm256_loadu_ps(w + j), v), v, acc);
  }
  float out = simd::detail::hsum(acc);
  for (; j < d; ++j) {
    const float v = h[j] + r[j] - t[j];
    out += w[j] * v * v;
  }
  return out;
}

SPTX_TARGET_AVX2 inline void transa_bwd_v(const float* h, const float* r,
                                          const float* t, const float* w,
                                          float* dh, float* dr, float* dt,
                                          float* dw, float g, index_t d) {
  const __m256 vg = _mm256_set1_ps(g);
  const __m256 v2g = _mm256_set1_ps(2.0f * g);
  index_t j = 0;
  for (; j + 8 <= d; j += 8) {
    const __m256 v = _mm256_sub_ps(
        _mm256_add_ps(_mm256_loadu_ps(h + j), _mm256_loadu_ps(r + j)),
        _mm256_loadu_ps(t + j));
    const __m256 c =
        _mm256_mul_ps(_mm256_mul_ps(v2g, _mm256_loadu_ps(w + j)), v);
    _mm256_storeu_ps(dh + j, _mm256_add_ps(_mm256_loadu_ps(dh + j), c));
    _mm256_storeu_ps(dr + j, _mm256_add_ps(_mm256_loadu_ps(dr + j), c));
    _mm256_storeu_ps(dt + j, _mm256_sub_ps(_mm256_loadu_ps(dt + j), c));
    _mm256_storeu_ps(
        dw + j, _mm256_fmadd_ps(_mm256_mul_ps(vg, v), v,
                                _mm256_loadu_ps(dw + j)));
  }
  for (; j < d; ++j) {
    const float v = h[j] + r[j] - t[j];
    const float c = 2.0f * g * w[j] * v;
    dh[j] += c;
    dr[j] += c;
    dt[j] -= c;
    dw[j] += g * v * v;
  }
}

SPTX_TARGET_AVX2 inline float diff_dot_v(const float* w, const float* h,
                                         const float* t, index_t d) {
  __m256 acc = _mm256_setzero_ps();
  index_t j = 0;
  for (; j + 8 <= d; j += 8) {
    acc = _mm256_fmadd_ps(
        _mm256_loadu_ps(w + j),
        _mm256_sub_ps(_mm256_loadu_ps(h + j), _mm256_loadu_ps(t + j)), acc);
  }
  float out = simd::detail::hsum(acc);
  for (; j < d; ++j) out += w[j] * (h[j] - t[j]);
  return out;
}

SPTX_TARGET_AVX2 inline void diff_axpy_v(float* y, const float* h,
                                         const float* t, float c, index_t d) {
  const __m256 vc = _mm256_set1_ps(c);
  index_t j = 0;
  for (; j + 8 <= d; j += 8) {
    _mm256_storeu_ps(
        y + j,
        _mm256_fmadd_ps(
            vc, _mm256_sub_ps(_mm256_loadu_ps(h + j), _mm256_loadu_ps(t + j)),
            _mm256_loadu_ps(y + j)));
  }
  for (; j < d; ++j) y[j] += c * (h[j] - t[j]);
}

SPTX_TARGET_AVX2 inline void transh_u_v(const float* h, const float* t,
                                        const float* dr, const float* w,
                                        float wdot, float* u, index_t d) {
  const __m256 vw = _mm256_set1_ps(-wdot);
  index_t j = 0;
  for (; j + 8 <= d; j += 8) {
    const __m256 x =
        _mm256_sub_ps(_mm256_loadu_ps(h + j), _mm256_loadu_ps(t + j));
    _mm256_storeu_ps(
        u + j, _mm256_fmadd_ps(vw, _mm256_loadu_ps(w + j),
                               _mm256_add_ps(x, _mm256_loadu_ps(dr + j))));
  }
  for (; j < d; ++j) u[j] = (h[j] - t[j]) + dr[j] - wdot * w[j];
}

SPTX_TARGET_AVX2 inline void transd_u_v(const float* h, const float* t,
                                        const float* r, const float* rp,
                                        float s, float* u, index_t d) {
  const __m256 vs = _mm256_set1_ps(s);
  index_t j = 0;
  for (; j + 8 <= d; j += 8) {
    const __m256 x =
        _mm256_sub_ps(_mm256_loadu_ps(h + j), _mm256_loadu_ps(t + j));
    _mm256_storeu_ps(
        u + j, _mm256_fmadd_ps(vs, _mm256_loadu_ps(rp + j),
                               _mm256_add_ps(x, _mm256_loadu_ps(r + j))));
  }
  for (; j < d; ++j) u[j] = (h[j] - t[j]) + r[j] + s * rp[j];
}

SPTX_TARGET_AVX2 inline void sign_scale_v(float* x, float s, index_t d) {
  const __m256 vs = _mm256_set1_ps(s);
  index_t j = 0;
  for (; j + 8 <= d; j += 8) {
    _mm256_storeu_ps(x + j, sign_mul256(_mm256_loadu_ps(x + j), vs));
  }
  for (; j < d; ++j) x[j] = x[j] > 0.0f ? s : x[j] < 0.0f ? -s : 0.0f;
}

SPTX_TARGET_AVX2 inline float l1_norm_v(const float* x, index_t d) {
  __m256 acc = _mm256_setzero_ps();
  index_t j = 0;
  for (; j + 8 <= d; j += 8)
    acc = _mm256_add_ps(acc, abs256(_mm256_loadu_ps(x + j)));
  float out = simd::detail::hsum(acc);
  for (; j < d; ++j) out += std::fabs(x[j]);
  return out;
}

#endif  // SPTX_SIMD_X86

// ---- dispatch wrappers (the per-batch `simd` flag hoists the cpuid/knob
// probe out of the row loop) ------------------------------------------------

inline float hrt_fwd(const float* h, const float* r, const float* t,
                     index_t d, Norm norm, bool simd) {
#ifdef SPTX_SIMD_X86
  if (simd)
    return norm == Norm::kL2 ? hrt_fwd_l2_v(h, r, t, d)
                             : hrt_fwd_l1_v(h, r, t, d);
#else
  (void)simd;
#endif
  return norm == Norm::kL2 ? hrt_fwd_l2_s(h, r, t, d)
                           : hrt_fwd_l1_s(h, r, t, d);
}

inline void hrt_bwd_scaled(const float* h, const float* r, const float* t,
                           float* dh, float* dr, float* dt, float s,
                           index_t d, bool simd) {
#ifdef SPTX_SIMD_X86
  if (simd) return hrt_bwd_scaled_v(h, r, t, dh, dr, dt, s, d);
#else
  (void)simd;
#endif
  hrt_bwd_scaled_s(h, r, t, dh, dr, dt, s, d);
}

inline void hrt_bwd_sign(const float* h, const float* r, const float* t,
                         float* dh, float* dr, float* dt, float s, index_t d,
                         bool simd) {
#ifdef SPTX_SIMD_X86
  if (simd) return hrt_bwd_sign_v(h, r, t, dh, dr, dt, s, d);
#else
  (void)simd;
#endif
  hrt_bwd_sign_s(h, r, t, dh, dr, dt, s, d);
}

inline float torus_fwd(const float* h, const float* r, const float* t,
                       index_t d, bool l2, bool simd) {
#ifdef SPTX_SIMD_X86
  if (simd) return torus_fwd_v(h, r, t, d, l2);
#else
  (void)simd;
#endif
  return torus_fwd_s(h, r, t, d, l2);
}

inline void torus_bwd(const float* h, const float* r, const float* t,
                      float* dh, float* dr, float* dt, float g, index_t d,
                      bool l2, bool simd) {
#ifdef SPTX_SIMD_X86
  if (simd) return torus_bwd_v(h, r, t, dh, dr, dt, g, d, l2);
#else
  (void)simd;
#endif
  torus_bwd_s(h, r, t, dh, dr, dt, g, d, l2);
}

inline float transa_fwd(const float* h, const float* r, const float* t,
                        const float* w, index_t d, bool simd) {
#ifdef SPTX_SIMD_X86
  if (simd) return transa_fwd_v(h, r, t, w, d);
#else
  (void)simd;
#endif
  return transa_fwd_s(h, r, t, w, d);
}

inline void transa_bwd(const float* h, const float* r, const float* t,
                       const float* w, float* dh, float* dr, float* dt,
                       float* dw, float g, index_t d, bool simd) {
#ifdef SPTX_SIMD_X86
  if (simd) return transa_bwd_v(h, r, t, w, dh, dr, dt, dw, g, d);
#else
  (void)simd;
#endif
  transa_bwd_s(h, r, t, w, dh, dr, dt, dw, g, d);
}

inline float diff_dot(const float* w, const float* h, const float* t,
                      index_t d, bool simd) {
#ifdef SPTX_SIMD_X86
  if (simd) return diff_dot_v(w, h, t, d);
#else
  (void)simd;
#endif
  return diff_dot_s(w, h, t, d);
}

inline void diff_axpy(float* y, const float* h, const float* t, float c,
                      index_t d, bool simd) {
#ifdef SPTX_SIMD_X86
  if (simd) return diff_axpy_v(y, h, t, c, d);
#else
  (void)simd;
#endif
  diff_axpy_s(y, h, t, c, d);
}

inline void transh_u(const float* h, const float* t, const float* dr,
                     const float* w, float wdot, float* u, index_t d,
                     bool simd) {
#ifdef SPTX_SIMD_X86
  if (simd) return transh_u_v(h, t, dr, w, wdot, u, d);
#else
  (void)simd;
#endif
  transh_u_s(h, t, dr, w, wdot, u, d);
}

inline void transd_u(const float* h, const float* t, const float* r,
                     const float* rp, float s, float* u, index_t d,
                     bool simd) {
#ifdef SPTX_SIMD_X86
  if (simd) return transd_u_v(h, t, r, rp, s, u, d);
#else
  (void)simd;
#endif
  transd_u_s(h, t, r, rp, s, u, d);
}

inline void sign_scale(float* x, float s, index_t d, bool simd) {
#ifdef SPTX_SIMD_X86
  if (simd) return sign_scale_v(x, s, d);
#else
  (void)simd;
#endif
  sign_scale_s(x, s, d);
}

inline float l1_norm(const float* x, index_t d, bool simd) {
#ifdef SPTX_SIMD_X86
  if (simd) return l1_norm_v(x, d);
#else
  (void)simd;
#endif
  return l1_norm_s(x, d);
}

inline float sq_norm(const float* x, index_t d, bool simd) {
#ifdef SPTX_SIMD_X86
  if (simd) return simd::detail::sqnorm_avx2(x, d);
#else
  (void)simd;
#endif
  return simd::detail::sqnorm_scalar(x, d);
}

inline float dot(const float* a, const float* b, index_t d, bool simd) {
#ifdef SPTX_SIMD_X86
  if (simd) return simd::detail::dot_avx2(a, b, d);
#else
  (void)simd;
#endif
  return simd::detail::dot_scalar(a, b, d);
}

/// dL/dscore → dL/du scale for an L2-norm tail (row_l2's backward with its
/// 1e-12 clamp). The L1 tail has no scale — sign_scale applies the gradient.
inline float l2_scale(float score, float g) {
  return g / std::max(score, kNormEps);
}

}  // namespace

bool fused_enabled() { return !config::current()->hot().fused_off; }

// ---- TransE ---------------------------------------------------------------

void transe_forward(std::span<const Triplet> batch, const Matrix& table,
                    index_t num_entities, Norm norm, float* scores) {
  const index_t d = table.cols();
  const bool simd = simd_enabled();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Triplet& t = batch[i];
    const float acc = hrt_fwd(table.row(t.head),
                              table.row(num_entities + t.relation),
                              table.row(t.tail), d, norm, simd);
    scores[i] = norm == Norm::kL2 ? std::sqrt(acc) : acc;
  }
  profiling::count_flops(5 * static_cast<std::int64_t>(batch.size()) * d);
}

void transe_backward(std::span<const Triplet> batch, const Matrix& table,
                     index_t num_entities, Norm norm, const float* scores,
                     const float* gscores, Matrix& dtable) {
  const index_t d = table.cols();
  const bool simd = simd_enabled();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Triplet& t = batch[i];
    const float* h = table.row(t.head);
    const float* r = table.row(num_entities + t.relation);
    const float* tl = table.row(t.tail);
    float* dh = dtable.row(t.head);
    float* dr = dtable.row(num_entities + t.relation);
    float* dt = dtable.row(t.tail);
    if (norm == Norm::kL2) {
      hrt_bwd_scaled(h, r, tl, dh, dr, dt, l2_scale(scores[i], gscores[i]), d,
                     simd);
    } else {
      hrt_bwd_sign(h, r, tl, dh, dr, dt, gscores[i], d, simd);
    }
  }
  profiling::count_flops(7 * static_cast<std::int64_t>(batch.size()) * d);
}

// ---- TransC ---------------------------------------------------------------

void transc_forward(std::span<const Triplet> batch, const Matrix& table,
                    index_t num_entities, float* scores) {
  const index_t d = table.cols();
  const bool simd = simd_enabled();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Triplet& t = batch[i];
    scores[i] = hrt_fwd(table.row(t.head),
                        table.row(num_entities + t.relation),
                        table.row(t.tail), d, Norm::kL2, simd);
  }
  profiling::count_flops(5 * static_cast<std::int64_t>(batch.size()) * d);
}

void transc_backward(std::span<const Triplet> batch, const Matrix& table,
                     index_t num_entities, const float* gscores,
                     Matrix& dtable) {
  const index_t d = table.cols();
  const bool simd = simd_enabled();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Triplet& t = batch[i];
    // d(Σv²)/dv = 2v: the squared-L2 tail needs no norm clamp.
    hrt_bwd_scaled(table.row(t.head), table.row(num_entities + t.relation),
                   table.row(t.tail), dtable.row(t.head),
                   dtable.row(num_entities + t.relation), dtable.row(t.tail),
                   2.0f * gscores[i], d, simd);
  }
  profiling::count_flops(7 * static_cast<std::int64_t>(batch.size()) * d);
}

// ---- TorusE ---------------------------------------------------------------

void toruse_forward(std::span<const Triplet> batch, const Matrix& table,
                    index_t num_entities, Norm norm, float* scores) {
  const index_t d = table.cols();
  const bool simd = simd_enabled();
  const bool l2 = norm == Norm::kL2;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Triplet& t = batch[i];
    scores[i] = torus_fwd(table.row(t.head),
                          table.row(num_entities + t.relation),
                          table.row(t.tail), d, l2, simd);
  }
  profiling::count_flops(7 * static_cast<std::int64_t>(batch.size()) * d);
}

void toruse_backward(std::span<const Triplet> batch, const Matrix& table,
                     index_t num_entities, Norm norm, const float* gscores,
                     Matrix& dtable) {
  const index_t d = table.cols();
  const bool simd = simd_enabled();
  const bool l2 = norm == Norm::kL2;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Triplet& t = batch[i];
    torus_bwd(table.row(t.head), table.row(num_entities + t.relation),
              table.row(t.tail), dtable.row(t.head),
              dtable.row(num_entities + t.relation), dtable.row(t.tail),
              gscores[i], d, l2, simd);
  }
  profiling::count_flops(8 * static_cast<std::int64_t>(batch.size()) * d);
}

// ---- TransA ---------------------------------------------------------------

void transa_forward(std::span<const Triplet> batch, const Matrix& table,
                    const Matrix& metric, index_t num_entities,
                    float* scores) {
  const index_t d = table.cols();
  const bool simd = simd_enabled();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Triplet& t = batch[i];
    scores[i] = transa_fwd(table.row(t.head),
                           table.row(num_entities + t.relation),
                           table.row(t.tail), metric.row(t.relation), d, simd);
  }
  profiling::count_flops(6 * static_cast<std::int64_t>(batch.size()) * d);
}

void transa_backward(std::span<const Triplet> batch, const Matrix& table,
                     const Matrix& metric, index_t num_entities,
                     const float* gscores, Matrix& dtable, Matrix& dmetric) {
  const index_t d = table.cols();
  const bool simd = simd_enabled();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Triplet& t = batch[i];
    transa_bwd(table.row(t.head), table.row(num_entities + t.relation),
               table.row(t.tail), metric.row(t.relation), dtable.row(t.head),
               dtable.row(num_entities + t.relation), dtable.row(t.tail),
               dmetric.row(t.relation), gscores[i], d, simd);
  }
  profiling::count_flops(10 * static_cast<std::int64_t>(batch.size()) * d);
}

// ---- TransM ---------------------------------------------------------------

void transm_forward(std::span<const Triplet> batch, const Matrix& table,
                    const Matrix& rel_weight, index_t num_entities, Norm norm,
                    float* scores) {
  const index_t d = table.cols();
  const bool simd = simd_enabled();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Triplet& t = batch[i];
    const float acc = hrt_fwd(table.row(t.head),
                              table.row(num_entities + t.relation),
                              table.row(t.tail), d, norm, simd);
    const float dist = norm == Norm::kL2 ? std::sqrt(acc) : acc;
    scores[i] = rel_weight.at(t.relation, 0) * dist;
  }
  profiling::count_flops(5 * static_cast<std::int64_t>(batch.size()) * d);
}

void transm_backward(std::span<const Triplet> batch, const Matrix& table,
                     const Matrix& rel_weight, index_t num_entities, Norm norm,
                     const float* gscores, Matrix& dtable, Matrix& dweight) {
  const index_t d = table.cols();
  const bool simd = simd_enabled();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Triplet& t = batch[i];
    const float* h = table.row(t.head);
    const float* r = table.row(num_entities + t.relation);
    const float* tl = table.row(t.tail);
    // Recompute the norm (score = w·norm would divide by a clamped weight;
    // one extra fused read keeps the math identical to the autograd chain).
    const float acc = hrt_fwd(h, r, tl, d, norm, simd);
    const float dist = norm == Norm::kL2 ? std::sqrt(acc) : acc;
    const float w = rel_weight.at(t.relation, 0);
    dweight.at(t.relation, 0) += gscores[i] * dist;
    const float gdist = gscores[i] * w;  // mul-node backward
    float* dh = dtable.row(t.head);
    float* dr = dtable.row(num_entities + t.relation);
    float* dt = dtable.row(t.tail);
    if (norm == Norm::kL2) {
      hrt_bwd_scaled(h, r, tl, dh, dr, dt, l2_scale(dist, gdist), d, simd);
    } else {
      hrt_bwd_sign(h, r, tl, dh, dr, dt, gdist, d, simd);
    }
  }
  profiling::count_flops(12 * static_cast<std::int64_t>(batch.size()) * d);
}

// ---- TransH ---------------------------------------------------------------

void transh_forward(std::span<const Triplet> batch, const Matrix& entities,
                    const Matrix& normals, const Matrix& transfers, Norm norm,
                    float* scores) {
  const index_t d = entities.cols();
  const bool simd = simd_enabled();
  Matrix scratch(1, d);  // Workspace-pooled row buffer for u
  float* u = scratch.data();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Triplet& t = batch[i];
    const float* h = entities.row(t.head);
    const float* tl = entities.row(t.tail);
    const float* w = normals.row(t.relation);
    const float* dr = transfers.row(t.relation);
    const float wdot = diff_dot(w, h, tl, d, simd);
    transh_u(h, tl, dr, w, wdot, u, d, simd);
    scores[i] = norm == Norm::kL2 ? std::sqrt(sq_norm(u, d, simd))
                                  : l1_norm(u, d, simd);
  }
  profiling::count_flops(9 * static_cast<std::int64_t>(batch.size()) * d);
}

void transh_backward(std::span<const Triplet> batch, const Matrix& entities,
                     const Matrix& normals, const Matrix& transfers, Norm norm,
                     const float* scores, const float* gscores,
                     Matrix& dentities, Matrix& dnormals, Matrix& dtransfers) {
  const index_t d = entities.cols();
  const bool simd = simd_enabled();
  Matrix scratch(1, d);
  float* u = scratch.data();  // becomes du in place
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Triplet& t = batch[i];
    const float* h = entities.row(t.head);
    const float* tl = entities.row(t.tail);
    const float* w = normals.row(t.relation);
    const float* dr = transfers.row(t.relation);
    const float wdot = diff_dot(w, h, tl, d, simd);
    transh_u(h, tl, dr, w, wdot, u, d, simd);
    if (norm == Norm::kL2) {
      simd::scale(u, d, l2_scale(scores[i], gscores[i]));  // du = s·u
    } else {
      sign_scale(u, gscores[i], d, simd);  // du = g·sign(u)
    }
    const float a = dot(u, w, d, simd);  // duᵀw
    float* dh = dentities.row(t.head);
    float* dt = dentities.row(t.tail);
    // d(h − t) = du − (duᵀw)·w   [scale_rows + row_dot backward, fused]
    simd::add(dh, u, d);
    simd::axpy(dh, w, -a, d);
    simd::sub(dt, u, d);
    simd::axpy(dt, w, a, d);
    // dd_r = du; dw = −wdot·du − (duᵀw)·(h − t)
    simd::add(dtransfers.row(t.relation), u, d);
    float* dw = dnormals.row(t.relation);
    simd::axpy(dw, u, -wdot, d);
    diff_axpy(dw, h, tl, -a, d, simd);
  }
  profiling::count_flops(20 * static_cast<std::int64_t>(batch.size()) * d);
}

// ---- TransD ---------------------------------------------------------------

void transd_forward(std::span<const Triplet> batch, const Matrix& entities,
                    const Matrix& entity_proj, const Matrix& relations,
                    const Matrix& relation_proj, Norm norm, float* scores) {
  const index_t d = entities.cols();
  const bool simd = simd_enabled();
  Matrix scratch(1, d);
  float* u = scratch.data();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Triplet& t = batch[i];
    const float* h = entities.row(t.head);
    const float* tl = entities.row(t.tail);
    const float* hp = entity_proj.row(t.head);
    const float* tp = entity_proj.row(t.tail);
    const float* r = relations.row(t.relation);
    const float* rp = relation_proj.row(t.relation);
    const float s = dot(hp, h, d, simd) - dot(tp, tl, d, simd);
    transd_u(h, tl, r, rp, s, u, d, simd);
    scores[i] = norm == Norm::kL2 ? std::sqrt(sq_norm(u, d, simd))
                                  : l1_norm(u, d, simd);
  }
  profiling::count_flops(11 * static_cast<std::int64_t>(batch.size()) * d);
}

void transd_backward(std::span<const Triplet> batch, const Matrix& entities,
                     const Matrix& entity_proj, const Matrix& relations,
                     const Matrix& relation_proj, Norm norm,
                     const float* scores, const float* gscores,
                     Matrix& dentities, Matrix& dentity_proj,
                     Matrix& drelations, Matrix& drelation_proj) {
  const index_t d = entities.cols();
  const bool simd = simd_enabled();
  Matrix scratch(1, d);
  float* u = scratch.data();  // becomes du in place
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Triplet& t = batch[i];
    const float* h = entities.row(t.head);
    const float* tl = entities.row(t.tail);
    const float* hp = entity_proj.row(t.head);
    const float* tp = entity_proj.row(t.tail);
    const float* r = relations.row(t.relation);
    const float* rp = relation_proj.row(t.relation);
    const float s = dot(hp, h, d, simd) - dot(tp, tl, d, simd);
    transd_u(h, tl, r, rp, s, u, d, simd);
    if (norm == Norm::kL2) {
      simd::scale(u, d, l2_scale(scores[i], gscores[i]));
    } else {
      sign_scale(u, gscores[i], d, simd);
    }
    const float a = dot(u, rp, d, simd);  // dL/ds = duᵀr_p
    float* dh = dentities.row(t.head);
    float* dt = dentities.row(t.tail);
    simd::add(dh, u, d);
    simd::axpy(dh, hp, a, d);   // ∂s/∂h = h_p
    simd::sub(dt, u, d);
    simd::axpy(dt, tp, -a, d);  // ∂s/∂t = −t_p
    simd::axpy(dentity_proj.row(t.head), h, a, d);
    simd::axpy(dentity_proj.row(t.tail), tl, -a, d);
    simd::add(drelations.row(t.relation), u, d);
    simd::axpy(drelation_proj.row(t.relation), u, s, d);
  }
  profiling::count_flops(24 * static_cast<std::int64_t>(batch.size()) * d);
}

void rerank_candidates(bool corrupt_tail, std::int64_t anchor,
                       std::int64_t relation,
                       std::span<const index_t> candidates,
                       const ScoreBlockFn& score_block, float* scores) {
  // 512 triplets ≈ 12 KB of staging — resident in L1/L2 alongside the rows
  // the scorer gathers, and no per-query heap allocation.
  constexpr std::size_t kBlock = 512;
  Triplet block[kBlock];
  for (std::size_t offset = 0; offset < candidates.size(); offset += kBlock) {
    const std::size_t n = std::min(kBlock, candidates.size() - offset);
    for (std::size_t i = 0; i < n; ++i) {
      const std::int64_t e = candidates[offset + i];
      block[i] = corrupt_tail ? Triplet{anchor, relation, e}
                              : Triplet{e, relation, anchor};
    }
    score_block(std::span<const Triplet>(block, n), scores + offset);
  }
}

}  // namespace sptx::kernels
