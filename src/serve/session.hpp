// Thread-safe inference serving over an immutable model snapshot.
//
// An InferenceSession is the query-side half of the Engine facade: it owns
// a frozen KgeModel replica (models/snapshot.hpp) and answers
//
//  * triple scoring      — score()/score_one(), routed through a
//    micro-batching queue that coalesces concurrent small queries into one
//    SpMM-sized batch (micro_batcher.hpp);
//  * top-k prediction    — top_tails()/top_heads(): rank every entity as
//    the missing slot of (h, r, ?) / (?, r, t), optionally filtering known
//    positives;
//  * rank queries        — rank()/rank_batch(): the evaluator's filtered
//    optimistic-average rank of a truth triplet against all entities.
//
// Candidate batches for top-k/rank queries reuse the PR 2 CompiledBatch
// machinery the same way EvalConfig::plan_cache does: the staged
// N-candidate batch for a (side, anchor, relation) query is compiled once
// into a per-session sparse::PlanCache and served from the plan on every
// later hit. What is reused is the candidate *staging* (score() is the
// models' dense fast path, so the plans carry no incidence), so the win is
// the O(N) fill per repeated query — and each resident plan pins N staged
// triplets, which is why max_cached_plans defaults low and caps residency.
//
// Thread-safety contract: every public method is const and safe to call
// from any number of threads concurrently. The model snapshot is immutable;
// mutable internals (plan cache, micro-batch queue, stats) are internally
// synchronized. Results are independent of concurrency — a query returns
// bit-identical results whether executed alone, coalesced into a shared
// micro-batch, or raced against a thousand others.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <span>
#include <unordered_set>
#include <vector>

#include "src/common/runtime_config.hpp"
#include "src/kg/triplet.hpp"
#include "src/models/model.hpp"
#include "src/serve/micro_batcher.hpp"
#include "src/sparse/plan_cache.hpp"

namespace sptx::serve {

struct SessionOptions {
  /// Coalesce concurrent small score() calls into one scoring batch.
  /// SPTX_SERVE_MICROBATCH overrides.
  bool micro_batch = true;
  /// Coalescing cap in triplets per underlying score() call.
  /// SPTX_SERVE_MAX_BATCH overrides.
  index_t max_batch = 8192;
  /// Microseconds a micro-batch leader lingers for followers before
  /// executing. 0 = continuous batching: drain whatever contention already
  /// queued, never add latency. SPTX_SERVE_WINDOW_US overrides.
  int window_us = 0;
  /// Cache staged top-k/rank candidate batches per (side, anchor,
  /// relation). SPTX_SERVE_PLAN_CACHE overrides.
  bool plan_cache = true;
  /// Resident-plan cap for the candidate cache. Each plan pins
  /// num_entities staged triplets (24 B each — ~24 MB per plan on a
  /// million-entity graph), so the default stays small; raise it for hot
  /// query sets over small vocabularies. SPTX_SERVE_MAX_PLANS overrides.
  index_t max_cached_plans = 64;
  /// Known positives to exclude from top-k results and rank competitors
  /// (the evaluator's "filtered" protocol). Copied at session open — the
  /// store need not outlive the session. Null = unfiltered.
  const TripletStore* filter = nullptr;
  /// Bounded-queue admission control for the micro-batcher, in queued
  /// triplets. Arrivals that would exceed the bound are rejected with
  /// RejectReason::kQueueFull instead of growing the queue (and the tail
  /// latency of everyone behind them) without limit. 0 = unbounded.
  /// SPTX_SERVE_QUEUE_LIMIT overrides.
  index_t queue_limit = 0;
  /// Default per-request deadline for try_score(), in microseconds from
  /// arrival. A request that cannot START scoring before its deadline is
  /// shed with RejectReason::kDeadline — no work is spent on a result the
  /// caller can no longer use. 0 = no deadline. Callers can override per
  /// request. SPTX_SERVE_DEADLINE_US overrides.
  std::int64_t deadline_us = 0;
  /// Cap on simultaneous underlying score() executions — the worker pool
  /// the micro-batch queue feeds. 0 = unbounded (every caller thread may
  /// execute). Bounding it is what lets overload actually queue, so the
  /// deadline and queue-limit degradation engage instead of oversubscribing
  /// the CPU. SPTX_SERVE_CONCURRENCY overrides.
  int max_concurrency = 0;
};

/// Apply the registry's SPTX_SERVE_* overrides to `options`.
SessionOptions resolve(const SessionOptions& options, const RuntimeConfig& rc);

struct Prediction {
  std::int64_t entity = 0;
  float score = 0.0f;
};

struct SessionStats {
  std::int64_t queries = 0;          // public API calls answered
  std::int64_t triplets_scored = 0;  // total candidate/query triplets scored
  std::int64_t rejected = 0;         // try_score() loads shed (all reasons)
  MicroBatcher::Stats batcher;       // micro-batch queue traffic
  sparse::PlanCache::Stats plans;    // candidate-plan cache traffic
};

/// Outcome of a deadline-aware try_score(): either accepted (scores filled,
/// reason kNone) or a typed rejection with empty scores.
struct ScoreResult {
  RejectReason rejected = RejectReason::kNone;
  std::vector<float> scores;
  bool ok() const { return rejected == RejectReason::kNone; }
};

class InferenceSession {
 public:
  /// `model` must be a frozen snapshot (models::freeze) or otherwise
  /// guaranteed immutable for the session's lifetime.
  InferenceSession(std::shared_ptr<const models::KgeModel> model,
                   const SessionOptions& options);

  const models::KgeModel& model() const { return *model_; }
  index_t num_entities() const { return model_->num_entities(); }
  index_t num_relations() const { return model_->num_relations(); }

  /// Model-native scores for a batch of triplets (lower = more plausible
  /// for translational families, higher for semiring ones — see
  /// model().higher_is_better()). Small batches may be coalesced with
  /// concurrent callers; results are identical either way.
  std::vector<float> score(std::span<const Triplet> batch) const;
  float score_one(const Triplet& t) const;

  /// Graceful-degradation scoring: like score(), but load shedding reports
  /// a typed rejection instead of throwing. `deadline_us` microseconds from
  /// now bounds how long the request may wait to START scoring (0 = the
  /// session's options.deadline_us; both 0 = no deadline). Accepted
  /// requests return bit-identical scores to score() — degradation changes
  /// WHO gets served under overload, never the answer the served get.
  ScoreResult try_score(std::span<const Triplet> batch,
                        std::int64_t deadline_us = 0) const;

  /// The k most plausible completions of (head, relation, ?) — entities
  /// ranked by the model's score, known positives excluded when the
  /// session was opened with a filter.
  std::vector<Prediction> top_tails(std::int64_t head, std::int64_t relation,
                                    int k) const;
  /// The k most plausible completions of (?, relation, tail).
  std::vector<Prediction> top_heads(std::int64_t relation, std::int64_t tail,
                                    int k) const;

  /// Filtered optimistic-average rank of `truth` against all entities on
  /// one side (the evaluator's protocol: rank = 1 + #strictly-better +
  /// #ties/2, filtered competitors excluded).
  double rank(const Triplet& truth, bool corrupt_tail = true) const;
  std::vector<double> rank_batch(std::span<const Triplet> truths,
                                 bool corrupt_tail = true) const;

  SessionStats stats() const;

 private:
  /// Scores for the N-entity candidate batch of (side, anchor, relation),
  /// staged through the candidate-plan cache when enabled. Candidate
  /// batches are already SpMM-sized, so they bypass the micro-batcher.
  std::vector<float> candidate_scores(bool corrupt_tail, std::int64_t anchor,
                                      std::int64_t relation) const;

  /// Collision-free cache key for (side, anchor, relation), or nullopt when
  /// the ids exceed the packable range (then the query stages fresh —
  /// correctness never rides on a lossy key).
  static std::optional<sparse::PlanCache::Key> candidate_key(
      bool corrupt_tail, std::int64_t anchor, std::int64_t relation);

  bool filtered_out(const Triplet& t) const {
    return !known_.empty() && known_.count(t) > 0;
  }

  /// Serving inputs are user-controlled; ids are range-checked before they
  /// reach the models' unchecked embedding-row arithmetic.
  void check_triplet(const Triplet& t) const;

  std::shared_ptr<const models::KgeModel> model_;
  SessionOptions options_;
  std::unordered_set<Triplet, TripletHash> known_;
  mutable sparse::PlanCache plans_;
  mutable MicroBatcher batcher_;
  mutable std::atomic<std::int64_t> queries_{0};
  mutable std::atomic<std::int64_t> triplets_scored_{0};
  mutable std::atomic<std::int64_t> rejected_{0};
};

}  // namespace sptx::serve
