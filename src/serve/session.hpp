// Thread-safe inference serving over an immutable model snapshot.
//
// An InferenceSession is the query-side half of the Engine facade: it owns
// a frozen serving snapshot (a versioned model replica plus its optional
// clustered ANN index, serve/ann_index.hpp) and answers
//
//  * triple scoring      — score()/score_one(), routed through a
//    micro-batching queue that coalesces concurrent small queries into one
//    SpMM-sized batch (micro_batcher.hpp);
//  * top-k prediction    — top_tails()/top_heads(): rank every entity as
//    the missing slot of (h, r, ?) / (?, r, t), optionally filtering known
//    positives. With the ANN index engaged the candidate scan shrinks to
//    the probed centroid lists; scores stay exact (bit-identical to brute
//    force) because candidates re-rank through the model's score path.
//  * rank queries        — rank()/rank_batch(): the evaluator's filtered
//    optimistic-average rank of a truth triplet against all entities.
//
// Candidate batches for brute-force top-k/rank queries reuse the PR 2
// CompiledBatch machinery the same way EvalConfig::plan_cache does: the
// staged N-candidate batch for a (side, anchor, relation) query is compiled
// once into a per-session sparse::PlanCache and served from the plan on
// every later hit.
//
// Hot-swap: the snapshot lives behind an RCU-style atomic shared_ptr cell.
// install() flips the cell; each in-flight request resolved the pointer
// once at entry and drains on the version it started with, every new
// request sees the new version, and the old snapshot frees itself when its
// last in-flight reference drops — no locks on the read path, no torn
// state, no dropped requests. Publishing is Engine::publish()'s job (build
// the new index off the serving threads, then install everywhere).
// Hot-swap preserves the vocabulary: install() rejects a snapshot whose
// entity/relation counts differ, which is what keeps request validation
// and cached candidate plans valid across the flip.
//
// Thread-safety contract: every public method is const and safe to call
// from any number of threads concurrently (install() included). Results
// are independent of concurrency — a query returns bit-identical results
// whether executed alone, coalesced into a shared micro-batch, or raced
// against a thousand others; during a swap every result is consistent with
// exactly one installed version.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <span>
#include <unordered_set>
#include <vector>

#include "src/common/runtime_config.hpp"
#include "src/common/thread_annotations.hpp"
#include "src/kg/triplet.hpp"
#include "src/models/model.hpp"
#include "src/serve/ann_index.hpp"
#include "src/serve/micro_batcher.hpp"
#include "src/sparse/plan_cache.hpp"

namespace sptx::serve {

struct SessionOptions {
  /// Coalesce concurrent small score() calls into one scoring batch.
  /// SPTX_SERVE_MICROBATCH overrides.
  bool micro_batch = true;
  /// Coalescing cap in triplets per underlying score() call.
  /// SPTX_SERVE_MAX_BATCH overrides.
  index_t max_batch = 8192;
  /// Microseconds a micro-batch leader lingers for followers before
  /// executing. 0 = continuous batching: drain whatever contention already
  /// queued, never add latency. SPTX_SERVE_WINDOW_US overrides.
  int window_us = 0;
  /// Cache staged top-k/rank candidate batches per (side, anchor,
  /// relation). SPTX_SERVE_PLAN_CACHE overrides.
  bool plan_cache = true;
  /// Resident-plan cap for the candidate cache. Each plan pins
  /// num_entities staged triplets (24 B each — ~24 MB per plan on a
  /// million-entity graph), so the default stays small; raise it for hot
  /// query sets over small vocabularies. SPTX_SERVE_MAX_PLANS overrides.
  index_t max_cached_plans = 64;
  /// Known positives to exclude from top-k results and rank competitors
  /// (the evaluator's "filtered" protocol). Copied at session open — the
  /// store need not outlive the session. Null = unfiltered.
  const TripletStore* filter = nullptr;
  /// Bounded-queue admission control for the micro-batcher, in queued
  /// triplets. Arrivals that would exceed the bound are rejected with
  /// RejectReason::kQueueFull instead of growing the queue (and the tail
  /// latency of everyone behind them) without limit. 0 = unbounded.
  /// SPTX_SERVE_QUEUE_LIMIT overrides.
  index_t queue_limit = 0;
  /// Default per-request deadline for try_score(), in microseconds from
  /// arrival. A request that cannot START scoring before its deadline is
  /// shed with RejectReason::kDeadline — no work is spent on a result the
  /// caller can no longer use. 0 = no deadline. Callers can override per
  /// request. SPTX_SERVE_DEADLINE_US overrides.
  std::int64_t deadline_us = 0;
  /// Cap on simultaneous underlying score() executions — the worker pool
  /// the micro-batch queue feeds. 0 = unbounded (every caller thread may
  /// execute). Bounding it is what lets overload actually queue, so the
  /// deadline and queue-limit degradation engage instead of oversubscribing
  /// the CPU. SPTX_SERVE_CONCURRENCY overrides.
  int max_concurrency = 0;
  /// Clustered ANN acceleration for top_tails/top_heads: kAuto builds and
  /// uses the IVF index when the model family has a probe transform AND
  /// the vocabulary has at least ann_min_entities entities; kOn for any
  /// size (still brute-force when no transform exists); kOff never.
  /// Returned scores are exact in every mode. SPTX_ANN overrides.
  AnnMode ann = AnnMode::kAuto;
  /// Centroid lists probed per ANN query — the recall/latency dial.
  /// 0 = auto (AnnIndex::auto_nprobe). SPTX_ANN_NPROBE overrides.
  int ann_nprobe = 0;
  /// kAuto threshold: below this entity count the brute-force scan wins
  /// (index build + probe overhead beats the scan it saves).
  /// SPTX_ANN_MIN_ENTITIES overrides.
  index_t ann_min_entities = 4096;
};

/// Apply the registry's SPTX_SERVE_* / SPTX_ANN_* overrides to `options`.
SessionOptions resolve(const SessionOptions& options, const RuntimeConfig& rc);

struct Prediction {
  std::int64_t entity = 0;
  float score = 0.0f;
};

struct SessionStats {
  std::int64_t queries = 0;          // public API calls answered
  std::int64_t triplets_scored = 0;  // total candidate/query triplets scored
  std::int64_t rejected = 0;         // try_score() loads shed (all reasons)
  std::int64_t topk_ann = 0;         // top-k queries served via the ANN index
  std::int64_t topk_brute = 0;       // top-k queries served brute-force
  std::int64_t ann_candidates = 0;   // exact-re-rank candidates scanned
  std::int64_t installs = 0;         // hot-swaps applied (install() calls)
  std::uint64_t snapshot_version = 0;  // currently serving version
  MicroBatcher::Stats batcher;       // micro-batch queue traffic
  sparse::PlanCache::Stats plans;    // candidate-plan cache traffic
};

/// Outcome of a deadline-aware try_score(): either accepted (scores filled,
/// reason kNone) or a typed rejection with empty scores.
struct ScoreResult {
  RejectReason rejected = RejectReason::kNone;
  std::vector<float> scores;
  bool ok() const { return rejected == RejectReason::kNone; }
};

class InferenceSession {
 public:
  /// `model` must be a frozen snapshot (models::freeze) or otherwise
  /// guaranteed immutable for the session's lifetime. Builds the ANN index
  /// per `options` (version stamped from models::next_snapshot_version).
  InferenceSession(std::shared_ptr<const models::KgeModel> model,
                   const SessionOptions& options);

  /// Serve an already-assembled snapshot (Engine::open_session's path —
  /// the engine stamps the version and builds the index once).
  InferenceSession(std::shared_ptr<const ServingSnapshot> snapshot,
                   const SessionOptions& options);

  /// The snapshot current at this instant (RCU read). Hold the returned
  /// pointer while using anything reached through it.
  std::shared_ptr<const ServingSnapshot> snapshot() const {
    return cell_load();
  }

  /// The current snapshot's model. The reference stays valid only while
  /// the snapshot remains installed — callers that may race a publish
  /// should hold snapshot() instead.
  const models::KgeModel& model() const { return *cell_load()->model; }
  index_t num_entities() const { return cell_load()->model->num_entities(); }
  index_t num_relations() const {
    return cell_load()->model->num_relations();
  }
  std::uint64_t snapshot_version() const { return cell_load()->version; }

  /// RCU-style hot-swap: atomically replace the serving snapshot. Requests
  /// already in flight finish (and drain the old snapshot) on the version
  /// they started with; every subsequent request sees `snapshot`. The new
  /// snapshot must preserve the vocabulary (same entity/relation counts) —
  /// hot-swap publishes refreshed weights, not a re-sized graph.
  void install(std::shared_ptr<const ServingSnapshot> snapshot) const;

  /// Model-native scores for a batch of triplets (lower = more plausible
  /// for translational families, higher for semiring ones — see
  /// model().higher_is_better()). Small batches may be coalesced with
  /// concurrent callers; results are identical either way.
  std::vector<float> score(std::span<const Triplet> batch) const;
  float score_one(const Triplet& t) const;

  /// Graceful-degradation scoring: like score(), but load shedding reports
  /// a typed rejection instead of throwing. `deadline_us` microseconds from
  /// now bounds how long the request may wait to START scoring (0 = the
  /// session's options.deadline_us; both 0 = no deadline). Accepted
  /// requests return bit-identical scores to score() — degradation changes
  /// WHO gets served under overload, never the answer the served get.
  ScoreResult try_score(std::span<const Triplet> batch,
                        std::int64_t deadline_us = 0) const;

  /// The k most plausible completions of (head, relation, ?) — entities
  /// ranked by the model's score, known positives excluded when the
  /// session was opened with a filter. Served through the ANN index when
  /// engaged (exact scores, approximate candidate set), brute-force
  /// otherwise.
  std::vector<Prediction> top_tails(std::int64_t head, std::int64_t relation,
                                    int k) const;
  /// The k most plausible completions of (?, relation, tail).
  std::vector<Prediction> top_heads(std::int64_t relation, std::int64_t tail,
                                    int k) const;

  /// Filtered optimistic-average rank of `truth` against all entities on
  /// one side (the evaluator's protocol: rank = 1 + #strictly-better +
  /// #ties/2, filtered competitors excluded). Always brute-force — ranks
  /// are exact by definition.
  double rank(const Triplet& truth, bool corrupt_tail = true) const;
  std::vector<double> rank_batch(std::span<const Triplet> truths,
                                 bool corrupt_tail = true) const;

  SessionStats stats() const;

 private:
  std::vector<Prediction> top_impl(bool corrupt_tail, std::int64_t anchor,
                                   std::int64_t relation, int k) const;

  /// Scores for the N-entity candidate batch of (side, anchor, relation),
  /// staged through the candidate-plan cache when enabled. Candidate
  /// batches are already SpMM-sized, so they bypass the micro-batcher.
  std::vector<float> candidate_scores(const ServingSnapshot& snap,
                                      bool corrupt_tail, std::int64_t anchor,
                                      std::int64_t relation) const;

  /// Collision-free cache key for (side, anchor, relation), or nullopt when
  /// the ids exceed the packable range (then the query stages fresh —
  /// correctness never rides on a lossy key).
  static std::optional<sparse::PlanCache::Key> candidate_key(
      bool corrupt_tail, std::int64_t anchor, std::int64_t relation);

  bool filtered_out(const Triplet& t) const {
    return !known_.empty() && known_.count(t) > 0;
  }

  /// Serving inputs are user-controlled; ids are range-checked before they
  /// reach the models' unchecked embedding-row arithmetic. The vocabulary
  /// is install-invariant, so validation against any snapshot holds for
  /// all of them.
  void check_triplet(const Triplet& t, index_t num_entities,
                     index_t num_relations) const;

  std::shared_ptr<const ServingSnapshot> cell_load() const;
  void cell_store(std::shared_ptr<const ServingSnapshot> snapshot) const;

  SessionOptions options_;
  std::unordered_set<Triplet, TripletHash> known_;
  // The RCU cell. libstdc++ ≥ 12 provides the lock-free-ish atomic
  // specialization; the mutex fallback keeps older toolchains correct (and
  // carries the guarded-by contract so the fallback is analyzable too).
#if defined(__cpp_lib_atomic_shared_ptr)
  mutable std::atomic<std::shared_ptr<const ServingSnapshot>> snapshot_;
#else
  mutable Mutex snapshot_mu_;
  mutable std::shared_ptr<const ServingSnapshot> snapshot_
      SPTX_GUARDED_BY(snapshot_mu_);
#endif
  mutable sparse::PlanCache plans_;
  mutable MicroBatcher batcher_;
  mutable std::atomic<std::int64_t> queries_{0};
  mutable std::atomic<std::int64_t> triplets_scored_{0};
  mutable std::atomic<std::int64_t> rejected_{0};
  mutable std::atomic<std::int64_t> topk_ann_{0};
  mutable std::atomic<std::int64_t> topk_brute_{0};
  mutable std::atomic<std::int64_t> ann_candidates_{0};
  mutable std::atomic<std::int64_t> installs_{0};
};

}  // namespace sptx::serve
