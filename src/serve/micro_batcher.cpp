#include "src/serve/micro_batcher.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "src/common/error.hpp"
#include "src/common/fault.hpp"
#include "src/runtime/task_pool.hpp"

namespace sptx::serve {

const char* to_string(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone: return "none";
    case RejectReason::kDeadline: return "deadline";
    case RejectReason::kQueueFull: return "queue_full";
  }
  return "unknown";
}

MicroBatcher::MicroBatcher(ScoreFn score, index_t max_batch,
                           std::chrono::microseconds window,
                           index_t queue_limit, int max_concurrent)
    : score_(std::move(score)),
      max_batch_(max_batch),
      window_(window),
      queue_limit_(queue_limit),
      max_concurrent_(max_concurrent) {
  SPTX_CHECK(score_ != nullptr, "MicroBatcher needs a scorer");
  SPTX_CHECK(max_batch_ >= 1, "max_batch must be >= 1");
  SPTX_CHECK(queue_limit_ >= 0, "queue_limit must be >= 0 (0 = unbounded)");
  SPTX_CHECK(max_concurrent_ >= 0,
             "max_concurrent must be >= 0 (0 = unbounded)");
}

void MicroBatcher::execute(std::span<const Triplet> triplets, float* out) {
  const RejectReason reject = try_execute(triplets, out, kNoDeadline);
  if (reject == RejectReason::kQueueFull)
    throw_error(ErrorCode::kQueueFull,
                "serving queue is at capacity — request rejected");
  // kDeadline is impossible with kNoDeadline.
  SPTX_CHECK(reject == RejectReason::kNone, "unexpected rejection");
}

RejectReason MicroBatcher::try_execute(std::span<const Triplet> triplets,
                                       float* out, Deadline deadline) {
  if (triplets.empty()) return RejectReason::kNone;
  Request req{triplets, out, deadline};
  const auto size = static_cast<index_t>(triplets.size());

  MutexLock lk(mu_);
  // Admission control, all under the one lock: an injected serve_queue
  // fault, a dead-on-arrival deadline, or a bounded queue at capacity each
  // bounce the request before it costs anything.
  if (fault::should_fail("serve_queue")) {
    ++stats_.rejected_queue_full;
    return RejectReason::kQueueFull;
  }
  if (deadline != kNoDeadline && std::chrono::steady_clock::now() >= deadline) {
    ++stats_.rejected_deadline;
    return RejectReason::kDeadline;
  }
  if (queue_limit_ > 0 && queued_triplets_ + size > queue_limit_) {
    ++stats_.rejected_queue_full;
    return RejectReason::kQueueFull;
  }
  queue_.push_back(&req);
  queued_triplets_ += size;
  ++stats_.requests;
  stats_.triplets += size;
  cv_.notify_all();  // a lingering leader may now be full enough to run

  // Leader/follower loop. A caller leaves only when its own request is
  // done; becoming leader (possibly for a batch that does not contain its
  // own request, when a previous leader already took it) loops back here
  // afterwards to wait for whoever is executing it. Leadership requires a
  // non-empty queue: a caller whose request is mid-execution elsewhere must
  // not claim an empty queue and spin draining nothing.
  //
  // Degradation: a deadlined request that nobody has taken by its deadline
  // removes itself from the queue (or is shed by a draining leader — see
  // below) and reports kDeadline. Once `taken` is set the request is
  // guaranteed to execute, so the deadline stops applying.
  while (!req.done) {
    if (!can_lead()) {
      if (req.taken || req.deadline == kNoDeadline) {
        while (!req.done && !can_lead()) cv_.wait(mu_);
      } else {
        bool woke = true;
        while (!req.done && !req.taken && !can_lead()) {
          if (cv_.wait_until(mu_, req.deadline) == std::cv_status::timeout) {
            woke = req.done || req.taken || can_lead();
            break;
          }
        }
        if (!woke && !req.done && !req.taken) {
          // Expired while queued: withdraw and shed the load.
          auto it = std::find(queue_.begin(), queue_.end(), &req);
          SPTX_CHECK(it != queue_.end(), "expired request not in queue");
          queue_.erase(it);
          queued_triplets_ -= size;
          ++stats_.rejected_deadline;
          return RejectReason::kDeadline;
        }
      }
      continue;
    }
    leader_active_ = true;

    // Optional linger: give followers `window_` to pile in, cut short the
    // moment a full batch is queued. window 0 skips straight to the drain —
    // continuous batching, coalescing only what contention already queued.
    if (window_.count() > 0 && queued_triplets_ < max_batch_) {
      const auto linger = std::chrono::steady_clock::now() + window_;
      while (queued_triplets_ < max_batch_)
        if (cv_.wait_until(mu_, linger) == std::cv_status::timeout) break;
    }

    // Drain up to max_batch_ triplets in arrival order, shedding requests
    // whose deadline already passed — too late to start scoring them, and
    // skipping them is precisely the useful work the deadline buys under
    // overload. The first live request is always taken, even when it alone
    // exceeds the cap — the cap bounds coalescing, not request size.
    std::vector<Request*> batch;
    index_t total = 0;
    bool shed = false;
    const auto now = std::chrono::steady_clock::now();
    while (!queue_.empty()) {
      Request* r = queue_.front();
      const auto r_size = static_cast<index_t>(r->triplets.size());
      if (r->deadline != kNoDeadline && now >= r->deadline) {
        queue_.pop_front();
        queued_triplets_ -= r_size;
        r->reject = RejectReason::kDeadline;
        r->done = true;
        ++stats_.shed_expired;
        ++stats_.rejected_deadline;
        shed = true;
        continue;
      }
      if (!batch.empty() && total + r_size > max_batch_) break;
      batch.push_back(r);
      r->taken = true;
      total += r_size;
      queue_.pop_front();
      queued_triplets_ -= r_size;
    }
    if (batch.empty()) {
      // Everything queued had expired (own request included, possibly).
      leader_active_ = false;
      cv_.notify_all();
      continue;
    }
    ++stats_.batches_executed;
    if (batch.size() > 1)
      stats_.coalesced_requests += static_cast<std::int64_t>(batch.size());
    ++executing_;  // occupies a concurrency slot until the score() returns
    const bool leftovers = !queue_.empty();
    leader_active_ = false;
    lk.unlock();
    // Requests this drain could not fit elect their own leader and execute
    // concurrently with ours — score() is thread-safe. Shed requests also
    // need waking to observe their rejection.
    if (leftovers || shed) cv_.notify_all();

    // The execution slot is runtime-accounted: the batch scores on the
    // leader's thread (a queue round-trip would put serving tail latency at
    // the mercy of worker wakeup) under the pool's kServe class, and the
    // kernels inside score_ run their parallel regions on the shared pool —
    // serving compute and training compute draw on one thread budget
    // instead of two schemes assuming they own the machine.
    if (runtime::use_pool())
      runtime::TaskPool::instance().record_external(runtime::TaskClass::kServe);

    if (batch.size() == 1) {
      // Solo request: no concatenation, score the span directly.
      const std::vector<float> scores = score_(batch[0]->triplets);
      std::memcpy(batch[0]->out, scores.data(), scores.size() * sizeof(float));
    } else {
      std::vector<Triplet> fused;
      fused.reserve(static_cast<std::size_t>(total));
      for (const Request* r : batch)
        fused.insert(fused.end(), r->triplets.begin(), r->triplets.end());
      const std::vector<float> scores = score_(fused);
      std::size_t offset = 0;
      for (const Request* r : batch) {
        std::memcpy(r->out, scores.data() + offset,
                    r->triplets.size() * sizeof(float));
        offset += r->triplets.size();
      }
    }

    lk.lock();
    --executing_;  // the freed slot lets the next leader start
    for (Request* r : batch) r->done = true;
    cv_.notify_all();
  }
  return req.reject;
}

MicroBatcher::Stats MicroBatcher::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace sptx::serve
