#include "src/serve/micro_batcher.hpp"

#include <cstring>
#include <utility>

#include "src/common/error.hpp"

namespace sptx::serve {

MicroBatcher::MicroBatcher(ScoreFn score, index_t max_batch,
                           std::chrono::microseconds window)
    : score_(std::move(score)), max_batch_(max_batch), window_(window) {
  SPTX_CHECK(score_ != nullptr, "MicroBatcher needs a scorer");
  SPTX_CHECK(max_batch_ >= 1, "max_batch must be >= 1");
}

void MicroBatcher::execute(std::span<const Triplet> triplets, float* out) {
  if (triplets.empty()) return;
  Request req{triplets, out};

  std::unique_lock<std::mutex> lk(mu_);
  queue_.push_back(&req);
  queued_triplets_ += static_cast<index_t>(triplets.size());
  ++stats_.requests;
  stats_.triplets += static_cast<index_t>(triplets.size());
  cv_.notify_all();  // a lingering leader may now be full enough to run

  // Leader/follower loop. A caller leaves only when its own request is
  // done; becoming leader (possibly for a batch that does not contain its
  // own request, when a previous leader already took it) loops back here
  // afterwards to wait for whoever is executing it. Leadership requires a
  // non-empty queue: a caller whose request is mid-execution elsewhere must
  // not claim an empty queue and spin draining nothing.
  while (!req.done) {
    if (leader_active_ || queue_.empty()) {
      cv_.wait(lk, [&] {
        return req.done || (!leader_active_ && !queue_.empty());
      });
      continue;
    }
    leader_active_ = true;

    // Optional linger: give followers `window_` to pile in, cut short the
    // moment a full batch is queued. window 0 skips straight to the drain —
    // continuous batching, coalescing only what contention already queued.
    if (window_.count() > 0 && queued_triplets_ < max_batch_) {
      const auto deadline = std::chrono::steady_clock::now() + window_;
      cv_.wait_until(lk, deadline,
                     [&] { return queued_triplets_ >= max_batch_; });
    }

    // Drain up to max_batch_ triplets in arrival order. The first request
    // is always taken, even when it alone exceeds the cap — the cap bounds
    // coalescing, not request size.
    std::vector<Request*> batch;
    index_t total = 0;
    while (!queue_.empty()) {
      Request* r = queue_.front();
      const auto size = static_cast<index_t>(r->triplets.size());
      if (!batch.empty() && total + size > max_batch_) break;
      batch.push_back(r);
      total += size;
      queue_.pop_front();
      queued_triplets_ -= size;
    }
    ++stats_.batches_executed;
    if (batch.size() > 1)
      stats_.coalesced_requests += static_cast<std::int64_t>(batch.size());
    const bool leftovers = !queue_.empty();
    leader_active_ = false;
    lk.unlock();
    // Requests this drain could not fit elect their own leader and execute
    // concurrently with ours — score() is thread-safe.
    if (leftovers) cv_.notify_all();

    if (batch.size() == 1) {
      // Solo request: no concatenation, score the span directly.
      const std::vector<float> scores = score_(batch[0]->triplets);
      std::memcpy(batch[0]->out, scores.data(), scores.size() * sizeof(float));
    } else {
      std::vector<Triplet> fused;
      fused.reserve(static_cast<std::size_t>(total));
      for (const Request* r : batch)
        fused.insert(fused.end(), r->triplets.begin(), r->triplets.end());
      const std::vector<float> scores = score_(fused);
      std::size_t offset = 0;
      for (const Request* r : batch) {
        std::memcpy(r->out, scores.data() + offset,
                    r->triplets.size() * sizeof(float));
        offset += r->triplets.size();
      }
    }

    lk.lock();
    for (Request* r : batch) r->done = true;
    cv_.notify_all();
  }
}

MicroBatcher::Stats MicroBatcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace sptx::serve
