#include "src/serve/ann_index.hpp"

#include <cctype>
#include <cmath>
#include <numeric>
#include <utility>

#include "src/common/error.hpp"
#include "src/runtime/parallel.hpp"
#include "src/common/rng.hpp"
#include "src/common/simd.hpp"
#include "src/profiling/counters.hpp"

namespace sptx::serve {

AnnMode parse_ann_mode(std::string_view text) {
  std::string lower(text);
  for (char& c : lower) c = static_cast<char>(std::tolower(c));
  if (lower == "auto") return AnnMode::kAuto;
  if (lower == "on") return AnnMode::kOn;
  if (lower == "off") return AnnMode::kOff;
  throw Error("invalid ANN mode '" + std::string(text) +
              "' (expected auto|on|off)");
}

namespace {

/// Index of the L2-nearest centroid via the expansion argmin ||x − c||² =
/// argmax ⟨x, c⟩ − ½||c||² (centroid norms precomputed once per pass).
index_t nearest_centroid(const float* x, const Matrix& centroids,
                         const std::vector<float>& half_sqnorm) {
  const index_t k = centroids.rows();
  const index_t d = centroids.cols();
  index_t best = 0;
  float best_score = simd::dot(x, centroids.row(0), d) - half_sqnorm[0];
  for (index_t j = 1; j < k; ++j) {
    const float s = simd::dot(x, centroids.row(j), d) - half_sqnorm[j];
    if (s > best_score) {
      best_score = s;
      best = j;
    }
  }
  return best;
}

std::vector<float> half_squared_norms(const Matrix& centroids) {
  std::vector<float> out(static_cast<std::size_t>(centroids.rows()));
  for (index_t j = 0; j < centroids.rows(); ++j)
    out[static_cast<std::size_t>(j)] =
        0.5f * simd::squared_norm(centroids.row(j), centroids.cols());
  return out;
}

}  // namespace

std::shared_ptr<const AnnIndex> AnnIndex::build(const Matrix& table,
                                                index_t num_entities,
                                                const AnnIndexOptions& options) {
  SPTX_CHECK(num_entities > 0 && num_entities <= table.rows(),
             "ANN build over " << num_entities << " entities but the table has "
                               << table.rows() << " rows");
  // Runtime accounting: the build runs on the publisher's thread, but its
  // k-means passes below are pool parallel regions — tag the whole build
  // under the kAnnBuild class so health can attribute the pool traffic.
  if (runtime::use_pool())
    runtime::TaskPool::instance().record_external(
        runtime::TaskClass::kAnnBuild);
  const index_t n = num_entities;
  const index_t d = table.cols();
  index_t k = options.k_lists > 0
                  ? options.k_lists
                  : static_cast<index_t>(
                        std::ceil(std::sqrt(static_cast<double>(n))));
  k = std::clamp<index_t>(k, 1, n);

  // Training sample: iterations over min(N, k·per_list) points keeps the
  // Lloyd cost ~O(k²·d·iters) at million-entity scale.
  Rng rng(options.seed);
  const index_t sample_size =
      std::min(n, k * std::max<index_t>(options.train_points_per_list, 1));
  std::vector<index_t> sample(static_cast<std::size_t>(sample_size));
  if (sample_size == n) {
    std::iota(sample.begin(), sample.end(), index_t{0});
  } else {
    for (index_t& s : sample)
      s = static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(n)));
  }

  // Init: k distinct sample positions (Fisher–Yates prefix of the sample).
  auto index = std::shared_ptr<AnnIndex>(new AnnIndex());
  index->centroids_ = Matrix(k, d);
  for (index_t j = 0; j < k; ++j) {
    const std::size_t pick =
        static_cast<std::size_t>(j) +
        static_cast<std::size_t>(rng.next_below(
            static_cast<std::uint64_t>(sample_size - j)));
    std::swap(sample[static_cast<std::size_t>(j)], sample[pick]);
    const float* src = table.row(sample[static_cast<std::size_t>(j)]);
    std::copy(src, src + d, index->centroids_.row(j));
  }
  Matrix& centroids = index->centroids_;

  std::vector<index_t> assign(static_cast<std::size_t>(sample_size));
  Matrix sums(k, d);
  std::vector<index_t> counts(static_cast<std::size_t>(k));
  for (int iter = 0; iter < std::max(options.iterations, 1); ++iter) {
    const std::vector<float> half = half_squared_norms(centroids);
    runtime::parallel_for(
        0, sample_size,
        [&](index_t i) {
          assign[static_cast<std::size_t>(i)] = nearest_centroid(
              table.row(sample[static_cast<std::size_t>(i)]), centroids, half);
        },
        /*grain=*/256);
    std::fill(sums.data(), sums.data() + sums.size(), 0.0f);
    std::fill(counts.begin(), counts.end(), index_t{0});
    for (index_t i = 0; i < sample_size; ++i) {
      const index_t c = assign[static_cast<std::size_t>(i)];
      simd::add(sums.row(c), table.row(sample[static_cast<std::size_t>(i)]), d);
      ++counts[static_cast<std::size_t>(c)];
    }
    for (index_t j = 0; j < k; ++j) {
      if (counts[static_cast<std::size_t>(j)] > 0) {
        const float inv =
            1.0f / static_cast<float>(counts[static_cast<std::size_t>(j)]);
        const float* s = sums.row(j);
        float* c = centroids.row(j);
        for (index_t col = 0; col < d; ++col) c[col] = s[col] * inv;
      } else {
        // Empty list: re-seed from a random sample point so k lists survive.
        const float* src = table.row(sample[static_cast<std::size_t>(
            rng.next_below(static_cast<std::uint64_t>(sample_size)))]);
        std::copy(src, src + d, centroids.row(j));
      }
    }
  }

  // One full assignment pass over all N points, then a counting sort into
  // CSR lists. Ascending entity order within each list falls out of the
  // stable placement loop.
  std::vector<index_t> full(static_cast<std::size_t>(n));
  {
    const std::vector<float> half = half_squared_norms(centroids);
    runtime::parallel_for(
        0, n,
        [&](index_t i) {
          full[static_cast<std::size_t>(i)] =
              nearest_centroid(table.row(i), centroids, half);
        },
        /*grain=*/256);
  }
  index->list_offsets_.assign(static_cast<std::size_t>(k) + 1, 0);
  for (index_t i = 0; i < n; ++i)
    ++index->list_offsets_[static_cast<std::size_t>(full[
        static_cast<std::size_t>(i)]) + 1];
  for (std::size_t j = 1; j < index->list_offsets_.size(); ++j)
    index->list_offsets_[j] += index->list_offsets_[j - 1];
  index->members_.resize(static_cast<std::size_t>(n));
  std::vector<index_t> cursor(index->list_offsets_.begin(),
                              index->list_offsets_.end() - 1);
  for (index_t i = 0; i < n; ++i) {
    const index_t c = full[static_cast<std::size_t>(i)];
    index->members_[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(c)]++)] = i;
  }
  index->num_points_ = n;
  profiling::count_event(profiling::Counter::kAnnIndexBuilds);
  return index;
}

int AnnIndex::probe(const float* q, const Probe& probe_geom, int nprobe,
                    index_t min_candidates, std::vector<index_t>& out) const {
  const index_t k = centroids_.rows();
  const index_t d = centroids_.cols();
  out.clear();

  // Rank every centroid under the family's probe metric; lower = better
  // (inner product negated). Ties break on list id for determinism.
  std::vector<std::pair<float, index_t>> order(static_cast<std::size_t>(k));
  for (index_t j = 0; j < k; ++j) {
    const float* c = centroids_.row(j);
    float s;
    if (probe_geom.inner_product) {
      s = -simd::dot(q, c, d);
    } else if (probe_geom.weights != nullptr) {
      float acc = 0.0f;
      for (index_t col = 0; col < d; ++col) {
        const float v = q[col] - c[col];
        acc += probe_geom.weights[col] * v * v;
      }
      s = acc;
    } else if (probe_geom.norm == kernels::Norm::kL2) {
      float acc = 0.0f;
      for (index_t col = 0; col < d; ++col) {
        const float v = q[col] - c[col];
        acc += v * v;
      }
      s = acc;
    } else {
      float acc = 0.0f;
      for (index_t col = 0; col < d; ++col)
        acc += std::fabs(q[col] - c[col]);
      s = acc;
    }
    order[static_cast<std::size_t>(j)] = {s, j};
  }
  std::sort(order.begin(), order.end());

  const int want = std::max(nprobe, 1);
  int probed = 0;
  for (const auto& [score, j] : order) {
    if (probed >= want && static_cast<index_t>(out.size()) >= min_candidates)
      break;
    const auto begin = static_cast<std::size_t>(
        list_offsets_[static_cast<std::size_t>(j)]);
    const auto end = static_cast<std::size_t>(
        list_offsets_[static_cast<std::size_t>(j) + 1]);
    out.insert(out.end(), members_.begin() + static_cast<std::ptrdiff_t>(begin),
               members_.begin() + static_cast<std::ptrdiff_t>(end));
    ++probed;
  }
  return probed;
}

std::shared_ptr<const AnnIndex> maybe_build_ann(const models::KgeModel& model,
                                                AnnMode mode,
                                                index_t min_entities,
                                                const AnnIndexOptions& options) {
  if (mode == AnnMode::kOff) return nullptr;
  if (mode == AnnMode::kAuto && model.num_entities() < min_entities)
    return nullptr;
  const auto support = model.ann_support();
  if (!support) return nullptr;
  return AnnIndex::build(*support->table, model.num_entities(), options);
}

std::shared_ptr<const ServingSnapshot> make_serving_snapshot(
    std::shared_ptr<const models::KgeModel> model, AnnMode mode,
    index_t min_entities, std::uint64_t version,
    const AnnIndexOptions& options) {
  SPTX_CHECK(model != nullptr, "a serving snapshot needs a frozen model");
  auto snapshot = std::make_shared<ServingSnapshot>();
  snapshot->version = version;
  snapshot->ann = maybe_build_ann(*model, mode, min_entities, options);
  snapshot->model = std::move(model);
  return snapshot;
}

}  // namespace sptx::serve
