// IVF-style clustered ANN index over frozen entity embeddings, plus the
// versioned serving snapshot it ships in.
//
// The serving wall this attacks: top_tails/top_heads brute-force a score
// against every entity, so top-k QPS degrades linearly with vocabulary
// size. The index partitions the N entity points into k ≈ √N centroid
// lists (k-means, SIMD Lloyd iterations over the library's simd::
// primitives); a query then ranks the k centroids under the model family's
// probe geometry (models::AnnSupport), scans only the members of the top
// `nprobe` lists, and exact-re-ranks that candidate union through the
// model's own score path (kernels::rerank_candidates). Only the CANDIDATE
// SET is approximate — every returned score is bit-identical to what the
// brute-force scan would have produced for the same entity, and probing
// all k lists returns exactly the brute-force result set.
//
// Index training is sampled Lloyd: iterations run over at most
// k·train_points_per_list points so build cost stays ~O(k²·d·iters)
// instead of O(N·k·d·iters), then one full assignment pass places all N
// points. Clustering always uses L2 geometry (the standard IVF choice);
// the PROBE metric is the family's (L1/L2/weighted-L2 distance or inner
// product), which is what recall rides on. Builds are deterministic: a
// seeded Rng, no data races, members sorted by entity id within each list.
//
// ServingSnapshot is the RCU payload for zero-downtime hot-swap: one
// immutable (version, model, index) triple published atomically under live
// sessions via a shared_ptr flip (session.hpp). The index holds no pointer
// back into the model — its centroids are copies and its member lists are
// plain ids — but it is only meaningful for the exact table it was built
// from, which is why the two travel in one snapshot.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "src/kernels/fused.hpp"
#include "src/models/model.hpp"
#include "src/tensor/matrix.hpp"

namespace sptx::serve {

/// SPTX_ANN / SessionOptions::ann tri-state: kAuto engages the index when
/// the family has a transform AND the vocabulary clears the entity
/// threshold, kOn for any size, kOff never.
enum class AnnMode { kAuto, kOn, kOff };

/// Parse "auto" | "on" | "off" (case-insensitive); throws on anything else.
AnnMode parse_ann_mode(std::string_view text);

struct AnnIndexOptions {
  /// Centroid-list count; 0 derives ceil(√N) (clamped to [1, N]).
  index_t k_lists = 0;
  /// Lloyd iterations over the training sample.
  int iterations = 6;
  /// Training-sample budget per list: iterations see at most
  /// k_lists·this many points (the full N still gets assigned once).
  index_t train_points_per_list = 128;
  /// Seed for sampling + centroid init — builds are deterministic.
  std::uint64_t seed = 0x5EEDBA5Eu;
};

class AnnIndex {
 public:
  /// Cluster rows [0, num_entities) of `table` (the entity prefix of a
  /// stacked [entities; relations] table is exactly this). The index copies
  /// what it needs; `table` need not outlive it.
  static std::shared_ptr<const AnnIndex> build(
      const Matrix& table, index_t num_entities,
      const AnnIndexOptions& options = {});

  /// Probe geometry resolved for one query: the family's metric with the
  /// per-relation weight row (TransA) already selected.
  struct Probe {
    kernels::Norm norm = kernels::Norm::kL2;
    bool inner_product = false;
    const float* weights = nullptr;  // d floats, or null
  };

  /// Rank the centroids for query row `q` under `probe` and append the
  /// entity ids of the best `nprobe` lists to `out` (cleared first),
  /// extending past nprobe while fewer than `min_candidates` ids have
  /// accumulated (short lists must not starve a top-k). Returns the number
  /// of lists actually scanned. Deterministic: centroid ties break by list
  /// id, members are pre-sorted by entity id.
  int probe(const float* q, const Probe& probe_geom, int nprobe,
            index_t min_candidates, std::vector<index_t>& out) const;

  index_t k_lists() const { return centroids_.rows(); }
  index_t num_points() const { return num_points_; }
  index_t dim() const { return centroids_.cols(); }
  /// Resident footprint (centroids + lists) for the health surface.
  std::size_t bytes() const {
    return centroids_.bytes() + members_.size() * sizeof(index_t) +
           list_offsets_.size() * sizeof(index_t);
  }

  /// The default recall/latency dial when SPTX_ANN_NPROBE is unset: scan
  /// ~10% of the lists, never fewer than 4.
  static int auto_nprobe(index_t k_lists) {
    return static_cast<int>(std::max<index_t>(4, k_lists / 10));
  }

 private:
  AnnIndex() = default;

  Matrix centroids_;                   // k × d
  std::vector<index_t> list_offsets_;  // k + 1 CSR offsets into members_
  std::vector<index_t> members_;       // entity ids grouped by list
  index_t num_points_ = 0;
};

/// One immutable serving version: the frozen model and the ANN index built
/// over its entity table (null when ANN is off / unsupported / below the
/// threshold — sessions then brute-force, which is always correct).
struct ServingSnapshot {
  std::uint64_t version = 0;
  std::shared_ptr<const models::KgeModel> model;
  std::shared_ptr<const AnnIndex> ann;
};

/// Build the index for `model` iff `mode`, the family's ann_support() and
/// the `min_entities` threshold (kAuto only) all allow it; null otherwise.
std::shared_ptr<const AnnIndex> maybe_build_ann(
    const models::KgeModel& model, AnnMode mode, index_t min_entities,
    const AnnIndexOptions& options = {});

/// Assemble a ServingSnapshot: maybe_build_ann + version stamp. `model`
/// must be frozen/immutable (models::freeze).
std::shared_ptr<const ServingSnapshot> make_serving_snapshot(
    std::shared_ptr<const models::KgeModel> model, AnnMode mode,
    index_t min_entities, std::uint64_t version,
    const AnnIndexOptions& options = {});

}  // namespace sptx::serve
