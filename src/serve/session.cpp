#include "src/serve/session.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/common/fault.hpp"
#include "src/models/snapshot.hpp"
#include "src/profiling/counters.hpp"

namespace sptx::serve {

SessionOptions resolve(const SessionOptions& options,
                       const RuntimeConfig& rc) {
  SessionOptions resolved = options;
  resolved.micro_batch =
      rc.flag_or("SPTX_SERVE_MICROBATCH", options.micro_batch);
  resolved.max_batch = static_cast<index_t>(
      rc.int_or("SPTX_SERVE_MAX_BATCH", options.max_batch));
  resolved.window_us =
      static_cast<int>(rc.int_or("SPTX_SERVE_WINDOW_US", options.window_us));
  resolved.plan_cache = rc.flag_or("SPTX_SERVE_PLAN_CACHE", options.plan_cache);
  resolved.max_cached_plans = static_cast<index_t>(
      rc.int_or("SPTX_SERVE_MAX_PLANS", options.max_cached_plans));
  resolved.queue_limit = static_cast<index_t>(
      rc.int_or("SPTX_SERVE_QUEUE_LIMIT", options.queue_limit));
  resolved.deadline_us = rc.int_or("SPTX_SERVE_DEADLINE_US",
                                   options.deadline_us);
  resolved.max_concurrency = static_cast<int>(
      rc.int_or("SPTX_SERVE_CONCURRENCY", options.max_concurrency));
  const std::string ann = rc.value_or("SPTX_ANN", "");
  if (!ann.empty()) resolved.ann = parse_ann_mode(ann);
  resolved.ann_nprobe = static_cast<int>(
      rc.int_or("SPTX_ANN_NPROBE", options.ann_nprobe));
  resolved.ann_min_entities = static_cast<index_t>(
      rc.int_or("SPTX_ANN_MIN_ENTITIES", options.ann_min_entities));
  return resolved;
}

InferenceSession::InferenceSession(
    std::shared_ptr<const models::KgeModel> model,
    const SessionOptions& options)
    : InferenceSession(
          make_serving_snapshot(std::move(model), options.ann,
                                options.ann_min_entities,
                                models::next_snapshot_version()),
          options) {}

InferenceSession::InferenceSession(
    std::shared_ptr<const ServingSnapshot> snapshot,
    const SessionOptions& options)
    : options_(options),
      snapshot_(std::move(snapshot)),
      batcher_(
          // Resolved at EXECUTION time, not capture time: a coalesced batch
          // scores against exactly one snapshot — the one current when the
          // leader executes — never half-old, half-new.
          [this](std::span<const Triplet> batch) {
            return cell_load()->model->score(batch);
          },
          std::max<index_t>(options.max_batch, 1),
          std::chrono::microseconds(std::max(options.window_us, 0)),
          std::max<index_t>(options.queue_limit, 0),
          std::max(options.max_concurrency, 0)) {
  const auto snap = cell_load();
  SPTX_CHECK(snap != nullptr && snap->model != nullptr,
             "InferenceSession needs a model snapshot");
  if (options_.filter != nullptr) {
    known_.reserve(static_cast<std::size_t>(options_.filter->size()) * 2);
    for (const Triplet& t : options_.filter->triplets()) known_.insert(t);
    options_.filter = nullptr;  // copied; never keep the caller's pointer
  }
}

std::shared_ptr<const ServingSnapshot> InferenceSession::cell_load() const {
#if defined(__cpp_lib_atomic_shared_ptr)
  return snapshot_.load(std::memory_order_acquire);
#else
  MutexLock lock(snapshot_mu_);
  return snapshot_;
#endif
}

void InferenceSession::cell_store(
    std::shared_ptr<const ServingSnapshot> snapshot) const {
#if defined(__cpp_lib_atomic_shared_ptr)
  snapshot_.store(std::move(snapshot), std::memory_order_release);
#else
  MutexLock lock(snapshot_mu_);
  snapshot_ = std::move(snapshot);
#endif
}

void InferenceSession::install(
    std::shared_ptr<const ServingSnapshot> snapshot) const {
  SPTX_CHECK(snapshot != nullptr && snapshot->model != nullptr,
             "install() needs a model snapshot");
  const auto current = cell_load();
  SPTX_CHECK(snapshot->model->num_entities() ==
                     current->model->num_entities() &&
                 snapshot->model->num_relations() ==
                     current->model->num_relations(),
             "hot-swap must preserve the vocabulary: serving "
                 << current->model->num_entities() << "x"
                 << current->model->num_relations() << ", installing "
                 << snapshot->model->num_entities() << "x"
                 << snapshot->model->num_relations());
  cell_store(std::move(snapshot));
  installs_.fetch_add(1, std::memory_order_relaxed);
}

void InferenceSession::check_triplet(const Triplet& t, index_t num_entities,
                                     index_t num_relations) const {
  SPTX_CHECK(t.head >= 0 && t.head < num_entities && t.tail >= 0 &&
                 t.tail < num_entities && t.relation >= 0 &&
                 t.relation < num_relations,
             "triplet out of range: (" << t.head << ", " << t.relation
                                       << ", " << t.tail << ") vs "
                                       << num_entities << " entities / "
                                       << num_relations << " relations");
}

std::vector<float> InferenceSession::score(
    std::span<const Triplet> batch) const {
  const auto snap = cell_load();
  const index_t n = snap->model->num_entities();
  const index_t r = snap->model->num_relations();
  for (const Triplet& t : batch) check_triplet(t, n, r);
  queries_.fetch_add(1, std::memory_order_relaxed);
  triplets_scored_.fetch_add(static_cast<std::int64_t>(batch.size()),
                             std::memory_order_relaxed);
  // SpMM-sized requests gain nothing from coalescing; score them directly.
  if (!options_.micro_batch ||
      static_cast<index_t>(batch.size()) >= options_.max_batch)
    return snap->model->score(batch);
  std::vector<float> out(batch.size());
  batcher_.execute(batch, out.data());
  return out;
}

float InferenceSession::score_one(const Triplet& t) const {
  return score(std::span<const Triplet>(&t, 1))[0];
}

ScoreResult InferenceSession::try_score(std::span<const Triplet> batch,
                                        std::int64_t deadline_us) const {
  // Resolve the deadline FIRST: admission control is measured from arrival,
  // before validation or queueing costs anything.
  if (deadline_us <= 0) deadline_us = options_.deadline_us;
  const MicroBatcher::Deadline deadline =
      deadline_us > 0 ? std::chrono::steady_clock::now() +
                            std::chrono::microseconds(deadline_us)
                      : MicroBatcher::kNoDeadline;

  const auto snap = cell_load();
  const index_t n = snap->model->num_entities();
  const index_t r = snap->model->num_relations();
  for (const Triplet& t : batch) check_triplet(t, n, r);
  ScoreResult result;
  if (batch.empty()) return result;
  queries_.fetch_add(1, std::memory_order_relaxed);

  // SpMM-sized requests and micro-batch-off sessions score directly — there
  // is no queue to wait in, so only a dead-on-arrival deadline (or an
  // injected serve_queue fault) can shed them.
  if (!options_.micro_batch ||
      static_cast<index_t>(batch.size()) >= options_.max_batch) {
    if (fault::should_fail("serve_queue")) {
      result.rejected = RejectReason::kQueueFull;
    } else if (deadline != MicroBatcher::kNoDeadline &&
               std::chrono::steady_clock::now() >= deadline) {
      result.rejected = RejectReason::kDeadline;
    } else {
      result.scores = snap->model->score(batch);
      triplets_scored_.fetch_add(static_cast<std::int64_t>(batch.size()),
                                 std::memory_order_relaxed);
      return result;
    }
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return result;
  }

  std::vector<float> out(batch.size());
  result.rejected = batcher_.try_execute(batch, out.data(), deadline);
  if (result.rejected == RejectReason::kNone) {
    result.scores = std::move(out);
    triplets_scored_.fetch_add(static_cast<std::int64_t>(batch.size()),
                               std::memory_order_relaxed);
  } else {
    rejected_.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

std::optional<sparse::PlanCache::Key> InferenceSession::candidate_key(
    bool corrupt_tail, std::int64_t anchor, std::int64_t relation) {
  // side(1 bit) | relation(23 bits) | anchor(40 bits) — exact or nothing;
  // a lossy key would let two queries share one candidate plan.
  constexpr std::int64_t kMaxAnchor = std::int64_t{1} << 40;
  constexpr std::int64_t kMaxRelation = std::int64_t{1} << 23;
  if (anchor < 0 || anchor >= kMaxAnchor || relation < 0 ||
      relation >= kMaxRelation)
    return std::nullopt;
  return (static_cast<sparse::PlanCache::Key>(corrupt_tail ? 1 : 0) << 63) |
         (static_cast<sparse::PlanCache::Key>(relation) << 40) |
         static_cast<sparse::PlanCache::Key>(anchor);
}

std::vector<float> InferenceSession::candidate_scores(
    const ServingSnapshot& snap, bool corrupt_tail, std::int64_t anchor,
    std::int64_t relation) const {
  const models::KgeModel& model = *snap.model;
  const index_t n = model.num_entities();
  SPTX_CHECK(anchor >= 0 && anchor < n, "entity id " << anchor
                                                     << " out of range");
  SPTX_CHECK(relation >= 0 && relation < model.num_relations(),
             "relation id " << relation << " out of range");

  const auto fill = [&](std::vector<Triplet>& out) {
    out.resize(static_cast<std::size_t>(n));
    for (index_t e = 0; e < n; ++e)
      out[static_cast<std::size_t>(e)] =
          corrupt_tail ? Triplet{anchor, relation, e}
                       : Triplet{e, relation, anchor};
  };

  std::span<const Triplet> candidates;
  std::shared_ptr<const sparse::CompiledBatch> plan;
  std::vector<Triplet> local;
  const auto key = options_.plan_cache
                       ? candidate_key(corrupt_tail, anchor, relation)
                       : std::nullopt;
  if (key) {
    plan = plans_.find(*key);
    if (!plan) {
      std::vector<Triplet> staged;
      fill(staged);
      plan = sparse::CompiledBatch::compile_owned(
          std::move(staged), sparse::ScoringRecipe{}, n,
          model.num_relations());
      // The cap bounds resident memory, not correctness: over the cap the
      // plan serves this query and is dropped. Check-and-insert is one
      // lock acquisition — concurrent misses can never overshoot the cap.
      plans_.put_bounded(*key, plan, options_.max_cached_plans);
    }
    candidates = plan->triplets();
  } else {
    fill(local);
    candidates = local;
  }
  triplets_scored_.fetch_add(n, std::memory_order_relaxed);
  return model.score(candidates);
}

namespace {

/// Top-k selection with a deterministic order: score direction per the
/// model, entity id as the tie-break. Input order never matters, which is
/// what makes the ANN path (candidates in probe order) and the brute path
/// (candidates in id order) agree exactly on identical candidate sets.
std::vector<Prediction> select_top_k(std::vector<Prediction>& candidates,
                                     int k, bool higher_is_better) {
  const auto better = [higher_is_better](const Prediction& a,
                                         const Prediction& b) {
    if (a.score != b.score)
      return higher_is_better ? a.score > b.score : a.score < b.score;
    return a.entity < b.entity;
  };
  const auto count =
      std::min<std::size_t>(static_cast<std::size_t>(std::max(k, 0)),
                            candidates.size());
  std::partial_sort(candidates.begin(),
                    candidates.begin() + static_cast<std::ptrdiff_t>(count),
                    candidates.end(), better);
  candidates.resize(count);
  return std::move(candidates);
}

}  // namespace

std::vector<Prediction> InferenceSession::top_impl(bool corrupt_tail,
                                                   std::int64_t anchor,
                                                   std::int64_t relation,
                                                   int k) const {
  // One snapshot resolution per request: everything below — probe, re-rank
  // or brute scan, stats — sees exactly this version.
  const auto snap = cell_load();
  const models::KgeModel& model = *snap->model;
  SPTX_CHECK(anchor >= 0 && anchor < model.num_entities(),
             "entity id " << anchor << " out of range");
  SPTX_CHECK(relation >= 0 && relation < model.num_relations(),
             "relation id " << relation << " out of range");
  queries_.fetch_add(1, std::memory_order_relaxed);

  std::vector<Prediction> candidates;
  const auto support =
      (options_.ann != AnnMode::kOff && snap->ann) ? model.ann_support()
                                                   : std::nullopt;
  if (support) {
    // ANN path: compose the probe query, scan the top-nprobe centroid
    // lists, exact-re-rank the candidate union through score().
    const AnnIndex& ann = *snap->ann;
    std::vector<float> q(static_cast<std::size_t>(support->table->cols()));
    model.ann_query(corrupt_tail, anchor, relation, q.data());
    const AnnIndex::Probe probe{
        support->norm, support->inner_product,
        support->probe_weights != nullptr ? support->probe_weights->row(relation)
                                          : nullptr};
    const int nprobe = options_.ann_nprobe > 0
                           ? options_.ann_nprobe
                           : AnnIndex::auto_nprobe(ann.k_lists());
    std::vector<index_t> ids;
    ann.probe(q.data(), probe, nprobe,
              static_cast<index_t>(std::max(k, 0)), ids);
    std::vector<float> scores(ids.size());
    kernels::rerank_candidates(
        corrupt_tail, anchor, relation, ids,
        [&model](std::span<const Triplet> block, float* out) {
          const std::vector<float> s = model.score(block);
          std::copy(s.begin(), s.end(), out);
        },
        scores.data());
    triplets_scored_.fetch_add(static_cast<std::int64_t>(ids.size()),
                               std::memory_order_relaxed);
    ann_candidates_.fetch_add(static_cast<std::int64_t>(ids.size()),
                              std::memory_order_relaxed);
    topk_ann_.fetch_add(1, std::memory_order_relaxed);
    profiling::count_event(profiling::Counter::kAnnTopkQueries);
    profiling::count_event(profiling::Counter::kAnnCandidates,
                           static_cast<std::int64_t>(ids.size()));
    candidates.reserve(ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const index_t e = ids[i];
      const Triplet t = corrupt_tail ? Triplet{anchor, relation, e}
                                     : Triplet{e, relation, anchor};
      if (filtered_out(t)) continue;
      candidates.push_back({e, scores[i]});
    }
  } else {
    const std::vector<float> scores =
        candidate_scores(*snap, corrupt_tail, anchor, relation);
    topk_brute_.fetch_add(1, std::memory_order_relaxed);
    profiling::count_event(profiling::Counter::kAnnBruteTopkQueries);
    candidates.reserve(scores.size());
    for (index_t e = 0; e < static_cast<index_t>(scores.size()); ++e) {
      const Triplet t = corrupt_tail ? Triplet{anchor, relation, e}
                                     : Triplet{e, relation, anchor};
      if (filtered_out(t)) continue;
      candidates.push_back({e, scores[static_cast<std::size_t>(e)]});
    }
  }
  return select_top_k(candidates, k, model.higher_is_better());
}

std::vector<Prediction> InferenceSession::top_tails(std::int64_t head,
                                                    std::int64_t relation,
                                                    int k) const {
  return top_impl(true, head, relation, k);
}

std::vector<Prediction> InferenceSession::top_heads(std::int64_t relation,
                                                    std::int64_t tail,
                                                    int k) const {
  return top_impl(false, tail, relation, k);
}

double InferenceSession::rank(const Triplet& truth, bool corrupt_tail) const {
  const auto snap = cell_load();
  // Both sides index into the candidate scores.
  check_triplet(truth, snap->model->num_entities(),
                snap->model->num_relations());
  queries_.fetch_add(1, std::memory_order_relaxed);
  const std::int64_t anchor = corrupt_tail ? truth.head : truth.tail;
  const std::int64_t truth_entity = corrupt_tail ? truth.tail : truth.head;
  const std::vector<float> scores =
      candidate_scores(*snap, corrupt_tail, anchor, truth.relation);
  const float truth_score = scores[static_cast<std::size_t>(truth_entity)];
  const bool higher = snap->model->higher_is_better();

  // Optimistic-average tie handling, filtered competitors excluded — the
  // evaluator's exact protocol (eval/link_prediction.cpp).
  std::int64_t better = 0, ties = 0;
  for (index_t e = 0; e < static_cast<index_t>(scores.size()); ++e) {
    if (e == truth_entity) continue;
    const Triplet candidate = corrupt_tail
                                  ? Triplet{anchor, truth.relation, e}
                                  : Triplet{e, truth.relation, anchor};
    if (filtered_out(candidate)) continue;
    const float s = scores[static_cast<std::size_t>(e)];
    const bool is_better = higher ? s > truth_score : s < truth_score;
    if (is_better) {
      ++better;
    } else if (s == truth_score) {
      ++ties;
    }
  }
  return 1.0 + static_cast<double>(better) + static_cast<double>(ties) / 2.0;
}

std::vector<double> InferenceSession::rank_batch(
    std::span<const Triplet> truths, bool corrupt_tail) const {
  std::vector<double> out;
  out.reserve(truths.size());
  for (const Triplet& t : truths) out.push_back(rank(t, corrupt_tail));
  return out;
}

SessionStats InferenceSession::stats() const {
  SessionStats s;
  s.queries = queries_.load(std::memory_order_relaxed);
  s.triplets_scored = triplets_scored_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.topk_ann = topk_ann_.load(std::memory_order_relaxed);
  s.topk_brute = topk_brute_.load(std::memory_order_relaxed);
  s.ann_candidates = ann_candidates_.load(std::memory_order_relaxed);
  s.installs = installs_.load(std::memory_order_relaxed);
  s.snapshot_version = cell_load()->version;
  s.batcher = batcher_.stats();
  s.plans = plans_.stats();
  return s;
}

}  // namespace sptx::serve
