#include "src/serve/session.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/common/fault.hpp"

namespace sptx::serve {

SessionOptions resolve(const SessionOptions& options,
                       const RuntimeConfig& rc) {
  SessionOptions resolved = options;
  resolved.micro_batch =
      rc.flag_or("SPTX_SERVE_MICROBATCH", options.micro_batch);
  resolved.max_batch = static_cast<index_t>(
      rc.int_or("SPTX_SERVE_MAX_BATCH", options.max_batch));
  resolved.window_us =
      static_cast<int>(rc.int_or("SPTX_SERVE_WINDOW_US", options.window_us));
  resolved.plan_cache = rc.flag_or("SPTX_SERVE_PLAN_CACHE", options.plan_cache);
  resolved.max_cached_plans = static_cast<index_t>(
      rc.int_or("SPTX_SERVE_MAX_PLANS", options.max_cached_plans));
  resolved.queue_limit = static_cast<index_t>(
      rc.int_or("SPTX_SERVE_QUEUE_LIMIT", options.queue_limit));
  resolved.deadline_us = rc.int_or("SPTX_SERVE_DEADLINE_US",
                                   options.deadline_us);
  resolved.max_concurrency = static_cast<int>(
      rc.int_or("SPTX_SERVE_CONCURRENCY", options.max_concurrency));
  return resolved;
}

InferenceSession::InferenceSession(
    std::shared_ptr<const models::KgeModel> model,
    const SessionOptions& options)
    : model_(std::move(model)),
      options_(options),
      batcher_(
          [m = model_.get()](std::span<const Triplet> batch) {
            return m->score(batch);
          },
          std::max<index_t>(options.max_batch, 1),
          std::chrono::microseconds(std::max(options.window_us, 0)),
          std::max<index_t>(options.queue_limit, 0),
          std::max(options.max_concurrency, 0)) {
  SPTX_CHECK(model_ != nullptr, "InferenceSession needs a model snapshot");
  if (options_.filter != nullptr) {
    known_.reserve(static_cast<std::size_t>(options_.filter->size()) * 2);
    for (const Triplet& t : options_.filter->triplets()) known_.insert(t);
    options_.filter = nullptr;  // copied; never keep the caller's pointer
  }
}

void InferenceSession::check_triplet(const Triplet& t) const {
  SPTX_CHECK(t.head >= 0 && t.head < num_entities() && t.tail >= 0 &&
                 t.tail < num_entities() && t.relation >= 0 &&
                 t.relation < num_relations(),
             "triplet out of range: (" << t.head << ", " << t.relation
                                       << ", " << t.tail << ") vs "
                                       << num_entities() << " entities / "
                                       << num_relations() << " relations");
}

std::vector<float> InferenceSession::score(
    std::span<const Triplet> batch) const {
  for (const Triplet& t : batch) check_triplet(t);
  queries_.fetch_add(1, std::memory_order_relaxed);
  triplets_scored_.fetch_add(static_cast<std::int64_t>(batch.size()),
                             std::memory_order_relaxed);
  // SpMM-sized requests gain nothing from coalescing; score them directly.
  if (!options_.micro_batch ||
      static_cast<index_t>(batch.size()) >= options_.max_batch)
    return model_->score(batch);
  std::vector<float> out(batch.size());
  batcher_.execute(batch, out.data());
  return out;
}

float InferenceSession::score_one(const Triplet& t) const {
  return score(std::span<const Triplet>(&t, 1))[0];
}

ScoreResult InferenceSession::try_score(std::span<const Triplet> batch,
                                        std::int64_t deadline_us) const {
  // Resolve the deadline FIRST: admission control is measured from arrival,
  // before validation or queueing costs anything.
  if (deadline_us <= 0) deadline_us = options_.deadline_us;
  const MicroBatcher::Deadline deadline =
      deadline_us > 0 ? std::chrono::steady_clock::now() +
                            std::chrono::microseconds(deadline_us)
                      : MicroBatcher::kNoDeadline;

  for (const Triplet& t : batch) check_triplet(t);
  ScoreResult result;
  if (batch.empty()) return result;
  queries_.fetch_add(1, std::memory_order_relaxed);

  // SpMM-sized requests and micro-batch-off sessions score directly — there
  // is no queue to wait in, so only a dead-on-arrival deadline (or an
  // injected serve_queue fault) can shed them.
  if (!options_.micro_batch ||
      static_cast<index_t>(batch.size()) >= options_.max_batch) {
    if (fault::should_fail("serve_queue")) {
      result.rejected = RejectReason::kQueueFull;
    } else if (deadline != MicroBatcher::kNoDeadline &&
               std::chrono::steady_clock::now() >= deadline) {
      result.rejected = RejectReason::kDeadline;
    } else {
      result.scores = model_->score(batch);
      triplets_scored_.fetch_add(static_cast<std::int64_t>(batch.size()),
                                 std::memory_order_relaxed);
      return result;
    }
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return result;
  }

  std::vector<float> out(batch.size());
  result.rejected = batcher_.try_execute(batch, out.data(), deadline);
  if (result.rejected == RejectReason::kNone) {
    result.scores = std::move(out);
    triplets_scored_.fetch_add(static_cast<std::int64_t>(batch.size()),
                               std::memory_order_relaxed);
  } else {
    rejected_.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

std::optional<sparse::PlanCache::Key> InferenceSession::candidate_key(
    bool corrupt_tail, std::int64_t anchor, std::int64_t relation) {
  // side(1 bit) | relation(23 bits) | anchor(40 bits) — exact or nothing;
  // a lossy key would let two queries share one candidate plan.
  constexpr std::int64_t kMaxAnchor = std::int64_t{1} << 40;
  constexpr std::int64_t kMaxRelation = std::int64_t{1} << 23;
  if (anchor < 0 || anchor >= kMaxAnchor || relation < 0 ||
      relation >= kMaxRelation)
    return std::nullopt;
  return (static_cast<sparse::PlanCache::Key>(corrupt_tail ? 1 : 0) << 63) |
         (static_cast<sparse::PlanCache::Key>(relation) << 40) |
         static_cast<sparse::PlanCache::Key>(anchor);
}

std::vector<float> InferenceSession::candidate_scores(
    bool corrupt_tail, std::int64_t anchor, std::int64_t relation) const {
  const index_t n = model_->num_entities();
  SPTX_CHECK(anchor >= 0 && anchor < n, "entity id " << anchor
                                                     << " out of range");
  SPTX_CHECK(relation >= 0 && relation < model_->num_relations(),
             "relation id " << relation << " out of range");

  const auto fill = [&](std::vector<Triplet>& out) {
    out.resize(static_cast<std::size_t>(n));
    for (index_t e = 0; e < n; ++e)
      out[static_cast<std::size_t>(e)] =
          corrupt_tail ? Triplet{anchor, relation, e}
                       : Triplet{e, relation, anchor};
  };

  std::span<const Triplet> candidates;
  std::shared_ptr<const sparse::CompiledBatch> plan;
  std::vector<Triplet> local;
  const auto key = options_.plan_cache
                       ? candidate_key(corrupt_tail, anchor, relation)
                       : std::nullopt;
  if (key) {
    plan = plans_.find(*key);
    if (!plan) {
      std::vector<Triplet> staged;
      fill(staged);
      plan = sparse::CompiledBatch::compile_owned(
          std::move(staged), sparse::ScoringRecipe{}, n,
          model_->num_relations());
      // The cap bounds resident memory, not correctness: over the cap the
      // plan serves this query and is dropped.
      if (plans_.stats().entries < options_.max_cached_plans)
        plans_.put(*key, plan);
    }
    candidates = plan->triplets();
  } else {
    fill(local);
    candidates = local;
  }
  triplets_scored_.fetch_add(n, std::memory_order_relaxed);
  return model_->score(candidates);
}

namespace {

/// Top-k selection with a deterministic order: score direction per the
/// model, entity id as the tie-break.
std::vector<Prediction> select_top_k(std::vector<Prediction>& candidates,
                                     int k, bool higher_is_better) {
  const auto better = [higher_is_better](const Prediction& a,
                                         const Prediction& b) {
    if (a.score != b.score)
      return higher_is_better ? a.score > b.score : a.score < b.score;
    return a.entity < b.entity;
  };
  const auto count =
      std::min<std::size_t>(static_cast<std::size_t>(std::max(k, 0)),
                            candidates.size());
  std::partial_sort(candidates.begin(),
                    candidates.begin() + static_cast<std::ptrdiff_t>(count),
                    candidates.end(), better);
  candidates.resize(count);
  return std::move(candidates);
}

}  // namespace

std::vector<Prediction> InferenceSession::top_tails(std::int64_t head,
                                                    std::int64_t relation,
                                                    int k) const {
  queries_.fetch_add(1, std::memory_order_relaxed);
  const std::vector<float> scores = candidate_scores(true, head, relation);
  std::vector<Prediction> candidates;
  candidates.reserve(scores.size());
  for (index_t e = 0; e < static_cast<index_t>(scores.size()); ++e) {
    if (filtered_out({head, relation, e})) continue;
    candidates.push_back({e, scores[static_cast<std::size_t>(e)]});
  }
  return select_top_k(candidates, k, model_->higher_is_better());
}

std::vector<Prediction> InferenceSession::top_heads(std::int64_t relation,
                                                    std::int64_t tail,
                                                    int k) const {
  queries_.fetch_add(1, std::memory_order_relaxed);
  const std::vector<float> scores = candidate_scores(false, tail, relation);
  std::vector<Prediction> candidates;
  candidates.reserve(scores.size());
  for (index_t e = 0; e < static_cast<index_t>(scores.size()); ++e) {
    if (filtered_out({e, relation, tail})) continue;
    candidates.push_back({e, scores[static_cast<std::size_t>(e)]});
  }
  return select_top_k(candidates, k, model_->higher_is_better());
}

double InferenceSession::rank(const Triplet& truth, bool corrupt_tail) const {
  check_triplet(truth);  // both sides index into the candidate scores
  queries_.fetch_add(1, std::memory_order_relaxed);
  const std::int64_t anchor = corrupt_tail ? truth.head : truth.tail;
  const std::int64_t truth_entity = corrupt_tail ? truth.tail : truth.head;
  const std::vector<float> scores =
      candidate_scores(corrupt_tail, anchor, truth.relation);
  const float truth_score = scores[static_cast<std::size_t>(truth_entity)];
  const bool higher = model_->higher_is_better();

  // Optimistic-average tie handling, filtered competitors excluded — the
  // evaluator's exact protocol (eval/link_prediction.cpp).
  std::int64_t better = 0, ties = 0;
  for (index_t e = 0; e < static_cast<index_t>(scores.size()); ++e) {
    if (e == truth_entity) continue;
    const Triplet candidate = corrupt_tail
                                  ? Triplet{anchor, truth.relation, e}
                                  : Triplet{e, truth.relation, anchor};
    if (filtered_out(candidate)) continue;
    const float s = scores[static_cast<std::size_t>(e)];
    const bool is_better = higher ? s > truth_score : s < truth_score;
    if (is_better) {
      ++better;
    } else if (s == truth_score) {
      ++ties;
    }
  }
  return 1.0 + static_cast<double>(better) + static_cast<double>(ties) / 2.0;
}

std::vector<double> InferenceSession::rank_batch(
    std::span<const Triplet> truths, bool corrupt_tail) const {
  std::vector<double> out;
  out.reserve(truths.size());
  for (const Triplet& t : truths) out.push_back(rank(t, corrupt_tail));
  return out;
}

SessionStats InferenceSession::stats() const {
  SessionStats s;
  s.queries = queries_.load(std::memory_order_relaxed);
  s.triplets_scored = triplets_scored_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.batcher = batcher_.stats();
  s.plans = plans_.stats();
  return s;
}

}  // namespace sptx::serve
