// Micro-batching queue for the inference serving layer.
//
// Production query traffic is many concurrent *small* requests (score one
// triple, a handful of candidates), while the SpMM-era scoring core is at
// its best on large batches. The MicroBatcher bridges the two: concurrent
// callers enqueue their triplet spans, one caller is elected leader, and the
// leader drains everything queued (up to max_batch triplets) into a single
// underlying score call, then distributes the result slices back. Under
// load, batching emerges naturally — while a leader executes, new arrivals
// pile up and the next leader takes them all in one sweep (continuous
// batching); an optional wait window lets the leader linger for followers
// on low-traffic deployments where pile-up alone would not coalesce.
//
// Correctness is unconditional: every model's score() is element-pure, so a
// coalesced batch returns bit-identical scores to per-request execution —
// asserted by tests/test_serve.cpp.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "src/kg/triplet.hpp"
#include "src/tensor/matrix.hpp"

namespace sptx::serve {

class MicroBatcher {
 public:
  using ScoreFn = std::function<std::vector<float>(std::span<const Triplet>)>;

  struct Stats {
    std::int64_t requests = 0;            // execute() calls served
    std::int64_t triplets = 0;            // triplets scored through the queue
    std::int64_t batches_executed = 0;    // underlying score() invocations
    std::int64_t coalesced_requests = 0;  // requests that shared a batch
  };

  /// `score` is the underlying batch scorer (thread-safe, element-pure).
  /// `max_batch` caps one coalesced execution; `window` is how long a
  /// leader waits for followers before executing (0 = drain-what's-queued
  /// continuous batching, the default posture).
  MicroBatcher(ScoreFn score, index_t max_batch,
               std::chrono::microseconds window);

  /// Score `triplets` into out[0..triplets.size()). Blocks until the
  /// result is ready; concurrent callers may share one underlying batch.
  void execute(std::span<const Triplet> triplets, float* out);

  Stats stats() const;

 private:
  struct Request {
    std::span<const Triplet> triplets;
    float* out = nullptr;
    bool done = false;
  };

  ScoreFn score_;
  const index_t max_batch_;
  const std::chrono::microseconds window_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request*> queue_;
  index_t queued_triplets_ = 0;
  bool leader_active_ = false;
  Stats stats_;
};

}  // namespace sptx::serve
