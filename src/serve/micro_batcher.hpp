// Micro-batching queue for the inference serving layer.
//
// Production query traffic is many concurrent *small* requests (score one
// triple, a handful of candidates), while the SpMM-era scoring core is at
// its best on large batches. The MicroBatcher bridges the two: concurrent
// callers enqueue their triplet spans, one caller is elected leader, and the
// leader drains everything queued (up to max_batch triplets) into a single
// underlying score call, then distributes the result slices back. Under
// load, batching emerges naturally — while a leader executes, new arrivals
// pile up and the next leader takes them all in one sweep (continuous
// batching); an optional wait window lets the leader linger for followers
// on low-traffic deployments where pile-up alone would not coalesce.
//
// Correctness is unconditional: every model's score() is element-pure, so a
// coalesced batch returns bit-identical scores to per-request execution —
// asserted by tests/test_serve.cpp.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <vector>

#include "src/common/thread_annotations.hpp"
#include "src/kg/triplet.hpp"
#include "src/tensor/matrix.hpp"

namespace sptx::serve {

/// Typed load-shedding outcome for the degradation-aware serving paths.
enum class RejectReason {
  kNone,       // accepted and scored
  kDeadline,   // the request could not START scoring before its deadline
  kQueueFull,  // the bounded queue was at capacity on arrival
};

const char* to_string(RejectReason reason);

class MicroBatcher {
 public:
  using ScoreFn = std::function<std::vector<float>(std::span<const Triplet>)>;
  using Deadline = std::chrono::steady_clock::time_point;

  /// "No deadline": the request lingers until served.
  static constexpr Deadline kNoDeadline = Deadline::max();

  struct Stats {
    std::int64_t requests = 0;            // execute() calls served
    std::int64_t triplets = 0;            // triplets scored through the queue
    std::int64_t batches_executed = 0;    // underlying score() invocations
    std::int64_t coalesced_requests = 0;  // requests that shared a batch
    // ---- graceful degradation -------------------------------------------
    std::int64_t rejected_queue_full = 0;  // bounced at arrival (bounded queue)
    std::int64_t rejected_deadline = 0;    // all deadline rejections
    std::int64_t shed_expired = 0;         // of those, shed by a draining
                                           // leader (queued too long)
  };

  /// `score` is the underlying batch scorer (thread-safe, element-pure).
  /// `max_batch` caps one coalesced execution; `window` is how long a
  /// leader waits for followers before executing (0 = drain-what's-queued
  /// continuous batching, the default posture). `queue_limit` bounds the
  /// queue in triplets — arrivals that would exceed it are rejected with
  /// kQueueFull instead of lingering unboundedly (0 = unbounded, the
  /// historical behavior). `max_concurrent` caps simultaneous underlying
  /// score() executions — the "worker pool" the queue feeds. 0 = unbounded
  /// (every caller thread may execute, the historical behavior); bounding
  /// it is what makes the queue, and therefore deadlines and the queue
  /// limit, meaningful under overload.
  MicroBatcher(ScoreFn score, index_t max_batch,
               std::chrono::microseconds window, index_t queue_limit = 0,
               int max_concurrent = 0);

  /// Score `triplets` into out[0..triplets.size()). Blocks until the
  /// result is ready; concurrent callers may share one underlying batch.
  /// Throws Error{kQueueFull} when a configured queue_limit (or an
  /// injected serve_queue fault) rejects the request — use try_execute for
  /// the non-throwing path.
  void execute(std::span<const Triplet> triplets, float* out)
      SPTX_EXCLUDES(mu_);

  /// Deadline-aware variant: returns kNone with out[] filled, or the
  /// typed rejection. A request rejected for deadline never started
  /// scoring (load shedding — no work is wasted on a result nobody can
  /// use); once a leader takes a request, it is guaranteed to execute.
  RejectReason try_execute(std::span<const Triplet> triplets, float* out,
                           Deadline deadline = kNoDeadline)
      SPTX_EXCLUDES(mu_);

  Stats stats() const SPTX_EXCLUDES(mu_);

 private:
  struct Request {
    std::span<const Triplet> triplets;
    float* out = nullptr;
    Deadline deadline = kNoDeadline;
    bool done = false;
    bool taken = false;  // claimed by a draining leader: will execute
    RejectReason reject = RejectReason::kNone;
  };

  /// True when a new leader may start an execution.
  bool slot_free() const SPTX_REQUIRES(mu_) {
    return max_concurrent_ == 0 || executing_ < max_concurrent_;
  }

  /// True when the caller may elect itself leader: nobody is draining, the
  /// queue has work, and a concurrency slot is open.
  bool can_lead() const SPTX_REQUIRES(mu_) {
    return !leader_active_ && !queue_.empty() && slot_free();
  }

  ScoreFn score_;
  const index_t max_batch_;
  const std::chrono::microseconds window_;
  const index_t queue_limit_;
  const int max_concurrent_;

  // Locking discipline: mu_ guards the queue and every scheduling decision
  // (leader election, concurrency slots, deadline shedding) as well as the
  // stats block. Request fields (done/taken/reject) belong to stack frames
  // of waiting callers and are only ever touched with mu_ held. The
  // underlying score_() runs with mu_ released — the whole point of the
  // leader/follower design — so slow models never serialize admission.
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<Request*> queue_ SPTX_GUARDED_BY(mu_);
  index_t queued_triplets_ SPTX_GUARDED_BY(mu_) = 0;
  bool leader_active_ SPTX_GUARDED_BY(mu_) = false;
  // In-flight score() calls (bounded by max_concurrent_).
  int executing_ SPTX_GUARDED_BY(mu_) = 0;
  Stats stats_ SPTX_GUARDED_BY(mu_);
};

}  // namespace sptx::serve
