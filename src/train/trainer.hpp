// Training loop — a staged plan/execute pipeline.
//
// Mirrors the paper's protocol (§5.3): pre-generated negatives (one per
// positive, sampled outside the loop), minibatch margin-ranking training,
// fixed learning rate 0.0004, optional LR scheduler (Appendix E). The loop
// times the three phases separately — loss computation (forward), gradient
// computation (backward), parameter update (step) — exactly the breakdown
// of Table 1 / Figure 8, and snapshots FLOPs and peak tracked memory for
// Tables 5/6.
//
// Each epoch runs in two stages: plan compilation (stage the batch pairs,
// pre-build the incidence matrices the model's ScoringRecipe names — see
// batch_plan.hpp) and execution (forward/backward/step over the compiled
// plans). Plans live in a sparse::PlanCache: with the paper's fixed-order
// protocol (no shuffle, no negative resampling) the schedule is
// epoch-invariant and every epoch after the first runs with zero incidence
// rebuilds; shuffle / resample_negatives invalidate the cache and
// recompile, optionally on a background prefetch thread that compiles epoch
// e+1 while epoch e executes (double buffering — bit-exact either way,
// because all RNG stays on the driving thread).
#pragma once

#include <functional>
#include <vector>

#include "src/common/runtime_config.hpp"
#include "src/kg/negative_sampler.hpp"
#include "src/kg/triplet.hpp"
#include "src/models/model.hpp"
#include "src/nn/optim.hpp"
#include "src/profiling/timer.hpp"
#include "src/sparse/plan_cache.hpp"

namespace sptx::train {

enum class LrSchedule { kConstant, kStep, kCosine };

struct TrainConfig {
  int epochs = 200;
  index_t batch_size = 32768;
  float lr = 0.0004f;  // §5.3
  kg::CorruptionScheme corruption = kg::CorruptionScheme::kUniform;
  bool filtered_negatives = false;
  LrSchedule schedule = LrSchedule::kConstant;
  int step_lr_every = 50;
  float step_lr_gamma = 0.5f;
  std::uint64_t seed = 42;
  bool record_loss_curve = true;
  bool use_adagrad = false;
  /// Paper protocol (§5.3) keeps one pre-generated negative per positive
  /// for the whole run. Setting this regenerates negatives each epoch —
  /// off-protocol, but markedly better ranking quality on small datasets;
  /// accuracy-focused examples/benches opt in.
  bool resample_negatives = false;
  /// Negatives per positive (k ≥ 1). With k > 1 each batch tiles its
  /// positives k times against k independent corruptions (DGL-KE's
  /// negative_sample_size). Loss stays a mean, so gradients are comparable
  /// across k.
  int negatives_per_positive = 1;
  /// Early stopping: when > 0, training-loss improvement is checked every
  /// epoch and the run stops after `patience` consecutive epochs without
  /// improving the best loss by at least `min_delta` (PyKEEN-style
  /// stopper, driven by the loss so it needs no validation pass).
  int patience = 0;
  float min_delta = 1e-5f;
  /// Shuffle the (positive, negative) pairs each epoch. Off by default to
  /// keep the paper's fixed-order protocol reproducible batch-for-batch.
  bool shuffle = false;
  /// Weight decay (decoupled L2, 0 = off) and global grad-norm clipping
  /// (0 = off) — forwarded to the optimizer.
  float weight_decay = 0.0f;
  float grad_clip_norm = 0.0f;
  /// Compile batch plans (staged pairs + pre-built incidence, batch_plan.hpp)
  /// and cache them across epochs. Off = the legacy per-batch rebuild path,
  /// kept as the reference the plan pipeline is tested bit-exact against.
  /// SPTX_PLAN_CACHE=0|1 overrides.
  bool plan_cache = true;
  /// Compile epoch e+1's plans on a background thread while epoch e
  /// executes. Only engages when shuffle / resample_negatives invalidate
  /// plans every epoch (otherwise the cache already serves them).
  /// SPTX_PREFETCH=0|1 overrides.
  bool prefetch = true;
  /// Crash safety: when > 0, write an atomic CRC-checksummed training
  /// checkpoint (model + optimizer + RNG + epoch cursor + sampling
  /// buffers) to `<checkpoint_path>.ep<N>` after every `checkpoint_every`
  /// completed epochs. A run resumed from such a checkpoint continues the
  /// exact trajectory — final parameters are bit-identical to the
  /// uninterrupted run (given the same plan_cache setting; the two
  /// pipelines stage their RNG differently). SPTX_CHECKPOINT_EVERY
  /// overrides.
  int checkpoint_every = 0;
  /// Base path for rotated checkpoints; required when checkpoint_every > 0.
  std::string checkpoint_path;
  /// Retain the last N rotated checkpoints (0 = keep all).
  /// SPTX_CHECKPOINT_KEEP overrides.
  int checkpoint_keep = 3;
  /// Resume from a checkpoint: either an explicit `.ep<N>` file or a base
  /// path, in which case the highest-epoch rotation is used. Empty = fresh
  /// run. The model/optimizer/seed configuration must match the
  /// checkpointing run.
  std::string resume_from;
};

struct TrainResult {
  profiling::PhaseTimer phases;       // forward / backward / step seconds
  std::vector<float> epoch_loss;      // mean margin loss per epoch
  double total_seconds = 0.0;
  std::int64_t peak_bytes = 0;        // tracked allocation high-water mark
  std::int64_t flops = 0;             // FLOPs spent inside the loop
  /// Plan-compilation stage: synchronous compiles plus time spent waiting
  /// on the prefetch thread at epoch boundaries.
  double plan_compile_s = 0.0;
  /// Wall time per epoch (epoch 0 includes its plan compilation) — the
  /// first-epoch vs cached-epoch comparison bench_pipeline reports.
  std::vector<double> epoch_seconds;
  /// Plan-cache traffic for the run (hits/misses/invalidations).
  sparse::PlanCache::Stats plan_stats;
  /// Incidence-matrix builder invocations inside the run; with an
  /// epoch-invariant schedule everything after epoch 0 must be zero.
  std::int64_t incidence_builds = 0;
  /// First epoch this run executed (> 0 when resumed from a checkpoint).
  /// epoch_loss still covers the full trajectory; phases / epoch_seconds /
  /// total_seconds cover only this process's share.
  int start_epoch = 0;
  /// Crash-safety traffic: checkpoints written and the newest one's path.
  int checkpoints_written = 0;
  std::string last_checkpoint;
};

/// Apply the registry's training overrides (SPTX_PLAN_CACHE, SPTX_PREFETCH)
/// to `config`. Knobs left unset in the snapshot keep the config's fields.
TrainConfig resolve(const TrainConfig& config, const RuntimeConfig& rc);

/// Train `model` on `data` per `config`. The callback (optional) fires after
/// every epoch with (epoch, mean_loss) — used for convergence studies.
/// Registry overrides come from the process-wide snapshot
/// (config::current()); Engine::train passes its own snapshot instead via
/// the RuntimeConfig overload. Both run the identical loop.
TrainResult train(models::KgeModel& model, const TripletStore& data,
                  const TrainConfig& config,
                  const std::function<void(int, float)>& on_epoch = {});

/// Engine path: resolve `config` against an explicit snapshot. No
/// process-global state is consulted; bit-identical to the overload above
/// whenever the snapshots agree.
TrainResult train(models::KgeModel& model, const TripletStore& data,
                  const TrainConfig& config, const RuntimeConfig& rc,
                  const std::function<void(int, float)>& on_epoch = {});

}  // namespace sptx::train
