// Epoch-level batch-plan compilation — the trainer's plan stage.
//
// A training epoch is a fixed schedule of (positive, negative) batch pairs.
// Compiling the schedule means staging the triplets (applying the epoch's
// pair permutation and the k-way negative tiling once, instead of re-copying
// them every batch of every epoch) and pre-building every incidence matrix
// the model's ScoringRecipe names. Compilation consumes only plain data —
// the triplet store, a negatives snapshot, a permutation — never the model's
// weights or the run's RNG, so the trainer can run it on a background
// prefetch thread while the previous epoch executes (double buffering).
//
// Plans flow through a sparse::PlanCache keyed by batch ordinal: when the
// batch composition is epoch-invariant (no shuffle, no negative resampling)
// every epoch after the first is served entirely from cache — zero incidence
// rebuilds, asserted by tests/test_batch_plan.cpp via the profiling
// counters. Shuffle or resampling invalidate the cache and recompile.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "src/kg/triplet.hpp"
#include "src/kg/triplet_source.hpp"
#include "src/sparse/plan_cache.hpp"

namespace sptx::train {

/// One compiled (positive, negative) batch pair, ready for forward/backward.
struct BatchPlan {
  std::shared_ptr<const sparse::CompiledBatch> pos;
  std::shared_ptr<const sparse::CompiledBatch> neg;
};

/// The inputs one epoch's compilation consumes. All RNG-driven state (the
/// permutation, refreshed negatives) is produced by the caller on the
/// driving thread, which keeps the RNG stream identical with prefetch on or
/// off. Spans must outlive the compiled plans unless staging copies them
/// (shuffle or k > 1 always stage).
struct EpochBatchSource {
  /// Positives — an in-memory store or an mmap'd streaming store; batches
  /// compile from zero-copy slices either way.
  kg::TripletSource data;
  /// Pre-generated negatives, repetition-major: entry rep·|data| + i
  /// corrupts positive i (NegativeSampler::pregenerate_k layout).
  std::span<const Triplet> negatives;
  /// Pair permutation applied this epoch; empty means identity order.
  std::span<const index_t> positions;
  int k = 1;  // negatives per positive
  index_t batch_size = 0;
};

/// Compile every batch of one epoch. Batches are served through `cache`
/// (keyed 2·ordinal for positives, 2·ordinal+1 for negatives) when non-null;
/// the caller invalidates the cache first whenever the schedule changed.
std::vector<BatchPlan> compile_epoch_plans(const EpochBatchSource& source,
                                           const sparse::ScoringRecipe& recipe,
                                           sparse::PlanCache* cache);

}  // namespace sptx::train
