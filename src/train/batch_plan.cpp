#include "src/train/batch_plan.hpp"

#include <algorithm>
#include <utility>

namespace sptx::train {

namespace {

/// Stage one batch: apply the permutation and the k-way tiling — the exact
/// pairing the §5.3 loop used to re-derive per batch per epoch. `is_pos`
/// selects the positive or the aligned corrupted side.
std::vector<Triplet> stage_batch(const EpochBatchSource& src, index_t begin,
                                 index_t count, bool is_pos) {
  const index_t m = src.data.size();
  std::vector<Triplet> staged;
  staged.reserve(static_cast<std::size_t>(src.k) *
                 static_cast<std::size_t>(count));
  for (int rep = 0; rep < src.k; ++rep) {
    for (index_t i = begin; i < begin + count; ++i) {
      const index_t p = src.positions.empty()
                            ? i
                            : src.positions[static_cast<std::size_t>(i)];
      if (is_pos) {
        staged.push_back(src.data[p]);
      } else {
        staged.push_back(
            src.negatives[static_cast<std::size_t>(rep) *
                              static_cast<std::size_t>(m) +
                          static_cast<std::size_t>(p)]);
      }
    }
  }
  return staged;
}

}  // namespace

std::vector<BatchPlan> compile_epoch_plans(const EpochBatchSource& source,
                                           const sparse::ScoringRecipe& recipe,
                                           sparse::PlanCache* cache) {
  SPTX_CHECK(source.data.valid() && source.batch_size > 0 && source.k >= 1,
             "bad epoch batch source");
  const index_t m = source.data.size();
  SPTX_CHECK(static_cast<index_t>(source.negatives.size()) ==
                 m * static_cast<index_t>(source.k),
             "negatives/positives size mismatch");
  const bool stage = !source.positions.empty() || source.k > 1;
  const index_t n = source.data.num_entities();
  const index_t r = source.data.num_relations();

  std::vector<BatchPlan> plans;
  plans.reserve(static_cast<std::size_t>((m + source.batch_size - 1) /
                                         source.batch_size));
  index_t ordinal = 0;
  for (index_t begin = 0; begin < m; begin += source.batch_size, ++ordinal) {
    const index_t count = std::min<index_t>(source.batch_size, m - begin);
    auto compile_side = [&](bool is_pos) {
      const sparse::PlanCache::Key key =
          (static_cast<sparse::PlanCache::Key>(ordinal) << 1) |
          (is_pos ? 0u : 1u);
      if (cache) {
        if (auto plan = cache->find(key)) return plan;
      }
      std::shared_ptr<const sparse::CompiledBatch> plan;
      if (stage) {
        plan = sparse::CompiledBatch::compile_owned(
            stage_batch(source, begin, count, is_pos), recipe, n, r);
      } else {
        const std::span<const Triplet> span =
            is_pos ? source.data.slice(begin, count)
                   : source.negatives.subspan(static_cast<std::size_t>(begin),
                                              static_cast<std::size_t>(count));
        plan = sparse::CompiledBatch::compile(span, recipe, n, r,
                                              /*copy_triplets=*/false);
      }
      if (cache) cache->put(key, plan);
      return plan;
    };
    BatchPlan bp;
    bp.pos = compile_side(/*is_pos=*/true);
    bp.neg = compile_side(/*is_pos=*/false);
    plans.push_back(std::move(bp));
  }
  return plans;
}

}  // namespace sptx::train
