#include "src/train/trainer.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>
#include <utility>

#include "src/common/fault.hpp"
#include "src/models/checkpoint.hpp"
#include "src/profiling/counters.hpp"
#include "src/profiling/flops.hpp"
#include "src/runtime/task_pool.hpp"
#include "src/tensor/memory_tracker.hpp"
#include "src/tensor/workspace.hpp"
#include "src/train/batch_plan.hpp"

namespace sptx::train {

namespace {

/// Joins on destruction so an exception unwinding past a live prefetch
/// thread never reaches std::thread's terminating destructor (legacy-mode
/// prefetch; the pool path gets the same guarantee from TaskGroup's
/// draining destructor).
struct JoiningThread {
  runtime::Thread t;
};

/// Fisher–Yates with the run's RNG (reproducible given the seed).
void shuffle_positions(std::vector<index_t>& positions, Rng& rng) {
  for (std::size_t i = positions.size(); i > 1; --i) {
    const std::size_t j = rng.next_below(i);
    std::swap(positions[i - 1], positions[j]);
  }
}

/// Shared per-run state the two pipeline variants both drive.
struct TrainLoop {
  models::KgeModel& model;
  const TripletStore& data;
  const TrainConfig& config;
  const std::function<void(int, float)>& on_epoch;

  Rng rng;
  kg::NegativeSampler sampler;
  std::vector<Triplet> negatives;
  std::unique_ptr<nn::Optimizer> opt;
  nn::StepLr step_lr;
  nn::CosineLr cosine_lr;
  TrainResult result;

  float best_loss = std::numeric_limits<float>::infinity();
  int epochs_without_improvement = 0;

  /// Resume state: the first epoch to execute and the permutation the
  /// checkpoint left in flight (consumed by the pipelines' first epoch).
  int start_epoch = 0;
  bool resumed = false;
  std::vector<index_t> restored_positions;

  TrainLoop(models::KgeModel& m, const TripletStore& d, const TrainConfig& c,
            const std::function<void(int, float)>& cb)
      : model(m),
        data(d),
        config(c),
        on_epoch(cb),
        rng(c.seed),
        sampler(d, c.corruption, c.filtered_negatives),
        negatives(sampler.pregenerate_k(d.triplets(), c.negatives_per_positive,
                                        rng)),
        opt(c.use_adagrad
                ? std::unique_ptr<nn::Optimizer>(
                      std::make_unique<nn::Adagrad>(m.params(), c.lr))
                : std::unique_ptr<nn::Optimizer>(
                      std::make_unique<nn::Sgd>(m.params(), c.lr))),
        step_lr(*opt, c.step_lr_every, c.step_lr_gamma),
        cosine_lr(*opt, std::max(c.epochs, 1)) {
    opt->set_weight_decay(c.weight_decay);
    opt->set_grad_clip_norm(c.grad_clip_norm);
  }

  void apply_schedule(int epoch) {
    switch (config.schedule) {
      case LrSchedule::kStep:
        step_lr.on_epoch(epoch);
        break;
      case LrSchedule::kCosine:
        cosine_lr.on_epoch(epoch);
        break;
      case LrSchedule::kConstant:
        break;
    }
  }

  /// One forward/backward/step over a batch-loss closure.
  template <typename LossFn>
  float run_batch(const LossFn& batch_loss) {
    opt->zero_grad();
    autograd::Variable loss;
    {
      profiling::ScopedAccum fwd(result.phases.forward_s);
      loss = batch_loss();
    }
    {
      profiling::ScopedAccum bwd(result.phases.backward_s);
      loss.backward();
    }
    {
      profiling::ScopedAccum stp(result.phases.step_s);
      opt->step();
      model.post_step();
    }
    return loss.value().at(0, 0);
  }

  /// Periodic-checkpoint cadence: after epoch `epoch` completes.
  bool should_checkpoint(int epoch) const {
    return config.checkpoint_every > 0 &&
           (epoch + 1) % config.checkpoint_every == 0 &&
           epoch + 1 < config.epochs;  // the final state is the result
  }

  /// Write the rotated crash-safe checkpoint for the just-completed epoch.
  /// `positions` is the permutation the NEXT epoch consumes (the planned
  /// pipeline checkpoints after adopting epoch e+1's inputs; the legacy
  /// pipeline re-derives at each epoch top, so "current" is right there
  /// too).
  void write_checkpoint(int epoch, const std::vector<index_t>& positions) {
    models::TrainCheckpointState st;
    st.next_epoch = epoch + 1;
    st.rng_state = rng.state();
    st.best_loss = best_loss;
    st.epochs_without_improvement = epochs_without_improvement;
    st.optimizer = opt->kind();
    st.optimizer_state = opt->export_state();
    st.negatives = negatives;
    st.positions = positions;
    st.epoch_loss = result.epoch_loss;
    const std::string path =
        models::checkpoint_path_for_epoch(config.checkpoint_path, epoch + 1);
    models::save_train_checkpoint(model, st, path);
    models::prune_checkpoints(config.checkpoint_path,
                              config.checkpoint_keep);
    ++result.checkpoints_written;
    result.last_checkpoint = path;
  }

  /// Restore trajectory state from `source` (an explicit .ep file or a
  /// base path whose newest rotation is used). Parameters load into the
  /// model; everything else overwrites the freshly constructed loop state.
  void restore(const std::string& source) {
    std::string path = source;
    if (!std::filesystem::exists(path)) {
      const auto found = models::latest_checkpoint(source);
      SPTX_CHECK_CODE(found.has_value(), ErrorCode::kIo,
                      "no checkpoint found at '"
                          << source << "' (or rotations " << source
                          << ".ep<N>)"
                          << models::describe_abort_sibling(source));
      path = found->path;
    }
    models::TrainCheckpointState st =
        models::load_train_checkpoint(model, path);
    SPTX_CHECK(st.optimizer == opt->kind(),
               "checkpoint was written with optimizer '"
                   << st.optimizer << "', this run uses '" << opt->kind()
                   << "'");
    opt->import_state(std::move(st.optimizer_state));
    rng.set_state(st.rng_state);
    negatives = std::move(st.negatives);
    restored_positions = std::move(st.positions);
    best_loss = st.best_loss;
    epochs_without_improvement = st.epochs_without_improvement;
    result.epoch_loss = std::move(st.epoch_loss);
    start_epoch = st.next_epoch;
    result.start_epoch = start_epoch;
    resumed = true;
  }

  /// Epoch-end bookkeeping; returns true when early stopping fires.
  bool finish_epoch(int epoch, double loss_sum, index_t batches,
                    profiling::clock::time_point epoch_start,
                    double extra_seconds) {
    const float mean_loss =
        batches > 0 ? static_cast<float>(loss_sum / batches) : 0.0f;
    if (config.record_loss_curve) result.epoch_loss.push_back(mean_loss);
    result.epoch_seconds.push_back(profiling::seconds_since(epoch_start) +
                                   extra_seconds);
    if (on_epoch) on_epoch(epoch, mean_loss);

    if (config.patience > 0) {
      if (mean_loss < best_loss - config.min_delta) {
        best_loss = mean_loss;
        epochs_without_improvement = 0;
      } else if (++epochs_without_improvement >= config.patience) {
        return true;  // early stop: no progress for `patience` epochs
      }
    }
    return false;
  }
};

/// Staged pipeline: plan-compile → forward/backward → step, with plans
/// cached across epochs and optionally prefetched one epoch ahead.
void run_planned(TrainLoop& loop) {
  const TrainConfig& config = loop.config;
  const TripletStore& data = loop.data;
  const int k = config.negatives_per_positive;
  const index_t m = data.size();

  auto* scoring = dynamic_cast<models::ScoringCoreModel*>(&loop.model);
  // Span-only models (dense baselines, external KgeModels) still get the
  // staged schedule — their plans carry triplets but no incidence.
  const sparse::ScoringRecipe recipe =
      scoring ? scoring->recipe() : sparse::ScoringRecipe{};

  const bool variant = config.shuffle || config.resample_negatives;
  const bool prefetch = variant && config.prefetch;

  sparse::PlanCache cache;
  std::vector<index_t> positions;  // pair permutation; empty = identity
  if (config.shuffle) {
    positions.resize(static_cast<std::size_t>(m));
    for (std::size_t i = 0; i < positions.size(); ++i)
      positions[i] = static_cast<index_t>(i);
  }

  auto make_source = [&](const std::vector<Triplet>& negs,
                         const std::vector<index_t>& perm) {
    EpochBatchSource src;
    src.data = kg::TripletSource(data);
    src.negatives = negs;
    src.positions = perm;
    src.k = k;
    src.batch_size = config.batch_size;
    return src;
  };

  // Stage 1 for the first epoch: the schedule's first compilation. A
  // resumed run adopts the checkpoint's in-flight permutation instead of
  // drawing a fresh shuffle — the interrupted run already consumed that
  // RNG when it derived this epoch's inputs.
  std::vector<BatchPlan> plans;
  double initial_compile_s = 0.0;
  if (config.epochs > loop.start_epoch) {
    if (config.shuffle) {
      if (loop.resumed) {
        SPTX_CHECK(loop.restored_positions.size() == positions.size(),
                   "checkpoint has no shuffle permutation — it was written "
                   "by a run with shuffle off");
        positions = loop.restored_positions;
      } else {
        shuffle_positions(positions, loop.rng);
      }
    }
    profiling::ScopedAccum plan_timer(loop.result.plan_compile_s);
    const auto t0 = profiling::clock::now();
    plans = compile_epoch_plans(make_source(loop.negatives, positions), recipe,
                                &cache);
    initial_compile_s = profiling::seconds_since(t0);
  }

  for (int epoch = loop.start_epoch; epoch < config.epochs; ++epoch) {
    const auto epoch_start = profiling::clock::now();
    loop.apply_schedule(epoch);

    // Stage 1 for epoch e+1: the driving thread derives all RNG-dependent
    // inputs (so the stream matches the legacy loop exactly), then the
    // compile runs in the background while this epoch executes — or
    // synchronously when prefetch is off.
    std::vector<BatchPlan> next_plans;
    std::vector<Triplet> next_negatives;
    std::vector<index_t> next_positions;
    std::exception_ptr prefetch_error;
    // Declared after everything the worker writes: unwinding destroys in
    // reverse order, so the joining/draining destructor runs while those
    // locals are still alive.
    JoiningThread worker;
    runtime::TaskGroup prefetch_group;
    bool have_next = false;
    // Next-epoch compilation done inside this epoch's wall (sync mode);
    // excluded from epoch_seconds so per-epoch numbers stay comparable
    // between prefetch on and off.
    double overlap_compile_s = 0.0;
    if (variant && epoch + 1 < config.epochs) {
      if (config.resample_negatives) {
        next_negatives =
            loop.sampler.pregenerate_k(data.triplets(), k, loop.rng);
      }
      if (config.shuffle) {
        next_positions = positions;
        shuffle_positions(next_positions, loop.rng);
      }
      have_next = true;
      auto compile_next = [&]() {
        cache.invalidate();
        next_plans = compile_epoch_plans(
            make_source(config.resample_negatives ? next_negatives
                                                  : loop.negatives,
                        config.shuffle ? next_positions : positions),
            recipe, &cache);
      };
      if (prefetch) {
        // Exceptions on the worker (bad_alloc compiling a large epoch, a
        // failed SPTX_CHECK) are captured and rethrown at the join point —
        // same surface the legacy path gives the caller. compile_next is
        // copied into the task/thread: it outlives this block. Under
        // SPTX_RUNTIME=pool the compile is a kPrefetch task on the shared
        // pool (a zero-worker pool runs it inside the wait below, which is
        // exactly sync-mode semantics); legacy keeps the dedicated thread.
        auto guarded_compile = [compile_next, &prefetch_error]() {
          try {
            compile_next();
          } catch (...) {
            prefetch_error = std::current_exception();
          }
        };
        if (runtime::use_pool()) {
          runtime::TaskPool::instance().submit(
              prefetch_group, std::move(guarded_compile),
              runtime::TaskClass::kPrefetch);
        } else {
          worker.t = runtime::Thread(std::move(guarded_compile));
        }
      } else {
        profiling::ScopedAccum plan_timer(loop.result.plan_compile_s);
        const auto t0 = profiling::clock::now();
        compile_next();
        overlap_compile_s = profiling::seconds_since(t0);
      }
    } else if (!variant && epoch > loop.start_epoch) {
      // Epoch-invariant schedule: re-resolve through the cache (all hits —
      // the zero-rebuild property the tests assert).
      profiling::ScopedAccum plan_timer(loop.result.plan_compile_s);
      plans = compile_epoch_plans(make_source(loop.negatives, positions),
                                  recipe, &cache);
    }

    // Stage 2: execute the compiled schedule.
    double loss_sum = 0.0;
    index_t batches = 0;
    for (const BatchPlan& bp : plans) {
      loss_sum += loop.run_batch([&]() {
        return scoring ? scoring->loss(*bp.pos, *bp.neg)
                       : loop.model.loss(bp.pos->triplets(),
                                         bp.neg->triplets());
      });
      ++batches;
    }

    const bool stop = loop.finish_epoch(
        epoch, loss_sum, batches, epoch_start,
        (epoch == loop.start_epoch ? initial_compile_s : 0.0) -
            overlap_compile_s);

    // Stage 3: adopt the prefetched schedule (join waits count as plan
    // time — they are the pipeline bubble prefetch exists to hide).
    // Adoption runs even when early stopping fires so a checkpoint taken
    // here captures the state a resumed run continues from.
    if (worker.t.joinable() || prefetch_group.pending() > 0) {
      profiling::ScopedAccum plan_timer(loop.result.plan_compile_s);
      if (worker.t.joinable()) worker.t.join();
      prefetch_group.wait();
    }
    if (prefetch_error) std::rethrow_exception(prefetch_error);
    if (have_next) {
      if (config.resample_negatives)
        loop.negatives = std::move(next_negatives);
      if (config.shuffle) positions = std::move(next_positions);
      plans = std::move(next_plans);
    }
    // Crash safety: checkpoint after the epoch's update is fully applied
    // and epoch e+1's inputs are adopted — the exact cut a resumed run
    // continues from bit-identically.
    if (loop.should_checkpoint(epoch)) loop.write_checkpoint(epoch, positions);
    if (stop) break;
  }

  loop.result.plan_stats = cache.stats();
}

/// The seed's per-batch rebuild loop, kept verbatim as the reference path
/// (SPTX_PLAN_CACHE=0): every batch re-stages its pairs and every
/// distance() call rebuilds its incidence from raw triplets.
void run_legacy(TrainLoop& loop) {
  const TrainConfig& config = loop.config;
  const TripletStore& data = loop.data;
  const int k = config.negatives_per_positive;
  const index_t m = data.size();

  std::vector<index_t> positions(static_cast<std::size_t>(m));
  for (std::size_t i = 0; i < positions.size(); ++i)
    positions[i] = static_cast<index_t>(i);
  // A resumed run starts from the permutation the checkpointing epoch left
  // behind: this loop shuffles in place at each epoch top, so the next
  // shuffle must act on the same array state the uninterrupted run had.
  if (loop.resumed && config.shuffle) {
    SPTX_CHECK(loop.restored_positions.size() == positions.size(),
               "checkpoint has no shuffle permutation — it was written by a "
               "run with shuffle off");
    positions = loop.restored_positions;
  }

  for (int epoch = loop.start_epoch; epoch < config.epochs; ++epoch) {
    const auto epoch_start = profiling::clock::now();
    loop.apply_schedule(epoch);

    if (config.resample_negatives && epoch > 0) {
      loop.negatives = loop.sampler.pregenerate_k(data.triplets(), k, loop.rng);
    }
    if (config.shuffle) shuffle_positions(positions, loop.rng);

    double loss_sum = 0.0;
    index_t batches = 0;
    std::vector<Triplet> pos_staged, neg_staged;  // shuffle / k>1 buffers
    for (index_t begin = 0; begin < m; begin += config.batch_size) {
      const index_t count = std::min<index_t>(config.batch_size, m - begin);
      std::span<const Triplet> pos_batch;
      std::span<const Triplet> neg_batch;
      if (!config.shuffle && k == 1) {
        // Fast path: contiguous views, no copies.
        pos_batch = data.slice(begin, count);
        neg_batch = {loop.negatives.data() + begin,
                     static_cast<std::size_t>(count)};
      } else {
        // Stage the (possibly permuted) pairs; with k > 1 the positives
        // tile k times against each repetition block of pregenerate_k.
        pos_staged.clear();
        neg_staged.clear();
        for (int rep = 0; rep < k; ++rep) {
          for (index_t i = begin; i < begin + count; ++i) {
            const index_t p = positions[static_cast<std::size_t>(i)];
            pos_staged.push_back(data[p]);
            neg_staged.push_back(
                loop.negatives[static_cast<std::size_t>(rep) *
                                   static_cast<std::size_t>(m) +
                               static_cast<std::size_t>(p)]);
          }
        }
        pos_batch = pos_staged;
        neg_batch = neg_staged;
      }

      loss_sum +=
          loop.run_batch([&]() { return loop.model.loss(pos_batch, neg_batch); });
      ++batches;
    }

    const bool stop = loop.finish_epoch(epoch, loss_sum, batches, epoch_start,
                                        0.0);
    if (loop.should_checkpoint(epoch)) loop.write_checkpoint(epoch, positions);
    if (stop) break;
  }
}

}  // namespace

TrainConfig resolve(const TrainConfig& config, const RuntimeConfig& rc) {
  TrainConfig resolved = config;
  resolved.plan_cache = rc.flag_or("SPTX_PLAN_CACHE", config.plan_cache);
  resolved.prefetch = rc.flag_or("SPTX_PREFETCH", config.prefetch);
  resolved.checkpoint_every = static_cast<int>(
      rc.int_or("SPTX_CHECKPOINT_EVERY", config.checkpoint_every));
  resolved.checkpoint_keep = static_cast<int>(
      rc.int_or("SPTX_CHECKPOINT_KEEP", config.checkpoint_keep));
  return resolved;
}

TrainResult train(models::KgeModel& model, const TripletStore& data,
                  const TrainConfig& config, const RuntimeConfig& rc,
                  const std::function<void(int, float)>& on_epoch) {
  const TrainConfig resolved = resolve(config, rc);
  SPTX_CHECK(!data.empty(), "empty training set");
  SPTX_CHECK(resolved.batch_size > 0 && resolved.epochs >= 0,
             "bad train config");
  SPTX_CHECK(resolved.negatives_per_positive >= 1, "need k >= 1 negatives");
  SPTX_CHECK(resolved.checkpoint_every <= 0 ||
                 !resolved.checkpoint_path.empty(),
             "checkpoint_every > 0 needs a checkpoint_path");
  fault::init_from_config();

  TrainLoop loop(model, data, resolved, on_epoch);
  if (!resolved.resume_from.empty()) loop.restore(resolved.resume_from);

  ScopedPeakWindow memory_window;
  profiling::FlopWindow flop_window;
  profiling::CounterWindow build_window(
      profiling::Counter::kIncidenceBuilds);
  // Recycle every per-batch tensor (SpMM outputs, autograd scratch, score
  // columns) through the Workspace pool: after the first batch warms the
  // free lists, the steady-state loop performs zero heap allocations.
  ScopedWorkspace workspace;
  const auto t_start = profiling::clock::now();

  if (resolved.plan_cache) {
    run_planned(loop);
  } else {
    run_legacy(loop);
  }

  loop.result.total_seconds = profiling::seconds_since(t_start);
  loop.result.peak_bytes = memory_window.peak_bytes();
  loop.result.flops = flop_window.elapsed();
  loop.result.incidence_builds = build_window.elapsed();
  return loop.result;
}

TrainResult train(models::KgeModel& model, const TripletStore& data,
                  const TrainConfig& config,
                  const std::function<void(int, float)>& on_epoch) {
  return train(model, data, config, *config::current(), on_epoch);
}

}  // namespace sptx::train
