#include "src/train/trainer.hpp"

#include <algorithm>
#include <limits>
#include <memory>

#include "src/profiling/flops.hpp"
#include "src/tensor/memory_tracker.hpp"
#include "src/tensor/workspace.hpp"

namespace sptx::train {

TrainResult train(models::KgeModel& model, const TripletStore& data,
                  const TrainConfig& config,
                  const std::function<void(int, float)>& on_epoch) {
  SPTX_CHECK(!data.empty(), "empty training set");
  SPTX_CHECK(config.batch_size > 0 && config.epochs >= 0, "bad train config");

  Rng rng(config.seed);

  // §5.3: negatives are generated once per positive, outside the loop
  // (refreshed per epoch only when resample_negatives opts in).
  SPTX_CHECK(config.negatives_per_positive >= 1, "need k >= 1 negatives");
  const int k = config.negatives_per_positive;
  kg::NegativeSampler sampler(data, config.corruption,
                              config.filtered_negatives);
  std::vector<Triplet> negatives =
      sampler.pregenerate_k(data.triplets(), k, rng);

  std::unique_ptr<nn::Optimizer> opt;
  if (config.use_adagrad) {
    opt = std::make_unique<nn::Adagrad>(model.params(), config.lr);
  } else {
    opt = std::make_unique<nn::Sgd>(model.params(), config.lr);
  }
  opt->set_weight_decay(config.weight_decay);
  opt->set_grad_clip_norm(config.grad_clip_norm);
  nn::StepLr step_lr(*opt, config.step_lr_every, config.step_lr_gamma);
  nn::CosineLr cosine_lr(*opt, std::max(config.epochs, 1));

  // Shuffled epochs permute pair indices; positives and their aligned
  // corruptions move together so the §5.3 pairing survives the shuffle.
  std::vector<index_t> positions(static_cast<std::size_t>(data.size()));
  for (std::size_t i = 0; i < positions.size(); ++i)
    positions[i] = static_cast<index_t>(i);

  TrainResult result;
  ScopedPeakWindow memory_window;
  profiling::FlopWindow flop_window;
  // Recycle every per-batch tensor (SpMM outputs, autograd scratch, score
  // columns) through the Workspace pool: after the first batch warms the
  // free lists, the steady-state loop performs zero heap allocations.
  ScopedWorkspace workspace;
  const auto t_start = profiling::clock::now();

  const index_t m = data.size();
  float best_loss = std::numeric_limits<float>::infinity();
  int epochs_without_improvement = 0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    switch (config.schedule) {
      case LrSchedule::kStep:
        step_lr.on_epoch(epoch);
        break;
      case LrSchedule::kCosine:
        cosine_lr.on_epoch(epoch);
        break;
      case LrSchedule::kConstant:
        break;
    }

    if (config.resample_negatives && epoch > 0) {
      negatives = sampler.pregenerate_k(data.triplets(), k, rng);
    }
    if (config.shuffle) {
      // Fisher–Yates with the run's RNG (reproducible given the seed).
      for (std::size_t i = positions.size(); i > 1; --i) {
        const std::size_t j = rng.next_below(i);
        std::swap(positions[i - 1], positions[j]);
      }
    }

    double loss_sum = 0.0;
    index_t batches = 0;
    std::vector<Triplet> pos_staged, neg_staged;  // shuffle / k>1 buffers
    for (index_t begin = 0; begin < m; begin += config.batch_size) {
      const index_t count = std::min<index_t>(config.batch_size, m - begin);
      std::span<const Triplet> pos_batch;
      std::span<const Triplet> neg_batch;
      if (!config.shuffle && k == 1) {
        // Fast path: contiguous views, no copies.
        pos_batch = data.slice(begin, count);
        neg_batch = {negatives.data() + begin,
                     static_cast<std::size_t>(count)};
      } else {
        // Stage the (possibly permuted) pairs; with k > 1 the positives
        // tile k times against each repetition block of pregenerate_k.
        pos_staged.clear();
        neg_staged.clear();
        for (int rep = 0; rep < k; ++rep) {
          for (index_t i = begin; i < begin + count; ++i) {
            const index_t p = positions[static_cast<std::size_t>(i)];
            pos_staged.push_back(data[p]);
            neg_staged.push_back(
                negatives[static_cast<std::size_t>(rep) *
                              static_cast<std::size_t>(m) +
                          static_cast<std::size_t>(p)]);
          }
        }
        pos_batch = pos_staged;
        neg_batch = neg_staged;
      }

      opt->zero_grad();

      autograd::Variable loss;
      {
        profiling::ScopedAccum fwd(result.phases.forward_s);
        loss = model.loss(pos_batch, neg_batch);
      }
      {
        profiling::ScopedAccum bwd(result.phases.backward_s);
        loss.backward();
      }
      {
        profiling::ScopedAccum stp(result.phases.step_s);
        opt->step();
        model.post_step();
      }
      loss_sum += loss.value().at(0, 0);
      ++batches;
    }

    const float mean_loss =
        batches > 0 ? static_cast<float>(loss_sum / batches) : 0.0f;
    if (config.record_loss_curve) result.epoch_loss.push_back(mean_loss);
    if (on_epoch) on_epoch(epoch, mean_loss);

    if (config.patience > 0) {
      if (mean_loss < best_loss - config.min_delta) {
        best_loss = mean_loss;
        epochs_without_improvement = 0;
      } else if (++epochs_without_improvement >= config.patience) {
        break;  // early stop: no progress for `patience` epochs
      }
    }
  }

  result.total_seconds = profiling::seconds_since(t_start);
  result.peak_bytes = memory_window.peak_bytes();
  result.flops = flop_window.elapsed();
  return result;
}

}  // namespace sptx::train
