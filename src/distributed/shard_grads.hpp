// Shard-gradient plumbing shared by the two DDP executors (threaded
// ddp.cpp and multi-process proc_ddp.cpp).
//
// A shard's gradient contribution is harvested out of a replica's
// accumulation buffers into a compact ParamGrad per parameter — sparse
// (touched rows only) for entity/relation-indexed tables, dense otherwise.
// Both executors reduce ShardGrads in shard-index order, which is the
// bit-identity anchor: WHO computed a shard (which thread, which process,
// a recovery re-run) never affects the reduced gradient. Keeping the
// harvest/expand helpers in one header guarantees the two paths cannot
// drift apart arithmetically.
#pragma once

#include <cstring>
#include <span>
#include <vector>

#include "src/common/error.hpp"
#include "src/models/model.hpp"
#include "src/sparse/incidence.hpp"

namespace sptx::distributed {

/// One parameter's gradient contribution from one shard. Sparse when the
/// parameter is entity/relation-indexed (only the rows in the shard's
/// incidence support, which is the entire nonzero set), dense otherwise.
struct ParamGrad {
  bool present = false;
  bool dense = false;
  std::vector<index_t> rows;  // sorted touched rows (sparse form)
  Matrix values;              // rows.size()×cols, or the full matrix (dense)
};
using ShardGrads = std::vector<ParamGrad>;

/// Block expansion for kRelationBlocks: relation r owns rows
/// [r·h, (r+1)·h) where h = rows / R. Input ids sorted → output sorted.
inline std::vector<index_t> expand_relation_blocks(
    const std::vector<index_t>& rels, index_t param_rows,
    index_t num_relations) {
  SPTX_CHECK(num_relations > 0 && param_rows % num_relations == 0,
             "kRelationBlocks parameter rows (" << param_rows
                 << ") not divisible by relation count " << num_relations);
  const index_t h = param_rows / num_relations;
  std::vector<index_t> rows;
  rows.reserve(rels.size() * static_cast<std::size_t>(h));
  for (index_t r : rels)
    for (index_t k = 0; k < h; ++k) rows.push_back(r * h + k);
  return rows;
}

/// Copy the shard's gradient support out of `params` and zero it there, so
/// the worker's accumulation buffers are pristine for its next shard. The
/// extraction is what makes the all-reduce sparse: for an entity table only
/// rows named by the shard's triplets can hold gradient (every backward
/// scatter lands inside the incidence support), so only those rows travel.
inline void harvest_shard_grads(
    std::vector<autograd::Variable>& params,
    const std::vector<models::ParamIndexSpace>& spaces,
    std::span<const Triplet> pos, std::span<const Triplet> neg,
    index_t num_entities, index_t num_relations, ShardGrads& out) {
  std::vector<index_t> ents;      // lazily built per shard, shared by params
  std::vector<index_t> rels;
  std::vector<index_t> stacked;
  const auto entity_rows = [&]() -> const std::vector<index_t>& {
    if (ents.empty()) ents = touched_entity_ids(pos, neg);
    return ents;
  };
  const auto relation_rows = [&]() -> const std::vector<index_t>& {
    if (rels.empty()) rels = touched_relation_ids(pos, neg);
    return rels;
  };
  const auto stacked_rows = [&]() -> const std::vector<index_t>& {
    if (stacked.empty()) {
      // Entity ids all precede N ≤ N + relation id, so the concatenation of
      // the two sorted lists is itself sorted.
      stacked = entity_rows();
      for (index_t r : relation_rows()) stacked.push_back(num_entities + r);
    }
    return stacked;
  };

  out.resize(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    ParamGrad& pg = out[i];
    Matrix& g = params[i].grad();
    pg.present = true;
    if (spaces[i] == models::ParamIndexSpace::kDense) {
      pg.dense = true;
      pg.values = g;  // deep copy
      g.zero();
      continue;
    }
    std::vector<index_t> block_rows;  // kRelationBlocks, height per param
    const std::vector<index_t>* rows = nullptr;
    switch (spaces[i]) {
      case models::ParamIndexSpace::kEntity:
        rows = &entity_rows();
        break;
      case models::ParamIndexSpace::kRelation:
        rows = &relation_rows();
        break;
      case models::ParamIndexSpace::kRelationBlocks:
        block_rows =
            expand_relation_blocks(relation_rows(), g.rows(), num_relations);
        rows = &block_rows;
        break;
      default:
        rows = &stacked_rows();
        break;
    }
    pg.rows = *rows;
    const index_t cols = g.cols();
    pg.values = Matrix(static_cast<index_t>(pg.rows.size()), cols);
    for (std::size_t k = 0; k < pg.rows.size(); ++k) {
      std::memcpy(pg.values.row(static_cast<index_t>(k)), g.row(pg.rows[k]),
                  static_cast<std::size_t>(cols) * sizeof(float));
      std::memset(g.row(pg.rows[k]), 0,
                  static_cast<std::size_t>(cols) * sizeof(float));
    }
  }
}

/// One-time (per run, per worker) safety net for param_index_spaces(): after
/// the first harvest, every gradient buffer must be identically zero — a
/// residue means the model's loss touched rows outside the declared index
/// space (e.g. a full-table regulariser on an entity-shaped parameter), and
/// the sparse all-reduce would silently drop and cross-contaminate gradient.
/// Costs one table scan per worker per run.
inline void verify_support_exhausts_grads(
    std::vector<autograd::Variable>& params, const models::KgeModel& model) {
  for (std::size_t i = 0; i < params.size(); ++i) {
    const Matrix& g = params[i].grad();
    SPTX_CHECK(g.max_abs() == 0.0f,
               model.name() << " parameter " << i
                            << " has gradient outside its declared "
                               "ParamIndexSpace row support; override "
                               "param_index_spaces() (kDense is always safe)");
  }
}

}  // namespace sptx::distributed
