#include "src/distributed/ddp.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>

#include "src/common/error.hpp"
#include "src/common/fault.hpp"
#include "src/common/simd.hpp"
#include "src/distributed/shard_grads.hpp"
#include "src/kg/negative_sampler.hpp"
#include "src/models/checkpoint.hpp"
#include "src/models/snapshot.hpp"
#include "src/profiling/counters.hpp"
#include "src/runtime/task_pool.hpp"
#include "src/sparse/incidence.hpp"

namespace sptx::distributed {

// ParamGrad / harvest_shard_grads / expand_relation_blocks moved to
// shard_grads.hpp — the multi-process executor (proc_ddp.cpp) reuses them,
// and sharing the harvest is what keeps the two paths bit-identical.

DdpConfig resolve(const DdpConfig& config, const RuntimeConfig& rc) {
  DdpConfig resolved = config;
  resolved.workers = static_cast<int>(
      rc.int_or("SPTX_DDP_WORKERS", config.workers));
  resolved.shard_size = static_cast<index_t>(
      rc.int_or("SPTX_DDP_SHARD", config.shard_size));
  resolved.plan_cache = rc.flag_or("SPTX_DDP_PLAN_CACHE", config.plan_cache);
  resolved.max_worker_retries = static_cast<int>(
      rc.int_or("SPTX_DDP_RETRIES", config.max_worker_retries));
  resolved.checkpoint_every = static_cast<int>(
      rc.int_or("SPTX_CHECKPOINT_EVERY", config.checkpoint_every));
  resolved.checkpoint_keep = static_cast<int>(
      rc.int_or("SPTX_CHECKPOINT_KEEP", config.checkpoint_keep));
  resolved.mode = to_lower(rc.value_or("SPTX_DDP_MODE", config.mode));
  resolved.heartbeat_ms = static_cast<int>(
      rc.int_or("SPTX_DDP_HEARTBEAT_MS", config.heartbeat_ms));
  resolved.policy = to_lower(rc.value_or("SPTX_DDP_POLICY", config.policy));
  resolved.shm_bytes = rc.int_or("SPTX_DDP_SHM_BYTES", config.shm_bytes);
  return resolved;
}

DdpResult train_ddp(
    const std::function<std::unique_ptr<models::KgeModel>(Rng&)>& make_model,
    const kg::TripletSource& data, const DdpConfig& config,
    const RuntimeConfig& rc) {
  const DdpConfig res = resolve(config, rc);
  SPTX_CHECK(data.valid() && !data.empty(), "empty training set");
  SPTX_CHECK(res.batch_size > 0 && res.epochs >= 0, "bad ddp config");
  SPTX_CHECK(res.checkpoint_every <= 0 || !res.checkpoint_path.empty(),
             "checkpoint_every > 0 needs a checkpoint_path");
  fault::init_from_config();
  const int p = res.workers;
  SPTX_CHECK(p >= 1, "need at least one worker");
  index_t shard_size = res.shard_size;
  if (shard_size <= 0) shard_size = (res.batch_size + p - 1) / p;
  const bool use_cache = res.plan_cache;

  const index_t m = data.size();
  const index_t n_ent = data.num_entities();
  const index_t n_rel = data.num_relations();

  // Identical replicas: every worker constructs from the same seed.
  std::vector<std::unique_ptr<models::KgeModel>> replicas;
  replicas.reserve(static_cast<std::size_t>(p));
  for (int w = 0; w < p; ++w) {
    Rng rng(config.seed);
    replicas.push_back(make_model(rng));
  }
  std::vector<models::ScoringCoreModel*> scorings(
      static_cast<std::size_t>(p));
  std::vector<std::vector<autograd::Variable>> all_params(
      static_cast<std::size_t>(p));
  for (int w = 0; w < p; ++w) {
    const auto wi = static_cast<std::size_t>(w);
    scorings[wi] = dynamic_cast<models::ScoringCoreModel*>(replicas[wi].get());
    all_params[wi] = replicas[wi]->params();
    SPTX_CHECK(all_params[wi].size() == all_params[0].size(),
               "replica parameter sets diverge");
    // Materialise every gradient buffer (zeroed) so the harvest/reduce
    // cycle never races lazy allocation.
    for (auto& param : all_params[wi]) param.grad();
  }
  const sparse::ScoringRecipe recipe =
      scorings[0] != nullptr ? scorings[0]->recipe() : sparse::ScoringRecipe{};
  const std::vector<models::ParamIndexSpace> spaces =
      replicas[0]->param_index_spaces();
  const std::size_t num_params = all_params[0].size();

  // Store-free uniform sampler: works for streaming sources because it only
  // needs the vocabulary sizes (the paper's §5.3 protocol is uniform).
  kg::NegativeSampler sampler(n_ent, n_rel, kg::CorruptionScheme::kUniform);

  std::vector<std::unique_ptr<sparse::PlanCache>> caches;
  for (int w = 0; w < p; ++w)
    caches.push_back(std::make_unique<sparse::PlanCache>());
  // One support check per worker per run (see verify_support_exhausts_grads).
  std::vector<char> support_verified(static_cast<std::size_t>(p), 0);

  DdpResult result;
  result.workers = p;
  result.shard_size = shard_size;

  // Resume: restore replica 0 from the checkpoint, broadcast to the other
  // replicas, and skip the completed epochs. DDP epochs are self-contained
  // (data_rng reseeds from config.seed + 1 every epoch), so parameters +
  // epoch cursor reproduce the uninterrupted trajectory exactly.
  int start_epoch = 0;
  if (!res.resume_from.empty()) {
    std::string path = res.resume_from;
    if (!std::filesystem::exists(path)) {
      const auto found = models::latest_checkpoint(res.resume_from);
      SPTX_CHECK_CODE(found.has_value(), ErrorCode::kIo,
                      "no checkpoint found at '"
                          << res.resume_from << "' (or rotations "
                          << res.resume_from << ".ep<N>)"
                          << models::describe_abort_sibling(res.resume_from));
      path = found->path;
    }
    models::TrainCheckpointState st =
        models::load_train_checkpoint(*replicas[0], path);
    for (int w = 1; w < p; ++w)
      models::copy_parameters(*replicas[0],
                              *replicas[static_cast<std::size_t>(w)]);
    result.epoch_loss = std::move(st.epoch_loss);
    start_epoch = st.next_epoch;
    result.start_epoch = start_epoch;
  }
  // Worker-failure recovery budget for the whole run.
  int retries_left = res.max_worker_retries;
  const profiling::CounterWindow shards_window(
      profiling::Counter::kDdpShards);
  const profiling::CounterWindow rows_window(
      profiling::Counter::kDdpAllReduceRows);
  const profiling::CounterWindow dense_window(
      profiling::Counter::kDdpDenseReduces);
  const profiling::CounterWindow builds_window(
      profiling::Counter::kIncidenceBuilds);
  const auto t0 = profiling::clock::now();

  for (int epoch = start_epoch; epoch < config.epochs; ++epoch) {
    const auto epoch_start = profiling::clock::now();
    // Re-seeding per epoch pins the negatives to the epoch-0 stream — the
    // paper's pregenerate-once protocol without an O(dataset) buffer, and
    // the property that lets cached shard plans serve every later epoch.
    Rng data_rng(config.seed + 1);
    double loss_sum = 0.0;
    index_t batches = 0;
    index_t shard_ordinal_base = 0;  // global shard index, epoch-invariant

    for (index_t begin = 0; begin < m; begin += config.batch_size) {
      const index_t count = std::min<index_t>(config.batch_size, m - begin);
      const index_t num_shards = (count + shard_size - 1) / shard_size;
      const std::span<const Triplet> pos_all = data.slice(begin, count);
      const std::vector<Triplet> negatives =
          sampler.pregenerate(pos_all, data_rng);
      const std::span<const Triplet> neg_all(negatives);

      std::vector<ShardGrads> shard_grads(
          static_cast<std::size_t>(num_shards));
      std::vector<float> shard_loss(static_cast<std::size_t>(num_shards),
                                    0.0f);

      // Workers: forward + backward per shard through the compiled-batch
      // pipeline, harvesting each shard's sparse gradient as they go.
      // Static round-robin assignment; the reduction below is ordered by
      // shard index, so the assignment never affects the result — which is
      // also what makes recovery exact: a failed worker's shards can re-run
      // anywhere and reduce into the same positions.
      auto run_shard = [&](int w, index_t s) {
        const auto wi = static_cast<std::size_t>(w);
        // Injected worker death: `ddp_worker:die@<epoch>:<worker>` (or
        // kill@N for a hard crash) fires here, before the shard computes.
        fault::maybe_fail("ddp_worker", epoch, w);
        sparse::PlanCache* cache = use_cache ? caches[wi].get() : nullptr;
        {
          const index_t s_begin = s * shard_size;
          const index_t n_s = std::min<index_t>(shard_size, count - s_begin);
          const std::span<const Triplet> pos =
              pos_all.subspan(static_cast<std::size_t>(s_begin),
                              static_cast<std::size_t>(n_s));
          const std::span<const Triplet> neg =
              neg_all.subspan(static_cast<std::size_t>(s_begin),
                              static_cast<std::size_t>(n_s));
          profiling::count_event(profiling::Counter::kDdpShards);

          autograd::Variable loss;
          if (scorings[wi] != nullptr) {
            const sparse::PlanCache::Key key =
                static_cast<sparse::PlanCache::Key>(shard_ordinal_base + s)
                << 1;
            std::shared_ptr<const sparse::CompiledBatch> pos_plan =
                cache != nullptr ? cache->find(key) : nullptr;
            if (!pos_plan) {
              // Zero-copy: the plan views the store's (possibly mmap'd)
              // span; for streaming sources nothing is ever copied.
              pos_plan = sparse::CompiledBatch::compile(
                  pos, recipe, n_ent, n_rel, /*copy_triplets=*/false);
              if (cache != nullptr) cache->put(key, pos_plan);
            }
            std::shared_ptr<const sparse::CompiledBatch> neg_plan =
                cache != nullptr ? cache->find(key | 1) : nullptr;
            if (!neg_plan) {
              neg_plan = sparse::CompiledBatch::compile_owned(
                  std::vector<Triplet>(neg.begin(), neg.end()), recipe, n_ent,
                  n_rel);
              if (cache != nullptr) cache->put(key | 1, neg_plan);
            }
            loss = scorings[wi]->loss(*pos_plan, *neg_plan);
          } else {
            // Span fallback for models outside the scoring-core family
            // (dense baselines, external KgeModels).
            loss = replicas[wi]->loss(pos, neg);
          }

          // Scale by the shard's true share of the batch BEFORE backward:
          // the reduced gradient is then exactly the full-batch-mean
          // gradient even when shard_size does not divide the batch.
          const float weight =
              static_cast<float>(n_s) / static_cast<float>(count);
          autograd::scale(loss, weight).backward();
          shard_loss[static_cast<std::size_t>(s)] =
              loss.value().at(0, 0) * weight;
          harvest_shard_grads(all_params[wi], spaces, pos, neg, n_ent, n_rel,
                              shard_grads[static_cast<std::size_t>(s)]);
          if (!support_verified[wi]) {
            verify_support_exhausts_grads(all_params[wi], *replicas[wi]);
            support_verified[wi] = 1;
          }
        }
      };
      auto run_worker = [&](int w) {
        for (index_t s = w; s < num_shards; s += p) run_shard(w, s);
      };
      {
        // Synchronization contract (checked by inspection — there are no
        // locks here for the thread-safety analysis to verify): the
        // worker/driver handshake is pure fork/join. Each worker writes
        // only its own disjoint slots of shard_grads / shard_loss /
        // errors / support_verified (indexed by shard or worker id), and
        // the driver reads them only after every join() below — the joins
        // are the sole happens-before edges, so no slot needs a mutex or
        // atomic. Anything cross-worker (profiling counters, the fault
        // harness, workspace pools) is independently thread-safe.
        //
        // Worker exceptions (bad_alloc compiling a plan, a failed
        // SPTX_CHECK, an injected ddp_worker fault) are captured at the
        // join so they surface like single-threaded errors instead of
        // terminating the process — or, while the retry budget lasts, get
        // repaired in place.
        std::vector<std::exception_ptr> errors(static_cast<std::size_t>(p));
        auto guarded = [&](int w) {
          try {
            run_worker(w);
          } catch (...) {
            errors[static_cast<std::size_t>(w)] = std::current_exception();
          }
        };
        if (runtime::use_pool()) {
          // The same fork/join handshake, with the fork expressed as pool
          // tasks: logical worker w keeps its id (so the shard assignment
          // s = w, w+p, ... — and with it the die@epoch:worker fault sites
          // and the shard-index-ordered reduction — is bit-identical to
          // the thread-per-worker legacy path), and TaskGroup::wait() is
          // the join edge. Workers running as pool tasks execute their
          // fused kernels on the same pool: nested parallel_for composes
          // instead of oversubscribing. On a pool with too few (or zero)
          // background workers the wait()ing driver executes the queued
          // worker bodies itself — execution placement changes, results
          // do not.
          runtime::TaskGroup tg;
          auto& pool = runtime::TaskPool::instance();
          for (int w = 1; w < p; ++w)
            pool.submit(
                tg, [&guarded, w] { guarded(w); },
                runtime::TaskClass::kDdp);
          guarded(0);  // the driving thread is worker 0
          tg.wait();
        } else {
          std::vector<std::thread> threads;
          threads.reserve(static_cast<std::size_t>(p - 1));
          for (int w = 1; w < p; ++w) threads.emplace_back(guarded, w);
          guarded(0);  // the driving thread is worker 0
          for (auto& t : threads) t.join();
        }

        // Clean abort: flush the (consistent — a batch's update is
        // all-or-nothing) parameters so nothing is lost, then raise the
        // typed error. Never hangs: all threads are already joined.
        auto abort_run = [&](const std::exception_ptr& cause) {
          std::string why = "unknown error";
          try {
            std::rethrow_exception(cause);
          } catch (const std::exception& e) {
            why = e.what();
          } catch (...) {
          }
          std::string flushed;
          if (!res.checkpoint_path.empty()) {
            flushed = res.checkpoint_path + ".abort";
            models::save_checkpoint(*replicas[0], flushed);
          }
          throw_error(ErrorCode::kWorkerFailed,
                      "ddp worker failed and the retry budget is exhausted"
                      " — aborting epoch " +
                          std::to_string(epoch) +
                          (flushed.empty()
                               ? std::string()
                               : "; parameters flushed to " + flushed) +
                          "; cause: " + why);
        };

        std::exception_ptr first_error;
        int failed = 0;
        for (int w = 0; w < p; ++w) {
          if (!errors[static_cast<std::size_t>(w)]) continue;
          ++failed;
          if (!first_error) first_error = errors[static_cast<std::size_t>(w)];
        }
        if (failed > 0) {
          result.worker_failures += failed;
          if (retries_left <= 0) abort_run(first_error);
          --retries_left;
          // Scrub the dead workers' half-accumulated gradients — forward/
          // backward never touches parameter VALUES, so a zeroed gradient
          // buffer restores a pristine replica. Completed shards already
          // moved their contribution out (harvest zeroes as it copies).
          for (int w = 0; w < p; ++w) {
            if (!errors[static_cast<std::size_t>(w)]) continue;
            for (auto& param : all_params[static_cast<std::size_t>(w)])
              param.grad().zero();
          }
          // Re-run the missing shards on the driving thread's replica.
          // Reduction is shard-index-ordered, so the epoch's result is
          // bit-identical to an undisturbed run.
          try {
            for (index_t s = 0; s < num_shards; ++s) {
              if (!shard_grads[static_cast<std::size_t>(s)].empty()) continue;
              run_shard(0, s);
              ++result.shards_reassigned;
            }
          } catch (...) {
            abort_run(std::current_exception());
          }
        }
      }

      // All-reduce, sparse-aware and deterministically ordered: shard
      // contributions accumulate into replica 0's (all-zero) gradient
      // buffers in shard-index order, touched rows only — bit-identical
      // for any worker count.
      for (index_t s = 0; s < num_shards; ++s) {
        ShardGrads& sg = shard_grads[static_cast<std::size_t>(s)];
        for (std::size_t i = 0; i < num_params; ++i) {
          ParamGrad& pg = sg[i];
          if (!pg.present) continue;
          Matrix& g0 = all_params[0][i].grad();
          if (pg.dense) {
            g0.add_(pg.values);
            profiling::count_event(profiling::Counter::kDdpDenseReduces);
          } else {
            const index_t cols = g0.cols();
            for (std::size_t k = 0; k < pg.rows.size(); ++k)
              simd::add(g0.row(pg.rows[k]),
                        pg.values.row(static_cast<index_t>(k)), cols);
            profiling::count_event(
                profiling::Counter::kDdpAllReduceRows,
                static_cast<std::int64_t>(pg.rows.size()));
          }
        }
      }

      // Broadcast the SGD update: every replica steps with the same reduced
      // gradient over the batch's touched rows, then the accumulator is
      // re-zeroed on the same support so the next batch starts clean.
      const std::vector<index_t> batch_ents =
          touched_entity_ids(pos_all, neg_all);
      const std::vector<index_t> batch_rels =
          touched_relation_ids(pos_all, neg_all);
      std::vector<index_t> batch_stacked;
      for (std::size_t i = 0; i < num_params; ++i) {
        Matrix& g0 = all_params[0][i].grad();
        if (spaces[i] == models::ParamIndexSpace::kDense) {
          for (int w = 0; w < p; ++w)
            all_params[static_cast<std::size_t>(w)][i]
                .mutable_value()
                .axpy_(-config.lr, g0);
          g0.zero();
          continue;
        }
        std::vector<index_t> block_rows;
        const std::vector<index_t>* rows = nullptr;
        switch (spaces[i]) {
          case models::ParamIndexSpace::kEntity:
            rows = &batch_ents;
            break;
          case models::ParamIndexSpace::kRelation:
            rows = &batch_rels;
            break;
          case models::ParamIndexSpace::kRelationBlocks:
            block_rows =
                expand_relation_blocks(batch_rels, g0.rows(), n_rel);
            rows = &block_rows;
            break;
          default:
            if (batch_stacked.empty()) {
              batch_stacked = batch_ents;
              for (index_t r : batch_rels)
                batch_stacked.push_back(n_ent + r);
            }
            rows = &batch_stacked;
            break;
        }
        const index_t cols = g0.cols();
        for (int w = 0; w < p; ++w) {
          Matrix& v = all_params[static_cast<std::size_t>(w)][i]
                          .mutable_value();
          for (index_t row : *rows)
            simd::axpy(v.row(row), g0.row(row), -config.lr, cols);
        }
        for (index_t row : *rows)
          std::memset(g0.row(row), 0,
                      static_cast<std::size_t>(cols) * sizeof(float));
      }
      for (int w = 0; w < p; ++w) replicas[static_cast<std::size_t>(w)]
          ->post_step();

      float batch_loss = 0.0f;  // shard order: worker-count invariant
      for (float l : shard_loss) batch_loss += l;
      loss_sum += batch_loss;
      ++batches;
      shard_ordinal_base += num_shards;
    }

    const float mean_loss =
        batches > 0 ? static_cast<float>(loss_sum / batches) : 0.0f;
    result.epoch_loss.push_back(mean_loss);
    result.epoch_seconds.push_back(profiling::seconds_since(epoch_start));
    if (config.on_epoch) config.on_epoch(epoch, mean_loss);

    // Crash safety: rotated atomic checkpoint at the epoch boundary. Only
    // replica-0 parameters + the epoch cursor are needed — DDP epochs are
    // self-contained (per-epoch reseeded data RNG, raw SGD with no slots).
    if (res.checkpoint_every > 0 &&
        (epoch + 1) % res.checkpoint_every == 0 &&
        epoch + 1 < config.epochs) {
      models::TrainCheckpointState st;
      st.next_epoch = epoch + 1;
      st.epoch_loss = result.epoch_loss;
      const std::string path =
          models::checkpoint_path_for_epoch(res.checkpoint_path, epoch + 1);
      models::save_train_checkpoint(*replicas[0], st, path);
      models::prune_checkpoints(res.checkpoint_path, res.checkpoint_keep);
      ++result.checkpoints_written;
      result.last_checkpoint = path;
    }
  }

  result.total_seconds = profiling::seconds_since(t0);
  result.shards_executed = shards_window.elapsed();
  result.allreduce_rows = rows_window.elapsed();
  result.dense_reduces = dense_window.elapsed();
  result.incidence_builds = builds_window.elapsed();
  for (const auto& cache : caches) {
    const auto stats = cache->stats();
    result.worker_plan_stats.push_back(stats);
    result.plan_stats.hits += stats.hits;
    result.plan_stats.misses += stats.misses;
    result.plan_stats.invalidations += stats.invalidations;
    result.plan_stats.entries += stats.entries;
  }
  result.model = std::move(replicas[0]);
  return result;
}

DdpResult train_ddp(
    const std::function<std::unique_ptr<models::KgeModel>(Rng&)>& make_model,
    const kg::TripletSource& data, const DdpConfig& config) {
  return train_ddp(make_model, data, config, *config::current());
}

double ScalingModel::predict_seconds(int p, int epochs) const {
  SPTX_CHECK(p >= 1, "workers must be >= 1");
  // Efficiency decays per doubling: eff(p) = parallel_efficiency^log2(p).
  const double doublings = std::log2(static_cast<double>(p));
  const double eff = std::pow(parallel_efficiency, doublings);
  const double compute = single_worker_epoch_s / (p * eff);
  // Ring all-reduce: 2(p−1)/p of the buffer crosses each link; 2(p−1)
  // latency hops.
  const double bw_bytes_per_s = bandwidth_gbps * 1e9 / 8.0;
  const double comm =
      p > 1 ? 2.0 * (p - 1) / p * static_cast<double>(gradient_bytes) /
                      bw_bytes_per_s +
                  2.0 * (p - 1) * latency_us * 1e-6
            : 0.0;
  return epochs * (compute + comm);
}

}  // namespace sptx::distributed
