#include "src/distributed/ddp.hpp"

#include <cmath>
#include <thread>

#include "src/common/error.hpp"
#include "src/kg/negative_sampler.hpp"

namespace sptx::distributed {

DdpResult train_ddp(
    const std::function<std::unique_ptr<models::KgeModel>(Rng&)>& make_model,
    const TripletStore& data, const DdpConfig& config) {
  SPTX_CHECK(config.workers >= 1, "need at least one worker");
  const int p = config.workers;

  // Identical replicas: every worker constructs from the same seed.
  std::vector<std::unique_ptr<models::KgeModel>> replicas;
  replicas.reserve(static_cast<std::size_t>(p));
  for (int w = 0; w < p; ++w) {
    Rng rng(config.seed);
    replicas.push_back(make_model(rng));
  }

  Rng data_rng(config.seed + 1);
  kg::NegativeSampler sampler(data, kg::CorruptionScheme::kUniform);
  const std::vector<Triplet> negatives =
      sampler.pregenerate(data.triplets(), data_rng);

  DdpResult result;
  const auto t0 = profiling::clock::now();
  const index_t m = data.size();

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    double loss_sum = 0.0;
    index_t batches = 0;
    for (index_t begin = 0; begin < m; begin += config.batch_size) {
      const index_t count = std::min<index_t>(config.batch_size, m - begin);
      const index_t shard = (count + p - 1) / p;

      // Each worker: forward+backward on its shard. Gradients accumulate in
      // each replica's own parameter grads.
      std::vector<float> shard_loss(static_cast<std::size_t>(p), 0.0f);
      std::vector<std::thread> threads;
      threads.reserve(static_cast<std::size_t>(p));
      for (int w = 0; w < p; ++w) {
        threads.emplace_back([&, w] {
          const index_t s_begin = begin + static_cast<index_t>(w) * shard;
          if (s_begin >= begin + count) return;
          const index_t s_count =
              std::min<index_t>(shard, begin + count - s_begin);
          const auto pos = data.slice(s_begin, s_count);
          const std::span<const Triplet> neg(
              negatives.data() + s_begin, static_cast<std::size_t>(s_count));
          for (auto& param : replicas[static_cast<std::size_t>(w)]->params())
            param.zero_grad();
          autograd::Variable loss =
              replicas[static_cast<std::size_t>(w)]->loss(pos, neg);
          loss.backward();
          shard_loss[static_cast<std::size_t>(w)] = loss.value().at(0, 0);
        });
      }
      for (auto& t : threads) t.join();

      // All-reduce: average worker gradients into worker 0's buffers, then
      // broadcast the SGD update by stepping every replica with the same
      // averaged gradient.
      auto params0 = replicas[0]->params();
      for (std::size_t pi = 0; pi < params0.size(); ++pi) {
        Matrix& g0 = params0[pi].grad();
        for (int w = 1; w < p; ++w) {
          auto params_w = replicas[static_cast<std::size_t>(w)]->params();
          g0.add_(params_w[pi].grad());
        }
        g0.scale_(1.0f / static_cast<float>(p));
      }
      for (int w = 0; w < p; ++w) {
        auto params_w = replicas[static_cast<std::size_t>(w)]->params();
        for (std::size_t pi = 0; pi < params_w.size(); ++pi) {
          const Matrix& g =
              w == 0 ? params_w[pi].grad() : params0[pi].grad();
          params_w[pi].mutable_value().axpy_(-config.lr, g);
        }
        replicas[static_cast<std::size_t>(w)]->post_step();
      }

      float batch_loss = 0.0f;
      for (float l : shard_loss) batch_loss += l;
      loss_sum += batch_loss / static_cast<float>(p);
      ++batches;
    }
    result.epoch_loss.push_back(
        batches > 0 ? static_cast<float>(loss_sum / batches) : 0.0f);
  }

  result.total_seconds = profiling::seconds_since(t0);
  return result;
}

double ScalingModel::predict_seconds(int p, int epochs) const {
  SPTX_CHECK(p >= 1, "workers must be >= 1");
  // Efficiency decays per doubling: eff(p) = parallel_efficiency^log2(p).
  const double doublings = std::log2(static_cast<double>(p));
  const double eff = std::pow(parallel_efficiency, doublings);
  const double compute = single_worker_epoch_s / (p * eff);
  // Ring all-reduce: 2(p−1)/p of the buffer crosses each link; 2(p−1)
  // latency hops.
  const double bw_bytes_per_s = bandwidth_gbps * 1e9 / 8.0;
  const double comm =
      p > 1 ? 2.0 * (p - 1) / p * static_cast<double>(gradient_bytes) /
                      bw_bytes_per_s +
                  2.0 * (p - 1) * latency_us * 1e-6
            : 0.0;
  return epochs * (compute + comm);
}

}  // namespace sptx::distributed
