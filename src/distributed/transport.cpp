#include "src/distributed/transport.hpp"

#include <poll.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "src/common/crc32.hpp"
#include "src/common/fault.hpp"
#include "src/profiling/counters.hpp"

namespace sptx::distributed {

namespace {

constexpr std::uint32_t kFrameMagic = 0x53505446u;  // "SPTF"
constexpr std::uint16_t kShmPayload = 0x0001;
/// Consecutive injected `transport_drop` fires a single send absorbs
/// before failing typed — each absorbed drop is one kDdpTransportRetries.
constexpr int kDropRetryBudget = 3;
/// Ring header size (two cache lines ahead of the data area).
constexpr std::size_t kRingHdrBytes = 64;

struct FrameHeader {
  std::uint32_t magic;
  std::uint16_t type;
  std::uint16_t flags;
  std::uint32_t payload_len;
  std::uint32_t crc;
};
static_assert(sizeof(FrameHeader) == 16, "frame header must be padding-free");

struct RingHdr {
  std::atomic<std::uint64_t> written;   // producer cursor (logical bytes)
  std::atomic<std::uint64_t> consumed;  // consumer watermark (logical bytes)
};
static_assert(sizeof(RingHdr) <= kRingHdrBytes, "ring header overflow");

/// Millisecond countdown anchored at construction; remaining() never goes
/// negative, so it can feed poll() timeouts directly.
class Deadline {
 public:
  explicit Deadline(int ms)
      : end_(std::chrono::steady_clock::now() +
             std::chrono::milliseconds(ms < 0 ? 0 : ms)) {}
  int remaining_ms() const {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        end_ - std::chrono::steady_clock::now());
    return left.count() > 0 ? static_cast<int>(left.count()) : 0;
  }
  bool expired() const { return remaining_ms() == 0; }

 private:
  std::chrono::steady_clock::time_point end_;
};

/// poll() one fd for `events`, EINTR-safe. True when ready, false on
/// deadline expiry. POLLERR/POLLHUP count as ready — the following
/// read/write surfaces the actual condition (EOF, ECONNRESET).
bool poll_fd(int fd, short events, const Deadline& deadline) {
  for (;;) {
    pollfd p{fd, events, 0};
    const int rc = ::poll(&p, 1, deadline.remaining_ms());
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    throw_error(ErrorCode::kTransportError,
                std::string("poll failed: ") + std::strerror(errno));
  }
}

}  // namespace

// ---- ShmRing ---------------------------------------------------------------

ShmRing::~ShmRing() {
  if (map_ != nullptr) ::munmap(map_, map_bytes_);
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<ShmRing> ShmRing::create(std::size_t bytes) {
#ifdef __linux__
  if (bytes <= kRingHdrBytes) return nullptr;
  // No MFD_CLOEXEC: the whole point is that the fd survives fork+exec into
  // the worker, which re-maps it via attach().
  const int fd = static_cast<int>(::memfd_create("sptx-ddp-ring", 0));
  if (fd < 0) return nullptr;
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    ::close(fd);
    return nullptr;
  }
  void* map =
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (map == MAP_FAILED) {
    ::close(fd);
    return nullptr;
  }
  auto ring = std::unique_ptr<ShmRing>(new ShmRing());
  ring->fd_ = fd;
  ring->map_ = static_cast<char*>(map);
  ring->map_bytes_ = bytes;
  ring->capacity_ = bytes - kRingHdrBytes;
  new (ring->map_) RingHdr{};  // memfd pages are zeroed; make it official
  return ring;
#else
  (void)bytes;
  return nullptr;
#endif
}

std::unique_ptr<ShmRing> ShmRing::attach(int fd, std::size_t bytes) {
  if (fd < 0 || bytes <= kRingHdrBytes) return nullptr;
  void* map =
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (map == MAP_FAILED) return nullptr;
  auto ring = std::unique_ptr<ShmRing>(new ShmRing());
  ring->fd_ = fd;
  ring->map_ = static_cast<char*>(map);
  ring->map_bytes_ = bytes;
  ring->capacity_ = bytes - kRingHdrBytes;
  return ring;
}

bool ShmRing::produce(const void* data, std::size_t len,
                      std::uint64_t& logical_offset) {
  if (len == 0 || len > capacity_) return false;
  auto* hdr = reinterpret_cast<RingHdr*>(map_);
  const std::uint64_t written = hdr->written.load(std::memory_order_relaxed);
  const std::uint64_t consumed = hdr->consumed.load(std::memory_order_acquire);
  std::uint64_t start = written;
  const std::uint64_t pos = written % capacity_;
  if (pos + len > capacity_) start = written + (capacity_ - pos);  // pad
  if (start + len - consumed > capacity_) return false;  // ring full
  std::memcpy(map_ + kRingHdrBytes + (start % capacity_), data, len);
  hdr->written.store(start + len, std::memory_order_release);
  logical_offset = start;
  return true;
}

const char* ShmRing::at(std::uint64_t logical_offset) const {
  return map_ + kRingHdrBytes + (logical_offset % capacity_);
}

void ShmRing::consume(std::uint64_t logical_offset, std::size_t len) {
  auto* hdr = reinterpret_cast<RingHdr*>(map_);
  // In-order SPSC: offset+len also covers any pad the producer skipped.
  hdr->consumed.store(logical_offset + len, std::memory_order_release);
}

// ---- Conn ------------------------------------------------------------------

Conn::~Conn() { close(); }

void Conn::close() {
  if (fd_ < 0) return;
  // POSIX leaves the fd state unspecified on EINTR from close(); on Linux
  // the fd is always released, so retrying would race a concurrent open.
  // One call, result ignored — matches StreamingTripletStore's teardown.
  ::close(fd_);
  fd_ = -1;
}

void Conn::set_send_ring(ShmRing* ring, std::size_t threshold) {
  send_ring_ = ring;
  shm_threshold_ = threshold;
}

void Conn::set_recv_ring(ShmRing* ring) { recv_ring_ = ring; }

void Conn::write_all(const void* data, std::size_t len, int deadline_ms) {
  const Deadline deadline(deadline_ms);
  const char* p = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < len) {
    if (!poll_fd(fd_, POLLOUT, deadline))
      throw_error(ErrorCode::kTransportError,
                  "send deadline expired mid-frame (peer wedged?)");
    const ssize_t n = ::send(fd_, p + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK))
      continue;
    throw_error(ErrorCode::kTransportError,
                std::string("send failed: ") + std::strerror(errno));
  }
}

void Conn::read_all(void* data, std::size_t len, int deadline_ms) {
  const Deadline deadline(deadline_ms);
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < len) {
    if (!poll_fd(fd_, POLLIN, deadline))
      throw_error(ErrorCode::kTransportError,
                  "recv deadline expired mid-frame (peer wedged?)");
    const ssize_t n = ::recv(fd_, p + got, len - got, 0);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0)
      throw_error(ErrorCode::kTransportError, "peer closed the connection");
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    throw_error(ErrorCode::kTransportError,
                std::string("recv failed: ") + std::strerror(errno));
  }
}

bool Conn::wait_readable(int deadline_ms) {
  return poll_fd(fd_, POLLIN, Deadline(deadline_ms));
}

void Conn::send(FrameType type, std::string_view payload, int deadline_ms) {
  SPTX_CHECK_CODE(fd_ >= 0, ErrorCode::kTransportError,
                  "send on a closed connection");
  // Injected frame drops: each fire burns one retry; a burst longer than
  // the budget becomes a typed failure (the caller's worker-lost path).
  int drops = 0;
  while (fault::should_fail("transport_drop")) {
    profiling::count_event(profiling::Counter::kDdpTransportRetries);
    if (++drops >= kDropRetryBudget)
      throw_error(ErrorCode::kTransportError,
                  "transport_drop retry budget exhausted (injected)");
  }

  FrameHeader hdr{};
  hdr.magic = kFrameMagic;
  hdr.type = static_cast<std::uint16_t>(type);
  hdr.flags = 0;
  hdr.crc = crc32(payload);

  std::string descriptor;  // shm path: the 12-byte {offset, len} stand-in
  std::string_view wire = payload;
  if (send_ring_ != nullptr && payload.size() >= shm_threshold_) {
    std::uint64_t offset = 0;
    if (send_ring_->produce(payload.data(), payload.size(), offset)) {
      WireWriter w;
      w.u64(offset);
      w.u32(static_cast<std::uint32_t>(payload.size()));
      descriptor = w.take();
      wire = descriptor;
      hdr.flags |= kShmPayload;
    }
  }
  hdr.payload_len = static_cast<std::uint32_t>(wire.size());

  write_all(&hdr, sizeof(hdr), deadline_ms);
  if (!wire.empty()) write_all(wire.data(), wire.size(), deadline_ms);
  profiling::count_event(profiling::Counter::kDdpTransportFrames);
  profiling::count_event(profiling::Counter::kDdpTransportBytes,
                         static_cast<std::int64_t>(payload.size()));
}

bool Conn::recv(Frame& out, int deadline_ms) {
  SPTX_CHECK_CODE(fd_ >= 0, ErrorCode::kTransportError,
                  "recv on a closed connection");
  if (!wait_readable(deadline_ms)) return false;  // no frame started
  FrameHeader hdr{};
  read_all(&hdr, sizeof(hdr), deadline_ms);
  SPTX_CHECK_CODE(hdr.magic == kFrameMagic, ErrorCode::kTransportError,
                  "bad frame magic 0x" << std::hex << hdr.magic
                                       << " — desynchronized stream");
  std::string wire(hdr.payload_len, '\0');
  if (hdr.payload_len > 0) read_all(wire.data(), wire.size(), deadline_ms);

  if ((hdr.flags & kShmPayload) != 0) {
    SPTX_CHECK_CODE(recv_ring_ != nullptr, ErrorCode::kTransportError,
                    "shm-payload frame but no ring attached");
    WireReader r(wire);
    const std::uint64_t offset = r.u64();
    const std::uint32_t len = r.u32();
    SPTX_CHECK_CODE(len <= recv_ring_->capacity(),
                    ErrorCode::kTransportError,
                    "shm payload larger than the ring");
    out.payload.assign(recv_ring_->at(offset), len);
    recv_ring_->consume(offset, len);
  } else {
    out.payload = std::move(wire);
  }
  SPTX_CHECK_CODE(crc32(out.payload) == hdr.crc, ErrorCode::kTransportError,
                  "frame CRC mismatch (torn or corrupted payload)");
  out.type = static_cast<FrameType>(hdr.type);
  profiling::count_event(profiling::Counter::kDdpTransportFrames);
  profiling::count_event(profiling::Counter::kDdpTransportBytes,
                         static_cast<std::int64_t>(out.payload.size()));
  return true;
}

// ---- Listener / connect ----------------------------------------------------

Listener::Listener(const std::string& path) : path_(path) {
  sockaddr_un addr{};
  SPTX_CHECK_CODE(path.size() < sizeof(addr.sun_path),
                  ErrorCode::kTransportError,
                  "socket path too long: " << path);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  SPTX_CHECK_CODE(fd_ >= 0, ErrorCode::kTransportError,
                  "socket() failed: " << std::strerror(errno));
  ::unlink(path.c_str());  // stale socket from a crashed run
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd_, 64) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw_error(ErrorCode::kTransportError,
                "bind/listen on " + path + " failed: " + std::strerror(err));
  }
}

Listener::~Listener() {
  if (fd_ >= 0) ::close(fd_);
  ::unlink(path_.c_str());
}

std::unique_ptr<Conn> Listener::accept(int deadline_ms) {
  const Deadline deadline(deadline_ms);
  for (;;) {
    if (!poll_fd(fd_, POLLIN, deadline)) return nullptr;
    const int fd = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd >= 0) return std::make_unique<Conn>(fd);
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    throw_error(ErrorCode::kTransportError,
                std::string("accept failed: ") + std::strerror(errno));
  }
}

std::unique_ptr<Conn> connect_uds(const std::string& path, int deadline_ms) {
  sockaddr_un addr{};
  SPTX_CHECK_CODE(path.size() < sizeof(addr.sun_path),
                  ErrorCode::kTransportError,
                  "socket path too long: " << path);
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const Deadline deadline(deadline_ms);
  for (;;) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    SPTX_CHECK_CODE(fd >= 0, ErrorCode::kTransportError,
                    "socket() failed: " << std::strerror(errno));
    int rc;
    do {
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc == 0) return std::make_unique<Conn>(fd);
    const int err = errno;
    ::close(fd);
    // The supervisor binds before spawning, so these are races with run-dir
    // teardown or a crashed supervisor — brief retry, then typed failure.
    if ((err == ENOENT || err == ECONNREFUSED) && !deadline.expired()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      continue;
    }
    throw_error(ErrorCode::kTransportError,
                "connect to " + path + " failed: " + std::strerror(err));
  }
}

}  // namespace sptx::distributed
