// Multi-process elastic DDP: a supervisor that fork/execs N worker
// processes and drives them through the framed UDS/shm transport
// (transport.hpp), with process-level fault tolerance.
//
// Protocol (all frames CRC-checked, every wait deadline-bounded):
//
//   worker                          supervisor
//   ───────                         ──────────
//   connect, kHello{rank,pid}  →
//                              ←    kSetup{model spec, data path, train
//                                          config, start epoch, resume ckpt}
//   (heartbeat thread starts; beacons every heartbeat_ms/3)
//                              ←    kEpochBegin{epoch, live ranks}
//   kShardGrad{...} per owned  →    collects; re-runs missing shards of
//   shard                           lost workers locally; reduces in
//                                   shard-index order; steps the master
//                              ←    kStep{reduced gradient rows}
//   (apply step, post_step; next batch)
//                              ←    kShutdown
//
// Bit-identity: the shard decomposition, the negative streams (every
// process re-derives them from Rng(seed+1) per epoch), the loss weights
// and the shard-index-ordered reduction are all identical to the threaded
// executor in ddp.cpp — both share shard_grads.hpp — so `mode=procs`
// produces bit-identical checkpoints to `mode=threads` for any worker
// count, including runs where workers are SIGKILLed and respawned.
//
// Elasticity: a worker that exits, EOFs, or misses the heartbeat deadline
// is declared lost (kWorkerLost); its outstanding shards re-run on the
// supervisor (received shard frames are kept — process isolation means no
// gradient scrubbing), the epoch completes bit-identically, and at the
// epoch boundary the rank respawns with exponential backoff from a
// just-written train checkpoint, within the max_worker_retries budget.
// Budget exhausted: policy "strict" flushes `<checkpoint_path>.abort` and
// throws; "degrade" continues on the survivors, down to the supervisor
// alone. Every exit path reaps children and unlinks the socket (RAII).
//
// Fault sites (deterministically replayable, see common/fault.hpp):
//   ddp_proc_kill    die@<epoch>[:<rank>] — worker _Exit(137)s before its
//                    first owned shard of the matching epoch
//   transport_drop   eio@P — outgoing frame dropped and retried (counted);
//                    a burst past the retry budget fails typed
//   heartbeat_stall  fail@N or die@<rank> — the worker's beacon is
//                    suppressed so the supervisor's deadline fires
#pragma once

#include <string>

#include "src/distributed/ddp.hpp"
#include "src/models/snapshot.hpp"

namespace sptx::distributed {

/// Supervisor entry: train `spec` over `data` with config.workers worker
/// processes. Returns the same DdpResult as the threaded path (plus the
/// procs-only fields). The factory-closure API of train_ddp cannot cross
/// an exec boundary, so this path takes the declarative ModelSpec instead
/// — Engine::train_ddp dispatches here when the resolved mode is "procs".
DdpResult train_ddp_procs(const models::ModelSpec& spec,
                          const kg::TripletSource& data,
                          const DdpConfig& config, const RuntimeConfig& rc);

/// Process-wide-config convenience overload.
DdpResult train_ddp_procs(const models::ModelSpec& spec,
                          const kg::TripletSource& data,
                          const DdpConfig& config);

/// What `sptx ddp-worker` runs: connect to the supervisor, receive the
/// setup frame, train assigned shards until kShutdown. Returns the process
/// exit code (0 clean, non-zero on transport/worker error). `shm_fd` < 0
/// means no ring was inherited.
struct WorkerEndpoint {
  std::string socket_path;
  int rank = 0;
  int shm_fd = -1;
  std::int64_t shm_bytes = 0;
};
int ddp_worker_main(const WorkerEndpoint& endpoint);

/// The `"ddp"` block of Engine::health_json(): live/lost/respawned worker
/// counts, per-rank heartbeat ages, transport frame/byte/retry totals.
/// Reflects the current (or most recent) procs-mode run in this process.
std::string ddp_health_json();

}  // namespace sptx::distributed
