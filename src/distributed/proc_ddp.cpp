#include "src/distributed/proc_ddp.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <thread>
#include <utility>

#include "src/common/error.hpp"
#include "src/common/fault.hpp"
#include "src/common/simd.hpp"
#include "src/common/thread_annotations.hpp"
#include "src/distributed/shard_grads.hpp"
#include "src/distributed/transport.hpp"
#include "src/kg/negative_sampler.hpp"
#include "src/kg/streaming_store.hpp"
#include "src/models/checkpoint.hpp"
#include "src/profiling/counters.hpp"
#include "src/profiling/timer.hpp"
#include "src/runtime/task_pool.hpp"

namespace sptx::distributed {

namespace {

// ---- deadlines (ms) --------------------------------------------------------
constexpr int kHandshakeMs = 15'000;  // spawn → hello → setup round trip
constexpr int kStepWaitMs = 120'000;  // worker waiting for the batch step
constexpr int kIdleWaitMs = 60'000;   // worker waiting for the next epoch
constexpr int kShutdownGraceMs = 2'000;  // child exit grace before SIGKILL

// ---- health registry -------------------------------------------------------
// Process-global mirror of the supervisor's worker table, surfaced through
// Engine::health_json()'s "ddp" block. Written by the supervisor only;
// read from any thread.
struct StatsReg {
  Mutex mu;
  bool active SPTX_GUARDED_BY(mu) = false;
  std::string mode SPTX_GUARDED_BY(mu);
  int runs SPTX_GUARDED_BY(mu) = 0;
  int workers SPTX_GUARDED_BY(mu) = 0;
  int live SPTX_GUARDED_BY(mu) = 0;
  int lost SPTX_GUARDED_BY(mu) = 0;
  int respawned SPTX_GUARDED_BY(mu) = 0;
  int spawned SPTX_GUARDED_BY(mu) = 0;
  std::vector<std::chrono::steady_clock::time_point> last_rx
      SPTX_GUARDED_BY(mu);
  std::vector<char> rank_live SPTX_GUARDED_BY(mu);
};

StatsReg& stats_reg() {
  static StatsReg reg;
  return reg;
}

/// Tiny scope guard (run `fn` on destruction) — keeps the worker's
/// heartbeat thread joinable on every exit path without a dependency.
template <class Fn>
class Finally {
 public:
  explicit Finally(Fn fn) : fn_(std::move(fn)) {}
  ~Finally() { fn_(); }
  Finally(const Finally&) = delete;
  Finally& operator=(const Finally&) = delete;

 private:
  Fn fn_;
};

// ---- wire messages ---------------------------------------------------------

std::string encode_hello(int rank) {
  WireWriter w;
  w.i32(rank);
  w.i64(static_cast<std::int64_t>(::getpid()));
  return w.take();
}

struct SetupMsg {
  models::ModelSpec spec;
  index_t num_entities = 0;
  index_t num_relations = 0;
  std::string data_path;
  int epochs = 0;
  index_t batch_size = 0;
  index_t shard_size = 0;
  float lr = 0.0f;
  std::uint64_t run_seed = 0;
  bool plan_cache = true;
  int heartbeat_ms = 1000;
  int rank = 0;
  int start_epoch = 0;
  std::string resume_ckpt;  // empty = fresh init from the spec seed
};

std::string encode_setup(const SetupMsg& s) {
  WireWriter w;
  w.str(s.spec.family);
  w.str(s.spec.framework);
  w.i64(s.spec.config.dim);
  w.i64(s.spec.config.rel_dim);
  w.f32(s.spec.config.margin);
  w.i32(static_cast<std::int32_t>(s.spec.config.dissimilarity));
  w.i32(static_cast<std::int32_t>(s.spec.config.loss));
  w.i32(static_cast<std::int32_t>(s.spec.config.kernel));
  w.u32(s.spec.config.normalize_entities ? 1 : 0);
  w.u64(s.spec.seed);
  w.i64(s.num_entities);
  w.i64(s.num_relations);
  w.str(s.data_path);
  w.i32(s.epochs);
  w.i64(s.batch_size);
  w.i64(s.shard_size);
  w.f32(s.lr);
  w.u64(s.run_seed);
  w.u32(s.plan_cache ? 1 : 0);
  w.i32(s.heartbeat_ms);
  w.i32(s.rank);
  w.i32(s.start_epoch);
  w.str(s.resume_ckpt);
  return w.take();
}

SetupMsg decode_setup(std::string_view payload) {
  WireReader r(payload);
  SetupMsg s;
  s.spec.family = r.str();
  s.spec.framework = r.str();
  s.spec.config.dim = r.i64();
  s.spec.config.rel_dim = r.i64();
  s.spec.config.margin = r.f32();
  s.spec.config.dissimilarity = static_cast<models::Dissimilarity>(r.i32());
  s.spec.config.loss = static_cast<models::LossType>(r.i32());
  s.spec.config.kernel = static_cast<SpmmKernel>(r.i32());
  s.spec.config.normalize_entities = r.u32() != 0;
  s.spec.seed = r.u64();
  s.num_entities = r.i64();
  s.num_relations = r.i64();
  s.data_path = r.str();
  s.epochs = r.i32();
  s.batch_size = r.i64();
  s.shard_size = r.i64();
  s.lr = r.f32();
  s.run_seed = r.u64();
  s.plan_cache = r.u32() != 0;
  s.heartbeat_ms = r.i32();
  s.rank = r.i32();
  s.start_epoch = r.i32();
  s.resume_ckpt = r.str();
  return s;
}

std::string encode_epoch_begin(int epoch, const std::vector<int>& ranks) {
  WireWriter w;
  w.i32(epoch);
  w.u32(static_cast<std::uint32_t>(ranks.size()));
  for (int r : ranks) w.i32(r);
  return w.take();
}

void decode_epoch_begin(std::string_view payload, int& epoch,
                        std::vector<int>& ranks) {
  WireReader r(payload);
  epoch = r.i32();
  const std::uint32_t n = r.u32();
  ranks.clear();
  for (std::uint32_t i = 0; i < n; ++i) ranks.push_back(r.i32());
}

/// ShardGrad payload: (epoch, batch, shard, loss) + every ParamGrad. All
/// fields are 4-byte multiples so the float blocks stay aligned.
std::string encode_shard_grad(int epoch, std::int64_t batch, std::int64_t s,
                              float loss, const ShardGrads& sg) {
  WireWriter w;
  w.i32(epoch);
  w.i64(batch);
  w.i64(s);
  w.f32(loss);
  w.u32(static_cast<std::uint32_t>(sg.size()));
  for (const ParamGrad& pg : sg) {
    w.u32((pg.present ? 1u : 0u) | (pg.dense ? 2u : 0u));
    if (!pg.present) continue;
    if (pg.dense) {
      w.i64(pg.values.rows());
      w.i64(pg.values.cols());
      for (index_t k = 0; k < pg.values.rows(); ++k)
        w.bytes(pg.values.row(k),
                static_cast<std::size_t>(pg.values.cols()) * sizeof(float));
    } else {
      w.i64(static_cast<std::int64_t>(pg.rows.size()));
      w.i64(pg.values.cols());
      w.bytes(pg.rows.data(), pg.rows.size() * sizeof(index_t));
      for (index_t k = 0; k < pg.values.rows(); ++k)
        w.bytes(pg.values.row(k),
                static_cast<std::size_t>(pg.values.cols()) * sizeof(float));
    }
  }
  return w.take();
}

void decode_shard_grad(std::string_view payload, int& epoch,
                       std::int64_t& batch, std::int64_t& s, float& loss,
                       ShardGrads& sg) {
  WireReader r(payload);
  epoch = r.i32();
  batch = r.i64();
  s = r.i64();
  loss = r.f32();
  const std::uint32_t num_params = r.u32();
  sg.assign(num_params, ParamGrad{});
  for (std::uint32_t i = 0; i < num_params; ++i) {
    ParamGrad& pg = sg[i];
    const std::uint32_t flags = r.u32();
    pg.present = (flags & 1u) != 0;
    pg.dense = (flags & 2u) != 0;
    if (!pg.present) continue;
    const index_t nrows = r.i64();
    const index_t cols = r.i64();
    if (!pg.dense) {
      pg.rows.resize(static_cast<std::size_t>(nrows));
      const std::string_view raw =
          r.raw(static_cast<std::size_t>(nrows) * sizeof(index_t));
      std::memcpy(pg.rows.data(), raw.data(), raw.size());
    }
    pg.values = Matrix(nrows, cols);
    for (index_t k = 0; k < nrows; ++k) {
      const std::string_view raw =
          r.raw(static_cast<std::size_t>(cols) * sizeof(float));
      std::memcpy(pg.values.row(k), raw.data(), raw.size());
    }
  }
}

// ---- shard execution (shared by worker processes and supervisor re-runs) ---

/// One model replica plus the compiled-batch machinery around it. Both the
/// supervisor's master and every worker process hold exactly one.
struct Replica {
  std::unique_ptr<models::KgeModel> model;
  models::ScoringCoreModel* scoring = nullptr;
  std::vector<autograd::Variable> params;
  std::vector<models::ParamIndexSpace> spaces;
  sparse::ScoringRecipe recipe;
  std::unique_ptr<sparse::PlanCache> cache;  // nullptr = caching off
  bool support_verified = false;

  void init(std::unique_ptr<models::KgeModel> m, bool use_cache) {
    model = std::move(m);
    scoring = dynamic_cast<models::ScoringCoreModel*>(model.get());
    params = model->params();
    spaces = model->param_index_spaces();
    if (scoring != nullptr) recipe = scoring->recipe();
    if (use_cache) cache = std::make_unique<sparse::PlanCache>();
    // Materialise every gradient buffer (zeroed) up front, mirroring the
    // threaded path.
    for (auto& param : params) param.grad();
  }
};

/// Forward + backward + harvest for one shard — operation-for-operation the
/// threaded executor's run_shard, so a shard computed here is bit-identical
/// to one computed by a ddp.cpp worker thread. Returns the weighted loss.
float compute_shard(Replica& rep, std::span<const Triplet> pos_all,
                    std::span<const Triplet> neg_all, index_t count,
                    index_t shard_size, index_t s,
                    index_t shard_ordinal_base, index_t n_ent, index_t n_rel,
                    ShardGrads& out) {
  const index_t s_begin = s * shard_size;
  const index_t n_s = std::min<index_t>(shard_size, count - s_begin);
  const std::span<const Triplet> pos = pos_all.subspan(
      static_cast<std::size_t>(s_begin), static_cast<std::size_t>(n_s));
  const std::span<const Triplet> neg = neg_all.subspan(
      static_cast<std::size_t>(s_begin), static_cast<std::size_t>(n_s));
  profiling::count_event(profiling::Counter::kDdpShards);

  autograd::Variable loss;
  if (rep.scoring != nullptr) {
    const sparse::PlanCache::Key key =
        static_cast<sparse::PlanCache::Key>(shard_ordinal_base + s) << 1;
    std::shared_ptr<const sparse::CompiledBatch> pos_plan =
        rep.cache != nullptr ? rep.cache->find(key) : nullptr;
    if (!pos_plan) {
      pos_plan = sparse::CompiledBatch::compile(pos, rep.recipe, n_ent, n_rel,
                                                /*copy_triplets=*/false);
      if (rep.cache != nullptr) rep.cache->put(key, pos_plan);
    }
    std::shared_ptr<const sparse::CompiledBatch> neg_plan =
        rep.cache != nullptr ? rep.cache->find(key | 1) : nullptr;
    if (!neg_plan) {
      neg_plan = sparse::CompiledBatch::compile_owned(
          std::vector<Triplet>(neg.begin(), neg.end()), rep.recipe, n_ent,
          n_rel);
      if (rep.cache != nullptr) rep.cache->put(key | 1, neg_plan);
    }
    loss = rep.scoring->loss(*pos_plan, *neg_plan);
  } else {
    loss = rep.model->loss(pos, neg);
  }

  const float weight = static_cast<float>(n_s) / static_cast<float>(count);
  autograd::scale(loss, weight).backward();
  harvest_shard_grads(rep.params, rep.spaces, pos, neg, n_ent, n_rel, out);
  if (!rep.support_verified) {
    verify_support_exhausts_grads(rep.params, *rep.model);
    rep.support_verified = true;
  }
  return loss.value().at(0, 0) * weight;
}

/// The per-parameter row support of a batch's reduced gradient — the rows
/// the step touches. Identical derivation to the threaded path's step
/// broadcast block.
struct StepRows {
  std::vector<index_t> ents, rels, stacked;
  std::vector<std::vector<index_t>> blocks;  // per-param kRelationBlocks
  std::vector<const std::vector<index_t>*> rows;  // nullptr = dense param

  StepRows(Replica& rep, std::span<const Triplet> pos_all,
           std::span<const Triplet> neg_all, index_t n_ent, index_t n_rel) {
    ents = touched_entity_ids(pos_all, neg_all);
    rels = touched_relation_ids(pos_all, neg_all);
    blocks.resize(rep.params.size());
    rows.resize(rep.params.size(), nullptr);
    for (std::size_t i = 0; i < rep.params.size(); ++i) {
      switch (rep.spaces[i]) {
        case models::ParamIndexSpace::kDense:
          break;  // rows[i] stays nullptr
        case models::ParamIndexSpace::kEntity:
          rows[i] = &ents;
          break;
        case models::ParamIndexSpace::kRelation:
          rows[i] = &rels;
          break;
        case models::ParamIndexSpace::kRelationBlocks:
          blocks[i] = expand_relation_blocks(
              rels, rep.params[i].grad().rows(), n_rel);
          rows[i] = &blocks[i];
          break;
        default:
          if (stacked.empty()) {
            stacked = ents;
            for (index_t r : rels) stacked.push_back(n_ent + r);
          }
          rows[i] = &stacked;
          break;
      }
    }
  }
};

/// Step payload: the reduced gradient restricted to the batch support. The
/// bytes are replica-0's gradient rows verbatim, so every process applies
/// bit-identical axpy updates.
std::string encode_step(int epoch, std::int64_t batch, Replica& rep,
                        const StepRows& support) {
  WireWriter w;
  w.i32(epoch);
  w.i64(batch);
  w.u32(static_cast<std::uint32_t>(rep.params.size()));
  for (std::size_t i = 0; i < rep.params.size(); ++i) {
    const Matrix& g0 = rep.params[i].grad();
    if (support.rows[i] == nullptr) {  // dense parameter: full matrix
      w.u32(0);
      w.i64(g0.rows());
      w.i64(g0.cols());
      for (index_t k = 0; k < g0.rows(); ++k)
        w.bytes(g0.row(k),
                static_cast<std::size_t>(g0.cols()) * sizeof(float));
    } else {
      const std::vector<index_t>& rows = *support.rows[i];
      w.u32(1);
      w.i64(static_cast<std::int64_t>(rows.size()));
      w.i64(g0.cols());
      w.bytes(rows.data(), rows.size() * sizeof(index_t));
      for (index_t row : rows)
        w.bytes(g0.row(row),
                static_cast<std::size_t>(g0.cols()) * sizeof(float));
    }
  }
  return w.take();
}

/// Apply a step frame to a replica: the same axpy / post-zero discipline as
/// the threaded broadcast, sourced from the frame instead of local g0.
void apply_step(std::string_view payload, Replica& rep, float lr,
                int expect_epoch, std::int64_t expect_batch) {
  WireReader r(payload);
  const int epoch = r.i32();
  const std::int64_t batch = r.i64();
  SPTX_CHECK_CODE(epoch == expect_epoch && batch == expect_batch,
                  ErrorCode::kTransportError,
                  "step frame for (epoch " << epoch << ", batch " << batch
                      << ") but worker is at (" << expect_epoch << ", "
                      << expect_batch << ") — desynchronized");
  const std::uint32_t num_params = r.u32();
  SPTX_CHECK_CODE(num_params == rep.params.size(),
                  ErrorCode::kTransportError, "step frame parameter count "
                      << num_params << " != " << rep.params.size());
  std::vector<float> scratch;
  std::vector<index_t> rows;
  for (std::uint32_t i = 0; i < num_params; ++i) {
    const std::uint32_t kind = r.u32();
    const index_t nrows = r.i64();
    const index_t cols = r.i64();
    Matrix& v = rep.params[i].mutable_value();
    scratch.resize(static_cast<std::size_t>(cols));
    if (kind == 0) {  // dense: whole-matrix axpy, matching axpy_(-lr, g0)
      Matrix g(nrows, cols);
      for (index_t k = 0; k < nrows; ++k) {
        const std::string_view raw =
            r.raw(static_cast<std::size_t>(cols) * sizeof(float));
        std::memcpy(g.row(k), raw.data(), raw.size());
      }
      v.axpy_(-lr, g);
    } else {
      rows.resize(static_cast<std::size_t>(nrows));
      const std::string_view raw_rows =
          r.raw(static_cast<std::size_t>(nrows) * sizeof(index_t));
      std::memcpy(rows.data(), raw_rows.data(), raw_rows.size());
      for (index_t k = 0; k < nrows; ++k) {
        const std::string_view raw =
            r.raw(static_cast<std::size_t>(cols) * sizeof(float));
        std::memcpy(scratch.data(), raw.data(), raw.size());
        simd::axpy(v.row(rows[static_cast<std::size_t>(k)]), scratch.data(),
                   -lr, cols);
      }
    }
  }
  rep.model->post_step();
}

// ---- worker process --------------------------------------------------------

/// Run one epoch on the worker side. Returns false when a kShutdown frame
/// arrived instead of the expected step (clean early exit).
bool worker_run_epoch(Conn& conn, Mutex& send_mu, Replica& rep,
                      const kg::TripletSource& data,
                      kg::NegativeSampler& sampler, const SetupMsg& setup,
                      int epoch, const std::vector<int>& live_ranks) {
  const index_t m = data.size();
  const index_t n_ent = setup.num_entities;
  const index_t n_rel = setup.num_relations;
  bool mine = false;
  for (int rk : live_ranks) mine |= (rk == setup.rank);
  SPTX_CHECK_CODE(mine, ErrorCode::kTransportError,
                  "epoch plan does not include this worker (rank "
                      << setup.rank << ")");

  Rng data_rng(setup.run_seed + 1);
  index_t shard_ordinal_base = 0;
  std::int64_t batch_ord = 0;
  for (index_t begin = 0; begin < m;
       begin += setup.batch_size, ++batch_ord) {
    const index_t count = std::min<index_t>(setup.batch_size, m - begin);
    const index_t num_shards = (count + setup.shard_size - 1) /
                               setup.shard_size;
    const std::span<const Triplet> pos_all = data.slice(begin, count);
    // Every worker derives the whole batch's negatives even when it owns no
    // shard in it: the RNG stream must advance identically everywhere.
    const std::vector<Triplet> negatives =
        sampler.pregenerate(pos_all, data_rng);
    const std::span<const Triplet> neg_all(negatives);

    for (index_t s = 0; s < num_shards; ++s) {
      const int owner = live_ranks[static_cast<std::size_t>(s) %
                                   live_ranks.size()];
      if (owner != setup.rank) continue;
      // Injected worker-process death: `ddp_proc_kill:die@<epoch>[:<rank>]`
      // — a real _Exit(137), indistinguishable from SIGKILL/OOM to the
      // supervisor. Worker-side only: supervisor re-runs never die here.
      if (fault::should_fail("ddp_proc_kill", epoch, setup.rank))
        std::_Exit(137);
      ShardGrads sg;
      const float loss =
          compute_shard(rep, pos_all, neg_all, count, setup.shard_size, s,
                        shard_ordinal_base, n_ent, n_rel, sg);
      const std::string payload =
          encode_shard_grad(epoch, batch_ord, s, loss, sg);
      MutexLock lock(send_mu);
      conn.send(FrameType::kShardGrad, payload, setup.heartbeat_ms * 4);
    }

    // Barrier: the reduced gradient for this batch.
    for (;;) {
      Frame frame;
      SPTX_CHECK_CODE(conn.recv(frame, kStepWaitMs),
                      ErrorCode::kTransportError,
                      "no step frame within deadline (supervisor wedged?)");
      if (frame.type == FrameType::kShutdown) return false;
      SPTX_CHECK_CODE(frame.type == FrameType::kStep,
                      ErrorCode::kTransportError,
                      "unexpected frame type "
                          << static_cast<int>(frame.type)
                          << " while awaiting step");
      apply_step(frame.payload, rep, setup.lr, epoch, batch_ord);
      break;
    }
    shard_ordinal_base += num_shards;
  }
  return true;
}

int worker_body(const WorkerEndpoint& endpoint) {
  fault::init_from_config();
  std::unique_ptr<Conn> conn = connect_uds(endpoint.socket_path, 10'000);
  conn->send(FrameType::kHello, encode_hello(endpoint.rank), 10'000);
  std::unique_ptr<ShmRing> ring;
  if (endpoint.shm_fd >= 0 && endpoint.shm_bytes > 0) {
    ring = ShmRing::attach(endpoint.shm_fd,
                           static_cast<std::size_t>(endpoint.shm_bytes));
    if (ring) conn->set_send_ring(ring.get());
  }

  Frame frame;
  SPTX_CHECK_CODE(conn->recv(frame, 30'000), ErrorCode::kTransportError,
                  "no setup frame from supervisor");
  SPTX_CHECK_CODE(frame.type == FrameType::kSetup,
                  ErrorCode::kTransportError, "expected setup frame");
  const SetupMsg setup = decode_setup(frame.payload);

  // Heartbeats start before the (potentially slow) model/data setup so the
  // supervisor's liveness deadline covers it. Socket writes from the two
  // threads serialize on send_mu; the beacon stops — and the thread joins —
  // on every exit path via the Finally + runtime::Thread destructors.
  Mutex send_mu;
  std::atomic<bool> hb_stop{false};
  std::atomic<bool> hb_dead{false};
  runtime::Thread heartbeat([&conn, &send_mu, &hb_stop, &hb_dead, &setup] {
    const auto interval =
        std::chrono::milliseconds(std::max(1, setup.heartbeat_ms / 3));
    while (!hb_stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(interval);
      if (hb_stop.load(std::memory_order_relaxed)) break;
      // Injected beacon suppression: `heartbeat_stall:fail@N` (stall from
      // the N-th beacon on) or `heartbeat_stall:die@<rank>` (stall one
      // rank permanently). The worker keeps computing — only its liveness
      // signal goes dark, so the supervisor's deadline is what trips.
      if (fault::should_fail("heartbeat_stall", setup.rank)) continue;
      try {
        MutexLock lock(send_mu);
        conn->send(FrameType::kHeartbeat, {}, setup.heartbeat_ms);
      } catch (...) {
        hb_dead.store(true, std::memory_order_relaxed);
        return;
      }
    }
  });
  const Finally stop_heartbeat([&hb_stop] {
    hb_stop.store(true, std::memory_order_relaxed);
  });

  const kg::StreamingTripletStore store =
      kg::StreamingTripletStore::open(setup.data_path);
  const kg::TripletSource data(store);
  Replica rep;
  rep.init(models::make_model(setup.spec, setup.num_entities,
                              setup.num_relations),
           setup.plan_cache);
  if (!setup.resume_ckpt.empty())
    models::load_train_checkpoint(*rep.model, setup.resume_ckpt);
  kg::NegativeSampler sampler(setup.num_entities, setup.num_relations,
                              kg::CorruptionScheme::kUniform);

  std::vector<int> live_ranks;
  for (;;) {
    if (hb_dead.load(std::memory_order_relaxed)) return 3;
    Frame next;
    if (!conn->recv(next, kIdleWaitMs)) return 2;  // supervisor wedged
    if (next.type == FrameType::kShutdown) return 0;
    SPTX_CHECK_CODE(next.type == FrameType::kEpochBegin,
                    ErrorCode::kTransportError,
                    "unexpected frame type " << static_cast<int>(next.type)
                                             << " between epochs");
    int epoch = 0;
    decode_epoch_begin(next.payload, epoch, live_ranks);
    if (!worker_run_epoch(*conn, send_mu, rep, data, sampler, setup, epoch,
                          live_ranks))
      return 0;  // shutdown mid-epoch (supervisor abort path)
  }
}

// ---- supervisor ------------------------------------------------------------

std::atomic<int> g_run_seq{0};

struct WorkerProc {
  int rank = -1;
  pid_t pid = -1;
  std::unique_ptr<Conn> conn;
  std::unique_ptr<ShmRing> ring;
  std::chrono::steady_clock::time_point last_rx{};
  bool live = false;
  bool pending_respawn = false;
  int consecutive_respawns = 0;
};

class Supervisor {
 public:
  Supervisor(const models::ModelSpec& spec, const kg::TripletSource& data,
             const DdpConfig& resolved)
      : spec_(spec),
        data_(data),
        res_(resolved),
        run_dir_(make_run_dir()),
        listener_(run_dir_ + "/sup.sock") {
    // Replicas must start from the weights the threaded path's factory
    // draws: train_ddp hands each factory call an Rng seeded with the RUN
    // seed (config.seed), so make_model here — and in every worker — must
    // see that seed, not whatever the spec carried.
    spec_.seed = res_.seed;
  }

  ~Supervisor() {
    // Every exit path — normal return, strict abort, any exception — reaps
    // the children and removes the run dir (the Listener member unlinks
    // the socket). Never throws.
    try {
      shutdown_workers();
    } catch (...) {
    }
    std::error_code ec;
    std::filesystem::remove_all(run_dir_, ec);
    MutexLock lock(stats_reg().mu);
    stats_reg().active = false;
  }

  DdpResult run();

 private:
  static std::string make_run_dir() {
    const int seq = g_run_seq.fetch_add(1);
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         ("sptx-ddp-" + std::to_string(::getpid()) + "-" +
          std::to_string(seq)))
            .string();
    std::filesystem::create_directories(dir);
    return dir;
  }

  std::string data_path() const { return run_dir_ + "/data.sptx"; }
  std::string sync_ckpt_path() const { return run_dir_ + "/sync.ckpt"; }

  void spawn(WorkerProc& w);
  bool handshake_one(int start_epoch, const std::string& resume);
  void lose(WorkerProc& w, const std::string& why);
  [[noreturn]] void abort_run(int epoch, const std::string& why);
  void shutdown_workers();
  void respawn_dead(int next_epoch);
  std::vector<int> live_ranks() const;
  void collect_shards(int epoch, std::int64_t batch_ord, index_t num_shards,
                      const std::vector<int>& owners,
                      std::vector<ShardGrads>& shard_grads,
                      std::vector<float>& shard_loss);
  void touch(WorkerProc& w);
  void publish_stats();

  models::ModelSpec spec_;  // seed overridden to the run seed (see ctor)
  const kg::TripletSource& data_;
  DdpConfig res_;
  std::string run_dir_;
  Listener listener_;
  Replica master_;
  std::vector<WorkerProc> workers_;
  DdpResult result_;
  int retries_left_ = 0;
  index_t shard_size_ = 0;
  /// Set by lose() under strict policy once the budget is gone; run()
  /// checks it at consistent points and calls abort_run there.
  bool abort_pending_ = false;
  std::string abort_reason_;
};

std::vector<int> Supervisor::live_ranks() const {
  std::vector<int> ranks;
  for (const WorkerProc& w : workers_)
    if (w.live) ranks.push_back(w.rank);
  return ranks;
}

void Supervisor::publish_stats() {
  StatsReg& reg = stats_reg();
  MutexLock lock(reg.mu);
  reg.live = 0;
  for (const WorkerProc& w : workers_) {
    if (w.live) ++reg.live;
    reg.rank_live[static_cast<std::size_t>(w.rank)] = w.live ? 1 : 0;
    reg.last_rx[static_cast<std::size_t>(w.rank)] = w.last_rx;
  }
  reg.lost = result_.workers_lost;
  reg.respawned = result_.workers_respawned;
}

void Supervisor::touch(WorkerProc& w) {
  w.last_rx = std::chrono::steady_clock::now();
}

void Supervisor::spawn(WorkerProc& w) {
  if (res_.shm_bytes > 0)
    w.ring = ShmRing::create(static_cast<std::size_t>(res_.shm_bytes));
  const pid_t pid = ::fork();
  SPTX_CHECK_CODE(pid >= 0, ErrorCode::kWorkerLost,
                  "fork failed: " << std::strerror(errno));
  if (pid == 0) {
    // Child. Drop the supervisor-side fds we inherited (the listener and
    // the other live workers' connections) so lifetime is owned by exactly
    // one process; the ring fd is the one inheritance we keep.
    ::close(listener_.fd());
    for (WorkerProc& other : workers_)
      if (other.conn) other.conn->close();
    WorkerEndpoint endpoint;
    endpoint.socket_path = listener_.path();
    endpoint.rank = w.rank;
    endpoint.shm_fd = w.ring ? w.ring->fd() : -1;
    endpoint.shm_bytes = w.ring ? res_.shm_bytes : 0;
    if (res_.worker_exec.empty()) {
      // Fork-only mode (tests): run the worker loop in the child and
      // _Exit so no parent-inherited destructors/atexit handlers run.
      int rc = 1;
      try {
        rc = ddp_worker_main(endpoint);
      } catch (...) {
      }
      std::_Exit(rc);
    }
    // Fork+exec mode (CLI): become `<exe> ddp-worker ...`. The fault spec
    // travels via the environment (SPTX_FAULT_SPEC/SEED), the ring via
    // the inherited fd.
    const std::string shm_fd_s = std::to_string(endpoint.shm_fd);
    const std::string shm_bytes_s = std::to_string(endpoint.shm_bytes);
    const std::string rank_s = std::to_string(endpoint.rank);
    const char* argv[] = {res_.worker_exec.c_str(),
                          "ddp-worker",
                          "--connect",
                          endpoint.socket_path.c_str(),
                          "--rank",
                          rank_s.c_str(),
                          "--shm-fd",
                          shm_fd_s.c_str(),
                          "--shm-bytes",
                          shm_bytes_s.c_str(),
                          nullptr};
    ::execv(res_.worker_exec.c_str(), const_cast<char* const*>(argv));
    std::_Exit(127);  // exec failed; the supervisor sees a lost worker
  }
  w.pid = pid;
  touch(w);
  profiling::count_event(profiling::Counter::kDdpProcSpawns);
  {
    MutexLock lock(stats_reg().mu);
    ++stats_reg().spawned;
  }
}

bool Supervisor::handshake_one(int start_epoch, const std::string& resume) {
  std::unique_ptr<Conn> conn = listener_.accept(kHandshakeMs);
  if (!conn) return false;
  Frame hello;
  if (!conn->recv(hello, kHandshakeMs) ||
      hello.type != FrameType::kHello)
    return false;
  WireReader r(hello.payload);
  const int rank = r.i32();
  SPTX_CHECK_CODE(rank >= 0 &&
                      rank < static_cast<int>(workers_.size()) &&
                      !workers_[static_cast<std::size_t>(rank)].live,
                  ErrorCode::kTransportError,
                  "hello from unexpected rank " << rank);
  WorkerProc& w = workers_[static_cast<std::size_t>(rank)];
  w.conn = std::move(conn);
  if (w.ring) w.conn->set_recv_ring(w.ring.get());

  SetupMsg setup;
  setup.spec = spec_;
  setup.num_entities = data_.num_entities();
  setup.num_relations = data_.num_relations();
  setup.data_path = data_path();
  setup.epochs = res_.epochs;
  setup.batch_size = res_.batch_size;
  setup.shard_size = shard_size_;
  setup.lr = res_.lr;
  setup.run_seed = res_.seed;
  setup.plan_cache = res_.plan_cache;
  setup.heartbeat_ms = res_.heartbeat_ms;
  setup.rank = rank;
  setup.start_epoch = start_epoch;
  setup.resume_ckpt = resume;
  w.conn->send(FrameType::kSetup, encode_setup(setup), kHandshakeMs);
  w.live = true;
  touch(w);
  return true;
}

void Supervisor::lose(WorkerProc& w, const std::string& why) {
  if (!w.live) return;
  w.live = false;
  if (w.conn) w.conn->close();
  if (w.pid > 0) {
    // SIGKILL is idempotent on an already-dead pid; the blocking reap is
    // bounded because after SIGKILL the child cannot linger.
    ::kill(w.pid, SIGKILL);
    int status = 0;
    pid_t rc;
    do {
      rc = ::waitpid(w.pid, &status, 0);
    } while (rc < 0 && errno == EINTR);
    w.pid = -1;
  }
  ++result_.worker_failures;
  ++result_.workers_lost;
  profiling::count_event(profiling::Counter::kDdpProcWorkersLost);
  if (retries_left_ > 0) {
    --retries_left_;
    w.pending_respawn = true;
  } else if (res_.policy != "degrade" && !abort_pending_) {
    // Strict policy with an exhausted budget: record the abort and let the
    // caller reach a consistent point (abort_run flushes `.abort` there).
    // lose() itself never throws so every caller's invariants hold.
    abort_pending_ = true;
    abort_reason_ = "worker " + std::to_string(w.rank) +
                    " lost with the respawn budget exhausted: " + why;
  }
  // degrade: the rank stays dead; training continues on the survivors.
  publish_stats();
}

void Supervisor::abort_run(int epoch, const std::string& why) {
  std::string flushed;
  if (!res_.checkpoint_path.empty()) {
    flushed = res_.checkpoint_path + ".abort";
    models::save_checkpoint(*master_.model, flushed);
  }
  shutdown_workers();
  throw_error(ErrorCode::kWorkerLost,
              "multi-process ddp aborting at epoch " + std::to_string(epoch) +
                  (flushed.empty() ? std::string()
                                   : "; parameters flushed to " + flushed) +
                  "; cause: " + why);
}

void Supervisor::shutdown_workers() {
  // Best-effort shutdown frames, then a bounded grace period, then SIGKILL
  // — the supervisor never hangs on a wedged child and never leaks one.
  for (WorkerProc& w : workers_) {
    if (!w.live || !w.conn) continue;
    try {
      w.conn->send(FrameType::kShutdown, {}, 200);
    } catch (...) {
    }
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(kShutdownGraceMs);
  for (WorkerProc& w : workers_) {
    while (w.pid > 0) {
      int status = 0;
      const pid_t rc = ::waitpid(w.pid, &status, WNOHANG);
      if (rc == w.pid || (rc < 0 && errno == ECHILD)) {
        w.pid = -1;
        break;
      }
      if (rc < 0 && errno != EINTR) {
        w.pid = -1;
        break;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        ::kill(w.pid, SIGKILL);
        pid_t reaped;
        do {
          reaped = ::waitpid(w.pid, &status, 0);
        } while (reaped < 0 && errno == EINTR);
        w.pid = -1;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    w.live = false;
    if (w.conn) w.conn->close();
  }
}

void Supervisor::respawn_dead(int next_epoch) {
  bool sync_written = false;
  for (WorkerProc& w : workers_) {
    if (!w.pending_respawn) continue;
    w.pending_respawn = false;
    // Exponential backoff: a rank that keeps dying waits longer each time
    // (capped), so a crash-looping worker cannot melt the supervisor.
    const int shift = std::min(w.consecutive_respawns, 5);
    const int delay = std::min(res_.respawn_backoff_ms << shift, 2000);
    if (delay > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    if (!sync_written) {
      // Checkpoint-based recovery: the respawned process loads the state
      // the survivors are at and joins at the next epoch boundary.
      models::TrainCheckpointState st;
      st.next_epoch = next_epoch;
      st.epoch_loss = result_.epoch_loss;
      models::save_train_checkpoint(*master_.model, st, sync_ckpt_path());
      sync_written = true;
    }
    ++w.consecutive_respawns;
    spawn(w);
    if (handshake_one(next_epoch, sync_ckpt_path())) {
      ++result_.workers_respawned;
      profiling::count_event(profiling::Counter::kDdpProcRespawns);
      {
        MutexLock lock(stats_reg().mu);
        ++stats_reg().respawned;
      }
    } else {
      // The respawn itself failed (never connected). Reap it and charge
      // the budget again — or abort/degrade exactly like a mid-epoch loss.
      w.live = true;  // arm lose() for the not-yet-connected process
      lose(w, "respawned worker never completed the handshake");
    }
    publish_stats();
  }
}

void Supervisor::collect_shards(int epoch, std::int64_t batch_ord,
                                index_t num_shards,
                                const std::vector<int>& owners,
                                std::vector<ShardGrads>& shard_grads,
                                std::vector<float>& shard_loss) {
  const auto outstanding = [&]() {
    index_t n = 0;
    for (index_t s = 0; s < num_shards; ++s) {
      const int owner = owners[static_cast<std::size_t>(s)];
      if (owner < 0) continue;  // supervisor-owned
      const WorkerProc& w = workers_[static_cast<std::size_t>(owner)];
      if (w.live && shard_grads[static_cast<std::size_t>(s)].empty()) ++n;
    }
    return n;
  };

  while (outstanding() > 0 && !abort_pending_) {
    std::vector<pollfd> fds;
    std::vector<int> fd_rank;
    for (const WorkerProc& w : workers_) {
      if (!w.live || !w.conn) continue;
      fds.push_back(pollfd{w.conn->fd(), POLLIN, 0});
      fd_rank.push_back(w.rank);
    }
    if (fds.empty()) break;  // everyone died; locals below cover the batch
    const int slice = std::max(1, std::min(100, res_.heartbeat_ms / 4));
    int rc;
    do {
      rc = ::poll(fds.data(), fds.size(), slice);
    } while (rc < 0 && errno == EINTR);

    const auto now = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < fds.size(); ++i) {
      WorkerProc& w = workers_[static_cast<std::size_t>(fd_rank[i])];
      if (!w.live) continue;
      if (rc > 0 && (fds[i].revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
        // Readable: drain exactly one frame (round-robin fairness).
        Frame frame;
        try {
          if (!w.conn->recv(frame, res_.heartbeat_ms)) continue;
        } catch (const Error& e) {
          lose(w, e.what());
          continue;
        }
        touch(w);
        switch (frame.type) {
          case FrameType::kHeartbeat:
            profiling::count_event(profiling::Counter::kDdpProcHeartbeats);
            break;
          case FrameType::kShardGrad: {
            int f_epoch = 0;
            std::int64_t f_batch = 0, f_shard = 0;
            float f_loss = 0.0f;
            ShardGrads sg;
            decode_shard_grad(frame.payload, f_epoch, f_batch, f_shard,
                              f_loss, sg);
            if (f_epoch != epoch || f_batch != batch_ord || f_shard < 0 ||
                f_shard >= num_shards) {
              lose(w, "shard frame out of sequence");
              break;
            }
            shard_grads[static_cast<std::size_t>(f_shard)] = std::move(sg);
            shard_loss[static_cast<std::size_t>(f_shard)] = f_loss;
            break;
          }
          case FrameType::kWorkerError:
            lose(w, "worker reported: " + frame.payload);
            break;
          default:
            lose(w, "unexpected frame type " +
                        std::to_string(static_cast<int>(frame.type)));
            break;
        }
      } else {
        // Nothing buffered from this worker: its silence is real, so the
        // liveness deadline applies (and a fast exit is caught sooner via
        // the pid).
        int status = 0;
        const pid_t reaped = w.pid > 0 ? ::waitpid(w.pid, &status, WNOHANG)
                                       : 0;
        if (reaped == w.pid && w.pid > 0) {
          w.pid = -1;
          lose(w, "worker process exited");
          continue;
        }
        const auto age = std::chrono::duration_cast<std::chrono::milliseconds>(
                             now - w.last_rx)
                             .count();
        if (age > res_.heartbeat_ms)
          lose(w, "heartbeat deadline exceeded (" + std::to_string(age) +
                      "ms > " + std::to_string(res_.heartbeat_ms) + "ms)");
      }
    }
  }
}

DdpResult Supervisor::run() {
  SPTX_CHECK(data_.valid() && !data_.empty(), "empty training set");
  SPTX_CHECK(res_.batch_size > 0 && res_.epochs >= 0, "bad ddp config");
  SPTX_CHECK(res_.checkpoint_every <= 0 || !res_.checkpoint_path.empty(),
             "checkpoint_every > 0 needs a checkpoint_path");
  const int p = res_.workers;
  SPTX_CHECK(p >= 1, "need at least one worker");
  shard_size_ = res_.shard_size;
  if (shard_size_ <= 0) shard_size_ = (res_.batch_size + p - 1) / p;
  retries_left_ = res_.max_worker_retries;

  const index_t m = data_.size();
  const index_t n_ent = data_.num_entities();
  const index_t n_rel = data_.num_relations();
  master_.init(models::make_model(spec_, n_ent, n_rel), res_.plan_cache);
  kg::NegativeSampler sampler(n_ent, n_rel, kg::CorruptionScheme::kUniform);

  result_.workers = p;
  result_.shard_size = shard_size_;

  // Resume, identically to the threaded path: master from the checkpoint,
  // workers from a sync checkpoint written below.
  int start_epoch = 0;
  if (!res_.resume_from.empty()) {
    std::string path = res_.resume_from;
    if (!std::filesystem::exists(path)) {
      const auto found = models::latest_checkpoint(res_.resume_from);
      SPTX_CHECK_CODE(found.has_value(), ErrorCode::kIo,
                      "no checkpoint found at '"
                          << res_.resume_from << "' (or rotations "
                          << res_.resume_from << ".ep<N>)"
                          << models::describe_abort_sibling(
                                 res_.resume_from));
      path = found->path;
    }
    models::TrainCheckpointState st =
        models::load_train_checkpoint(*master_.model, path);
    result_.epoch_loss = std::move(st.epoch_loss);
    start_epoch = st.next_epoch;
    result_.start_epoch = start_epoch;
  }

  {
    StatsReg& reg = stats_reg();
    MutexLock lock(reg.mu);
    reg.active = true;
    reg.mode = "procs";
    ++reg.runs;
    reg.workers = p;
    reg.live = reg.lost = reg.respawned = reg.spawned = 0;
    reg.last_rx.assign(static_cast<std::size_t>(p),
                       std::chrono::steady_clock::now());
    reg.rank_live.assign(static_cast<std::size_t>(p), 0);
  }

  const profiling::CounterWindow shards_window(
      profiling::Counter::kDdpShards);
  const profiling::CounterWindow rows_window(
      profiling::Counter::kDdpAllReduceRows);
  const profiling::CounterWindow dense_window(
      profiling::Counter::kDdpDenseReduces);
  const profiling::CounterWindow builds_window(
      profiling::Counter::kIncidenceBuilds);
  const profiling::CounterWindow frames_window(
      profiling::Counter::kDdpTransportFrames);
  const profiling::CounterWindow bytes_window(
      profiling::Counter::kDdpTransportBytes);
  const profiling::CounterWindow retries_window(
      profiling::Counter::kDdpTransportRetries);
  const auto t0 = profiling::clock::now();

  if (start_epoch < res_.epochs) {
    // Materialise the dataset for the workers: one self-describing
    // streaming file in the run dir, mmap'd by every worker (the kernel
    // shares the page cache, so N workers cost one resident copy).
    kg::StreamingTripletStore::write_file(data_path(), data_.slice(0, m),
                                          n_ent, n_rel);
    std::string initial_resume;
    if (start_epoch > 0) {
      models::TrainCheckpointState st;
      st.next_epoch = start_epoch;
      st.epoch_loss = result_.epoch_loss;
      models::save_train_checkpoint(*master_.model, st, sync_ckpt_path());
      initial_resume = sync_ckpt_path();
    }
    workers_.resize(static_cast<std::size_t>(p));
    for (int rank = 0; rank < p; ++rank) {
      workers_[static_cast<std::size_t>(rank)].rank = rank;
      spawn(workers_[static_cast<std::size_t>(rank)]);
    }
    for (int i = 0; i < p; ++i) {
      if (!handshake_one(start_epoch, initial_resume)) {
        // Some worker never connected; charge every silent rank.
        for (WorkerProc& w : workers_) {
          if (w.live || w.pid <= 0) continue;
          w.live = true;  // arm lose() for the unconnected process
          lose(w, "worker never completed the startup handshake");
        }
        break;
      }
    }
    publish_stats();
    if (abort_pending_) abort_run(start_epoch, abort_reason_);
  }

  for (int epoch = start_epoch; epoch < res_.epochs; ++epoch) {
    const auto epoch_start = profiling::clock::now();
    const std::vector<int> epoch_ranks = live_ranks();
    for (int rank : epoch_ranks) {
      WorkerProc& w = workers_[static_cast<std::size_t>(rank)];
      try {
        w.conn->send(FrameType::kEpochBegin,
                     encode_epoch_begin(epoch, epoch_ranks),
                     res_.heartbeat_ms);
      } catch (const Error& e) {
        lose(w, e.what());
      }
    }
    if (abort_pending_) abort_run(epoch, abort_reason_);

    Rng data_rng(res_.seed + 1);
    double loss_sum = 0.0;
    index_t batches = 0;
    index_t shard_ordinal_base = 0;
    std::int64_t batch_ord = 0;

    for (index_t begin = 0; begin < m;
         begin += res_.batch_size, ++batch_ord) {
      const index_t count = std::min<index_t>(res_.batch_size, m - begin);
      const index_t num_shards = (count + shard_size_ - 1) / shard_size_;
      const std::span<const Triplet> pos_all = data_.slice(begin, count);
      const std::vector<Triplet> negatives =
          sampler.pregenerate(pos_all, data_rng);
      const std::span<const Triplet> neg_all(negatives);

      std::vector<ShardGrads> shard_grads(
          static_cast<std::size_t>(num_shards));
      std::vector<float> shard_loss(static_cast<std::size_t>(num_shards),
                                    0.0f);
      // Ownership was fixed when the epoch began: shard s belongs to
      // epoch_ranks[s % |epoch_ranks|] (-1 = supervisor). A rank that dies
      // mid-epoch keeps its slots — the supervisor covers them — so the
      // surviving workers' view of the assignment never changes.
      std::vector<int> owners(static_cast<std::size_t>(num_shards), -1);
      if (!epoch_ranks.empty())
        for (index_t s = 0; s < num_shards; ++s)
          owners[static_cast<std::size_t>(s)] =
              epoch_ranks[static_cast<std::size_t>(s) % epoch_ranks.size()];

      collect_shards(epoch, batch_ord, num_shards, owners, shard_grads,
                     shard_loss);
      // Master parameters are consistent here (they only move in the step
      // phase below) — the strict-abort flush point.
      if (abort_pending_) abort_run(epoch, abort_reason_);
      // Cover everything that didn't arrive — dead ranks' shards (their
      // already-received frames are kept: process isolation means a
      // worker's death cannot corrupt what it already shipped) and, in
      // degraded operation, entire batches.
      for (index_t s = 0; s < num_shards; ++s) {
        if (!shard_grads[static_cast<std::size_t>(s)].empty()) continue;
        shard_loss[static_cast<std::size_t>(s)] = compute_shard(
            master_, pos_all, neg_all, count, shard_size_, s,
            shard_ordinal_base, n_ent, n_rel,
            shard_grads[static_cast<std::size_t>(s)]);
        if (owners[static_cast<std::size_t>(s)] >= 0)
          ++result_.shards_reassigned;
      }

      // All-reduce in shard-index order into the master's gradient buffers
      // — the exact loop of the threaded path, so the reduced bytes are
      // identical no matter which process computed which shard.
      for (index_t s = 0; s < num_shards; ++s) {
        ShardGrads& sg = shard_grads[static_cast<std::size_t>(s)];
        for (std::size_t i = 0; i < master_.params.size(); ++i) {
          ParamGrad& pg = sg[i];
          if (!pg.present) continue;
          Matrix& g0 = master_.params[i].grad();
          if (pg.dense) {
            g0.add_(pg.values);
            profiling::count_event(profiling::Counter::kDdpDenseReduces);
          } else {
            const index_t cols = g0.cols();
            for (std::size_t k = 0; k < pg.rows.size(); ++k)
              simd::add(g0.row(pg.rows[k]),
                        pg.values.row(static_cast<index_t>(k)), cols);
            profiling::count_event(
                profiling::Counter::kDdpAllReduceRows,
                static_cast<std::int64_t>(pg.rows.size()));
          }
        }
      }

      // Broadcast the reduced gradient, then step the master with the same
      // bytes. Serialization happens before the local step zeroes g0.
      const StepRows support(master_, pos_all, neg_all, n_ent, n_rel);
      const std::string step_payload =
          encode_step(epoch, batch_ord, master_, support);
      for (int rank : epoch_ranks) {
        WorkerProc& w = workers_[static_cast<std::size_t>(rank)];
        if (!w.live) continue;
        try {
          w.conn->send(FrameType::kStep, step_payload, res_.heartbeat_ms * 4);
        } catch (const Error& e) {
          lose(w, e.what());
        }
      }
      if (abort_pending_) abort_run(epoch, abort_reason_);
      for (std::size_t i = 0; i < master_.params.size(); ++i) {
        Matrix& g0 = master_.params[i].grad();
        if (support.rows[i] == nullptr) {
          master_.params[i].mutable_value().axpy_(-res_.lr, g0);
          g0.zero();
          continue;
        }
        Matrix& v = master_.params[i].mutable_value();
        const index_t cols = g0.cols();
        for (index_t row : *support.rows[i])
          simd::axpy(v.row(row), g0.row(row), -res_.lr, cols);
        for (index_t row : *support.rows[i])
          std::memset(g0.row(row), 0,
                      static_cast<std::size_t>(cols) * sizeof(float));
      }
      master_.model->post_step();

      float batch_loss = 0.0f;  // shard order: worker-count invariant
      for (float l : shard_loss) batch_loss += l;
      loss_sum += batch_loss;
      ++batches;
      shard_ordinal_base += num_shards;
    }

    const float mean_loss =
        batches > 0 ? static_cast<float>(loss_sum / batches) : 0.0f;
    result_.epoch_loss.push_back(mean_loss);
    result_.epoch_seconds.push_back(profiling::seconds_since(epoch_start));
    if (res_.on_epoch) res_.on_epoch(epoch, mean_loss);

    if (res_.checkpoint_every > 0 &&
        (epoch + 1) % res_.checkpoint_every == 0 &&
        epoch + 1 < res_.epochs) {
      models::TrainCheckpointState st;
      st.next_epoch = epoch + 1;
      st.epoch_loss = result_.epoch_loss;
      const std::string path =
          models::checkpoint_path_for_epoch(res_.checkpoint_path, epoch + 1);
      models::save_train_checkpoint(*master_.model, st, path);
      models::prune_checkpoints(res_.checkpoint_path, res_.checkpoint_keep);
      ++result_.checkpoints_written;
      result_.last_checkpoint = path;
    }

    // Ranks that survived the epoch reset their crash-loop backoff; dead
    // ranks with budget respawn from the just-consistent state.
    for (WorkerProc& w : workers_)
      if (w.live) w.consecutive_respawns = 0;
    if (epoch + 1 < res_.epochs) respawn_dead(epoch + 1);
    if (abort_pending_) abort_run(epoch, abort_reason_);
  }

  shutdown_workers();
  publish_stats();

  result_.total_seconds = profiling::seconds_since(t0);
  result_.shards_executed = shards_window.elapsed();
  result_.allreduce_rows = rows_window.elapsed();
  result_.dense_reduces = dense_window.elapsed();
  result_.incidence_builds = builds_window.elapsed();
  result_.transport_frames = frames_window.elapsed();
  result_.transport_bytes = bytes_window.elapsed();
  result_.transport_retries = retries_window.elapsed();
  if (master_.cache) {
    const auto stats = master_.cache->stats();
    result_.worker_plan_stats.push_back(stats);
    result_.plan_stats = stats;
  }
  result_.model = std::move(master_.model);
  return std::move(result_);
}

}  // namespace

DdpResult train_ddp_procs(const models::ModelSpec& spec,
                          const kg::TripletSource& data,
                          const DdpConfig& config, const RuntimeConfig& rc) {
  const DdpConfig resolved = resolve(config, rc);
  fault::init_from_config();
  Supervisor supervisor(spec, data, resolved);
  return supervisor.run();
}

DdpResult train_ddp_procs(const models::ModelSpec& spec,
                          const kg::TripletSource& data,
                          const DdpConfig& config) {
  return train_ddp_procs(spec, data, config, *config::current());
}

int ddp_worker_main(const WorkerEndpoint& endpoint) {
  try {
    return worker_body(endpoint);
  } catch (const std::exception&) {
    // Best effort was already made to report over the socket; the exit
    // code is the supervisor-visible signal either way.
    return 3;
  } catch (...) {
    return 3;
  }
}

std::string ddp_health_json() {
  StatsReg& reg = stats_reg();
  std::ostringstream os;
  MutexLock lock(reg.mu);
  const auto now = std::chrono::steady_clock::now();
  os << "{\"active\": " << (reg.active ? "true" : "false") << ", \"mode\": \""
     << (reg.mode.empty() ? "threads" : reg.mode) << "\", \"runs\": "
     << reg.runs << ", \"workers\": " << reg.workers
     << ", \"live\": " << reg.live << ", \"lost\": " << reg.lost
     << ", \"respawned\": " << reg.respawned
     << ", \"spawned\": " << reg.spawned << ", \"heartbeat_age_ms\": [";
  for (std::size_t i = 0; i < reg.last_rx.size(); ++i) {
    if (i > 0) os << ", ";
    if (reg.rank_live[i] == 0) {
      os << -1;
    } else {
      os << std::chrono::duration_cast<std::chrono::milliseconds>(
                now - reg.last_rx[i])
                .count();
    }
  }
  os << "], \"transport\": {\"frames\": "
     << profiling::counter_value(profiling::Counter::kDdpTransportFrames)
     << ", \"bytes\": "
     << profiling::counter_value(profiling::Counter::kDdpTransportBytes)
     << ", \"retries\": "
     << profiling::counter_value(profiling::Counter::kDdpTransportRetries)
     << ", \"heartbeats\": "
     << profiling::counter_value(profiling::Counter::kDdpProcHeartbeats)
     << "}}";
  return os.str();
}

}  // namespace sptx::distributed
