// Sharded data-parallel training (Appendix F substitute) over in-memory or
// mmap'd streaming triplet stores.
//
// The paper wraps SpTransE in PyTorch DDP and scales to 64 A100 GPUs
// (Table 9). This environment has no GPUs, so we build the DDP mechanics
// ourselves and measure/model the scaling:
//
//  * train_ddp — real multi-worker data parallelism over std::threads for
//    ANY models::KgeModel. Every batch is cut into fixed-size shards; each
//    worker drives its replica through the compiled-batch pipeline (the
//    model's ScoringRecipe, per-worker sparse::PlanCache — zero incidence
//    rebuilds after epoch 0 on the fixed-order protocol) and produces a
//    per-shard gradient. Gradients are combined by a sparse-aware
//    all-reduce: only the embedding rows in a shard's incidence support
//    travel (everything outside it is identically zero), and shards reduce
//    in shard-index order — so the result is bit-identical no matter how
//    many workers executed them. Fed a kg::StreamingTripletStore the
//    trainer reads positives as zero-copy spans over the mapping and
//    samples negatives per batch, never materialising the file in RAM.
//  * ScalingModel — an analytic DDP cost model,
//        T(p) = T_compute / (p · eff(p)) + epochs · T_allreduce(p),
//    with ring all-reduce time 2·(p−1)/p · bytes / bandwidth + latency
//    hops, calibrated from a measured single-worker epoch. This produces
//    the Table 9 series for p = 4 … 64 without 64 physical devices; the
//    shape (near-linear until communication shows) is what the paper
//    reports.
//
// Registry knobs (common/runtime_config.hpp): SPTX_DDP_WORKERS,
// SPTX_DDP_SHARD and SPTX_DDP_PLAN_CACHE override the corresponding
// DdpConfig fields.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "src/common/runtime_config.hpp"
#include "src/kg/triplet.hpp"
#include "src/kg/triplet_source.hpp"
#include "src/models/model.hpp"
#include "src/sparse/plan_cache.hpp"
#include "src/train/trainer.hpp"

namespace sptx::distributed {

struct DdpConfig {
  int workers = 4;          // SPTX_DDP_WORKERS overrides
  int epochs = 10;
  index_t batch_size = 4096;
  /// Gradient-shard granularity. Results depend on the shard decomposition,
  /// not on the worker count, so fixing shard_size makes training
  /// bit-identical for any `workers` (the tests' invariance anchor). 0
  /// derives ceil(batch_size / workers) — classic DDP behaviour, one shard
  /// per worker. SPTX_DDP_SHARD overrides.
  index_t shard_size = 0;
  float lr = 0.0004f;
  std::uint64_t seed = 42;
  /// Cache compiled shard plans across epochs (per-worker PlanCache). On
  /// the fixed-order protocol every epoch after the first is served
  /// entirely from cache — zero incidence rebuilds. Costs O(dataset)
  /// resident plan memory, so switch it off to train files that must not
  /// be materialised. SPTX_DDP_PLAN_CACHE overrides.
  bool plan_cache = true;
  /// Fires after every epoch with (epoch, mean_loss).
  std::function<void(int, float)> on_epoch;
  /// Worker-failure recovery budget for the whole run: when a worker dies
  /// (throws — including injected `ddp_worker` faults), its replica's
  /// half-accumulated gradients are scrubbed and the missing shards re-run
  /// on the driving thread; the epoch then completes bit-identically
  /// (reduction is shard-index-ordered, so WHO ran a shard never matters).
  /// Once the budget is exhausted the run aborts cleanly: parameters are
  /// flushed to `<checkpoint_path>.abort` (they are consistent — a batch's
  /// update is all-or-nothing) and Error{kWorkerFailed} is thrown. No
  /// hang either way. SPTX_DDP_RETRIES overrides.
  int max_worker_retries = 1;
  /// Crash safety, mirroring train::TrainConfig: rotated atomic
  /// checkpoints every N epochs (DDP epochs are self-contained — the data
  /// RNG reseeds per epoch — so a checkpoint is just replica-0 parameters
  /// + the epoch cursor, and resume is trivially bit-identical).
  /// SPTX_CHECKPOINT_EVERY / SPTX_CHECKPOINT_KEEP override.
  int checkpoint_every = 0;
  std::string checkpoint_path;
  int checkpoint_keep = 3;
  /// Resume from a `.ep<N>` file or a base path (newest rotation wins).
  std::string resume_from;
  // ---- multi-process mode (proc_ddp.hpp executes these) ------------------
  /// "threads" (this file) or "procs": supervised worker *processes* over
  /// the UDS/shm transport — bit-identical results, process-level fault
  /// isolation (a worker SIGKILL/OOM cannot take down the trainer).
  /// SPTX_DDP_MODE overrides. Engine::train_ddp dispatches on this.
  std::string mode = "threads";
  /// Procs-mode liveness deadline: a worker that sends no frame (data or
  /// heartbeat) for this long is declared lost. SPTX_DDP_HEARTBEAT_MS
  /// overrides.
  int heartbeat_ms = 1000;
  /// What procs mode does once the respawn budget (max_worker_retries) is
  /// exhausted: "strict" flushes `<checkpoint_path>.abort` and throws
  /// Error{kWorkerLost}; "degrade" keeps training on the surviving workers
  /// (down to the supervisor alone). SPTX_DDP_POLICY overrides.
  std::string policy = "strict";
  /// Per-worker shared-memory ring bytes for gradient payloads (0 = socket
  /// inline only; oversized payloads always fall back to the socket).
  /// SPTX_DDP_SHM_BYTES overrides.
  std::int64_t shm_bytes = 1 << 20;
  /// Executable to spawn workers from ("" = fork-only: the child runs the
  /// worker loop in-process, which is what the tests use; the CLI passes
  /// /proc/self/exe so workers are real fork+exec `sptx ddp-worker`
  /// processes).
  std::string worker_exec;
  /// Base respawn backoff; doubles per consecutive respawn of the same
  /// rank (exponential backoff), capped at 32x.
  int respawn_backoff_ms = 25;
};

struct DdpResult {
  double total_seconds = 0.0;
  std::vector<float> epoch_loss;
  std::vector<double> epoch_seconds;
  /// Worker replica 0 after training (all replicas are bit-identical).
  std::unique_ptr<models::KgeModel> model;
  // ---- resolved configuration -------------------------------------------
  int workers = 0;
  index_t shard_size = 0;
  // ---- counters (profiling/counters.hpp windows over this run) ----------
  std::int64_t shards_executed = 0;    // kDdpShards
  std::int64_t allreduce_rows = 0;     // kDdpAllReduceRows (sparse path)
  std::int64_t dense_reduces = 0;      // kDdpDenseReduces (fallback path)
  std::int64_t incidence_builds = 0;   // kIncidenceBuilds
  /// Per-worker plan-cache traffic, and the aggregate over all workers.
  std::vector<sparse::PlanCache::Stats> worker_plan_stats;
  sparse::PlanCache::Stats plan_stats;
  // ---- fault tolerance ---------------------------------------------------
  /// First epoch this run executed (> 0 when resumed).
  int start_epoch = 0;
  /// Worker deaths detected and shards re-run on the driving thread.
  int worker_failures = 0;
  std::int64_t shards_reassigned = 0;
  /// Crash-safety traffic: rotated checkpoints written, newest path.
  int checkpoints_written = 0;
  std::string last_checkpoint;
  // ---- procs mode only (proc_ddp.cpp) ------------------------------------
  /// Worker processes declared dead (exit, EOF, missed heartbeat) and
  /// respawned from the last epoch checkpoint.
  int workers_lost = 0;
  int workers_respawned = 0;
  /// Transport traffic over the run (kDdpTransport* counter windows).
  std::int64_t transport_frames = 0;
  std::int64_t transport_bytes = 0;
  std::int64_t transport_retries = 0;
};

/// Thread-backed sharded data-parallel training of any KgeModel. The model
/// factory is invoked once per worker so each worker owns a replica;
/// replicas start from identical weights (same seed) and stay bit-identical
/// because every step applies the same deterministically-reduced gradient.
/// `data` binds implicitly from a TripletStore or a StreamingTripletStore.
DdpResult train_ddp(
    const std::function<std::unique_ptr<models::KgeModel>(Rng&)>& make_model,
    const kg::TripletSource& data, const DdpConfig& config);

/// Apply the registry's DDP overrides (SPTX_DDP_WORKERS / SPTX_DDP_SHARD /
/// SPTX_DDP_PLAN_CACHE) to `config`.
DdpConfig resolve(const DdpConfig& config, const RuntimeConfig& rc);

/// Engine path: resolve against an explicit snapshot instead of the
/// process-wide one. Bit-identical to the overload above whenever the
/// snapshots agree.
DdpResult train_ddp(
    const std::function<std::unique_ptr<models::KgeModel>(Rng&)>& make_model,
    const kg::TripletSource& data, const DdpConfig& config,
    const RuntimeConfig& rc);

/// Analytic scaling estimate (Table 9 reproduction).
struct ScalingModel {
  double single_worker_epoch_s = 0.0;  // measured compute per epoch, 1 worker
  std::int64_t gradient_bytes = 0;     // size of the all-reduced gradient
  double bandwidth_gbps = 20.0;        // per-link all-reduce bandwidth
  double latency_us = 20.0;            // per-hop latency
  double parallel_efficiency = 0.92;   // per-doubling efficiency factor

  /// Predicted epoch count × per-epoch time for `p` workers.
  double predict_seconds(int p, int epochs) const;
};

}  // namespace sptx::distributed
