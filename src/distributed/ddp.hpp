// Data-parallel training (Appendix F substitute).
//
// The paper wraps SpTransE in PyTorch DDP and scales to 64 A100 GPUs
// (Table 9). This environment has no GPUs, so we build the DDP mechanics
// ourselves and measure/model the scaling:
//
//  * DdpTrainer — real multi-worker data parallelism over std::threads:
//    each worker computes gradients on its shard of the batch against a
//    replica, gradients are averaged (the all-reduce), and replicas step
//    in lockstep. Tests verify the invariant DDP relies on: the averaged
//    shard gradient equals the full-batch gradient.
//  * ScalingModel — an analytic DDP cost model,
//        T(p) = T_compute / (p · eff(p)) + epochs · T_allreduce(p),
//    with ring all-reduce time 2·(p−1)/p · bytes / bandwidth + latency
//    hops, calibrated from a measured single-worker epoch. This produces
//    the Table 9 series for p = 4 … 64 without 64 physical devices; the
//    shape (near-linear until communication shows) is what the paper
//    reports.
#pragma once

#include <vector>

#include "src/kg/triplet.hpp"
#include "src/models/model.hpp"
#include "src/train/trainer.hpp"

namespace sptx::distributed {

struct DdpConfig {
  int workers = 4;
  int epochs = 10;
  index_t batch_size = 4096;
  float lr = 0.0004f;
  std::uint64_t seed = 42;
};

struct DdpResult {
  double total_seconds = 0.0;
  std::vector<float> epoch_loss;
};

/// Thread-backed data-parallel training of a *sparse TransE* parameter set.
/// Model factory is invoked once per worker so each worker owns a replica;
/// replicas start from identical weights (same seed) and stay bit-identical
/// because every step applies the same averaged gradient.
DdpResult train_ddp(
    const std::function<std::unique_ptr<models::KgeModel>(Rng&)>& make_model,
    const TripletStore& data, const DdpConfig& config);

/// Analytic scaling estimate (Table 9 reproduction).
struct ScalingModel {
  double single_worker_epoch_s = 0.0;  // measured compute per epoch, 1 worker
  std::int64_t gradient_bytes = 0;     // size of the all-reduced gradient
  double bandwidth_gbps = 20.0;        // per-link all-reduce bandwidth
  double latency_us = 20.0;            // per-hop latency
  double parallel_efficiency = 0.92;   // per-doubling efficiency factor

  /// Predicted epoch count × per-epoch time for `p` workers.
  double predict_seconds(int p, int epochs) const;
};

}  // namespace sptx::distributed
