// Framed Unix-domain-socket transport for multi-process DDP
// (proc_ddp.hpp), with an optional shared-memory ring for large payloads.
//
// Wire format: every message is a fixed header {magic, type, flags,
// payload_len, crc32(payload)} followed by the payload bytes. The CRC makes
// a torn or corrupted frame a *typed* kTransportError instead of silently
// training on garbage gradients. When a frame's payload travels through the
// shm ring instead (flags & kShmPayload), the socket carries only a 12-byte
// {logical_offset, len} descriptor and the receiver copies the payload out
// of the mapping — the CRC still covers the real payload, so a racing or
// mis-offset ring read is caught exactly like a socket corruption.
//
// Robustness posture, used by both supervisor and worker:
//  * every read/write polls with a deadline first — no call can block
//    forever on a dead or wedged peer;
//  * all syscalls retry EINTR (the supervisor runs timers/reapers, workers
//    run a heartbeat thread — signals are normal here);
//  * sends use MSG_NOSIGNAL so a vanished peer surfaces as kTransportError,
//    never SIGPIPE;
//  * the `transport_drop` fault site simulates a dropped outgoing frame:
//    the send retries (counted in kDdpTransportRetries) up to a small
//    budget, then fails typed — deterministically replayable via
//    SPTX_FAULT_SPEC=transport_drop:eio@P.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/error.hpp"

namespace sptx::distributed {

/// Frame types of the supervisor/worker protocol (proc_ddp.cpp).
enum class FrameType : std::uint16_t {
  kHello = 1,      // worker → supervisor: rank + pid, first frame on connect
  kSetup,          // supervisor → worker: model spec, data path, train config
  kEpochBegin,     // supervisor → worker: epoch index + live rank list
  kShardGrad,      // worker → supervisor: one shard's harvested gradients
  kStep,           // supervisor → worker: reduced gradient for the batch
  kHeartbeat,      // worker → supervisor: liveness beacon
  kShutdown,       // supervisor → worker: training done, exit cleanly
  kWorkerError,    // worker → supervisor: fatal error message before exit
};

struct Frame {
  FrameType type = FrameType::kHeartbeat;
  std::string payload;
};

/// Single-producer/single-consumer byte arena in a memfd mapping, used to
/// move large gradient payloads without a socket copy. Offsets are logical
/// (monotonic); the producer pads to the buffer boundary when a payload
/// would wrap, and the consumer acknowledges by publishing the consumed
/// watermark — both cursors live in the mapping itself.
class ShmRing {
 public:
  ~ShmRing();

  /// Supervisor side: allocate a ring of `bytes` via memfd_create. Returns
  /// nullptr when the platform refuses (shm then gates off — sockets only).
  static std::unique_ptr<ShmRing> create(std::size_t bytes);
  /// Worker side: map the fd inherited across fork/exec.
  static std::unique_ptr<ShmRing> attach(int fd, std::size_t bytes);

  /// The fd a spawned worker inherits (no CLOEXEC).
  int fd() const { return fd_; }
  std::size_t capacity() const { return capacity_; }

  /// Producer: copy `len` bytes in; on success `logical_offset` identifies
  /// them for the consumer. False when the ring lacks space (the caller
  /// falls back to the socket inline path).
  bool produce(const void* data, std::size_t len,
               std::uint64_t& logical_offset);
  /// Consumer: pointer to the payload at `logical_offset`.
  const char* at(std::uint64_t logical_offset) const;
  /// Consumer: release everything up to and including
  /// [logical_offset, logical_offset + len).
  void consume(std::uint64_t logical_offset, std::size_t len);

 private:
  ShmRing() = default;
  int fd_ = -1;
  char* map_ = nullptr;
  std::size_t map_bytes_ = 0;
  std::size_t capacity_ = 0;
  bool owns_fd_ = true;
};

/// One connected, framed UDS endpoint. Not thread-safe per se: callers that
/// share a Conn across threads (the worker's heartbeat thread) serialize
/// sends themselves.
class Conn {
 public:
  explicit Conn(int fd) : fd_(fd) {}
  ~Conn();
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  int fd() const { return fd_; }
  void close();

  /// Route payloads at least `threshold` bytes through `ring` (producer
  /// side). The receiving end must attach the same ring via set_recv_ring.
  void set_send_ring(ShmRing* ring, std::size_t threshold = 4096);
  void set_recv_ring(ShmRing* ring);

  /// Send one frame. Throws Error{kTransportError} on a dead peer, a
  /// deadline miss, or an exhausted transport_drop retry budget.
  void send(FrameType type, std::string_view payload, int deadline_ms);

  /// Receive one frame. Returns false on deadline expiry with no frame
  /// started; throws Error{kTransportError} on EOF, corruption, or a
  /// deadline that expires mid-frame.
  bool recv(Frame& out, int deadline_ms);

 private:
  void write_all(const void* data, std::size_t len, int deadline_ms);
  void read_all(void* data, std::size_t len, int deadline_ms);
  /// Poll for readability; false on timeout.
  bool wait_readable(int deadline_ms);

  int fd_ = -1;
  ShmRing* send_ring_ = nullptr;
  ShmRing* recv_ring_ = nullptr;
  std::size_t shm_threshold_ = 4096;
};

/// Listening UDS endpoint; unlinks the socket path on destruction.
class Listener {
 public:
  explicit Listener(const std::string& path);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  const std::string& path() const { return path_; }
  /// The listening fd (the supervisor closes it in forked children).
  int fd() const { return fd_; }
  /// Accept one connection; nullptr on deadline expiry.
  std::unique_ptr<Conn> accept(int deadline_ms);

 private:
  int fd_ = -1;
  std::string path_;
};

/// Connect to a supervisor's listener (worker side), retrying briefly while
/// the socket appears (the supervisor binds before forking, so this is one
/// attempt in practice). Throws Error{kTransportError} on failure.
std::unique_ptr<Conn> connect_uds(const std::string& path, int deadline_ms);

// ---- little-endian POD/byte-buffer serialization helpers -----------------
// Same-machine transport, so native layout is the wire layout; these exist
// to make the framing code explicit about field order, not to byte-swap.

class WireWriter {
 public:
  std::string take() { return std::move(buf_); }
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { pod(v); }
  void u64(std::uint64_t v) { pod(v); }
  void i32(std::int32_t v) { pod(v); }
  void i64(std::int64_t v) { pod(v); }
  void f32(float v) { pod(v); }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
  }
  void bytes(const void* data, std::size_t len) {
    buf_.append(static_cast<const char*>(data), len);
  }

 private:
  template <class T>
  void pod(T v) {
    buf_.append(reinterpret_cast<const char*>(&v), sizeof(T));
  }
  std::string buf_;
};

class WireReader {
 public:
  explicit WireReader(std::string_view buf) : buf_(buf) {}
  std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)[0]); }
  std::uint32_t u32() { return pod<std::uint32_t>(); }
  std::uint64_t u64() { return pod<std::uint64_t>(); }
  std::int32_t i32() { return pod<std::int32_t>(); }
  std::int64_t i64() { return pod<std::int64_t>(); }
  float f32() { return pod<float>(); }
  std::string str() {
    const std::uint32_t n = u32();
    const std::string_view s = take(n);
    return std::string(s);
  }
  std::string_view raw(std::size_t len) { return take(len); }
  bool done() const { return pos_ == buf_.size(); }

 private:
  template <class T>
  T pod() {
    T v;
    const std::string_view s = take(sizeof(T));
    std::memcpy(&v, s.data(), sizeof(T));
    return v;
  }
  std::string_view take(std::size_t n) {
    SPTX_CHECK_CODE(pos_ + n <= buf_.size(), ErrorCode::kTransportError,
                    "truncated frame payload: need " << n << " bytes at "
                        << pos_ << " of " << buf_.size());
    const std::string_view s = buf_.substr(pos_, n);
    pos_ += n;
    return s;
  }
  std::string_view buf_;
  std::size_t pos_ = 0;
};

}  // namespace sptx::distributed
