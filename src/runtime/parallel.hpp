// parallel_for over the shared work-stealing TaskPool.
//
// Drop-in successor of the retired src/common/parallel.hpp: same signature,
// same exactly-once contract, same grain semantics (`grain` is both the
// serial cutoff and the chunk size). Two differences:
//
//  * Scheduling runs on runtime::TaskPool (one process-wide view of
//    parallelism; nested regions compose instead of oversubscribing) unless
//    SPTX_RUNTIME=legacy selects the historical OpenMP/serial path, which
//    is kept bit-identical as an escape hatch.
//  * Tiny trip counts are guaranteed inline: when n <= grain (or the pool
//    is one lane wide) the body runs on the caller with zero pool
//    round-trips — no task is submitted, no lock is taken, and the
//    kRuntimeInlineLoops counter records the shortcut so tests can assert
//    it stays that way.
#pragma once

#include <cstdint>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "src/profiling/counters.hpp"
#include "src/runtime/task_pool.hpp"

namespace sptx::runtime {

/// Parallel loop over [begin, end) with dynamic scheduling: `body(i)` runs
/// exactly once per index. Exceptions from any chunk propagate to the
/// caller after the region quiesces (first one wins). Safe to nest — an
/// inner parallel_for inside a pool task degrades toward serial instead of
/// deadlocking or spawning threads.
template <typename Body>
void parallel_for(std::int64_t begin, std::int64_t end, const Body& body,
                  std::int64_t grain = 64) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  if (!use_pool()) {
    // Legacy escape hatch: the exact pre-runtime implementation.
#ifdef _OPENMP
    if (n > grain && omp_get_max_threads() > 1 && !omp_in_parallel()) {
      const int chunk = static_cast<int>(grain > 1 << 20 ? 1 << 20 : grain);
#pragma omp parallel for schedule(dynamic, chunk)
      for (std::int64_t i = begin; i < end; ++i) body(i);
      return;
    }
#endif
    for (std::int64_t i = begin; i < end; ++i) body(i);
    return;
  }
  if (n <= grain || TaskPool::instance().threads() <= 1) {
    profiling::count_event(profiling::Counter::kRuntimeInlineLoops);
    for (std::int64_t i = begin; i < end; ++i) body(i);
    return;
  }
  TaskPool::instance().run_region(
      begin, end, grain,
      [](void* ctx, std::int64_t i0, std::int64_t i1) {
        const Body& b = *static_cast<const Body*>(ctx);
        for (std::int64_t i = i0; i < i1; ++i) b(i);
      },
      const_cast<void*>(static_cast<const void*>(&body)),
      TaskClass::kKernel);
}

}  // namespace sptx::runtime
