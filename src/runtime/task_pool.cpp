#include "src/runtime/task_pool.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "src/common/error.hpp"
#include "src/common/runtime_config.hpp"
#include "src/profiling/counters.hpp"

namespace sptx::runtime {
namespace {

constexpr int kNumClasses = static_cast<int>(TaskClass::kNumClasses);

/// Identity of the current thread inside the pool: worker index, or -1 for
/// external threads (the trainer's driving thread, serving clients).
thread_local int tls_worker_index = -1;

/// Partition hint installed by a runtime::Partition scope; -1 = no hint.
thread_local int tls_partition = -1;

/// NUMA-node count via sysfs; 1 when the topology is invisible (containers,
/// non-Linux). Partitioning is a scheduling hint, so a conservative answer
/// is always safe.
int detect_numa_nodes() {
  int nodes = 0;
  for (;; ++nodes) {
    const std::string path =
        "/sys/devices/system/node/node" + std::to_string(nodes);
    if (::access(path.c_str(), F_OK) != 0) break;
  }
  return nodes > 0 ? nodes : 1;
}

int hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

/// Shared state of one parallel region. Never freed — completed states
/// return to a freelist and are recycled (serial-stamped so a stale ticket
/// popped after recycling refuses to participate), which keeps steady-state
/// parallel_for allocation-free.
struct RegionState {
  // Hot claim path: lock-free chunk cursor + in-flight execution count.
  std::atomic<std::int64_t> next{0};
  std::int64_t end = 0;
  std::int64_t grain = 1;
  TaskPool::ChunkFn fn = nullptr;
  void* ctx = nullptr;
  TaskClass cls = TaskClass::kKernel;
  /// Claim attempts currently inside fn (or between cursor bump and
  /// retire). The region is complete when the cursor is exhausted AND this
  /// is zero — which also covers the poisoned (exception) case where
  /// unclaimed chunks never run.
  std::atomic<std::int64_t> in_flight{0};

  // Cold completion/recycling path.
  Mutex mu;
  CondVar cv;
  std::uint64_t serial SPTX_GUARDED_BY(mu) = 0;
  bool done SPTX_GUARDED_BY(mu) = false;
  int active_helpers SPTX_GUARDED_BY(mu) = 0;
  std::exception_ptr error SPTX_GUARDED_BY(mu);

  /// Ticket entry: join the region iff it is still the same incarnation
  /// and not yet complete. A successful enter pins the state against
  /// recycling until exit_helper().
  bool try_enter(std::uint64_t ticket_serial) SPTX_EXCLUDES(mu) {
    MutexLock lock(mu);
    if (serial != ticket_serial || done) return false;
    ++active_helpers;
    return true;
  }

  void exit_helper() SPTX_EXCLUDES(mu) {
    MutexLock lock(mu);
    if (--active_helpers == 0 && done) cv.notify_all();
  }

  void record_error(std::exception_ptr e) SPTX_EXCLUDES(mu) {
    {
      MutexLock lock(mu);
      if (!error) error = std::move(e);
    }
    // Poison the cursor: remaining chunks are abandoned, claimants drain.
    next.store(end, std::memory_order_release);
  }

  void mark_done() SPTX_EXCLUDES(mu) {
    MutexLock lock(mu);
    done = true;
    cv.notify_all();
  }
};

/// One queued unit of work. Closures (submit) carry an owning std::function
/// and their TaskGroup; region tickets carry a pointer into the region
/// freelist plus the serial that guards against executing a recycled slot.
struct Task {
  enum class Kind : std::uint8_t { kClosure, kTicket };
  Kind kind = Kind::kClosure;
  TaskClass cls = TaskClass::kGeneral;
  int partition = -1;   // hint from the submitting scope (routes push())
  bool migrated = false;  // left the deque it was queued on (steal_from)
  std::function<void()> fn;          // kClosure
  TaskGroup* group = nullptr;        // kClosure
  RegionState* region = nullptr;     // kTicket
  std::uint64_t serial = 0;          // kTicket: RegionState recycle guard
};

/// Growable ring buffer of Tasks. Capacity persists across the pool's
/// steady state, so per-epoch kernel tickets allocate nothing once warm —
/// the zero-allocation property test_workspace asserts for training must
/// survive the runtime migration. Not thread-safe; every instance is
/// guarded by its owner's mutex.
class TaskRing {
 public:
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push_back(Task t) {
    reserve_for_one();
    slots_[(head_ + size_) & mask_] = std::move(t);
    ++size_;
  }

  /// Owner side: newest task (LIFO — the Chase-Lev bottom).
  Task pop_back() {
    Task t = std::move(slots_[(head_ + size_ - 1) & mask_]);
    --size_;
    return t;
  }

  /// Thief side: oldest task (FIFO — the Chase-Lev top).
  Task pop_front() {
    Task t = std::move(slots_[head_]);
    head_ = (head_ + 1) & mask_;
    --size_;
    return t;
  }

 private:
  void reserve_for_one() {
    if (size_ < slots_.size()) return;
    const std::size_t cap = slots_.empty() ? 16 : slots_.size() * 2;
    std::vector<Task> grown(cap);
    for (std::size_t i = 0; i < size_; ++i)
      grown[i] = std::move(slots_[(head_ + i) & mask_]);
    slots_ = std::move(grown);
    head_ = 0;
    mask_ = cap - 1;
  }

  std::vector<Task> slots_;  // capacity always a power of two
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace

struct TaskPool::Impl {
  explicit Impl(int width)
      : configured_threads(std::max(1, width)),
        partitions(detect_numa_nodes()) {}

  const int configured_threads;  // pool width incl. the calling lane
  const int partitions;
  const ::pid_t pid = ::getpid();

  struct WorkerQueue {
    Mutex mu;
    TaskRing ring SPTX_GUARDED_BY(mu);
  };

  // One deque per background worker (workers_.size() == threads - 1).
  std::vector<std::unique_ptr<WorkerQueue>> deques;
  std::vector<std::thread> workers;
  std::atomic<bool> workers_spawned{false};
  Mutex spawn_mu;  // serializes lazy spawn / resize / shutdown

  // Global injection queue for external submitters.
  WorkerQueue global;

  // Parking lot. total_queued is the queue-depth gauge AND the wakeup
  // predicate: producers bump it before notifying, parkers re-check it
  // under park_mu before sleeping, so a wakeup can never be missed (and a
  // timed backoff backstops even a reasoning error here).
  std::atomic<std::int64_t> total_queued{0};
  Mutex park_mu;
  CondVar park_cv;
  bool stopping SPTX_GUARDED_BY(park_mu) = false;

  // Region freelist (see RegionState).
  Mutex regions_mu;
  std::vector<RegionState*> free_regions SPTX_GUARDED_BY(regions_mu);

  // Per-class counters (relaxed; read by stats()).
  std::atomic<std::int64_t> submitted[kNumClasses] = {};
  std::atomic<std::int64_t> executed[kNumClasses] = {};
  std::atomic<std::int64_t> stolen[kNumClasses] = {};
  std::atomic<int> parked{0};

  // Round-robin cursor spreading partition-hinted pushes across the hinted
  // partition's workers.
  std::atomic<std::uint32_t> hint_cursor{0};

  // ---- queue plumbing ------------------------------------------------------

  void count_submit(TaskClass cls, std::int64_t n = 1) {
    submitted[static_cast<int>(cls)].fetch_add(n, std::memory_order_relaxed);
    profiling::count_event(profiling::Counter::kRuntimeTasksSubmitted, n);
  }

  /// Deque owned by a worker serving partition `part` (workers map to
  /// partitions round-robin: worker w serves partition w % partitions),
  /// rotating among that partition's workers. nullptr when no spawned
  /// worker serves it (zero-worker pool, or width < partition count).
  WorkerQueue* partition_queue(int part) {
    const int n = static_cast<int>(deques.size());
    if (n == 0) return nullptr;
    const int residue = part % partitions;
    const int offset = static_cast<int>(
        hint_cursor.fetch_add(1, std::memory_order_relaxed) %
        static_cast<std::uint32_t>(n));
    for (int i = 0; i < n; ++i) {
      const int cand = (offset + i) % n;
      if (cand % partitions == residue) return deques[cand].get();
    }
    return nullptr;
  }

  void push(Task t) {
    const int w = tls_worker_index;
    WorkerQueue* q = nullptr;
    // A Partition hint targeting a different partition than the submitting
    // lane routes the task onto one of that partition's deques, where
    // pass 0 of try_steal keeps it among same-partition workers. Without a
    // hint (or when the hint names the submitter's own partition) the
    // owner's deque / global injection queue preserves LIFO locality.
    if (t.partition >= 0 &&
        (w < 0 || w % partitions != t.partition % partitions))
      q = partition_queue(t.partition);
    if (q == nullptr)
      q = (w >= 0 && w < static_cast<int>(deques.size()))
              ? deques[static_cast<std::size_t>(w)].get()
              : &global;
    {
      MutexLock lock(q->mu);
      q->ring.push_back(std::move(t));
    }
    total_queued.fetch_add(1, std::memory_order_release);
    wake_one();
  }

  void wake_one() {
    if (parked.load(std::memory_order_acquire) == 0) return;
    MutexLock lock(park_mu);
    park_cv.notify_one();
  }

  void wake_all() {
    MutexLock lock(park_mu);
    park_cv.notify_all();
  }

  bool pop_own(int w, Task& out) {
    WorkerQueue& q = *deques[static_cast<std::size_t>(w)];
    MutexLock lock(q.mu);
    if (q.ring.empty()) return false;
    out = q.ring.pop_back();
    total_queued.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  bool pop_global(Task& out) {
    MutexLock lock(global.mu);
    if (global.ring.empty()) return false;
    out = global.ring.pop_front();
    total_queued.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  /// Steal-half from `victim` into `thief`'s deque; the first stolen task
  /// is returned for immediate execution. Returns false when the victim
  /// was empty.
  bool steal_from(int victim, int thief, Task& out) {
    std::vector<Task> haul;
    {
      WorkerQueue& q = *deques[static_cast<std::size_t>(victim)];
      MutexLock lock(q.mu);
      const std::size_t n = q.ring.size();
      if (n == 0) return false;
      const std::size_t take = (n + 1) / 2;  // steal half, at least one
      haul.reserve(take);
      for (std::size_t i = 0; i < take; ++i)
        haul.push_back(q.ring.pop_front());
    }
    // Mark (don't count) the haul: the take-1 tasks re-queued below can be
    // stolen again, so counting here would double-count them. execute()
    // bumps the stolen counters exactly once per migrated task.
    for (Task& t : haul) t.migrated = true;
    out = std::move(haul.front());
    total_queued.fetch_sub(1, std::memory_order_relaxed);
    if (haul.size() > 1) {
      WorkerQueue& mine = *deques[static_cast<std::size_t>(thief)];
      MutexLock lock(mine.mu);
      for (std::size_t i = 1; i < haul.size(); ++i)
        mine.ring.push_back(std::move(haul[i]));
    }
    return true;
  }

  /// Victim scan order for `thief`: same-partition workers first (the
  /// Partition locality hint), then the rest, round-robin from the thief.
  bool try_steal(int thief, Task& out) {
    const int n = static_cast<int>(deques.size());
    const int my_part = thief % partitions;
    for (int pass = 0; pass < 2; ++pass) {
      for (int i = 1; i <= n; ++i) {
        const int victim = (thief + i) % n;
        if (victim == thief) continue;
        const bool same_part = victim % partitions == my_part;
        if ((pass == 0) != same_part) continue;
        if (steal_from(victim, thief, out)) return true;
      }
    }
    return false;
  }

  // ---- execution -----------------------------------------------------------

  void drive_region(RegionState* r) {
    for (;;) {
      r->in_flight.fetch_add(1, std::memory_order_acq_rel);
      const std::int64_t i0 = r->next.fetch_add(r->grain,
                                                std::memory_order_acq_rel);
      if (i0 >= r->end) {
        retire_claim(r);
        return;
      }
      const std::int64_t i1 = std::min(i0 + r->grain, r->end);
      try {
        r->fn(r->ctx, i0, i1);
      } catch (...) {
        r->record_error(std::current_exception());
      }
      profiling::count_event(profiling::Counter::kRuntimeChunksExecuted);
      retire_claim(r);
    }
  }

  void retire_claim(RegionState* r) {
    if (r->in_flight.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
        r->next.load(std::memory_order_acquire) >= r->end) {
      r->mark_done();
    }
  }

  void execute(Task t) {
    executed[static_cast<int>(t.cls)].fetch_add(1, std::memory_order_relaxed);
    profiling::count_event(profiling::Counter::kRuntimeTasksExecuted);
    if (t.migrated) {
      // Counted at execution, once per task: a task that migrated off the
      // deque it was queued on (however many hops it took) is one steal,
      // so stolen <= executed and steal_ratio stays a true fraction.
      stolen[static_cast<int>(t.cls)].fetch_add(1, std::memory_order_relaxed);
      profiling::count_event(profiling::Counter::kRuntimeTasksStolen);
    }
    if (t.kind == Task::Kind::kTicket) {
      // A ticket for an already-finished (recycled) region is a no-op: the
      // serial check refuses entry and the ticket is simply consumed.
      if (t.region->try_enter(t.serial)) {
        drive_region(t.region);
        t.region->exit_helper();
      }
      return;
    }
    TaskGroup* group = t.group;
    std::exception_ptr err;
    try {
      t.fn();
    } catch (...) {
      err = std::current_exception();
    }
    // Destroy the closure before signaling completion: once pending_ hits 0
    // the submitter may tear down state the closure's captures reference.
    t.fn = nullptr;
    // Decrement and notify inside one critical section on the group lock.
    // This is the lifetime handshake with help_group(): a waiter only
    // returns after taking mu_ and thus after this lane has released it,
    // so a stack TaskGroup (ddp's tg, the trainer's prefetch group) can be
    // destroyed the moment wait() returns without racing this notify.
    MutexLock lock(group->mu_);
    if (err && !group->error_) group->error_ = std::move(err);
    if (group->pending_.fetch_sub(1, std::memory_order_acq_rel) == 1)
      group->cv_.notify_all();
  }

  /// One dequeue attempt from the perspective of thread `w` (-1 = external:
  /// global queue only — an external helper must not drain worker deques
  /// out from under the owner's LIFO).
  bool next_task(int w, Task& out) {
    if (w >= 0 && pop_own(w, out)) return true;
    if (pop_global(out)) return true;
    if (w >= 0 && try_steal(w, out)) return true;
    return false;
  }

  void worker_main(int w) {
    tls_worker_index = w;
    auto backoff = std::chrono::microseconds(50);
    // Cap at 2ms: an idle worker costs ~500 empty scans/s (noise), and any
    // lost-notify race (see below) delays a task by at most one backoff —
    // which must stay well under serving-deadline magnitudes.
    constexpr auto kMaxBackoff = std::chrono::microseconds(2000);
    for (;;) {
      Task t;
      if (next_task(w, t)) {
        execute(std::move(t));
        backoff = std::chrono::microseconds(50);
        continue;
      }
      // Exponential-backoff parking: brief spin (other lanes may be about
      // to publish tickets), then a timed wait that doubles from 50us up
      // to the 2ms kMaxBackoff cap. total_queued is re-checked under
      // park_mu, so a push+notify cannot slip between our last scan and
      // the wait.
      bool stop = false;
      {
        MutexLock lock(park_mu);
        if (stopping) return;
        if (total_queued.load(std::memory_order_acquire) == 0) {
          parked.fetch_add(1, std::memory_order_release);
          park_cv.wait_until(park_mu,
                             std::chrono::steady_clock::now() + backoff);
          parked.fetch_sub(1, std::memory_order_release);
          stop = stopping;
          backoff = std::min(backoff * 2, kMaxBackoff);
        }
      }
      if (stop) return;
    }
  }

  void ensure_spawned() {
    if (workers_spawned.load(std::memory_order_acquire)) return;
    MutexLock lock(spawn_mu);
    if (workers_spawned.load(std::memory_order_relaxed)) return;
    const int n = configured_threads - 1;
    deques.reserve(static_cast<std::size_t>(n));
    workers.reserve(static_cast<std::size_t>(n));
    for (int w = 0; w < n; ++w)
      deques.push_back(std::make_unique<WorkerQueue>());
    for (int w = 0; w < n; ++w)
      workers.emplace_back([this, w] { worker_main(w); });
    workers_spawned.store(true, std::memory_order_release);
  }

  void shutdown() {
    {
      MutexLock lock(park_mu);
      stopping = true;
      park_cv.notify_all();
    }
    for (auto& t : workers) t.join();
    workers.clear();
  }

  // ---- regions -------------------------------------------------------------

  RegionState* acquire_region() {
    {
      MutexLock lock(regions_mu);
      if (!free_regions.empty()) {
        RegionState* r = free_regions.back();
        free_regions.pop_back();
        return r;
      }
    }
    return new RegionState();  // retained forever via the freelist
  }

  void release_region(RegionState* r) {
    MutexLock lock(regions_mu);
    free_regions.push_back(r);
  }
};

// ---- TaskPool --------------------------------------------------------------

TaskPool& TaskPool::instance() {
  static TaskPool pool;
  return pool;
}

TaskPool::TaskPool() = default;

TaskPool::~TaskPool() {
  Impl* impl = impl_.load(std::memory_order_acquire);
  if (impl != nullptr && impl->pid == ::getpid()) impl->shutdown();
}

TaskPool::Impl& TaskPool::impl() const {
  Impl* impl = impl_.load(std::memory_order_acquire);
  if (impl != nullptr && impl->pid == ::getpid()) return *impl;
  // First use, or first use after fork() (the crash-drill tests fork and
  // keep training in the child; the parent's workers don't exist there, so
  // the child gets fresh state — the old Impl is intentionally retained:
  // its mutexes may be unusable post-fork and freeing it could touch them).
  const int width = static_cast<int>(
      config::current()->int_or("SPTX_RUNTIME_THREADS", hardware_threads()));
  Impl* fresh = new Impl(width);
  Impl* expected = impl;
  if (!impl_.compare_exchange_strong(expected, fresh,
                                     std::memory_order_acq_rel)) {
    delete fresh;  // lost the race; winner's state is current (same pid)
    return *expected;
  }
  return *fresh;
}

int TaskPool::threads() const { return impl().configured_threads; }

int TaskPool::num_partitions() const { return impl().partitions; }

void TaskPool::resize(int threads) {
  Impl& old = impl();
  SPTX_CHECK(threads >= 1, "TaskPool::resize needs threads >= 1");
  if (threads == old.configured_threads &&
      !old.workers_spawned.load(std::memory_order_acquire))
    return;
  old.shutdown();
  Impl* fresh = new Impl(threads);
  // Counters carry over so stats()/bench windows survive a resize.
  for (int c = 0; c < kNumClasses; ++c) {
    fresh->submitted[c] = old.submitted[c].load(std::memory_order_relaxed);
    fresh->executed[c] = old.executed[c].load(std::memory_order_relaxed);
    fresh->stolen[c] = old.stolen[c].load(std::memory_order_relaxed);
  }
  impl_.store(fresh, std::memory_order_release);
  // The old Impl is retained (its queues must be idle per the contract);
  // freeing it would race readers that grabbed the pointer pre-swap.
}

void TaskPool::submit(TaskGroup& group, std::function<void()> fn,
                      TaskClass cls) {
  Impl& s = impl();
  s.ensure_spawned();
  group.pending_.fetch_add(1, std::memory_order_acq_rel);
  Task t;
  t.kind = Task::Kind::kClosure;
  t.cls = cls;
  t.partition = tls_partition;
  t.fn = std::move(fn);
  t.group = &group;
  s.count_submit(cls);
  s.push(std::move(t));
}

void TaskPool::run_region(std::int64_t begin, std::int64_t end,
                          std::int64_t grain, ChunkFn fn, void* ctx,
                          TaskClass cls) {
  Impl& s = impl();
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  profiling::count_event(profiling::Counter::kRuntimeParallelRegions);
  RegionState* r = s.acquire_region();
  std::uint64_t serial;
  {
    MutexLock lock(r->mu);
    r->done = false;
    r->error = nullptr;
    serial = r->serial;
  }
  r->next.store(begin, std::memory_order_relaxed);
  r->end = end;
  r->grain = grain;
  r->fn = fn;
  r->ctx = ctx;
  r->cls = cls;
  r->in_flight.store(0, std::memory_order_release);

  // Invite at most one idle lane per remaining chunk beyond our own.
  const std::int64_t chunks = (n + grain - 1) / grain;
  const int tickets = static_cast<int>(
      std::min<std::int64_t>(s.configured_threads - 1, chunks - 1));
  if (tickets > 0) {
    s.ensure_spawned();
    s.count_submit(cls, tickets);
    for (int i = 0; i < tickets; ++i) {
      Task t;
      t.kind = Task::Kind::kTicket;
      t.cls = cls;
      t.partition = tls_partition;
      t.region = r;
      t.serial = serial;
      s.push(std::move(t));
    }
  }

  s.drive_region(r);

  std::exception_ptr err;
  {
    MutexLock lock(r->mu);
    while (!r->done) r->cv.wait(r->mu);
    while (r->active_helpers > 0) r->cv.wait(r->mu);
    err = r->error;
    r->error = nullptr;
    ++r->serial;  // any ticket still queued is now provably stale
  }
  s.release_region(r);
  if (err) std::rethrow_exception(err);
}

void TaskPool::record_external(TaskClass cls) {
  Impl& s = impl();
  s.count_submit(cls);
  s.executed[static_cast<int>(cls)].fetch_add(1, std::memory_order_relaxed);
  profiling::count_event(profiling::Counter::kRuntimeTasksExecuted);
}

void TaskPool::help_group(TaskGroup& group) {
  Impl& s = instance().impl();
  while (group.pending_.load(std::memory_order_acquire) > 0) {
    Task t;
    if (s.next_task(tls_worker_index, t)) {
      s.execute(std::move(t));
      continue;
    }
    // Nothing runnable anywhere: the group's tasks are executing on other
    // lanes. Block until the count drains (timed, as a lost-wakeup
    // backstop — correctness never depends on the notify arriving).
    MutexLock lock(group.mu_);
    // Safe exit: pending_ only reaches 0 inside mu_ (see execute()), so
    // observing 0 while holding the lock proves the last notifier has
    // already released the group.
    if (group.pending_.load(std::memory_order_acquire) == 0) return;
    group.cv_.wait_until(
        group.mu_,
        std::chrono::steady_clock::now() + std::chrono::milliseconds(2));
  }
  // The loop condition observed pending_ == 0 *without* the lock — the
  // final notifier may still be inside its decrement-and-notify critical
  // section. Take mu_ once so its release happens-before we return and the
  // caller is free to destroy the group.
  MutexLock lock(group.mu_);
}

TaskPool::Stats TaskPool::stats() const {
  Impl& s = impl();
  Stats out;
  out.threads = s.configured_threads;
  out.partitions = s.partitions;
  out.queue_depth = s.total_queued.load(std::memory_order_acquire);
  out.parked_workers = s.parked.load(std::memory_order_acquire);
  for (int c = 0; c < kNumClasses; ++c) {
    out.per_class[c].submitted = s.submitted[c].load(std::memory_order_relaxed);
    out.per_class[c].executed = s.executed[c].load(std::memory_order_relaxed);
    out.per_class[c].stolen = s.stolen[c].load(std::memory_order_relaxed);
    out.submitted += out.per_class[c].submitted;
    out.executed += out.per_class[c].executed;
    out.stolen += out.per_class[c].stolen;
  }
  out.steal_ratio =
      out.executed > 0
          ? static_cast<double>(out.stolen) / static_cast<double>(out.executed)
          : 0.0;
  return out;
}

std::string TaskPool::stats_json() const {
  const Stats s = stats();
  std::string out = "{\"mode\": \"";
  out += use_pool() ? "pool" : "legacy";
  out += "\", \"threads\": " + std::to_string(s.threads);
  out += ", \"partitions\": " + std::to_string(s.partitions);
  out += ", \"queue_depth\": " + std::to_string(s.queue_depth);
  out += ", \"parked_workers\": " + std::to_string(s.parked_workers);
  out += ", \"tasks_submitted\": " + std::to_string(s.submitted);
  out += ", \"tasks_executed\": " + std::to_string(s.executed);
  out += ", \"tasks_stolen\": " + std::to_string(s.stolen);
  char ratio[32];
  std::snprintf(ratio, sizeof(ratio), "%.4f", s.steal_ratio);
  out += ", \"steal_ratio\": ";
  out += ratio;
  out += ", \"classes\": {";
  for (int c = 0; c < kNumClasses; ++c) {
    if (c > 0) out += ", ";
    out += '"';
    out += task_class_name(static_cast<TaskClass>(c));
    out += "\": {\"submitted\": " + std::to_string(s.per_class[c].submitted);
    out += ", \"executed\": " + std::to_string(s.per_class[c].executed);
    out += ", \"stolen\": " + std::to_string(s.per_class[c].stolen) + "}";
  }
  out += "}}";
  return out;
}

// ---- TaskGroup -------------------------------------------------------------

TaskGroup::~TaskGroup() {
  if (pending_.load(std::memory_order_acquire) != 0) {
    // Unwind safety: drain without throwing (mirrors the joining-thread
    // destructor the prefetch path used to rely on).
    try {
      TaskPool::help_group(*this);
    } catch (...) {
    }
  }
  // A group that drained an instant ago may still have its last notifier
  // inside the decrement-and-notify critical section (execute()); taking
  // mu_ once orders that release before the members are destroyed.
  MutexLock lock(mu_);
}

void TaskGroup::wait() {
  TaskPool::help_group(*this);
  std::exception_ptr err;
  {
    MutexLock lock(mu_);
    err = error_;
    error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

// ---- Partition -------------------------------------------------------------

Partition::Partition(int partition) : previous_(tls_partition) {
  tls_partition = partition;
}

Partition::~Partition() { tls_partition = previous_; }

// ---- free functions --------------------------------------------------------

const char* task_class_name(TaskClass c) {
  switch (c) {
    case TaskClass::kKernel: return "kernel";
    case TaskClass::kPrefetch: return "prefetch";
    case TaskClass::kDdp: return "ddp";
    case TaskClass::kServe: return "serve";
    case TaskClass::kAnnBuild: return "ann_build";
    case TaskClass::kGeneral: return "general";
    case TaskClass::kNumClasses: break;
  }
  return "unknown";
}

bool use_pool() { return config::current()->hot().runtime_pool; }

int num_threads() {
  if (use_pool()) return TaskPool::instance().threads();
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return hardware_threads();
#endif
}

}  // namespace sptx::runtime
