// Process-wide work-stealing task runtime — the one view of parallelism.
//
// Before this subsystem, three ad-hoc threading schemes coexisted (the
// OpenMP parallel_for under the SpMM kernels, the trainer's epoch-prefetch
// thread, the DDP fork/join workers, the MicroBatcher's execution slots)
// and each assumed it owned the machine, so composing them — training while
// serving, DDP shards running fused kernels — oversubscribed cores. The
// TaskPool replaces all of them: a singleton pool of `threads() - 1` worker
// threads (the calling thread is the remaining lane) with Chase-Lev-style
// per-worker deques — the owner pushes and pops at the bottom (LIFO), thieves
// take half the queue from the top (FIFO) — plus a global injection queue for
// tasks submitted from threads outside the pool, and exponential-backoff
// parking for idle workers.
//
// The deques are mutex-guarded rather than lock-free: every task is at least
// a grain of real work, so the per-task lock is uncontended noise, and in
// exchange every lock in this file carries the PR 8 thread-safety
// annotations — the clang TSA build proves the locking discipline instead of
// hoping TSan's schedules hit the races.
//
// Deadlock freedom by construction: a parallel region is driven by its
// caller. `run_region` claims grain-sized chunks from an atomic cursor on
// the calling thread and only posts "ticket" tasks that let idle workers
// join in; if every worker is busy (or the pool has zero workers, or the
// process just fork()ed and the workers died with the parent), the caller
// simply executes every chunk itself. Nested parallel_for inside a task
// therefore composes — worst case it degrades to serial, it can never wait
// on a thread that is waiting on it. TaskGroup::wait() similarly helps
// drain queued tasks instead of blocking, so submit()+wait() works on a
// zero-worker pool.
//
// Knobs (runtime-config registry): SPTX_RUNTIME=pool|legacy selects this
// pool or the historical per-site threading (bit-identical escape hatch);
// SPTX_RUNTIME_THREADS caps the pool width (default: hardware concurrency).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>

#include "src/common/thread_annotations.hpp"

namespace sptx::runtime {

/// Task provenance for the per-class profiling counters: every submitted
/// task and parallel region is tagged, so the health surface can show who
/// is using the pool (kernels vs prefetch vs DDP vs serving).
enum class TaskClass : int {
  kKernel = 0,  // parallel_for chunk work: SpMM, row normalize, k-means
  kPrefetch,    // trainer epoch-prefetch plan compilation
  kDdp,         // DDP worker shard loops
  kServe,       // micro-batcher batch executions
  kAnnBuild,    // serving-snapshot / ANN index construction
  kGeneral,     // untagged submissions
  kNumClasses,
};

const char* task_class_name(TaskClass c);

/// Per-class counters, surfaced through TaskPool::stats / stats_json and
/// Engine::health_json. `stolen` counts executed tasks that migrated off
/// the deque they were queued on (the work-stealing did something) — each
/// task at most once, however many steal hops it took, so stolen <=
/// executed; queue depth and steal ratio live on TaskPool::Stats.
struct ClassStats {
  std::int64_t submitted = 0;
  std::int64_t executed = 0;
  std::int64_t stolen = 0;
};

class TaskPool;

/// Completion handle for submit(): a counter of pending tasks plus the
/// first exception any of them threw. wait() rethrows that exception after
/// every task retired — same surface a joined thread gives the caller.
///
/// The intended protocol is single-owner: one thread submits, the same
/// thread waits. Racing submit() against wait() from different threads is
/// not supported (wait() may return while the racing submit's task runs).
class TaskGroup {
 public:
  TaskGroup() = default;
  ~TaskGroup();  // drains pending tasks, swallowing errors (unwind safety)
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Block until every submitted task has retired, helping execute queued
  /// pool tasks while waiting (deadlock-free on a zero-worker pool: the
  /// waiter runs the tasks itself). Rethrows the first captured exception.
  void wait();

  /// Tasks submitted and not yet retired.
  std::int64_t pending() const {
    return pending_.load(std::memory_order_acquire);
  }

 private:
  friend class TaskPool;
  std::atomic<std::int64_t> pending_{0};
  Mutex mu_;
  CondVar cv_;                                // signaled when pending_ -> 0
  std::exception_ptr error_ SPTX_GUARDED_BY(mu_);
};

/// Scoped partition hint for NUMA/core-affinity. Workers are assigned to
/// partitions round-robin over the machine's NUMA nodes (1 partition on
/// UMA boxes); tasks submitted inside a Partition scope from outside that
/// partition are pushed onto deques owned by its workers, and thieves
/// prefer victims in their own partition, keeping a partition's task graph
/// on its own cores when the pool is busy. It is a *hint*: any idle worker
/// may still steal any task — throughput beats placement.
class Partition {
 public:
  explicit Partition(int partition);
  ~Partition();
  Partition(const Partition&) = delete;
  Partition& operator=(const Partition&) = delete;

 private:
  int previous_;
};

class TaskPool {
 public:
  /// The process-wide pool. Construction latches SPTX_RUNTIME_THREADS from
  /// the runtime-config snapshot; worker threads spawn lazily on first use
  /// (so merely reading stats/threads never starts threads — and a process
  /// that stays below the parallel thresholds never pays for the pool).
  static TaskPool& instance();

  /// Pool width including the calling lane: N means N-1 background workers
  /// plus the thread driving a region. Always >= 1.
  int threads() const;

  /// Number of partition domains (NUMA nodes detected at init, min 1).
  int num_partitions() const;

  /// Re-shape the pool (tests, thread-scaling benches). Joins the current
  /// workers and starts over at the new width. The pool must be quiescent:
  /// no active regions, no unwaited groups, no concurrent submitters —
  /// tasks still queued at resize time are dropped with the old state.
  void resize(int threads);

  /// Enqueue `fn` for asynchronous execution; `group.wait()` joins it.
  /// With zero workers the task runs inside wait() — submit never blocks.
  void submit(TaskGroup& group, std::function<void()> fn,
              TaskClass cls = TaskClass::kGeneral);

  /// Type-erased chunk body: invoked as fn(ctx, i0, i1) for disjoint
  /// [i0, i1) slices covering [begin, end) exactly once.
  using ChunkFn = void (*)(void* ctx, std::int64_t begin, std::int64_t end);

  /// Execute a parallel region over [begin, end) in grain-sized chunks.
  /// The caller drives the region to completion (see file comment); idle
  /// workers join via tickets. Rethrows the first chunk exception after
  /// the region quiesces. Prefer runtime::parallel_for (parallel.hpp).
  void run_region(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  ChunkFn fn, void* ctx, TaskClass cls = TaskClass::kKernel);

  /// Account an execution that ran on the caller's thread under the pool's
  /// admission control (the micro-batcher's execution slots): shows up as
  /// submitted+executed for `cls` without a queue round-trip.
  void record_external(TaskClass cls);

  /// Point-in-time counters for health/benches. queue_depth is the number
  /// of tasks currently enqueued (global + all deques, including stale
  /// region tickets not yet dropped); steal_ratio = stolen / executed.
  struct Stats {
    ClassStats per_class[static_cast<int>(TaskClass::kNumClasses)];
    std::int64_t submitted = 0;  // sums of per_class
    std::int64_t executed = 0;
    std::int64_t stolen = 0;
    std::int64_t queue_depth = 0;
    int parked_workers = 0;
    int threads = 1;
    int partitions = 1;
    double steal_ratio = 0.0;
  };
  Stats stats() const;

  /// The stats as a JSON object (Engine::health_json embeds it verbatim):
  /// {"mode": ..., "threads": ..., "queue_depth": ..., "steal_ratio": ...,
  ///  "classes": {"kernel": {...}, ...}}.
  std::string stats_json() const;

 private:
  TaskPool();
  ~TaskPool();
  struct Impl;
  /// The live implementation — revalidated against getpid() so a fork()ed
  /// child (crash-drill tests) gets fresh state instead of waiting on
  /// worker threads that only exist in the parent.
  Impl& impl() const;
  mutable std::atomic<Impl*> impl_{nullptr};

  friend class TaskGroup;
  static void help_group(TaskGroup& group);
};

/// True when SPTX_RUNTIME resolves to the shared pool (the default);
/// false selects the legacy per-site threading, bit-identical to the
/// pre-runtime code paths.
bool use_pool();

/// Worker-thread budget the parallel code sizes itself against: the pool
/// width under SPTX_RUNTIME=pool, the historical OpenMP/hardware count
/// under legacy. (The SpMM auto-kernel heuristics consult this.)
int num_threads();

/// RAII join-on-destruction thread for the legacy escape-hatch code paths
/// (SPTX_RUNTIME=legacy keeps the trainer's dedicated prefetch thread).
/// Raw std::thread construction is lint-banned outside src/runtime/ — the
/// legacy sites spawn through this wrapper so the ban stays meaningful.
class Thread {
 public:
  Thread() = default;
  template <typename Fn>
  explicit Thread(Fn&& fn) : t_(std::forward<Fn>(fn)) {}
  Thread(Thread&&) = default;
  Thread& operator=(Thread&& other) {
    if (t_.joinable()) t_.join();
    t_ = std::move(other.t_);
    return *this;
  }
  ~Thread() {
    if (t_.joinable()) t_.join();
  }

  bool joinable() const { return t_.joinable(); }
  void join() { t_.join(); }

 private:
  std::thread t_;
};

}  // namespace sptx::runtime
