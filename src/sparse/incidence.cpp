#include "src/sparse/incidence.hpp"

#include <algorithm>

#include "src/profiling/counters.hpp"

namespace sptx {

Coo build_ht_incidence(std::span<const Triplet> batch, index_t num_entities) {
  profiling::count_event(profiling::Counter::kIncidenceBuilds);
  Coo a;
  a.rows = static_cast<index_t>(batch.size());
  a.cols = num_entities;
  a.reserve(batch.size() * 2);
  for (index_t m = 0; m < a.rows; ++m) {
    const Triplet& t = batch[static_cast<std::size_t>(m)];
    SPTX_CHECK(t.head < num_entities && t.tail < num_entities,
               "triplet entity out of range: h=" << t.head << " t=" << t.tail
                                                 << " N=" << num_entities);
    a.push(m, t.head, +1.0f);
    a.push(m, t.tail, -1.0f);
  }
  return a;
}

Coo build_hrt_incidence(std::span<const Triplet> batch, index_t num_entities,
                        index_t num_relations) {
  profiling::count_event(profiling::Counter::kIncidenceBuilds);
  Coo a;
  a.rows = static_cast<index_t>(batch.size());
  a.cols = num_entities + num_relations;
  a.reserve(batch.size() * 3);
  for (index_t m = 0; m < a.rows; ++m) {
    const Triplet& t = batch[static_cast<std::size_t>(m)];
    SPTX_CHECK(t.head < num_entities && t.tail < num_entities &&
                   t.relation < num_relations,
               "triplet out of range: h=" << t.head << " r=" << t.relation
                                          << " t=" << t.tail);
    a.push(m, t.head, +1.0f);
    a.push(m, t.tail, -1.0f);
    a.push(m, num_entities + t.relation, +1.0f);
  }
  return a;
}

Csr build_ht_incidence_csr(std::span<const Triplet> batch,
                           index_t num_entities) {
  profiling::count_event(profiling::Counter::kIncidenceBuilds);
  // Direct CSR construction: every row has exactly 2 entries, so row_ptr is
  // arithmetic and no counting pass is needed.
  Csr a;
  a.rows = static_cast<index_t>(batch.size());
  a.cols = num_entities;
  a.row_ptr.resize(batch.size() + 1);
  a.col_idx.resize(batch.size() * 2);
  a.values.resize(batch.size() * 2);
  for (std::size_t m = 0; m < batch.size(); ++m) {
    const Triplet& t = batch[m];
    SPTX_CHECK(t.head < num_entities && t.tail < num_entities,
               "triplet entity out of range");
    a.row_ptr[m] = static_cast<index_t>(2 * m);
    a.col_idx[2 * m] = t.head;
    a.values[2 * m] = +1.0f;
    a.col_idx[2 * m + 1] = t.tail;
    a.values[2 * m + 1] = -1.0f;
  }
  a.row_ptr[batch.size()] = static_cast<index_t>(2 * batch.size());
  return a;
}

Csr build_hrt_incidence_csr(std::span<const Triplet> batch,
                            index_t num_entities, index_t num_relations) {
  profiling::count_event(profiling::Counter::kIncidenceBuilds);
  Csr a;
  a.rows = static_cast<index_t>(batch.size());
  a.cols = num_entities + num_relations;
  a.row_ptr.resize(batch.size() + 1);
  a.col_idx.resize(batch.size() * 3);
  a.values.resize(batch.size() * 3);
  for (std::size_t m = 0; m < batch.size(); ++m) {
    const Triplet& t = batch[m];
    SPTX_CHECK(t.head < num_entities && t.tail < num_entities &&
                   t.relation < num_relations,
               "triplet out of range");
    a.row_ptr[m] = static_cast<index_t>(3 * m);
    a.col_idx[3 * m] = t.head;
    a.values[3 * m] = +1.0f;
    a.col_idx[3 * m + 1] = t.tail;
    a.values[3 * m + 1] = -1.0f;
    a.col_idx[3 * m + 2] = num_entities + t.relation;
    a.values[3 * m + 2] = +1.0f;
  }
  a.row_ptr[batch.size()] = static_cast<index_t>(3 * batch.size());
  return a;
}

Csr build_entity_selection_csr(std::span<const Triplet> batch,
                               index_t num_entities, TripletSlot slot) {
  profiling::count_event(profiling::Counter::kIncidenceBuilds);
  Csr a;
  a.rows = static_cast<index_t>(batch.size());
  a.cols = num_entities;
  a.row_ptr.resize(batch.size() + 1);
  a.col_idx.resize(batch.size());
  a.values.assign(batch.size(), 1.0f);
  for (std::size_t m = 0; m < batch.size(); ++m) {
    const index_t e =
        slot == TripletSlot::kHead ? batch[m].head : batch[m].tail;
    SPTX_CHECK(e >= 0 && e < num_entities, "entity out of range");
    a.row_ptr[m] = static_cast<index_t>(m);
    a.col_idx[m] = e;
  }
  a.row_ptr[batch.size()] = static_cast<index_t>(batch.size());
  return a;
}

Csr build_relation_selection_csr(std::span<const Triplet> batch,
                                 index_t num_relations) {
  profiling::count_event(profiling::Counter::kIncidenceBuilds);
  Csr a;
  a.rows = static_cast<index_t>(batch.size());
  a.cols = num_relations;
  a.row_ptr.resize(batch.size() + 1);
  a.col_idx.resize(batch.size());
  a.values.assign(batch.size(), 1.0f);
  for (std::size_t m = 0; m < batch.size(); ++m) {
    SPTX_CHECK(batch[m].relation >= 0 && batch[m].relation < num_relations,
               "relation out of range");
    a.row_ptr[m] = static_cast<index_t>(m);
    a.col_idx[m] = batch[m].relation;
  }
  a.row_ptr[batch.size()] = static_cast<index_t>(batch.size());
  return a;
}

std::vector<index_t> touched_entity_ids(std::span<const Triplet> a,
                                        std::span<const Triplet> b) {
  std::vector<index_t> ids;
  ids.reserve(2 * (a.size() + b.size()));
  for (const Triplet& t : a) {
    ids.push_back(t.head);
    ids.push_back(t.tail);
  }
  for (const Triplet& t : b) {
    ids.push_back(t.head);
    ids.push_back(t.tail);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

std::vector<index_t> touched_relation_ids(std::span<const Triplet> a,
                                          std::span<const Triplet> b) {
  std::vector<index_t> ids;
  ids.reserve(a.size() + b.size());
  for (const Triplet& t : a) ids.push_back(t.relation);
  for (const Triplet& t : b) ids.push_back(t.relation);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

}  // namespace sptx
