// Sparse-dense matrix multiplication kernels — the paper's core operation.
//
// Forward:  C = A · X        (spmm_csr / spmm_coo)
// Backward: dX = Aᵀ · dC     (spmm_csr_transposed — Appendix G shows the
//                             gradient of SpMM w.r.t. the dense operand is
//                             another SpMM with the transposed sparse matrix.)
//
// Kernel zoo (the ablation bench compares them):
//   kNaive          plain row loop, the reference implementation
//   kUnrolled       inner dim unrolled by 4 (§2's loop unrolling)
//   kTiled          cache-blocked column panels × row blocks (§2's tiling)
//   kParallel       OpenMP dynamic over rows, unrolled scalar inner loop
//   kSimd           AVX2/FMA register-blocked rows; ±1 coefficients take a
//                   multiply-free add/sub path (incidence matrices only ever
//                   hold ±1). Falls back to kUnrolled without AVX2+FMA.
//   kTiledParallel  row-block parallel × column panels with the SIMD inner
//                   kernel — the combined §2 optimisations in one kernel
//   kAuto           runtime choice, see spmm_auto_kernel below
//
// All SIMD paths are selected at runtime from cpuid (cpu_features.hpp), so
// portable builds still vectorize on capable hardware; SPTX_NO_SIMD=1
// forces scalar. All kernels count FLOPs (2·nnz·d, or nnz·d for ±1-valued
// matrices where the multiply folds away).
#pragma once

#include "src/sparse/sparse_matrix.hpp"
#include "src/tensor/matrix.hpp"

namespace sptx {

enum class SpmmKernel {
  kNaive,          // plain row loop
  kUnrolled,       // inner dim unrolled by 4
  kTiled,          // cache-blocked: column panels × row blocks (§2's tiling)
  kParallel,       // OpenMP dynamic over rows, unrolled inner loop
  kSimd,           // AVX2/FMA register-blocked, ±1-specialised, serial
  kTiledParallel,  // parallel row blocks × column panels, SIMD inner loop
  kAuto,           // pick from (nnz, rows, dim, threads) at call time
};

/// The kAuto dispatch heuristic, exposed so tests/benches can interrogate
/// the choice. Decision order:
///   1. SPTX_SPMM_KERNEL=naive|unrolled|tiled|parallel|simd|tiled_parallel
///      overrides everything (operator escape hatch).
///   2. Without AVX2+FMA (or with SPTX_NO_SIMD): kParallel when the work
///      nnz·d clears the parallel threshold (2^18) on a multi-core host;
///      otherwise kTiled for wide rows (d ≥ 512, where panels keep the
///      active set in L1/L2) and kUnrolled for everything smaller.
///   3. With SIMD: kSimd when single-threaded or below the parallel
///      threshold (thread start-up would dominate); kTiledParallel above it.
SpmmKernel spmm_auto_kernel(const Csr& a, index_t dim);

/// C = A · X with A in CSR. X must have A.cols rows. Returns (A.rows × d).
Matrix spmm_csr(const Csr& a, const Matrix& x,
                SpmmKernel kernel = SpmmKernel::kAuto);

/// In-place variant writing into a caller-owned output (avoids allocation
/// in the training loop's hot path).
void spmm_csr_into(const Csr& a, const Matrix& x, Matrix& c,
                   SpmmKernel kernel = SpmmKernel::kAuto);

/// C = A · X with A in COO (the GPU-library format in the paper, §5.5).
Matrix spmm_coo(const Coo& a, const Matrix& x);

/// In-place COO variant (see spmm_csr_into).
void spmm_coo_into(const Coo& a, const Matrix& x, Matrix& c);

/// Would spmm_csr_transposed_accumulate take the cached-transpose path for
/// (a, dim) under the current thread count and SPTX_SPMM_BACKWARD setting?
/// Exposed so batch-plan compilation can pre-build A.transposed() off the
/// training hot path (possibly on the prefetch thread) instead of inside
/// the first backward pass of the epoch.
bool spmm_backward_uses_transpose(const Csr& a, index_t dim);

/// dX += Aᵀ · g where g is (A.rows × d): the SpMM backward pass. Two
/// implementations behind one entry point:
///   * small batches scatter row m of g into dX at A's column indices
///     (Appendix G without forming Aᵀ);
///   * large batches reuse A.transposed() — cached on the matrix, built
///     once — and run the forward SIMD kernel in accumulate mode, which
///     turns the serial scatter into a conflict-free parallel gather
///     (each dX row is owned by exactly one task).
/// SPTX_SPMM_BACKWARD=scatter|transpose overrides the size heuristic.
void spmm_csr_transposed_accumulate(const Csr& a, const Matrix& g, Matrix& dx);

/// Same, but always materialises Aᵀ (uncached) and runs a forward SpMM
/// (ablation / verification path).
Matrix spmm_csr_transposed_explicit(const Csr& a, const Matrix& g);

}  // namespace sptx
