// Sparse-dense matrix multiplication kernels — the paper's core operation.
//
// Forward:  C = A · X        (spmm_csr / spmm_coo)
// Backward: dX = Aᵀ · dC     (spmm_csr_transposed — Appendix G shows the
//                             gradient of SpMM w.r.t. the dense operand is
//                             another SpMM with the transposed sparse matrix;
//                             we compute it by scattering per CSR row, which
//                             avoids materialising Aᵀ.)
//
// Kernel variants implement the optimizations §2 lists for the library
// (loop unrolling, register blocking, OpenMP dynamic scheduling); the
// ablation bench compares them. All kernels count FLOPs (2·nnz·d).
#pragma once

#include "src/sparse/sparse_matrix.hpp"
#include "src/tensor/matrix.hpp"

namespace sptx {

enum class SpmmKernel {
  kNaive,      // plain row loop
  kUnrolled,   // inner dim unrolled by 4
  kTiled,      // cache-blocked: column panels × row blocks (§2's tiling)
  kParallel,   // OpenMP dynamic over rows, unrolled inner loop
};

/// C = A · X with A in CSR. X must have A.cols rows. Returns (A.rows × d).
Matrix spmm_csr(const Csr& a, const Matrix& x,
                SpmmKernel kernel = SpmmKernel::kParallel);

/// In-place variant writing into a caller-owned output (avoids allocation
/// in the training loop's hot path).
void spmm_csr_into(const Csr& a, const Matrix& x, Matrix& c,
                   SpmmKernel kernel = SpmmKernel::kParallel);

/// C = A · X with A in COO (the GPU-library format in the paper, §5.5).
Matrix spmm_coo(const Coo& a, const Matrix& x);

/// dX += Aᵀ · g where g is (A.rows × d): the SpMM backward pass. Scatters
/// row m of g into dX at A's column indices, scaled by A's values — exactly
/// the Aᵀ·(∂L/∂C) product of Appendix G without forming Aᵀ.
void spmm_csr_transposed_accumulate(const Csr& a, const Matrix& g, Matrix& dx);

/// Same, but materialises Aᵀ first and runs a forward SpMM (ablation /
/// verification path).
Matrix spmm_csr_transposed_explicit(const Csr& a, const Matrix& g);

}  // namespace sptx
