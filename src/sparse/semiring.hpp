// Semiring-generalised SpMM — Appendix D of the paper.
//
// TransE's hrt expression is an SpMM under the standard (+, ×) semiring:
//   Z_ij = ⊕_k (A_ik ⊗ E_kj).
// Swapping the operators extends the same incidence-matrix formulation to
// non-translational models:
//   * DistMult:  ⊕ = ×, ⊗ = × over reals, incidence stores +1 at h, r, t
//     → Z row = h ⊙ r ⊙ t elementwise product.
//   * ComplEx:   same but over complex numbers, with the tail's coefficient
//     marking conjugation → h ⊙ r ⊙ conj(t).
//   * RotatE:    multiplicative combine for h and r, additive (−) for t
//     → h ⊙ r − t.
// The real-valued template mirrors the custom-semiring SpMM of GraphBLAS /
// Ginkgo the appendix cites; the complex variants are concrete kernels over
// interleaved (re, im) float pairs.
#pragma once

#include "src/sparse/sparse_matrix.hpp"
#include "src/tensor/matrix.hpp"

namespace sptx {

/// Standard arithmetic semiring: plain SpMM.
struct PlusTimesSemiring {
  static constexpr float identity = 0.0f;
  static float combine(float a, float x) { return a * x; }
  static float reduce(float acc, float term) { return acc + term; }
};

/// Multiplicative-reduce semiring used by DistMult (h ⊙ r ⊙ t). The
/// incidence coefficient is applied multiplicatively, so a DistMult
/// incidence stores +1 at head, relation and tail columns.
struct TimesTimesSemiring {
  static constexpr float identity = 1.0f;
  static float combine(float a, float x) { return a * x; }
  static float reduce(float acc, float term) { return acc * term; }
};

/// Max-plus (tropical) semiring; included to demonstrate the GraphBLAS-style
/// generality of the kernel (e.g. path-length style scores).
struct MaxPlusSemiring {
  static constexpr float identity = -1e30f;
  static float combine(float a, float x) { return a + x; }
  static float reduce(float acc, float term) {
    return acc > term ? acc : term;
  }
};

/// Generic semiring SpMM: C_ij = reduce_k combine(A_ik, X_kj), with the
/// reduction seeded at SR::identity over each row's nonzeros.
template <typename SR>
Matrix spmm_semiring(const Csr& a, const Matrix& x) {
  SPTX_CHECK(x.rows() == a.cols, "spmm_semiring: shape mismatch, A cols "
                                     << a.cols << " vs X " << x.shape_str());
  Matrix c(a.rows, x.cols());
  const index_t d = x.cols();
  for (index_t i = 0; i < a.rows; ++i) {
    float* crow = c.row(i);
    for (index_t j = 0; j < d; ++j) crow[j] = SR::identity;
    for (index_t k = a.row_ptr[static_cast<std::size_t>(i)];
         k < a.row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const float v = a.values[static_cast<std::size_t>(k)];
      const float* xrow = x.row(a.col_idx[static_cast<std::size_t>(k)]);
      for (index_t j = 0; j < d; ++j)
        crow[j] = SR::reduce(crow[j], SR::combine(v, xrow[j]));
    }
  }
  return c;
}

/// Complex-semiring modes for the hrt incidence structure. Embeddings hold
/// d/2 complex numbers as interleaved (re, im) float pairs.
enum class ComplexSpmmMode {
  kComplExConjTail,  // h ⊙ r ⊙ conj(t)
  kRotateSubTail,    // h ⊙ r − t
};

/// Complex semiring SpMM over an hrt incidence matrix: coefficients +1 mark
/// multiplicative operands (head, relation), −1 marks the tail, whose role
/// depends on the mode (conjugated factor for ComplEx, subtrahend for
/// RotatE). Output has the same interleaved complex layout as the input.
Matrix spmm_complex_hrt(const Csr& a, const Matrix& x, ComplexSpmmMode mode);

}  // namespace sptx
