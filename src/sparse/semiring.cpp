#include "src/sparse/semiring.hpp"

#include "src/profiling/flops.hpp"

namespace sptx {

Matrix spmm_complex_hrt(const Csr& a, const Matrix& x, ComplexSpmmMode mode) {
  SPTX_CHECK(x.rows() == a.cols, "spmm_complex_hrt: shape mismatch");
  SPTX_CHECK(x.cols() % 2 == 0,
             "complex embeddings need even dim, got " << x.cols());
  Matrix c(a.rows, x.cols());
  const index_t dc = x.cols() / 2;  // complex components per row
  profiling::count_flops(6 * a.nnz() * dc);
  for (index_t i = 0; i < a.rows; ++i) {
    float* crow = c.row(i);
    // Seed the multiplicative accumulator at complex 1.
    for (index_t j = 0; j < dc; ++j) {
      crow[2 * j] = 1.0f;
      crow[2 * j + 1] = 0.0f;
    }
    const float* tail_row = nullptr;
    for (index_t k = a.row_ptr[static_cast<std::size_t>(i)];
         k < a.row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const float v = a.values[static_cast<std::size_t>(k)];
      const float* xrow = x.row(a.col_idx[static_cast<std::size_t>(k)]);
      if (v < 0.0f) {
        // Tail operand: handled after the multiplicative factors so the
        // result is order-independent.
        tail_row = xrow;
        continue;
      }
      for (index_t j = 0; j < dc; ++j) {
        const float ar = crow[2 * j], ai = crow[2 * j + 1];
        const float br = xrow[2 * j], bi = xrow[2 * j + 1];
        crow[2 * j] = ar * br - ai * bi;
        crow[2 * j + 1] = ar * bi + ai * br;
      }
    }
    if (tail_row == nullptr) continue;
    if (mode == ComplexSpmmMode::kComplExConjTail) {
      for (index_t j = 0; j < dc; ++j) {
        const float ar = crow[2 * j], ai = crow[2 * j + 1];
        const float br = tail_row[2 * j], bi = -tail_row[2 * j + 1];
        crow[2 * j] = ar * br - ai * bi;
        crow[2 * j + 1] = ar * bi + ai * br;
      }
    } else {  // kRotateSubTail
      for (index_t j = 0; j < 2 * dc; ++j) crow[j] -= tail_row[j];
    }
  }
  return c;
}

}  // namespace sptx
