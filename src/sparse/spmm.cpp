#include "src/sparse/spmm.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "src/common/cpu_features.hpp"
#include "src/runtime/parallel.hpp"
#include "src/common/simd.hpp"
#include "src/profiling/flops.hpp"
#include "src/profiling/timer.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
#define SPTX_SPMM_X86 1
#include <immintrin.h>
#endif

namespace sptx {

namespace {

// Incidence matrices hold only ±1 coefficients, so the multiply in the
// kernel's FMA folds into an add/sub on any optimized implementation (and
// in hardware a multiply by ±1 costs nothing extra). FLOP accounting
// reflects that: 1 FLOP per (nonzero × column) for unit-valued matrices,
// 2 otherwise. The ±1 scan itself is cached on the matrix.
std::int64_t spmm_flops(const Csr& a, index_t dim) {
  return (a.unit_values() ? 1 : 2) * a.nnz() * dim;
}

std::int64_t spmm_flops(const Coo& a, index_t dim) {
  return (a.unit_values() ? 1 : 2) * a.nnz() * dim;
}

// Plain CSR row loop: for each output row, accumulate val * X[col, :].
void kernel_naive(const Csr& a, const Matrix& x, Matrix& c) {
  const index_t d = x.cols();
  for (index_t i = 0; i < a.rows; ++i) {
    float* crow = c.row(i);
    for (index_t j = 0; j < d; ++j) crow[j] = 0.0f;
    for (index_t k = a.row_ptr[static_cast<std::size_t>(i)];
         k < a.row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const float v = a.values[static_cast<std::size_t>(k)];
      const float* xrow = x.row(a.col_idx[static_cast<std::size_t>(k)]);
      for (index_t j = 0; j < d; ++j) crow[j] += v * xrow[j];
    }
  }
}

// Unrolled-by-4 inner loop over the embedding dimension. With ±1 values the
// multiply folds into add/sub, but we keep the FMA form so the kernel works
// for general sparse matrices too.
inline void axpy_unrolled(float v, const float* __restrict xrow,
                          float* __restrict crow, index_t d) {
  index_t j = 0;
  const index_t d4 = d - (d % 4);
  for (; j < d4; j += 4) {
    crow[j + 0] += v * xrow[j + 0];
    crow[j + 1] += v * xrow[j + 1];
    crow[j + 2] += v * xrow[j + 2];
    crow[j + 3] += v * xrow[j + 3];
  }
  for (; j < d; ++j) crow[j] += v * xrow[j];
}

void kernel_row_unrolled(const Csr& a, const Matrix& x, Matrix& c,
                         index_t i) {
  const index_t d = x.cols();
  float* crow = c.row(i);
  for (index_t j = 0; j < d; ++j) crow[j] = 0.0f;
  for (index_t k = a.row_ptr[static_cast<std::size_t>(i)];
       k < a.row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
    axpy_unrolled(a.values[static_cast<std::size_t>(k)],
                  x.row(a.col_idx[static_cast<std::size_t>(k)]), crow, d);
  }
}

void kernel_unrolled(const Csr& a, const Matrix& x, Matrix& c) {
  for (index_t i = 0; i < a.rows; ++i) kernel_row_unrolled(a, x, c, i);
}

// Cache-blocked kernel: the embedding dimension is processed in column
// panels sized to keep one panel of every touched X row in L1/L2, and
// output rows in blocks so the CSR metadata of a block is reused across
// panels. Pays off when d is large enough that full rows thrash the cache.
void kernel_tiled(const Csr& a, const Matrix& x, Matrix& c) {
  constexpr index_t kPanel = 64;    // floats per column panel (256 B)
  constexpr index_t kRowBlock = 256;  // output rows per block
  const index_t d = x.cols();
  for (index_t i0 = 0; i0 < a.rows; i0 += kRowBlock) {
    const index_t i1 = std::min<index_t>(i0 + kRowBlock, a.rows);
    for (index_t j0 = 0; j0 < d; j0 += kPanel) {
      const index_t j1 = std::min<index_t>(j0 + kPanel, d);
      for (index_t i = i0; i < i1; ++i) {
        float* crow = c.row(i);
        for (index_t j = j0; j < j1; ++j) crow[j] = 0.0f;
        for (index_t k = a.row_ptr[static_cast<std::size_t>(i)];
             k < a.row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
          const float v = a.values[static_cast<std::size_t>(k)];
          const float* xrow =
              x.row(a.col_idx[static_cast<std::size_t>(k)]);
          for (index_t j = j0; j < j1; ++j) crow[j] += v * xrow[j];
        }
      }
    }
  }
}

void kernel_parallel(const Csr& a, const Matrix& x, Matrix& c) {
  runtime::parallel_for(0, a.rows,
               [&](index_t i) { kernel_row_unrolled(a, x, c, i); });
}

// ---- SIMD engine ---------------------------------------------------------
//
// The register-blocked formulation: for each output row, column panels of
// 16 (then 8) floats are held in ymm accumulators while the row's nonzeros
// stream past, so C is written exactly once per element with no zero-fill
// pass and no intermediate load/store round-trips — the scalar kernels pay
// one C-row round-trip per nonzero. With ±1 coefficients the FMA becomes a
// pure add/sub and the values array is only consulted for its sign.

// Scalar mirror of the AVX2 kernel (same loop structure, compiler-vectorized
// where possible). Also serves as the accumulate-mode scalar path for the
// backward gather.
void rows_panel_scalar(const Csr& a, const Matrix& x, Matrix& c, index_t i0,
                       index_t i1, bool accumulate) {
  const index_t d = x.cols();
  const index_t stride = x.cols();
  const float* xbase = x.data();
  const index_t* cols = a.col_idx.data();
  const float* vals = a.values.data();
  for (index_t i = i0; i < i1; ++i) {
    const index_t k0 = a.row_ptr[static_cast<std::size_t>(i)];
    const index_t k1 = a.row_ptr[static_cast<std::size_t>(i) + 1];
    float* crow = c.row(i);
    if (!accumulate) {
      std::memset(crow, 0, static_cast<std::size_t>(d) * sizeof(float));
    }
    for (index_t k = k0; k < k1; ++k) {
      axpy_unrolled(vals[k], xbase + cols[k] * stride, crow, d);
    }
  }
}

#ifdef SPTX_SPMM_X86

// Row-range × column-panel AVX2/FMA kernel. `accumulate` seeds the
// accumulators from C instead of zero (backward gather mode). Compiled with
// a target attribute so it exists in portable builds; callers must gate on
// simd_enabled().
//
// Incidence rows have 1–3 nonzeros (selection / ht / hrt builders), so the
// kernel fuses those shapes: the row's X pointers and broadcast values are
// hoisted into registers once and the column loop runs branch-free with the
// output row held entirely in accumulators — C is written exactly once per
// element, with no zero-fill pass and no per-nonzero C round-trips. A ±1
// coefficient costs nothing extra: it rides the same FMA slot a general
// value uses (the multiply folds into the add in hardware), which is why the
// fused paths do not branch on sign; the variable-nnz fallback does take
// the explicit add/sub path for unit-valued matrices.
//
// When the dense operand outgrows the fast cache levels every nonzero is a
// memory-latency event, so the kernel software-prefetches the X rows a few
// output rows ahead (`prefetch`, gated by the caller on x's footprint —
// prefetching L1-resident tables just burns issue slots).
constexpr index_t kPrefetchRowAhead = 4;
constexpr std::size_t kPrefetchMinBytes = 4u << 20;  // ~fast-cache footprint

// Outputs bigger than the fast cache stream straight back to memory anyway;
// non-temporal stores skip the read-for-ownership of every C line, cutting
// the output traffic of the (bandwidth-bound) kernel by a third. Below the
// threshold regular stores keep C cache-hot for the consumer (training
// immediately reduces the SpMM result to row norms).
constexpr std::size_t kStreamMinBytes = 8u << 20;

__attribute__((target("avx2,fma"))) void rows_panel_avx2(
    const Csr& a, const Matrix& x, Matrix& c, index_t i0, index_t i1,
    index_t j0, index_t j1, bool unit, bool accumulate, bool prefetch,
    bool stream) {
  // Non-temporal stores need 32-byte-aligned addresses: buffers are 64-byte
  // aligned, so every row start (and every +8 step from an 8-aligned j0) is
  // aligned iff the row stride is a multiple of 8 floats. Accumulate mode
  // reads C anyway, so streaming would buy nothing there.
  const bool nt = stream && !accumulate && c.cols() % 8 == 0 && j0 % 8 == 0;
#define SPTX_STORE(p, v)                   \
  do {                                     \
    if (nt) {                              \
      _mm256_stream_ps((p), (v));          \
    } else {                               \
      _mm256_storeu_ps((p), (v));          \
    }                                      \
  } while (0)
  const index_t stride = x.cols();
  const float* xbase = x.data();
  const index_t* cols = a.col_idx.data();
  const float* vals = a.values.data();
  for (index_t i = i0; i < i1; ++i) {
    if (prefetch) {
      const index_t ipf = i + kPrefetchRowAhead;
      if (ipf < i1) {
        for (index_t k = a.row_ptr[static_cast<std::size_t>(ipf)];
             k < a.row_ptr[static_cast<std::size_t>(ipf) + 1]; ++k) {
          const char* p =
              reinterpret_cast<const char*>(xbase + cols[k] * stride + j0);
          const std::size_t len =
              static_cast<std::size_t>(j1 - j0) * sizeof(float);
          for (std::size_t off = 0; off < len; off += 64) {
            _mm_prefetch(p + off, _MM_HINT_T0);
          }
        }
      }
    }
    const index_t k0 = a.row_ptr[static_cast<std::size_t>(i)];
    const index_t k1 = a.row_ptr[static_cast<std::size_t>(i) + 1];
    const index_t row_nnz = k1 - k0;
    float* crow = c.row(i);
    index_t j = j0;
    if (row_nnz == 3) {
      // hrt incidence shape: c = v0·x0 + v1·x1 + v2·x2 in registers.
      const float* x0 = xbase + cols[k0] * stride;
      const float* x1 = xbase + cols[k0 + 1] * stride;
      const float* x2 = xbase + cols[k0 + 2] * stride;
      const __m256 v0 = _mm256_set1_ps(vals[k0]);
      const __m256 v1 = _mm256_set1_ps(vals[k0 + 1]);
      const __m256 v2 = _mm256_set1_ps(vals[k0 + 2]);
      for (; j + 16 <= j1; j += 16) {
        __m256 acc0 = accumulate
                          ? _mm256_fmadd_ps(_mm256_loadu_ps(x0 + j), v0,
                                            _mm256_loadu_ps(crow + j))
                          : _mm256_mul_ps(_mm256_loadu_ps(x0 + j), v0);
        __m256 acc1 = accumulate
                          ? _mm256_fmadd_ps(_mm256_loadu_ps(x0 + j + 8), v0,
                                            _mm256_loadu_ps(crow + j + 8))
                          : _mm256_mul_ps(_mm256_loadu_ps(x0 + j + 8), v0);
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(x1 + j), v1, acc0);
        acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(x1 + j + 8), v1, acc1);
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(x2 + j), v2, acc0);
        acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(x2 + j + 8), v2, acc1);
        SPTX_STORE(crow + j, acc0);
        SPTX_STORE(crow + j + 8, acc1);
      }
      for (; j + 8 <= j1; j += 8) {
        __m256 acc = accumulate
                         ? _mm256_fmadd_ps(_mm256_loadu_ps(x0 + j), v0,
                                           _mm256_loadu_ps(crow + j))
                         : _mm256_mul_ps(_mm256_loadu_ps(x0 + j), v0);
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(x1 + j), v1, acc);
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(x2 + j), v2, acc);
        SPTX_STORE(crow + j, acc);
      }
      for (; j < j1; ++j) {
        const float base = accumulate ? crow[j] : 0.0f;
        crow[j] = base + vals[k0] * x0[j] + vals[k0 + 1] * x1[j] +
                  vals[k0 + 2] * x2[j];
      }
      continue;
    }
    if (row_nnz == 2) {
      // ht incidence shape: c = v0·x0 + v1·x1.
      const float* x0 = xbase + cols[k0] * stride;
      const float* x1 = xbase + cols[k0 + 1] * stride;
      const __m256 v0 = _mm256_set1_ps(vals[k0]);
      const __m256 v1 = _mm256_set1_ps(vals[k0 + 1]);
      for (; j + 8 <= j1; j += 8) {
        __m256 acc = accumulate
                         ? _mm256_fmadd_ps(_mm256_loadu_ps(x0 + j), v0,
                                           _mm256_loadu_ps(crow + j))
                         : _mm256_mul_ps(_mm256_loadu_ps(x0 + j), v0);
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(x1 + j), v1, acc);
        SPTX_STORE(crow + j, acc);
      }
      for (; j < j1; ++j) {
        const float base = accumulate ? crow[j] : 0.0f;
        crow[j] = base + vals[k0] * x0[j] + vals[k0 + 1] * x1[j];
      }
      continue;
    }
    if (row_nnz == 1) {
      // selection shape: c = v0·x0 (a gather row).
      const float* x0 = xbase + cols[k0] * stride;
      const __m256 v0 = _mm256_set1_ps(vals[k0]);
      for (; j + 8 <= j1; j += 8) {
        const __m256 acc =
            accumulate ? _mm256_fmadd_ps(_mm256_loadu_ps(x0 + j), v0,
                                         _mm256_loadu_ps(crow + j))
                       : _mm256_mul_ps(_mm256_loadu_ps(x0 + j), v0);
        SPTX_STORE(crow + j, acc);
      }
      for (; j < j1; ++j) {
        crow[j] = (accumulate ? crow[j] : 0.0f) + vals[k0] * x0[j];
      }
      continue;
    }
    if (row_nnz == 0) {
      if (!accumulate) {
        for (; j + 8 <= j1; j += 8) {
          SPTX_STORE(crow + j, _mm256_setzero_ps());
        }
        for (; j < j1; ++j) crow[j] = 0.0f;
      }
      continue;
    }
    // Variable-nnz fallback (general sparse matrices): accumulators stay in
    // registers per 16-column panel while the row's nonzeros stream past.
    for (; j + 16 <= j1; j += 16) {
      __m256 acc0, acc1;
      if (accumulate) {
        acc0 = _mm256_loadu_ps(crow + j);
        acc1 = _mm256_loadu_ps(crow + j + 8);
      } else {
        acc0 = _mm256_setzero_ps();
        acc1 = _mm256_setzero_ps();
      }
      if (unit) {
        for (index_t k = k0; k < k1; ++k) {
          const float* xrow = xbase + cols[k] * stride + j;
          if (vals[k] > 0.0f) {
            acc0 = _mm256_add_ps(acc0, _mm256_loadu_ps(xrow));
            acc1 = _mm256_add_ps(acc1, _mm256_loadu_ps(xrow + 8));
          } else {
            acc0 = _mm256_sub_ps(acc0, _mm256_loadu_ps(xrow));
            acc1 = _mm256_sub_ps(acc1, _mm256_loadu_ps(xrow + 8));
          }
        }
      } else {
        for (index_t k = k0; k < k1; ++k) {
          const float* xrow = xbase + cols[k] * stride + j;
          const __m256 v = _mm256_set1_ps(vals[k]);
          acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(xrow), v, acc0);
          acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(xrow + 8), v, acc1);
        }
      }
      SPTX_STORE(crow + j, acc0);
      SPTX_STORE(crow + j + 8, acc1);
    }
    for (; j + 8 <= j1; j += 8) {
      __m256 acc =
          accumulate ? _mm256_loadu_ps(crow + j) : _mm256_setzero_ps();
      if (unit) {
        for (index_t k = k0; k < k1; ++k) {
          const __m256 xv = _mm256_loadu_ps(xbase + cols[k] * stride + j);
          acc = vals[k] > 0.0f ? _mm256_add_ps(acc, xv)
                               : _mm256_sub_ps(acc, xv);
        }
      } else {
        for (index_t k = k0; k < k1; ++k) {
          acc = _mm256_fmadd_ps(_mm256_loadu_ps(xbase + cols[k] * stride + j),
                                _mm256_set1_ps(vals[k]), acc);
        }
      }
      SPTX_STORE(crow + j, acc);
    }
    for (; j < j1; ++j) {
      float acc = accumulate ? crow[j] : 0.0f;
      for (index_t k = k0; k < k1; ++k) {
        acc += vals[k] * xbase[cols[k] * stride + j];
      }
      crow[j] = acc;
    }
  }
  if (nt) _mm_sfence();
#undef SPTX_STORE
}

// COO scatter with a vectorized axpy per nonzero (±1 entries skip the
// multiply). Entries may target any row, so this stays serial.
__attribute__((target("avx2,fma"))) void coo_scatter_avx2(const Coo& a,
                                                          const Matrix& x,
                                                          Matrix& c,
                                                          bool unit) {
  const index_t d = x.cols();
  for (index_t k = 0; k < a.nnz(); ++k) {
    const float v = a.values[static_cast<std::size_t>(k)];
    const float* xrow = x.row(a.col_idx[static_cast<std::size_t>(k)]);
    float* crow = c.row(a.row_idx[static_cast<std::size_t>(k)]);
    index_t j = 0;
    if (unit) {
      if (v > 0.0f) {
        for (; j + 8 <= d; j += 8) {
          _mm256_storeu_ps(crow + j, _mm256_add_ps(_mm256_loadu_ps(crow + j),
                                                   _mm256_loadu_ps(xrow + j)));
        }
      } else {
        for (; j + 8 <= d; j += 8) {
          _mm256_storeu_ps(crow + j, _mm256_sub_ps(_mm256_loadu_ps(crow + j),
                                                   _mm256_loadu_ps(xrow + j)));
        }
      }
      for (; j < d; ++j) crow[j] += v > 0.0f ? xrow[j] : -xrow[j];
    } else {
      const __m256 vv = _mm256_set1_ps(v);
      for (; j + 8 <= d; j += 8) {
        _mm256_storeu_ps(crow + j,
                         _mm256_fmadd_ps(_mm256_loadu_ps(xrow + j), vv,
                                         _mm256_loadu_ps(crow + j)));
      }
      for (; j < d; ++j) crow[j] += v * xrow[j];
    }
  }
}

#endif  // SPTX_SPMM_X86

// Dispatch for a row range: AVX2 when the cpu allows it, scalar mirror
// otherwise. Whole-d panel (the register-blocked loop already streams X and
// C optimally; column tiling is a separate kernel).
void rows_simd(const Csr& a, const Matrix& x, Matrix& c, index_t i0,
               index_t i1, bool accumulate) {
#ifdef SPTX_SPMM_X86
  if (simd_enabled()) {
    rows_panel_avx2(a, x, c, i0, i1, 0, x.cols(), a.unit_values(), accumulate,
                    /*prefetch=*/x.bytes() >= kPrefetchMinBytes,
                    /*stream=*/c.bytes() >= kStreamMinBytes);
    return;
  }
#endif
  rows_panel_scalar(a, x, c, i0, i1, accumulate);
}

void kernel_simd(const Csr& a, const Matrix& x, Matrix& c) {
  rows_simd(a, x, c, 0, a.rows, /*accumulate=*/false);
}

// Combined kernel: dynamic parallel over row blocks, column panels inside a
// block (keeps a block's CSR metadata and the touched X panels cache-hot),
// SIMD inner loop.
void kernel_tiled_parallel(const Csr& a, const Matrix& x, Matrix& c) {
  constexpr index_t kRowBlock = 128;
  constexpr index_t kPanel = 512;  // floats per panel (2 KiB)
  const index_t d = x.cols();
  const index_t blocks = (a.rows + kRowBlock - 1) / kRowBlock;
  runtime::parallel_for(
      0, blocks,
      [&](index_t b) {
        const index_t i0 = b * kRowBlock;
        const index_t i1 = std::min<index_t>(i0 + kRowBlock, a.rows);
#ifdef SPTX_SPMM_X86
        if (simd_enabled()) {
          const bool unit = a.unit_values();
          const bool prefetch = x.bytes() >= kPrefetchMinBytes;
          const bool stream = c.bytes() >= kStreamMinBytes;
          for (index_t j0 = 0; j0 < d; j0 += kPanel) {
            const index_t j1 = std::min<index_t>(j0 + kPanel, d);
            rows_panel_avx2(a, x, c, i0, i1, j0, j1, unit,
                            /*accumulate=*/false, prefetch, stream);
          }
          return;
        }
#endif
        rows_panel_scalar(a, x, c, i0, i1, /*accumulate=*/false);
      },
      /*grain=*/1);
}

// ---- kAuto ---------------------------------------------------------------

// Work (nnz·d) below which spawning a parallel region costs more than it
// saves; measured on the ablation bench's small end.
constexpr std::int64_t kParallelMinWork = 1 << 18;

SpmmKernel parse_kernel_name(const std::string& s) {
  if (s == "naive") return SpmmKernel::kNaive;
  if (s == "unrolled") return SpmmKernel::kUnrolled;
  if (s == "tiled") return SpmmKernel::kTiled;
  if (s == "parallel") return SpmmKernel::kParallel;
  if (s == "simd") return SpmmKernel::kSimd;
  if (s == "tiled_parallel") return SpmmKernel::kTiledParallel;
  return SpmmKernel::kAuto;  // unknown names fall through to the heuristic
}

}  // namespace

SpmmKernel spmm_auto_kernel(const Csr& a, index_t dim) {
  // SPTX_SPMM_KERNEL (registry knob, case-insensitive) forces a kernel.
  // hot() is pre-lowercased and pre-resolved at snapshot build time.
  const SpmmKernel forced =
      parse_kernel_name(config::current()->hot().spmm_kernel);
  if (forced != SpmmKernel::kAuto) return forced;
  const std::int64_t work = a.nnz() * dim;
  const bool parallel_pays =
      runtime::num_threads() > 1 && work >= kParallelMinWork;
  if (!simd_enabled()) {
    if (parallel_pays) return SpmmKernel::kParallel;
    return dim >= 512 ? SpmmKernel::kTiled : SpmmKernel::kUnrolled;
  }
  return parallel_pays ? SpmmKernel::kTiledParallel : SpmmKernel::kSimd;
}

void spmm_csr_into(const Csr& a, const Matrix& x, Matrix& c,
                   SpmmKernel kernel) {
  SPTX_CHECK(x.rows() == a.cols,
             "spmm: A is " << a.rows << "x" << a.cols << ", X is "
                           << x.shape_str());
  SPTX_CHECK(c.rows() == a.rows && c.cols() == x.cols(),
             "spmm: output shape " << c.shape_str());
  profiling::ScopedHotspot hotspot("sptx::spmm_csr");
  profiling::count_flops(spmm_flops(a, x.cols()));
  if (kernel == SpmmKernel::kAuto) kernel = spmm_auto_kernel(a, x.cols());
  switch (kernel) {
    case SpmmKernel::kNaive:
      kernel_naive(a, x, c);
      break;
    case SpmmKernel::kUnrolled:
      kernel_unrolled(a, x, c);
      break;
    case SpmmKernel::kTiled:
      kernel_tiled(a, x, c);
      break;
    case SpmmKernel::kParallel:
      kernel_parallel(a, x, c);
      break;
    case SpmmKernel::kSimd:
      kernel_simd(a, x, c);
      break;
    case SpmmKernel::kTiledParallel:
      kernel_tiled_parallel(a, x, c);
      break;
    case SpmmKernel::kAuto:  // resolved above
      kernel_simd(a, x, c);
      break;
  }
}

Matrix spmm_csr(const Csr& a, const Matrix& x, SpmmKernel kernel) {
  Matrix c(a.rows, x.cols());
  spmm_csr_into(a, x, c, kernel);
  return c;
}

void spmm_coo_into(const Coo& a, const Matrix& x, Matrix& c) {
  SPTX_CHECK(x.rows() == a.cols,
             "spmm_coo: A is " << a.rows << "x" << a.cols << ", X is "
                               << x.shape_str());
  SPTX_CHECK(c.rows() == a.rows && c.cols() == x.cols(),
             "spmm_coo: output shape " << c.shape_str());
  profiling::ScopedHotspot hotspot("sptx::spmm_coo");
  profiling::count_flops(spmm_flops(a, x.cols()));
  c.zero();
  const index_t d = x.cols();
#ifdef SPTX_SPMM_X86
  if (simd_enabled()) {
    coo_scatter_avx2(a, x, c, a.unit_values());
    return;
  }
#endif
  for (index_t k = 0; k < a.nnz(); ++k) {
    const index_t r = a.row_idx[static_cast<std::size_t>(k)];
    const float v = a.values[static_cast<std::size_t>(k)];
    axpy_unrolled(v, x.row(a.col_idx[static_cast<std::size_t>(k)]), c.row(r),
                  d);
  }
}

Matrix spmm_coo(const Coo& a, const Matrix& x) {
  Matrix c(a.rows, x.cols());
  spmm_coo_into(a, x, c);
  return c;
}

bool spmm_backward_uses_transpose(const Csr& a, index_t dim) {
  // The gather reformulation exists for its conflict-free parallelism: it
  // sweeps every dX row (mostly empty for incidence columns) while the
  // scatter streams g sequentially, so single-threaded the scatter wins —
  // the gather only pays off when several threads can split the dX rows AND
  // the per-call work clears the O(nnz + cols) transpose build. With cached
  // batch plans the transpose is built once and reused every epoch, but the
  // heuristic stays conservative so uncached callers never pay a full-table
  // transpose to replace a few thousand axpys.
  const std::int64_t work = a.nnz() * dim;
  bool use_transpose = runtime::num_threads() > 1 && work >= kParallelMinWork / 8 &&
                       work >= 8 * (a.nnz() + a.cols);
  const auto snapshot = config::current();  // keeps hot() storage alive
  const std::string& forced = snapshot->hot().spmm_backward;
  if (forced == "scatter") use_transpose = false;
  if (forced == "transpose") use_transpose = true;
  return use_transpose;
}

void spmm_csr_transposed_accumulate(const Csr& a, const Matrix& g,
                                    Matrix& dx) {
  SPTX_CHECK(g.rows() == a.rows,
             "spmm^T: A is " << a.rows << "x" << a.cols << ", g is "
                             << g.shape_str());
  SPTX_CHECK(dx.rows() == a.cols && dx.cols() == g.cols(),
             "spmm^T: dx shape " << dx.shape_str());
  profiling::ScopedHotspot hotspot("sptx::spmm_csr_backward");
  profiling::count_flops(spmm_flops(a, g.cols()));
  const index_t d = g.cols();

  if (spmm_backward_uses_transpose(a, d)) {
    // dX += Aᵀ·g as a forward SpMM over the cached transpose, run in
    // accumulate mode: every dX row is written by exactly one task, so the
    // row loop parallelizes with no atomics and no per-thread buffers.
    const Csr& at = a.transposed();
    constexpr index_t kRowBlock = 256;
    const index_t blocks = (at.rows + kRowBlock - 1) / kRowBlock;
    runtime::parallel_for(
        0, blocks,
        [&](index_t b) {
          const index_t i0 = b * kRowBlock;
          const index_t i1 = std::min<index_t>(i0 + kRowBlock, at.rows);
          rows_simd(at, g, dx, i0, i1, /*accumulate=*/true);
        },
        /*grain=*/1);
    return;
  }
  // Direct serial scatter (Appendix G without forming Aᵀ); g rows stream
  // sequentially, each nonzero does one vectorized axpy into its dX row.
  for (index_t i = 0; i < a.rows; ++i) {
    const float* grow = g.row(i);
    for (index_t k = a.row_ptr[static_cast<std::size_t>(i)];
         k < a.row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      simd::axpy(dx.row(a.col_idx[static_cast<std::size_t>(k)]), grow,
                 a.values[static_cast<std::size_t>(k)], d);
    }
  }
}

Matrix spmm_csr_transposed_explicit(const Csr& a, const Matrix& g) {
  const Csr at = transpose(a);
  return spmm_csr(at, g);
}

}  // namespace sptx
