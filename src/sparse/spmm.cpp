#include "src/sparse/spmm.hpp"

#include "src/common/parallel.hpp"
#include "src/profiling/flops.hpp"
#include "src/profiling/timer.hpp"

namespace sptx {

namespace {

// Incidence matrices hold only ±1 coefficients, so the multiply in the
// kernel's FMA folds into an add/sub on any optimized implementation (and
// in hardware a multiply by ±1 costs nothing extra). FLOP accounting
// reflects that: 1 FLOP per (nonzero × column) for unit-valued matrices,
// 2 otherwise.
std::int64_t spmm_flops(const Csr& a, index_t dim) {
  for (float v : a.values) {
    if (v != 1.0f && v != -1.0f) return 2 * a.nnz() * dim;
  }
  return a.nnz() * dim;
}

std::int64_t spmm_flops(const Coo& a, index_t dim) {
  for (float v : a.values) {
    if (v != 1.0f && v != -1.0f) return 2 * a.nnz() * dim;
  }
  return a.nnz() * dim;
}

// Plain CSR row loop: for each output row, accumulate val * X[col, :].
void kernel_naive(const Csr& a, const Matrix& x, Matrix& c) {
  const index_t d = x.cols();
  for (index_t i = 0; i < a.rows; ++i) {
    float* crow = c.row(i);
    for (index_t j = 0; j < d; ++j) crow[j] = 0.0f;
    for (index_t k = a.row_ptr[static_cast<std::size_t>(i)];
         k < a.row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const float v = a.values[static_cast<std::size_t>(k)];
      const float* xrow = x.row(a.col_idx[static_cast<std::size_t>(k)]);
      for (index_t j = 0; j < d; ++j) crow[j] += v * xrow[j];
    }
  }
}

// Unrolled-by-4 inner loop over the embedding dimension. With ±1 values the
// multiply folds into add/sub, but we keep the FMA form so the kernel works
// for general sparse matrices too.
inline void axpy_unrolled(float v, const float* __restrict xrow,
                          float* __restrict crow, index_t d) {
  index_t j = 0;
  const index_t d4 = d - (d % 4);
  for (; j < d4; j += 4) {
    crow[j + 0] += v * xrow[j + 0];
    crow[j + 1] += v * xrow[j + 1];
    crow[j + 2] += v * xrow[j + 2];
    crow[j + 3] += v * xrow[j + 3];
  }
  for (; j < d; ++j) crow[j] += v * xrow[j];
}

void kernel_row_unrolled(const Csr& a, const Matrix& x, Matrix& c,
                         index_t i) {
  const index_t d = x.cols();
  float* crow = c.row(i);
  for (index_t j = 0; j < d; ++j) crow[j] = 0.0f;
  for (index_t k = a.row_ptr[static_cast<std::size_t>(i)];
       k < a.row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
    axpy_unrolled(a.values[static_cast<std::size_t>(k)],
                  x.row(a.col_idx[static_cast<std::size_t>(k)]), crow, d);
  }
}

void kernel_unrolled(const Csr& a, const Matrix& x, Matrix& c) {
  for (index_t i = 0; i < a.rows; ++i) kernel_row_unrolled(a, x, c, i);
}

// Cache-blocked kernel: the embedding dimension is processed in column
// panels sized to keep one panel of every touched X row in L1/L2, and
// output rows in blocks so the CSR metadata of a block is reused across
// panels. Pays off when d is large enough that full rows thrash the cache.
void kernel_tiled(const Csr& a, const Matrix& x, Matrix& c) {
  constexpr index_t kPanel = 64;    // floats per column panel (256 B)
  constexpr index_t kRowBlock = 256;  // output rows per block
  const index_t d = x.cols();
  for (index_t i0 = 0; i0 < a.rows; i0 += kRowBlock) {
    const index_t i1 = std::min<index_t>(i0 + kRowBlock, a.rows);
    for (index_t j0 = 0; j0 < d; j0 += kPanel) {
      const index_t j1 = std::min<index_t>(j0 + kPanel, d);
      for (index_t i = i0; i < i1; ++i) {
        float* crow = c.row(i);
        for (index_t j = j0; j < j1; ++j) crow[j] = 0.0f;
        for (index_t k = a.row_ptr[static_cast<std::size_t>(i)];
             k < a.row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
          const float v = a.values[static_cast<std::size_t>(k)];
          const float* xrow =
              x.row(a.col_idx[static_cast<std::size_t>(k)]);
          for (index_t j = j0; j < j1; ++j) crow[j] += v * xrow[j];
        }
      }
    }
  }
}

void kernel_parallel(const Csr& a, const Matrix& x, Matrix& c) {
  parallel_for(0, a.rows,
               [&](index_t i) { kernel_row_unrolled(a, x, c, i); });
}

}  // namespace

void spmm_csr_into(const Csr& a, const Matrix& x, Matrix& c,
                   SpmmKernel kernel) {
  SPTX_CHECK(x.rows() == a.cols,
             "spmm: A is " << a.rows << "x" << a.cols << ", X is "
                           << x.shape_str());
  SPTX_CHECK(c.rows() == a.rows && c.cols() == x.cols(),
             "spmm: output shape " << c.shape_str());
  profiling::ScopedHotspot hotspot("sptx::spmm_csr");
  profiling::count_flops(spmm_flops(a, x.cols()));
  switch (kernel) {
    case SpmmKernel::kNaive:
      kernel_naive(a, x, c);
      break;
    case SpmmKernel::kUnrolled:
      kernel_unrolled(a, x, c);
      break;
    case SpmmKernel::kTiled:
      kernel_tiled(a, x, c);
      break;
    case SpmmKernel::kParallel:
      kernel_parallel(a, x, c);
      break;
  }
}

Matrix spmm_csr(const Csr& a, const Matrix& x, SpmmKernel kernel) {
  Matrix c(a.rows, x.cols());
  spmm_csr_into(a, x, c, kernel);
  return c;
}

Matrix spmm_coo(const Coo& a, const Matrix& x) {
  SPTX_CHECK(x.rows() == a.cols,
             "spmm_coo: A is " << a.rows << "x" << a.cols << ", X is "
                               << x.shape_str());
  profiling::ScopedHotspot hotspot("sptx::spmm_coo");
  profiling::count_flops(spmm_flops(a, x.cols()));
  Matrix c(a.rows, x.cols());
  const index_t d = x.cols();
  for (index_t k = 0; k < a.nnz(); ++k) {
    const index_t r = a.row_idx[static_cast<std::size_t>(k)];
    const float v = a.values[static_cast<std::size_t>(k)];
    axpy_unrolled(v, x.row(a.col_idx[static_cast<std::size_t>(k)]), c.row(r),
                  d);
  }
  return c;
}

void spmm_csr_transposed_accumulate(const Csr& a, const Matrix& g,
                                    Matrix& dx) {
  SPTX_CHECK(g.rows() == a.rows,
             "spmm^T: A is " << a.rows << "x" << a.cols << ", g is "
                             << g.shape_str());
  SPTX_CHECK(dx.rows() == a.cols && dx.cols() == g.cols(),
             "spmm^T: dx shape " << dx.shape_str());
  profiling::ScopedHotspot hotspot("sptx::spmm_csr_backward");
  profiling::count_flops(spmm_flops(a, g.cols()));
  const index_t d = g.cols();
  // Serial scatter over rows. Parallelising this safely needs either
  // atomics or a column partition; on the single-socket targets we profile,
  // the scatter is memory-bound and the serial loop already saturates.
  for (index_t i = 0; i < a.rows; ++i) {
    const float* grow = g.row(i);
    for (index_t k = a.row_ptr[static_cast<std::size_t>(i)];
         k < a.row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      axpy_unrolled(a.values[static_cast<std::size_t>(k)], grow,
                    dx.row(a.col_idx[static_cast<std::size_t>(k)]), d);
    }
  }
}

Matrix spmm_csr_transposed_explicit(const Csr& a, const Matrix& g) {
  const Csr at = transpose(a);
  return spmm_csr(at, g);
}

}  // namespace sptx
