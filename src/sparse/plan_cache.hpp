// Compiled-batch plans and their cache — the plan/execute split.
//
// The paper reduces KGE training to SpMMs over per-batch incidence matrices,
// but the seed implementation rebuilt every incidence matrix from raw
// triplets on every batch of every epoch. This header separates the two
// stages:
//
//  * ScoringRecipe — a model's declaration of which incidence structures its
//    forward pass consumes (which builders + auxiliary index vectors). Pure
//    data: compiling a recipe needs the triplets and the vocabulary sizes,
//    never the model's weights, so compilation can run on a background
//    thread while training executes.
//  * CompiledBatch — one batch compiled against a recipe: the (optionally
//    owned) triplets plus every pre-built CSR the recipe names, with the
//    backward-pass transpose pre-warmed when the SpMM engine would use it.
//    Immutable after compile; shared_ptr so autograd graphs, caches and
//    epoch schedules can share one compilation.
//  * PlanCache — keyed store of CompiledBatches with explicit invalidation.
//    The trainer keys by batch ordinal and invalidates on shuffle /
//    negative-resampling; link-prediction keys by (query, side) to reuse
//    candidate batches across repeated evaluations.
//
// All cache traffic is counted through profiling/counters.hpp so tests can
// assert hit rates and zero-rebuild epochs directly.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/common/thread_annotations.hpp"
#include "src/kg/triplet.hpp"
#include "src/sparse/sparse_matrix.hpp"

namespace sptx::sparse {

/// Batch rows grouped by relation id — the execution order of the fused
/// TransR kernel's relation-blocked batched-GEMM. Group k covers
/// order[offsets[k] .. offsets[k+1]) (row indices into the batch), all of
/// which share relation rels[k], so the relation's projection panel is
/// loaded once per group instead of once per row. Built at plan compilation
/// and cached with the CompiledBatch, it costs nothing on the epochs a
/// PlanCache serves.
struct RelationGroups {
  std::vector<index_t> order;    // batch row ids, grouped by relation
  std::vector<index_t> offsets;  // group k = order[offsets[k], offsets[k+1])
  std::vector<index_t> rels;     // relation id of each group
};

/// Which incidence structures a model's forward pass consumes. Declared by
/// the model (ScoringCoreModel::recipe), executed by CompiledBatch::compile.
struct ScoringRecipe {
  bool hrt = false;                 // build_hrt_incidence_csr (h + r − t)
  bool ht = false;                  // build_ht_incidence_csr (h − t)
  bool relation_selection = false;  // build_relation_selection_csr
  bool head_selection = false;      // build_entity_selection_csr(kHead)
  bool tail_selection = false;      // build_entity_selection_csr(kTail)
  bool shared_triplets = false;     // semiring kernels take the batch itself
  bool relation_indices = false;    // relation_project's per-row index vector
  bool relation_groups = false;     // fused TransR's relation-grouped order
  /// Embedding width the incidence will multiply — used only to decide
  /// whether the backward pass would take the cached-transpose path, in
  /// which case compile() pre-builds the transpose off the hot path.
  /// 0 skips the warm-up.
  index_t dim = 0;
  /// Width of the table the relation-selection matrix multiplies, when it
  /// differs from `dim` (TransR's d_r relation space, TransM's scalar
  /// weights) — keeps the warm-up decision honest per structure. 0 = dim.
  index_t relation_dim = 0;

  bool any_incidence() const {
    return hrt || ht || relation_selection || head_selection || tail_selection;
  }
};

/// One batch compiled against a recipe. Immutable after compile().
class CompiledBatch {
 public:
  /// Compile `batch` per `recipe`. When `copy_triplets` is false the span
  /// must outlive the plan (the trainer's contiguous fast path); ownership
  /// is forced whenever the recipe itself needs the triplets by shared_ptr.
  static std::shared_ptr<const CompiledBatch> compile(
      std::span<const Triplet> batch, const ScoringRecipe& recipe,
      index_t num_entities, index_t num_relations, bool copy_triplets);

  /// Compile a batch the caller already staged (shuffled / k-tiled / eval
  /// candidates); the plan takes ownership.
  static std::shared_ptr<const CompiledBatch> compile_owned(
      std::vector<Triplet>&& batch, const ScoringRecipe& recipe,
      index_t num_entities, index_t num_relations);

  std::span<const Triplet> triplets() const { return view_; }
  index_t size() const { return static_cast<index_t>(view_.size()); }

  /// Accessors SPTX_CHECK that the recipe requested the structure — a miss
  /// means the model's recipe() and forward() disagree.
  const std::shared_ptr<const Csr>& hrt() const;
  const std::shared_ptr<const Csr>& ht() const;
  const std::shared_ptr<const Csr>& relation_selection() const;
  const std::shared_ptr<const Csr>& head_selection() const;
  const std::shared_ptr<const Csr>& tail_selection() const;
  const std::shared_ptr<const std::vector<Triplet>>& shared_triplets() const;
  const std::shared_ptr<const std::vector<index_t>>& relation_indices() const;
  const std::shared_ptr<const RelationGroups>& relation_groups() const;

  /// The owned triplet vector when this plan copied its batch, null when it
  /// views caller storage. The fused kernels capture this in their autograd
  /// nodes so plan-owned triplets survive until backward even if the plan
  /// itself is released.
  const std::shared_ptr<const std::vector<Triplet>>& owned_triplets() const {
    return owned_;
  }

 private:
  CompiledBatch() = default;
  void build(const ScoringRecipe& recipe, index_t num_entities,
             index_t num_relations);

  std::shared_ptr<const std::vector<Triplet>> owned_;  // null when viewing
  std::span<const Triplet> view_;
  std::shared_ptr<const Csr> hrt_;
  std::shared_ptr<const Csr> ht_;
  std::shared_ptr<const Csr> relation_selection_;
  std::shared_ptr<const Csr> head_selection_;
  std::shared_ptr<const Csr> tail_selection_;
  std::shared_ptr<const std::vector<index_t>> relation_indices_;
  std::shared_ptr<const RelationGroups> relation_groups_;
};

/// Keyed store of compiled plans with explicit invalidation. Thread-safe:
/// the prefetch thread inserts next-epoch plans while the training thread
/// may still be reading — entries are shared_ptr so a concurrently evicted
/// plan stays alive for whoever holds it.
class PlanCache {
 public:
  using Key = std::uint64_t;

  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t invalidations = 0;  // invalidate() calls that dropped entries
    std::int64_t entries = 0;        // plans resident right now
  };

  /// The cached plan for `key`, or null (counts a hit or a miss).
  std::shared_ptr<const CompiledBatch> find(Key key) const SPTX_EXCLUDES(mu_);

  void put(Key key, std::shared_ptr<const CompiledBatch> plan)
      SPTX_EXCLUDES(mu_);

  /// put(), but only while fewer than `max_entries` plans are resident.
  /// The capacity check and the insert run under one lock acquisition, so
  /// concurrent callers can never overshoot the cap the way a separate
  /// stats()-then-put() sequence could. Returns true when inserted.
  bool put_bounded(Key key, std::shared_ptr<const CompiledBatch> plan,
                   std::int64_t max_entries) SPTX_EXCLUDES(mu_);

  /// find() or compile-and-put in one step.
  std::shared_ptr<const CompiledBatch> get_or_compile(
      Key key, std::span<const Triplet> batch, const ScoringRecipe& recipe,
      index_t num_entities, index_t num_relations, bool copy_triplets)
      SPTX_EXCLUDES(mu_);

  /// Drop every entry — the shuffle / resample_negatives hook. Plans still
  /// referenced elsewhere (the executing epoch) stay alive.
  void invalidate() SPTX_EXCLUDES(mu_);

  Stats stats() const SPTX_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::unordered_map<Key, std::shared_ptr<const CompiledBatch>> entries_
      SPTX_GUARDED_BY(mu_);
  mutable std::int64_t hits_ SPTX_GUARDED_BY(mu_) = 0;
  mutable std::int64_t misses_ SPTX_GUARDED_BY(mu_) = 0;
  std::int64_t invalidations_ SPTX_GUARDED_BY(mu_) = 0;
};

}  // namespace sptx::sparse
