#include "src/sparse/sparse_matrix.hpp"

namespace sptx {

namespace {
bool all_unit(const std::vector<float>& values) {
  for (float v : values) {
    if (v != 1.0f && v != -1.0f) return false;
  }
  return true;
}
}  // namespace

bool Coo::unit_values() const {
  if (unit_values_cache < 0) unit_values_cache = all_unit(values) ? 1 : 0;
  return unit_values_cache == 1;
}

bool Csr::unit_values() const {
  if (unit_values_cache < 0) unit_values_cache = all_unit(values) ? 1 : 0;
  return unit_values_cache == 1;
}

const Csr& Csr::transposed() const {
  if (!transpose_cache) {
    auto t = std::make_shared<Csr>(transpose(*this));
    // Force the ±1 scan now (transpose preserves values, so the flag
    // transfers): consumers query unit_values() on the transpose from
    // inside parallel regions, and the lazy scan must not race there.
    t->unit_values_cache = unit_values() ? 1 : 0;
    transpose_cache = std::move(t);
  }
  return *transpose_cache;
}

Csr coo_to_csr(const Coo& coo) {
  Csr csr;
  csr.rows = coo.rows;
  csr.cols = coo.cols;
  csr.row_ptr.assign(static_cast<std::size_t>(coo.rows) + 1, 0);
  csr.col_idx.resize(coo.values.size());
  csr.values.resize(coo.values.size());

  for (index_t r : coo.row_idx) csr.row_ptr[static_cast<std::size_t>(r) + 1]++;
  for (index_t r = 0; r < coo.rows; ++r)
    csr.row_ptr[static_cast<std::size_t>(r) + 1] +=
        csr.row_ptr[static_cast<std::size_t>(r)];

  std::vector<index_t> cursor(csr.row_ptr.begin(), csr.row_ptr.end() - 1);
  for (index_t k = 0; k < coo.nnz(); ++k) {
    const index_t r = coo.row_idx[static_cast<std::size_t>(k)];
    const index_t dst = cursor[static_cast<std::size_t>(r)]++;
    csr.col_idx[static_cast<std::size_t>(dst)] =
        coo.col_idx[static_cast<std::size_t>(k)];
    csr.values[static_cast<std::size_t>(dst)] =
        coo.values[static_cast<std::size_t>(k)];
  }
  return csr;
}

Coo csr_to_coo(const Csr& csr) {
  Coo coo;
  coo.rows = csr.rows;
  coo.cols = csr.cols;
  coo.reserve(static_cast<std::size_t>(csr.nnz()));
  for (index_t r = 0; r < csr.rows; ++r) {
    for (index_t k = csr.row_ptr[static_cast<std::size_t>(r)];
         k < csr.row_ptr[static_cast<std::size_t>(r) + 1]; ++k) {
      coo.push(r, csr.col_idx[static_cast<std::size_t>(k)],
               csr.values[static_cast<std::size_t>(k)]);
    }
  }
  return coo;
}

Csr transpose(const Csr& a) {
  Csr t;
  t.rows = a.cols;
  t.cols = a.rows;
  t.row_ptr.assign(static_cast<std::size_t>(a.cols) + 1, 0);
  t.col_idx.resize(a.values.size());
  t.values.resize(a.values.size());

  for (index_t c : a.col_idx) t.row_ptr[static_cast<std::size_t>(c) + 1]++;
  for (index_t r = 0; r < t.rows; ++r)
    t.row_ptr[static_cast<std::size_t>(r) + 1] +=
        t.row_ptr[static_cast<std::size_t>(r)];

  std::vector<index_t> cursor(t.row_ptr.begin(), t.row_ptr.end() - 1);
  for (index_t r = 0; r < a.rows; ++r) {
    for (index_t k = a.row_ptr[static_cast<std::size_t>(r)];
         k < a.row_ptr[static_cast<std::size_t>(r) + 1]; ++k) {
      const index_t c = a.col_idx[static_cast<std::size_t>(k)];
      const index_t dst = cursor[static_cast<std::size_t>(c)]++;
      t.col_idx[static_cast<std::size_t>(dst)] = r;
      t.values[static_cast<std::size_t>(dst)] =
          a.values[static_cast<std::size_t>(k)];
    }
  }
  return t;
}

Matrix to_dense(const Csr& a) {
  Matrix d(a.rows, a.cols);
  for (index_t r = 0; r < a.rows; ++r) {
    for (index_t k = a.row_ptr[static_cast<std::size_t>(r)];
         k < a.row_ptr[static_cast<std::size_t>(r) + 1]; ++k) {
      d.at(r, a.col_idx[static_cast<std::size_t>(k)]) +=
          a.values[static_cast<std::size_t>(k)];
    }
  }
  return d;
}

Matrix to_dense(const Coo& a) {
  Matrix d(a.rows, a.cols);
  for (index_t k = 0; k < a.nnz(); ++k) {
    d.at(a.row_idx[static_cast<std::size_t>(k)],
         a.col_idx[static_cast<std::size_t>(k)]) +=
        a.values[static_cast<std::size_t>(k)];
  }
  return d;
}

}  // namespace sptx
