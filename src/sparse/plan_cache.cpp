#include "src/sparse/plan_cache.hpp"

#include <utility>

#include "src/profiling/counters.hpp"
#include "src/sparse/incidence.hpp"
#include "src/sparse/spmm.hpp"

namespace sptx::sparse {

namespace {

/// Pre-build the backward-pass transpose when the SpMM engine would take the
/// cached-transpose path for this shape: the build then happens at plan
/// compilation (possibly on the prefetch thread) instead of inside the first
/// backward of the epoch.
void maybe_warm_transpose(const Csr& a, index_t dim) {
  if (dim > 0 && spmm_backward_uses_transpose(a, dim)) a.transposed();
}

}  // namespace

void CompiledBatch::build(const ScoringRecipe& recipe, index_t num_entities,
                          index_t num_relations) {
  if (recipe.hrt) {
    hrt_ = std::make_shared<const Csr>(
        build_hrt_incidence_csr(view_, num_entities, num_relations));
    maybe_warm_transpose(*hrt_, recipe.dim);
  }
  if (recipe.ht) {
    ht_ = std::make_shared<const Csr>(
        build_ht_incidence_csr(view_, num_entities));
    maybe_warm_transpose(*ht_, recipe.dim);
  }
  if (recipe.relation_selection) {
    relation_selection_ = std::make_shared<const Csr>(
        build_relation_selection_csr(view_, num_relations));
    maybe_warm_transpose(
        *relation_selection_,
        recipe.relation_dim > 0 ? recipe.relation_dim : recipe.dim);
  }
  if (recipe.head_selection) {
    head_selection_ = std::make_shared<const Csr>(
        build_entity_selection_csr(view_, num_entities, TripletSlot::kHead));
    maybe_warm_transpose(*head_selection_, recipe.dim);
  }
  if (recipe.tail_selection) {
    tail_selection_ = std::make_shared<const Csr>(
        build_entity_selection_csr(view_, num_entities, TripletSlot::kTail));
    maybe_warm_transpose(*tail_selection_, recipe.dim);
  }
  if (recipe.relation_indices) {
    auto idx = std::make_shared<std::vector<index_t>>();
    idx->reserve(view_.size());
    for (const Triplet& t : view_) idx->push_back(t.relation);
    relation_indices_ = std::move(idx);
  }
  if (recipe.relation_groups) {
    // Counting sort by relation id: O(M + R), stable (rows of one relation
    // keep batch order, which keeps the fused backward deterministic).
    auto groups = std::make_shared<RelationGroups>();
    const index_t m = static_cast<index_t>(view_.size());
    std::vector<index_t> start(static_cast<std::size_t>(num_relations) + 1, 0);
    for (const Triplet& t : view_) ++start[static_cast<std::size_t>(t.relation) + 1];
    for (index_t r = 0; r < num_relations; ++r)
      start[static_cast<std::size_t>(r) + 1] += start[static_cast<std::size_t>(r)];
    groups->order.resize(static_cast<std::size_t>(m));
    std::vector<index_t> cursor(start.begin(), start.end() - 1);
    for (index_t i = 0; i < m; ++i) {
      const index_t r = view_[static_cast<std::size_t>(i)].relation;
      groups->order[static_cast<std::size_t>(cursor[static_cast<std::size_t>(r)]++)] = i;
    }
    for (index_t r = 0; r < num_relations; ++r) {
      const index_t begin = start[static_cast<std::size_t>(r)];
      const index_t end = start[static_cast<std::size_t>(r) + 1];
      if (begin == end) continue;
      groups->rels.push_back(r);
      groups->offsets.push_back(begin);
    }
    groups->offsets.push_back(m);
    relation_groups_ = std::move(groups);
  }
  profiling::count_event(profiling::Counter::kPlanCompiles);
}

std::shared_ptr<const CompiledBatch> CompiledBatch::compile(
    std::span<const Triplet> batch, const ScoringRecipe& recipe,
    index_t num_entities, index_t num_relations, bool copy_triplets) {
  if (copy_triplets || recipe.shared_triplets) {
    return compile_owned(std::vector<Triplet>(batch.begin(), batch.end()),
                         recipe, num_entities, num_relations);
  }
  auto plan = std::shared_ptr<CompiledBatch>(new CompiledBatch());
  plan->view_ = batch;
  plan->build(recipe, num_entities, num_relations);
  return plan;
}

std::shared_ptr<const CompiledBatch> CompiledBatch::compile_owned(
    std::vector<Triplet>&& batch, const ScoringRecipe& recipe,
    index_t num_entities, index_t num_relations) {
  auto plan = std::shared_ptr<CompiledBatch>(new CompiledBatch());
  plan->owned_ =
      std::make_shared<const std::vector<Triplet>>(std::move(batch));
  plan->view_ = *plan->owned_;
  plan->build(recipe, num_entities, num_relations);
  return plan;
}

const std::shared_ptr<const Csr>& CompiledBatch::hrt() const {
  SPTX_CHECK(hrt_ != nullptr, "plan compiled without hrt incidence");
  return hrt_;
}

const std::shared_ptr<const Csr>& CompiledBatch::ht() const {
  SPTX_CHECK(ht_ != nullptr, "plan compiled without ht incidence");
  return ht_;
}

const std::shared_ptr<const Csr>& CompiledBatch::relation_selection() const {
  SPTX_CHECK(relation_selection_ != nullptr,
             "plan compiled without relation selection");
  return relation_selection_;
}

const std::shared_ptr<const Csr>& CompiledBatch::head_selection() const {
  SPTX_CHECK(head_selection_ != nullptr,
             "plan compiled without head selection");
  return head_selection_;
}

const std::shared_ptr<const Csr>& CompiledBatch::tail_selection() const {
  SPTX_CHECK(tail_selection_ != nullptr,
             "plan compiled without tail selection");
  return tail_selection_;
}

const std::shared_ptr<const std::vector<Triplet>>&
CompiledBatch::shared_triplets() const {
  SPTX_CHECK(owned_ != nullptr, "plan compiled without owned triplets");
  return owned_;
}

const std::shared_ptr<const std::vector<index_t>>&
CompiledBatch::relation_indices() const {
  SPTX_CHECK(relation_indices_ != nullptr,
             "plan compiled without relation indices");
  return relation_indices_;
}

const std::shared_ptr<const RelationGroups>& CompiledBatch::relation_groups()
    const {
  SPTX_CHECK(relation_groups_ != nullptr,
             "plan compiled without relation groups");
  return relation_groups_;
}

std::shared_ptr<const CompiledBatch> PlanCache::find(Key key) const {
  MutexLock lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  profiling::count_event(profiling::Counter::kPlanCacheHits);
  return it->second;
}

void PlanCache::put(Key key, std::shared_ptr<const CompiledBatch> plan) {
  MutexLock lock(mu_);
  entries_[key] = std::move(plan);
}

bool PlanCache::put_bounded(Key key, std::shared_ptr<const CompiledBatch> plan,
                            std::int64_t max_entries) {
  MutexLock lock(mu_);
  if (static_cast<std::int64_t>(entries_.size()) >= max_entries) return false;
  entries_[key] = std::move(plan);
  return true;
}

std::shared_ptr<const CompiledBatch> PlanCache::get_or_compile(
    Key key, std::span<const Triplet> batch, const ScoringRecipe& recipe,
    index_t num_entities, index_t num_relations, bool copy_triplets) {
  if (auto plan = find(key)) return plan;
  auto plan = CompiledBatch::compile(batch, recipe, num_entities,
                                     num_relations, copy_triplets);
  put(key, plan);
  return plan;
}

void PlanCache::invalidate() {
  MutexLock lock(mu_);
  if (!entries_.empty()) {
    ++invalidations_;
    profiling::count_event(profiling::Counter::kPlanInvalidations);
  }
  entries_.clear();
}

PlanCache::Stats PlanCache::stats() const {
  MutexLock lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.invalidations = invalidations_;
  s.entries = static_cast<std::int64_t>(entries_.size());
  return s;
}

}  // namespace sptx::sparse
