// Incidence-matrix builders — §4.2 of the paper.
//
// These are the core reformulation: a batch of M triplets becomes a sparse
// matrix A such that one SpMM with the embedding matrix computes the batch's
// translation expression:
//
//   * ht  (§4.2.1): A ∈ {−1,0,1}^{M×N}; row m has +1 at head(m), −1 at
//     tail(m). A·E = head − tail for every triplet. Exactly 2 nnz per row.
//   * hrt (§4.2.2): A ∈ {−1,0,1}^{M×(N+R)}; row m additionally has +1 at
//     N + rel(m), and E stacks entity embeddings over relation embeddings.
//     A·[E;R] = head + rel − tail. Exactly 3 nnz per row.
//
// Appendix B: sparsity is independent of the graph's density, because A is
// an incidence (triplet-per-row) matrix, not an adjacency matrix.
//
// Self-loop caveat: a triplet with head == tail contributes +1 and −1 in the
// same column. We keep both entries (coefficients sum on multiply), so the
// algebra A·E = h − t (+ r) holds exactly even for self-loops.
#pragma once

#include <span>

#include "src/kg/triplet.hpp"
#include "src/sparse/sparse_matrix.hpp"

namespace sptx {

/// Build the ht incidence matrix (head − tail) for a batch of triplets.
/// `num_entities` fixes the column count N.
Coo build_ht_incidence(std::span<const Triplet> batch, index_t num_entities);

/// Build the hrt incidence matrix (head + relation − tail). Columns are
/// N entities followed by R relations; relation indices are offset by N.
Coo build_hrt_incidence(std::span<const Triplet> batch, index_t num_entities,
                        index_t num_relations);

/// CSR convenience wrappers (CPU SpMM consumes CSR, §5.5).
Csr build_ht_incidence_csr(std::span<const Triplet> batch,
                           index_t num_entities);
Csr build_hrt_incidence_csr(std::span<const Triplet> batch,
                            index_t num_entities, index_t num_relations);

/// Which triplet slot an entity-selection matrix picks.
enum class TripletSlot { kHead, kTail };

/// (M×N) one-hot selection matrix: row m has +1 at head(m) or tail(m).
/// SpMM with the entity table gathers the per-triplet rows; the transposed
/// SpMM scatters their gradients — keeps per-side gathers (TransD's
/// asymmetric projections) inside the sparse formulation.
Csr build_entity_selection_csr(std::span<const Triplet> batch,
                               index_t num_entities, TripletSlot slot);

/// (M×R) one-hot relation-selection matrix: row m has +1 at rel(m). SpMM
/// with the relation table gathers per-triplet relation rows; the
/// transposed SpMM scatters their gradients (TransH / TransR / TransA / …).
Csr build_relation_selection_csr(std::span<const Triplet> batch,
                                 index_t num_relations);

/// Sorted unique entity ids appearing as head or tail across both spans —
/// the nonzero column support of the batch's incidence structure restricted
/// to the entity block. The distributed trainer's sparse all-reduce moves
/// only these embedding rows (gradients outside the support are identically
/// zero because every backward scatter lands inside it).
std::vector<index_t> touched_entity_ids(std::span<const Triplet> a,
                                        std::span<const Triplet> b);

/// Sorted unique relation ids across both spans (the relation-block
/// counterpart of touched_entity_ids).
std::vector<index_t> touched_relation_ids(std::span<const Triplet> a,
                                          std::span<const Triplet> b);

}  // namespace sptx
