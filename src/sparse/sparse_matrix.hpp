// Sparse matrix storage: COO and CSR.
//
// The paper stores the triplet incidence matrix A ∈ {−1,0,1}^{M×(N+R)} in
// CSR for the CPU SpMM (iSpLib) and COO for the GPU SpMM (DGL g-SpMM),
// §5.5. Both formats are provided; conversion is O(nnz).
// Values are float so the same types serve general sparse matrices, but
// incidence matrices only ever hold ±1.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/error.hpp"
#include "src/tensor/matrix.hpp"

namespace sptx {

/// Coordinate-format sparse matrix. Entries need not be sorted unless
/// stated; incidence builders emit row-major sorted entries.
struct Coo {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<index_t> row_idx;
  std::vector<index_t> col_idx;
  std::vector<float> values;

  index_t nnz() const { return static_cast<index_t>(values.size()); }
  void reserve(std::size_t n) {
    row_idx.reserve(n);
    col_idx.reserve(n);
    values.reserve(n);
  }
  void push(index_t r, index_t c, float v) {
    SPTX_DCHECK(r >= 0 && r < rows && c >= 0 && c < cols, "coo entry");
    row_idx.push_back(r);
    col_idx.push_back(c);
    values.push_back(v);
  }

  /// True when every stored coefficient is ±1 (the incidence-matrix
  /// property the SpMM kernels exploit). Scanned once, then cached —
  /// callers must treat the matrix as immutable after the first query.
  bool unit_values() const;

  /// Internal cache for unit_values(): -1 unknown, else 0/1.
  mutable std::int8_t unit_values_cache = -1;
};

/// Compressed-sparse-row matrix.
struct Csr {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<index_t> row_ptr;  // size rows+1
  std::vector<index_t> col_idx;  // size nnz
  std::vector<float> values;     // size nnz

  index_t nnz() const { return static_cast<index_t>(values.size()); }
  index_t row_nnz(index_t r) const { return row_ptr[r + 1] - row_ptr[r]; }

  /// True when every stored coefficient is ±1 (see Coo::unit_values).
  bool unit_values() const;

  /// Aᵀ in CSR form, built lazily on first use and cached, so a matrix that
  /// serves both a forward SpMM and its backward pays the O(nnz + cols)
  /// transpose once. Requires the matrix to be immutable after construction
  /// (true for the incidence builders); the first call is not thread-safe —
  /// the trainer takes it on the driving thread before any parallel region.
  const Csr& transposed() const;

  /// Internal caches (treat as private; copying a Csr shares them).
  mutable std::int8_t unit_values_cache = -1;
  mutable std::shared_ptr<const Csr> transpose_cache;
};

/// O(nnz) counting conversion; preserves within-row order of `coo`.
Csr coo_to_csr(const Coo& coo);

/// Inverse conversion (row-major sorted output).
Coo csr_to_coo(const Csr& csr);

/// Explicit transpose in CSR form (counting sort over columns). The SpMM
/// backward pass normally avoids this by scattering (Appendix G), but the
/// explicit transpose is useful for tests and the two-pass ablation.
Csr transpose(const Csr& a);

/// Dense rendering for tests.
Matrix to_dense(const Csr& a);
Matrix to_dense(const Coo& a);

}  // namespace sptx
