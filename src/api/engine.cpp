#include "src/api/engine.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "src/common/fault.hpp"
#include "src/distributed/proc_ddp.hpp"
#include "src/models/checkpoint.hpp"
#include "src/profiling/counters.hpp"
#include "src/runtime/task_pool.hpp"

namespace sptx {

Engine::Engine(const Options& options) : config_(RuntimeConfig::from_env()) {
  for (const auto& [name, value] : options.config_overrides)
    config_.set(name, value);
  if (options.install_process_config) config::install(config_);
  // Pick up SPTX_FAULT_SPEC/SPTX_FAULT_SEED for env-driven fault drills.
  fault::init_from_config();
}

models::KgeModel& Engine::create_model(const ModelSpec& spec,
                                       index_t num_entities,
                                       index_t num_relations) {
  model_ = models::make_model(spec, num_entities, num_relations);
  spec_ = spec;
  num_entities_ = num_entities;
  num_relations_ = num_relations;
  return *model_;
}

models::KgeModel& Engine::load_model(const ModelSpec& spec,
                                     index_t num_entities,
                                     index_t num_relations,
                                     const std::string& checkpoint_path) {
  create_model(spec, num_entities, num_relations);
  models::load_checkpoint(*model_, checkpoint_path);
  return *model_;
}

models::KgeModel& Engine::model() {
  SPTX_CHECK(model_ != nullptr, "no model — call create_model/load_model");
  return *model_;
}

const ModelSpec& Engine::spec() const {
  SPTX_CHECK(model_ != nullptr, "no model — call create_model/load_model");
  return spec_;
}

void Engine::save(const std::string& path) {
  models::save_checkpoint(model(), path);
}

train::TrainResult Engine::train(
    const TripletStore& data, const train::TrainConfig& config,
    const std::function<void(int, float)>& on_epoch) {
  return train::train(model(), data, config, config_, on_epoch);
}

distributed::DdpResult Engine::train_ddp(
    const kg::TripletSource& data, const distributed::DdpConfig& config) {
  SPTX_CHECK(model_ != nullptr, "no model — call create_model first "
                                "(train_ddp trains the engine's spec from "
                                "fresh per-worker replicas)");
  const ModelSpec spec = spec_;
  // Dispatch on the resolved execution mode: "procs" runs the supervised
  // multi-process executor (proc_ddp.cpp), anything else the in-process
  // threaded one. Both initialize replicas from Rng(config.seed) through
  // the same factories, so the two modes are bit-identical.
  distributed::DdpResult result;
  if (distributed::resolve(config, config_).mode == "procs") {
    result = distributed::train_ddp_procs(spec, data, config, config_);
  } else {
    // Replicas are built exactly the way distributed::train_ddp builds
    // them: one factory invocation per worker, each drawing the initial
    // weights from the Rng the trainer seeds — so results are bit-identical
    // to a caller passing this same factory to the free function.
    result = distributed::train_ddp(
        [&](Rng& rng) {
          return spec.framework == "dense"
                     ? models::make_dense_model(
                           spec.family, data.num_entities(),
                           data.num_relations(), spec.config, rng)
                     : models::make_sparse_model(
                           spec.family, data.num_entities(),
                           data.num_relations(), spec.config, rng);
        },
        data, config, config_);
  }
  // Adopt the trained replica as the engine's model.
  model_ = std::move(result.model);
  num_entities_ = data.num_entities();
  num_relations_ = data.num_relations();
  return result;
}

namespace {

/// Cheap content identity for a dataset's evaluation inputs: vocabulary
/// sizes plus every test triplet (the cached candidate batches are a pure
/// function of exactly these). Never a pointer — addresses get recycled.
std::uint64_t eval_identity(const kg::Dataset& dataset) {
  TripletHash h;
  std::uint64_t acc =
      0x9E3779B97F4A7C15ULL ^
      (static_cast<std::uint64_t>(dataset.num_entities()) * 0x100000001B3ULL) ^
      static_cast<std::uint64_t>(dataset.num_relations());
  for (const Triplet& t : dataset.test.triplets())
    acc = (acc * 0x100000001B3ULL) ^ h(t);
  return acc == 0 ? 1 : acc;  // 0 is the "no cache yet" sentinel
}

}  // namespace

eval::RankingMetrics Engine::evaluate(const kg::Dataset& dataset,
                                      const eval::EvalConfig& config) {
  eval::EvalConfig resolved = config;
  if (resolved.plan_cache == nullptr &&
      config_.flag_or("SPTX_EVAL_PLAN_CACHE", false)) {
    const std::uint64_t fingerprint = eval_identity(dataset);
    if (eval_fingerprint_ != fingerprint) {
      eval_plans_ = std::make_unique<sparse::PlanCache>();
      eval_fingerprint_ = fingerprint;
    }
    resolved.plan_cache = eval_plans_.get();
  }
  return eval::evaluate(model(), dataset, resolved);
}

std::shared_ptr<const models::KgeModel> Engine::freeze() {
  return models::freeze(model(), spec_);
}

std::shared_ptr<serve::InferenceSession> Engine::open_session(
    const serve::SessionOptions& options) {
  const serve::SessionOptions resolved = serve::resolve(options, config_);
  auto snapshot = serve::make_serving_snapshot(
      freeze(), resolved.ann, resolved.ann_min_entities,
      models::next_snapshot_version());
  auto session =
      std::make_shared<serve::InferenceSession>(std::move(snapshot), resolved);
  MutexLock lock(sessions_mu_);
  sessions_.erase(std::remove_if(sessions_.begin(), sessions_.end(),
                                 [](const auto& w) { return w.expired(); }),
                  sessions_.end());
  sessions_.push_back(session);
  return session;
}

std::uint64_t Engine::publish(const serve::SessionOptions& options) {
  const serve::SessionOptions resolved = serve::resolve(options, config_);
  // Freeze + index build happen HERE, on the publisher's thread — live
  // sessions keep answering from the old snapshot the whole time. Only the
  // final pointer flip is visible to them.
  const models::VersionedModel frozen = models::freeze_versioned(model(), spec_);
  auto snapshot = serve::make_serving_snapshot(
      frozen.model, resolved.ann, resolved.ann_min_entities, frozen.version);
  // Fan-out holds the registry lock so a session opened concurrently either
  // registers before the sweep (and receives this snapshot) or opens after
  // (and freezes the same newest weights on open).
  MutexLock lock(sessions_mu_);
  for (const auto& weak : sessions_)
    if (auto session = weak.lock()) session->install(snapshot);
  published_version_ = frozen.version;
  ++publishes_;
  return frozen.version;
}

namespace {

void json_escape_into(std::ostringstream& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
}

}  // namespace

std::string Engine::health_json() const {
  // Aggregate serving traffic over the sessions still alive. The registry
  // is snapshotted under its lock; the sessions themselves are queried
  // outside it (they are independently thread-safe, and holding the
  // registry lock across their stats() calls would serialize the health
  // probe against publish() for no benefit).
  std::vector<std::shared_ptr<serve::InferenceSession>> live_sessions;
  std::uint64_t published_version = 0;
  std::int64_t publishes = 0;
  {
    MutexLock lock(sessions_mu_);
    live_sessions.reserve(sessions_.size());
    for (const auto& weak : sessions_)
      if (auto session = weak.lock())
        live_sessions.push_back(std::move(session));
    published_version = published_version_;
    publishes = publishes_;
  }
  int live = 0;
  serve::SessionStats total;
  for (const auto& session : live_sessions) {
    ++live;
    const serve::SessionStats s = session->stats();
    total.queries += s.queries;
    total.triplets_scored += s.triplets_scored;
    total.rejected += s.rejected;
    total.topk_ann += s.topk_ann;
    total.topk_brute += s.topk_brute;
    total.ann_candidates += s.ann_candidates;
    total.installs += s.installs;
    total.batcher.rejected_queue_full += s.batcher.rejected_queue_full;
    total.batcher.rejected_deadline += s.batcher.rejected_deadline;
    total.batcher.shed_expired += s.batcher.shed_expired;
    total.batcher.batches_executed += s.batcher.batches_executed;
    total.batcher.coalesced_requests += s.batcher.coalesced_requests;
  }
  const bool faults = fault::active();
  const bool degraded =
      faults || total.rejected > 0 || total.batcher.rejected_queue_full > 0 ||
      total.batcher.rejected_deadline > 0;

  std::ostringstream out;
  out << "{\n  \"status\": \"" << (degraded ? "degraded" : "ok") << "\",\n";
  out << "  \"model\": {\"loaded\": " << (model_ ? "true" : "false");
  if (model_) {
    out << ", \"family\": \"";
    json_escape_into(out, spec_.family);
    out << "\", \"framework\": \"";
    json_escape_into(out, spec_.framework);
    out << "\", \"entities\": " << num_entities_
        << ", \"relations\": " << num_relations_;
  }
  out << "},\n";
  out << "  \"fault_injection\": {\"active\": " << (faults ? "true" : "false")
      << ", \"spec\": \"";
  json_escape_into(out, fault::spec());
  out << "\"},\n";
  // The shared task runtime's gauges: pool mode/width, live queue depth,
  // steal ratio, and per-class submitted/executed/stolen counts — an
  // oversubscribed or starved pool is visible from `sptx health` without
  // attaching a profiler.
  out << "  \"runtime\": " << runtime::TaskPool::instance().stats_json()
      << ",\n";
  // Multi-process DDP: worker liveness, respawn traffic, per-rank heartbeat
  // ages and transport totals for the current (or last) procs-mode run —
  // the operator's first stop when a distributed run degrades (see the
  // README's reliability runbook).
  out << "  \"ddp\": " << distributed::ddp_health_json() << ",\n";
  out << "  \"serving\": {\"sessions_open\": " << live
      << ", \"queries\": " << total.queries
      << ", \"triplets_scored\": " << total.triplets_scored
      << ", \"rejected\": " << total.rejected
      << ", \"rejected_queue_full\": " << total.batcher.rejected_queue_full
      << ", \"rejected_deadline\": " << total.batcher.rejected_deadline
      << ", \"shed_expired\": " << total.batcher.shed_expired
      << ", \"batches_executed\": " << total.batcher.batches_executed
      << ", \"coalesced_requests\": " << total.batcher.coalesced_requests
      << ", \"topk_ann\": " << total.topk_ann
      << ", \"topk_brute\": " << total.topk_brute
      << ", \"ann_candidates\": " << total.ann_candidates
      << ", \"installs\": " << total.installs
      << ", \"published_version\": " << published_version
      << ", \"publishes\": " << publishes << "},\n";
  // Process-wide structural-event counters, printed under their stable
  // names (profiling::kCounterNames — the lint keeps enum and table
  // aligned).
  out << "  \"counters\": {";
  for (int c = 0; c < static_cast<int>(profiling::Counter::kNumCounters);
       ++c) {
    const auto counter = static_cast<profiling::Counter>(c);
    if (c > 0) out << ", ";
    out << '"' << profiling::counter_name(counter)
        << "\": " << profiling::counter_value(counter);
  }
  out << "}\n}";
  return out.str();
}

}  // namespace sptx
