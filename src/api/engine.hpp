// sptx::Engine — the unified public facade over the library's lifecycle.
//
// Before this header, a caller juggled five surfaces: the model factories,
// TrainConfig/DdpConfig/EvalConfig free functions, the checkpoint pair, and
// ~15 SPTX_* environment variables read ad hoc deep inside the library. The
// Engine collapses that into one object with one configuration story:
//
//   sptx::Engine engine;                            // snapshots SPTX_* env
//   engine.create_model({.family = "TransE"}, n, r);
//   engine.train(dataset.train, train_config);
//   engine.evaluate(dataset);
//   engine.save("model.sptxc");
//   auto session = engine.open_session();           // frozen snapshot
//   session->top_tails(head, rel, 10);              // from any thread
//
// Configuration: the Engine captures a RuntimeConfig snapshot exactly once
// at construction (environment + Options overrides). Every wrapped call
// resolves its config-struct against that snapshot — nothing inside an
// Engine-driven run reads the environment again. By default the snapshot is
// also installed process-wide so the kernel-dispatch knobs
// (SPTX_SPMM_KERNEL, SPTX_NO_SIMD, …) consulted below the config-passing
// layers see the same values.
//
// Compatibility: train()/train_ddp()/evaluate() here are thin wrappers over
// the legacy free functions — same loop, same RNG stream, bit-identical
// results (asserted by tests/test_engine.cpp). The free functions remain
// supported; they resolve against the process-wide snapshot instead.
//
// Serving: open_session() freezes the current model (models/snapshot.hpp)
// and returns a thread-safe serve::InferenceSession over the frozen
// replica. Sessions are independent of the engine afterwards — keep
// training, save, or destroy the engine; open sessions are unaffected.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/runtime_config.hpp"
#include "src/common/thread_annotations.hpp"
#include "src/distributed/ddp.hpp"
#include "src/eval/link_prediction.hpp"
#include "src/kg/dataset.hpp"
#include "src/models/model.hpp"
#include "src/models/snapshot.hpp"
#include "src/serve/session.hpp"
#include "src/train/trainer.hpp"

namespace sptx {

using models::ModelSpec;

class Engine {
 public:
  struct Options {
    /// (knob, value) overrides applied on top of the environment snapshot,
    /// e.g. {{"SPTX_SPMM_KERNEL", "simd"}, {"SPTX_PLAN_CACHE", "0"}}.
    /// Validated against the registry — a typo throws at construction.
    std::vector<std::pair<std::string, std::string>> config_overrides;
    /// Install this engine's snapshot as the process-wide config
    /// (config::install) so kernel-dispatch sites see the same values.
    /// With several engines alive, the last constructed wins there; their
    /// train/eval/serve calls still use their own snapshots.
    bool install_process_config = true;
  };

  /// Snapshot the environment, apply no overrides.
  Engine() : Engine(Options{}) {}
  explicit Engine(const Options& options);

  /// The frozen-at-construction configuration snapshot.
  const RuntimeConfig& config() const { return config_; }
  /// Effective configuration as JSON (logging / reproducibility).
  std::string config_json() const { return config_.to_json(); }

  // ---- model lifecycle ----------------------------------------------------
  /// Build a fresh model for a vocabulary; the engine keeps the spec so
  /// checkpoints and snapshots can rebuild the architecture.
  models::KgeModel& create_model(const ModelSpec& spec, index_t num_entities,
                                 index_t num_relations);

  /// create_model + checkpoint restore in one step.
  models::KgeModel& load_model(const ModelSpec& spec, index_t num_entities,
                               index_t num_relations,
                               const std::string& checkpoint_path);

  bool has_model() const { return model_ != nullptr; }
  models::KgeModel& model();
  const ModelSpec& spec() const;

  /// Checkpoint the current model (models::save_checkpoint format).
  void save(const std::string& path);

  // ---- training / evaluation ---------------------------------------------
  /// Train the engine's model. Bit-identical to train::train with the same
  /// snapshot; the callback fires per epoch.
  train::TrainResult train(const TripletStore& data,
                           const train::TrainConfig& config = {},
                           const std::function<void(int, float)>& on_epoch = {});

  /// Sharded data-parallel training from the engine's spec (replicas are
  /// constructed per worker exactly as distributed::train_ddp would).
  /// The trained replica becomes the engine's model; DdpResult::model is
  /// moved from accordingly.
  distributed::DdpResult train_ddp(const kg::TripletSource& data,
                                   const distributed::DdpConfig& config = {});

  /// Filtered link prediction on `dataset.test`. With SPTX_EVAL_PLAN_CACHE
  /// on (and no caller-supplied cache), repeated evaluations reuse staged
  /// candidate batches through an engine-owned plan cache.
  eval::RankingMetrics evaluate(const kg::Dataset& dataset,
                                const eval::EvalConfig& config = {});

  // ---- serving ------------------------------------------------------------
  /// Freeze the current model and open a thread-safe inference session
  /// over the frozen replica. `options` is resolved against the engine
  /// snapshot (SPTX_SERVE_* / SPTX_ANN_* knobs); the session's clustered
  /// ANN index (serve/ann_index.hpp) is built here, once, per those knobs.
  std::shared_ptr<serve::InferenceSession> open_session(
      const serve::SessionOptions& options = {}) SPTX_EXCLUDES(sessions_mu_);

  /// The frozen replica alone (no session) — for callers composing their
  /// own serving layer.
  std::shared_ptr<const models::KgeModel> freeze();

  /// Zero-downtime snapshot publication: freeze the engine's CURRENT model
  /// weights, build the new serving snapshot (ANN index included) off the
  /// serving threads, then atomically hot-swap it into every live session
  /// this engine opened. In-flight requests drain on the version they
  /// started with; no request is dropped or answered from torn state. The
  /// vocabulary must match what the sessions are serving (hot-swap
  /// publishes refreshed weights, not a re-sized graph). Returns the new
  /// snapshot version. `options` resolves the ANN knobs exactly as
  /// open_session does; sessions opened later also start from the newest
  /// weights (they freeze on open).
  std::uint64_t publish(const serve::SessionOptions& options = {})
      SPTX_EXCLUDES(sessions_mu_);

  /// Version stamped by the most recent publish() (0 = never published).
  std::uint64_t published_version() const SPTX_EXCLUDES(sessions_mu_) {
    MutexLock lock(sessions_mu_);
    return published_version_;
  }

  // ---- health -------------------------------------------------------------
  /// One-call operational health surface as JSON: model state, the fault-
  /// injection harness (active + spec), and aggregate serving traffic over
  /// every live session this engine opened (queries, scored triplets, and
  /// the graceful-degradation counters — queue-full and deadline
  /// rejections). `status` is "ok", or "degraded" once load has been shed
  /// or a fault spec is installed. The `sptx health` CLI prints this.
  std::string health_json() const SPTX_EXCLUDES(sessions_mu_);

 private:
  RuntimeConfig config_;
  ModelSpec spec_;
  std::unique_ptr<models::KgeModel> model_;
  index_t num_entities_ = 0;
  index_t num_relations_ = 0;
  /// Candidate-plan reuse across evaluate() calls (SPTX_EVAL_PLAN_CACHE);
  /// bound to one dataset identity by a content fingerprint (sizes + test
  /// triplets) — evaluating a different or mutated dataset drops the cache.
  std::unique_ptr<sparse::PlanCache> eval_plans_;
  std::uint64_t eval_fingerprint_ = 0;
  /// Guards the session registry and the publish counters. The serving
  /// surface — open_session(), publish(), published_version(),
  /// health_json() — is safe to call concurrently (a health-probe thread
  /// racing a publisher racing request threads opening sessions); the
  /// model-mutation surface (create/load/train*) stays single-threaded by
  /// contract. The historical unguarded vector let open_session()'s
  /// prune-and-push race publish()/health_json() iteration — flagged by
  /// the thread-safety annotation pass.
  mutable Mutex sessions_mu_;
  /// Sessions opened by this engine, for the health surface and for
  /// publish() fan-out. Weak — the engine never extends a session's
  /// lifetime; dead entries are pruned on the next open_session().
  mutable std::vector<std::weak_ptr<serve::InferenceSession>> sessions_
      SPTX_GUARDED_BY(sessions_mu_);
  std::uint64_t published_version_ SPTX_GUARDED_BY(sessions_mu_) = 0;
  std::int64_t publishes_ SPTX_GUARDED_BY(sessions_mu_) = 0;
};

}  // namespace sptx
