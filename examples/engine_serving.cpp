// Engine + InferenceSession: the train → freeze → serve lifecycle through
// the unified sptx::Engine facade — and the recommended starting point for
// new integrations (quickstart.cpp shows the lower-level free functions).
//
//   build/engine_serving
//
// Covers: runtime-config snapshotting with programmatic overrides, model
// creation from a ModelSpec, training, checkpointing, opening a frozen
// thread-safe serving session, and answering top-k / score / rank queries
// from multiple threads against one shared session.
#include <cstdio>
#include <thread>
#include <vector>

#include "src/api/engine.hpp"
#include "src/kg/synthetic.hpp"

int main() {
  using namespace sptx;

  // 1. An Engine snapshots every SPTX_* knob once at construction;
  //    overrides are validated against the registry (a typo throws).
  Engine::Options options;
  options.config_overrides = {{"SPTX_SERVE_PLAN_CACHE", "on"}};
  Engine engine(options);
  std::printf("runtime config:\n%s\n", engine.config_json().c_str());

  // 2. Data + model. The spec carries everything needed to rebuild the
  //    architecture later (checkpoint restore, frozen replicas).
  Rng rng(42);
  kg::Dataset dataset =
      kg::generate({"serving-demo", 500, 8, 6000}, rng, 0.05, 0.05);
  ModelSpec spec;
  spec.family = "TransE";
  spec.config.dim = 64;
  spec.config.normalize_entities = false;
  spec.seed = 7;
  engine.create_model(spec, dataset.num_entities(), dataset.num_relations());

  // 3. Train through the facade — same loop, same results as train::train.
  train::TrainConfig tconfig;
  tconfig.epochs = 60;
  tconfig.batch_size = 2048;
  tconfig.lr = 1.0f;
  tconfig.use_adagrad = true;
  tconfig.resample_negatives = true;
  engine.train(dataset.train, tconfig);
  std::printf("trained %s; filtered MRR %.3f\n",
              engine.model().name().c_str(),
              engine.evaluate(dataset, {.max_queries = 100}).mrr);

  // 4. Freeze and serve. The session owns an immutable replica — training
  //    the engine further (or destroying it) never perturbs open sessions —
  //    and every method is safe from any number of threads.
  serve::SessionOptions sopts;
  sopts.filter = &dataset.train;  // filtered predictions, eval-style
  auto session = engine.open_session(sopts);

  const Triplet probe = dataset.test[0];
  std::printf("query (%lld, %lld, ?):\n",
              static_cast<long long>(probe.head),
              static_cast<long long>(probe.relation));
  for (const auto& p : session->top_tails(probe.head, probe.relation, 5))
    std::printf("  tail %3lld  score %.4f\n",
                static_cast<long long>(p.entity), p.score);
  std::printf("true tail %lld ranks %.1f (filtered)\n",
              static_cast<long long>(probe.tail), session->rank(probe));

  // 5. Concurrent serving: four threads hammer the one session; the
  //    micro-batch queue coalesces whatever traffic overlaps.
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      Rng qrng(static_cast<std::uint64_t>(100 + w));
      for (int i = 0; i < 200; ++i) {
        Triplet q;
        q.head = static_cast<std::int64_t>(
            qrng.next_below(static_cast<std::uint64_t>(dataset.num_entities())));
        q.relation = static_cast<std::int64_t>(qrng.next_below(
            static_cast<std::uint64_t>(dataset.num_relations())));
        q.tail = static_cast<std::int64_t>(
            qrng.next_below(static_cast<std::uint64_t>(dataset.num_entities())));
        session->score_one(q);
      }
    });
  }
  for (auto& t : workers) t.join();
  const auto stats = session->stats();
  std::printf("served %lld queries (%lld triplets, %lld scoring calls, "
              "%lld coalesced, %lld plan hits)\n",
              static_cast<long long>(stats.queries),
              static_cast<long long>(stats.triplets_scored),
              static_cast<long long>(stats.batcher.batches_executed),
              static_cast<long long>(stats.batcher.coalesced_requests),
              static_cast<long long>(stats.plans.hits));
  return 0;
}
