// Dataset tooling tour: the paper's Table 3 profiles, synthetic generation,
// TSV round-tripping, and the compact binary format (the role SQLite plays
// in the Python framework's dataloaders, §4.7.2).
//
//   build/examples/datasets_info [scale]
#include <cstdio>
#include <cstdlib>

#include "src/kg/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace sptx;

  const double scale = argc > 1 ? std::atof(argv[1]) : 0.01;

  std::printf("Table 3 dataset profiles (paper scale):\n");
  std::printf("%-10s %-10s %-10s %-12s\n", "dataset", "entities",
              "relations", "triplets");
  for (const auto& p : kg::paper_profiles()) {
    std::printf("%-10s %-10lld %-10lld %-12lld\n", p.name.c_str(),
                static_cast<long long>(p.entities),
                static_cast<long long>(p.relations),
                static_cast<long long>(p.triplets));
  }

  std::printf("\ngenerating WN18 at scale %.4g, splitting 90/5/5...\n",
              scale);
  Rng rng(42);
  const auto profile = kg::scaled(kg::profile_by_name("WN18"), scale);
  kg::Dataset ds = kg::generate(profile, rng);
  std::printf("  train %lld, valid %lld, test %lld triplets\n",
              static_cast<long long>(ds.train.size()),
              static_cast<long long>(ds.valid.size()),
              static_cast<long long>(ds.test.size()));

  const std::string tsv = "/tmp/sptx_wn18_scaled.tsv";
  kg::write_tsv(ds, tsv);
  std::printf("  wrote TSV to %s\n", tsv.c_str());
  const kg::Dataset reloaded = kg::load_tsv(tsv, "wn18-roundtrip");
  std::printf("  reloaded: %lld entities, %lld relations, %lld triplets\n",
              static_cast<long long>(reloaded.num_entities()),
              static_cast<long long>(reloaded.num_relations()),
              static_cast<long long>(reloaded.train.size()));

  const std::string bin = "/tmp/sptx_wn18_scaled.sptx";
  ds.save(bin);
  const kg::Dataset binary = kg::Dataset::load_binary(bin);
  std::printf("  binary round trip ok: %s, %lld train triplets\n",
              binary.name.c_str(), static_cast<long long>(binary.train.size()));
  std::remove(tsv.c_str());
  std::remove(bin.c_str());
  return 0;
}
