// Quickstart: train a sparse TransE model on a synthetic knowledge graph
// and evaluate link prediction — the 60-second tour of the public API.
//
//   build/examples/quickstart
#include <cstdio>

#include "src/eval/link_prediction.hpp"
#include "src/kg/synthetic.hpp"
#include "src/models/model.hpp"
#include "src/train/trainer.hpp"

int main() {
  using namespace sptx;

  // 1. Get a knowledge graph. Synthetic here; kg::load_tsv/load_csv load
  //    real ones from disk (see examples/link_prediction.cpp).
  Rng rng(42);
  kg::Dataset dataset =
      kg::generate({"quickstart", 500, 8, 6000}, rng, 0.05, 0.05);
  std::printf("dataset: %lld entities, %lld relations, %lld train triplets\n",
              static_cast<long long>(dataset.num_entities()),
              static_cast<long long>(dataset.num_relations()),
              static_cast<long long>(dataset.train.size()));

  // 2. Build a model. make_sparse_model gives the SpMM-based SpTransX
  //    implementation; "TransE" / "TransR" / "TransH" / "TorusE" plus the
  //    Appendix D extensions "DistMult" / "ComplEx" / "RotatE".
  models::ModelConfig config;
  config.dim = 64;        // embedding size
  config.margin = 0.5f;   // margin-ranking loss margin
  config.normalize_entities = false;  // free norms suit the tiny graph
  Rng model_rng(7);
  auto model = models::make_sparse_model(
      "TransE", dataset.num_entities(), dataset.num_relations(), config,
      model_rng);

  // 3. Train. The trainer handles batching, pre-generated negative
  //    sampling, SGD, and phase timing.
  train::TrainConfig tconfig;
  tconfig.epochs = 200;
  tconfig.batch_size = 2048;
  tconfig.lr = 1.0f;                   // scaled-up lr for the small graph
  tconfig.use_adagrad = true;          // per-coordinate steps converge faster
  tconfig.resample_negatives = true;   // better ranking on small graphs
  const train::TrainResult result =
      train::train(*model, dataset.train, tconfig, [](int epoch, float loss) {
        if (epoch % 10 == 0) std::printf("  epoch %3d  loss %.4f\n", epoch, loss);
      });
  std::printf("trained in %.2fs (forward %.2fs, backward %.2fs, step %.2fs)\n",
              result.total_seconds, result.phases.forward_s,
              result.phases.backward_s, result.phases.step_s);

  // 4. Evaluate filtered link prediction on the held-out test split.
  eval::EvalConfig ec;
  ec.max_queries = 100;
  const eval::RankingMetrics metrics = eval::evaluate(*model, dataset, ec);
  std::printf("filtered Hits@1 %.3f  Hits@3 %.3f  Hits@10 %.3f  MRR %.3f\n",
              metrics.hits_at_1, metrics.hits_at_3, metrics.hits_at_10,
              metrics.mrr);
  return 0;
}
