// Extending the framework with a new translational model.
//
// The paper (§1, conclusion) argues the sparse formulation extends to other
// translation-based models such as TransM. This example implements
// **SpTransM** — score w_r · ||h + r − t|| with a per-relation scalar
// weight (Fan et al., 2014) — outside the library, using only public API:
// the incidence builders, the autograd spmm/scale_rows ops, and the
// KgeModel interface. It then trains and evaluates like any built-in model.
//
//   build/examples/custom_model
#include <cmath>
#include <cstdio>

#include "src/eval/link_prediction.hpp"
#include "src/kg/synthetic.hpp"
#include "src/models/model.hpp"
#include "src/models/sp_transr.hpp"
#include "src/nn/embedding.hpp"
#include "src/sparse/incidence.hpp"
#include "src/train/trainer.hpp"

namespace {

using namespace sptx;

class SpTransM final : public models::KgeModel {
 public:
  SpTransM(index_t num_entities, index_t num_relations,
           const models::ModelConfig& config, Rng& rng)
      : KgeModel(num_entities, num_relations, config),
        ent_rel_(num_entities + num_relations, config.dim, rng),
        rel_weights_(num_relations, 1, rng) {
    // TransM weights relations by inverse mapping complexity; start at 1.
    rel_weights_.mutable_weights().fill(1.0f);
  }

  std::string name() const override { return "SpTransM(custom)"; }

  autograd::Variable distance(std::span<const Triplet> batch) {
    // One hrt SpMM — identical structure to SpTransE...
    auto a = std::make_shared<Csr>(
        build_hrt_incidence_csr(batch, num_entities_, num_relations_));
    autograd::Variable hrt =
        autograd::spmm(std::move(a), ent_rel_.var(), config_.kernel);
    autograd::Variable norm = autograd::row_l2(hrt);
    // ...then scale each triplet's distance by its relation weight, gathered
    // through a relation-selection SpMM so the weight is also trained.
    auto rel_inc = std::make_shared<Csr>(
        models::build_relation_selection_csr(batch, num_relations_));
    autograd::Variable w =
        autograd::spmm(std::move(rel_inc), rel_weights_.var());
    return autograd::mul(w, norm);
  }

  autograd::Variable loss(std::span<const Triplet> pos,
                          std::span<const Triplet> neg) override {
    return autograd::margin_ranking_loss(distance(pos), distance(neg),
                                         config_.margin);
  }

  std::vector<float> score(std::span<const Triplet> batch) const override {
    const Matrix& e = ent_rel_.weights();
    const Matrix& w = rel_weights_.weights();
    std::vector<float> out(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const Triplet& t = batch[i];
      const float* h = e.row(t.head);
      const float* r = e.row(num_entities_ + t.relation);
      const float* tl = e.row(t.tail);
      float acc = 0.0f;
      for (index_t j = 0; j < e.cols(); ++j) {
        const float v = h[j] + r[j] - tl[j];
        acc += v * v;
      }
      out[i] = w.at(t.relation, 0) * std::sqrt(acc);
    }
    return out;
  }

  std::vector<autograd::Variable> params() override {
    return {ent_rel_.var(), rel_weights_.var()};
  }

 private:
  nn::EmbeddingTable ent_rel_;
  nn::EmbeddingTable rel_weights_;  // w_r, one scalar per relation
};

}  // namespace

int main() {
  Rng rng(42);
  kg::Dataset ds = kg::generate({"custom", 400, 8, 5000}, rng, 0.05, 0.05);

  models::ModelConfig cfg;
  cfg.dim = 48;
  cfg.normalize_entities = false;
  Rng mr(7);
  SpTransM model(ds.num_entities(), ds.num_relations(), cfg, mr);

  train::TrainConfig tc;
  tc.epochs = 250;
  tc.batch_size = 2048;
  tc.lr = 1.0f;
  tc.use_adagrad = true;
  tc.resample_negatives = true;
  const auto result = train::train(model, ds.train, tc);
  std::printf("%s: loss %.4f -> %.4f\n", model.name().c_str(),
              result.epoch_loss.front(), result.epoch_loss.back());

  eval::EvalConfig ec;
  ec.max_queries = 80;
  const auto metrics = eval::evaluate(model, ds, ec);
  std::printf("filtered Hits@10 %.3f  MRR %.3f\n", metrics.hits_at_10,
              metrics.mrr);
  return 0;
}
