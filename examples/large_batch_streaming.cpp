// Large-batch training and disk-streamed embeddings.
//
// Demonstrates the paper's two memory features:
//  * §1 contribution 3 — the sparse formulation's small intermediate
//    footprint makes very large batches affordable: we sweep batch sizes
//    and print peak tracked memory for the sparse vs dense formulation.
//  * §4.7.1 — embeddings too large for RAM (e.g. pre-trained LLM vectors
//    for KG completion) stream from a memory-mapped file: we create a
//    disk-backed table, stage rows through it, and train on the staged
//    block, writing updates back.
//
//   build/examples/large_batch_streaming
#include <cstdio>

#include "src/kg/synthetic.hpp"
#include "src/models/model.hpp"
#include "src/nn/embedding.hpp"
#include "src/train/trainer.hpp"

int main() {
  using namespace sptx;

  // ---- Part 1: large-batch memory sweep ---------------------------------
  Rng rng(42);
  const kg::Dataset ds =
      kg::generate({"large-batch", 5000, 16, 32768}, rng, 0.0, 0.0);
  models::ModelConfig cfg;
  cfg.dim = 128;

  std::printf("peak training memory vs batch size (d=%lld):\n",
              static_cast<long long>(cfg.dim));
  std::printf("%-10s %-16s %-16s\n", "batch", "SpTransX(MB)", "Dense(MB)");
  for (index_t batch : {1024, 4096, 16384, 32768}) {
    double mb[2];
    int slot = 0;
    for (const bool sparse : {true, false}) {
      Rng mr(7);
      auto model =
          sparse ? models::make_sparse_model("TransE", ds.num_entities(),
                                             ds.num_relations(), cfg, mr)
                 : models::make_dense_model("TransE", ds.num_entities(),
                                            ds.num_relations(), cfg, mr);
      train::TrainConfig tc;
      tc.epochs = 1;
      tc.batch_size = batch;
      const auto result = train::train(*model, ds.train, tc);
      mb[slot++] =
          static_cast<double>(result.peak_bytes) / (1024.0 * 1024.0);
    }
    std::printf("%-10lld %-16.2f %-16.2f\n", static_cast<long long>(batch),
                mb[0], mb[1]);
  }

  // ---- Part 2: streaming embeddings from disk ---------------------------
  // Simulate "LLM embeddings too large for RAM": a disk-backed table of
  // 50k × 256 floats (~50 MB; in real use this is tens of GB). Training
  // stages the entity block it needs, trains, and writes rows back.
  const std::string path = "/tmp/sptx_streamed_embeddings.bin";
  const index_t big_rows = 50000, dim = 256;
  Rng init_rng(9);
  auto streamed = nn::StreamingEmbedding::create(path, big_rows, dim,
                                                 init_rng);
  std::printf("\ncreated disk-backed embedding table: %lld x %lld (%.1f MB)"
              " at %s\n",
              static_cast<long long>(big_rows), static_cast<long long>(dim),
              static_cast<double>(big_rows) * dim * sizeof(float) / 1e6,
              path.c_str());

  // This KG touches only the first 2000 entities: stage that block.
  Rng kg_rng(11);
  const kg::Dataset sub =
      kg::generate({"streamed", 2000, 8, 20000}, kg_rng, 0.0, 0.0);
  Matrix staged = streamed.load_rows(0, sub.num_entities());

  // Stack the staged entity rows with fresh relation embeddings the way
  // SpTransE lays out its table, then train on the staged block.
  Matrix stacked(sub.num_entities() + sub.num_relations(), dim);
  for (index_t i = 0; i < sub.num_entities(); ++i)
    for (index_t j = 0; j < dim; ++j) stacked.at(i, j) = staged.at(i, j);
  Rng rel_rng(13);
  for (index_t i = sub.num_entities(); i < stacked.rows(); ++i)
    for (index_t j = 0; j < dim; ++j)
      stacked.at(i, j) = rel_rng.uniform(-0.05f, 0.05f);

  // Train a TransE model whose parameter table *is* the staged block
  // (SpTransE's stacked [entities; relations] layout — sp_transe.hpp).
  models::ModelConfig scfg;
  scfg.dim = dim;
  Rng mr(15);
  auto model = models::make_sparse_model("TransE", sub.num_entities(),
                                         sub.num_relations(), scfg, mr);
  model->params()[0].mutable_value() = stacked;

  train::TrainConfig tc;
  tc.epochs = 15;
  tc.batch_size = 8192;
  tc.lr = 0.5f;
  tc.use_adagrad = true;
  const auto result = train::train(*model, sub.train, tc);
  std::printf("trained staged block: loss %.4f -> %.4f in %.2fs\n",
              result.epoch_loss.front(), result.epoch_loss.back(),
              result.total_seconds);

  // Write the updated entity rows back to the disk table.
  const Matrix& trained = model->params()[0].value();
  Matrix entity_block(sub.num_entities(), dim);
  for (index_t i = 0; i < sub.num_entities(); ++i)
    for (index_t j = 0; j < dim; ++j)
      entity_block.at(i, j) = trained.at(i, j);
  streamed.store_rows(0, entity_block);
  streamed.sync();
  std::printf("wrote %lld updated entity rows back to %s\n",
              static_cast<long long>(sub.num_entities()), path.c_str());
  std::remove(path.c_str());
  return 0;
}
