// Biomedical KG pipeline — the large-scale workload the paper's evaluation
// ends on (BioKG: 94k entities, 4.8M triplets). At a scaled size this
// example walks the full production path:
//
//   1. generate a BioKG-profile graph and serialise it to the streaming
//      on-disk format (§4.7.2) as a one-time ingestion step;
//   2. train SpTransE reading batches straight off the memory-mapped file
//      (no in-RAM triplet copy);
//   3. evaluate link prediction (drug–target style completion);
//   4. classify entities by their latent type from the learned embeddings
//      (§4.7.1's entity classification task).
//
//   build/examples/biokg_pipeline [scale]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "src/eval/classification.hpp"
#include "src/eval/link_prediction.hpp"
#include "src/kg/negative_sampler.hpp"
#include "src/kg/streaming_store.hpp"
#include "src/kg/synthetic.hpp"
#include "src/models/model.hpp"
#include "src/nn/optim.hpp"
#include "src/train/trainer.hpp"

int main(int argc, char** argv) {
  using namespace sptx;

  const double scale = argc > 1 ? std::atof(argv[1]) : 0.005;

  // ---- 1. Ingest ---------------------------------------------------------
  Rng rng(42);
  const auto profile = kg::scaled(kg::profile_by_name("BIOKG"), scale);
  kg::Dataset ds = kg::generate(profile, rng, 0.02, 0.05, /*clusters=*/16);
  const std::string path = "/tmp/sptx_biokg.sptxs";
  kg::StreamingTripletStore::write_file(path, ds.train.triplets(),
                                        ds.num_entities(),
                                        ds.num_relations());
  auto store = kg::StreamingTripletStore::open(path);
  std::printf("BioKG profile at scale %.3g: %lld entities, %lld relations, "
              "%lld train triplets streamed from %s\n",
              scale, static_cast<long long>(store.num_entities()),
              static_cast<long long>(store.num_relations()),
              static_cast<long long>(store.size()), path.c_str());

  // ---- 2. Train from the mapped file -------------------------------------
  models::ModelConfig cfg;
  cfg.dim = 64;
  cfg.normalize_entities = false;
  Rng mr(7);
  auto model = models::make_sparse_model("TransE", store.num_entities(),
                                         store.num_relations(), cfg, mr);

  // Hand-rolled loop over mmap slices: shows the streaming batch path the
  // Trainer wraps for in-memory stores.
  kg::NegativeSampler sampler(ds.train, kg::CorruptionScheme::kBernoulli);
  nn::Adagrad opt(model->params(), 1.0f);
  Rng neg_rng(11);
  const index_t batch_size = 8192;
  const int epochs = 40;
  float last_loss = 0.0f;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    double loss_sum = 0.0;
    index_t batches = 0;
    for (std::int64_t begin = 0; begin < store.size();
         begin += batch_size) {
      const std::int64_t count =
          std::min<std::int64_t>(batch_size, store.size() - begin);
      const auto pos = store.slice(begin, count);  // zero-copy mmap view
      const auto neg = sampler.pregenerate(pos, neg_rng);
      opt.zero_grad();
      autograd::Variable loss = model->loss(pos, neg);
      loss.backward();
      opt.step();
      model->post_step();
      loss_sum += loss.value().at(0, 0);
      ++batches;
    }
    last_loss = static_cast<float>(loss_sum / batches);
    if (epoch % 10 == 0)
      std::printf("  epoch %3d  loss %.4f\n", epoch, last_loss);
  }
  std::printf("final loss %.4f\n", last_loss);

  // ---- 3. Link prediction -------------------------------------------------
  eval::EvalConfig ec;
  ec.max_queries = 60;
  const auto metrics = eval::evaluate(*model, ds, ec);
  std::printf("link prediction: filtered Hits@10 %.3f  MRR %.3f\n",
              metrics.hits_at_10, metrics.mrr);

  // ---- 4. Entity classification ------------------------------------------
  // The generator assigns latent types implicitly (cluster = entity mod C
  // shifts under relations); labelling by degree-derived type is the
  // realistic stand-in: hubs (top decile by degree) vs leaves. A model
  // whose embeddings organise by connectivity should separate them.
  std::vector<std::int64_t> degree(
      static_cast<std::size_t>(ds.num_entities()), 0);
  for (const Triplet& t : ds.train.triplets()) {
    degree[static_cast<std::size_t>(t.head)]++;
    degree[static_cast<std::size_t>(t.tail)]++;
  }
  std::vector<index_t> entities, labels;
  for (index_t e = 0; e < ds.num_entities(); ++e) {
    if (degree[static_cast<std::size_t>(e)] == 0) continue;
    entities.push_back(e);
    labels.push_back(degree[static_cast<std::size_t>(e)] > 20 ? 1 : 0);
  }
  eval::CentroidClassifier clf;
  clf.fit(model->params()[0].value(), entities, labels, 2);
  std::printf("entity classification (hub vs leaf): accuracy %.3f over %zu "
              "entities\n",
              clf.accuracy(model->params()[0].value(), entities, labels),
              entities.size());

  std::remove(path.c_str());
  return 0;
}
