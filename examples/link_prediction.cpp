// Knowledge-graph completion on a file-based dataset: load a TSV of
// (head, relation, tail) strings, train SpTransE, then answer "what is the
// most plausible tail for (head, relation, ?)" queries with entity names —
// the KG-completion workload the paper's introduction motivates.
//
//   build/examples/link_prediction [path/to/triples.tsv]
//
// Without an argument the example writes and uses a small built-in family
// tree so it runs out of the box.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/eval/link_prediction.hpp"
#include "src/kg/dataset.hpp"
#include "src/models/model.hpp"
#include "src/train/trainer.hpp"

namespace {

// A toy genealogy: `parent_of` and `sibling_of` relations with enough
// structure that TransE ranks held-out family links near the top.
void write_builtin_dataset(const std::string& path) {
  std::ofstream os(path);
  const int families = 30;
  for (int f = 0; f < families; ++f) {
    const std::string p1 = "parent" + std::to_string(2 * f);
    const std::string p2 = "parent" + std::to_string(2 * f + 1);
    for (int c = 0; c < 3; ++c) {
      const std::string kid =
          "child" + std::to_string(3 * f + c);
      os << p1 << "\tparent_of\t" << kid << "\n";
      os << p2 << "\tparent_of\t" << kid << "\n";
      for (int s = c + 1; s < 3; ++s) {
        const std::string sib = "child" + std::to_string(3 * f + s);
        os << kid << "\tsibling_of\t" << sib << "\n";
        os << sib << "\tsibling_of\t" << kid << "\n";
      }
    }
    os << p1 << "\tmarried_to\t" << p2 << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sptx;

  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    path = "/tmp/sptx_family.tsv";
    write_builtin_dataset(path);
    std::printf("no dataset given — using built-in family tree at %s\n",
                path.c_str());
  }

  // Load, index, and split.
  Rng rng(42);
  kg::Dataset dataset =
      kg::split(kg::load_tsv(path, "family"), /*valid=*/0.05, /*test=*/0.1,
                rng);
  std::printf("loaded %lld entities, %lld relations, %lld train triplets\n",
              static_cast<long long>(dataset.num_entities()),
              static_cast<long long>(dataset.num_relations()),
              static_cast<long long>(dataset.train.size()));

  models::ModelConfig config;
  config.dim = 48;
  config.normalize_entities = false;
  Rng model_rng(7);
  auto model = models::make_sparse_model(
      "TransE", dataset.num_entities(), dataset.num_relations(), config,
      model_rng);

  train::TrainConfig tconfig;
  tconfig.epochs = 400;
  tconfig.batch_size = 512;
  tconfig.lr = 0.5f;
  tconfig.use_adagrad = true;
  tconfig.resample_negatives = true;
  tconfig.corruption = kg::CorruptionScheme::kBernoulli;
  train::train(*model, dataset.train, tconfig);

  // Standard filtered evaluation over the test split.
  eval::EvalConfig ec;
  const auto metrics = eval::evaluate(*model, dataset, ec);
  std::printf("filtered Hits@10 %.3f  MRR %.3f over %lld queries\n",
              metrics.hits_at_10, metrics.mrr,
              static_cast<long long>(metrics.queries));

  // Interactive-style completion: top-5 tails for the first test queries.
  const std::int64_t shown = std::min<std::int64_t>(dataset.test.size(), 3);
  for (std::int64_t q = 0; q < shown; ++q) {
    const Triplet truth = dataset.test[q];
    std::vector<Triplet> candidates;
    for (std::int64_t e = 0; e < dataset.num_entities(); ++e)
      candidates.push_back({truth.head, truth.relation, e});
    const std::vector<float> scores = model->score(candidates);
    std::vector<std::int64_t> order(candidates.size());
    for (std::size_t i = 0; i < order.size(); ++i)
      order[i] = static_cast<std::int64_t>(i);
    std::sort(order.begin(), order.end(), [&](std::int64_t a, std::int64_t b) {
      return scores[static_cast<std::size_t>(a)] <
             scores[static_cast<std::size_t>(b)];
    });
    std::printf("(%s, %s, ?) — truth: %s — top-5:",
                dataset.entity_names[static_cast<std::size_t>(truth.head)]
                    .c_str(),
                dataset.relation_names[static_cast<std::size_t>(
                                           truth.relation)]
                    .c_str(),
                dataset.entity_names[static_cast<std::size_t>(truth.tail)]
                    .c_str());
    for (int k = 0; k < 5; ++k) {
      std::printf(" %s",
                  dataset.entity_names[static_cast<std::size_t>(order[
                      static_cast<std::size_t>(k)])]
                      .c_str());
    }
    std::printf("\n");
  }
  return 0;
}
