// Table 9 (Appendix F): DDP scaling of SpTransE on the COVID-19 profile.
// Paper: 500-epoch time drops 706s → 180s from 4 to 64 A100s.
// Here: (a) real thread-backed DDP for small worker counts (machine-bound),
// (b) the calibrated ring-all-reduce cost model for the 4…64 series.
#include "src/distributed/ddp.hpp"

#include "bench_common.hpp"

using namespace sptx;

int main() {
  bench::print_header(
      "Table 9 — DDP scaling, TransE on COVID-19 profile",
      "near-linear scaling 4→64 workers (paper: 706/586/340/246/180 s); "
      "communication is not the bottleneck at this scale");

  const int ep = bench::epochs(5);
  const kg::Dataset ds = bench::load_scaled("COVID19", 42);
  models::ModelConfig cfg = bench::bench_config("TransE");

  // Real data-parallel training with threads (correctness + small-p times).
  std::printf("thread-backed DDP (measured, this machine):\n");
  std::printf("  %-8s %-10s %s\n", "workers", "time(s)", "final loss");
  for (int p : {1, 2, 4}) {
    distributed::DdpConfig dc;
    dc.workers = p;
    dc.epochs = ep;
    dc.batch_size = 4096;
    dc.lr = 0.0004f;
    const auto result = distributed::train_ddp(
        [&](Rng& rng) {
          return models::make_sparse_model("TransE", ds.num_entities(),
                                           ds.num_relations(), cfg, rng);
        },
        ds.train, dc);
    std::printf("  %-8d %-10.3f %.4f\n", p, result.total_seconds,
                result.epoch_loss.back());
    std::fflush(stdout);
  }

  // Calibrate the analytic model from a single-worker epoch and predict
  // the paper's 4…64 GPU series.
  Rng rng(7);
  auto model = models::make_sparse_model("TransE", ds.num_entities(),
                                         ds.num_relations(), cfg, rng);
  const auto single =
      train::train(*model, ds.train, bench::bench_train_config(1, 4096));
  std::int64_t grad_bytes = 0;
  for (auto& p : model->params())
    grad_bytes += static_cast<std::int64_t>(p.value().bytes());

  distributed::ScalingModel sm;
  sm.single_worker_epoch_s = single.total_seconds;
  sm.gradient_bytes = grad_bytes;

  // Project the measured epoch to paper scale: compute time scales with
  // the triplet count (O(M·d), Appendix C) and the all-reduced gradient
  // with the table size, both shrunk by SPTX_SCALE in this run.
  const double paper_factor = 1.0 / bench::scale();
  distributed::ScalingModel paper_sm = sm;
  paper_sm.single_worker_epoch_s = sm.single_worker_epoch_s * paper_factor;
  paper_sm.gradient_bytes =
      static_cast<std::int64_t>(sm.gradient_bytes * paper_factor);

  std::printf("\nring-all-reduce cost model (epochs=%d, calibrated from "
              "1-worker epoch %.3fs, grad %.1f MB):\n",
              ep, sm.single_worker_epoch_s,
              static_cast<double>(grad_bytes) / (1024.0 * 1024.0));
  std::printf("  %-8s %-18s %s\n", "workers", "this scale(s)",
              "projected paper scale(s)");
  for (int p : {4, 8, 16, 32, 64}) {
    std::printf("  %-8d %-18.3f %.1f\n", p, sm.predict_seconds(p, ep),
                paper_sm.predict_seconds(p, 500));
  }
  return 0;
}
