// Fused-vs-autograd training ablation: per-epoch wall time for the three
// families the ISSUE names (TransE, TransR, TorusE) on the Figure-2
// workload, SPTX_FUSED=off (legacy autograd graph) vs on (single-pass
// fused kernels). Also cross-checks the final-epoch losses so a speedup
// can never come from silently diverging math, and reports the
// forward/backward phase split (the fused layer attacks both).
//
// Output is one JSON document on stdout — tools/run_benches.sh captures it
// as BENCH_fused.json for the PR-to-PR perf trajectory.
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"

namespace sptx {
namespace {

struct FusedRow {
  std::string model;
  std::string dataset;
  double autograd_epoch_s = 0.0;  // mean epoch wall time, SPTX_FUSED=off
  double fused_epoch_s = 0.0;     // mean epoch wall time, SPTX_FUSED=on
  double autograd_fwd_s = 0.0, autograd_bwd_s = 0.0;
  double fused_fwd_s = 0.0, fused_bwd_s = 0.0;
  float autograd_loss = 0.0f;
  float fused_loss = 0.0f;
};

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

FusedRow run_model(const std::string& name, const std::string& dataset,
                   int epochs) {
  FusedRow row;
  row.model = name;
  row.dataset = dataset;

  const kg::Dataset ds = bench::load_scaled(dataset, 42);
  const models::ModelConfig cfg = bench::bench_config(name);
  const train::TrainConfig tc = bench::bench_train_config(epochs);

  const auto run = [&](const char* mode, double& epoch_s, double& fwd_s,
                       double& bwd_s, float& final_loss) {
    config::ScopedOverride fused("SPTX_FUSED", mode);
    auto model = bench::make_model("SpTransX", name, ds.num_entities(),
                                   ds.num_relations(), cfg, 7);
    const auto r = train::train(*model, ds.train, tc);
    epoch_s = mean(r.epoch_seconds);
    fwd_s = r.phases.forward_s;
    bwd_s = r.phases.backward_s;
    final_loss = r.epoch_loss.empty() ? 0.0f : r.epoch_loss.back();
  };

  run("off", row.autograd_epoch_s, row.autograd_fwd_s, row.autograd_bwd_s,
      row.autograd_loss);
  run("on", row.fused_epoch_s, row.fused_fwd_s, row.fused_bwd_s,
      row.fused_loss);
  return row;
}

}  // namespace
}  // namespace sptx

int main() {
  using namespace sptx;
  bench::warn_if_debug_build();

  const int epochs = bench::epochs(4);
  std::vector<FusedRow> rows;
  for (const std::string dataset : {"FB13", "FB15K"}) {
    for (const std::string name : {"TransE", "TransR", "TorusE"}) {
      rows.push_back(run_model(name, dataset, epochs));
    }
  }

  std::printf("{\n  %s,\n", bench::build_type_json().c_str());
  std::printf("  \"scale\": %.6g,\n  \"epochs\": %d,\n", bench::scale(),
              epochs);
  std::printf("  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const FusedRow& r = rows[i];
    const double speedup =
        r.fused_epoch_s > 0.0 ? r.autograd_epoch_s / r.fused_epoch_s : 0.0;
    std::printf(
        "    {\"model\": \"%s\", \"dataset\": \"%s\", "
        "\"autograd_epoch_s\": %.6f, \"fused_epoch_s\": %.6f, "
        "\"speedup\": %.3f, "
        "\"autograd_fwd_s\": %.6f, \"autograd_bwd_s\": %.6f, "
        "\"fused_fwd_s\": %.6f, \"fused_bwd_s\": %.6f, "
        "\"autograd_final_loss\": %.6f, \"fused_final_loss\": %.6f}%s\n",
        r.model.c_str(), r.dataset.c_str(), r.autograd_epoch_s,
        r.fused_epoch_s, speedup, r.autograd_fwd_s, r.autograd_bwd_s,
        r.fused_fwd_s, r.fused_bwd_s,
        static_cast<double>(r.autograd_loss),
        static_cast<double>(r.fused_loss),
        i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}
