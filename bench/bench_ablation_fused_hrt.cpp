// Ablation: fused hrt (one SpMM over the stacked [E; R] table, §4.2.2)
// vs unfused (ht SpMM + relation-selection SpMM + elementwise add) — the
// design decision behind stacking entity and relation embeddings in one
// dense matrix. Also: co-batching positives and negatives into one
// incidence matrix vs two separate SpMM calls.
#include <benchmark/benchmark.h>

#include "bench/gbench_main.hpp"

#include "src/common/rng.hpp"
#include "src/models/sp_transr.hpp"  // build_relation_selection_csr
#include "src/sparse/incidence.hpp"
#include "src/sparse/spmm.hpp"

namespace sptx {
namespace {

std::vector<Triplet> make_batch(index_t m, index_t n, index_t r) {
  Rng rng(7);
  std::vector<Triplet> batch;
  for (index_t i = 0; i < m; ++i) {
    batch.push_back({static_cast<std::int64_t>(rng.next_below(
                         static_cast<std::uint64_t>(n))),
                     static_cast<std::int64_t>(
                         rng.next_below(static_cast<std::uint64_t>(r))),
                     static_cast<std::int64_t>(rng.next_below(
                         static_cast<std::uint64_t>(n)))});
  }
  return batch;
}

constexpr index_t kN = 20000, kR = 200, kD = 128;

void BM_FusedHrt(benchmark::State& state) {
  const auto batch = make_batch(state.range(0), kN, kR);
  Rng rng(9);
  Matrix stacked(kN + kR, kD);
  stacked.fill_uniform(rng, -1, 1);
  const Csr a = build_hrt_incidence_csr(batch, kN, kR);
  Matrix out(a.rows, kD);
  for (auto _ : state) {
    spmm_csr_into(a, stacked, out);
    benchmark::DoNotOptimize(out.data());
  }
}

void BM_UnfusedHtPlusRelationGather(benchmark::State& state) {
  const auto batch = make_batch(state.range(0), kN, kR);
  Rng rng(9);
  Matrix entities(kN, kD);
  entities.fill_uniform(rng, -1, 1);
  Matrix relations(kR, kD);
  relations.fill_uniform(rng, -1, 1);
  const Csr ht = build_ht_incidence_csr(batch, kN);
  const Csr rel = models::build_relation_selection_csr(batch, kR);
  Matrix ht_out(ht.rows, kD);
  Matrix rel_out(rel.rows, kD);
  for (auto _ : state) {
    spmm_csr_into(ht, entities, ht_out);
    spmm_csr_into(rel, relations, rel_out);
    ht_out.add_(rel_out);  // extra elementwise pass the fused form avoids
    benchmark::DoNotOptimize(ht_out.data());
  }
}

void BM_CoBatchedPosNeg(benchmark::State& state) {
  // One incidence matrix over [positives; negatives]: a single SpMM.
  const auto pos = make_batch(state.range(0), kN, kR);
  auto both = pos;
  const auto neg = make_batch(state.range(0), kN, kR);
  both.insert(both.end(), neg.begin(), neg.end());
  Rng rng(9);
  Matrix stacked(kN + kR, kD);
  stacked.fill_uniform(rng, -1, 1);
  const Csr a = build_hrt_incidence_csr(both, kN, kR);
  Matrix out(a.rows, kD);
  for (auto _ : state) {
    spmm_csr_into(a, stacked, out);
    benchmark::DoNotOptimize(out.data());
  }
}

void BM_TwoPassPosNeg(benchmark::State& state) {
  const auto pos = make_batch(state.range(0), kN, kR);
  const auto neg = make_batch(state.range(0), kN, kR);
  Rng rng(9);
  Matrix stacked(kN + kR, kD);
  stacked.fill_uniform(rng, -1, 1);
  const Csr ap = build_hrt_incidence_csr(pos, kN, kR);
  const Csr an = build_hrt_incidence_csr(neg, kN, kR);
  Matrix out_p(ap.rows, kD);
  Matrix out_n(an.rows, kD);
  for (auto _ : state) {
    spmm_csr_into(ap, stacked, out_p);
    spmm_csr_into(an, stacked, out_n);
    benchmark::DoNotOptimize(out_p.data());
    benchmark::DoNotOptimize(out_n.data());
  }
}

BENCHMARK(BM_FusedHrt)->Arg(8192)->Arg(32768);
BENCHMARK(BM_UnfusedHtPlusRelationGather)->Arg(8192)->Arg(32768);
BENCHMARK(BM_CoBatchedPosNeg)->Arg(8192)->Arg(32768);
BENCHMARK(BM_TwoPassPosNeg)->Arg(8192)->Arg(32768);

}  // namespace
}  // namespace sptx

SPTX_GBENCH_MAIN();
