// Figure 7: total training time, every model × every dataset, SpTransX vs
// the dense baseline, with slowdown factors along the bars — the paper's
// headline experiment. (One hardware target here — CPU; the paper's GPU
// panel is reproduced in shape by the same comparison, see DESIGN.md.)
#include "bench_common.hpp"

using namespace sptx;

int main() {
  bench::print_header(
      "Figure 7 — total training time per model × dataset (CPU)",
      "SpTransX fastest everywhere; slowdowns vs SpTransX around "
      "3–5x (TransE), 2–3x (TransR), 2–4x (TransH), ~2x (TorusE); "
      "consistent across small and large datasets");

  const int ep = bench::epochs(10);
  std::printf("Table 3 dataset statistics (scaled by %.4g):\n",
              bench::scale());
  for (const auto& name : bench::figure7_datasets()) {
    const auto p = kg::scaled(kg::profile_by_name(name), bench::scale());
    std::printf("  %-10s entities=%-8lld relations=%-6lld triplets=%lld\n",
                name.c_str(), static_cast<long long>(p.entities),
                static_cast<long long>(p.relations),
                static_cast<long long>(p.triplets));
  }

  for (const std::string model_name :
       {"TransE", "TransR", "TransH", "TorusE"}) {
    const models::ModelConfig cfg = bench::bench_config(model_name);
    std::printf("\n%s (d=%lld, rel_d=%lld):\n", model_name.c_str(),
                static_cast<long long>(cfg.dim),
                static_cast<long long>(cfg.rel_dim));
    std::printf("  %-10s %-14s %-16s %s\n", "dataset", "SpTransX(s)",
                "Dense(s)", "slowdown");
    double sp_total = 0.0, dn_total = 0.0;
    for (const auto& name : bench::figure7_datasets()) {
      const kg::Dataset ds = bench::load_scaled(name, 42);
      auto sparse = bench::make_model("SpTransX", model_name,
                                      ds.num_entities(), ds.num_relations(),
                                      cfg, 7);
      const auto rs =
          train::train(*sparse, ds.train, bench::bench_train_config(ep));
      auto dense = bench::make_model("dense", model_name, ds.num_entities(),
                                     ds.num_relations(), cfg, 7);
      const auto rd =
          train::train(*dense, ds.train, bench::bench_train_config(ep));
      sp_total += rs.total_seconds;
      dn_total += rd.total_seconds;
      std::printf("  %-10s %-14.3f %-16.3f %.1fx\n", name.c_str(),
                  rs.total_seconds, rd.total_seconds,
                  rd.total_seconds / rs.total_seconds);
      std::fflush(stdout);
    }
    std::printf("  %-10s %-14.3f %-16.3f %.1fx (average)\n", "ALL",
                sp_total / 7.0, dn_total / 7.0, dn_total / sp_total);
  }
  return 0;
}
