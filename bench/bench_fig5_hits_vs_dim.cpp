// Figure 5: filtered Hits@10 vs embedding size (FB15K profile).
// The paper sweeps d = 4 … 2048 at batch 32768 for 100 epochs; at bench
// scale we sweep a geometric dim ladder and report the same series. The
// shape to check: accuracy rises with embedding size and saturates.
#include "src/eval/link_prediction.hpp"

#include "bench_common.hpp"

using namespace sptx;

int main() {
  bench::print_header(
      "Figure 5 — Hits@10 vs embedding size (FB15K profile)",
      "Hits@10 increases with dim then saturates; TransH OOMs beyond 256 "
      "in the paper (we cap its dim ladder likewise)");

  const int ep = bench::epochs(80);
  const kg::Dataset ds = bench::load_scaled("FB15K", 42);
  std::printf("dataset: N=%lld R=%lld M=%lld\n",
              static_cast<long long>(ds.num_entities()),
              static_cast<long long>(ds.num_relations()),
              static_cast<long long>(ds.train.size()));

  const std::vector<index_t> dims = {4, 8, 16, 32, 64, 128};
  std::printf("%-8s", "model");
  for (index_t d : dims) std::printf("  d=%-5lld", static_cast<long long>(d));
  std::printf("\n");

  for (const std::string model_name :
       {"TransE", "TransR", "TransH", "TorusE"}) {
    std::printf("%-8s", model_name.c_str());
    for (index_t d : dims) {
      // Paper: TransH runs out of memory beyond 256; our ladder stays
      // below that, but we reproduce its reduced relation dim (8).
      models::ModelConfig cfg;
      cfg.dim = d;
      cfg.normalize_entities = false;
      cfg.rel_dim = model_name == "TransH" ? std::min<index_t>(d, 8)
                    : model_name == "TransR"
                        ? std::max<index_t>(d / 2, 4)
                        : d;
      Rng rng(7);
      auto model = models::make_sparse_model(
          model_name, ds.num_entities(), ds.num_relations(), cfg, rng);
      train::TrainConfig tc = bench::bench_train_config(ep, 4096);
      tc.lr = 1.0f;                  // scaled dataset needs a scaled-up lr
      tc.use_adagrad = true;         // faster convergence at bench scale
      tc.resample_negatives = true;  // ranking quality on small graphs
      train::train(*model, ds.train, tc);
      eval::EvalConfig ec;
      ec.max_queries = 50;
      const auto metrics = eval::evaluate(*model, ds, ec);
      std::printf("  %-7.3f", metrics.hits_at_10);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
