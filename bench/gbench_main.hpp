// Shared main() for the google-benchmark binaries: BENCHMARK_MAIN plus a
// context stamp recording how *this* code was compiled. The JSON's own
// "library_build_type" field describes the system benchmark library, not
// sptransx; a debug stamp here means the numbers are junk
// (tools/run_benches.sh refuses non-Release build dirs for this reason).
// Include after benchmark/benchmark.h and invoke SPTX_GBENCH_MAIN() at
// file scope in place of BENCHMARK_MAIN().
#pragma once

#define SPTX_GBENCH_MAIN()                                               \
  int main(int argc, char** argv) {                                      \
    benchmark::AddCustomContext("sptransx_build_type",                   \
                                sptx::bench_detail::kBuildTypeStamp);    \
    benchmark::Initialize(&argc, argv);                                  \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;    \
    benchmark::RunSpecifiedBenchmarks();                                 \
    benchmark::Shutdown();                                               \
    return 0;                                                            \
  }

namespace sptx::bench_detail {
inline constexpr const char* kBuildTypeStamp =
#ifdef NDEBUG
    "release";
#else
    "debug (WARNING: timings not comparable)";
#endif
}  // namespace sptx::bench_detail
