// Serving-layer throughput bench: queries/sec through a shared
// InferenceSession, single-thread vs multi-thread, with and without
// micro-batch coalescing.
//
// The serving claim is twofold: (1) the session is thread-safe and scales
// with concurrent callers, and (2) under concurrency the micro-batching
// queue coalesces small score queries into fewer, larger scoring calls,
// buying back per-call overhead. This bench drives a fixed per-thread query
// load (small triple-scoring batches, the traffic micro-batching targets)
// through four configurations — {1 thread, N threads} × {coalescing off,
// on} — and reports QPS plus the coalescing counters that explain it.
// Top-k candidate queries are measured separately (they bypass the
// micro-batcher and exercise the candidate-plan cache instead).
//
// Two further sections cover the clustered-ANN serving claims: an
// entity-count sweep (10k/100k/1M) comparing brute-force top-k against the
// IVF probe + exact re-rank path (throughput, recall@10, candidates
// scanned), and a zero-downtime hot-swap drill measuring the mid-publish
// p99 against steady state with Engine::publish() flipping snapshots under
// live readers.
//
// Output is one JSON document on stdout — tools/run_benches.sh captures it
// as BENCH_serve.json for the PR-to-PR perf trajectory.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/api/engine.hpp"
#include "src/profiling/timer.hpp"

namespace sptx {
namespace {

struct ServeRow {
  int threads = 0;
  bool micro_batch = false;
  int window_us = 0;
  double seconds = 0.0;
  std::int64_t requests = 0;
  std::int64_t triplets = 0;
  std::int64_t executions = 0;   // underlying score() calls
  std::int64_t coalesced = 0;    // requests that shared an execution
  double qps = 0.0;
  double topk_qps = 0.0;
  std::int64_t plan_hits = 0;
};

constexpr std::size_t kQueryBatch = 8;     // triplets per score request
constexpr std::int64_t kRequests = 4000;   // score requests per thread
constexpr std::int64_t kTopK = 200;        // top-k queries per thread

std::vector<Triplet> make_queries(const kg::Dataset& ds, std::size_t count,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> out(count);
  for (auto& t : out) {
    t.head = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(ds.num_entities())));
    t.relation = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(ds.num_relations())));
    t.tail = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(ds.num_entities())));
  }
  return out;
}

ServeRow run_load(Engine& engine, const kg::Dataset& ds, int threads,
                  bool micro_batch, int window_us) {
  serve::SessionOptions so;
  so.micro_batch = micro_batch;
  so.window_us = window_us;
  auto session = engine.open_session(so);

  // Pre-generated per-thread query streams keep RNG out of the timed loop.
  std::vector<std::vector<Triplet>> streams;
  streams.reserve(static_cast<std::size_t>(threads));
  for (int w = 0; w < threads; ++w)
    streams.push_back(make_queries(
        ds, static_cast<std::size_t>(kRequests) * kQueryBatch,
        static_cast<std::uint64_t>(500 + w)));

  const auto t0 = profiling::clock::now();
  std::vector<std::thread> pool;
  for (int w = 0; w < threads; ++w) {
    pool.emplace_back([&, w] {
      const auto& stream = streams[static_cast<std::size_t>(w)];
      for (std::int64_t i = 0; i < kRequests; ++i) {
        const std::span<const Triplet> batch(
            stream.data() + static_cast<std::size_t>(i) * kQueryBatch,
            kQueryBatch);
        session->score(batch);
      }
    });
  }
  for (auto& t : pool) t.join();
  const double score_seconds = profiling::seconds_since(t0);

  // Top-k pass: anchors cycle a small set so the candidate-plan cache
  // engages the way repeated production queries would.
  const auto t1 = profiling::clock::now();
  std::vector<std::thread> topk_pool;
  for (int w = 0; w < threads; ++w) {
    topk_pool.emplace_back([&, w] {
      Rng rng(static_cast<std::uint64_t>(900 + w));
      for (std::int64_t i = 0; i < kTopK; ++i) {
        const auto h = static_cast<std::int64_t>(rng.next_below(16));
        const auto r = static_cast<std::int64_t>(
            rng.next_below(static_cast<std::uint64_t>(ds.num_relations())));
        session->top_tails(h % ds.num_entities(), r, 10);
      }
    });
  }
  for (auto& t : topk_pool) t.join();
  const double topk_seconds = profiling::seconds_since(t1);

  const auto stats = session->stats();
  ServeRow row;
  row.threads = threads;
  row.micro_batch = micro_batch;
  row.window_us = window_us;
  row.seconds = score_seconds;
  row.requests = stats.batcher.requests;
  row.triplets = stats.batcher.triplets;
  row.executions = stats.batcher.batches_executed;
  row.coalesced = stats.batcher.coalesced_requests;
  row.qps = static_cast<double>(kRequests) * threads / score_seconds;
  row.topk_qps = static_cast<double>(kTopK) * threads / topk_seconds;
  row.plan_hits = stats.plans.hits;
  return row;
}

// ---- graceful degradation ---------------------------------------------------
// Oversubscribe the session (more caller threads than execution slots) and
// measure what admission control buys: with a bounded queue and per-request
// deadlines the session sheds load with typed rejections and the ACCEPTED
// requests keep a bounded p99; without bounds every request is accepted and
// the tail latency is whatever the backlog makes it.

struct DegradedRow {
  const char* posture = "";
  std::int64_t accepted = 0;
  std::int64_t rejected_queue_full = 0;
  std::int64_t rejected_deadline = 0;
  double qps = 0.0;        // accepted requests / wall seconds
  // Accepted-request latency percentiles in MICROSECONDS. Individual
  // requests complete in tens of microseconds, so millisecond-granularity
  // percentiles truncated to 0.00 in the report; µs keeps the resolution.
  double p50_us = 0.0;
  double p99_us = 0.0;
};

/// p-th percentile (nearest-rank on the sorted copy) of latencies in µs.
double percentile_us(std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted_us.size() - 1));
  return sorted_us[idx];
}

DegradedRow run_degraded(Engine& engine, const kg::Dataset& ds,
                         bool bounded) {
  constexpr int kThreads = 8;
  constexpr std::int64_t kPerThread = 400;
  constexpr std::int64_t kDeadlineUs = 50'000;

  serve::SessionOptions so;
  so.micro_batch = true;
  so.max_batch = 64;
  if (bounded) {
    so.queue_limit = 256;           // triplets admitted to the queue
    so.deadline_us = kDeadlineUs;   // default per-request deadline
    so.max_concurrency = 2;         // execution slots — forces a backlog
  }
  auto session = engine.open_session(so);

  std::vector<std::vector<Triplet>> streams;
  for (int w = 0; w < kThreads; ++w)
    streams.push_back(make_queries(
        ds, static_cast<std::size_t>(kPerThread) * kQueryBatch,
        static_cast<std::uint64_t>(700 + w)));

  std::mutex mu;
  std::vector<double> accepted_us;
  std::atomic<std::int64_t> queue_full{0}, deadline{0};

  const auto t0 = profiling::clock::now();
  std::vector<std::thread> pool;
  for (int w = 0; w < kThreads; ++w) {
    pool.emplace_back([&, w] {
      const auto& stream = streams[static_cast<std::size_t>(w)];
      std::vector<double> local;
      for (std::int64_t i = 0; i < kPerThread; ++i) {
        const std::span<const Triplet> batch(
            stream.data() + static_cast<std::size_t>(i) * kQueryBatch,
            kQueryBatch);
        const auto q0 = profiling::clock::now();
        const auto result = session->try_score(batch);
        switch (result.rejected) {
          case serve::RejectReason::kNone:
            local.push_back(profiling::seconds_since(q0) * 1e6);
            break;
          case serve::RejectReason::kQueueFull:
            queue_full.fetch_add(1, std::memory_order_relaxed);
            break;
          case serve::RejectReason::kDeadline:
            deadline.fetch_add(1, std::memory_order_relaxed);
            break;
        }
      }
      const std::lock_guard<std::mutex> lock(mu);
      accepted_us.insert(accepted_us.end(), local.begin(), local.end());
    });
  }
  for (auto& t : pool) t.join();
  const double seconds = profiling::seconds_since(t0);

  DegradedRow row;
  row.posture = bounded ? "bounded" : "unbounded";
  row.accepted = static_cast<std::int64_t>(accepted_us.size());
  row.rejected_queue_full = queue_full.load();
  row.rejected_deadline = deadline.load();
  row.qps = static_cast<double>(row.accepted) / seconds;
  std::sort(accepted_us.begin(), accepted_us.end());
  row.p50_us = percentile_us(accepted_us, 0.50);
  row.p99_us = percentile_us(accepted_us, 0.99);
  return row;
}

// ---- clustered ANN sweep ----------------------------------------------------
// Entity-count sweep over the IVF top-k path: at each vocabulary size a
// frozen TransE model with clustered (Zipf-skewed mixture) embeddings is
// served twice — brute-force scan vs ANN probe + exact re-rank — and the
// bench reports the throughput ratio, recall@10 against the brute-force
// ground truth, and the mean number of candidates the ANN path re-ranked.

struct AnnSweepRow {
  index_t entities = 0;
  index_t k_lists = 0;
  int nprobe = 0;
  double build_s = 0.0;
  double brute_topk_qps = 0.0;
  double ann_topk_qps = 0.0;
  double speedup = 0.0;
  double recall_at_10 = 0.0;
  double mean_candidates = 0.0;
};

AnnSweepRow run_ann_sweep(index_t n) {
  constexpr index_t kDim = 32;
  constexpr index_t kRelations = 8;

  // Zipf-skewed Gaussian mixture: cluster id = C·u² concentrates mass in
  // the low-id clusters (the head of the skew) while every cluster keeps
  // some members; entities are centers + small isotropic noise — the
  // structure an IVF index exploits and real embedding tables exhibit.
  ModelSpec spec;
  spec.family = "TransE";
  spec.config.dim = kDim;
  spec.config.normalize_entities = false;
  spec.seed = 11;
  auto model = models::make_model(spec, n, kRelations);
  {
    Matrix& table = model->params()[0].mutable_value();
    Rng rng(static_cast<std::uint64_t>(2000 + n));
    const auto n_clusters = static_cast<index_t>(
        std::max(16.0, std::sqrt(static_cast<double>(n)) / 2.0));
    Matrix centers(n_clusters, kDim);
    for (index_t c = 0; c < n_clusters; ++c)
      for (index_t j = 0; j < kDim; ++j) centers.at(c, j) = rng.normal();
    for (index_t e = 0; e < n; ++e) {
      const float u = rng.next_float();
      const auto c = static_cast<index_t>(
          static_cast<float>(n_clusters) * u * u);
      const float* center = centers.row(std::min(c, n_clusters - 1));
      float* row = table.row(e);
      for (index_t j = 0; j < kDim; ++j)
        row[j] = center[j] + 0.15f * rng.normal();
    }
    for (index_t r = 0; r < kRelations; ++r) {
      float* row = table.row(n + r);
      for (index_t j = 0; j < kDim; ++j) row[j] = 0.1f * rng.normal();
    }
  }
  std::shared_ptr<const models::KgeModel> frozen(std::move(model));

  // Both sessions serve the SAME frozen weights; only the candidate scan
  // differs. Plan caching off — the sweep queries distinct anchors, so a
  // cache would just stage N-triplet plans it never reuses.
  serve::AnnIndexOptions ao;
  ao.iterations = 4;
  ao.train_points_per_list = 64;
  const auto b0 = profiling::clock::now();
  auto snapshot = serve::make_serving_snapshot(
      frozen, serve::AnnMode::kOn, 0, models::next_snapshot_version(), ao);
  const double build_s = profiling::seconds_since(b0);

  serve::SessionOptions ann_so;
  ann_so.plan_cache = false;
  ann_so.ann = serve::AnnMode::kOn;
  const auto ann_sess =
      std::make_shared<serve::InferenceSession>(snapshot, ann_so);
  serve::SessionOptions brute_so;
  brute_so.plan_cache = false;
  brute_so.ann = serve::AnnMode::kOff;
  const auto brute_sess =
      std::make_shared<serve::InferenceSession>(frozen, brute_so);

  // Paired queries: recall@10 needs the brute-force ground truth per query,
  // so the brute count shrinks with N (each brute query is a full scan);
  // the ANN pass reruns the same anchors more times for timing resolution.
  const auto n_queries = std::clamp<std::int64_t>(2'000'000 / n, 4, 40);
  const auto ann_repeats = std::clamp<std::int64_t>(20'000'000 / n, 20, 400);
  Rng qrng(static_cast<std::uint64_t>(3000 + n));
  std::vector<std::pair<std::int64_t, std::int64_t>> anchors(
      static_cast<std::size_t>(n_queries));
  for (auto& [h, r] : anchors) {
    h = static_cast<std::int64_t>(
        qrng.next_below(static_cast<std::uint64_t>(n)));
    r = static_cast<std::int64_t>(
        qrng.next_below(static_cast<std::uint64_t>(kRelations)));
  }

  const auto tb = profiling::clock::now();
  std::vector<std::vector<serve::Prediction>> truth;
  truth.reserve(anchors.size());
  for (const auto& [h, r] : anchors)
    truth.push_back(brute_sess->top_tails(h, r, 10));
  const double brute_s = profiling::seconds_since(tb);

  double recall = 0.0;
  const auto ta = profiling::clock::now();
  std::vector<std::vector<serve::Prediction>> approx;
  approx.reserve(anchors.size());
  for (const auto& [h, r] : anchors)
    approx.push_back(ann_sess->top_tails(h, r, 10));
  for (std::int64_t rep = n_queries; rep < ann_repeats; ++rep) {
    const auto& [h, r] = anchors[static_cast<std::size_t>(
        rep % static_cast<std::int64_t>(anchors.size()))];
    ann_sess->top_tails(h, r, 10);
  }
  const double ann_s = profiling::seconds_since(ta);

  for (std::size_t q = 0; q < truth.size(); ++q) {
    int hit = 0;
    for (const auto& t : truth[q])
      for (const auto& a : approx[q])
        if (a.entity == t.entity) {
          ++hit;
          break;
        }
    recall += static_cast<double>(hit) /
              static_cast<double>(std::max<std::size_t>(truth[q].size(), 1));
  }
  recall /= static_cast<double>(truth.size());

  const auto stats = ann_sess->stats();
  AnnSweepRow row;
  row.entities = n;
  row.k_lists = snapshot->ann->k_lists();
  row.nprobe = serve::AnnIndex::auto_nprobe(row.k_lists);
  row.build_s = build_s;
  row.brute_topk_qps = static_cast<double>(n_queries) / brute_s;
  row.ann_topk_qps =
      static_cast<double>(std::max(ann_repeats, n_queries)) / ann_s;
  row.speedup = row.ann_topk_qps / row.brute_topk_qps;
  row.recall_at_10 = recall;
  row.mean_candidates =
      stats.topk_ann > 0 ? static_cast<double>(stats.ann_candidates) /
                               static_cast<double>(stats.topk_ann)
                         : 0.0;
  return row;
}

// ---- zero-downtime hot-swap -------------------------------------------------
// The publication claim: Engine::publish() freezes fresh weights and builds
// the new ANN index on the publisher's thread, then atomically installs the
// snapshot under live readers — no request fails, and the mid-swap p99 stays
// within a small factor of steady state (the flip itself is one pointer
// store; only the concurrent index build competes for CPU).

struct SwapRow {
  std::int64_t requests = 0;
  std::int64_t failed = 0;
  int publishes = 0;
  std::int64_t installs = 0;
  double steady_p50_us = 0.0;
  double steady_p99_us = 0.0;
  double swap_p50_us = 0.0;
  double swap_p99_us = 0.0;
  double ratio = 0.0;  // swap_p99 / steady_p99
};

SwapRow run_hotswap() {
  constexpr index_t kEntities = 20'000;
  constexpr index_t kRelations = 20;
  constexpr int kThreads = 2;
  constexpr std::int64_t kPerThread = 1'500;
  constexpr int kPublishes = 3;

  Engine engine;
  ModelSpec spec;
  spec.family = "TransE";
  spec.config.dim = 64;
  spec.seed = 21;
  engine.create_model(spec, kEntities, kRelations);
  auto session = engine.open_session({});  // ANN auto: 20k > threshold

  std::atomic<std::int64_t> failed{0};
  // Mixed load: mostly small score batches, every 16th request a top-k
  // (the ANN path) — the same mix in both phases keeps the p99s comparable.
  const auto run_phase = [&](std::uint64_t seed) {
    std::mutex mu;
    std::vector<double> latencies_us;
    std::vector<std::thread> pool;
    for (int w = 0; w < kThreads; ++w) {
      pool.emplace_back([&, w] {
        Rng rng(seed + static_cast<std::uint64_t>(w));
        std::vector<Triplet> batch(kQueryBatch);
        std::vector<double> local;
        local.reserve(static_cast<std::size_t>(kPerThread));
        for (std::int64_t i = 0; i < kPerThread; ++i) {
          const auto q0 = profiling::clock::now();
          try {
            if (i % 16 == 15) {
              const auto h = static_cast<std::int64_t>(
                  rng.next_below(kEntities));
              const auto r = static_cast<std::int64_t>(
                  rng.next_below(kRelations));
              session->top_tails(h, r, 10);
            } else {
              for (auto& t : batch) {
                t.head = static_cast<std::int64_t>(rng.next_below(kEntities));
                t.relation =
                    static_cast<std::int64_t>(rng.next_below(kRelations));
                t.tail = static_cast<std::int64_t>(rng.next_below(kEntities));
              }
              session->score(batch);
            }
            local.push_back(profiling::seconds_since(q0) * 1e6);
          } catch (const std::exception&) {
            failed.fetch_add(1, std::memory_order_relaxed);
          }
        }
        const std::lock_guard<std::mutex> lock(mu);
        latencies_us.insert(latencies_us.end(), local.begin(), local.end());
      });
    }
    for (auto& t : pool) t.join();
    std::sort(latencies_us.begin(), latencies_us.end());
    return latencies_us;
  };

  auto steady = run_phase(4000);

  // Same load again, now with a publisher hot-swapping fresh snapshots
  // (freeze + ANN rebuild + install) mid-run.
  std::atomic<bool> done{false};
  int published = 0;
  std::thread publisher([&] {
    for (int p = 0; p < kPublishes && !done.load(); ++p) {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      engine.publish();
      ++published;
    }
  });
  auto swapped = run_phase(5000);
  done.store(true);
  publisher.join();

  SwapRow row;
  row.requests = static_cast<std::int64_t>(steady.size() + swapped.size());
  row.failed = failed.load();
  row.publishes = published;
  row.installs = session->stats().installs;
  row.steady_p50_us = percentile_us(steady, 0.50);
  row.steady_p99_us = percentile_us(steady, 0.99);
  row.swap_p50_us = percentile_us(swapped, 0.50);
  row.swap_p99_us = percentile_us(swapped, 0.99);
  row.ratio = row.steady_p99_us > 0.0 ? row.swap_p99_us / row.steady_p99_us
                                      : 0.0;
  return row;
}

}  // namespace
}  // namespace sptx

int main() {
  using namespace sptx;

  Rng rng(42);
  kg::Dataset ds = kg::generate(
      kg::scaled(kg::profile_by_name("FB15K"), bench::scale()), rng);

  Engine engine;
  ModelSpec spec;
  spec.family = "TransE";
  spec.config.dim = 64;
  spec.seed = 7;
  engine.create_model(spec, ds.num_entities(), ds.num_relations());
  train::TrainConfig tc;
  tc.epochs = bench::epochs(2);
  tc.batch_size = 8192;
  engine.train(ds.train, tc);

  const int many = 4;
  std::vector<ServeRow> rows;
  // Three postures per thread count: direct (no queue), continuous batching
  // (queue, no linger — coalesces only what contention piled up), and
  // linger batching (a 100us window forces coalescing, trading latency).
  for (const int threads : {1, many}) {
    rows.push_back(run_load(engine, ds, threads, false, 0));
    rows.push_back(run_load(engine, ds, threads, true, 0));
    rows.push_back(run_load(engine, ds, threads, true, 100));
  }

  std::printf("{\n  \"bench\": \"serve\",\n");
  std::printf("  \"dataset\": {\"entities\": %lld, \"relations\": %lld, "
              "\"train\": %lld},\n",
              static_cast<long long>(ds.num_entities()),
              static_cast<long long>(ds.num_relations()),
              static_cast<long long>(ds.train.size()));
  std::printf("  \"query_batch\": %zu,\n  \"requests_per_thread\": %lld,\n",
              kQueryBatch, static_cast<long long>(kRequests));
  std::printf("  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ServeRow& r = rows[i];
    std::printf("    {\"threads\": %d, \"micro_batch\": %s, "
                "\"window_us\": %d, \"qps\": %.0f, \"topk_qps\": %.0f, "
                "\"requests\": %lld, \"executions\": %lld, "
                "\"coalesced\": %lld, \"plan_hits\": %lld}%s\n",
                r.threads, r.micro_batch ? "true" : "false", r.window_us,
                r.qps, r.topk_qps, static_cast<long long>(r.requests),
                static_cast<long long>(r.executions),
                static_cast<long long>(r.coalesced),
                static_cast<long long>(r.plan_hits),
                i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ],\n");

  // Degraded-mode rows: the same oversubscribed burst with and without
  // admission control (bounded queue + deadlines + capped concurrency).
  std::printf("  \"degraded\": [\n");
  const DegradedRow degraded[] = {run_degraded(engine, ds, false),
                                  run_degraded(engine, ds, true)};
  for (std::size_t i = 0; i < 2; ++i) {
    const DegradedRow& r = degraded[i];
    std::printf("    {\"posture\": \"%s\", \"accepted\": %lld, "
                "\"rejected_queue_full\": %lld, \"rejected_deadline\": %lld, "
                "\"accepted_qps\": %.0f, \"p50_us\": %.1f, "
                "\"p99_us\": %.1f}%s\n",
                r.posture, static_cast<long long>(r.accepted),
                static_cast<long long>(r.rejected_queue_full),
                static_cast<long long>(r.rejected_deadline), r.qps, r.p50_us,
                r.p99_us, i + 1 < 2 ? "," : "");
  }
  std::printf("  ],\n");

  // Clustered ANN sweep: brute vs probe+re-rank at three vocabulary sizes.
  std::printf("  \"ann_sweep\": [\n");
  const index_t sweep_sizes[] = {10'000, 100'000, 1'000'000};
  for (std::size_t i = 0; i < 3; ++i) {
    const AnnSweepRow r = run_ann_sweep(sweep_sizes[i]);
    std::printf("    {\"entities\": %lld, \"k_lists\": %lld, \"nprobe\": %d, "
                "\"build_s\": %.2f, \"brute_topk_qps\": %.1f, "
                "\"ann_topk_qps\": %.1f, \"speedup\": %.2f, "
                "\"recall_at_10\": %.4f, \"mean_candidates\": %.0f}%s\n",
                static_cast<long long>(r.entities),
                static_cast<long long>(r.k_lists), r.nprobe, r.build_s,
                r.brute_topk_qps, r.ann_topk_qps, r.speedup, r.recall_at_10,
                r.mean_candidates, i + 1 < 3 ? "," : "");
  }
  std::printf("  ],\n");

  // Zero-downtime publication: p99 with hot-swaps mid-run vs steady state.
  {
    const SwapRow r = run_hotswap();
    std::printf("  \"hot_swap\": {\"requests\": %lld, \"failed\": %lld, "
                "\"publishes\": %d, \"installs\": %lld, "
                "\"steady_p50_us\": %.1f, \"steady_p99_us\": %.1f, "
                "\"swap_p50_us\": %.1f, \"swap_p99_us\": %.1f, "
                "\"p99_ratio\": %.2f},\n",
                static_cast<long long>(r.requests),
                static_cast<long long>(r.failed), r.publishes,
                static_cast<long long>(r.installs), r.steady_p50_us,
                r.steady_p99_us, r.swap_p50_us, r.swap_p99_us, r.ratio);
  }

  std::printf("  \"ann_shape\": \"ANN top-k throughput should exceed brute "
              "force by ~5x at 100k entities and more at 1M with recall@10 "
              ">= 0.95 (scores exact, candidate set approximate); hot-swap "
              "p99 should stay within ~2x steady-state p99 with zero failed "
              "requests — the flip is one atomic pointer store, the index "
              "build runs off the read path\",\n");
  std::printf("  \"degraded_shape\": \"the bounded posture sheds excess load "
              "with typed rejections (queue_full on admission, deadline for "
              "requests that expire while queued) and keeps the accepted-"
              "request p99 near the 50ms deadline; the unbounded posture "
              "accepts everything and lets the backlog set the tail\",\n");
  std::printf("  \"paper_shape\": \"session is thread-safe at every row; "
              "under concurrency the linger window collapses executions to "
              "~requests/threads (coalesced ~= requests). On CPU-cheap "
              "queries the direct path wins raw QPS — the linger only pays "
              "when per-execution cost dominates (large models, accelerator "
              "dispatch); window 0 is the latency-neutral default\"\n}\n");
  return 0;
}
