// Serving-layer throughput bench: queries/sec through a shared
// InferenceSession, single-thread vs multi-thread, with and without
// micro-batch coalescing.
//
// The serving claim is twofold: (1) the session is thread-safe and scales
// with concurrent callers, and (2) under concurrency the micro-batching
// queue coalesces small score queries into fewer, larger scoring calls,
// buying back per-call overhead. This bench drives a fixed per-thread query
// load (small triple-scoring batches, the traffic micro-batching targets)
// through four configurations — {1 thread, N threads} × {coalescing off,
// on} — and reports QPS plus the coalescing counters that explain it.
// Top-k candidate queries are measured separately (they bypass the
// micro-batcher and exercise the candidate-plan cache instead).
//
// Output is one JSON document on stdout — tools/run_benches.sh captures it
// as BENCH_serve.json for the PR-to-PR perf trajectory.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/api/engine.hpp"
#include "src/profiling/timer.hpp"

namespace sptx {
namespace {

struct ServeRow {
  int threads = 0;
  bool micro_batch = false;
  int window_us = 0;
  double seconds = 0.0;
  std::int64_t requests = 0;
  std::int64_t triplets = 0;
  std::int64_t executions = 0;   // underlying score() calls
  std::int64_t coalesced = 0;    // requests that shared an execution
  double qps = 0.0;
  double topk_qps = 0.0;
  std::int64_t plan_hits = 0;
};

constexpr std::size_t kQueryBatch = 8;     // triplets per score request
constexpr std::int64_t kRequests = 4000;   // score requests per thread
constexpr std::int64_t kTopK = 200;        // top-k queries per thread

std::vector<Triplet> make_queries(const kg::Dataset& ds, std::size_t count,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> out(count);
  for (auto& t : out) {
    t.head = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(ds.num_entities())));
    t.relation = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(ds.num_relations())));
    t.tail = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(ds.num_entities())));
  }
  return out;
}

ServeRow run_load(Engine& engine, const kg::Dataset& ds, int threads,
                  bool micro_batch, int window_us) {
  serve::SessionOptions so;
  so.micro_batch = micro_batch;
  so.window_us = window_us;
  auto session = engine.open_session(so);

  // Pre-generated per-thread query streams keep RNG out of the timed loop.
  std::vector<std::vector<Triplet>> streams;
  streams.reserve(static_cast<std::size_t>(threads));
  for (int w = 0; w < threads; ++w)
    streams.push_back(make_queries(
        ds, static_cast<std::size_t>(kRequests) * kQueryBatch,
        static_cast<std::uint64_t>(500 + w)));

  const auto t0 = profiling::clock::now();
  std::vector<std::thread> pool;
  for (int w = 0; w < threads; ++w) {
    pool.emplace_back([&, w] {
      const auto& stream = streams[static_cast<std::size_t>(w)];
      for (std::int64_t i = 0; i < kRequests; ++i) {
        const std::span<const Triplet> batch(
            stream.data() + static_cast<std::size_t>(i) * kQueryBatch,
            kQueryBatch);
        session->score(batch);
      }
    });
  }
  for (auto& t : pool) t.join();
  const double score_seconds = profiling::seconds_since(t0);

  // Top-k pass: anchors cycle a small set so the candidate-plan cache
  // engages the way repeated production queries would.
  const auto t1 = profiling::clock::now();
  std::vector<std::thread> topk_pool;
  for (int w = 0; w < threads; ++w) {
    topk_pool.emplace_back([&, w] {
      Rng rng(static_cast<std::uint64_t>(900 + w));
      for (std::int64_t i = 0; i < kTopK; ++i) {
        const auto h = static_cast<std::int64_t>(rng.next_below(16));
        const auto r = static_cast<std::int64_t>(
            rng.next_below(static_cast<std::uint64_t>(ds.num_relations())));
        session->top_tails(h % ds.num_entities(), r, 10);
      }
    });
  }
  for (auto& t : topk_pool) t.join();
  const double topk_seconds = profiling::seconds_since(t1);

  const auto stats = session->stats();
  ServeRow row;
  row.threads = threads;
  row.micro_batch = micro_batch;
  row.window_us = window_us;
  row.seconds = score_seconds;
  row.requests = stats.batcher.requests;
  row.triplets = stats.batcher.triplets;
  row.executions = stats.batcher.batches_executed;
  row.coalesced = stats.batcher.coalesced_requests;
  row.qps = static_cast<double>(kRequests) * threads / score_seconds;
  row.topk_qps = static_cast<double>(kTopK) * threads / topk_seconds;
  row.plan_hits = stats.plans.hits;
  return row;
}

// ---- graceful degradation ---------------------------------------------------
// Oversubscribe the session (more caller threads than execution slots) and
// measure what admission control buys: with a bounded queue and per-request
// deadlines the session sheds load with typed rejections and the ACCEPTED
// requests keep a bounded p99; without bounds every request is accepted and
// the tail latency is whatever the backlog makes it.

struct DegradedRow {
  const char* posture = "";
  std::int64_t accepted = 0;
  std::int64_t rejected_queue_full = 0;
  std::int64_t rejected_deadline = 0;
  double qps = 0.0;        // accepted requests / wall seconds
  double p50_ms = 0.0;     // accepted-request latency percentiles
  double p99_ms = 0.0;
};

DegradedRow run_degraded(Engine& engine, const kg::Dataset& ds,
                         bool bounded) {
  constexpr int kThreads = 8;
  constexpr std::int64_t kPerThread = 400;
  constexpr std::int64_t kDeadlineUs = 50'000;

  serve::SessionOptions so;
  so.micro_batch = true;
  so.max_batch = 64;
  if (bounded) {
    so.queue_limit = 256;           // triplets admitted to the queue
    so.deadline_us = kDeadlineUs;   // default per-request deadline
    so.max_concurrency = 2;         // execution slots — forces a backlog
  }
  auto session = engine.open_session(so);

  std::vector<std::vector<Triplet>> streams;
  for (int w = 0; w < kThreads; ++w)
    streams.push_back(make_queries(
        ds, static_cast<std::size_t>(kPerThread) * kQueryBatch,
        static_cast<std::uint64_t>(700 + w)));

  std::mutex mu;
  std::vector<double> accepted_ms;
  std::atomic<std::int64_t> queue_full{0}, deadline{0};

  const auto t0 = profiling::clock::now();
  std::vector<std::thread> pool;
  for (int w = 0; w < kThreads; ++w) {
    pool.emplace_back([&, w] {
      const auto& stream = streams[static_cast<std::size_t>(w)];
      std::vector<double> local;
      for (std::int64_t i = 0; i < kPerThread; ++i) {
        const std::span<const Triplet> batch(
            stream.data() + static_cast<std::size_t>(i) * kQueryBatch,
            kQueryBatch);
        const auto q0 = profiling::clock::now();
        const auto result = session->try_score(batch);
        switch (result.rejected) {
          case serve::RejectReason::kNone:
            local.push_back(profiling::seconds_since(q0) * 1e3);
            break;
          case serve::RejectReason::kQueueFull:
            queue_full.fetch_add(1, std::memory_order_relaxed);
            break;
          case serve::RejectReason::kDeadline:
            deadline.fetch_add(1, std::memory_order_relaxed);
            break;
        }
      }
      const std::lock_guard<std::mutex> lock(mu);
      accepted_ms.insert(accepted_ms.end(), local.begin(), local.end());
    });
  }
  for (auto& t : pool) t.join();
  const double seconds = profiling::seconds_since(t0);

  DegradedRow row;
  row.posture = bounded ? "bounded" : "unbounded";
  row.accepted = static_cast<std::int64_t>(accepted_ms.size());
  row.rejected_queue_full = queue_full.load();
  row.rejected_deadline = deadline.load();
  row.qps = static_cast<double>(row.accepted) / seconds;
  if (!accepted_ms.empty()) {
    std::sort(accepted_ms.begin(), accepted_ms.end());
    const auto at = [&](double q) {
      const auto idx = static_cast<std::size_t>(
          q * static_cast<double>(accepted_ms.size() - 1));
      return accepted_ms[idx];
    };
    row.p50_ms = at(0.50);
    row.p99_ms = at(0.99);
  }
  return row;
}

}  // namespace
}  // namespace sptx

int main() {
  using namespace sptx;

  Rng rng(42);
  kg::Dataset ds = kg::generate(
      kg::scaled(kg::profile_by_name("FB15K"), bench::scale()), rng);

  Engine engine;
  ModelSpec spec;
  spec.family = "TransE";
  spec.config.dim = 64;
  spec.seed = 7;
  engine.create_model(spec, ds.num_entities(), ds.num_relations());
  train::TrainConfig tc;
  tc.epochs = bench::epochs(2);
  tc.batch_size = 8192;
  engine.train(ds.train, tc);

  const int many = 4;
  std::vector<ServeRow> rows;
  // Three postures per thread count: direct (no queue), continuous batching
  // (queue, no linger — coalesces only what contention piled up), and
  // linger batching (a 100us window forces coalescing, trading latency).
  for (const int threads : {1, many}) {
    rows.push_back(run_load(engine, ds, threads, false, 0));
    rows.push_back(run_load(engine, ds, threads, true, 0));
    rows.push_back(run_load(engine, ds, threads, true, 100));
  }

  std::printf("{\n  \"bench\": \"serve\",\n");
  std::printf("  \"dataset\": {\"entities\": %lld, \"relations\": %lld, "
              "\"train\": %lld},\n",
              static_cast<long long>(ds.num_entities()),
              static_cast<long long>(ds.num_relations()),
              static_cast<long long>(ds.train.size()));
  std::printf("  \"query_batch\": %zu,\n  \"requests_per_thread\": %lld,\n",
              kQueryBatch, static_cast<long long>(kRequests));
  std::printf("  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ServeRow& r = rows[i];
    std::printf("    {\"threads\": %d, \"micro_batch\": %s, "
                "\"window_us\": %d, \"qps\": %.0f, \"topk_qps\": %.0f, "
                "\"requests\": %lld, \"executions\": %lld, "
                "\"coalesced\": %lld, \"plan_hits\": %lld}%s\n",
                r.threads, r.micro_batch ? "true" : "false", r.window_us,
                r.qps, r.topk_qps, static_cast<long long>(r.requests),
                static_cast<long long>(r.executions),
                static_cast<long long>(r.coalesced),
                static_cast<long long>(r.plan_hits),
                i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ],\n");

  // Degraded-mode rows: the same oversubscribed burst with and without
  // admission control (bounded queue + deadlines + capped concurrency).
  std::printf("  \"degraded\": [\n");
  const DegradedRow degraded[] = {run_degraded(engine, ds, false),
                                  run_degraded(engine, ds, true)};
  for (std::size_t i = 0; i < 2; ++i) {
    const DegradedRow& r = degraded[i];
    std::printf("    {\"posture\": \"%s\", \"accepted\": %lld, "
                "\"rejected_queue_full\": %lld, \"rejected_deadline\": %lld, "
                "\"accepted_qps\": %.0f, \"p50_ms\": %.2f, "
                "\"p99_ms\": %.2f}%s\n",
                r.posture, static_cast<long long>(r.accepted),
                static_cast<long long>(r.rejected_queue_full),
                static_cast<long long>(r.rejected_deadline), r.qps, r.p50_ms,
                r.p99_ms, i + 1 < 2 ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"degraded_shape\": \"the bounded posture sheds excess load "
              "with typed rejections (queue_full on admission, deadline for "
              "requests that expire while queued) and keeps the accepted-"
              "request p99 near the 50ms deadline; the unbounded posture "
              "accepts everything and lets the backlog set the tail\",\n");
  std::printf("  \"paper_shape\": \"session is thread-safe at every row; "
              "under concurrency the linger window collapses executions to "
              "~requests/threads (coalesced ~= requests). On CPU-cheap "
              "queries the direct path wins raw QPS — the linger only pays "
              "when per-execution cost dominates (large models, accelerator "
              "dispatch); window 0 is the latency-neutral default\"\n}\n");
  return 0;
}
