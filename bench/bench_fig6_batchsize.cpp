// Figure 6: training time and peak memory vs batch size.
// Paper: batch 2^12 … 2^19 on FB15K, d = 128 (rel dim 8 for TransH);
// largest batch gives both the fastest training and the highest memory.
#include "bench_common.hpp"

using namespace sptx;

int main() {
  bench::print_header(
      "Figure 6 — training time and peak memory vs batch size",
      "time decreases as batch grows (fewer kernel launches / better "
      "locality); memory grows with batch; largest batch = fastest");

  const int ep = bench::epochs(5);
  const kg::Dataset ds = bench::load_scaled("FB15K", 42);

  for (const std::string model_name :
       {"TransE", "TransR", "TransH", "TorusE"}) {
    models::ModelConfig cfg = bench::bench_config(model_name);
    cfg.dim = 128;
    if (model_name == "TransH") cfg.rel_dim = 8;
    std::printf("%s:\n", model_name.c_str());
    std::printf("  %-10s %-12s %-14s\n", "batch", "time(s)", "peak(MB)");
    for (index_t batch = 1 << 8; batch <= 1 << 13; batch <<= 1) {
      Rng rng(7);
      auto model = models::make_sparse_model(
          model_name, ds.num_entities(), ds.num_relations(), cfg, rng);
      const auto result = train::train(*model, ds.train,
                                       bench::bench_train_config(ep, batch));
      std::printf("  %-10lld %-12.3f %-14.2f\n",
                  static_cast<long long>(batch), result.total_seconds,
                  static_cast<double>(result.peak_bytes) / (1024.0 * 1024.0));
      std::fflush(stdout);
    }
  }
  return 0;
}
