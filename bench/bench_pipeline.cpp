// BatchPlan pipeline bench: first-epoch vs cached-epoch wall time.
//
// The plan/execute split claims that with an epoch-invariant schedule every
// epoch after the first skips plan compilation entirely (the PlanCache
// serves it), so cached epochs must be no slower — and on rebuild-heavy
// shapes measurably faster — than epoch 1. This bench trains each of the
// six sparse model families twice:
//
//   * fixed-order (§5.3 protocol): reports epoch-1 wall time vs the mean
//     cached-epoch wall time, plus the legacy rebuild path's mean epoch for
//     reference, and the cache/build counters that prove reuse;
//   * shuffled + resampled: plans invalidate every epoch, so the comparison
//     becomes prefetch off vs on (background compilation of epoch e+1
//     overlapping epoch e).
//
// Output is one JSON document on stdout — tools/run_benches.sh captures it
// as BENCH_pipeline.json for the PR-to-PR perf trajectory.
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"

namespace sptx {
namespace {

struct PipelineRow {
  std::string model;
  double epoch1_s = 0.0;
  double cached_epoch_s = 0.0;   // mean of epochs >= 2 (plan path)
  double legacy_epoch_s = 0.0;   // mean epoch of the rebuild path
  double prefetch_off_s = 0.0;   // total seconds, shuffled + resampled
  double prefetch_on_s = 0.0;
  std::int64_t plan_hits = 0;
  std::int64_t incidence_builds = 0;
};

double mean_tail(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  return std::accumulate(xs.begin() + 1, xs.end(), 0.0) /
         static_cast<double>(xs.size() - 1);
}

double mean_all(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

PipelineRow run_model(const std::string& name, const kg::Dataset& ds,
                      int epochs) {
  PipelineRow row;
  row.model = name;

  models::ModelConfig cfg;
  cfg.dim = 64;  // rebuild-heavy shape: small dim keeps the SpMM cheap
  cfg.rel_dim = 32;

  train::TrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = 4096;
  tc.lr = 0.01f;

  auto fresh = [&]() {
    Rng rng(7);
    return models::make_sparse_model(name, ds.num_entities(),
                                     ds.num_relations(), cfg, rng);
  };

  {  // Fixed-order protocol: cache serves every epoch after the first.
    auto model = fresh();
    tc.plan_cache = true;
    const auto r = train::train(*model, ds.train, tc);
    row.epoch1_s = r.epoch_seconds.empty() ? 0.0 : r.epoch_seconds.front();
    row.cached_epoch_s = mean_tail(r.epoch_seconds);
    row.plan_hits = r.plan_stats.hits;
    row.incidence_builds = r.incidence_builds;
  }
  {  // Legacy per-batch rebuild reference.
    auto model = fresh();
    tc.plan_cache = false;
    const auto r = train::train(*model, ds.train, tc);
    row.legacy_epoch_s = mean_all(r.epoch_seconds);
  }
  {  // Variant schedule: prefetch off vs on.
    tc.plan_cache = true;
    tc.shuffle = true;
    tc.resample_negatives = true;
    tc.prefetch = false;
    auto off_model = fresh();
    row.prefetch_off_s = train::train(*off_model, ds.train, tc).total_seconds;
    tc.prefetch = true;
    auto on_model = fresh();
    row.prefetch_on_s = train::train(*on_model, ds.train, tc).total_seconds;
  }
  return row;
}

}  // namespace
}  // namespace sptx

int main() {
  using namespace sptx;
  // One representative per family: sp_transe, sp_transh, sp_transr,
  // sp_toruse, the semiring extensions, and the extra translational set.
  const std::vector<std::string> families = {"TransE", "TransH",  "TransR",
                                             "TorusE", "DistMult", "TransD"};
  const kg::Dataset ds = bench::load_scaled("FB15K", 33);
  const int epochs = bench::epochs(6);

  std::printf("{\n");
  std::printf("  \"bench\": \"pipeline\",\n");
  std::printf("  \"dataset\": \"FB15K(scaled)\",\n");
  std::printf("  \"triplets\": %lld,\n",
              static_cast<long long>(ds.train.size()));
  std::printf("  \"epochs\": %d,\n", epochs);
  std::printf(
      "  \"paper_shape\": \"cached epochs never slower than epoch 1; "
      "rebuild-heavy shapes measurably faster; prefetch hides plan "
      "compilation under shuffled/resampled schedules\",\n");
  std::printf("  \"models\": [\n");
  for (std::size_t i = 0; i < families.size(); ++i) {
    const PipelineRow row = run_model(families[i], ds, epochs);
    std::printf(
        "    {\"model\": \"%s\", \"epoch1_s\": %.6f, \"cached_epoch_s\": "
        "%.6f, \"cached_speedup\": %.3f, \"legacy_epoch_s\": %.6f, "
        "\"prefetch_off_s\": %.6f, \"prefetch_on_s\": %.6f, \"plan_hits\": "
        "%lld, \"incidence_builds\": %lld}%s\n",
        row.model.c_str(), row.epoch1_s, row.cached_epoch_s,
        row.cached_epoch_s > 0.0 ? row.epoch1_s / row.cached_epoch_s : 0.0,
        row.legacy_epoch_s, row.prefetch_off_s, row.prefetch_on_s,
        static_cast<long long>(row.plan_hits),
        static_cast<long long>(row.incidence_builds),
        i + 1 < families.size() ? "," : "");
    std::fflush(stdout);
  }
  std::printf("  ]\n}\n");
  return 0;
}
