// Ablation: negatives-per-positive ratio k.
//
// The paper trains 1:1 (§6.1 "number of positive and negative edges equal
// within a batch"); frameworks like DGL-KE default to larger k. This bench
// shows the cost side of that choice under the sparse formulation: the
// positive batch is tiled against each corruption block, so work scales
// ~linearly in k (2k·M incidence rows per step), and the incidence
// structure keeps every extra negative at 3 nnz — no superlinear blow-up,
// the SpMM stays the same kernel.
#include "bench_common.hpp"

using namespace sptx;

int main() {
  bench::print_header(
      "Ablation — training cost vs negatives per positive (SpTransE)",
      "epoch time and peak memory grow ~linearly in k; negatives add "
      "incidence rows, not density");

  const int ep = bench::epochs(5);
  const kg::Dataset ds = bench::load_scaled("FB15K", 42);
  const models::ModelConfig cfg = bench::bench_config("TransE");

  std::printf("%-6s %-12s %-14s %-12s\n", "k", "time(s)", "peak(MB)",
              "final loss");
  double t1 = 0.0;
  for (int k : {1, 2, 4, 8, 16}) {
    Rng rng(7);
    auto model = models::make_sparse_model(
        "TransE", ds.num_entities(), ds.num_relations(), cfg, rng);
    train::TrainConfig tc = bench::bench_train_config(ep, 4096);
    tc.negatives_per_positive = k;
    const auto result = train::train(*model, ds.train, tc);
    if (k == 1) t1 = result.total_seconds;
    std::printf("%-6d %-12.3f %-14.2f %-12.4f  (%.1fx the k=1 time)\n", k,
                result.total_seconds,
                static_cast<double>(result.peak_bytes) / (1024.0 * 1024.0),
                result.epoch_loss.back(), result.total_seconds / t1);
    std::fflush(stdout);
  }
  return 0;
}
