// Runtime (TaskPool) bench: thread scaling and composed train+serve load.
//
// The work-stealing runtime's two claims:
//
//   * Thread scaling — SpMM throughput, fused-epoch wall time, and serve
//     QPS as the pool is resized across 1/2/4/8 lanes. On a multi-core
//     host SpMM should scale near-linearly until memory bandwidth wins;
//     on a 1-core CI VM every width collapses to the caller lane and the
//     rows document overhead, not speedup — `cores` is stamped into the
//     JSON so the reader can tell which regime produced the numbers.
//   * Composition — training and serving in one process used to mean two
//     independent threading schemes (OpenMP kernels under the trainer vs
//     request threads) oversubscribing each other. With the shared pool
//     the same composed run holds its serve QPS while training, because
//     both sides draw from one set of lanes. SPTX_RUNTIME=legacy replays
//     the composed run on the historical threading for comparison.
//
// Output is one JSON document on stdout — tools/run_benches.sh captures
// it as BENCH_runtime.json for the PR-to-PR perf trajectory.
#include <cstdio>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/api/engine.hpp"
#include "src/profiling/timer.hpp"
#include "src/runtime/parallel.hpp"
#include "src/runtime/task_pool.hpp"
#include "src/serve/session.hpp"
#include "src/sparse/spmm.hpp"

namespace sptx {
namespace {

Coo random_coo(index_t rows, index_t cols, index_t nnz, Rng& rng) {
  Coo coo;
  coo.rows = rows;
  coo.cols = cols;
  for (index_t k = 0; k < nnz; ++k) {
    coo.push(static_cast<index_t>(
                 rng.next_below(static_cast<std::uint64_t>(rows))),
             static_cast<index_t>(
                 rng.next_below(static_cast<std::uint64_t>(cols))),
             rng.uniform(-1, 1));
  }
  return coo;
}

struct ScalingRow {
  int width = 1;
  double spmm_gflops = 0.0;    // tiled-parallel CSR kernel
  double fused_epoch_s = 0.0;  // mean epoch, fused TransE training
  double serve_qps = 0.0;      // score() batches per second, one leader
};

std::vector<Triplet> make_queries(const kg::Dataset& ds, std::size_t count,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> out(count);
  for (auto& t : out) {
    t.head = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(ds.num_entities())));
    t.relation = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(ds.num_relations())));
    t.tail = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(ds.num_entities())));
  }
  return out;
}

constexpr std::size_t kQueryBatch = 64;

double measure_serve_qps(serve::InferenceSession& session,
                         const std::vector<Triplet>& stream,
                         std::int64_t requests) {
  const auto t0 = profiling::clock::now();
  for (std::int64_t i = 0; i < requests; ++i) {
    const std::span<const Triplet> batch(
        stream.data() +
            (static_cast<std::size_t>(i) * kQueryBatch) % stream.size(),
        kQueryBatch);
    session.score(batch);
  }
  return static_cast<double>(requests) / profiling::seconds_since(t0);
}

ScalingRow run_width(int width, const Csr& a, const Matrix& x, Matrix& c,
                     int spmm_iters, const kg::Dataset& ds,
                     Engine& engine, const std::vector<Triplet>& stream) {
  runtime::TaskPool::instance().resize(width);
  ScalingRow row;
  row.width = width;

  {  // SpMM: the tiled-parallel kernel drives runtime::parallel_for.
    const auto t0 = profiling::clock::now();
    for (int i = 0; i < spmm_iters; ++i)
      spmm_csr_into(a, x, c, SpmmKernel::kTiledParallel);
    const double s = profiling::seconds_since(t0);
    row.spmm_gflops = 2.0 * static_cast<double>(a.nnz()) *
                      static_cast<double>(x.cols()) * spmm_iters / s / 1e9;
  }
  {  // Fused epoch: fresh replica per width, same seed → same trajectory.
    Rng rng(7);
    auto model = models::make_sparse_model(
        "TransE", ds.num_entities(), ds.num_relations(),
        [] {
          models::ModelConfig cfg;
          cfg.dim = 64;
          return cfg;
        }(),
        rng);
    train::TrainConfig tc;
    tc.epochs = bench::epochs(2);
    tc.batch_size = 8192;
    const auto r = train::train(*model, ds.train, tc);
    row.fused_epoch_s =
        r.epoch_seconds.empty()
            ? 0.0
            : r.total_seconds / static_cast<double>(r.epoch_seconds.size());
  }
  {  // Serve: one leader thread scoring through the micro-batcher.
    auto session = engine.open_session({});
    row.serve_qps = measure_serve_qps(*session, stream, 400);
  }
  return row;
}

struct ComposedRow {
  std::string mode;
  double train_s = 0.0;
  double serve_qps = 0.0;  // sustained while training runs
};

/// Train on the main thread while a request thread scores continuously —
/// the oversubscription scenario the shared pool exists for.
ComposedRow run_composed(const std::string& mode, const kg::Dataset& ds,
                         Engine& engine,
                         const std::vector<Triplet>& stream) {
  config::ScopedOverride override_mode("SPTX_RUNTIME", mode);
  ComposedRow row;
  row.mode = mode;

  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> served{0};
  double serve_seconds = 0.0;
  std::thread server([&] {
    auto session = engine.open_session({});
    const auto t0 = profiling::clock::now();
    std::size_t cursor = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::span<const Triplet> batch(
          stream.data() + (cursor * kQueryBatch) % stream.size(),
          kQueryBatch);
      session->score(batch);
      ++cursor;
      served.fetch_add(1, std::memory_order_relaxed);
    }
    serve_seconds = profiling::seconds_since(t0);
  });

  {
    Rng rng(7);
    auto model = models::make_sparse_model(
        "TransE", ds.num_entities(), ds.num_relations(),
        [] {
          models::ModelConfig cfg;
          cfg.dim = 64;
          return cfg;
        }(),
        rng);
    train::TrainConfig tc;
    tc.epochs = bench::epochs(2);
    tc.batch_size = 8192;
    // Re-run training until the composed phase has lasted long enough for
    // the serve thread to sustain a measurable stream — at bench scale a
    // single run can finish in well under a millisecond.
    const auto t0 = profiling::clock::now();
    int runs = 0;
    do {
      train::train(*model, ds.train, tc);
      ++runs;
    } while (profiling::seconds_since(t0) < 0.5);
    row.train_s = profiling::seconds_since(t0) / runs;
  }

  stop.store(true, std::memory_order_relaxed);
  server.join();
  row.serve_qps = serve_seconds > 0.0
                      ? static_cast<double>(served.load()) / serve_seconds
                      : 0.0;
  return row;
}

}  // namespace
}  // namespace sptx

int main() {
  using namespace sptx;
  bench::warn_if_debug_build();

  Rng rng(42);
  kg::Dataset ds = kg::generate(
      kg::scaled(kg::profile_by_name("FB15K"), bench::scale()), rng);

  // SpMM operand sized like one training batch's incidence slice.
  Rng spmm_rng(9);
  const Csr a = coo_to_csr(random_coo(8192, 8192, 1 << 18, spmm_rng));
  Matrix x(8192, 64);
  x.fill_uniform(spmm_rng, -1, 1);
  Matrix c(8192, 64);
  const int spmm_iters = 10;

  Engine engine;
  ModelSpec spec;
  spec.family = "TransE";
  spec.config.dim = 64;
  spec.seed = 7;
  engine.create_model(spec, ds.num_entities(), ds.num_relations());
  train::TrainConfig warm;
  warm.epochs = 1;
  warm.batch_size = 8192;
  engine.train(ds.train, warm);
  const auto stream = make_queries(ds, 400 * kQueryBatch, 500);

  const int cores = static_cast<int>(std::thread::hardware_concurrency());

  std::printf("{\n  \"bench\": \"runtime\",\n");
  std::printf("  %s,\n", bench::build_type_json().c_str());
  std::printf("  \"cores\": %d,\n", cores);
  std::printf(
      "  \"caveat\": \"widths beyond `cores` cannot speed anything up — on "
      "a 1-core host every row measures pool overhead at parity, not "
      "scaling, and the composed pool-vs-legacy comparison degenerates to "
      "timeslicing (no oversubscription exists to win back)\",\n");
  std::printf("  \"dataset\": {\"entities\": %lld, \"relations\": %lld, "
              "\"train\": %lld},\n",
              static_cast<long long>(ds.num_entities()),
              static_cast<long long>(ds.num_relations()),
              static_cast<long long>(ds.train.size()));
  std::printf("  \"spmm\": {\"rows\": %lld, \"nnz\": %lld, \"dim\": %lld, "
              "\"iters\": %d},\n",
              static_cast<long long>(a.rows),
              static_cast<long long>(a.nnz()), 64LL, spmm_iters);

  std::printf("  \"thread_scaling\": [\n");
  const std::vector<int> widths = {1, 2, 4, 8};
  for (std::size_t i = 0; i < widths.size(); ++i) {
    const ScalingRow row =
        run_width(widths[i], a, x, c, spmm_iters, ds, engine, stream);
    std::printf("    {\"threads\": %d, \"spmm_gflops\": %.3f, "
                "\"fused_epoch_s\": %.6f, \"serve_qps\": %.1f}%s\n",
                row.width, row.spmm_gflops, row.fused_epoch_s, row.serve_qps,
                i + 1 < widths.size() ? "," : "");
    std::fflush(stdout);
  }
  std::printf("  ],\n");

  runtime::TaskPool::instance().resize(cores > 0 ? cores : 1);
  std::printf("  \"composed\": [\n");
  const char* const modes[] = {"pool", "legacy"};
  for (int m = 0; m < 2; ++m) {
    const ComposedRow row = run_composed(modes[m], ds, engine, stream);
    std::printf("    {\"mode\": \"%s\", \"train_s\": %.6f, "
                "\"serve_qps_during_training\": %.1f}%s\n",
                row.mode.c_str(), row.train_s, row.serve_qps,
                m == 0 ? "," : "");
    std::fflush(stdout);
  }
  std::printf("  ],\n");
  std::printf("  \"pool_stats\": %s\n",
              runtime::TaskPool::instance().stats_json().c_str());
  std::printf("}\n");
  return 0;
}
