// Table 5: average peak training memory per model and framework.
// Paper (GB, avg of 7 datasets): TransE 5.61 vs 13.55, TransR 13.65 vs
// 20.42, TransH 0.28 vs 3.1, TorusE 12.03 vs 15.87 (SpTransX vs TorchKGE).
#include "bench_common.hpp"

using namespace sptx;

int main() {
  bench::print_header(
      "Table 5 — average peak training memory (MB at bench scale)",
      "SpTransX allocates less than the dense baseline for every model; "
      "largest relative gap on TransH (~11x in the paper)");

  const int ep = bench::epochs(2);
  std::printf("%-8s %-16s %-16s %s\n", "model", "SpTransX(MB)", "Dense(MB)",
              "ratio");
  for (const std::string model_name :
       {"TransE", "TransR", "TransH", "TorusE"}) {
    const models::ModelConfig cfg = bench::bench_config(model_name);
    double sp_mb = 0.0, dn_mb = 0.0;
    for (const auto& name : bench::figure7_datasets()) {
      const kg::Dataset ds = bench::load_scaled(name, 42);
      for (const std::string framework : {"SpTransX", "dense"}) {
        auto model =
            bench::make_model(framework, model_name, ds.num_entities(),
                              ds.num_relations(), cfg, 7);
        const auto result =
            train::train(*model, ds.train, bench::bench_train_config(ep));
        const double mb =
            static_cast<double>(result.peak_bytes) / (1024.0 * 1024.0);
        (framework == "SpTransX" ? sp_mb : dn_mb) += mb / 7.0;
      }
    }
    std::printf("%-8s %-16.2f %-16.2f %.2fx\n", model_name.c_str(), sp_mb,
                dn_mb, dn_mb / sp_mb);
    std::fflush(stdout);
  }
  return 0;
}
