// Table 7: average cache miss rate, SpTransX vs the gather/scatter
// baseline, via the trace-driven cache simulator (perf substitute —
// DESIGN.md documents the substitution).
// Paper (%, avg of 7 datasets, TransE row): 26.5 vs 29.4.
#include "src/profiling/simcache.hpp"

#include "bench_common.hpp"

using namespace sptx;

int main() {
  bench::print_header(
      "Table 7 — cache miss rate via trace-driven cache simulation",
      "SpMM formulation's miss rate ≤ the gather/scatter baseline's, and "
      "it issues fewer accesses; gap narrows as the embedding table "
      "outgrows the cache");

  // Simulate an L2-sized cache (the paper's miss rates are whole-hierarchy
  // perf numbers; a single-level simulation reproduces the ordering).
  profiling::CacheConfig cache;
  cache.size_bytes = 1 * 1024 * 1024;
  cache.line_bytes = 64;
  cache.associativity = 16;

  std::printf("%-10s %-14s %-14s %-12s\n", "dataset", "spmm miss%",
              "gather miss%", "access ratio");
  double sp_sum = 0.0, gs_sum = 0.0;
  for (const auto& name : bench::figure7_datasets()) {
    const kg::Dataset ds = bench::load_scaled(name, 42);
    profiling::TraceLayout layout;
    layout.num_entities = ds.num_entities();
    layout.num_relations = ds.num_relations();
    layout.dim = 128;
    const index_t batch = std::min<index_t>(ds.train.size(), 4096);
    const auto triplets = ds.train.slice(0, batch);
    const auto spmm = trace_spmm(triplets, layout, cache);
    const auto gather = trace_gather_scatter(triplets, layout, cache);
    sp_sum += spmm.miss_rate();
    gs_sum += gather.miss_rate();
    std::printf("%-10s %-14.2f %-14.2f %-12.2f\n", name.c_str(),
                100.0 * spmm.miss_rate(), 100.0 * gather.miss_rate(),
                static_cast<double>(gather.accesses) /
                    static_cast<double>(spmm.accesses));
  }
  std::printf("%-10s %-14.2f %-14.2f  (average; paper: 26.5 vs 29.4)\n",
              "AVG", 100.0 * sp_sum / 7.0, 100.0 * gs_sum / 7.0);
  return 0;
}
