// Figure 2: top CPU-intensive functions per model/dataset for the DENSE
// (framework-style) training loop — the profile that motivates the paper.
// The hotspot registry attributes wall time to named ops; embedding
// gather/scatter ("EmbeddingBackward") should rank top-3 for most models,
// and the torus dissimilarity should surface for TorusE.
#include "src/profiling/timer.hpp"

#include "bench_common.hpp"

using namespace sptx;

namespace {

void print_top3(const char* model_name, const char* dataset) {
  const auto ranked = profiling::HotspotRegistry::instance().ranked();
  const double total = profiling::HotspotRegistry::instance().total();
  std::printf("%-7s (%s): ", model_name, dataset);
  int shown = 0;
  for (const auto& [fn, seconds] : ranked) {
    if (shown++ == 3) break;
    std::printf("%s %.0f%%  ", fn.c_str(),
                total > 0 ? 100.0 * seconds / total : 0.0);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 2 — top CPU-intensive functions (dense training loop)",
      "embedding_backward_scatter in top-3 for every model; "
      "l2_torus_dissimilarity prominent for TorusE");

  const int ep = bench::epochs(3);
  for (const std::string dataset : {"FB13", "FB15K"}) {
    for (const std::string model_name :
         {"TransE", "TransH", "TransR", "TransD", "TorusE"}) {
      const kg::Dataset ds = bench::load_scaled(dataset, 42);
      auto model =
          bench::make_model("dense", model_name, ds.num_entities(),
                            ds.num_relations(),
                            bench::bench_config(model_name), 7);
      profiling::HotspotRegistry::instance().reset();
      train::train(*model, ds.train, bench::bench_train_config(ep));
      print_top3(model_name.c_str(), dataset.c_str());
    }
  }

  // The sparse (SpTransX) loop, before/after the fused kernel layer: with
  // SPTX_FUSED=off the profile is the chain of small unfused autograd ops
  // (add/sub backward, relation_project, the torus dissimilarity); with the
  // default fused path those collapse into one kernels::fused_* node per
  // score column. This is the before/after the fused-kernel PR claims.
  std::printf("\n-- SpTransX loop, autograd graph (SPTX_FUSED=off) --\n");
  for (const char* mode : {"off", "auto"}) {
    if (std::string(mode) == "auto")
      std::printf("\n-- SpTransX loop, fused kernels (SPTX_FUSED=auto) --\n");
    config::ScopedOverride fused("SPTX_FUSED", mode);
    for (const std::string model_name :
         {"TransE", "TransH", "TransR", "TransD", "TorusE"}) {
      const kg::Dataset ds = bench::load_scaled("FB13", 42);
      auto model =
          bench::make_model("SpTransX", model_name, ds.num_entities(),
                            ds.num_relations(),
                            bench::bench_config(model_name), 7);
      profiling::HotspotRegistry::instance().reset();
      train::train(*model, ds.train, bench::bench_train_config(ep));
      print_top3(model_name.c_str(), "FB13");
    }
  }
  return 0;
}
