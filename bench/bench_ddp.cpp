// Sharded DDP bench (Table 9 companion): multi-worker scaling of the
// sharded trainer over in-memory and mmap-streamed stores.
//
// For each worker count this trains SpTransE twice — once from the
// in-memory TripletStore, once from the same triplets written to the
// streaming format and consumed as zero-copy mmap slices — and reports
// wall time, final loss, shard/all-reduce counters and plan-cache traffic.
// The qualitative claims to check: streaming time ≈ memory time (the mmap
// path adds no copies), the sparse all-reduce moves a small fraction of the
// full gradient rows, and losses are bit-identical across worker counts
// (fixed shard decomposition).
//
// Output is one JSON document on stdout — tools/run_benches.sh captures it
// as BENCH_ddp.json for the PR-to-PR trajectory.
#include <cstdio>
#include <string>

#include "bench/bench_common.hpp"
#include "src/distributed/ddp.hpp"
#include "src/distributed/proc_ddp.hpp"
#include "src/kg/streaming_store.hpp"

namespace sptx {
namespace {

struct DdpRow {
  int workers = 0;
  std::string mode;
  std::string exec = "threads";  // "threads" | "procs"
  double seconds = 0.0;
  float final_loss = 0.0f;
  std::int64_t shards = 0;
  std::int64_t allreduce_rows = 0;
  std::int64_t plan_hits = 0;
  std::int64_t plan_misses = 0;
};

distributed::DdpConfig bench_ddp_config(int workers, int epochs,
                                        index_t shard_size) {
  distributed::DdpConfig dc;
  dc.workers = workers;
  dc.epochs = epochs;
  dc.batch_size = 4096;
  dc.shard_size = shard_size;  // fixed: results invariant to `workers`
  dc.lr = 0.0004f;
  return dc;
}

DdpRow to_row(const distributed::DdpResult& result, const std::string& mode,
              const std::string& exec) {
  DdpRow row;
  row.workers = result.workers;  // resolved (after SPTX_DDP_WORKERS)
  row.mode = mode;
  row.exec = exec;
  row.seconds = result.total_seconds;
  row.final_loss = result.epoch_loss.back();
  row.shards = result.shards_executed;
  row.allreduce_rows = result.allreduce_rows;
  row.plan_hits = result.plan_stats.hits;
  row.plan_misses = result.plan_stats.misses;
  return row;
}

DdpRow run(const kg::Dataset& ds, const kg::TripletSource& source,
           const std::string& mode, int workers, int epochs,
           index_t shard_size) {
  models::ModelConfig cfg = bench::bench_config("TransE");
  const auto result = distributed::train_ddp(
      [&](Rng& rng) {
        return models::make_sparse_model("TransE", ds.num_entities(),
                                         ds.num_relations(), cfg, rng);
      },
      source, bench_ddp_config(workers, epochs, shard_size));
  return to_row(result, mode, "threads");
}

/// The same workload through the multi-process supervisor (fork-only
/// workers): the threads-vs-procs delta is the transport + process-isolation
/// overhead, and final_loss must match the threaded rows bit for bit.
DdpRow run_procs(const kg::Dataset& ds, int workers, int epochs,
                 index_t shard_size) {
  models::ModelSpec spec;
  spec.family = "TransE";
  spec.framework = "sparse";
  spec.config = bench::bench_config("TransE");
  auto dc = bench_ddp_config(workers, epochs, shard_size);
  dc.mode = "procs";
  const auto result = distributed::train_ddp_procs(spec, ds.train, dc);
  return to_row(result, "memory", "procs");
}

}  // namespace
}  // namespace sptx

int main() {
  using namespace sptx;
  const int ep = bench::epochs(3);
  const kg::Dataset ds = bench::load_scaled("COVID19", 42);
  const index_t shard_size = 1024;

  const std::string path = "bench_ddp_stream.sptxs";
  kg::StreamingTripletStore::write_file(path, ds.train.triplets(),
                                        ds.num_entities(),
                                        ds.num_relations());
  const auto store = kg::StreamingTripletStore::open(path);

  std::printf("{\n  \"bench\": \"ddp_sharded\",\n");
  std::printf("  \"triplets\": %lld, \"epochs\": %d, \"shard_size\": %lld,\n",
              static_cast<long long>(ds.train.size()), ep,
              static_cast<long long>(shard_size));
  std::printf("  \"rows\": [\n");
  bool first = true;
  const auto emit = [&first](const DdpRow& row) {
    std::printf("%s    {\"workers\": %d, \"mode\": \"%s\", "
                "\"exec\": \"%s\", "
                "\"seconds\": %.4f, \"final_loss\": %.6f, "
                "\"shards\": %lld, \"allreduce_rows\": %lld, "
                "\"plan_hits\": %lld, \"plan_misses\": %lld}",
                first ? "" : ",\n", row.workers, row.mode.c_str(),
                row.exec.c_str(), row.seconds, row.final_loss,
                static_cast<long long>(row.shards),
                static_cast<long long>(row.allreduce_rows),
                static_cast<long long>(row.plan_hits),
                static_cast<long long>(row.plan_misses));
    first = false;
  };
  for (int p : {1, 2, 4}) {
    for (const auto& [mode, source] :
         {std::pair<std::string, kg::TripletSource>{"memory", ds.train},
          std::pair<std::string, kg::TripletSource>{"streaming", store}}) {
      emit(run(ds, source, mode, p, ep, shard_size));
    }
    emit(run_procs(ds, p, ep, shard_size));
  }
  std::printf("\n  ]\n}\n");
  std::remove(path.c_str());
  return 0;
}
