// Figure 8: forward / backward / step breakdown per framework, averaged
// over the seven datasets, for all four models.
#include "bench_common.hpp"

using namespace sptx;

int main() {
  bench::print_header(
      "Figure 8 — fwd/bwd/step breakdown per framework, avg of 7 datasets",
      "SpTransX improves forward AND backward for every model; backward "
      "dominates the dense baselines");

  const int ep = bench::epochs(8);
  for (const std::string model_name :
       {"TransE", "TransR", "TransH", "TorusE"}) {
    const models::ModelConfig cfg = bench::bench_config(model_name);
    std::printf("\n%s:\n", model_name.c_str());
    for (const std::string framework : {"SpTransX", "dense"}) {
      profiling::PhaseTimer total;
      for (const auto& name : bench::figure7_datasets()) {
        const kg::Dataset ds = bench::load_scaled(name, 42);
        auto model =
            bench::make_model(framework, model_name, ds.num_entities(),
                              ds.num_relations(), cfg, 7);
        total +=
            train::train(*model, ds.train, bench::bench_train_config(ep))
                .phases;
      }
      const double k = 1.0 / 7.0;
      std::printf("  %-10s forward %8.3fs  backward %8.3fs  step %7.3fs"
                  "  total %8.3fs\n",
                  framework.c_str(), total.forward_s * k,
                  total.backward_s * k, total.step_s * k, total.total() * k);
      std::fflush(stdout);
    }
  }
  return 0;
}
