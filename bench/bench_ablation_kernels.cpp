// Ablation: SpMM kernel variants (naive / unrolled / OpenMP-parallel) and
// storage formats (CSR vs COO) — design choices §2 and §5.5 call out.
// google-benchmark microbenchmarks over incidence-shaped matrices.
#include <benchmark/benchmark.h>

#include "src/common/rng.hpp"
#include "src/sparse/incidence.hpp"
#include "src/sparse/spmm.hpp"

namespace sptx {
namespace {

struct Workload {
  Csr csr;
  Coo coo;
  Matrix x;
};

Workload make_workload(index_t m, index_t n, index_t r, index_t d) {
  Rng rng(7);
  std::vector<Triplet> batch;
  batch.reserve(static_cast<std::size_t>(m));
  for (index_t i = 0; i < m; ++i) {
    batch.push_back({static_cast<std::int64_t>(rng.next_below(
                         static_cast<std::uint64_t>(n))),
                     static_cast<std::int64_t>(
                         rng.next_below(static_cast<std::uint64_t>(r))),
                     static_cast<std::int64_t>(rng.next_below(
                         static_cast<std::uint64_t>(n)))});
  }
  Workload w;
  w.csr = build_hrt_incidence_csr(batch, n, r);
  w.coo = build_hrt_incidence(batch, n, r);
  w.x = Matrix(n + r, d);
  w.x.fill_uniform(rng, -1, 1);
  return w;
}

void BM_SpmmCsrNaive(benchmark::State& state) {
  const auto w = make_workload(state.range(0), 20000, 50, state.range(1));
  Matrix out(w.csr.rows, w.x.cols());
  for (auto _ : state) {
    spmm_csr_into(w.csr, w.x, out, SpmmKernel::kNaive);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * w.csr.nnz() * w.x.cols());
}

void BM_SpmmCsrUnrolled(benchmark::State& state) {
  const auto w = make_workload(state.range(0), 20000, 50, state.range(1));
  Matrix out(w.csr.rows, w.x.cols());
  for (auto _ : state) {
    spmm_csr_into(w.csr, w.x, out, SpmmKernel::kUnrolled);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * w.csr.nnz() * w.x.cols());
}

void BM_SpmmCsrTiled(benchmark::State& state) {
  const auto w = make_workload(state.range(0), 20000, 50, state.range(1));
  Matrix out(w.csr.rows, w.x.cols());
  for (auto _ : state) {
    spmm_csr_into(w.csr, w.x, out, SpmmKernel::kTiled);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * w.csr.nnz() * w.x.cols());
}

void BM_SpmmCsrParallel(benchmark::State& state) {
  const auto w = make_workload(state.range(0), 20000, 50, state.range(1));
  Matrix out(w.csr.rows, w.x.cols());
  for (auto _ : state) {
    spmm_csr_into(w.csr, w.x, out, SpmmKernel::kParallel);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * w.csr.nnz() * w.x.cols());
}

void BM_SpmmCoo(benchmark::State& state) {
  const auto w = make_workload(state.range(0), 20000, 50, state.range(1));
  for (auto _ : state) {
    Matrix out = spmm_coo(w.coo, w.x);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * w.coo.nnz() * w.x.cols());
}

void BM_SpmmBackwardScatter(benchmark::State& state) {
  const auto w = make_workload(state.range(0), 20000, 50, state.range(1));
  Matrix g(w.csr.rows, w.x.cols());
  g.fill(0.5f);
  Matrix dx(w.x.rows(), w.x.cols());
  for (auto _ : state) {
    spmm_csr_transposed_accumulate(w.csr, g, dx);
    benchmark::DoNotOptimize(dx.data());
  }
  state.SetItemsProcessed(state.iterations() * w.csr.nnz() * w.x.cols());
}

void BM_SpmmBackwardExplicitTranspose(benchmark::State& state) {
  const auto w = make_workload(state.range(0), 20000, 50, state.range(1));
  Matrix g(w.csr.rows, w.x.cols());
  g.fill(0.5f);
  for (auto _ : state) {
    Matrix dx = spmm_csr_transposed_explicit(w.csr, g);
    benchmark::DoNotOptimize(dx.data());
  }
  state.SetItemsProcessed(state.iterations() * w.csr.nnz() * w.x.cols());
}

#define SPTX_ARGS ->Args({8192, 64})->Args({8192, 256})->Args({32768, 128})

BENCHMARK(BM_SpmmCsrNaive) SPTX_ARGS;
BENCHMARK(BM_SpmmCsrUnrolled) SPTX_ARGS;
BENCHMARK(BM_SpmmCsrTiled) SPTX_ARGS;
BENCHMARK(BM_SpmmCsrParallel) SPTX_ARGS;
BENCHMARK(BM_SpmmCoo) SPTX_ARGS;
BENCHMARK(BM_SpmmBackwardScatter) SPTX_ARGS;
BENCHMARK(BM_SpmmBackwardExplicitTranspose) SPTX_ARGS;

}  // namespace
}  // namespace sptx

BENCHMARK_MAIN();
