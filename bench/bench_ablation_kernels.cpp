// Ablation: SpMM kernel variants (naive / unrolled / tiled / OpenMP-parallel
// / AVX2-SIMD / combined / auto-dispatched) and storage formats (CSR vs COO)
// — design choices §2 and §5.5 call out. google-benchmark microbenchmarks
// over incidence-shaped matrices. tools/run_benches.sh captures this bench
// as BENCH_spmm.json to track the perf trajectory across PRs.
#include <benchmark/benchmark.h>

#include "bench/gbench_main.hpp"

#include <cstdlib>

#include "src/common/rng.hpp"
#include "src/common/runtime_config.hpp"
#include "src/kg/synthetic.hpp"
#include "src/sparse/incidence.hpp"
#include "src/sparse/spmm.hpp"

namespace sptx {
namespace {

struct Workload {
  Csr csr;
  Coo coo;
  Matrix x;
};

// Batches come from the repo's synthetic KG generator so the incidence
// matrix has the heavy-tailed (Zipf-skewed) entity frequencies of the
// paper's Table 3 datasets — that skew sets the kernels' cache behaviour,
// and a uniform draw would benchmark the DRAM wall instead of the kernel.
Workload make_workload(index_t m, index_t n, index_t r, index_t d) {
  Rng rng(7);
  const kg::Dataset ds = kg::generate(
      {"bench-kernels", n, r, m}, rng, /*valid_frac=*/0.0, /*test_frac=*/0.0);
  const std::span<const Triplet> batch = ds.train.triplets();
  Workload w;
  w.csr = build_hrt_incidence_csr(batch, n, r);
  w.coo = build_hrt_incidence(batch, n, r);
  w.x = Matrix(n + r, d);
  w.x.fill_uniform(rng, -1, 1);
  return w;
}

void BM_SpmmCsrNaive(benchmark::State& state) {
  const auto w = make_workload(state.range(0), 20000, 50, state.range(1));
  Matrix out(w.csr.rows, w.x.cols());
  for (auto _ : state) {
    spmm_csr_into(w.csr, w.x, out, SpmmKernel::kNaive);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * w.csr.nnz() * w.x.cols());
}

void BM_SpmmCsrUnrolled(benchmark::State& state) {
  const auto w = make_workload(state.range(0), 20000, 50, state.range(1));
  Matrix out(w.csr.rows, w.x.cols());
  for (auto _ : state) {
    spmm_csr_into(w.csr, w.x, out, SpmmKernel::kUnrolled);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * w.csr.nnz() * w.x.cols());
}

void BM_SpmmCsrTiled(benchmark::State& state) {
  const auto w = make_workload(state.range(0), 20000, 50, state.range(1));
  Matrix out(w.csr.rows, w.x.cols());
  for (auto _ : state) {
    spmm_csr_into(w.csr, w.x, out, SpmmKernel::kTiled);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * w.csr.nnz() * w.x.cols());
}

void BM_SpmmCsrParallel(benchmark::State& state) {
  const auto w = make_workload(state.range(0), 20000, 50, state.range(1));
  Matrix out(w.csr.rows, w.x.cols());
  for (auto _ : state) {
    spmm_csr_into(w.csr, w.x, out, SpmmKernel::kParallel);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * w.csr.nnz() * w.x.cols());
}

void BM_SpmmCsrSimd(benchmark::State& state) {
  const auto w = make_workload(state.range(0), 20000, 50, state.range(1));
  Matrix out(w.csr.rows, w.x.cols());
  for (auto _ : state) {
    spmm_csr_into(w.csr, w.x, out, SpmmKernel::kSimd);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * w.csr.nnz() * w.x.cols());
}

void BM_SpmmCsrTiledParallel(benchmark::State& state) {
  const auto w = make_workload(state.range(0), 20000, 50, state.range(1));
  Matrix out(w.csr.rows, w.x.cols());
  for (auto _ : state) {
    spmm_csr_into(w.csr, w.x, out, SpmmKernel::kTiledParallel);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * w.csr.nnz() * w.x.cols());
}

void BM_SpmmCsrAuto(benchmark::State& state) {
  const auto w = make_workload(state.range(0), 20000, 50, state.range(1));
  Matrix out(w.csr.rows, w.x.cols());
  for (auto _ : state) {
    spmm_csr_into(w.csr, w.x, out, SpmmKernel::kAuto);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * w.csr.nnz() * w.x.cols());
}

void BM_SpmmCoo(benchmark::State& state) {
  const auto w = make_workload(state.range(0), 20000, 50, state.range(1));
  for (auto _ : state) {
    Matrix out = spmm_coo(w.coo, w.x);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * w.coo.nnz() * w.x.cols());
}

void BM_SpmmBackwardScatter(benchmark::State& state) {
  const auto w = make_workload(state.range(0), 20000, 50, state.range(1));
  Matrix g(w.csr.rows, w.x.cols());
  g.fill(0.5f);
  Matrix dx(w.x.rows(), w.x.cols());
  // Registry override, not setenv: the process snapshot is latched at first
  // use, so only an installed snapshot reaches the dispatch.
  config::ScopedOverride force("SPTX_SPMM_BACKWARD", "scatter");
  for (auto _ : state) {
    spmm_csr_transposed_accumulate(w.csr, g, dx);
    benchmark::DoNotOptimize(dx.data());
  }
  state.SetItemsProcessed(state.iterations() * w.csr.nnz() * w.x.cols());
}

// The cached-transpose gather path: Aᵀ is built once (outside the timed
// loop, as in training where the same incidence matrix serves fwd+bwd) and
// the backward runs as a conflict-free parallel accumulate over dX rows.
void BM_SpmmBackwardTransposedCached(benchmark::State& state) {
  const auto w = make_workload(state.range(0), 20000, 50, state.range(1));
  Matrix g(w.csr.rows, w.x.cols());
  g.fill(0.5f);
  Matrix dx(w.x.rows(), w.x.cols());
  config::ScopedOverride force("SPTX_SPMM_BACKWARD", "transpose");
  w.csr.transposed();  // warm the cache
  for (auto _ : state) {
    spmm_csr_transposed_accumulate(w.csr, g, dx);
    benchmark::DoNotOptimize(dx.data());
  }
  state.SetItemsProcessed(state.iterations() * w.csr.nnz() * w.x.cols());
}

void BM_SpmmBackwardExplicitTranspose(benchmark::State& state) {
  const auto w = make_workload(state.range(0), 20000, 50, state.range(1));
  Matrix g(w.csr.rows, w.x.cols());
  g.fill(0.5f);
  for (auto _ : state) {
    Matrix dx = spmm_csr_transposed_explicit(w.csr, g);
    benchmark::DoNotOptimize(dx.data());
  }
  state.SetItemsProcessed(state.iterations() * w.csr.nnz() * w.x.cols());
}

#define SPTX_ARGS ->Args({8192, 64})->Args({8192, 256})->Args({32768, 128})

BENCHMARK(BM_SpmmCsrNaive) SPTX_ARGS;
BENCHMARK(BM_SpmmCsrUnrolled) SPTX_ARGS;
BENCHMARK(BM_SpmmCsrTiled) SPTX_ARGS;
BENCHMARK(BM_SpmmCsrParallel) SPTX_ARGS;
BENCHMARK(BM_SpmmCsrSimd) SPTX_ARGS;
BENCHMARK(BM_SpmmCsrTiledParallel) SPTX_ARGS;
BENCHMARK(BM_SpmmCsrAuto) SPTX_ARGS;
BENCHMARK(BM_SpmmCoo) SPTX_ARGS;
BENCHMARK(BM_SpmmBackwardScatter) SPTX_ARGS;
BENCHMARK(BM_SpmmBackwardTransposedCached) SPTX_ARGS;
BENCHMARK(BM_SpmmBackwardExplicitTranspose) SPTX_ARGS;

}  // namespace
}  // namespace sptx

SPTX_GBENCH_MAIN();
