// Table 1: TransE training-time breakdown (forward / backward / step),
// sparse vs non-sparse, averaged over the seven Table 3 datasets.
#include "bench_common.hpp"

using namespace sptx;

int main() {
  bench::print_header(
      "Table 1 — TransE fwd/bwd/step breakdown, avg of 7 datasets",
      "Sparse beats non-sparse on Forward (~4x) and Backward (~5x); "
      "Step is comparable (paper CPU: 74.9/166.6/15.4 vs 299.2/919.2/16.0)");

  const int ep = bench::epochs(10);
  const models::ModelConfig cfg = bench::bench_config("TransE");

  for (const std::string framework : {"SpTransX", "TorchKGE-style dense"}) {
    profiling::PhaseTimer total;
    for (const auto& name : bench::figure7_datasets()) {
      const kg::Dataset ds = bench::load_scaled(name, 42);
      auto model = bench::make_model(
          framework == "SpTransX" ? "SpTransX" : "dense", "TransE",
          ds.num_entities(), ds.num_relations(), cfg, 7);
      const auto result =
          train::train(*model, ds.train, bench::bench_train_config(ep));
      total += result.phases;
    }
    const double k = 1.0 / 7.0;
    std::printf("%-22s  forward %8.3fs  backward %8.3fs  step %8.3fs\n",
                framework.c_str(), total.forward_s * k, total.backward_s * k,
                total.step_s * k);
  }
  return 0;
}
