// Shared infrastructure for the paper-reproduction benchmark binaries.
//
// Every bench regenerates one table or figure of the paper. Dataset sizes
// default to a scaled-down fraction of the paper's profiles so the whole
// harness finishes in minutes on a laptop; set SPTX_SCALE (0 < s ≤ 1,
// default 0.01) and SPTX_EPOCHS to approach paper scale. The absolute
// numbers then differ from the A100/EPYC testbed, but each bench prints
// the same rows/series as the paper artefact plus a `paper_shape` note
// stating the qualitative claim to check (who wins, by roughly what
// factor).
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/common/runtime_config.hpp"
#include "src/kg/synthetic.hpp"
#include "src/models/model.hpp"
#include "src/train/trainer.hpp"

namespace sptx::bench {

/// Build type this bench binary was compiled as. The harness only trusts
/// Release numbers: a debug build inflates every autograd-vs-fused or
/// kernel-vs-kernel ratio (BENCH_spmm.json was once recorded from a debug
/// build — tools/run_benches.sh now configures Release and refuses quietly
/// mixed data).
inline constexpr bool kReleaseBuild =
#ifdef NDEBUG
    true;
#else
    false;
#endif

inline const char* build_type() { return kReleaseBuild ? "release" : "debug"; }

/// JSON context fragment every bench's document embeds:
/// `"build_type": "release"` — plus a loud warning field when the library
/// was not compiled Release, so a stray debug artefact can never be read as
/// a real measurement.
inline std::string build_type_json() {
  std::string json = "\"build_type\": \"" + std::string(build_type()) + "\"";
  if (!kReleaseBuild) {
    json +=
        ",\n  \"WARNING\": \"library_build_type != release — timings are "
        "not comparable; rebuild with -DCMAKE_BUILD_TYPE=Release\"";
  }
  return json;
}

/// Stderr counterpart for the text-artefact benches.
inline void warn_if_debug_build() {
  if (!kReleaseBuild) {
    std::fprintf(stderr,
                 "WARNING: bench compiled with library_build_type=%s — "
                 "numbers below are NOT comparable; rebuild with "
                 "-DCMAKE_BUILD_TYPE=Release\n",
                 build_type());
  }
}

inline double scale() {
  const double s = config::current()->double_or("SPTX_SCALE", 0.01);
  return s <= 0.0 || s > 1.0 ? 0.01 : s;
}

inline int epochs(int fallback = 10) {
  return static_cast<int>(config::current()->int_or("SPTX_EPOCHS", fallback));
}

/// The seven Table 3 datasets (order of Figure 7's rows).
inline std::vector<std::string> figure7_datasets() {
  return {"FB15K", "FB15K237", "WN18", "WN18RR", "FB13", "YAGO3-10", "BIOKG"};
}

inline kg::Dataset load_scaled(const std::string& name, std::uint64_t seed,
                               double extra_scale = 1.0) {
  Rng rng(seed);
  const auto profile =
      kg::scaled(kg::profile_by_name(name), scale() * extra_scale);
  return kg::generate(profile, rng);
}

/// Construct either formulation by framework label.
inline std::unique_ptr<models::KgeModel> make_model(
    const std::string& framework, const std::string& model_name,
    index_t num_entities, index_t num_relations,
    const models::ModelConfig& cfg, std::uint64_t seed) {
  Rng rng(seed);
  if (framework == "SpTransX") {
    return models::make_sparse_model(model_name, num_entities, num_relations,
                                     cfg, rng);
  }
  return models::make_dense_model(model_name, num_entities, num_relations,
                                  cfg, rng);
}

/// §5.3 config at bench scale: the paper's margin and loss with a scaled
/// embedding size (Table 4 uses 1024 for TransE/TorusE, 128 for
/// TransR/TransH; we default to 128/32 at SPTX_SCALE < 1).
inline models::ModelConfig bench_config(const std::string& model_name) {
  models::ModelConfig cfg;
  const bool full = scale() >= 1.0;
  if (model_name == "TransE" || model_name == "TorusE") {
    cfg.dim = full ? 1024 : 128;
  } else {
    cfg.dim = 128;
  }
  cfg.rel_dim = model_name == "TransR" ? (full ? 128 : 32) : cfg.dim;
  cfg.margin = 0.5f;
  return cfg;
}

inline train::TrainConfig bench_train_config(int epoch_count,
                                             index_t batch_size = 4096) {
  train::TrainConfig tc;
  tc.epochs = epoch_count;
  tc.batch_size = batch_size;
  tc.lr = 0.0004f;  // §5.3
  tc.record_loss_curve = true;
  return tc;
}

inline void print_header(const std::string& artefact,
                         const std::string& paper_shape) {
  warn_if_debug_build();
  std::printf("==============================================================\n");
  std::printf("%s\n", artefact.c_str());
  std::printf("paper_shape: %s\n", paper_shape.c_str());
  std::printf("scale=%.4g (SPTX_SCALE), epochs via SPTX_EPOCHS\n", scale());
  if (!kReleaseBuild) {
    std::printf("WARNING: library_build_type=%s — not a Release build, "
                "timings unusable\n",
                build_type());
  }
  std::printf("==============================================================\n");
}

}  // namespace sptx::bench
