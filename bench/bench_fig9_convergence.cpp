// Figure 9 + Table 8 + the §6.2.5 accuracy check: loss curves for the
// sparse vs dense formulation on the WN18 profile, and multi-seed Hits@10.
// Paper: the sparse loss curve follows a slightly different path but
// converges to the same loss; Hits@10 is comparable or better
// (Table 8: TransE 0.79/0.79, TransR 0.29/0.33, TransH 0.76/0.79,
// TorusE 0.73/0.73 for TorchKGE/SpTransX).
#include <cmath>

#include "src/eval/link_prediction.hpp"

#include "bench_common.hpp"

using namespace sptx;

int main() {
  bench::print_header(
      "Figure 9 / Table 8 — convergence and multi-seed Hits@10 (WN18)",
      "sparse and dense loss curves land on the same final loss; Hits@10 "
      "comparable or better for SpTransX");

  const int ep = bench::epochs(30);
  const kg::Dataset ds = bench::load_scaled("WN18", 42);

  // ---- Figure 9: loss curves --------------------------------------------
  for (const std::string model_name :
       {"TransE", "TransR", "TransH", "TorusE"}) {
    models::ModelConfig cfg = bench::bench_config(model_name);
    cfg.dim = 64;
    cfg.rel_dim = model_name == "TransR" ? 16 : 64;
    std::printf("\n%s loss curves (every %d epochs):\n", model_name.c_str(),
                std::max(ep / 10, 1));
    for (const std::string framework : {"SpTransX", "dense"}) {
      auto model = bench::make_model(framework, model_name,
                                     ds.num_entities(), ds.num_relations(),
                                     cfg, 7);
      train::TrainConfig tc = bench::bench_train_config(ep, 2048);
      tc.lr = 0.25f;  // scaled dataset: scaled-up lr
      const auto result = train::train(*model, ds.train, tc);
      std::printf("  %-10s", framework.c_str());
      for (std::size_t e = 0; e < result.epoch_loss.size();
           e += static_cast<std::size_t>(std::max(ep / 10, 1))) {
        std::printf(" %.4f", result.epoch_loss[e]);
      }
      std::printf(" -> %.4f\n", result.epoch_loss.back());
      std::fflush(stdout);
    }
  }

  // ---- Table 8: multi-seed Hits@10 --------------------------------------
  std::printf("\nTable 8 — Hits@10 over 3 seeds (paper uses 9):\n");
  std::printf("%-8s %-22s %-22s\n", "model", "SpTransX", "dense");
  for (const std::string model_name :
       {"TransE", "TransR", "TransH", "TorusE"}) {
    models::ModelConfig cfg = bench::bench_config(model_name);
    cfg.dim = 64;
    cfg.rel_dim = model_name == "TransR" ? 16 : 64;
    cfg.normalize_entities = false;
    std::printf("%-8s", model_name.c_str());
    for (const std::string framework : {"SpTransX", "dense"}) {
      double sum = 0.0, sumsq = 0.0;
      const int seeds = 3;
      for (int seed = 0; seed < seeds; ++seed) {
        auto model = bench::make_model(framework, model_name,
                                       ds.num_entities(),
                                       ds.num_relations(), cfg,
                                       100 + static_cast<std::uint64_t>(seed));
        train::TrainConfig tc = bench::bench_train_config(ep * 2, 2048);
        tc.lr = 1.0f;
        tc.use_adagrad = true;
        tc.resample_negatives = true;
        tc.schedule = train::LrSchedule::kStep;  // Appendix E scheduler
        tc.step_lr_every = std::max(ep, 1);
        tc.seed = static_cast<std::uint64_t>(seed);
        train::train(*model, ds.train, tc);
        eval::EvalConfig ec;
        ec.max_queries = 40;
        const double h = eval::evaluate(*model, ds, ec).hits_at_10;
        sum += h;
        sumsq += h * h;
      }
      const double mean = sum / seeds;
      const double var = std::max(sumsq / seeds - mean * mean, 0.0);
      std::printf(" %.3f ± %-13.4f", mean, std::sqrt(var));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
