// Appendix D: non-translational models through the same incidence-matrix
// formulation with swapped semirings — DistMult, ComplEx, RotatE train end
// to end on the shared sparse machinery.
#include "src/eval/link_prediction.hpp"

#include "bench_common.hpp"

using namespace sptx;

int main() {
  bench::print_header(
      "Appendix D — semiring extension models (DistMult/ComplEx/RotatE)",
      "the sparse formulation is not translation-specific: all three train "
      "(loss decreases) and evaluate through the same pipeline");

  const int ep = bench::epochs(15);
  const kg::Dataset ds = bench::load_scaled("WN18", 42);
  std::printf("%-10s %-12s %-12s %-10s %-10s\n", "model", "loss[0]",
              "loss[end]", "time(s)", "hits@10");
  for (const std::string model_name : {"DistMult", "ComplEx", "RotatE"}) {
    models::ModelConfig cfg;
    cfg.dim = 64;
    cfg.margin = 0.5f;
    Rng rng(7);
    auto model = models::make_sparse_model(
        model_name, ds.num_entities(), ds.num_relations(), cfg, rng);
    train::TrainConfig tc = bench::bench_train_config(ep * 3, 2048);
    tc.lr = 0.5f;
    tc.use_adagrad = true;
    tc.resample_negatives = true;
    const auto result = train::train(*model, ds.train, tc);
    eval::EvalConfig ec;
    ec.max_queries = 30;
    const auto metrics = eval::evaluate(*model, ds, ec);
    std::printf("%-10s %-12.4f %-12.4f %-10.3f %-10.3f\n",
                model_name.c_str(), result.epoch_loss.front(),
                result.epoch_loss.back(), result.total_seconds,
                metrics.hits_at_10);
    std::fflush(stdout);
  }
  return 0;
}
