// Table 6: average FLOPs count per model and framework.
// Paper (×10^10, avg of 7 datasets): TransE 220 vs 484, TransR 567 vs
// 1158, TransH 9.7 vs 19.6, TorusE 290 vs 388 (SpTransX vs TorchKGE).
#include "src/profiling/flops.hpp"

#include "bench_common.hpp"

using namespace sptx;

int main() {
  bench::print_header(
      "Table 6 — average FLOPs per training run",
      "SpTransX executes fewer FLOPs than the dense baseline for every "
      "model (roughly 1.3–2x fewer in the paper)");

  const int ep = bench::epochs(3);
  std::printf("%-8s %-18s %-18s %s\n", "model", "SpTransX(GFLOP)",
              "Dense(GFLOP)", "ratio");
  for (const std::string model_name :
       {"TransE", "TransR", "TransH", "TorusE"}) {
    const models::ModelConfig cfg = bench::bench_config(model_name);
    double sp = 0.0, dn = 0.0;
    for (const auto& name : bench::figure7_datasets()) {
      const kg::Dataset ds = bench::load_scaled(name, 42);
      for (const std::string framework : {"SpTransX", "dense"}) {
        auto model =
            bench::make_model(framework, model_name, ds.num_entities(),
                              ds.num_relations(), cfg, 7);
        const auto result =
            train::train(*model, ds.train, bench::bench_train_config(ep));
        (framework == "SpTransX" ? sp : dn) +=
            static_cast<double>(result.flops) / 1e9 / 7.0;
      }
    }
    std::printf("%-8s %-18.3f %-18.3f %.2fx\n", model_name.c_str(), sp, dn,
                dn / sp);
    std::fflush(stdout);
  }
  return 0;
}
